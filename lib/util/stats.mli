(** Descriptive statistics used by the metrics and bench layers. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], by linear interpolation on a
    sorted copy. Raises [Invalid_argument] on an empty array. *)

val median : float array -> float

val cdf : ?points:int -> float array -> (float * float) list
(** [cdf xs] returns [(value, fraction <= value)] pairs suitable for
    plotting, downsampled to at most [points] (default 50) entries. *)

val stddev : float array -> float

type ewma
(** Exponentially weighted moving average. *)

val ewma_create : alpha:float -> ewma
val ewma_update : ewma -> float -> unit
val ewma_value : ewma -> float
(** Current average; 0 before the first update. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;  (** the tail the SLO accounting watches *)
  max : float;
  min : float;
}

val summarize : float array -> summary
(** All-zero summary on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
