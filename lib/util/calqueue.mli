(** Calendar queue: O(1) priority queue for the simulator's event
    distribution (DESIGN.md §11).

    Nearly every event the fabric schedules lands within a few packet
    serialization times of now — link propagation is 100 ns, an MTU at
    10 Gbps serializes in 1.2 µs — so a wheel of 1-ns buckets covering a
    small window ahead of the clock absorbs the hot traffic at O(1) per
    operation, with a binary heap ({!Heap}) as the overflow store for the
    far-future tail (retransmission timers, epoch ticks).

    Payloads are small non-negative ints (the engine's event-pool handles);
    the per-payload FIFO link lives in an internal int array indexed by
    payload, so enqueue/dequeue of wheel events allocates nothing.

    Ordering contract, relied on for bit-for-bit reproducibility: entries
    pop in (time, insertion order) — exactly {!Heap}'s contract. Why it
    holds across the two stores: bucketed times are always strictly below
    every overflow time (an entry is bucketed iff its time falls before the
    window's end, and the window only ever advances); a 1-ns bucket holds a
    single timestamp, and appending to its tail preserves insertion order;
    and the window advances only when the wheel is empty, migrating
    now-in-window overflow entries in heap order — (time, insertion) —
    before any later insertion can append behind them. *)

type t

val create : ?wheel:int -> ?start:int -> unit -> t
(** [wheel] (default 16384) is the bucket count — the window width in time
    units; [start] (default 0) the initial window origin. Raises
    [Invalid_argument] if [wheel < 1]. *)

val add : t -> time:int -> int -> unit
(** Enqueue a payload. [time] must not precede the window origin, which
    trails the last popped time — scheduling in the past is the caller's
    bug and raises [Invalid_argument]. Payloads must be [>= 0]. *)

val pop : t -> (int * int) option
(** Remove the minimum (time, insertion-order) entry as [(time, payload)]. *)

val peek_time : t -> int option
(** Time of the next entry without removing it. *)

(** {2 Allocation-free variants}

    The engine's hot loop drains millions of events; the option/tuple
    results above would cost ~7 heap words per event. These return plain
    ints instead, with [-1] as the empty marker — callers must therefore
    only schedule non-negative times. *)

val peek_time_fast : t -> int
(** Time of the next entry, or [-1] when the queue is empty. *)

val pop_fast : t -> int
(** Remove the minimum entry and return its payload, or [-1] when empty.
    The removed entry's time is readable via {!popped_time}. *)

val pop_until : t -> until:int -> int
(** One drain step in a single bitmap scan: remove the minimum entry and
    return its payload if its time is [<= until]; return [-1] when the
    queue is empty, or [-2] (leaving the entry in place) when the head's
    time exceeds [until]. {!popped_time} reports the head's time after
    both a pop and a [-2]. *)

val popped_time : t -> int
(** Time of the entry last removed by {!pop_fast} / {!pop_until}; [-1]
    before any pop. *)

val size : t -> int

val is_empty : t -> bool

val overflow_pushes : t -> int
(** Entries that landed in the overflow heap rather than the wheel over the
    queue's lifetime; the allocation-per-event telemetry the hotpath bench
    reports. *)
