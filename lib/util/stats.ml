let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let percentile_sorted ys p =
  let n = Array.length ys in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (ys.(lo) *. (1.0 -. frac)) +. (ys.(hi) *. frac)
  end

let percentile xs p = percentile_sorted (sorted_copy xs) p

let median xs = percentile xs 50.0

let cdf ?(points = 50) xs =
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 0 then []
  else begin
    let step = max 1 (n / points) in
    let acc = ref [] in
    let i = ref (step - 1) in
    while !i < n do
      acc := (ys.(!i), float_of_int (!i + 1) /. float_of_int n) :: !acc;
      i := !i + step
    done;
    (* Always include the maximum so the CDF reaches 1. *)
    let acc =
      match !acc with
      | (v, _) :: _ when v = ys.(n - 1) -> !acc
      | _ -> (ys.(n - 1), 1.0) :: !acc
    in
    List.rev acc
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (n - 1))
  end

type ewma = { alpha : float; mutable value : float; mutable initialized : bool }

let ewma_create ~alpha =
  assert (alpha > 0.0 && alpha <= 1.0);
  { alpha; value = 0.0; initialized = false }

let ewma_update e x =
  if e.initialized then e.value <- (e.alpha *. x) +. ((1.0 -. e.alpha) *. e.value)
  else begin
    e.value <- x;
    e.initialized <- true
  end

let ewma_value e = e.value

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
  min : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then
    { count = 0; mean = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0; p999 = 0.0; max = 0.0; min = 0.0 }
  else begin
    let ys = sorted_copy xs in
    {
      count = n;
      mean = mean xs;
      p50 = percentile_sorted ys 50.0;
      p95 = percentile_sorted ys 95.0;
      p99 = percentile_sorted ys 99.0;
      p999 = percentile_sorted ys 99.9;
      max = ys.(n - 1);
      min = ys.(0);
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g p999=%.3g max=%.3g" s.count
    s.mean s.p50 s.p95 s.p99 s.p999 s.max
