(* Phantom-typed physical quantities. See units.mli for the story.

   Inside this module ['u t] is transparently [float] (and [ticks] is
   [int]), which is what lets every constructor/observer be [%identity]
   and every array view be a zero-copy alias. The phantom parameter only
   exists in the interface; the compiled code is the raw float program.

   The combinators below are deliberately the *literal* formulas the
   swept call sites used to inline — same operations, same order — so
   the sweep is bit-for-bit neutral (test_util.ml pins this). *)

type +'u t = float

type byte_u
type bit_u
type ns_u
type sec_u
type frac_u

type 'u per_ns

type bytes = byte_u t
type bits = bit_u t
type byte_rate = byte_u per_ns t
type gbps = bit_u per_ns t
type ns = ns_u t
type seconds = sec_u t
type fraction = frac_u t
type ticks = int

external bytes : float -> bytes = "%identity"
external bits : float -> bits = "%identity"
external byte_rate : float -> byte_rate = "%identity"
external gbps : float -> gbps = "%identity"
external ns : float -> ns = "%identity"
external seconds : float -> seconds = "%identity"
external fraction : float -> fraction = "%identity"
external ticks : int -> ticks = "%identity"

external to_float : 'u t -> float = "%identity"
external ticks_to_int : ticks -> int = "%identity"

let bytes_of_int i = float_of_int i
let ns_of_int i = float_of_int i

let rate_of ~amount ~dt = amount /. dt
let drain ~rate ~dt = rate *. dt
let fill_time ~amount ~rate = amount /. rate
let scale_by_fraction q f = q *. f
let frac_of ~num ~den = num /. den

let bits_of_bytes b = b *. 8.0
let bytes_of_bits b = b /. 8.0
let gbps_of_byte_rate r = r *. 8.0
let byte_rate_of_gbps g = g /. 8.0

let seconds_of_ns t = t *. 1e-9
let ns_of_seconds s = s *. 1e9

let zero = 0.0
let add a b = a +. b
let sub a b = a -. b
let min_q a b = Float.min a b
let max_q a b = Float.max a b
let compare_q a b = Float.compare a b

let tick_succ (t : ticks) : ticks = t + 1

(* Zero-copy views: the annotations force the abbreviations to expand to
   the same representation; no element is touched. *)
let floats_of (a : 'u t array) : float array = a
let of_floats (a : float array) : 'u t array = a
let pairs_to_floats (a : (int * 'u t) array) : (int * float) array = a
let pairs_of_floats (a : (int * float) array) : (int * 'u t) array = a
