(* Binary min-heap over (priority, sequence, value), stored as three
   parallel arrays so pushing allocates nothing (no per-entry record). The
   sequence number breaks ties so equal-priority entries pop in insertion
   order. *)

type 'a t = {
  mutable prio : int array;
  mutable seq : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable next_seq : int;
  mutable last_prio : int;
}

let create () =
  { prio = [||]; seq = [||]; vals = [||]; len = 0; next_seq = 0; last_prio = -1 }

let size h = h.len

let is_empty h = h.len = 0

let less h i j =
  h.prio.(i) < h.prio.(j) || (h.prio.(i) = h.prio.(j) && h.seq.(i) < h.seq.(j))

let swap h i j =
  let t = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- t;
  let t = h.seq.(i) in
  h.seq.(i) <- h.seq.(j);
  h.seq.(j) <- t;
  let t = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- t

(* [value] doubles as the fill element for the value array, so growth
   never needs a dummy. *)
let grow h value =
  let cap = Array.length h.prio in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let copy a fill =
      let a' = Array.make ncap fill in
      Array.blit a 0 a' 0 h.len;
      a'
    in
    h.prio <- copy h.prio 0;
    h.seq <- copy h.seq 0;
    h.vals <- copy h.vals value
  end

let push h prio value =
  grow h value;
  let i = ref h.len in
  h.prio.(!i) <- prio;
  h.seq.(!i) <- h.next_seq;
  h.vals.(!i) <- value;
  h.next_seq <- h.next_seq + 1;
  h.len <- h.len + 1;
  (* Sift up. *)
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less h !i p
  do
    let p = (!i - 1) / 2 in
    swap h !i p;
    i := p
  done

let remove_top h =
  h.len <- h.len - 1;
  if h.len > 0 then begin
    swap h 0 h.len;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && less h l !smallest then smallest := l;
      if r < h.len && less h r !smallest then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done
  end

let pop h =
  if h.len = 0 then None
  else begin
    let prio = h.prio.(0) and value = h.vals.(0) in
    h.last_prio <- prio;
    remove_top h;
    Some (prio, value)
  end

let peek h = if h.len = 0 then None else Some (h.prio.(0), h.vals.(0))

let peek_prio h = if h.len = 0 then -1 else h.prio.(0)

let pop_int (h : int t) =
  if h.len = 0 then -1
  else begin
    let value = h.vals.(0) in
    h.last_prio <- h.prio.(0);
    remove_top h;
    value
  end

let popped_prio h = h.last_prio

let clear h =
  h.prio <- [||];
  h.seq <- [||];
  h.vals <- [||];
  h.len <- 0
