(** Deterministic iteration over [Hashtbl.t].

    R2C2's congestion control (§3.2–3.3) only works if every node
    computes the same allocation from the same broadcast traffic matrix;
    any state derived from raw [Hashtbl.iter]/[Hashtbl.fold] order is a
    rack-divergence hazard — two nodes holding the same bindings but
    inserted in different orders walk them differently. r2c2-lint rule D3
    therefore bans raw table iteration under [lib/]; call sites go
    through this module, which fixes the order by sorting on the key.

    This interface is the {e sealed} D3 escape hatch: the one raw
    [Hashtbl.fold] in the implementation (annotated with the repo's only
    D3 suppression comment) is deliberately not exported, so the unsorted
    bindings can never leak past this module. Every exported helper takes
    an explicit [~cmp] on keys — no polymorphic compare (rule S2) — and
    sorts stably, so tables with duplicate keys (via [Hashtbl.add]
    shadowing) still iterate deterministically, most recent binding first
    per key. *)

val sorted_bindings : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) array
(** All bindings, sorted by key under [cmp]; duplicate keys keep their
    shadowing order (most recent first). *)

val sorted_keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k array
val sorted_values : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'v array

val iter_sorted : cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** Drop-in replacement for [Hashtbl.iter], plus the key comparator. *)

val fold_sorted :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> 'a -> 'a) -> ('k, 'v) Hashtbl.t -> 'a -> 'a
(** Drop-in replacement for [Hashtbl.fold], plus the key comparator. *)
