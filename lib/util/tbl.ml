(* Deterministic iteration over [Hashtbl.t].

   R2C2's congestion control only works if every node computes the same
   allocation from the same broadcast traffic matrix; any state derived
   from raw [Hashtbl.iter]/[Hashtbl.fold] order is a rack-divergence
   hazard (two nodes inserting the same bindings in different orders walk
   them in different orders). The linter (`tools/lint`, rule D3) therefore
   bans raw table iteration under `lib/`; call sites go through this
   module, which fixes the order by sorting on the key.

   All helpers take an explicit [~cmp] on keys — no polymorphic compare
   (rule S2) — and use a stable sort so tables with duplicate keys (via
   [Hashtbl.add] shadowing) still iterate deterministically, most recent
   binding first per key. *)

let bindings t =
  (* The only sanctioned raw fold: order is repaired by the callers below. *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] (* lint: allow D3 — Tbl is the sorted-iteration primitive; order is fixed by the sort below *)

let sorted_bindings ~cmp t =
  Array.of_list (List.stable_sort (fun (a, _) (b, _) -> cmp a b) (bindings t))

let sorted_keys ~cmp t =
  Array.map fst (sorted_bindings ~cmp t)

let sorted_values ~cmp t =
  Array.map snd (sorted_bindings ~cmp t)

(* Drop-in replacements for [Hashtbl.iter]/[Hashtbl.fold]: same argument
   order, plus the key comparator. *)

let iter_sorted ~cmp f t =
  Array.iter (fun (k, v) -> f k v) (sorted_bindings ~cmp t)

let fold_sorted ~cmp f t init =
  Array.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ~cmp t)
