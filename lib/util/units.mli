(** Dimensional analysis for the data plane (DESIGN.md §10).

    Every headline number this reproduction produces — waterfill rates,
    token-bucket drains, control-overhead accounting — is physically
    dimensioned, and a single Gbps-vs-bytes-per-ns slip silently
    invalidates a whole benchmark trajectory without failing any test.
    This module makes the compiler guard that bookkeeping: each physical
    quantity is a {e phantom-typed} wrapper around [float] (or [int] for
    discrete counters), so mixing units is a type error, while the
    representation stays exactly the raw number — constructors and
    observers are [%identity] externals, wrappers are [private]
    abbreviations, and arrays of quantities are flat float arrays. Hot
    paths stay allocation-free and bit-for-bit identical to the unwrapped
    formulas.

    {b Canonical units} (every boundary that carries one of these
    dimensions uses exactly this unit):
    - data amounts: {!type-bytes} (bytes) and {!type-bits} (bits);
    - rates: ['u] {!per_ns} — {!byte_rate} (bytes/ns ≡ GB/s, the
      allocator's unit) and {!type-gbps} (bits/ns ≡ Gbps, the user-facing
      unit). The two differ by exactly the factor 8 that
      {!byte_rate_of_gbps}/{!gbps_of_byte_rate} apply;
    - durations: {!type-ns} (float nanoseconds — the engine clock's unit;
      integer engine timestamps stay [int] ns) and {!type-seconds}
      (wall-clock scale, bench-side only);
    - dimensionless shares in [[0, 1]]: {!type-fraction} (link-rate
      fractions, headroom, loss probabilities);
    - discrete counters: {!type-ticks} (rate epochs, rounds).

    The only legal cross-unit operations are the named combinators below;
    same-unit algebra goes through the generic helpers. Internal math may
    unwrap with {!to_float} at a function boundary and work on locals —
    but r2c2-lint rule U2 rejects arithmetic {e directly} on a
    [to_float] application, and U1 rejects raw float literals flowing
    into unit-typed labeled arguments without a constructor. *)

type +'u t = private float
(** A quantity of dimension ['u]. The representation {e is} the raw
    float (no box, no tag); only the type layer distinguishes units. *)

(** {2 Dimension tags} *)

type byte_u
type bit_u
type ns_u
type sec_u
type frac_u

type 'u per_ns
(** Rate dimension constructor: ['u per_ns t] is ['u] per nanosecond. *)

(** {2 The quantity types} *)

type bytes = byte_u t
(** A byte count (payload sizes, queue depths, wire-byte totals). *)

type bits = bit_u t
(** A bit count. *)

type byte_rate = byte_u per_ns t
(** Bytes per nanosecond (≡ GB/s): the waterfill allocator's rate unit.
    A 10 Gbps link is [byte_rate 1.25]. *)

type gbps = bit_u per_ns t
(** Bits per nanosecond (≡ Gbps): the user-facing rate unit of configs,
    allocations and reports. *)

type ns = ns_u t
(** A duration in float nanoseconds (demand-estimation periods, pacing
    gaps). Engine timestamps remain [int] nanoseconds. *)

type seconds = sec_u t
(** A duration in seconds — wall-clock accounting on the bench side. *)

type fraction = frac_u t
(** A dimensionless share, by convention in [[0, 1]]: routing link-rate
    fractions, capacity headroom, loss probabilities. Range is {e not}
    checked — consumers keep their own contracts. *)

type ticks = private int
(** A discrete counter: rate-computation epochs, anti-entropy rounds. *)

(** {2 Constructors and observers}

    All [%identity]: wrapping asserts the unit, it never transforms the
    number. *)

external bytes : float -> bytes = "%identity"
external bits : float -> bits = "%identity"
external byte_rate : float -> byte_rate = "%identity"
external gbps : float -> gbps = "%identity"
external ns : float -> ns = "%identity"
external seconds : float -> seconds = "%identity"
external fraction : float -> fraction = "%identity"
external ticks : int -> ticks = "%identity"

external to_float : 'u t -> float = "%identity"
(** The single unwrapping observer. Bind the result to a local before
    doing arithmetic — lint rule U2 flags operators applied directly to a
    [to_float] application outside this module. *)

external ticks_to_int : ticks -> int = "%identity"

val bytes_of_int : int -> bytes
(** [float_of_int] then {!bytes} — for the [int]-typed packet and payload
    sizes crossing into rate math. *)

val ns_of_int : int -> ns
(** [float_of_int] then {!ns} — for engine timestamps entering rate
    math. *)

(** {2 Cross-unit combinators}

    Each is exactly its raw-float formula (property-tested bit-for-bit
    in [test_util.ml]); the type says which mixings are legal. *)

val rate_of : amount:'u t -> dt:ns -> 'u per_ns t
(** [rate_of ~amount ~dt] is [amount /. dt] — e.g. queued bytes over an
    observation period is a {!byte_rate}. *)

val drain : rate:'u per_ns t -> dt:ns -> 'u t
(** [drain ~rate ~dt] is [rate *. dt]: the amount a token bucket drains
    in [dt]. *)

val fill_time : amount:'u t -> rate:'u per_ns t -> ns
(** [fill_time ~amount ~rate] is [amount /. rate]: serialization /
    pacing time. *)

val scale_by_fraction : 'u t -> fraction -> 'u t
(** [scale_by_fraction q f] is [q *. f] — the unit survives scaling by a
    dimensionless share (headroom, link fraction). *)

val frac_of : num:'u t -> den:'u t -> fraction
(** [frac_of ~num ~den] is [num /. den]: the dimensionless ratio of two
    same-unit quantities (utilization, goodput retention). *)

val bits_of_bytes : bytes -> bits
(** [*. 8.0] *)

val bytes_of_bits : bits -> bytes
(** [/. 8.0] *)

val gbps_of_byte_rate : byte_rate -> gbps
(** [*. 8.0] — bytes/ns to Gbps, the conversion the whole API boundary
    pivots on. *)

val byte_rate_of_gbps : gbps -> byte_rate
(** [/. 8.0] *)

val seconds_of_ns : ns -> seconds
(** [*. 1e-9] *)

val ns_of_seconds : seconds -> ns
(** [*. 1e9] *)

(** {2 Same-unit algebra} *)

val zero : 'u t
val add : 'u t -> 'u t -> 'u t
val sub : 'u t -> 'u t -> 'u t
val min_q : 'u t -> 'u t -> 'u t
val max_q : 'u t -> 'u t -> 'u t

val compare_q : 'u t -> 'u t -> int
(** [Float.compare] on the raw numbers (total, NaN-safe — lint rule S2
    compliant). *)

val tick_succ : ticks -> ticks

(** {2 Zero-copy array and pair views}

    Inside this module a ['u t array] {e is} a [float array], so these
    are aliases, not copies — mutating one view mutates the other. They
    exist so boundary code can hand a typed array to unwrapped internal
    math (or bless a freshly computed one) without a per-element pass.
    Blessing ([of_floats], [pairs_of_floats]) asserts the unit of every
    element; keep it at module boundaries. *)

val floats_of : 'u t array -> float array
val of_floats : float array -> 'u t array
val pairs_to_floats : (int * 'u t) array -> (int * float) array
val pairs_of_floats : (int * float) array -> (int * 'u t) array
