(* Flat int-record and int-slice pools (DESIGN.md §11). Both stores are
   Bigarrays of native ints: loads and stores never touch the OCaml heap,
   there is no write barrier, and the GC never scans them — which is the
   whole point: the packet hot path must allocate nothing per packet. *)

module A1 = Bigarray.Array1

let make_store n = A1.create Bigarray.int Bigarray.c_layout n

let grow_store store n' =
  let store' = make_store n' in
  A1.blit store (A1.sub store' 0 (A1.dim store));
  A1.fill (A1.sub store' (A1.dim store) (n' - A1.dim store)) 0;
  store'

(* -- fixed-width records ------------------------------------------------- *)

type t = {
  w : int;
  mutable store : (int, Bigarray.int_elt, Bigarray.c_layout) A1.t;
  mutable state : Bytes.t;  (* 0 = free, 1 = live, per record *)
  mutable cap : int;  (* record count *)
  mutable free_head : int;  (* free list chained through field 0; -1 = none *)
  mutable next_fresh : int;  (* first never-allocated record *)
  mutable live : int;
  mutable high_water : int;
}

let create ?(capacity = 256) ~width () =
  if width <= 0 then invalid_arg "Arena.create: width";
  let capacity = max 1 capacity in
  let store = make_store (capacity * width) in
  A1.fill store 0;
  {
    w = width;
    store;
    state = Bytes.make capacity '\000';
    cap = capacity;
    free_head = -1;
    next_fresh = 0;
    live = 0;
    high_water = 0;
  }

let width t = t.w
let capacity t = t.cap
let live t = t.live
let high_water t = t.high_water
let data t = t.store
let base t h = h * t.w

let is_live t h = h >= 0 && h < t.cap && Bytes.unsafe_get t.state h = '\001'

let grow t =
  let cap' = 2 * t.cap in
  t.store <- grow_store t.store (cap' * t.w);
  let state' = Bytes.make cap' '\000' in
  Bytes.blit t.state 0 state' 0 t.cap;
  t.state <- state';
  t.cap <- cap'

let[@inline] alloc_uninit t =
  let h =
    if t.free_head >= 0 then begin
      let h = t.free_head in
      t.free_head <- A1.unsafe_get t.store (h * t.w);
      h
    end
    else begin
      if t.next_fresh = t.cap then grow t;
      let h = t.next_fresh in
      t.next_fresh <- h + 1;
      h
    end
  in
  Bytes.unsafe_set t.state h '\001';
  t.live <- t.live + 1;
  if t.live > t.high_water then t.high_water <- t.live;
  h

let alloc t =
  let h = alloc_uninit t in
  (* Explicit loop: A1.sub would allocate a descriptor on the heap. *)
  for f = h * t.w to (h * t.w) + t.w - 1 do
    A1.unsafe_set t.store f 0
  done;
  h

let[@inline] free t h =
  if h < 0 || h >= t.cap then invalid_arg "Arena.free: handle out of range";
  if Bytes.unsafe_get t.state h <> '\001' then invalid_arg "Arena.free: double free";
  Bytes.unsafe_set t.state h '\000';
  A1.unsafe_set t.store (h * t.w) t.free_head;
  t.free_head <- h;
  t.live <- t.live - 1

let get t h f = A1.unsafe_get t.store ((h * t.w) + f)
let set t h f v = A1.unsafe_set t.store ((h * t.w) + f) v

(* -- refcounted int slices ------------------------------------------------ *)

(* Block layout: [len; refcount; e0 .. e(len-1)]; the handle points at e0.
   Freed blocks go on a per-length free list chained through e0 (so only
   slices of length >= 1 are ever recycled; the empty slice is a shared
   singleton). Blocks are reused at their exact length — routes come in a
   handful of hop counts, so exact-fit lists stay short and never
   fragment. *)
module Ints = struct
  type pool = {
    mutable store : (int, Bigarray.int_elt, Bigarray.c_layout) A1.t;
    mutable cap : int;  (* words *)
    mutable next_fresh : int;
    by_len : (int, int) Hashtbl.t;  (* length -> free-list head handle *)
    mutable live : int;
    mutable live_words : int;
  }

  let empty = 2

  let create ?(capacity = 1024) () =
    let capacity = max 16 capacity in
    let store = make_store capacity in
    A1.fill store 0;
    (* Words 0-1 are the empty slice's header: length 0, pinned. *)
    {
      store;
      cap = capacity;
      next_fresh = 2;
      (* Steady state sees one free list per distinct route length — a
         handful of hop counts even on the 8x8x8 torus. *)
      by_len = Hashtbl.create 16;
      live = 0;
      live_words = 0;
    }

  let data p = p.store
  let live p = p.live
  let live_words p = p.live_words
  let length p s = A1.unsafe_get p.store (s - 2)
  let refcount p s = A1.unsafe_get p.store (s - 1)
  let get p s i = A1.unsafe_get p.store (s + i)
  let set p s i v = A1.unsafe_set p.store (s + i) v

  let ensure p words =
    let cap' = ref p.cap in
    while p.next_fresh + words > !cap' do
      cap' := 2 * !cap'
    done;
    if !cap' <> p.cap then begin
      p.store <- grow_store p.store !cap';
      p.cap <- !cap'
    end

  let alloc_block p len =
    match Hashtbl.find_opt p.by_len len with
    | Some s when s >= 0 ->
        let next = A1.unsafe_get p.store s in
        Hashtbl.replace p.by_len len next;
        A1.unsafe_set p.store (s - 1) 1;
        s
    | _ ->
        ensure p (len + 2);
        let s = p.next_fresh + 2 in
        p.next_fresh <- p.next_fresh + len + 2;
        A1.unsafe_set p.store (s - 2) len;
        A1.unsafe_set p.store (s - 1) 1;
        s

  let of_array p a =
    let len = Array.length a in
    if len = 0 then empty
    else begin
      let s = alloc_block p len in
      for i = 0 to len - 1 do
        A1.unsafe_set p.store (s + i) a.(i)
      done;
      p.live <- p.live + 1;
      p.live_words <- p.live_words + len;
      s
    end

  let[@inline] retain p s =
    if s <> empty then begin
      let rc = A1.unsafe_get p.store (s - 1) in
      if rc <= 0 then invalid_arg "Arena.Ints.retain: slice is free";
      A1.unsafe_set p.store (s - 1) (rc + 1)
    end

  let[@inline] release p s =
    if s <> empty then begin
      let rc = A1.unsafe_get p.store (s - 1) in
      if rc <= 0 then invalid_arg "Arena.Ints.release: double release";
      A1.unsafe_set p.store (s - 1) (rc - 1);
      if rc = 1 then begin
        let len = length p s in
        let head = match Hashtbl.find_opt p.by_len len with Some h -> h | None -> -1 in
        A1.unsafe_set p.store s head;
        Hashtbl.replace p.by_len len s;
        p.live <- p.live - 1;
        p.live_words <- p.live_words - len
      end
    end
end
