(** Mutable binary min-heap keyed by integer priority.

    The simulator's event queue: priorities are times in nanoseconds.
    Entries with equal priority are popped in insertion order, which makes
    event processing deterministic. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push h priority v] inserts [v]. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum-priority entry. *)

val peek : 'a t -> (int * 'a) option

(** {2 Allocation-free variants}

    For users with non-negative priorities (the simulator's times): plain
    ints instead of options, [-1] as the empty marker. *)

val peek_prio : 'a t -> int
(** Priority of the minimum entry, or [-1] when the heap is empty. *)

val pop_int : int t -> int
(** Specialization for int-valued heaps: removes the minimum entry and
    returns its value, or [-1] when empty. The removed entry's priority is
    readable via {!popped_prio}. *)

val popped_prio : 'a t -> int
(** Priority of the entry last removed by {!pop} / {!pop_int}; [-1]
    before any removal. *)

val clear : 'a t -> unit
