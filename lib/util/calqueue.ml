(* Calendar queue over int payloads: a wheel of 1-unit FIFO buckets for the
   near future, a binary heap for everything past the window. See the .mli
   for the ordering proof obligations; the invariants maintained here are

     I1  every bucketed entry satisfies win_start <= time < win_start + wheel,
         and sits in bucket (time - win_start);
     I2  every heap entry satisfies time >= win_start + wheel;
     I3  win_start is a multiple of wheel and never decreases;
     I4  the window advances only when the wheel is empty.

   I1 + I2 make cross-store ties impossible; I4 plus migrating in heap
   order makes migration order-transparent. *)

type t = {
  wheel : int;
  mutable win_start : int;
  heads : int array;  (* per-bucket FIFO head payload; -1 = empty *)
  tails : int array;
  bits : int array;  (* occupancy bitmap, 32 buckets per word: the word
                        index and bit position are then shift/mask, not a
                        division by the awkward 63 (OCaml ints are 63-bit) *)
  mutable next : int array;  (* FIFO link per payload; grown on demand *)
  overflow : int Heap.t;
  mutable in_wheel : int;
  mutable cursor : int;  (* no nonempty bucket lies below this slot *)
  mutable overflow_pushes : int;
  mutable last_time : int;  (* time of the entry removed by [pop_fast] *)
}

let create ?(wheel = 16384) ?(start = 0) () =
  if wheel < 1 then invalid_arg "Calqueue.create: wheel";
  {
    wheel;
    win_start = start - (start mod wheel);
    heads = Array.make wheel (-1);
    tails = Array.make wheel (-1);
    bits = Array.make ((wheel + 31) / 32) 0;
    next = Array.make 256 (-1);
    overflow = Heap.create ();
    in_wheel = 0;
    cursor = 0;
    overflow_pushes = 0;
    last_time = -1;
  }

let size t = t.in_wheel + Heap.size t.overflow
let is_empty t = size t = 0
let overflow_pushes t = t.overflow_pushes

let grow_next t id =
  let n = ref (Array.length t.next) in
  while id >= !n do
    n := 2 * !n
  done;
  let next' = Array.make !n (-1) in
  Array.blit t.next 0 next' 0 (Array.length t.next);
  t.next <- next'

(* Indices are in range by construction (slot < wheel, id < length next),
   so the bucket ops use unsafe accesses: this runs once per event. *)
let bucket_add t slot id =
  Array.unsafe_set t.next id (-1);
  if Array.unsafe_get t.heads slot < 0 then begin
    Array.unsafe_set t.heads slot id;
    let w = slot lsr 5 in
    Array.unsafe_set t.bits w
      (Array.unsafe_get t.bits w lor (1 lsl (slot land 31)))
  end
  else Array.unsafe_set t.next (Array.unsafe_get t.tails slot) id;
  Array.unsafe_set t.tails slot id;
  t.in_wheel <- t.in_wheel + 1

let add t ~time id =
  if id < 0 then invalid_arg "Calqueue.add: negative payload";
  if time < t.win_start then invalid_arg "Calqueue.add: time below window";
  if id >= Array.length t.next then grow_next t id;
  let slot = time - t.win_start in
  if slot < t.wheel then begin
    (* [bucket_add], hand-inlined: this is once per scheduled event. *)
    if slot < t.cursor then t.cursor <- slot;
    Array.unsafe_set t.next id (-1);
    if Array.unsafe_get t.heads slot < 0 then begin
      Array.unsafe_set t.heads slot id;
      let w = slot lsr 5 in
      Array.unsafe_set t.bits w
        (Array.unsafe_get t.bits w lor (1 lsl (slot land 31)))
    end
    else Array.unsafe_set t.next (Array.unsafe_get t.tails slot) id;
    Array.unsafe_set t.tails slot id;
    t.in_wheel <- t.in_wheel + 1
  end
  else begin
    Heap.push t.overflow time id;
    t.overflow_pushes <- t.overflow_pushes + 1
  end

(* First nonempty bucket at or after the cursor, cached back into the
   cursor so the peek-then-pop pattern pays for one search, not two. Only
   called when in_wheel > 0, so a set bit exists. The lowest set bit is
   located with five mask tests rather than a linear bit walk — this runs
   once per event. *)
let scan t =
  let w = ref (t.cursor lsr 5) in
  let masked =
    Array.unsafe_get t.bits !w land lnot ((1 lsl (t.cursor land 31)) - 1)
  in
  let word = ref masked in
  while !word = 0 do
    incr w;
    word := Array.unsafe_get t.bits !w
  done;
  let b = ref (!word land - !word) in
  let n = ref (!w lsl 5) in
  if !b land 0xFFFF = 0 then begin
    n := !n + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    n := !n + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    n := !n + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    n := !n + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr n;
  t.cursor <- !n;
  !n

(* Window empty: jump it to the overflow minimum (kept wheel-aligned, I3)
   and migrate everything now inside it, in heap order. *)
let advance t =
  let tmin = Heap.peek_prio t.overflow in
  if tmin >= 0 then begin
    t.win_start <- tmin - (tmin mod t.wheel);
    t.cursor <- 0;
    let win_end = t.win_start + t.wheel in
    while
      let p = Heap.peek_prio t.overflow in
      p >= 0 && p < win_end
    do
      let id = Heap.pop_int t.overflow in
      bucket_add t (Heap.popped_prio t.overflow - t.win_start) id
    done
  end

(* The fast group is what the engine's hot loop uses: no option, no tuple,
   so draining the queue allocates nothing. [pop_until] is the whole drain
   step in one scan — peek-then-pop would search the bitmap twice. *)
let pop_until t ~until =
  if t.in_wheel = 0 then advance t;
  if t.in_wheel = 0 then -1
  else begin
    let slot = scan t in
    let time = t.win_start + slot in
    t.last_time <- time;
    if time > until then -2
    else begin
      let id = Array.unsafe_get t.heads slot in
      let nx = Array.unsafe_get t.next id in
      Array.unsafe_set t.heads slot nx;
      if nx < 0 then begin
        Array.unsafe_set t.tails slot (-1);
        let w = slot lsr 5 in
        Array.unsafe_set t.bits w
          (Array.unsafe_get t.bits w land lnot (1 lsl (slot land 31)))
      end;
      t.in_wheel <- t.in_wheel - 1;
      id
    end
  end

let pop_fast t = pop_until t ~until:max_int

let peek_time_fast t =
  if t.in_wheel > 0 then t.win_start + scan t else Heap.peek_prio t.overflow

let[@inline] popped_time t = t.last_time

let peek_time t =
  match peek_time_fast t with -1 -> None | time -> Some time

let pop t =
  let id = pop_fast t in
  if id < 0 then None else Some (t.last_time, id)
