(** Flat object pools for the simulator's packet hot path (DESIGN.md §11).

    A pool is one contiguous Bigarray of boxed-free native ints; objects are
    fixed-width records addressed by integer handle, recycled through a free
    list. Allocating or freeing touches no OCaml heap, so a steady-state
    alloc/free loop runs at zero minor-words per object — the property the
    [hotpath] bench and its CI gate assert.

    Handles are plain ints. The pool detects double frees (and use of a
    handle outside the live range) but {e not} use-after-free through a
    stale handle whose slot was since reallocated; owners must follow the
    usual discipline of never reading a handle they released. *)

type t

val create : ?capacity:int -> width:int -> unit -> t
(** A pool of [width]-field int records; [capacity] (default 256) is the
    initial record count, grown by doubling. Raises [Invalid_argument] if
    [width <= 0]. *)

val width : t -> int

val alloc : t -> int
(** Pops a free record (all fields zeroed) and returns its handle. *)

val alloc_uninit : t -> int
(** {!alloc} without the field zeroing — the contents are unspecified (a
    recycled record keeps stale values). For callers that overwrite every
    field anyway; the packet path does, so zeroing first would double the
    stores. *)

val free : t -> int -> unit
(** Returns a record to the free list. Raises [Invalid_argument] on a
    double free or an out-of-range handle. *)

val get : t -> int -> int -> int
(** [get pool h f] reads field [f] of record [h]. Unchecked beyond array
    bounds: the caller owns handle validity. *)

val set : t -> int -> int -> int -> unit

val base : t -> int -> int
(** [base pool h] is the index of record [h]'s field 0 inside {!data} —
    for modules that read fields through {!data} directly. *)

val data : t -> (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The backing store. Grows (is replaced) when the pool grows, so hot
    readers must re-fetch it after any [alloc]. *)

val is_live : t -> int -> bool
val live : t -> int
(** Currently allocated record count. *)

val high_water : t -> int
(** Peak of {!live} over the pool's lifetime. *)

val capacity : t -> int

(** Refcounted int slices in one flat pool — the simulator's route store.
    A slice is allocated once per flow and shared by every packet that
    carries the route (retransmits included); the last [release] recycles
    it onto a per-length free list. *)
module Ints : sig
  type pool

  val create : ?capacity:int -> unit -> pool
  (** [capacity] (default 1024) is the initial word count. *)

  val of_array : pool -> int array -> int
  (** Copies the array into the pool; returns a slice handle with
      refcount 1. The empty array yields the shared handle {!empty}. *)

  val empty : int
  (** The canonical zero-length slice; retain/release on it are no-ops. *)

  val length : pool -> int -> int

  val get : pool -> int -> int -> int
  (** [get pool s i] is element [i] of slice [s]; bounds unchecked beyond
      the backing array. *)

  val set : pool -> int -> int -> int -> unit

  val retain : pool -> int -> unit
  (** Adds one owner. *)

  val release : pool -> int -> unit
  (** Drops one owner; the last release frees the slice. Raises
      [Invalid_argument] when the slice is already free (double
      release). *)

  val refcount : pool -> int -> int

  val live : pool -> int
  (** Live slice count. *)

  val live_words : pool -> int

  val data : pool -> (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** Backing store; element [i] of slice [s] lives at index [s + i].
      Replaced on growth, so re-fetch after any allocation. *)
end
