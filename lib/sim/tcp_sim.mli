(** TCP baseline over ECMP single-path routing (paper §5.2).

    A NewReno-style window protocol: slow start, congestion avoidance,
    triple-duplicate-ACK fast retransmit with NewReno partial-ACK recovery,
    and retransmission timeouts. Every flow uses one hash-chosen shortest
    path; receivers send cumulative ACKs along the reverse path. Output
    queues are finite and tail-drop, which is TCP's congestion signal. *)

type config = {
  link_gbps : Util.Units.gbps;
  hop_latency_ns : int;
  mtu : int;  (** wire bytes per data packet, header included *)
  queue_capacity : int;  (** bytes per output queue *)
  init_cwnd : float;  (** packets *)
  rto_min_ns : int;
  seed : int;
}

val default_config : config
(** 10 Gbps, 100 ns hops, 1500-byte MTU, 64 KB queues, cwnd 10,
    100 µs minimum RTO. *)

type result = {
  metrics : Metrics.t;
  max_queue : int array;
  drops : int;
  retransmits : int;
  data_wire_bytes : Util.Units.bytes;
}

val run : ?until_ns:int -> config -> Topology.t -> Workload.Flowgen.spec list -> result
