(** End-to-end reliability layer (paper §6, "Reliability").

    R2C2 deliberately decouples congestion control from reliability:
    acknowledgements exist solely to detect loss, never to clock the
    sending rate. This module implements that layer as selective-repeat
    ARQ over an abstract lossy channel, so it can run over the packet
    simulator or any other datapath.

    The transfer completes when every sequence number has been
    acknowledged; lost data or ACK packets are recovered by per-packet
    retransmission timers. *)

type config = {
  packets : int;  (** sequence numbers to deliver *)
  rtx_timeout_ns : int;  (** initial per-packet retransmission timeout *)
  max_retries : int;  (** per packet; exceeding it aborts the transfer *)
  rtx_backoff : float;
      (** multiplier applied to the timeout after every unacknowledged
          attempt; values <= 1.0 keep the fixed-period behavior *)
  rtx_cap_ns : int;  (** upper bound on the backed-off timeout *)
}

val timeout_ns : config -> attempt:int -> int
(** Retransmission timeout armed after attempt number [attempt] (0-based):
    [min rtx_cap_ns (rtx_timeout_ns * rtx_backoff^attempt)]. *)

type stats = {
  delivered : int;  (** distinct packets received *)
  transmissions : int;  (** data packets sent, including retransmissions *)
  acks_sent : int;
  completed : bool;
  finish_ns : int;  (** completion time; -1 if aborted *)
}

val transfer :
  Engine.t ->
  config ->
  send_data:(seq:int -> attempt:int -> bool) ->
  send_ack:(seq:int -> bool) ->
  ack_delay_ns:int ->
  data_delay_ns:int ->
  (stats -> unit) ->
  unit
(** [transfer eng cfg ~send_data ~send_ack ~ack_delay_ns ~data_delay_ns k]
    drives a transfer on the engine; [send_data]/[send_ack] return [false]
    to drop the packet (the caller models the channel). [k] receives the
    final statistics when the transfer completes or aborts. *)

val run_over_lossy_channel :
  ?seed:int -> loss:Util.Units.fraction -> config -> rtt_ns:int -> stats
(** Convenience harness: both directions drop independently with
    probability [loss]; one-way delay is [rtt_ns / 2]. *)
