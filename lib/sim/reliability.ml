type config = {
  packets : int;
  rtx_timeout_ns : int;
  max_retries : int;
  rtx_backoff : float;
  rtx_cap_ns : int;
}

let timeout_ns cfg ~attempt =
  if cfg.rtx_backoff <= 1.0 then cfg.rtx_timeout_ns
  else begin
    let t = float_of_int cfg.rtx_timeout_ns *. (cfg.rtx_backoff ** float_of_int attempt) in
    min cfg.rtx_cap_ns (int_of_float (Float.min t 1e18))
  end

type stats = {
  delivered : int;
  transmissions : int;
  acks_sent : int;
  completed : bool;
  finish_ns : int;
}

type state = {
  cfg : config;
  eng : Engine.t;
  acked : bool array;
  received : bool array;
  mutable outstanding : int;
  mutable transmissions : int;
  mutable acks_sent : int;
  mutable aborted : bool;
  mutable finished : bool;
}

let transfer eng cfg ~send_data ~send_ack ~ack_delay_ns ~data_delay_ns k =
  if cfg.packets <= 0 then invalid_arg "Reliability.transfer: no packets";
  let st =
    {
      cfg;
      eng;
      acked = Array.make cfg.packets false;
      received = Array.make cfg.packets false;
      outstanding = cfg.packets;
      transmissions = 0;
      acks_sent = 0;
      aborted = false;
      finished = false;
    }
  in
  let finish () =
    if not st.finished then begin
      st.finished <- true;
      k
        {
          delivered = Array.fold_left (fun n r -> if r then n + 1 else n) 0 st.received;
          transmissions = st.transmissions;
          acks_sent = st.acks_sent;
          completed = not st.aborted && st.outstanding = 0;
          finish_ns = (if st.aborted then -1 else Engine.now eng);
        }
    end
  in
  let on_ack seq =
    if not st.acked.(seq) then begin
      st.acked.(seq) <- true;
      st.outstanding <- st.outstanding - 1;
      if st.outstanding = 0 then finish ()
    end
  in
  let deliver seq =
    (* Receiver side: record and acknowledge (also re-ACK duplicates, since
       the original ACK may have been lost). *)
    st.received.(seq) <- true;
    st.acks_sent <- st.acks_sent + 1;
    if send_ack ~seq then Engine.after eng ack_delay_ns (fun () -> on_ack seq)
  in
  let rec attempt seq n =
    if st.aborted || st.acked.(seq) then ()
    else if n > st.cfg.max_retries then begin
      st.aborted <- true;
      finish ()
    end
    else begin
      st.transmissions <- st.transmissions + 1;
      if send_data ~seq ~attempt:n then Engine.after eng data_delay_ns (fun () -> deliver seq);
      Engine.after eng (timeout_ns st.cfg ~attempt:n) (fun () -> attempt seq (n + 1))
    end
  in
  for seq = 0 to cfg.packets - 1 do
    attempt seq 0
  done

let run_over_lossy_channel ?(seed = 1) ~loss cfg ~rtt_ns =
  let loss = (loss : Util.Units.fraction :> float) in
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Reliability: loss out of range";
  let eng = Engine.create () in
  let rng = Util.Rng.create seed in
  let result = ref None in
  transfer eng cfg
    ~send_data:(fun ~seq:_ ~attempt:_ -> Util.Rng.float rng 1.0 >= loss)
    ~send_ack:(fun ~seq:_ -> Util.Rng.float rng 1.0 >= loss)
    ~ack_delay_ns:(rtt_ns / 2) ~data_delay_ns:(rtt_ns / 2)
    (fun s -> result := Some s);
  Engine.run eng;
  match !result with
  | Some s -> s
  | None -> failwith "Reliability: transfer did not terminate"
