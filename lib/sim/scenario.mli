(** Declarative chaos scenarios with invariant monitors.

    A scenario is a timeline of fault-injection events — crashes,
    restarts, binary and gray link failures, partitions — composed as
    data and executed against a {!R2c2_sim.t}, while {e invariant
    monitors} watch the run and fail it loudly the moment the stack
    violates one of its correctness properties. The robustness test
    suite and the graychaos bench are both written in this DSL.

    Determinism: a scenario adds no RNG draws of its own, so a given
    (config seed, timeline) pair replays the exact same run — including
    under both engine backends. *)

type event =
  | Crash of int  (** state-losing node failure ({!R2c2_sim.crash_node_at}) *)
  | Restart of int  (** cold restart + rejoin protocol *)
  | Fail_link of int * int
  | Restore_link of int * int
  | Flaky of {
      u : int;
      v : int;
      loss : Util.Units.fraction;
      spike : Util.Units.fraction;
      spike_ns : int option;
    }  (** gray failure: flag the cable as intermittently lossy/slow *)
  | Unflaky of int * int
  | Partition of int list
      (** cut every cable between the vertex set and the rest of the rack *)
  | Heal of int list  (** restore the cables a [Partition] of the set cut *)
  | Surge of Workload.Flowgen.spec list
      (** inject a flow burst — e.g. a {!Workload.Flowgen.partition_aggregate}
          incast — with each spec's [arrival_ns] relative to the step
          instant; flows the simulator's admission control sheds are
          counted, not started *)

type step = { at_ns : int; event : event }

(** {2 Timeline constructors} *)

val crash : at:int -> int -> step
val restart : at:int -> int -> step
val fail_link : at:int -> int -> int -> step
val restore_link : at:int -> int -> int -> step

val flaky :
  at:int ->
  ?spike_ns:int ->
  int ->
  int ->
  loss:Util.Units.fraction ->
  spike:Util.Units.fraction ->
  step

val unflaky : at:int -> int -> int -> step
val partition : at:int -> int list -> step
val heal : at:int -> int list -> step
val surge : at:int -> Workload.Flowgen.spec list -> step

(** {2 Invariants} *)

type invariant =
  | Byte_conservation
      (** end check: every injected payload byte is accounted for —
          [injected = delivered + dropped + blackholed] *)
  | No_crashed_traversal
      (** continuous check (fabric arrival tap): no packet is ever
          observed arriving at — hence traversing — a crashed node *)
  | Reconverge_within of { max_ns : int }
      (** end check: every fault-injection record reconverged (the rate
          allocation reflects the new topology) within [max_ns] of its
          detection *)
  | View_staleness of { max_ns : int; poll_ns : int }
      (** polled check: no continuous stretch of control-plane view
          divergence lasts longer than [max_ns]; also fails if views
          still disagree when the run ends *)
  | Slo_attainment of { priority : int; min_attainment : float }
      (** end check: the class's measured SLO attainment
          ({!Metrics.slo_attainment} — exact per-flow accounting, not a
          percentile estimate) is at least [min_attainment]; vacuously 1
          when the class completed no flows or has no SLO armed *)
  | Tail_latency of { priority : int; percentile : float; max_ns : int }
      (** end check: the class's FCT [percentile] read from its
          log-bucketed histogram is within [max_ns]; skipped when the
          class completed no flows *)

type report = {
  checks : int;  (** individual invariant evaluations performed *)
  violations : string list;  (** in detection order; empty on a clean run *)
  worst_staleness_ns : int;
      (** longest continuous view-divergence stretch observed by a
          [View_staleness] monitor (0 without one) *)
  end_ns : int;  (** simulation clock when the run went idle *)
}

val run :
  ?on_violation:(string -> unit) ->
  ?until_ns:int ->
  invariants:invariant list ->
  R2c2_sim.t ->
  step list ->
  report
(** Schedule every step of the timeline, install the monitors, drive the
    simulation to completion and run the end-of-run checks. Steps may be
    given in any order; same-instant events apply in list order.

    [on_violation] fires at the moment a violation is detected, default
    [failwith] — a violated invariant kills the run loudly unless the
    caller overrides it (the tests do, to assert on collected
    violations, which are always also returned in the report). *)
