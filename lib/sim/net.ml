type kind =
  | Data of { flow : int; seq : int; last : bool }
  | Ack of { flow : int; ackno : int }
  | Bcast of { bcast_id : int; root : int; tree : int; seq : int }
  | Digest of { root : int; tree : int; epoch : int; last_seq : int; hash : int64 }
  | Nack of { root : int; tree : int; from_seq : int; to_seq : int; requester : int }
  | Sync of { root : int; entries : int list; last_seqs : int array }

type packet = {
  kind : kind;
  bytes : int;
  route : int array;
  mutable hop : int;
}

(* Bcast and Digest fan out along a (root, tree) broadcast tree; Nack and
   Sync are source-routed unicast like Data/Ack. All four are control
   plane. *)
let is_control = function
  | Bcast _ | Digest _ | Nack _ | Sync _ -> true
  | Data _ | Ack _ -> false

module U = Util.Units

type chaos = {
  crng : Util.Rng.t;
  mutable loss : float;
  mutable reorder : float;
  mutable dup : float;
}

type link_state = {
  q : packet Queue.t;
  mutable busy : bool;
  mutable qbytes : int;
  mutable max_qbytes : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  links : link_state array;
  queue_capacity : int;
  count_control : bool;
  bits_per_ns : float;
  hop_latency_ns : int;
  mutable broadcast : Broadcast.t option;
  mutable deliver : packet -> unit;
  mutable bcast_deliver : packet -> node:int -> unit;
  mutable drop : packet -> unit;
  mutable drops : int;
  mutable data_wire : float;
  mutable control_wire : float;
  (* Physical down-state, applied at the failure instant — distinct from
     the control-plane view in [Topology]'s overlay, which the simulation
     flips only after the detection delay. Packets meeting a dead element
     are blackholed and counted. *)
  link_up : bool array;
  nodes_up : bool array;
  mutable on_blackhole : packet -> unit;
  mutable blackholes : int;
  mutable blackholed_bytes : int;
  mutable blackholed_data_bytes : int;
  mutable blackholed_ctrl_bytes : int;
  (* Probabilistic control-plane chaos, independent of physical failures:
     loss / reorder / duplication drawn per hop from a dedicated RNG so
     runs are reproducible for a given seed whatever the data plane does. *)
  mutable chaos : chaos option;
  mutable ctrl_lost : int;
  mutable ctrl_lost_bytes : int;
  mutable ctrl_reordered : int;
  mutable ctrl_dupped : int;
  mutable ctrl_hops : int;  (* control hop transmissions, lost ones included *)
}

let create engine topo ?(queue_capacity = max_int) ?(count_control = true) ~link_gbps
    ~hop_latency_ns () =
  let link_gbps = (link_gbps : U.gbps :> float) in
  if link_gbps <= 0.0 then invalid_arg "Net.create: link_gbps";
  {
    engine;
    topo;
    links =
      Array.init (Topology.link_count topo) (fun _ ->
          { q = Queue.create (); busy = false; qbytes = 0; max_qbytes = 0 });
    queue_capacity;
    count_control;
    bits_per_ns = link_gbps;
    hop_latency_ns;
    broadcast = None;
    deliver = ignore;
    bcast_deliver = (fun _ ~node:_ -> ());
    drop = ignore;
    drops = 0;
    data_wire = 0.0;
    control_wire = 0.0;
    link_up = Array.make (Topology.link_count topo) true;
    nodes_up = Array.make (Topology.vertex_count topo) true;
    on_blackhole = ignore;
    blackholes = 0;
    blackholed_bytes = 0;
    blackholed_data_bytes = 0;
    blackholed_ctrl_bytes = 0;
    chaos = None;
    ctrl_lost = 0;
    ctrl_lost_bytes = 0;
    ctrl_reordered = 0;
    ctrl_dupped = 0;
    ctrl_hops = 0;
  }

let topo t = t.topo
let engine t = t.engine
let on_deliver t f = t.deliver <- f
let on_bcast_deliver t f = t.bcast_deliver <- f
let on_drop t f = t.drop <- f
let set_broadcast t b = t.broadcast <- Some b

let tx_time_ns t bytes =
  int_of_float (ceil (float_of_int (8 * bytes) /. t.bits_per_ns))

let count_wire t pkt =
  match pkt.kind with
  | Data _ | Ack _ -> t.data_wire <- t.data_wire +. float_of_int pkt.bytes
  | Bcast _ | Digest _ | Nack _ | Sync _ ->
      if t.count_control then t.control_wire <- t.control_wire +. float_of_int pkt.bytes

let check_rate name r =
  if r < 0.0 || r >= 1.0 then invalid_arg ("Net.set_control_chaos: " ^ name)

let set_control_chaos t ~seed ~loss ~reorder ~dup =
  let loss = (loss : U.fraction :> float)
  and reorder = (reorder : U.fraction :> float)
  and dup = (dup : U.fraction :> float) in
  check_rate "loss" loss;
  check_rate "reorder" reorder;
  check_rate "dup" dup;
  match t.chaos with
  | Some ch ->
      (* Retune mid-run without reseeding: the decision stream continues,
         so flipping rates at a deterministic sim time stays deterministic. *)
      ch.loss <- loss;
      ch.reorder <- reorder;
      ch.dup <- dup
  | None ->
      if loss > 0.0 || reorder > 0.0 || dup > 0.0 then
        t.chaos <- Some { crng = Util.Rng.create seed; loss; reorder; dup }

let ctrl_lost t = t.ctrl_lost
let ctrl_lost_bytes t = t.ctrl_lost_bytes
let ctrl_reordered t = t.ctrl_reordered
let ctrl_dupped t = t.ctrl_dupped
let ctrl_hops t = t.ctrl_hops

(* -- physical failures --------------------------------------------------- *)

let phys_link_up t l =
  t.link_up.(l) && t.nodes_up.(Topology.link_src t.topo l) && t.nodes_up.(Topology.link_dst t.topo l)

let blackhole t pkt =
  t.blackholes <- t.blackholes + 1;
  t.blackholed_bytes <- t.blackholed_bytes + pkt.bytes;
  if is_control pkt.kind then
    t.blackholed_ctrl_bytes <- t.blackholed_ctrl_bytes + pkt.bytes
  else t.blackholed_data_bytes <- t.blackholed_data_bytes + pkt.bytes;
  t.on_blackhole pkt

let purge_link t link_id =
  let ls = t.links.(link_id) in
  if ls.busy then begin
    (* The head packet is mid-serialization and owned by the pending
       tx-completion callback, which blackholes it itself; everything
       queued behind it dies now. *)
    let head = Queue.pop ls.q in
    while not (Queue.is_empty ls.q) do
      let pkt = Queue.pop ls.q in
      ls.qbytes <- ls.qbytes - pkt.bytes;
      blackhole t pkt
    done;
    Queue.push head ls.q
  end
  else
    while not (Queue.is_empty ls.q) do
      let pkt = Queue.pop ls.q in
      ls.qbytes <- ls.qbytes - pkt.bytes;
      blackhole t pkt
    done

let cable_ids t u v =
  match (Topology.find_link t.topo u v, Topology.find_link t.topo v u) with
  | Some a, Some b -> (a, b)
  | _ -> invalid_arg "Net: vertices not adjacent"

let fail_link t u v =
  let a, b = cable_ids t u v in
  t.link_up.(a) <- false;
  t.link_up.(b) <- false;
  purge_link t a;
  purge_link t b

let restore_link t u v =
  let a, b = cable_ids t u v in
  t.link_up.(a) <- true;
  t.link_up.(b) <- true

let fail_node t u =
  t.nodes_up.(u) <- false;
  (* Output queues live at the dead node; packets queued towards it at the
     neighbors die on arrival instead. *)
  Array.iter (fun (_, l) -> purge_link t l) (Topology.out_links t.topo u)

let restore_node t u = t.nodes_up.(u) <- true
let node_up t u = t.nodes_up.(u)
let on_blackhole t f = t.on_blackhole <- f
let blackholes t = t.blackholes
let blackholed_bytes t = t.blackholed_bytes
let blackholed_data_bytes t = t.blackholed_data_bytes
let blackholed_ctrl_bytes t = t.blackholed_ctrl_bytes

(* Forwarding is mutually recursive with arrival: an arriving packet is
   re-enqueued towards its next hop. *)
let rec start_tx t link_id =
  let ls = t.links.(link_id) in
  match Queue.peek_opt ls.q with
  | None -> ls.busy <- false
  | Some pkt ->
      ls.busy <- true;
      let tx = tx_time_ns t pkt.bytes in
      Engine.after t.engine tx (fun () ->
          let pkt = Queue.pop ls.q in
          ls.qbytes <- ls.qbytes - pkt.bytes;
          (* Serialization of the next packet overlaps propagation. *)
          start_tx t link_id;
          if phys_link_up t link_id then propagate t link_id pkt
          else blackhole t pkt)

(* One hop of propagation. Control packets pass through the chaos injector:
   three independent draws per hop (loss, reorder, duplicate) keep the RNG
   stream aligned across runs even when a rate is retuned mid-run. A
   reordered packet is held back a few extra hop latencies; a duplicate is a
   fresh record so the two copies advance their route cursors
   independently. *)
and propagate t link_id pkt =
  let dst = Topology.link_dst t.topo link_id in
  if is_control pkt.kind then t.ctrl_hops <- t.ctrl_hops + 1;
  match t.chaos with
  | Some ch when is_control pkt.kind ->
      let u_loss = Util.Rng.float ch.crng 1.0 in
      let u_reorder = Util.Rng.float ch.crng 1.0 in
      let u_dup = Util.Rng.float ch.crng 1.0 in
      if u_loss < ch.loss then begin
        t.ctrl_lost <- t.ctrl_lost + 1;
        t.ctrl_lost_bytes <- t.ctrl_lost_bytes + pkt.bytes
      end
      else begin
        let delay =
          if u_reorder < ch.reorder then begin
            t.ctrl_reordered <- t.ctrl_reordered + 1;
            t.hop_latency_ns * (2 + Util.Rng.int ch.crng 4)
          end
          else t.hop_latency_ns
        in
        Engine.after t.engine delay (fun () -> arrive t dst pkt);
        if u_dup < ch.dup then begin
          t.ctrl_dupped <- t.ctrl_dupped + 1;
          let copy = { pkt with hop = pkt.hop } in
          Engine.after t.engine (delay + t.hop_latency_ns) (fun () ->
              arrive t dst copy)
        end
      end
  | _ ->
      Engine.after t.engine t.hop_latency_ns (fun () -> arrive t dst pkt)

and enqueue_link t link_id pkt =
  if not (phys_link_up t link_id) then blackhole t pkt
  else begin
    let ls = t.links.(link_id) in
    if ls.qbytes + pkt.bytes > t.queue_capacity then begin
      t.drops <- t.drops + 1;
      t.drop pkt
    end
    else begin
      Queue.push pkt ls.q;
      ls.qbytes <- ls.qbytes + pkt.bytes;
      if ls.qbytes > ls.max_qbytes then ls.max_qbytes <- ls.qbytes;
      if not ls.busy then start_tx t link_id
    end
  end

and arrive t node pkt =
  if not t.nodes_up.(node) then blackhole t pkt
  else begin
    count_wire t pkt;
    match pkt.kind with
    | Bcast { root; tree; _ } | Digest { root; tree; _ } ->
        t.bcast_deliver pkt ~node;
        forward_bcast t ~root ~tree ~from:node ~bytes:pkt.bytes ~kind:pkt.kind
    | Data _ | Ack _ | Nack _ | Sync _ -> (
        pkt.hop <- pkt.hop + 1;
        assert (pkt.route.(pkt.hop) = node);
        if pkt.hop = Array.length pkt.route - 1 then t.deliver pkt
        else
          match Topology.find_link t.topo node pkt.route.(pkt.hop + 1) with
          | Some l -> enqueue_link t l pkt
          | None -> invalid_arg "Net: route crosses non-adjacent vertices")
  end

and forward_bcast t ~root ~tree ~from ~bytes ~kind =
  let b =
    match t.broadcast with
    | Some b -> b
    | None -> invalid_arg "Net: broadcast FIB not configured"
  in
  List.iter
    (fun child ->
      match Topology.find_link t.topo from child with
      | Some l -> enqueue_link t l { kind; bytes; route = [||]; hop = 0 }
      | None -> assert false)
    (Broadcast.children b ~src:root ~tree from)

let send t pkt =
  let len = Array.length pkt.route in
  if len < 2 then invalid_arg "Net.send: route needs at least two vertices";
  let node = pkt.route.(pkt.hop) in
  match Topology.find_link t.topo node pkt.route.(pkt.hop + 1) with
  | Some l -> enqueue_link t l pkt
  | None -> invalid_arg "Net.send: route crosses non-adjacent vertices"

let send_bcast t ?(seq = 0) ~root ~tree ~bcast_id ~bytes () =
  forward_bcast t ~root ~tree ~from:root ~bytes
    ~kind:(Bcast { bcast_id; root; tree; seq })

let send_tree t ~root ~tree ~kind ~bytes =
  (match kind with
  | Bcast _ | Digest _ -> ()
  | Data _ | Ack _ | Nack _ | Sync _ ->
      invalid_arg "Net.send_tree: kind is not tree-forwarded");
  forward_bcast t ~root ~tree ~from:root ~bytes ~kind

let max_queue_bytes t = Array.map (fun ls -> ls.max_qbytes) t.links
let drops t = t.drops
let data_bytes_on_wire t = U.bytes t.data_wire
let control_bytes_on_wire t = U.bytes t.control_wire

let reset_wire_counters t =
  t.data_wire <- 0.0;
  t.control_wire <- 0.0
