(* Arena-backed packet fabric (DESIGN.md §11). A packet is 8 native ints
   in a flat pool — exactly one cache line: a meta word packing kind code,
   hop cursor and wire bytes, the interned route handle, and six payload
   words — so injecting, forwarding and delivering allocates nothing on
   the OCaml heap and touches one line per stage. The FIFO queue link
   lives in a side array ([qnext]) rather than the record, both to fit the
   line and because eight neighbouring links share a line of their own.
   Routes live in a shared refcounted slice pool: one copy per flow,
   shared by every packet (retransmits included).

   Hot-path field access goes through local mirrors of the two backing
   Bigarrays ([st], [sl]) so reads compile to single monomorphic loads;
   the mirrors are re-fetched after an allocation whose handle lies past
   them — i.e. exactly when pool growth replaced the store. *)

module U = Util.Units
module Arena = Util.Arena

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type packet = int
type route = int

let fields = 8

(* Meta word: bits 0-3 kind code, bits 4-13 hop cursor (routes are capped
   far below 1024 hops by the wire format), bits 14+ wire bytes. *)
let f_meta = 0
let f_route = 1
let f_p0 = 2
let f_p1 = 3
let f_p2 = 4
let f_p3 = 5
let f_p4 = 6
let f_p5 = 7

let meta_kind m = m land 15
let meta_hop m = (m lsr 4) land 1023
let meta_bytes m = m lsr 14
let meta_make ~code ~bytes = code lor (bytes lsl 14)
let meta_hop_unit = 1 lsl 4

let code_data = 0
let code_ack = 1
let code_bcast = 2
let code_digest = 3
let code_nack = 4
let code_sync = 5
let code_pause = 6

(* Engine tag space, owned by this module via [Engine.set_dispatch]. *)
let tag_txdone = 0
let tag_arrive = 1

type chaos = {
  crng : Util.Rng.t;
  mutable loss : float;
  mutable reorder : float;
  mutable dup : float;
}

(* Gray failures: a flagged link intermittently loses packets and spikes
   its latency — any packet kind, both directions — from a dedicated RNG
   so runs stay seed-deterministic. Per-link attempt/loss counters feed
   the health estimator upstairs. Links not flagged draw nothing, so a
   run without flaky links has a bit-identical event stream. *)
type flaky = {
  frng : Util.Rng.t;
  floss : float array;  (* per directed link: loss probability *)
  fspike : float array;  (* per directed link: latency-spike probability *)
  mutable spike_ns : int;  (* extra delay a spiked hop suffers *)
  factive : Bytes.t;  (* '\001' when the link has any flaky behavior *)
  ftx : int array;  (* propagation attempts on flagged links *)
  flost : int array;  (* flaky losses per link *)
}

(* Output queue: intrusive FIFO chained through the fabric's [qnext]. *)
type link_state = {
  mutable head : int;
  mutable tail : int;
  mutable busy : bool;
  mutable qbytes : int;
  mutable max_qbytes : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  pool : Arena.t;
  slices : Arena.Ints.pool;
  mutable st : ba;  (* mirror of [Arena.data pool]; refresh after alloc *)
  mutable sl : ba;  (* mirror of [Arena.Ints.data slices] *)
  (* Per-packet FIFO link (see the header comment); grown in lockstep with
     the pool. Only meaningful while the packet sits in an output queue. *)
  mutable qnext : int array;
  links : link_state array;
  (* Link endpoints copied out of [Topology] into flat arrays: the per-hop
     liveness check reads both ends of a link, and an array load beats a
     cross-module accessor call. *)
  src_of : int array;
  dst_of : int array;
  queue_capacity : int;
  (* Queue-occupancy watermarks for overload detection: a link whose
     occupancy exceeds [q_high] is flagged overloaded and stays flagged
     until it drains below [q_low] (hysteresis). Default high = max_int
     keeps the whole machinery inert — no flag is ever set and the event
     stream is bit-identical to a build without it. *)
  mutable q_high : int;
  mutable q_low : int;
  over : Bytes.t;  (* per directed link: '\001' while overloaded *)
  mutable over_count : int;
  count_control : bool;
  bits_per_ns : float;
  (* One-entry serialization-time memo: traffic is dominated by a single
     packet size, so the float divide + ceil runs once per size change,
     not once per transmission. *)
  mutable tx_memo_bytes : int;
  mutable tx_memo_ns : int;
  hop_latency_ns : int;
  mutable broadcast : Broadcast.t option;
  mutable deliver : packet -> unit;
  mutable bcast_deliver : packet -> node:int -> unit;
  mutable drop : packet -> unit;
  mutable drops : int;
  (* Wire byte counters kept as ints (exact below 2^53 when exported as
     float): incrementing a mutable float field in a mixed record boxes a
     float per packet, which the zero-allocation contract forbids. *)
  mutable data_wire : int;
  mutable control_wire : int;
  (* Physical down-state, applied at the failure instant — distinct from
     the control-plane view in [Topology]'s overlay, which the simulation
     flips only after the detection delay. Packets meeting a dead element
     are blackholed and counted. *)
  link_up : bool array;
  nodes_up : bool array;
  (* Conjunction [link_up && both endpoints up] folded into one byte per
     directed link, maintained at the (rare) fail/restore points so the
     twice-per-hop liveness check is a single load. *)
  link_live : Bytes.t;
  mutable on_blackhole : packet -> unit;
  mutable blackholes : int;
  mutable blackholed_bytes : int;
  mutable blackholed_data_bytes : int;
  mutable blackholed_ctrl_bytes : int;
  (* Probabilistic control-plane chaos, independent of physical failures:
     loss / reorder / duplication drawn per hop from a dedicated RNG so
     runs are reproducible for a given seed whatever the data plane does. *)
  mutable chaos : chaos option;
  mutable ctrl_lost : int;
  mutable ctrl_lost_bytes : int;
  mutable ctrl_reordered : int;
  mutable ctrl_dupped : int;
  mutable ctrl_hops : int;  (* control hop transmissions, lost ones included *)
  (* Gray-failure injection, [None] until a link is flagged. *)
  mutable flaky : flaky option;
  mutable flaky_lost : int;
  mutable flaky_lost_bytes : int;
  (* Observation tap fired on every live arrival (relays included); the
     chaos-scenario invariant monitors hang off this. *)
  mutable arrive_tap : node:int -> packet -> unit;
}

(* -- field access --------------------------------------------------------- *)

let fget t h f = Bigarray.Array1.unsafe_get t.st ((h * fields) + f)
let fset t h f v = Bigarray.Array1.unsafe_set t.st ((h * fields) + f) v

(* Slice header: length at [s - 2] (see Arena.Ints). *)
let slen t s = Bigarray.Array1.unsafe_get t.sl (s - 2)
let sget t s i = Bigarray.Array1.unsafe_get t.sl (s + i)

(* Callers write every field (send_sr, fanout, clone), so the record comes
   back uninitialized; the mirror is only re-fetched when the handle lies
   past it, i.e. exactly when the pool grew and replaced its store. *)
let alloc_pkt t =
  let h = Arena.alloc_uninit t.pool in
  if (h + 1) * fields > Bigarray.Array1.dim t.st then begin
    t.st <- Arena.data t.pool;
    let q = Array.make (Arena.capacity t.pool) (-1) in
    Array.blit t.qnext 0 q 0 (Array.length t.qnext);
    t.qnext <- q
  end;
  h

let intern t a =
  let s = Arena.Ints.of_array t.slices a in
  t.sl <- Arena.Ints.data t.slices;
  s

(* Terminal for every packet: drop the route reference (and, for Sync, the
   two payload slices), then recycle the record. *)
let free_pkt t h =
  Arena.Ints.release t.slices (fget t h f_route);
  if meta_kind (fget t h f_meta) = code_sync then begin
    Arena.Ints.release t.slices (fget t h f_p1);
    Arena.Ints.release t.slices (fget t h f_p2)
  end;
  Arena.free t.pool h

let clone_pkt t h =
  let c = alloc_pkt t in
  for f = 0 to fields - 1 do
    fset t c f (fget t h f)
  done;
  t.qnext.(c) <- -1;
  Arena.Ints.retain t.slices (fget t c f_route);
  if meta_kind (fget t c f_meta) = code_sync then begin
    Arena.Ints.retain t.slices (fget t c f_p1);
    Arena.Ints.retain t.slices (fget t c f_p2)
  end;
  c

(* -- public accessors ----------------------------------------------------- *)

let kind t h = meta_kind (fget t h f_meta)

(* Bcast and Digest fan out along a (root, tree) broadcast tree; Nack and
   Sync are source-routed unicast like Data/Ack. All four are control
   plane. *)
let is_control t h = meta_kind (fget t h f_meta) >= code_bcast
let bytes t h = meta_bytes (fget t h f_meta)
let hop t h = meta_hop (fget t h f_meta)
let route_length t h = slen t (fget t h f_route)
let route_at t h i = sget t (fget t h f_route) i

let route_last t h =
  let r = fget t h f_route in
  sget t r (slen t r - 1)

let data_flow t h = fget t h f_p0
let data_seq t h = fget t h f_p1
let data_last t h = fget t h f_p2 <> 0
let ack_flow t h = fget t h f_p0
let ack_ackno t h = fget t h f_p1
let bcast_id t h = fget t h f_p0
let bcast_root t h = fget t h f_p1
let bcast_tree t h = fget t h f_p2
let bcast_seq t h = fget t h f_p3
let bcast_inc t h = fget t h f_p4
let digest_root t h = fget t h f_p0
let digest_tree t h = fget t h f_p1
let digest_epoch t h = fget t h f_p2
let digest_last_seq t h = fget t h f_p3

let digest_hash t h =
  Int64.logor
    (Int64.shift_left (Int64.of_int (fget t h f_p5)) 32)
    (Int64.of_int (fget t h f_p4))

let nack_root t h = fget t h f_p0
let nack_tree t h = fget t h f_p1
let nack_from t h = fget t h f_p2
let nack_to t h = fget t h f_p3
let nack_requester t h = fget t h f_p4
let pause_node t h = fget t h f_p0
let pause_class t h = fget t h f_p1
let pause_level t h = fget t h f_p2
let pause_window t h = fget t h f_p3
let sync_root t h = fget t h f_p0

let sync_entries t h =
  let s = fget t h f_p1 in
  let acc = ref [] in
  for i = slen t s - 1 downto 0 do
    acc := sget t s i :: !acc
  done;
  !acc

let sync_last_seqs t h =
  let s = fget t h f_p2 in
  Array.init (slen t s) (fun i -> sget t s i)

(* -- construction --------------------------------------------------------- *)

let topo t = t.topo
let engine t = t.engine
let on_deliver t f = t.deliver <- f
let on_bcast_deliver t f = t.bcast_deliver <- f
let on_drop t f = t.drop <- f
let set_broadcast t b = t.broadcast <- Some b

let tx_time_ns t bytes =
  if bytes = t.tx_memo_bytes then t.tx_memo_ns
  else begin
    let ns = int_of_float (ceil (float_of_int (8 * bytes) /. t.bits_per_ns)) in
    t.tx_memo_bytes <- bytes;
    t.tx_memo_ns <- ns;
    ns
  end

let check_rate name r =
  if r < 0.0 || r >= 1.0 then invalid_arg ("Net.set_control_chaos: " ^ name)

let set_control_chaos t ~seed ~loss ~reorder ~dup =
  let loss = (loss : U.fraction :> float)
  and reorder = (reorder : U.fraction :> float)
  and dup = (dup : U.fraction :> float) in
  check_rate "loss" loss;
  check_rate "reorder" reorder;
  check_rate "dup" dup;
  match t.chaos with
  | Some ch ->
      (* Retune mid-run without reseeding: the decision stream continues,
         so flipping rates at a deterministic sim time stays deterministic. *)
      ch.loss <- loss;
      ch.reorder <- reorder;
      ch.dup <- dup
  | None ->
      if loss > 0.0 || reorder > 0.0 || dup > 0.0 then
        t.chaos <- Some { crng = Util.Rng.create seed; loss; reorder; dup }

let ctrl_lost t = t.ctrl_lost
let ctrl_lost_bytes t = t.ctrl_lost_bytes
let ctrl_reordered t = t.ctrl_reordered
let ctrl_dupped t = t.ctrl_dupped
let ctrl_hops t = t.ctrl_hops

(* -- gray failures -------------------------------------------------------- *)

let flaky_cable t u v =
  match (Topology.find_link t.topo u v, Topology.find_link t.topo v u) with
  | Some a, Some b -> (a, b)
  | _ -> invalid_arg "Net: vertices not adjacent"

let get_flaky t ~seed =
  match t.flaky with
  | Some fl -> fl
  | None ->
      let n = Topology.link_count t.topo in
      let fl =
        {
          frng = Util.Rng.create seed;
          floss = Array.make n 0.0;
          fspike = Array.make n 0.0;
          spike_ns = 0;
          factive = Bytes.make n '\000';
          ftx = Array.make n 0;
          flost = Array.make n 0;
        }
      in
      t.flaky <- Some fl;
      fl

let set_flaky_link t ~seed ?(spike_ns = 0) u v ~loss ~spike =
  let loss = (loss : U.fraction :> float)
  and spike = (spike : U.fraction :> float) in
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Net.set_flaky_link: loss";
  if spike < 0.0 || spike >= 1.0 then invalid_arg "Net.set_flaky_link: spike";
  if spike_ns < 0 then invalid_arg "Net.set_flaky_link: spike_ns";
  let a, b = flaky_cable t u v in
  let fl = get_flaky t ~seed in
  fl.floss.(a) <- loss;
  fl.floss.(b) <- loss;
  fl.fspike.(a) <- spike;
  fl.fspike.(b) <- spike;
  if spike_ns > 0 then fl.spike_ns <- spike_ns;
  let flag = if loss > 0.0 || spike > 0.0 then '\001' else '\000' in
  Bytes.set fl.factive a flag;
  Bytes.set fl.factive b flag

let clear_flaky_link t u v =
  match t.flaky with
  | None -> ()
  | Some fl ->
      let a, b = flaky_cable t u v in
      fl.floss.(a) <- 0.0;
      fl.floss.(b) <- 0.0;
      fl.fspike.(a) <- 0.0;
      fl.fspike.(b) <- 0.0;
      Bytes.set fl.factive a '\000';
      Bytes.set fl.factive b '\000'

let flaky_link_stats t u v =
  match t.flaky with
  | None -> (0, 0)
  | Some fl ->
      let a, b = flaky_cable t u v in
      (fl.ftx.(a) + fl.ftx.(b), fl.flost.(a) + fl.flost.(b))

let flaky_lost t = t.flaky_lost
let flaky_lost_bytes t = t.flaky_lost_bytes
let set_arrive_tap t f = t.arrive_tap <- f

(* -- routes --------------------------------------------------------------- *)

let intern_route t a = intern t a
let retain_route t r = Arena.Ints.retain t.slices r
let release_route t r = Arena.Ints.release t.slices r

(* -- physical failures ---------------------------------------------------- *)

let phys_link_up t l = Bytes.unsafe_get t.link_live l = '\001'

let recompute_link_live t l =
  let live =
    Array.unsafe_get t.link_up l
    && Array.unsafe_get t.nodes_up (Array.unsafe_get t.src_of l)
    && Array.unsafe_get t.nodes_up (Array.unsafe_get t.dst_of l)
  in
  Bytes.unsafe_set t.link_live l (if live then '\001' else '\000')

(* Watermark hysteresis: a link is flagged when its occupancy crosses
   [q_high] upward and unflagged only once it drains to [q_low], so a queue
   oscillating just under the high mark cannot flap the overload signal.
   Both checks are branch + byte read on the hot path, no allocation. *)
let note_q_grew t link_id ls =
  if ls.qbytes > t.q_high && Bytes.unsafe_get t.over link_id = '\000' then begin
    Bytes.unsafe_set t.over link_id '\001';
    t.over_count <- t.over_count + 1
  end

let note_q_shrank t link_id ls =
  if ls.qbytes <= t.q_low && Bytes.unsafe_get t.over link_id = '\001' then begin
    Bytes.unsafe_set t.over link_id '\000';
    t.over_count <- t.over_count - 1
  end

let blackhole t h =
  let m = fget t h f_meta in
  let b = meta_bytes m in
  t.blackholes <- t.blackholes + 1;
  t.blackholed_bytes <- t.blackholed_bytes + b;
  if meta_kind m >= code_bcast then
    t.blackholed_ctrl_bytes <- t.blackholed_ctrl_bytes + b
  else t.blackholed_data_bytes <- t.blackholed_data_bytes + b;
  t.on_blackhole h;
  free_pkt t h

let purge_link t link_id =
  let ls = t.links.(link_id) in
  if ls.busy then begin
    (* The head packet is mid-serialization and owned by the pending
       tx-completion event, which blackholes it itself; everything
       queued behind it dies now. *)
    let head = ls.head in
    let p = ref t.qnext.(head) in
    while !p >= 0 do
      let pkt = !p in
      p := t.qnext.(pkt);
      ls.qbytes <- ls.qbytes - meta_bytes (fget t pkt f_meta);
      blackhole t pkt
    done;
    t.qnext.(head) <- -1;
    ls.tail <- head
  end
  else begin
    let p = ref ls.head in
    while !p >= 0 do
      let pkt = !p in
      p := t.qnext.(pkt);
      ls.qbytes <- ls.qbytes - meta_bytes (fget t pkt f_meta);
      blackhole t pkt
    done;
    ls.head <- -1;
    ls.tail <- -1
  end;
  note_q_shrank t link_id ls

let cable_ids t u v =
  match (Topology.find_link t.topo u v, Topology.find_link t.topo v u) with
  | Some a, Some b -> (a, b)
  | _ -> invalid_arg "Net: vertices not adjacent"

let fail_link t u v =
  let a, b = cable_ids t u v in
  t.link_up.(a) <- false;
  t.link_up.(b) <- false;
  recompute_link_live t a;
  recompute_link_live t b;
  purge_link t a;
  purge_link t b

let restore_link t u v =
  let a, b = cable_ids t u v in
  t.link_up.(a) <- true;
  t.link_up.(b) <- true;
  recompute_link_live t a;
  recompute_link_live t b

(* Refresh the folded liveness byte of every link incident to [u], both
   directions. *)
let refresh_node_links t u =
  Array.iter
    (fun (v, l) ->
      recompute_link_live t l;
      let back = Topology.find_link_id t.topo v u in
      if back >= 0 then recompute_link_live t back)
    (Topology.out_links t.topo u)

let fail_node t u =
  t.nodes_up.(u) <- false;
  refresh_node_links t u;
  (* Output queues live at the dead node; packets queued towards it at the
     neighbors die on arrival instead. *)
  Array.iter (fun (_, l) -> purge_link t l) (Topology.out_links t.topo u)

let restore_node t u =
  t.nodes_up.(u) <- true;
  refresh_node_links t u
let node_up t u = t.nodes_up.(u)
let on_blackhole t f = t.on_blackhole <- f
let blackholes t = t.blackholes
let blackholed_bytes t = t.blackholed_bytes
let blackholed_data_bytes t = t.blackholed_data_bytes
let blackholed_ctrl_bytes t = t.blackholed_ctrl_bytes

(* -- forwarding ----------------------------------------------------------- *)

(* Forwarding is mutually recursive with arrival: an arriving packet is
   re-enqueued towards its next hop. *)
let rec start_tx t link_id =
  let ls = t.links.(link_id) in
  if ls.head < 0 then ls.busy <- false
  else begin
    ls.busy <- true;
    let tx = tx_time_ns t (meta_bytes (fget t ls.head f_meta)) in
    Engine.after_tagged t.engine tx ~tag:tag_txdone ~a:link_id ~b:0
  end

and tx_done t link_id =
  let ls = t.links.(link_id) in
  let pkt = ls.head in
  let nx = Array.unsafe_get t.qnext pkt in
  ls.head <- nx;
  if nx < 0 then ls.tail <- -1;
  ls.qbytes <- ls.qbytes - meta_bytes (fget t pkt f_meta);
  note_q_shrank t link_id ls;
  (* Serialization of the next packet overlaps propagation. *)
  start_tx t link_id;
  if phys_link_up t link_id then propagate t link_id pkt else blackhole t pkt

(* One hop of propagation. Control packets pass through the chaos injector:
   three independent draws per hop (loss, reorder, duplicate) keep the RNG
   stream aligned across runs even when a rate is retuned mid-run. A
   reordered packet is held back a few extra hop latencies; a duplicate is a
   fresh pool record so the two copies advance their route cursors
   independently. *)
and propagate t link_id pkt =
  let dst = Array.unsafe_get t.dst_of link_id in
  let ctrl = meta_kind (fget t pkt f_meta) >= code_bcast in
  if ctrl then t.ctrl_hops <- t.ctrl_hops + 1;
  (* Gray-failure injection runs first: two draws per packet, flagged
     links only, so a run without flaky links draws nothing here. A flaky
     loss goes through the ordinary [drop] callback (not the blackhole
     path): upstairs it is indistinguishable from a queue drop, so
     payload accounting and per-packet retransmission just work and byte
     conservation holds. [-1] marks the packet as consumed. *)
  let spike_ns =
    match t.flaky with
    | Some fl when Bytes.unsafe_get fl.factive link_id = '\001' ->
        fl.ftx.(link_id) <- fl.ftx.(link_id) + 1;
        let u_loss = Util.Rng.float fl.frng 1.0 in
        let u_spike = Util.Rng.float fl.frng 1.0 in
        if u_loss < fl.floss.(link_id) then begin
          fl.flost.(link_id) <- fl.flost.(link_id) + 1;
          t.flaky_lost <- t.flaky_lost + 1;
          t.flaky_lost_bytes <-
            t.flaky_lost_bytes + meta_bytes (fget t pkt f_meta);
          t.drops <- t.drops + 1;
          t.drop pkt;
          free_pkt t pkt;
          -1
        end
        else if u_spike < fl.fspike.(link_id) then fl.spike_ns
        else 0
    | _ -> 0
  in
  if spike_ns >= 0 then begin
    match t.chaos with
    | Some ch when ctrl ->
        let u_loss = Util.Rng.float ch.crng 1.0 in
        let u_reorder = Util.Rng.float ch.crng 1.0 in
        let u_dup = Util.Rng.float ch.crng 1.0 in
        if u_loss < ch.loss then begin
          t.ctrl_lost <- t.ctrl_lost + 1;
          t.ctrl_lost_bytes <- t.ctrl_lost_bytes + meta_bytes (fget t pkt f_meta);
          free_pkt t pkt
        end
        else begin
          let delay =
            spike_ns
            +
            if u_reorder < ch.reorder then begin
              t.ctrl_reordered <- t.ctrl_reordered + 1;
              t.hop_latency_ns * (2 + Util.Rng.int ch.crng 4)
            end
            else t.hop_latency_ns
          in
          Engine.after_tagged t.engine delay ~tag:tag_arrive ~a:dst ~b:pkt;
          if u_dup < ch.dup then begin
            t.ctrl_dupped <- t.ctrl_dupped + 1;
            let copy = clone_pkt t pkt in
            Engine.after_tagged t.engine (delay + t.hop_latency_ns) ~tag:tag_arrive
              ~a:dst ~b:copy
          end
        end
    | _ ->
        Engine.after_tagged t.engine
          (t.hop_latency_ns + spike_ns)
          ~tag:tag_arrive ~a:dst ~b:pkt
  end

and enqueue_link t link_id pkt =
  if not (phys_link_up t link_id) then blackhole t pkt
  else begin
    let ls = t.links.(link_id) in
    let b = meta_bytes (fget t pkt f_meta) in
    if ls.qbytes + b > t.queue_capacity then begin
      t.drops <- t.drops + 1;
      t.drop pkt;
      free_pkt t pkt
    end
    else begin
      Array.unsafe_set t.qnext pkt (-1);
      if ls.head < 0 then ls.head <- pkt
      else Array.unsafe_set t.qnext ls.tail pkt;
      ls.tail <- pkt;
      ls.qbytes <- ls.qbytes + b;
      if ls.qbytes > ls.max_qbytes then ls.max_qbytes <- ls.qbytes;
      note_q_grew t link_id ls;
      if not ls.busy then start_tx t link_id
    end
  end

and arrive t node pkt =
  if not (Array.unsafe_get t.nodes_up node) then blackhole t pkt
  else begin
    t.arrive_tap ~node pkt;
    let m = fget t pkt f_meta in
    let k = meta_kind m in
    let b = meta_bytes m in
    if k >= code_bcast then begin
      if t.count_control then t.control_wire <- t.control_wire + b
    end
    else t.data_wire <- t.data_wire + b;
    if k = code_bcast || k = code_digest then begin
      t.bcast_deliver pkt ~node;
      let root = if k = code_bcast then fget t pkt f_p1 else fget t pkt f_p0 in
      let tree = if k = code_bcast then fget t pkt f_p2 else fget t pkt f_p1 in
      fanout t ~root ~tree ~from:node ~code:k ~bytes:b ~p0:(fget t pkt f_p0)
        ~p1:(fget t pkt f_p1) ~p2:(fget t pkt f_p2) ~p3:(fget t pkt f_p3)
        ~p4:(fget t pkt f_p4) ~p5:(fget t pkt f_p5);
      free_pkt t pkt
    end
    else begin
      let h = meta_hop m + 1 in
      fset t pkt f_meta (m + meta_hop_unit);
      let r = fget t pkt f_route in
      assert (sget t r h = node);
      if h = slen t r - 1 then begin
        t.deliver pkt;
        (* [free_pkt] with the kind and route already in registers. *)
        Arena.Ints.release t.slices r;
        if k = code_sync then begin
          Arena.Ints.release t.slices (fget t pkt f_p1);
          Arena.Ints.release t.slices (fget t pkt f_p2)
        end;
        Arena.free t.pool pkt
      end
      else begin
        let l = Topology.find_link_id t.topo node (sget t r (h + 1)) in
        if l < 0 then invalid_arg "Net: route crosses non-adjacent vertices";
        enqueue_link t l pkt
      end
    end
  end

and fanout t ~root ~tree ~from ~code ~bytes ~p0 ~p1 ~p2 ~p3 ~p4 ~p5 =
  let b =
    match t.broadcast with
    | Some b -> b
    | None -> invalid_arg "Net: broadcast FIB not configured"
  in
  List.iter
    (fun child ->
      match Topology.find_link t.topo from child with
      | Some l ->
          let h = alloc_pkt t in
          fset t h f_meta (meta_make ~code ~bytes);
          fset t h f_route Arena.Ints.empty;
          fset t h f_p0 p0;
          fset t h f_p1 p1;
          fset t h f_p2 p2;
          fset t h f_p3 p3;
          fset t h f_p4 p4;
          fset t h f_p5 p5;
          enqueue_link t l h
      | None -> assert false)
    (Broadcast.children b ~src:root ~tree from)

let create engine topo ?(queue_capacity = max_int) ?(count_control = true) ~link_gbps
    ~hop_latency_ns () =
  let link_gbps = (link_gbps : U.gbps :> float) in
  if link_gbps <= 0.0 then invalid_arg "Net.create: link_gbps";
  let pool = Arena.create ~capacity:1024 ~width:fields () in
  let slices = Arena.Ints.create ~capacity:4096 () in
  let t =
    {
      engine;
      topo;
      pool;
      slices;
      st = Arena.data pool;
      sl = Arena.Ints.data slices;
      qnext = Array.make (Arena.capacity pool) (-1);
      links =
        Array.init (Topology.link_count topo) (fun _ ->
            { head = -1; tail = -1; busy = false; qbytes = 0; max_qbytes = 0 });
      src_of = Array.init (Topology.link_count topo) (Topology.link_src topo);
      dst_of = Array.init (Topology.link_count topo) (Topology.link_dst topo);
      queue_capacity;
      q_high = max_int;
      q_low = 0;
      over = Bytes.make (Topology.link_count topo) '\000';
      over_count = 0;
      count_control;
      bits_per_ns = link_gbps;
      tx_memo_bytes = -1;
      tx_memo_ns = 0;
      hop_latency_ns;
      broadcast = None;
      deliver = ignore;
      bcast_deliver = (fun _ ~node:_ -> ());
      drop = ignore;
      drops = 0;
      data_wire = 0;
      control_wire = 0;
      link_up = Array.make (Topology.link_count topo) true;
      nodes_up = Array.make (Topology.vertex_count topo) true;
      link_live = Bytes.make (Topology.link_count topo) '\001';
      on_blackhole = ignore;
      blackholes = 0;
      blackholed_bytes = 0;
      blackholed_data_bytes = 0;
      blackholed_ctrl_bytes = 0;
      chaos = None;
      ctrl_lost = 0;
      ctrl_lost_bytes = 0;
      ctrl_reordered = 0;
      ctrl_dupped = 0;
      ctrl_hops = 0;
      flaky = None;
      flaky_lost = 0;
      flaky_lost_bytes = 0;
      arrive_tap = (fun ~node:_ _ -> ());
    }
  in
  (* The fabric owns the engine's tag space: 0 = tx completion on link [a],
     1 = arrival of packet [b] at node [a]. *)
  Engine.set_dispatch engine (fun ~tag ~a ~b ->
      if tag = tag_txdone then tx_done t a else arrive t a b);
  t

(* -- injection ------------------------------------------------------------ *)

(* Validate before allocating so a rejected send leaks nothing. *)
let send_sr t ~code ~bytes ~route ~p0 ~p1 ~p2 ~p3 ~p4 ~p5 =
  if slen t route < 2 then
    invalid_arg "Net.send: route needs at least two vertices";
  let l = Topology.find_link_id t.topo (sget t route 0) (sget t route 1) in
  if l < 0 then invalid_arg "Net.send: route crosses non-adjacent vertices";
  let h = alloc_pkt t in
  fset t h f_meta (meta_make ~code ~bytes);
  fset t h f_route route;
  fset t h f_p0 p0;
  fset t h f_p1 p1;
  fset t h f_p2 p2;
  fset t h f_p3 p3;
  fset t h f_p4 p4;
  fset t h f_p5 p5;
  Arena.Ints.retain t.slices route;
  enqueue_link t l h

let send_data t ~flow ~seq ~last ~bytes ~route =
  send_sr t ~code:code_data ~bytes ~route ~p0:flow ~p1:seq
    ~p2:(if last then 1 else 0) ~p3:0 ~p4:0 ~p5:0

let send_ack t ~flow ~ackno ~bytes ~route =
  send_sr t ~code:code_ack ~bytes ~route ~p0:flow ~p1:ackno ~p2:0 ~p3:0 ~p4:0
    ~p5:0

let send_nack t ~root ~tree ~from_seq ~to_seq ~requester ~bytes ~route =
  send_sr t ~code:code_nack ~bytes ~route ~p0:root ~p1:tree ~p2:from_seq
    ~p3:to_seq ~p4:requester ~p5:0

let send_pause t ~node ~cls ~level ~window_kbps ~bytes ~route =
  if cls < 0 then invalid_arg "Net.send_pause: negative class";
  if level < 0 then invalid_arg "Net.send_pause: negative level";
  send_sr t ~code:code_pause ~bytes ~route ~p0:node ~p1:cls ~p2:level
    ~p3:window_kbps ~p4:0 ~p5:0

let send_sync t ~root ~entries ~last_seqs ~bytes ~route =
  (* Ownership of both slices transfers into the packet: the sync
     delivery/drop paths release f_p1/f_p2 when the packet dies. *)
  let es = intern t (Array.of_list entries) in (* lint: allow L1 — receiver owns: freed with the sync packet *)
  let ls = intern t last_seqs in (* lint: allow L1 — receiver owns: freed with the sync packet *)
  send_sr t ~code:code_sync ~bytes ~route ~p0:root ~p1:es ~p2:ls ~p3:0 ~p4:0
    ~p5:0

let send_bcast t ?(seq = 0) ?(inc = 0) ~root ~tree ~bcast_id ~bytes () =
  fanout t ~root ~tree ~from:root ~code:code_bcast ~bytes ~p0:bcast_id ~p1:root
    ~p2:tree ~p3:seq ~p4:inc ~p5:0

let send_digest_tree t ~root ~tree ~epoch ~last_seq ~hash ~bytes =
  fanout t ~root ~tree ~from:root ~code:code_digest ~bytes ~p0:root ~p1:tree
    ~p2:epoch ~p3:last_seq
    ~p4:(Int64.to_int (Int64.logand hash 0xFFFFFFFFL))
    ~p5:(Int64.to_int (Int64.shift_right_logical hash 32))

(* -- telemetry ------------------------------------------------------------ *)

let set_queue_watermarks t ~high ~low =
  if high <= 0 then invalid_arg "Net.set_queue_watermarks: non-positive high";
  if low < 0 || low >= high then
    invalid_arg "Net.set_queue_watermarks: low must be in [0, high)";
  t.q_high <- high;
  t.q_low <- low;
  (* Re-evaluate standing queues against the new thresholds. *)
  Array.iteri (fun l ls -> note_q_grew t l ls; note_q_shrank t l ls) t.links

let overloaded_links t = t.over_count
let link_overloaded t ~link_id = Bytes.get t.over link_id = '\001'

let packets_live t = Arena.live t.pool
let packets_high_water t = Arena.high_water t.pool
let max_queue_bytes t = Array.map (fun ls -> ls.max_qbytes) t.links
let drops t = t.drops
let data_bytes_on_wire t = U.bytes (float_of_int t.data_wire)
let control_bytes_on_wire t = U.bytes (float_of_int t.control_wire)

let reset_wire_counters t =
  t.data_wire <- 0;
  t.control_wire <- 0
