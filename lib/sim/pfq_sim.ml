module U = Util.Units

type config = {
  link_gbps : U.gbps;
  hop_latency_ns : int;
  mtu : int;
  paths_per_flow : int;
  seed : int;
}

let default_config =
  { link_gbps = U.gbps 10.0; hop_latency_ns = 100; mtu = 1500; paths_per_flow = 8; seed = 1 }

type flow_result = {
  spec : Workload.Flowgen.spec;
  fct_ns : int;
  throughput_gbps : U.gbps;
}

type fstate = {
  spec : Workload.Flowgen.spec;
  subflows : (int * U.fraction) array list;  (** link lists of each path *)
  pipe_ns : int;  (** store-and-forward pipeline latency *)
  mutable remaining : float;
  mutable rate : float;  (** bytes/ns over all paths *)
}

let run ?until_ns cfg topo specs =
  let rctx = Routing.make topo in
  let rng = Util.Rng.create cfg.seed in
  let link_gbps_f = U.to_float cfg.link_gbps in
  let cap = U.byte_rate_of_gbps cfg.link_gbps in
  let capacities = Array.make (Topology.link_count topo) cap in
  let arrivals =
    ref (List.stable_sort (fun a b -> compare a.Workload.Flowgen.arrival_ns b.arrival_ns) specs)
  in
  let active : fstate list ref = ref [] in
  let finished = ref [] in
  let now = ref 0 in
  let horizon = Option.value ~default:max_int until_ns in

  let recompute () =
    let subs = ref [] in
    List.iter
      (fun st -> List.iter (fun links -> subs := (st, links) :: !subs) st.subflows)
      !active;
    let subs = Array.of_list !subs in
    let wf =
      Array.mapi (fun i (_, links) -> Congestion.Waterfill.flow ~id:i links) subs
    in
    let rates = U.floats_of (Congestion.Waterfill.allocate ~capacities wf) in
    List.iter (fun st -> st.rate <- 0.0) !active;
    Array.iteri (fun i (st, _) -> st.rate <- st.rate +. rates.(i)) subs
  in

  let admit spec =
    let open Workload.Flowgen in
    let paths =
      Routing.sample_paths_distinct rctx rng ~k:cfg.paths_per_flow ~src:spec.src ~dst:spec.dst
    in
    let subflows =
      List.map
        (fun p -> Array.map (fun l -> (l, U.fraction 1.0)) (Routing.path_links rctx p))
        paths
    in
    let hops = Topology.distance topo spec.src spec.dst in
    let tx = int_of_float (ceil (float_of_int (8 * cfg.mtu) /. link_gbps_f)) in
    let pipe_ns = hops * (tx + cfg.hop_latency_ns) in
    active :=
      { spec; subflows; pipe_ns; remaining = float_of_int spec.size; rate = 0.0 } :: !active
  in

  let running = ref true in
  while !running do
    (* Next event: an arrival or the earliest completion at current rates. *)
    let t_arrival =
      match !arrivals with [] -> max_int | s :: _ -> s.Workload.Flowgen.arrival_ns
    in
    let t_completion =
      List.fold_left
        (fun acc st ->
          if st.rate > 1e-12 then
            min acc (!now + int_of_float (ceil (st.remaining /. st.rate)))
          else acc)
        max_int !active
    in
    let t_next = min t_arrival t_completion in
    if t_next = max_int || t_next > horizon then running := false
    else begin
      let dt = float_of_int (t_next - !now) in
      List.iter
        (fun st -> st.remaining <- Float.max 0.0 (st.remaining -. (st.rate *. dt)))
        !active;
      now := t_next;
      (* Completions first, then arrivals, then one recomputation. *)
      let done_, still = List.partition (fun st -> st.remaining <= 0.5) !active in
      List.iter
        (fun st ->
          let fct = !now - st.spec.Workload.Flowgen.arrival_ns + st.pipe_ns in
          finished :=
            {
              spec = st.spec;
              fct_ns = fct;
              throughput_gbps = U.gbps (float_of_int (8 * st.spec.size) /. float_of_int fct);
            }
            :: !finished)
        done_;
      active := still;
      let rec admit_due () =
        match !arrivals with
        | s :: rest when s.Workload.Flowgen.arrival_ns <= !now ->
            arrivals := rest;
            admit s;
            admit_due ()
        | _ -> ()
      in
      admit_due ();
      if done_ <> [] || t_next = t_arrival then recompute ()
    end
  done;
  List.rev !finished
