(** Packet-level simulation of the R2C2 stack (paper §3, §5.2).

    Senders pace each flow with a token bucket at its allocated rate and
    source route every packet. Flow start/finish events travel as real
    16-byte broadcast packets over per-source spanning trees; once a flow's
    start broadcast has reached every node it joins the global rate
    computation, which runs periodically every [recompute_interval_ns]
    (§3.3.2). Until then the flow sends into the bandwidth headroom.

    Two entry points: {!run} simulates a pre-generated workload;
    {!create}/{!start_flow}/{!run_engine} expose the simulator as a handle
    so applications can start flows dynamically (e.g. an RPC server
    answering requests mid-simulation). *)

type control =
  | Global_epoch
      (** one rate computation per epoch over the globally-visible flow set,
          applied at every sender — a fast, faithful approximation (views
          diverge for less than a broadcast time, far below rho) *)
  | Per_node
      (** the paper's literal design: every sender maintains its own view of
          the traffic matrix from the broadcast packets it receives and runs
          its own water-filling for its own flows *)

type config = {
  link_gbps : Util.Units.gbps;
  hop_latency_ns : int;
  headroom : Util.Units.fraction;
  recompute_interval_ns : int;
  mtu : int;  (** wire bytes per data packet, header included *)
  trees_per_source : int;
  real_broadcast : bool;
      (** if false, visibility is modeled as tree-depth latency and no
          broadcast packets enter the fabric *)
  queue_capacity : int;  (** bytes per output queue; [max_int] = unbounded *)
  control : control;
  reselect_interval_ns : int option;
      (** §3.4: when set, flows alive for at least one interval are
          periodically re-assigned RPS or VLB by the GA routing selector,
          and the new assignment is advertised in one batched broadcast *)
  detection_delay_ns : int option;
      (** latency from a physical failure to every node's topology map
          reflecting it (§3.2 topology discovery); [None] = twice the time
          a broadcast packet needs to cross the rack diameter *)
  rtx_timeout_ns : int;  (** initial per-packet retransmission timeout *)
  rtx_backoff : float;
      (** timeout multiplier per retransmission of the same packet;
          [<= 1.0] keeps a fixed period *)
  rtx_cap_ns : int;  (** ceiling on the backed-off timeout *)
  rtx_max_retries : int;
      (** retransmissions per packet before the flow is aborted *)
  reliable_bcast : bool;
      (** loss-tolerant control plane: every flow-event broadcast carries a
          per-(source, tree) sequence number, receivers run windows with
          NACK-based repair from the origin's replay log, and sources
          beacon periodic anti-entropy digests whose state hash triggers a
          full-state sync on genuine divergence. Requires
          [real_broadcast] *)
  digest_interval_ns : int;  (** anti-entropy beacon period per source *)
  nack_delay_ns : int;
      (** delay from gap detection to the NACK (and between retries) *)
  bcast_log_cap : int;  (** origin replay-log depth per tree *)
  control_loss : Util.Units.fraction;
      (** chaos: per-hop control-packet loss probability, [0, 1) *)
  control_reorder : Util.Units.fraction;
      (** per-hop extra-delay (reorder) probability *)
  control_dup : Util.Units.fraction;  (** per-hop duplication probability *)
  loss_headroom_gain : float;
      (** graceful degradation: the waterfill reserves
          [min max_headroom (headroom + gain * loss EWMA)] instead of the
          static [headroom], so stale views overbook less under loss; a
          dimensionless gain, so a raw float *)
  max_headroom : Util.Units.fraction;
  flaky_spike_ns : int;
      (** default extra latency of a gray-failure spike ({!flaky_link_at}) *)
  health_interval_ns : int;  (** per-neighbor health estimator tick period *)
  health_alpha : float;
      (** EWMA gain of the per-cable loss estimate; higher reacts faster *)
  quarantine_loss_threshold : float;
      (** estimated loss rate above which a cable is quarantined *)
  probation_ns : int;
      (** dwell time in quarantine before probation, and in probation
          before the recovery verdict *)
  rejoin_retry_ns : int;
      (** period between JOIN re-announcements while a restarted node is
          still catching up *)
  queue_high_watermark : int;
      (** overload detection: a link whose queue exceeds this many bytes is
          flagged overloaded; [max_int] (the default) disables detection and
          keeps the event stream bit-identical to a build without it *)
  queue_low_watermark : int;
      (** hysteresis: the flag clears only once the queue drains to this *)
  overload_control : bool;
      (** master switch for strict-priority admission shedding and PAUSE
          backpressure; needs [queue_high_watermark] to be armed to ever
          see an overloaded epoch *)
  pause_interval_ns : int;
      (** a congested receiver emits at most one PAUSE per this period *)
  pause_class : int;
      (** backpressure covers classes numerically >= this (lower priority);
          classes above it are never paced — their tail latency is what the
          mechanism defends *)
  pause_backoff : float;
      (** multiplicative pacing decrease per PAUSE level, in (0, 1) *)
  pause_recovery : float;  (** additive pacing recovery per clean epoch *)
  pause_min_scale : float;  (** pacing-scale floor, in (0, 1] *)
  shed_recover_epochs : int;
      (** consecutive clean epochs before the shed floor re-admits one
          class — the admission-side hysteresis *)
  slos : (int * int) list;
      (** per-class SLO promises [(priority, fct_bound_ns)], installed into
          {!Metrics.set_slo} at {!create} *)
  reserve_priority : int;
      (** waterfill per-class headroom reservation applies to classes >=
          this priority *)
  class_reserve : Util.Units.fraction;
      (** link-capacity fraction withheld from those classes, [0, 1);
          0 (the default) disables the reservation *)
  engine_backend : Engine.backend;
      (** event-queue implementation; [Calendar] (the default) is the O(1)
          wheel, [Binary_heap] the reference queue kept for differential
          testing — both pop in (time, scheduling order), so results must
          be identical *)
  seed : int;
}

val default_config : config
(** 10 Gbps, 100 ns hops, 5% headroom, rho = 500 µs, 1500-byte MTU, real
    broadcasts, unbounded queues, global-epoch control, auto detection
    delay, 50 µs retransmission timeout doubling up to 1 ms, 30 retries,
    seed 1. Reliable broadcast off, digests every 100 µs, 20 µs NACK
    delay, 64 Ki replay log, no chaos, headroom gain 2 capped at 30%. *)

type failure = {
  kind : string;
      (** ["link"], ["node"], ["restore-link"], ["restore-node"],
          ["crash"], ["restart"] *)
  fail_ns : int;  (** when the physical event happened *)
  detect_ns : int;  (** when topology discovery surfaced it *)
  mutable reconverge_ns : int;
      (** first rate epoch at or after detection — every allocation reflects
          the new topology from here on; -1 if the run ended before then *)
  mutable aborted : int;  (** flows this event killed (dead endpoint) *)
  mutable repaired : int;  (** broadcast trees rebuilt at detection *)
}

type result = {
  metrics : Metrics.t;
  max_queue : int array;  (** per-link peak occupancy, bytes *)
  drops : int;
  data_wire_bytes : Util.Units.bytes;
  control_wire_bytes : Util.Units.bytes;
  recomputes : int;  (** rate recomputation rounds executed *)
  rate_updates : (int * Util.Units.gbps) list;
      (** (time ns, allocated rate) samples *)
  reselections : int;  (** §3.4 routing-reselection rounds executed *)
  flows_rerouted : int;  (** flows whose protocol a reselection changed *)
  blackholes : int;  (** packets of any kind destroyed by dead links/nodes *)
  blackholed_bytes : int;  (** their wire bytes *)
  injected_payload : int;
      (** payload bytes of every Data transmission, retransmissions included *)
  delivered_payload : int;
      (** payload bytes reaching their destination, duplicates included —
          [injected = delivered + dropped + blackholed] always holds *)
  dropped_payload : int;  (** payload lost to queue tail drops *)
  blackholed_payload : int;  (** payload destroyed by failures *)
  retransmissions : int;  (** Data packets re-sent after a loss *)
  aborted_flows : int list;
      (** flows killed by failures (dead endpoint or retries exhausted),
          ascending; they count as neither completed nor in-flight *)
  failures : failure list;  (** chronological fault-injection records *)
  tree_repairs : int;  (** broadcast trees rebuilt over the whole run *)
  tree_repair_bytes : int;  (** control bytes those rebuilds cost *)
  ctrl_lost : int;  (** control packets destroyed by chaos injection *)
  ctrl_lost_bytes : int;
  ctrl_reordered : int;  (** control packets given extra per-hop delay *)
  ctrl_dupped : int;  (** control packets duplicated in flight *)
  blackholed_data_bytes : int;  (** Data/Ack share of [blackholed_bytes] *)
  blackholed_ctrl_bytes : int;  (** control share of [blackholed_bytes] *)
  nacks_sent : int;  (** retransmission requests sent by receive windows *)
  event_retransmits : int;  (** origin replays answering NACKs *)
  sync_requests : int;  (** full-state syncs requested (hash divergence) *)
  syncs_sent : int;
  sync_bytes : int;  (** full-state repair traffic, wire bytes at origin *)
  dup_events_absorbed : int;
      (** broadcast deliveries absorbed as duplicates by receive windows *)
  divergence_epochs : int;
      (** rate epochs during which at least two alive nodes held different
          traffic-matrix views (Per_node) *)
  reconverge_samples : int list;
      (** ns from each first divergent epoch to the next epoch where every
          view was identical again *)
  terminal_diverged : int;
      (** nodes still disagreeing with the modal view when the run ended —
          0 is the steady-state correctness criterion *)
  loss_ewma : Util.Units.fraction;  (** final observed control-loss estimate *)
  effective_headroom : Util.Units.fraction;
      (** final loss-scaled waterfill headroom *)
  flaky_lost : int;  (** packets lost to gray-failure (flaky-link) injection *)
  flaky_lost_bytes : int;
  quarantines : int;  (** Healthy/Probation -> Quarantined transitions *)
  probations : int;  (** Quarantined -> Probation transitions *)
  recoveries : int;  (** Probation -> Healthy transitions *)
  joins_sent : int;  (** JOIN announcements sent, retries included *)
  rejoins : (int * int * int) list;
      (** [(node, restart_ns, caught_up_ns)] per completed rejoin *)
  rejoins_pending : int;
      (** restarted nodes still catching up when the run ended — 0 is the
          rejoin-protocol correctness criterion *)
  shed_flows : int;
      (** flows refused by admission control; they inject nothing, so the
          byte-conservation identity is unaffected *)
  shed_payload : int;  (** payload bytes the shed flows would have carried *)
  pauses_sent : int;  (** PAUSE packets emitted by congested receivers *)
  pauses_received : int;  (** PAUSEs that reached and paced their sender *)
  overload_epochs : int;
      (** rate epochs that saw at least one link above the high watermark *)
  overloaded_links : int;  (** links still flagged when the run ended *)
}

(** {2 Handle API — dynamic workloads} *)

type t

val create : config -> Topology.t -> t
(** A fresh rack simulation at time 0. *)

val engine : t -> Engine.t
(** The simulation clock; use [Engine.at]/[Engine.after] to script events
    (e.g. future {!start_flow} calls). *)

val metrics : t -> Metrics.t
val topology : t -> Topology.t

val start_flow :
  ?weight:int ->
  ?priority:int ->
  ?protocol:Routing.protocol ->
  ?demand_gbps:Util.Units.gbps ->
  ?on_complete:(int -> unit) ->
  t ->
  src:int ->
  dst:int ->
  size:int ->
  int
(** Open a flow {e at the current simulation time}: broadcasts the start
    event and begins transmitting immediately (§3.3.2). [demand_gbps]
    marks a host-limited flow; [on_complete] fires (with the flow id) when
    the last byte is delivered. Returns the flow id. *)

val run_engine : ?until_ns:int -> t -> unit
(** Process events until the rack goes idle (or [until_ns]). Can be called
    repeatedly as more flows are scripted. *)

(** {2 Fault injection (§3.2)}

    Each of these schedules a physical event at simulation time [ns]: the
    fabric state flips immediately (in-flight packets on a dead cable are
    blackholed, senders keep using stale paths), and one detection delay
    later the control plane reacts — broadcast trees are repaired, flows
    with a dead endpoint are aborted, survivors are re-pathed onto the
    surviving graph and re-announced, and the next rate epoch reconverges
    the allocations. Lost packets are recovered by per-packet
    retransmission under the {!Reliability} backoff discipline. *)

val fail_link_at : t -> ns:int -> int -> int -> unit
(** [fail_link_at t ~ns u v]: the cable between adjacent vertices [u] and
    [v] dies (both directions) at time [ns]. *)

val fail_node_at : t -> ns:int -> int -> unit
(** The node and all its cables die at time [ns]; flows to or from it are
    aborted at detection and reported in [aborted_flows]. *)

val restore_link_at : t -> ns:int -> int -> int -> unit
val restore_node_at : t -> ns:int -> int -> unit
(** Restores follow the same discovery path: the fabric heals immediately,
    the control plane re-paths one detection delay later. *)

(** {2 Crash–restart}

    Unlike {!fail_node_at}, which preserves the node's state across the
    outage, a {e crash} destroys it: receive windows, traffic-matrix view
    and sender soft state are wiped at the crash instant. A later
    {!restart_node_at} brings the node back {e cold} and runs the rejoin
    protocol — a JOIN broadcast carrying a bumped origin incarnation (every
    receiver re-keys its windows for that root and drops its pre-crash
    flows), plus per-origin snapshot requests answered over the
    anti-entropy full-state sync path. The rejoin is re-announced every
    [rejoin_retry_ns] until the node is sequence-caught-up with every
    reachable origin, at which point {!Metrics.note_rejoin} stamps it. *)

val crash_node_at : t -> ns:int -> int -> unit
val restart_node_at : t -> ns:int -> int -> unit

(** {2 Gray failures}

    A flaky cable stays up but intermittently loses packets and spikes its
    latency. A per-neighbor EWMA health estimator (ticking every
    [health_interval_ns] once a flaky link exists) feeds the {!Routing}
    quarantine state machine, which {e demotes} — rather than deletes —
    suspect cables from spraying fractions and VLB waypoint choice, with
    probation-based unquarantine. *)

val flaky_link_at :
  t ->
  ns:int ->
  ?spike_ns:int ->
  int ->
  int ->
  loss:Util.Units.fraction ->
  spike:Util.Units.fraction ->
  unit
(** [flaky_link_at t ~ns u v ~loss ~spike] flags the cable between adjacent
    [u] and [v] at time [ns]; [spike_ns] defaults to the config's
    [flaky_spike_ns]. *)

val unflaky_link_at : t -> ns:int -> int -> int -> unit

val link_health : t -> int -> int -> Routing.health
(** Current quarantine state of the cable, for monitors and tests. *)

val net : t -> Net.t
(** The underlying fabric — chaos-scenario invariant monitors hang their
    observation taps off it. *)

val results : t -> result
(** Snapshot of the statistics so far. *)

(** {2 Control-plane reliability introspection}

    Accessors used by the loss-sweep bench and the reconvergence tests;
    all of them are pure observers. *)

val set_control_chaos_at :
  t ->
  ns:int ->
  loss:Util.Units.fraction ->
  reorder:Util.Units.fraction ->
  dup:Util.Units.fraction ->
  unit
(** Schedule a mid-run retune of the control-chaos rates at simulation time
    [ns] (e.g. start lossless, degrade, recover). The chaos RNG continues
    across retunes, so runs stay seed-deterministic. *)

val control_converged : t -> bool
(** Every alive node is sequence-caught-up with every reachable origin and
    (Per_node) believes exactly the origin's live-flow set. *)

val view_hash : t -> int -> int64
(** The node's traffic-matrix hash (Per_node) — identical across nodes
    exactly when their views agree. *)

val diverged_nodes : t -> int
(** Alive nodes currently disagreeing with the modal view hash; 0 when the
    control plane is consistent (always 0 under [Global_epoch]). *)

val node_view_ids : t -> node:int -> int list
(** The flow ids in the node's view, ascending (Per_node only). *)

val node_allocations : t -> node:int -> (int * Util.Units.byte_rate) array
(** The full rate vector the node computes from its current view — every
    flow it believes exists, in ascending id order. Nodes with identical
    views return byte-identical vectors (Per_node only). *)

val loss_ewma : t -> Util.Units.fraction
val effective_headroom : t -> Util.Units.fraction

(** {2 Overload-control introspection} *)

val shed_floor : t -> int
(** Admission's current shed floor: classes with [priority >= shed_floor]
    are being refused; [Metrics.max_class] when nothing is shed (or the
    controller is off). *)

val pacer_scale : t -> node:int -> float
(** The node's current backpressure pacing multiplier in
    [[pause_min_scale, 1]]; 1 when the controller is off. *)

(** {2 Batch API — pre-generated workloads} *)

val run :
  ?protocol_of:(int -> Workload.Flowgen.spec -> Routing.protocol) ->
  ?demand_of:(int -> Workload.Flowgen.spec -> Util.Units.gbps option) ->
  ?until_ns:int ->
  config ->
  Topology.t ->
  Workload.Flowgen.spec list ->
  result
(** Simulate the flow list (sorted by arrival) to completion (or
    [until_ns]); flow ids equal list positions. [protocol_of] chooses each
    flow's routing protocol from its index and spec (default RPS for
    everything); [demand_of] marks host-limited flows with their maximum
    rate in Gbps (§3.3.2) — such a flow never injects above its demand and
    the rate computation hands its unused share to others. *)
