(** Packet-level network fabric.

    Every directed link has a FIFO output queue at its source node, a
    serialization rate and a propagation delay. Packets are source routed:
    they carry their full vertex path and a hop index, so intermediate
    nodes forward without any per-flow state (paper §3.5).

    Broadcast packets carry a [(source, tree)] pair instead of a path and
    are replicated to the tree children at every node (paper §3.2). *)

type kind =
  | Data of { flow : int; seq : int; last : bool }
  | Ack of { flow : int; ackno : int }
  | Bcast of { bcast_id : int; root : int; tree : int; seq : int }
      (** a flow-event broadcast; [seq] is the per-(root, tree) reliable
          sequence number ({!Broadcast.Rbcast}) *)
  | Digest of { root : int; tree : int; epoch : int; last_seq : int; hash : int64 }
      (** periodic anti-entropy beacon, tree-forwarded like [Bcast] *)
  | Nack of { root : int; tree : int; from_seq : int; to_seq : int; requester : int }
      (** source-routed retransmission request for an inclusive seq range *)
  | Sync of { root : int; entries : int list; last_seqs : int array }
      (** source-routed full-state repair: [root]'s live-flow ids plus its
          per-tree last sequence numbers *)

val is_control : kind -> bool
(** All kinds except [Data]/[Ack]. *)

type packet = {
  kind : kind;
  bytes : int;  (** wire size, header included *)
  route : int array;  (** vertex path for Data/Ack; [||] for Bcast *)
  mutable hop : int;  (** next index into [route] *)
}

type t

val create :
  Engine.t ->
  Topology.t ->
  ?queue_capacity:int ->
  ?count_control:bool ->
  link_gbps:Util.Units.gbps ->
  hop_latency_ns:int ->
  unit ->
  t
(** [queue_capacity] bounds each output queue in bytes (tail drop);
    default unbounded. [count_control] (default true) includes broadcast
    bytes in the control-traffic counters. *)

val topo : t -> Topology.t
val engine : t -> Engine.t

val on_deliver : t -> (packet -> unit) -> unit
(** Called when a Data/Ack packet reaches the end of its route. *)

val on_bcast_deliver : t -> (packet -> node:int -> unit) -> unit
(** Called at {e every} vertex (including relays) receiving a broadcast
    copy, excluding the root itself. *)

val on_drop : t -> (packet -> unit) -> unit

val set_broadcast : t -> Broadcast.t -> unit
(** Required before sending broadcast packets. *)

val send : t -> packet -> unit
(** Inject a source-routed packet at [route.(hop)]; [hop] must point at the
    current node (normally 0). *)

val send_bcast :
  t -> ?seq:int -> root:int -> tree:int -> bcast_id:int -> bytes:int -> unit -> unit
(** Inject a broadcast at its root; copies fan out along the tree. [seq]
    (default 0) is the reliable-broadcast sequence number. *)

val send_tree : t -> root:int -> tree:int -> kind:kind -> bytes:int -> unit
(** Inject any tree-forwarded kind ([Bcast] or [Digest]) at its root.
    Raises [Invalid_argument] for source-routed kinds. *)

val tx_time_ns : t -> int -> int
(** Serialization time of a packet of the given byte size. *)

(** {2 Physical failures}

    The fabric's down-state is the {e physical} truth, flipped at the
    failure instant — unlike the control-plane overlay in {!Topology},
    which the simulation updates only after the detection delay, so
    senders keep routing onto a dead cable until discovery catches up.
    A packet that meets a dead element — queued on a failed link, finishing
    serialization onto one, or arriving at a dead node — is {e blackholed}:
    silently destroyed, counted, and reported via {!on_blackhole}. A packet
    already past serialization when the cable dies still arrives. *)

val fail_link : t -> int -> int -> unit
(** Kill the cable between two adjacent vertices (both directions). Queued
    packets are blackholed. Raises [Invalid_argument] if not adjacent. *)

val restore_link : t -> int -> int -> unit

val fail_node : t -> int -> unit
(** Kill a vertex: its output queues are purged and anything later arriving
    at it is blackholed. *)

val restore_node : t -> int -> unit
val node_up : t -> int -> bool

val on_blackhole : t -> (packet -> unit) -> unit
(** Called for every blackholed packet (after counting). *)

val blackholes : t -> int
val blackholed_bytes : t -> int
(** Wire bytes destroyed by failures, headers included. *)

val blackholed_data_bytes : t -> int
(** The [Data]/[Ack] share of {!blackholed_bytes}. *)

val blackholed_ctrl_bytes : t -> int
(** The control-plane ([Bcast]/[Digest]/[Nack]/[Sync]) share of
    {!blackholed_bytes}. *)

(** {2 Control-plane chaos}

    Probabilistic loss, reordering and duplication applied per hop to
    control packets only — independent of the physical failures above, and
    deterministic for a given seed because the draws come from a dedicated
    generator untouched by anything else. *)

val set_control_chaos :
  t ->
  seed:int ->
  loss:Util.Units.fraction ->
  reorder:Util.Units.fraction ->
  dup:Util.Units.fraction ->
  unit
(** Install or retune the injector; rates are probabilities in [\[0, 1)]
    applied independently at every hop. The RNG is created from [seed] on
    first call and kept across retunes, so flipping rates mid-run (from an
    engine event) does not restart the decision stream. Raises
    [Invalid_argument] on an out-of-range rate. *)

val ctrl_lost : t -> int
val ctrl_lost_bytes : t -> int
val ctrl_reordered : t -> int
val ctrl_dupped : t -> int

val ctrl_hops : t -> int
(** Control-packet hop transmissions attempted, lost ones included — the
    denominator for an observed control-loss rate. *)

val max_queue_bytes : t -> int array
(** Per-link maximum queue occupancy observed (bytes). *)

val drops : t -> int
val data_bytes_on_wire : t -> Util.Units.bytes
(** Total bytes * hops carried for Data/Ack packets. *)

val control_bytes_on_wire : t -> Util.Units.bytes
(** Total bytes * hops carried for broadcast packets. *)

val reset_wire_counters : t -> unit
