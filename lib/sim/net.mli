(** Packet-level network fabric.

    Every directed link has a FIFO output queue at its source node, a
    serialization rate and a propagation delay. Packets are source routed:
    they carry their full vertex path and a hop index, so intermediate
    nodes forward without any per-flow state (paper §3.5).

    Broadcast packets carry a [(source, tree)] pair instead of a path and
    are replicated to the tree children at every node (paper §3.2).

    {2 Packet representation}

    A packet is an integer handle into a per-fabric {!Util.Arena} pool —
    not a record. Fields are read through accessor functions taking the
    fabric; routes live in a shared refcounted int-slice pool
    ({!Util.Arena.Ints}), interned once and shared by every packet of a
    flow (retransmits included). Injecting, forwarding and delivering a
    packet allocates nothing on the OCaml heap.

    Ownership: the fabric frees a packet after its terminal callback
    ([on_deliver] / [on_drop] / [on_blackhole], or the last
    [on_bcast_deliver] of a leaf copy) returns. Handles must not be stashed
    across callbacks — read what you need inside the callback. *)

type t

type packet = int
(** Arena handle. Valid only while the packet is in flight; see ownership
    note above. *)

type route = int
(** Interned route: a handle into the fabric's shared slice pool. *)

(** {2 Construction} *)

val create :
  Engine.t ->
  Topology.t ->
  ?queue_capacity:int ->
  ?count_control:bool ->
  link_gbps:Util.Units.gbps ->
  hop_latency_ns:int ->
  unit ->
  t
(** [queue_capacity] bounds each output queue in bytes (tail drop);
    default unbounded. [count_control] (default true) includes broadcast
    bytes in the control-traffic counters. Installs the fabric as the
    engine's tagged-event dispatcher. *)

val topo : t -> Topology.t
val engine : t -> Engine.t

(** {2 Routes} *)

val intern_route : t -> int array -> route
(** Copy a vertex path into the slice pool; the caller owns one reference.
    Senders below take their own reference, so a one-shot caller releases
    right after sending; a flow keeps its route interned for its lifetime
    and releases it (once) when done. *)

val retain_route : t -> route -> unit

val release_route : t -> route -> unit
(** Drop one reference; the last release recycles the slice. Raises
    [Invalid_argument] on a double release. *)

(** {2 Field accessors}

    [kind] returns one of the codes below; the per-kind accessors are only
    meaningful for packets of that kind (unchecked). *)

val code_data : int
val code_ack : int
val code_bcast : int
val code_digest : int
val code_nack : int
val code_sync : int
val code_pause : int

val kind : t -> packet -> int
val is_control : t -> packet -> bool
(** All kinds except Data/Ack. *)

val bytes : t -> packet -> int
(** Wire size, header included. *)

val hop : t -> packet -> int
(** Next index into the route. *)

val route_length : t -> packet -> int
val route_at : t -> packet -> int -> int
val route_last : t -> packet -> int
(** Final vertex of the route — the packet's destination. *)

val data_flow : t -> packet -> int
val data_seq : t -> packet -> int
val data_last : t -> packet -> bool
val ack_flow : t -> packet -> int
val ack_ackno : t -> packet -> int
val bcast_id : t -> packet -> int
val bcast_root : t -> packet -> int
val bcast_tree : t -> packet -> int
val bcast_seq : t -> packet -> int
(** The per-(root, tree) reliable sequence number ({!Broadcast.Rbcast}). *)

val bcast_inc : t -> packet -> int
(** The origin incarnation stamped on the copy — receive windows key their
    crash-restart invalidation on this ({!Rbcast.ensure_epoch}). *)

val digest_root : t -> packet -> int
val digest_tree : t -> packet -> int
val digest_epoch : t -> packet -> int
val digest_last_seq : t -> packet -> int
val digest_hash : t -> packet -> int64
val nack_root : t -> packet -> int
val nack_tree : t -> packet -> int
val nack_from : t -> packet -> int
val nack_to : t -> packet -> int
val nack_requester : t -> packet -> int
val pause_node : t -> packet -> int
val pause_class : t -> packet -> int
val pause_level : t -> packet -> int
val pause_window : t -> packet -> int
val sync_root : t -> packet -> int
val sync_entries : t -> packet -> int list
(** The origin's live-flow ids (fresh list; sync is rare repair traffic). *)

val sync_last_seqs : t -> packet -> int array
(** The origin's per-tree last sequence numbers (fresh array). *)

(** {2 Callbacks} *)

val on_deliver : t -> (packet -> unit) -> unit
(** Called when a source-routed packet reaches the end of its route. *)

val on_bcast_deliver : t -> (packet -> node:int -> unit) -> unit
(** Called at {e every} vertex (including relays) receiving a broadcast
    copy, excluding the root itself. *)

val on_drop : t -> (packet -> unit) -> unit

val set_broadcast : t -> Broadcast.t -> unit
(** Required before sending broadcast packets. *)

(** {2 Injection}

    Source-routed senders validate the route ([Invalid_argument] on a
    route shorter than two vertices or crossing non-adjacent ones) and
    take their own reference on it. *)

val send_data :
  t -> flow:int -> seq:int -> last:bool -> bytes:int -> route:route -> unit

val send_ack : t -> flow:int -> ackno:int -> bytes:int -> route:route -> unit

val send_nack :
  t ->
  root:int ->
  tree:int ->
  from_seq:int ->
  to_seq:int ->
  requester:int ->
  bytes:int ->
  route:route ->
  unit
(** Source-routed retransmission request for an inclusive seq range. *)

val send_sync :
  t -> root:int -> entries:int list -> last_seqs:int array -> bytes:int -> route:route -> unit
(** Source-routed full-state repair: [root]'s live-flow ids plus its
    per-tree last sequence numbers. *)

val send_pause :
  t ->
  node:int ->
  cls:int ->
  level:int ->
  window_kbps:int ->
  bytes:int ->
  route:route ->
  unit
(** Source-routed backpressure notice from a congested receiver [node]:
    each [level] asks the paused sender to halve its injection rate for
    flows of class [cls] and above ([level] 0 is the all-clear);
    [window_kbps] is an advisory ceiling (0 = none). Raises on a negative
    class or level. *)

val send_bcast :
  t ->
  ?seq:int ->
  ?inc:int ->
  root:int ->
  tree:int ->
  bcast_id:int ->
  bytes:int ->
  unit ->
  unit
(** Inject a broadcast at its root; copies fan out along the tree. [seq]
    (default 0) is the reliable-broadcast sequence number, [inc] (default 0)
    the origin incarnation after crash-restarts. *)

val send_digest_tree :
  t -> root:int -> tree:int -> epoch:int -> last_seq:int -> hash:int64 -> bytes:int -> unit
(** Inject a periodic anti-entropy beacon at its root, tree-forwarded like
    a broadcast. *)

val tx_time_ns : t -> int -> int
(** Serialization time of a packet of the given byte size. *)

(** {2 Pool telemetry} *)

val packets_live : t -> int
val packets_high_water : t -> int
(** Peak in-flight packet count — the measured figure behind the pool's
    initial sizing. *)

(** {2 Physical failures}

    The fabric's down-state is the {e physical} truth, flipped at the
    failure instant — unlike the control-plane overlay in {!Topology},
    which the simulation updates only after the detection delay, so
    senders keep routing onto a dead cable until discovery catches up.
    A packet that meets a dead element — queued on a failed link, finishing
    serialization onto one, or arriving at a dead node — is {e blackholed}:
    silently destroyed, counted, and reported via {!on_blackhole}. A packet
    already past serialization when the cable dies still arrives. *)

val fail_link : t -> int -> int -> unit
(** Kill the cable between two adjacent vertices (both directions). Queued
    packets are blackholed. Raises [Invalid_argument] if not adjacent. *)

val restore_link : t -> int -> int -> unit

val fail_node : t -> int -> unit
(** Kill a vertex: its output queues are purged and anything later arriving
    at it is blackholed. *)

val restore_node : t -> int -> unit
val node_up : t -> int -> bool

val on_blackhole : t -> (packet -> unit) -> unit
(** Called for every blackholed packet (after counting). *)

val blackholes : t -> int
val blackholed_bytes : t -> int
(** Wire bytes destroyed by failures, headers included. *)

val blackholed_data_bytes : t -> int
(** The [Data]/[Ack] share of {!blackholed_bytes}. *)

val blackholed_ctrl_bytes : t -> int
(** The control-plane (Bcast/Digest/Nack/Sync) share of
    {!blackholed_bytes}. *)

(** {2 Control-plane chaos}

    Probabilistic loss, reordering and duplication applied per hop to
    control packets only — independent of the physical failures above, and
    deterministic for a given seed because the draws come from a dedicated
    generator untouched by anything else. *)

val set_control_chaos :
  t ->
  seed:int ->
  loss:Util.Units.fraction ->
  reorder:Util.Units.fraction ->
  dup:Util.Units.fraction ->
  unit
(** Install or retune the injector; rates are probabilities in [\[0, 1)]
    applied independently at every hop. The RNG is created from [seed] on
    first call and kept across retunes, so flipping rates mid-run (from an
    engine event) does not restart the decision stream. Raises
    [Invalid_argument] on an out-of-range rate. *)

val ctrl_lost : t -> int
val ctrl_lost_bytes : t -> int
val ctrl_reordered : t -> int
val ctrl_dupped : t -> int

val ctrl_hops : t -> int
(** Control-packet hop transmissions attempted, lost ones included — the
    denominator for an observed control-loss rate. *)

(** {2 Gray failures (flaky links)}

    Unlike the binary up/down failures above, a {e flaky} link stays up but
    intermittently loses packets and spikes its latency — any packet kind,
    both directions. Losses go through the ordinary {!on_drop} path (not
    the blackhole path), so upstairs they are indistinguishable from queue
    drops: payload accounting and per-packet retransmission apply
    unchanged. Draws come from a dedicated RNG touched only on flagged
    links, so a run without flaky links is bit-identical to one on a fabric
    that never heard of them. *)

val set_flaky_link :
  t ->
  seed:int ->
  ?spike_ns:int ->
  int ->
  int ->
  loss:Util.Units.fraction ->
  spike:Util.Units.fraction ->
  unit
(** [set_flaky_link t ~seed u v ~loss ~spike] flags the cable between
    adjacent [u] and [v] (both directions): each packet propagating over it
    is lost with probability [loss] and, surviving, delayed by an extra
    [spike_ns] with probability [spike]. The RNG is created from [seed] on
    the first call and kept across retunes. [spike_ns] (fabric-wide; the
    last positive value wins) defaults to 0. Raises [Invalid_argument] on
    out-of-range rates or non-adjacent vertices. *)

val clear_flaky_link : t -> int -> int -> unit
(** Unflag the cable; counters and the RNG survive for determinism. *)

val flaky_link_stats : t -> int -> int -> int * int
(** [(attempts, losses)] on the cable, both directions summed, counted only
    while flagged — the health estimator's ground truth. *)

val flaky_lost : t -> int
val flaky_lost_bytes : t -> int

val set_arrive_tap : t -> (node:int -> packet -> unit) -> unit
(** Observation tap fired on every live arrival, relays included (dead-node
    arrivals blackhole instead and never reach the tap). Chaos-scenario
    invariant monitors hang off this; the default tap does nothing. *)

val max_queue_bytes : t -> int array
(** Per-link maximum queue occupancy observed (bytes). *)

val set_queue_watermarks : t -> high:int -> low:int -> unit
(** Arm occupancy-watermark overload detection: a link is flagged
    overloaded when its queue exceeds [high] bytes and unflagged only
    once it drains to [low] (hysteresis against flapping). Standing
    queues are re-evaluated immediately. Default [high] is [max_int], so
    detection is off and the event stream is untouched. Raises unless
    [0 <= low < high]. *)

val overloaded_links : t -> int
(** Links currently above their high watermark (not yet drained to low). *)

val link_overloaded : t -> link_id:int -> bool

val drops : t -> int
val data_bytes_on_wire : t -> Util.Units.bytes
(** Total bytes * hops carried for Data/Ack packets. *)

val control_bytes_on_wire : t -> Util.Units.bytes
(** Total bytes * hops carried for broadcast packets. *)

val reset_wire_counters : t -> unit
