type control = Global_epoch | Per_node

module U = Util.Units

type config = {
  link_gbps : U.gbps;
  hop_latency_ns : int;
  headroom : U.fraction;
  recompute_interval_ns : int;
  mtu : int;
  trees_per_source : int;
  real_broadcast : bool;
  queue_capacity : int;
  control : control;
  reselect_interval_ns : int option;
      (** §3.4: when set, long flows are periodically re-assigned a routing
          protocol (RPS vs VLB) by the GA selector *)
  detection_delay_ns : int option;
      (** failure -> topology-discovery latency; [None] = twice the
          broadcast depth of the rack (2 * diameter hops of a 16-byte
          packet) *)
  rtx_timeout_ns : int;  (** initial per-packet retransmission timeout *)
  rtx_backoff : float;  (** timeout multiplier per unacknowledged attempt *)
  rtx_cap_ns : int;  (** backed-off timeout ceiling *)
  rtx_max_retries : int;  (** per packet; exceeding it aborts the flow *)
  reliable_bcast : bool;
      (** sequence every flow-event broadcast, run receive windows with
          NACK repair and periodic anti-entropy digests *)
  digest_interval_ns : int;  (** anti-entropy beacon period per source *)
  nack_delay_ns : int;  (** gap detection -> NACK send delay (and retry) *)
  bcast_log_cap : int;  (** origin replay-log depth per tree *)
  control_loss : U.fraction;  (** per-hop control-packet loss probability *)
  control_reorder : U.fraction;  (** per-hop extra-delay (reorder) probability *)
  control_dup : U.fraction;  (** per-hop duplication probability *)
  loss_headroom_gain : float;
      (** graceful degradation: effective headroom =
          min max_headroom (headroom + gain * loss EWMA); a dimensionless
          gain multiplying a fraction, so it stays a raw float *)
  max_headroom : U.fraction;
  flaky_spike_ns : int;
      (** extra latency a spiked hop on a flaky link suffers, unless the
          injection call overrides it *)
  health_interval_ns : int;  (** per-link loss-EWMA estimator period *)
  health_alpha : float;  (** EWMA weight of the newest interval, (0, 1] *)
  quarantine_loss_threshold : float;
      (** per-link loss EWMA above this quarantines the cable *)
  probation_ns : int;
      (** quarantine dwell before probation, and probation dwell before the
          recover/re-quarantine verdict *)
  rejoin_retry_ns : int;
      (** a restarted node re-announces its JOIN at this period until it has
          caught up — a lost JOIN or snapshot must not strand the rejoin *)
  (* -- SLO-guarded overload control; every default leaves it off -- *)
  queue_high_watermark : int;
      (** link-queue bytes above which the link counts as overloaded;
          [max_int] (the default) disables detection entirely *)
  queue_low_watermark : int;  (** hysteresis: overload clears only below this *)
  overload_control : bool;
      (** master switch for admission shedding and PAUSE backpressure *)
  pause_interval_ns : int;
      (** a congested receiver sends at most one PAUSE per this period *)
  pause_class : int;
      (** only flows of this class or below (numerically >=) are paced and
          trigger pauses; higher classes are never slowed by backpressure *)
  pause_backoff : float;  (** multiplicative decrease per PAUSE level *)
  pause_recovery : float;  (** additive scale recovery per clean epoch *)
  pause_min_scale : float;  (** floor of the pacing scale *)
  shed_recover_epochs : int;
      (** consecutive clean epochs before the shed floor relaxes one class *)
  slos : (int * int) list;
      (** (priority class, FCT bound ns) promises fed to {!Metrics.set_slo} *)
  reserve_priority : int;
      (** waterfill class reserve applies to classes >= this priority *)
  class_reserve : U.fraction;
      (** link-capacity fraction withheld from the low classes; 0 = off *)
  engine_backend : Engine.backend;
      (** event-queue implementation; [Calendar] is the production O(1)
          wheel, [Binary_heap] the reference for differential tests *)
  seed : int;
}

let default_config =
  {
    link_gbps = U.gbps 10.0;
    hop_latency_ns = 100;
    headroom = U.fraction 0.05;
    recompute_interval_ns = 500_000;
    mtu = 1500;
    trees_per_source = 4;
    real_broadcast = true;
    queue_capacity = max_int;
    control = Global_epoch;
    reselect_interval_ns = None;
    detection_delay_ns = None;
    rtx_timeout_ns = 50_000;
    rtx_backoff = 2.0;
    rtx_cap_ns = 1_000_000;
    rtx_max_retries = 30;
    reliable_bcast = false;
    digest_interval_ns = 100_000;
    nack_delay_ns = 20_000;
    bcast_log_cap = 65536;
    control_loss = U.fraction 0.0;
    control_reorder = U.fraction 0.0;
    control_dup = U.fraction 0.0;
    loss_headroom_gain = 2.0;
    max_headroom = U.fraction 0.30;
    flaky_spike_ns = 2_000;
    health_interval_ns = 50_000;
    health_alpha = 0.3;
    quarantine_loss_threshold = 0.02;
    probation_ns = 500_000;
    rejoin_retry_ns = 500_000;
    queue_high_watermark = max_int;
    queue_low_watermark = 0;
    overload_control = false;
    pause_interval_ns = 50_000;
    pause_class = 1;
    pause_backoff = 0.5;
    pause_recovery = 0.1;
    pause_min_scale = 0.05;
    shed_recover_epochs = 3;
    slos = [];
    reserve_priority = 1;
    class_reserve = U.fraction 0.0;
    engine_backend = Engine.Calendar;
    seed = 1;
  }

type failure = {
  kind : string;  (** "link" | "node" | "restore-link" | "restore-node" *)
  fail_ns : int;
  detect_ns : int;
  mutable reconverge_ns : int;  (** -1 until the first post-detection rate epoch *)
  mutable aborted : int;  (** flows dropped because an endpoint died *)
  mutable repaired : int;  (** broadcast trees rebuilt at detection *)
}

type result = {
  metrics : Metrics.t;
  max_queue : int array;
  drops : int;
  data_wire_bytes : U.bytes;
  control_wire_bytes : U.bytes;
  recomputes : int;
  rate_updates : (int * U.gbps) list;
  reselections : int;
  flows_rerouted : int;
  blackholes : int;
  blackholed_bytes : int;
  injected_payload : int;
  delivered_payload : int;
  dropped_payload : int;
  blackholed_payload : int;
  retransmissions : int;
  aborted_flows : int list;
  failures : failure list;
  tree_repairs : int;
  tree_repair_bytes : int;
  (* control-plane reliability *)
  ctrl_lost : int;
  ctrl_lost_bytes : int;
  ctrl_reordered : int;
  ctrl_dupped : int;
  blackholed_data_bytes : int;
  blackholed_ctrl_bytes : int;
  nacks_sent : int;
  event_retransmits : int;  (** origin replays answering NACKs *)
  sync_requests : int;
  syncs_sent : int;
  sync_bytes : int;  (** full-state repair traffic, wire bytes at origin *)
  dup_events_absorbed : int;  (** deliveries deduped by receive windows *)
  divergence_epochs : int;  (** rate epochs with >1 distinct node view *)
  reconverge_samples : int list;
      (** ns from first divergent epoch to the next all-identical one *)
  terminal_diverged : int;  (** nodes still diverged when the run ended *)
  loss_ewma : U.fraction;
  effective_headroom : U.fraction;
  (* robustness: gray failures and crash-restart *)
  flaky_lost : int;  (** packets lost to flaky-link injection *)
  flaky_lost_bytes : int;
  quarantines : int;  (** Healthy/Probation -> Quarantined transitions *)
  probations : int;
  recoveries : int;  (** Probation -> Healthy transitions *)
  joins_sent : int;  (** JOIN announcements, retries included *)
  rejoins : (int * int * int) list;
      (** (node, restart ns, caught-up ns) per completed rejoin *)
  rejoins_pending : int;  (** restarted nodes not yet caught up at run end *)
  (* robustness: overload control *)
  shed_flows : int;  (** flows refused by admission control *)
  shed_payload : int;  (** payload bytes those flows would have injected *)
  pauses_sent : int;  (** PAUSE packets emitted by congested receivers *)
  pauses_received : int;  (** PAUSEs that reached their paced sender *)
  overload_epochs : int;  (** rate epochs with at least one overloaded link *)
  overloaded_links : int;  (** links still above the watermark at run end *)
}

type fstate = {
  idx : int;
  src : int;
  dst : int;
  mutable proto : Routing.protocol;
  weight : float;
  priority : int;
  mutable wf_links : (int * U.fraction) array;
  demand : U.byte_rate option;  (** host cap, wire bytes per ns *)
  started_ns : int;
  mutable remaining : int;  (** payload bytes not yet injected *)
  mutable seq : int;
  mutable rate : float;  (** allocated rate, wire bytes per ns *)
  mutable last_inject : int;
  mutable inject_gen : int;
  mutable visible : bool;  (** start broadcast reached every node *)
  mutable done_sending : bool;
  rtx : (int, int) Hashtbl.t;  (** seq -> retransmission attempts so far *)
  mutable failed : bool;  (** aborted: endpoint died or retries exhausted *)
  mutable btree : int;
      (** reliable mode: the tree carrying every event of this flow, so the
          per-(source, tree) window orders finish after start; -1 until the
          start broadcast picks one *)
}

(* One receive window per (receiving node, source, tree): the Rbcast window
   plus the highest sequence number this node has heard of on the tree
   (from packets or digests) — the upper bound a NACK sweep covers. *)
type win = { rx : (int * int) Rbcast.rx; mutable hi : int }

(* Per-cable gray-failure health estimator state, indexed by the canonical
   directed link id (src < dst); allocated only once a flaky link exists so
   clean runs never touch it. *)
type hstate = {
  ewma : float array;  (* per-cable loss-rate EWMA *)
  prev_tx : int array;  (* flaky_link_stats watermarks from the last tick *)
  prev_lost : int array;
  since : int array;  (* ns of the cable's last health transition *)
}

type t = {
  cfg : config;
  rel_cfg : Reliability.config;
      (** derived from [cfg] once; building it per retransmission timer
          allocated a record on the packet-loss path *)
  topo : Topology.t;
  eng : Engine.t;
  net : Net.t;
  bcast : Broadcast.t;
  rctx : Routing.ctx;
  rng : Util.Rng.t;
  root_rng : Util.Rng.t;
  mtrcs : Metrics.t;
  cap_bytes_ns : float;  (** link capacity, wire bytes per ns (hot path, raw) *)
  capacities : U.byte_rate array;
  active : (int, fstate) Hashtbl.t;
  all_states : (int, fstate) Hashtbl.t;  (** for per-node views that may lag *)
  views : (int, unit) Hashtbl.t array;  (** per-node traffic-matrix views (Per_node) *)
  bcast_seen : (int, int ref) Hashtbl.t;
      (** receipt counters: flow idx * 2 for start, * 2 + 1 for finish *)
  on_complete : (int, int -> unit) Hashtbl.t;
  mutable next_id : int;
  mutable recomputes : int;
  mutable rate_updates : (int * U.gbps) list;
  mutable rate_update_count : int;
  mutable loop_running : bool;
  mutable reselections : int;
  mutable flows_rerouted : int;
  mutable reselect_running : bool;
  galloc : Congestion.Waterfill.Inc.t option;
      (** Global_epoch: incremental allocator mirroring the visible,
          still-sending flow set; clean epochs are skipped in O(1) *)
  mutable epoch_dirty : bool;
      (** Per_node: any view/flow event since the last epoch; a clean epoch
          leaves every node's rates untouched and is skipped *)
  mutable bcast_target : int;
      (** copies needed for global visibility: alive vertices - 1 *)
  mutable injected_payload : int;  (** payload bytes of every transmission *)
  mutable delivered_payload : int;  (** payload arriving at destinations, pre-dedup *)
  mutable dropped_payload : int;  (** payload lost to queue tail drops *)
  mutable blackholed_payload : int;  (** payload destroyed by dead links/nodes *)
  mutable retransmissions : int;
  mutable aborted : int list;  (** newest first *)
  mutable failures : failure list;  (** newest first *)
  (* -- control-plane reliability (reliable_bcast) -- *)
  origins : (int * int) Rbcast.origin array;
      (** per source; payload = (bcast_id, wire bytes) for replay *)
  wins : (int, win) Hashtbl.t array;
      (** per node, keyed root * trees_per_source + tree *)
  chaos_on : bool;
  mutable digest_running : bool;
  mutable nacks_sent : int;
  mutable event_retransmits : int;
  mutable sync_requests : int;
  mutable syncs_sent : int;
  mutable sync_bytes : int;
  (* -- view-divergence watchdog bookkeeping -- *)
  mutable divergence_epochs : int;
  mutable diverged_since : int;  (** ns of first divergent epoch; -1 clean *)
  mutable reconverge_samples : int list;  (** newest first *)
  (* -- graceful degradation -- *)
  mutable loss_ewma : float;
  mutable eff_headroom : float;
  mutable prev_ctrl_hops : int;
  mutable prev_ctrl_lost : int;
  (* -- crash-restart rejoin -- *)
  pending_rejoins : (int, int) Hashtbl.t;  (* node -> restart ns *)
  mutable joins_sent : int;
  (* -- gray-failure health estimation -- *)
  mutable health : hstate option;
  mutable health_running : bool;
  mutable quarantines : int;
  mutable probations : int;
  mutable recoveries : int;
  (* -- overload control (admission shedding + PAUSE backpressure) -- *)
  overload_on : bool;  (** copy of [cfg.overload_control] for the hot paths *)
  admission : Congestion.Overload.Admission.t option;
  pacers : Congestion.Overload.Pacer.t array;  (** per sender node *)
  pause_cls : int array;
      (** lowest class the node's last PAUSE covers; [max_int] = never paused *)
  last_pause : int array;  (** per receiver: ns of its last emitted PAUSE *)
  mutable shed_flows : int;
  mutable shed_payload : int;
  mutable pauses_sent : int;
  mutable pauses_received : int;
  mutable overload_epochs : int;
}

let header = Wire.data_header_size

let engine t = t.eng
let metrics t = t.mtrcs
let topology t = t.topo

(* The reliable machinery only exists when broadcasts are physically
   simulated; [create] rejects the other combination. *)
let reliable t = t.cfg.reliable_bcast && t.cfg.real_broadcast

(* -- epoch dirty tracking -------------------------------------------------- *)

(* Every event that can change the next rate computation funnels through
   these: the flow set (visibility, completion), demands and routes. *)

let mark_visible t st =
  if not st.visible then begin
    st.visible <- true;
    t.epoch_dirty <- true;
    match t.galloc with
    | Some inc when not st.done_sending ->
        Congestion.Waterfill.Inc.add_flow ~weight:st.weight ~priority:st.priority
          ?demand:st.demand inc ~id:st.idx st.wf_links
    | _ -> ()
  end

let flow_done_sending t st =
  if not st.done_sending then begin
    st.done_sending <- true;
    t.epoch_dirty <- true;
    match t.galloc with
    | Some inc when Congestion.Waterfill.Inc.mem inc ~id:st.idx ->
        Congestion.Waterfill.Inc.remove_flow inc ~id:st.idx
    | _ -> ()
  end

(* -- reliable broadcast: windows, NACK repair, anti-entropy ---------------- *)

let win_key t ~root ~tree = (root * t.cfg.trees_per_source) + tree

let get_win t ~node ~root ~tree =
  let key = win_key t ~root ~tree in
  match Hashtbl.find_opt t.wins.(node) key with
  | Some w -> w
  | None ->
      let w = { rx = Rbcast.rx (); hi = -1 } in
      Hashtbl.replace t.wins.(node) key w;
      w

(* JOIN announcements ride the broadcast fabric under a sentinel id well
   clear of flow events (ids >= 0) and batched reselection announcements
   (small negatives). *)
let bcast_id_join = min_int

(* Key the window to the incarnation stamped on an incoming packet; a
   newer incarnation wipes the window ([Rbcast.ensure_epoch]) and the
   NACK-sweep bound tracked next to it. Returns false for stale packets.
   On clean runs every incarnation is 0, so this never changes state. *)
let win_ensure_inc w ~inc =
  let prev = Rbcast.rx_incarnation w.rx in
  let ok = Rbcast.ensure_epoch w.rx ~epoch:inc in
  if ok && Rbcast.rx_incarnation w.rx > prev then w.hi <- -1;
  ok

(* Apply one flow-event broadcast at a node: update the node's view of the
   traffic matrix (Per_node) and the global visibility counter. In reliable
   mode this runs only on window-accepted deliveries, so each node counts
   each event exactly once whatever the duplication rate. *)
let apply_bcast_event t ~node bcast_id =
  (* Negative ids are batched route-change announcements (§3.4); only flow
     start/finish events update the views. *)
  if t.cfg.control = Per_node && bcast_id >= 0 then begin
    let flow = bcast_id / 2 in
    t.epoch_dirty <- true;
    if bcast_id land 1 = 0 then Hashtbl.replace t.views.(node) flow ()
    else Hashtbl.remove t.views.(node) flow
  end;
  match Hashtbl.find_opt t.bcast_seen bcast_id with
  | None -> ()
  | Some count ->
      incr count;
      (* [>=]: after a node failure the target shrinks to the alive count,
         and stale pre-failure copies may still arrive. *)
      if !count >= t.bcast_target && bcast_id land 1 = 0 then begin
        match Hashtbl.find_opt t.active (bcast_id / 2) with
        | Some st -> mark_visible t st
        | None -> ()
      end

(* A NACK with an empty range ([to_seq < from_seq]) is a full-state sync
   request — sent when a node is sequence-caught-up with an origin yet
   hashes to a different live-flow set. *)
let send_nack t ~node ~root ~tree ~from_seq ~to_seq =
  if
    Net.node_up t.net node && Net.node_up t.net root
    && Topology.reachable t.topo node root
  then begin
    if to_seq < from_seq then t.sync_requests <- t.sync_requests + 1
    else t.nacks_sent <- t.nacks_sent + 1;
    let route =
      Net.intern_route t.net
        (Routing.ecmp_path t.rctx ~flow_id:(win_key t ~root ~tree) ~src:node
           ~dst:root)
    in
    Net.send_nack t.net ~root ~tree ~from_seq ~to_seq ~requester:node
      ~bytes:Wire.nack_size ~route;
    Net.release_route t.net route
  end

(* The per-window repair timer: armed on the first sign of a gap (an
   out-of-order arrival or a digest advertising unseen sequences), it NACKs
   every open range after a short delay and re-arms until the window is
   whole — so a lost repair is simply requested again. *)
let rec schedule_nack t ~node ~root ~tree w =
  if Rbcast.arm w.rx then
    Engine.after t.eng t.cfg.nack_delay_ns (fun () -> fire_nack t ~node ~root ~tree w)

and fire_nack t ~node ~root ~tree w =
  Rbcast.disarm w.rx;
  if
    Net.node_up t.net node && Net.node_up t.net root
    && Topology.reachable t.topo node root
  then begin
    match Rbcast.missing w.rx ~upto:w.hi with
    | [] -> ()
    | gaps ->
        List.iteri
          (fun i (a, b) ->
            if i < 4 then send_nack t ~node ~root ~tree ~from_seq:a ~to_seq:b)
          gaps;
        schedule_nack t ~node ~root ~tree w
  end

(* Full-state repair (Per_node): the origin ships its live-flow ids and
   per-tree last sequence numbers; the requester replaces its per-source
   view slice and fast-forwards the windows. Counted as repair traffic. *)
let sync_header_bytes = 16

let send_sync t ~root ~requester =
  if
    t.cfg.control = Per_node && Net.node_up t.net root
    && Net.node_up t.net requester
    && Topology.reachable t.topo root requester
  then begin
    let o = t.origins.(root) in
    let entries = Rbcast.live_ids o in
    let last_seqs =
      Array.init t.cfg.trees_per_source (fun tr -> Rbcast.last_seq o ~tree:tr)
    in
    let bytes =
      min t.cfg.mtu
        (sync_header_bytes + (4 * List.length entries) + (4 * t.cfg.trees_per_source))
    in
    t.syncs_sent <- t.syncs_sent + 1;
    t.sync_bytes <- t.sync_bytes + bytes;
    let route =
      Net.intern_route t.net
        (Routing.ecmp_path t.rctx ~flow_id:(root + (131 * requester)) ~src:root
           ~dst:requester)
    in
    Net.send_sync t.net ~root ~entries ~last_seqs ~bytes ~route;
    Net.release_route t.net route
  end

let apply_sync t ~node ~root ~entries ~last_seqs =
  if t.cfg.control = Per_node && Net.node_up t.net node then begin
    let view = t.views.(node) in
    (* Replace the per-source slice of the view with the origin's truth. *)
    Array.iter
      (fun id ->
        match Hashtbl.find_opt t.all_states id with
        | Some st when st.src = root -> Hashtbl.remove view id
        | _ -> ())
      (Util.Tbl.sorted_keys ~cmp:Int.compare view);
    List.iter (fun id -> Hashtbl.replace view id ()) entries;
    t.epoch_dirty <- true;
    (* Jump every window past what the sync covers; events buffered beyond
       it are strictly newer and still apply. *)
    Array.iteri
      (fun tree last ->
        let w = get_win t ~node ~root ~tree in
        if last > w.hi then w.hi <- last;
        List.iter
          (fun (bid, _) -> apply_bcast_event t ~node bid)
          (Rbcast.fast_forward w.rx ~next:(last + 1)))
      last_seqs
  end

(* The node's believed live-flow set for one origin — what a digest's state
   hash is checked against. *)
let per_source_view_ids t ~node ~root =
  let out = ref [] in
  Array.iter
    (fun id ->
      match Hashtbl.find_opt t.all_states id with
      | Some st when st.src = root -> out := id :: !out
      | _ -> ())
    (Util.Tbl.sorted_keys ~cmp:Int.compare t.views.(node));
  List.rev !out

(* Drop every flow sourced at [src] from the node's view — a restarted
   [src] lost them all, and anything still real arrives again through the
   fresh incarnation's stream. *)
let purge_view_of t ~node ~src =
  let view = t.views.(node) in
  Array.iter
    (fun id ->
      match Hashtbl.find_opt t.all_states id with
      | Some st when st.src = src ->
          Hashtbl.remove view id;
          t.epoch_dirty <- true
      | _ -> ())
    (Util.Tbl.sorted_keys ~cmp:Int.compare view)

(* A JOIN announcement from a restarted node: re-key every window for that
   root to the new incarnation — wiping the pre-crash window state, which
   would otherwise absorb the fresh sequence space as duplicates — and
   forget the joiner's pre-crash flows. The joiner pulls full state itself
   with snapshot requests, so receivers only reset here. *)
let handle_join t ~node ~joiner ~inc =
  if reliable t then
    for tree = 0 to t.cfg.trees_per_source - 1 do
      ignore (win_ensure_inc (get_win t ~node ~root:joiner ~tree) ~inc)
    done;
  if t.cfg.control = Per_node then purge_view_of t ~node ~src:joiner

(* -- data plane: token-bucket pacing and source routing ------------------- *)

let rec inject t st =
  (* A dead sender stops existing: no injections, no rescheduling. The flow
     is aborted when the failure is detected. *)
  if Net.node_up t.net st.src then begin
    let wire = min t.cfg.mtu (st.remaining + header) in
    let payload = wire - header in
    st.remaining <- st.remaining - payload;
    let last = st.remaining = 0 in
    if last then flow_done_sending t st;
    st.last_inject <- Engine.now t.eng;
    t.injected_payload <- t.injected_payload + payload;
    Metrics.note_first_tx t.mtrcs ~id:st.idx ~now:(Engine.now t.eng);
    let path = Routing.sample_path t.rctx t.rng st.proto ~src:st.src ~dst:st.dst in
    let route = Net.intern_route t.net path in
    Net.send_data t.net ~flow:st.idx ~seq:st.seq ~last ~bytes:wire ~route;
    Net.release_route t.net route;
    st.seq <- st.seq + 1;
    if not st.done_sending then schedule_injection t st
  end

and schedule_injection t st =
  st.inject_gen <- st.inject_gen + 1;
  let gen = st.inject_gen in
  let wire = min t.cfg.mtu (st.remaining + header) in
  (* A host-limited flow never injects above its demand, whatever the
     allocation says. *)
  let pace =
    match st.demand with
    | Some d -> Float.min st.rate (d : U.byte_rate :> float)
    | None -> st.rate
  in
  (* Backpressure: a paced sender scales the injection rate of its covered
     classes down by the AIMD pacer, floored like {!apply_rate} so a flow
     always trickles and can finish. *)
  let pace =
    if t.overload_on && st.priority >= t.pause_cls.(st.src) then
      Float.max (0.001 *. t.cap_bytes_ns)
        (pace *. Congestion.Overload.Pacer.scale t.pacers.(st.src))
    else pace
  in
  let gap = int_of_float (ceil (float_of_int wire /. pace)) in
  let tnext = max (Engine.now t.eng) (st.last_inject + gap) in
  Engine.at t.eng tnext (fun () ->
      if st.inject_gen = gen && not st.done_sending then inject t st)

(* -- control plane: broadcast and rate computation ------------------------ *)

let send_flow_broadcast t st event =
  let bcast_id =
    (2 * st.idx)
    +
    match event with
    | Wire.Flow_start -> 0
    | Wire.Flow_finish | Wire.Demand_update | Wire.Route_change -> 1
  in
  if t.cfg.real_broadcast then begin
    Hashtbl.replace t.bcast_seen bcast_id (ref 0);
    if reliable t then begin
      (* Every event of a flow rides the tree picked at its start, so the
         per-(source, tree) window orders the finish after the start at
         every receiver. *)
      let o = t.origins.(st.src) in
      (match event with
      | Wire.Flow_start ->
          if st.btree < 0 then
            st.btree <- Broadcast.choose_tree t.bcast t.root_rng ~src:st.src;
          Rbcast.mark_live o st.idx
      | Wire.Flow_finish -> Rbcast.mark_dead o st.idx
      | Wire.Demand_update | Wire.Route_change -> ());
      let bytes = Wire.seq_broadcast_size in
      let seq = Rbcast.send o ~tree:st.btree (bcast_id, bytes) in
      Net.send_bcast t.net ~seq ~inc:(Rbcast.incarnation o) ~root:st.src
        ~tree:st.btree ~bcast_id ~bytes ()
    end
    else begin
      let tree = Broadcast.choose_tree t.bcast t.root_rng ~src:st.src in
      Net.send_bcast t.net ~root:st.src ~tree ~bcast_id ~bytes:Wire.broadcast_size ()
    end
  end
  else begin
    match event with
    | Wire.Flow_start ->
        let tree = Broadcast.choose_tree t.bcast t.root_rng ~src:st.src in
        let depth = Broadcast.depth t.bcast ~src:st.src ~tree in
        let tx = Net.tx_time_ns t.net Wire.broadcast_size in
        Engine.after t.eng (depth * (t.cfg.hop_latency_ns + tx)) (fun () -> mark_visible t st)
    | Wire.Flow_finish | Wire.Demand_update | Wire.Route_change -> ()
  end

let apply_rate t st (r : U.byte_rate) =
  let r = Float.max (0.001 *. t.cap_bytes_ns) (r : U.byte_rate :> float) in
  if abs_float (r -. st.rate) > 1e-12 then begin
    st.rate <- r;
    if not st.done_sending then schedule_injection t st
  end;
  if t.rate_update_count < 10_000 then begin
    t.rate_update_count <- t.rate_update_count + 1;
    t.rate_updates <- (Engine.now t.eng, U.gbps (r *. 8.0)) :: t.rate_updates
  end

let wf_of st =
  Congestion.Waterfill.flow ~weight:st.weight ~priority:st.priority ?demand:st.demand ~id:st.idx
    st.wf_links

(* Per-node control (§3.3, the paper's actual design): every sender runs
   water-filling over its own broadcast-built view of the traffic matrix
   and rate-limits only its own flows. Views differ transiently — that is
   precisely what the headroom absorbs. Views only change when a broadcast
   delivery, completion or reroute happened since the last epoch
   ([epoch_dirty]); a quiet epoch is skipped outright. *)
let recompute_per_node t =
  (* Measured: one bucket per distinct still-sending source, bounded by
     the active-flow count (= host count under the permutation workload). *)
  let senders : (int, fstate list) Hashtbl.t =
    Hashtbl.create (max 64 (Hashtbl.length t.active))
  in
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun _ st ->
      if not st.done_sending then
        Hashtbl.replace senders st.src
          (st :: Option.value ~default:[] (Hashtbl.find_opt senders st.src)))
    t.active;
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun node own ->
      (* The node's view, plus its own flows which it always knows.
         Measured: the believed-flow count, = host count once every
         start broadcast has arrived. *)
      let view : (int, fstate) Hashtbl.t =
        Hashtbl.create (max 64 (Hashtbl.length t.views.(node)))
      in
      Util.Tbl.iter_sorted ~cmp:Int.compare
        (fun flow () ->
          match Hashtbl.find_opt t.all_states flow with
          | Some st -> Hashtbl.replace view flow st
          | None -> ())
        t.views.(node);
      List.iter (fun st -> Hashtbl.replace view st.idx st) own;
      let flows = Util.Tbl.sorted_values ~cmp:Int.compare view in
      if Array.length flows > 0 then begin
        t.recomputes <- t.recomputes + 1;
        let wf = Array.map wf_of flows in
        let rates =
          Congestion.Waterfill.allocate ~headroom:(U.fraction t.eff_headroom)
            ~capacities:t.capacities wf
        in
        Array.iteri (fun i st -> if st.src = node then apply_rate t st rates.(i)) flows
      end)
    senders

(* Global-epoch approximation: every node would run the same water-filling
   over (nearly) the same visible flow set; run it once per epoch and apply
   the rates at the senders. The `ablation` bench compares this against
   Per_node. The incremental allocator is kept in sync by the visibility /
   completion / reroute events, so an epoch with no event returns the
   cached rates in O(1) and applies nothing. *)
let recompute_global t inc =
  let open Congestion.Waterfill in
  if Inc.live_flows inc > 0 && Inc.is_dirty inc then begin
    t.recomputes <- t.recomputes + 1;
    Inc.allocate inc;
    Inc.iter_rates inc (fun ~id ~rate ->
        match Hashtbl.find_opt t.active id with
        | Some st -> apply_rate t st rate
        | None -> ())
  end

(* Graceful degradation (§3.3): the headroom the waterfill reserves grows
   with the observed control-loss rate, so transiently stale views overbook
   less when the control plane is struggling. The estimate is an EWMA of
   the per-hop loss fraction over each rate epoch. *)
let update_loss_ewma t =
  if t.cfg.reliable_bcast then begin
    let hops = Net.ctrl_hops t.net and lost = Net.ctrl_lost t.net in
    let dh = hops - t.prev_ctrl_hops and dl = lost - t.prev_ctrl_lost in
    t.prev_ctrl_hops <- hops;
    t.prev_ctrl_lost <- lost;
    if dh > 0 then
      t.loss_ewma <-
        (0.8 *. t.loss_ewma) +. (0.2 *. (float_of_int dl /. float_of_int dh));
    t.eff_headroom <-
      Float.min
        (t.cfg.max_headroom : U.fraction :> float)
        ((t.cfg.headroom : U.fraction :> float)
        +. (t.cfg.loss_headroom_gain *. t.loss_ewma));
    match t.galloc with
    | Some inc -> Congestion.Waterfill.Inc.set_headroom inc (U.fraction t.eff_headroom)
    | None -> ()
  end

(* -- view-divergence watchdog --------------------------------------------- *)

let view_hash t node =
  Rbcast.hash_ids
    (Array.to_list (Util.Tbl.sorted_keys ~cmp:Int.compare t.views.(node)))

(* Every rate epoch, compare the traffic-matrix hash across alive nodes.
   Divergent epochs are counted and the span from first divergence to the
   next all-identical epoch is a reconvergence sample. Pure observation —
   repair itself is driven by NACKs and digests. *)
let views_identical t =
  let first = ref None and distinct = ref false in
  Array.iteri
    (fun node _ ->
      if Net.node_up t.net node then begin
        let h = view_hash t node in
        match !first with
        | None -> first := Some h
        | Some h0 -> if h <> h0 then distinct := true
      end)
    t.views;
  not !distinct

let note_divergence t =
  if t.cfg.control = Per_node && (t.cfg.reliable_bcast || t.chaos_on) then begin
    let now = Engine.now t.eng in
    if not (views_identical t) then begin
      t.divergence_epochs <- t.divergence_epochs + 1;
      if t.diverged_since < 0 then t.diverged_since <- now
    end
    else if t.diverged_since >= 0 then begin
      t.reconverge_samples <- (now - t.diverged_since) :: t.reconverge_samples;
      t.diverged_since <- -1
    end
  end

(* The recompute loop stops with the last flow, so a divergence healed only
   by the final finish events would never see its closing epoch there; the
   digest loop keeps watching until the control plane converges. *)
let close_reconvergence t =
  if t.cfg.control = Per_node && t.diverged_since >= 0 && views_identical t then begin
    t.reconverge_samples <-
      (Engine.now t.eng - t.diverged_since) :: t.reconverge_samples;
    t.diverged_since <- -1
  end

(* After a rate epoch executes, every allocation reflects all events known
   so far — including any detected failure: that is the reconvergence
   instant the recovery metrics report. *)
let stamp_reconvergence t =
  let now = Engine.now t.eng in
  List.iter
    (fun fr -> if fr.reconverge_ns < 0 && fr.detect_ns <= now then fr.reconverge_ns <- now)
    t.failures

(* One overload-controller tick per rate epoch: the watermark verdict
   drives the admission shed floor, and a clean epoch lets every pacer
   recover additively. *)
let overload_tick t =
  match t.admission with
  | None -> ()
  | Some adm ->
      let overloaded = Net.overloaded_links t.net > 0 in
      if overloaded then t.overload_epochs <- t.overload_epochs + 1;
      Congestion.Overload.Admission.note_epoch adm ~overloaded;
      if not overloaded then
        Array.iter Congestion.Overload.Pacer.note_clean_epoch t.pacers

let recompute t =
  overload_tick t;
  update_loss_ewma t;
  (match (t.cfg.control, t.galloc) with
  | Global_epoch, Some inc -> recompute_global t inc
  | Global_epoch, None -> assert false
  | Per_node, _ ->
      if t.epoch_dirty then begin
        t.epoch_dirty <- false;
        recompute_per_node t
      end);
  note_divergence t;
  stamp_reconvergence t

(* §3.4: periodic per-flow routing-protocol reselection. Long flows (alive
   for at least one reselection interval) are re-assigned RPS or VLB by the
   GA maximizing aggregate throughput; changed assignments are advertised
   in a single batched broadcast (up to 300 {flow, protocol} pairs per
   1500-byte packet, §3.4). *)
let reselect t interval =
  let now = Engine.now t.eng in
  let eligible = ref [] in
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun _ st ->
      if (not st.done_sending) && now - st.started_ns >= interval then eligible := st :: !eligible)
    t.active;
  let sts = Array.of_list !eligible in
  if Array.length sts >= 2 then begin
    t.reselections <- t.reselections + 1;
    let selector =
      Genetic.Selector.make ~headroom:t.cfg.headroom t.rctx ~link_gbps:t.cfg.link_gbps
    in
    let flows = Array.map (fun st -> (st.src, st.dst)) sts in
    let init = Array.map (fun st -> st.proto) sts in
    (* Flows currently on protocols outside {RPS, VLB} seed as RPS. *)
    let init =
      Array.map (fun p -> if p = Routing.Vlb then Routing.Vlb else Routing.Rps) init
    in
    let current = Genetic.Selector.utility_gbps selector ~flows init in
    let assignment, best =
      Genetic.Selector.select ~pop_size:24 ~generations:6 selector t.rng ~flows ~init
    in
    (* §3.4: re-route only "if a significant improvement is possible" —
       near-ties would otherwise make flows flap between protocols. *)
    let changed = ref 0 in
    if (best : U.gbps :> float) > (current : U.gbps :> float) *. 1.01 then
      Array.iteri
        (fun i st ->
          if assignment.(i) <> st.proto then begin
            incr changed;
            st.proto <- assignment.(i);
            st.wf_links <- Routing.fractions t.rctx assignment.(i) ~src:st.src ~dst:st.dst;
            t.epoch_dirty <- true;
            match t.galloc with
            | Some inc when Congestion.Waterfill.Inc.mem inc ~id:st.idx ->
                Congestion.Waterfill.Inc.set_links inc ~id:st.idx st.wf_links
            | _ -> ()
          end)
        sts;
    t.flows_rerouted <- t.flows_rerouted + !changed;
    if !changed > 0 && t.cfg.real_broadcast then begin
      (* One batched route-change announcement: 16-byte header plus 5 bytes
         per {flow, protocol} pair, capped at an MTU. *)
      let bytes = min t.cfg.mtu (Wire.broadcast_size + (5 * !changed)) in
      let root = sts.(0).src in
      let bcast_id = -t.reselections in
      let tree = Broadcast.choose_tree t.bcast t.root_rng ~src:root in
      let seq, inc =
        if reliable t then
          ( Rbcast.send t.origins.(root) ~tree (bcast_id, bytes),
            Rbcast.incarnation t.origins.(root) )
        else (0, 0)
      in
      Net.send_bcast t.net ~seq ~inc ~root ~tree ~bcast_id ~bytes ()
    end
  end

let rec reselect_loop t interval () =
  reselect t interval;
  if Hashtbl.length t.active > 0 then Engine.after t.eng interval (reselect_loop t interval)
  else t.reselect_running <- false

(* -- anti-entropy digest loop --------------------------------------------- *)

(* Every alive source beacons [(tree, epoch, last_seq, state hash)] on each
   tree that has ever carried one of its events. A receiver missing the
   tail of a burst — even its very last packet, which no gap could reveal —
   sees [last_seq] ahead of its window and NACKs. *)
let digest_round t =
  Array.iteri
    (fun src o ->
      if Net.node_up t.net src then begin
        (* The digest has no spare payload word, so the epoch word carries
           the origin incarnation in its upper half; the anti-entropy epoch
           itself never nears 2^32 in a simulated run. Incarnation 0 leaves
           the word bit-identical to the pre-crash-restart format. *)
        let epoch =
          (Rbcast.incarnation o lsl 32) lor (Rbcast.bump_epoch o land 0xFFFFFFFF)
        in
        let hash = Rbcast.state_hash o in
        for tree = 0 to t.cfg.trees_per_source - 1 do
          let last = Rbcast.last_seq o ~tree in
          if last >= 0 then
            Net.send_digest_tree t.net ~root:src ~tree ~epoch ~last_seq:last ~hash
              ~bytes:Wire.digest_size
        done
      end)
    t.origins

(* Global-knowledge convergence test, used only to decide when the digest
   loop may stop (and by tests): every alive node is sequence-caught-up
   with every reachable origin, and (Per_node) believes exactly the
   origin's live-flow set. *)
let control_converged t =
  let ok = ref true in
  Array.iteri
    (fun node _ ->
      if Net.node_up t.net node then
        Array.iteri
          (fun root o ->
            if
              root <> node && Net.node_up t.net root
              && Topology.reachable t.topo root node
            then begin
              for tree = 0 to t.cfg.trees_per_source - 1 do
                let last = Rbcast.last_seq o ~tree in
                if last >= 0 then
                  match Hashtbl.find_opt t.wins.(node) (win_key t ~root ~tree) with
                  | Some w when Rbcast.next_expected w.rx > last -> ()
                  | Some _ | None -> ok := false
              done;
              if
                t.cfg.control = Per_node
                && Rbcast.hash_ids (per_source_view_ids t ~node ~root)
                   <> Rbcast.state_hash o
              then ok := false
            end)
          t.origins)
    t.wins;
  !ok

(* [control_converged] restricted to one node — the rejoin-completion
   criterion: the restarted node is sequence-caught-up with every reachable
   origin and (Per_node) believes exactly their live-flow sets. *)
let node_caught_up t ~node =
  let ok = ref true in
  Array.iteri
    (fun root o ->
      if
        root <> node && Net.node_up t.net root
        && Topology.reachable t.topo root node
      then begin
        for tree = 0 to t.cfg.trees_per_source - 1 do
          let last = Rbcast.last_seq o ~tree in
          if last >= 0 then
            match Hashtbl.find_opt t.wins.(node) (win_key t ~root ~tree) with
            | Some w when Rbcast.next_expected w.rx > last -> ()
            | Some _ | None -> ok := false
        done;
        if
          t.cfg.control = Per_node
          && Rbcast.hash_ids (per_source_view_ids t ~node ~root)
             <> Rbcast.state_hash o
        then ok := false
      end)
    t.origins;
  !ok

let detection_delay t =
  match t.cfg.detection_delay_ns with
  | Some d -> d
  | None ->
      let tx = Net.tx_time_ns t.net Wire.broadcast_size in
      2 * Topology.diameter t.topo * (t.cfg.hop_latency_ns + tx)

(* Evaluated once per digest round: a pending rejoiner that has caught up
   gets its rejoin time stamped and leaves the pending set. *)
let check_rejoins t =
  if Hashtbl.length t.pending_rejoins > 0 then begin
    let now = Engine.now t.eng in
    Array.iter
      (fun node ->
        (* Before the restart's detection instant the overlay still shows
           the node detached, so every origin would be skipped as
           unreachable and the catch-up check would pass vacuously —
           stamping a zero-length rejoin before the JOIN even went out. *)
        if
          now >= Hashtbl.find t.pending_rejoins node + detection_delay t
          && Net.node_up t.net node && node_caught_up t ~node
        then begin
          let start = Hashtbl.find t.pending_rejoins node in
          Hashtbl.remove t.pending_rejoins node;
          Metrics.note_rejoin t.mtrcs ~node ~start ~finish:now
        end)
      (Util.Tbl.sorted_keys ~cmp:Int.compare t.pending_rejoins)
  end

let rec digest_loop t () =
  close_reconvergence t;
  check_rejoins t;
  if
    Hashtbl.length t.active > 0
    || Hashtbl.length t.pending_rejoins > 0
    || not (control_converged t)
  then begin
    digest_round t;
    Engine.after t.eng t.cfg.digest_interval_ns (digest_loop t)
  end
  else t.digest_running <- false

(* The periodic loop must not keep the event queue alive once the rack is
   idle; it stops when no flow remains and restarts when one starts. *)
let rec recompute_loop t () =
  recompute t;
  if Hashtbl.length t.active > 0 then
    Engine.after t.eng t.cfg.recompute_interval_ns (recompute_loop t)
  else t.loop_running <- false

let ensure_loop t =
  if not t.loop_running then begin
    t.loop_running <- true;
    Engine.after t.eng t.cfg.recompute_interval_ns (recompute_loop t)
  end;
  if reliable t && not t.digest_running then begin
    t.digest_running <- true;
    Engine.after t.eng t.cfg.digest_interval_ns (digest_loop t)
  end;
  match t.cfg.reselect_interval_ns with
  | Some interval when not t.reselect_running ->
      t.reselect_running <- true;
      Engine.after t.eng interval (reselect_loop t interval)
  | _ -> ()

(* -- fault injection and recovery (§3.2) ----------------------------------- *)

let rcfg cfg =
  {
    Reliability.packets = 1;
    rtx_timeout_ns = cfg.rtx_timeout_ns;
    max_retries = cfg.rtx_max_retries;
    rtx_backoff = cfg.rtx_backoff;
    rtx_cap_ns = cfg.rtx_cap_ns;
  }

let flow_complete t idx = Metrics.complete t.mtrcs (Metrics.find t.mtrcs idx)

(* Dead-endpoint flows cannot recover; they are dropped from the rack state
   entirely (active set, allocator, per-node views) and reported. *)
let abort_flow t st =
  if not st.failed then begin
    st.failed <- true;
    t.aborted <- st.idx :: t.aborted;
    st.inject_gen <- st.inject_gen + 1;
    flow_done_sending t st;
    Hashtbl.remove t.active st.idx;
    Hashtbl.remove t.on_complete st.idx;
    Array.iter (fun view -> Hashtbl.remove view st.idx) t.views;
    (* The origin's advertised live set must drop the flow too, or every
       digest hash would disagree with the views forever. *)
    if reliable t then Rbcast.mark_dead t.origins.(st.src) st.idx;
    t.epoch_dirty <- true;
    if Hashtbl.length t.active = 0 then stamp_reconvergence t
  end

(* The simulator plays the receiver's ARQ with global knowledge: a lost Data
   packet re-arms a per-sequence retransmission timer under the
   {!Reliability} backoff discipline and is re-sent — same sequence number,
   freshly sampled path — once it fires. Until the failure is detected the
   fresh path may cross the same dead cable; the backoff rides out exactly
   that window. *)
let rec arm_retransmit t st ~seq ~bytes ~last =
  let n = Option.value ~default:0 (Hashtbl.find_opt st.rtx seq) in
  if n >= t.cfg.rtx_max_retries then abort_flow t st
  else begin
    Hashtbl.replace st.rtx seq (n + 1);
    Engine.after t.eng
      (Reliability.timeout_ns t.rel_cfg ~attempt:n)
      (fun () -> retransmit t st ~seq ~bytes ~last)
  end

and retransmit t st ~seq ~bytes ~last =
  if (not st.failed) && (not (flow_complete t st.idx)) && Net.node_up t.net st.src then begin
    if Topology.reachable t.topo st.src st.dst then begin
      t.retransmissions <- t.retransmissions + 1;
      t.injected_payload <- t.injected_payload + (bytes - header);
      let path = Routing.sample_path t.rctx t.rng st.proto ~src:st.src ~dst:st.dst in
      let route = Net.intern_route t.net path in
      Net.send_data t.net ~flow:st.idx ~seq ~last ~bytes ~route;
      Net.release_route t.net route
    end
    else
      (* Partitioned for now: wait out another timeout (the detection
         handler aborts the flow if the endpoint is truly gone). *)
      arm_retransmit t st ~seq ~bytes ~last
  end

let handle_loss t pkt =
  if Net.kind t.net pkt = Net.code_data then begin
    let flow = Net.data_flow t.net pkt in
    match Hashtbl.find_opt t.all_states flow with
    | Some st when (not st.failed) && not (flow_complete t flow) ->
        arm_retransmit t st ~seq:(Net.data_seq t.net pkt)
          ~bytes:(Net.bytes t.net pkt) ~last:(Net.data_last t.net pkt)
    | _ -> ()
  end

(* A congested receiver paces senders down: when a delivered data packet's
   final-hop link is above the high watermark, the receiver returns one
   PAUSE (rate-limited per receiver) to the packet's source, covering
   [pause_class] and every class below it. Higher classes are never
   paused — their latency is what the backpressure is protecting. *)
let maybe_send_pause t pkt ~flow =
  if t.overload_on && Net.overloaded_links t.net > 0 then begin
    let dst = Net.route_last t.net pkt in
    let now = Engine.now t.eng in
    if now - t.last_pause.(dst) >= t.cfg.pause_interval_ns then begin
      let len = Net.route_length t.net pkt in
      let l = Topology.find_link_id t.topo (Net.route_at t.net pkt (len - 2)) dst in
      if l >= 0 && Net.link_overloaded t.net ~link_id:l then
        match Hashtbl.find_opt t.all_states flow with
        | Some st
          when st.priority >= t.cfg.pause_class
               && st.src <> dst && Net.node_up t.net st.src
               && Topology.reachable t.topo dst st.src ->
            t.last_pause.(dst) <- now;
            t.pauses_sent <- t.pauses_sent + 1;
            let route =
              Net.intern_route t.net
                (Routing.ecmp_path t.rctx ~flow_id:(dst + (131 * st.src))
                   ~src:dst ~dst:st.src)
            in
            Net.send_pause t.net ~node:st.src ~cls:t.cfg.pause_class ~level:1
              ~window_kbps:0 ~bytes:Wire.pause_size ~route;
            Net.release_route t.net route
        | _ -> ()
    end
  end

(* Runs one detection delay after the physical event: flips the
   control-plane overlay, repairs broadcast trees, drops flows whose
   endpoint died, and re-paths + re-announces the survivors (§3.2: every
   node re-broadcasts its ongoing flows after a discovery event). The next
   rate epoch then stamps reconvergence. *)
let detect t fr apply_overlay =
  apply_overlay ();
  fr.repaired <- Broadcast.repair_all t.bcast;
  t.bcast_target <- Topology.alive_vertex_count t.topo - 1;
  (* [t.active] is keyed by flow idx, so this is the old sort-by-idx. *)
  let sts = Array.to_list (Util.Tbl.sorted_values ~cmp:Int.compare t.active) in
  List.iter
    (fun st ->
      if not (Topology.reachable t.topo st.src st.dst) then begin
        abort_flow t st;
        fr.aborted <- fr.aborted + 1
      end
      else begin
        st.wf_links <- Routing.fractions t.rctx st.proto ~src:st.src ~dst:st.dst;
        t.epoch_dirty <- true;
        (match t.galloc with
        | Some inc when Congestion.Waterfill.Inc.mem inc ~id:st.idx ->
            Congestion.Waterfill.Inc.set_links inc ~id:st.idx st.wf_links
        | _ -> ());
        if not st.done_sending then send_flow_broadcast t st Wire.Flow_start
      end)
    sts;
  if Hashtbl.length t.active = 0 then fr.reconverge_ns <- Engine.now t.eng
  else ensure_loop t

let schedule_event t ~ns kind phys overlay =
  Engine.at t.eng ns (fun () ->
      phys ();
      let fr =
        {
          kind;
          fail_ns = ns;
          detect_ns = ns + detection_delay t;
          reconverge_ns = -1;
          aborted = 0;
          repaired = 0;
        }
      in
      t.failures <- fr :: t.failures;
      Engine.after t.eng (detection_delay t) (fun () ->
          detect t fr overlay;
          (* The rack may have gone quiet before this event was detected
             (e.g. a partition healing after every flow completed); the
             periodic loops must come back so anti-entropy can repair the
             views of whoever was cut off. *)
          ensure_loop t))

let fail_link_at t ~ns u v =
  schedule_event t ~ns "link"
    (fun () -> Net.fail_link t.net u v)
    (fun () -> Topology.fail_link t.topo u v)

let fail_node_at t ~ns u =
  schedule_event t ~ns "node"
    (fun () -> Net.fail_node t.net u)
    (fun () -> Topology.fail_node t.topo u)

let restore_link_at t ~ns u v =
  schedule_event t ~ns "restore-link"
    (fun () -> Net.restore_link t.net u v)
    (fun () -> Topology.restore_link t.topo u v)

let restore_node_at t ~ns u =
  schedule_event t ~ns "restore-node"
    (fun () -> Net.restore_node t.net u)
    (fun () -> Topology.restore_node t.topo u)

(* -- crash-restart (robustness) -------------------------------------------- *)

(* A crash is a state-losing node failure: besides the physical down-state,
   the node's receive windows, traffic-matrix view and per-flow sender soft
   state (pacing timers, retransmission history) are destroyed — unlike
   {!fail_node_at}, which models an outage that preserves state. *)
let crash_node_at t ~ns u =
  schedule_event t ~ns "crash"
    (fun () ->
      Net.fail_node t.net u;
      if reliable t then Hashtbl.reset t.wins.(u);
      if t.cfg.control = Per_node then Hashtbl.reset t.views.(u);
      Util.Tbl.iter_sorted ~cmp:Int.compare
        (fun _ st ->
          if st.src = u then begin
            (* Invalidate the pacing timer and forget retransmission
               attempts: nothing of the sender survives the crash. *)
            st.inject_gen <- st.inject_gen + 1;
            Hashtbl.reset st.rtx
          end)
        t.active)
    (fun () -> Topology.fail_node t.topo u)

let send_snapshot_reqs t u =
  if reliable t then
    Array.iteri
      (fun root _ ->
        if
          root <> u && Net.node_up t.net root
          && Topology.reachable t.topo u root
        then begin
          (* An empty-range NACK is the wire-level snapshot request
             ([Wire.snapshot_req]): the origin answers with a full-state
             sync — the rejoin catch-up reuses the anti-entropy repair
             path wholesale. *)
          t.sync_requests <- t.sync_requests + 1;
          let route =
            Net.intern_route t.net
              (Routing.ecmp_path t.rctx ~flow_id:(root + (131 * u)) ~src:u
                 ~dst:root)
          in
          Net.send_nack t.net ~root ~tree:0 ~from_seq:0 ~to_seq:(-1)
            ~requester:u ~bytes:Wire.snapshot_req_size ~route;
          Net.release_route t.net route
        end)
      t.origins

(* Announce the rejoin: a JOIN broadcast carrying the fresh incarnation
   (receivers wipe their windows for this root and drop its pre-crash
   flows), plus one snapshot request per alive origin. Re-announced every
   [rejoin_retry_ns] until the node has caught up, so a lost JOIN or
   snapshot cannot strand the rejoin. *)
let rec announce_join t u =
  if Net.node_up t.net u && Hashtbl.mem t.pending_rejoins u then begin
    t.joins_sent <- t.joins_sent + 1;
    if t.cfg.real_broadcast then begin
      let inc = if reliable t then Rbcast.incarnation t.origins.(u) else 0 in
      Net.send_bcast t.net ~inc ~root:u ~tree:0 ~bcast_id:bcast_id_join
        ~bytes:Wire.join_size ()
    end;
    send_snapshot_reqs t u;
    if reliable t then
      Engine.after t.eng t.cfg.rejoin_retry_ns (fun () -> announce_join t u)
    else begin
      (* Without the reliable machinery there is no catch-up to await: the
         rejoin completes at the announcement. *)
      let start = Hashtbl.find t.pending_rejoins u in
      Hashtbl.remove t.pending_rejoins u;
      Metrics.note_rejoin t.mtrcs ~node:u ~start ~finish:(Engine.now t.eng)
    end
  end

(* The node comes back {e cold}: fresh origin incarnation, no receive
   windows, no view — then runs the rejoin protocol. The JOIN waits for the
   restore's detection instant, when the broadcast trees have been repaired
   around the revived node and the routing overlay can reach it again. *)
let restart_node_at t ~ns u =
  Engine.at t.eng ns (fun () ->
      Net.restore_node t.net u;
      if reliable t then begin
        Hashtbl.reset t.wins.(u);
        ignore (Rbcast.restart t.origins.(u))
      end;
      if t.cfg.control = Per_node then Hashtbl.reset t.views.(u);
      Hashtbl.replace t.pending_rejoins u ns;
      let fr =
        {
          kind = "restart";
          fail_ns = ns;
          detect_ns = ns + detection_delay t;
          reconverge_ns = -1;
          aborted = 0;
          repaired = 0;
        }
      in
      t.failures <- fr :: t.failures;
      Engine.after t.eng (detection_delay t) (fun () ->
          detect t fr (fun () -> Topology.restore_node t.topo u);
          announce_join t u;
          ensure_loop t))

(* -- gray failures: flaky links and the health estimator ------------------- *)

let flaky_seed seed = seed + 211

let get_health t =
  match t.health with
  | Some h -> h
  | None ->
      let n = Topology.link_count t.topo in
      let h =
        {
          ewma = Array.make n 0.0;
          prev_tx = Array.make n 0;
          prev_lost = Array.make n 0;
          since = Array.make n 0;
        }
      in
      t.health <- Some h;
      h

(* One estimator tick: fold the last interval's per-cable flaky-loss rate
   into an EWMA and drive the {!Routing} quarantine state machine. An
   interval without samples decays the estimate, so an unflagged or idle
   cable drifts back towards health instead of pinning its last bad
   reading forever. Returns whether any cable is still demoted. *)
let health_tick t h =
  let now = Engine.now t.eng in
  let demoted = ref false in
  let nl = Topology.link_count t.topo in
  for l = 0 to nl - 1 do
    let u = Topology.link_src t.topo l and v = Topology.link_dst t.topo l in
    if u < v then begin
      let tx, lost = Net.flaky_link_stats t.net u v in
      let dtx = tx - h.prev_tx.(l) and dlost = lost - h.prev_lost.(l) in
      h.prev_tx.(l) <- tx;
      h.prev_lost.(l) <- lost;
      if dtx > 0 then
        h.ewma.(l) <-
          (t.cfg.health_alpha *. (float_of_int dlost /. float_of_int dtx))
          +. ((1.0 -. t.cfg.health_alpha) *. h.ewma.(l))
      else h.ewma.(l) <- (1.0 -. t.cfg.health_alpha) *. h.ewma.(l);
      (match Routing.link_health t.rctx u v with
      | Routing.Healthy ->
          if h.ewma.(l) > t.cfg.quarantine_loss_threshold then begin
            Routing.note_suspect t.rctx u v;
            t.quarantines <- t.quarantines + 1;
            h.since.(l) <- now
          end
      | Routing.Quarantined ->
          if now - h.since.(l) >= t.cfg.probation_ns then begin
            Routing.note_probation t.rctx u v;
            t.probations <- t.probations + 1;
            h.since.(l) <- now
          end
      | Routing.Probation ->
          if now - h.since.(l) >= t.cfg.probation_ns then begin
            (* The probation trickle kept sampling the cable; the verdict
               is whatever the estimator saw of it. *)
            if h.ewma.(l) > t.cfg.quarantine_loss_threshold then begin
              Routing.note_suspect t.rctx u v;
              t.quarantines <- t.quarantines + 1
            end
            else begin
              Routing.note_recovered t.rctx u v;
              t.recoveries <- t.recoveries + 1
            end;
            h.since.(l) <- now
          end);
      match Routing.link_health t.rctx u v with
      | Routing.Healthy -> ()
      | Routing.Probation | Routing.Quarantined -> demoted := true
    end
  done;
  !demoted

let rec health_loop t () =
  match t.health with
  | None -> t.health_running <- false
  | Some h ->
      let demoted = health_tick t h in
      if demoted || Hashtbl.length t.active > 0 then
        Engine.after t.eng t.cfg.health_interval_ns (health_loop t)
      else t.health_running <- false

(* Started when the first flaky link is flagged — a clean run never runs a
   single tick, so its event stream is untouched. *)
let ensure_health_loop t =
  ignore (get_health t);
  if not t.health_running then begin
    t.health_running <- true;
    Engine.after t.eng t.cfg.health_interval_ns (health_loop t)
  end

let flaky_link_at t ~ns ?spike_ns u v ~loss ~spike =
  Engine.at t.eng ns (fun () ->
      Net.set_flaky_link t.net ~seed:(flaky_seed t.cfg.seed)
        ~spike_ns:(Option.value ~default:t.cfg.flaky_spike_ns spike_ns)
        u v ~loss ~spike;
      ensure_health_loop t)

let unflaky_link_at t ~ns u v =
  Engine.at t.eng ns (fun () -> Net.clear_flaky_link t.net u v)

(* -- construction ---------------------------------------------------------- *)

let chaos_seed seed = seed + 101

let create cfg topo =
  if cfg.mtu <= header then invalid_arg "R2c2_sim: mtu must exceed the header size";
  if cfg.control = Per_node && not cfg.real_broadcast then
    invalid_arg "R2c2_sim: Per_node control builds its views from real broadcasts";
  if cfg.reliable_bcast && not cfg.real_broadcast then
    invalid_arg "R2c2_sim: reliable_bcast needs real broadcasts to protect";
  if cfg.overload_control && cfg.pause_interval_ns <= 0 then
    invalid_arg "R2c2_sim: pause_interval_ns must be positive";
  if cfg.overload_control && cfg.pause_class < 0 then
    invalid_arg "R2c2_sim: negative pause_class";
  let eng = Engine.create ~backend:cfg.engine_backend () in
  let net =
    Net.create eng topo ~queue_capacity:cfg.queue_capacity ~link_gbps:cfg.link_gbps
      ~hop_latency_ns:cfg.hop_latency_ns ()
  in
  let chaos_on =
    U.compare_q cfg.control_loss U.zero > 0
    || U.compare_q cfg.control_reorder U.zero > 0
    || U.compare_q cfg.control_dup U.zero > 0
  in
  if chaos_on then
    Net.set_control_chaos net ~seed:(chaos_seed cfg.seed) ~loss:cfg.control_loss
      ~reorder:cfg.control_reorder ~dup:cfg.control_dup;
  let bcast = Broadcast.make ~trees_per_source:cfg.trees_per_source topo in
  Net.set_broadcast net bcast;
  let nverts = Topology.vertex_count topo in
  let cap = U.byte_rate_of_gbps cfg.link_gbps in
  let capacities = Array.make (Topology.link_count topo) cap in
  let t =
    {
      cfg;
      rel_cfg = rcfg cfg;
      topo;
      eng;
      net;
      bcast;
      rctx = Routing.make topo;
      rng = Util.Rng.create cfg.seed;
      root_rng = Util.Rng.create (cfg.seed + 7);
      mtrcs = Metrics.create ();
      cap_bytes_ns = U.to_float cap;
      capacities;
      (* Pre-sized to measured steady-state populations (permutation
         workload, one flow per host): [active]/[all_states] and each
         node's view hold one entry per host (27 on the 3x3x3 test torus,
         512 on the 8x8x8 bench torus); [bcast_seen] peaks at two ids per
         flow (start + finish). Sizing from [nverts] keeps the packet-path
         lookups resize-free at every scale. *)
      active = Hashtbl.create (max 256 nverts);
      all_states = Hashtbl.create (max 256 nverts);
      views =
        (if cfg.control = Per_node then
           Array.init nverts (fun _ -> Hashtbl.create (max 32 nverts))
         else [||]);
      bcast_seen = Hashtbl.create (max 256 (2 * nverts));
      on_complete = Hashtbl.create 16;  (* one callback per test waiter; measured <= 16 *)
      next_id = 0;
      recomputes = 0;
      rate_updates = [];
      rate_update_count = 0;
      loop_running = false;
      reselections = 0;
      flows_rerouted = 0;
      reselect_running = false;
      galloc =
        (if cfg.control = Global_epoch then
           Some (Congestion.Waterfill.Inc.create ~headroom:cfg.headroom ~capacities ())
         else None);
      epoch_dirty = false;
      bcast_target = nverts - 1;
      injected_payload = 0;
      delivered_payload = 0;
      dropped_payload = 0;
      blackholed_payload = 0;
      retransmissions = 0;
      aborted = [];
      failures = [];
      origins =
        (if cfg.reliable_bcast && cfg.real_broadcast then
           Array.init nverts (fun _ ->
               Rbcast.origin ~log_cap:cfg.bcast_log_cap ~trees:cfg.trees_per_source ())
         else [||]);
      wins =
        (if cfg.reliable_bcast && cfg.real_broadcast then
           (* Each node ends up with one receive window per (root, tree):
              measured trees_per_source * (nverts - 1) entries — 104 on
              the 3x3x3 test torus, 2044 on the 8x8x8 bench torus. The
              old create 16 forced ~7 doublings per node on the bench. *)
           Array.init nverts (fun _ -> Hashtbl.create (cfg.trees_per_source * nverts))
         else [||]);
      chaos_on;
      digest_running = false;
      nacks_sent = 0;
      event_retransmits = 0;
      sync_requests = 0;
      syncs_sent = 0;
      sync_bytes = 0;
      divergence_epochs = 0;
      diverged_since = -1;
      reconverge_samples = [];
      loss_ewma = 0.0;
      eff_headroom = (cfg.headroom : U.fraction :> float);
      prev_ctrl_hops = 0;
      prev_ctrl_lost = 0;
      pending_rejoins = Hashtbl.create 4;
      joins_sent = 0;
      health = None;
      health_running = false;
      quarantines = 0;
      probations = 0;
      recoveries = 0;
      overload_on = cfg.overload_control;
      admission =
        (if cfg.overload_control then
           Some
             (Congestion.Overload.Admission.create
                ~clean_epochs_to_recover:cfg.shed_recover_epochs
                ~max_priority:(Metrics.max_class - 1) ())
         else None);
      pacers =
        (if cfg.overload_control then
           Array.init nverts (fun _ ->
               Congestion.Overload.Pacer.create ~backoff:cfg.pause_backoff
                 ~recovery:cfg.pause_recovery ~min_scale:cfg.pause_min_scale ())
         else [||]);
      pause_cls = (if cfg.overload_control then Array.make nverts max_int else [||]);
      last_pause =
        (if cfg.overload_control then Array.make nverts (-cfg.pause_interval_ns)
         else [||]);
      shed_flows = 0;
      shed_payload = 0;
      pauses_sent = 0;
      pauses_received = 0;
      overload_epochs = 0;
    }
  in
  if cfg.queue_high_watermark < max_int then
    Net.set_queue_watermarks net ~high:cfg.queue_high_watermark
      ~low:cfg.queue_low_watermark;
  List.iter (fun (priority, bound_ns) -> Metrics.set_slo t.mtrcs ~priority ~bound_ns) cfg.slos;
  (if U.compare_q cfg.class_reserve U.zero > 0 then
     match t.galloc with
     | Some inc ->
         Congestion.Waterfill.Inc.set_class_reserve inc ~priority:cfg.reserve_priority
           ~reserve:cfg.class_reserve
     | None -> ());
  (* Broadcast copies arriving anywhere bump the receipt counter; once all
     other vertices have a copy, the flow is globally visible. Per-node
     views learn flow starts/finishes from the same deliveries. In reliable
     mode every event first passes the (source, tree) receive window:
     duplicates are absorbed, reordered arrivals buffered, and a gap arms
     the NACK timer. *)
  Net.on_bcast_deliver net (fun pkt ~node ->
      let k = Net.kind net pkt in
      if k = Net.code_bcast then begin
        let bcast_id = Net.bcast_id net pkt in
        if bcast_id = bcast_id_join then
          handle_join t ~node ~joiner:(Net.bcast_root net pkt)
            ~inc:(Net.bcast_inc net pkt)
        else if reliable t then begin
          let root = Net.bcast_root net pkt and tree = Net.bcast_tree net pkt in
          let seq = Net.bcast_seq net pkt in
          let w = get_win t ~node ~root ~tree in
          if win_ensure_inc w ~inc:(Net.bcast_inc net pkt) then begin
            if seq > w.hi then w.hi <- seq;
            match Rbcast.receive w.rx ~seq (bcast_id, Net.bytes net pkt) with
            | Rbcast.Deliver ps ->
                List.iter (fun (bid, _) -> apply_bcast_event t ~node bid) ps
            | Rbcast.Duplicate -> ()
            | Rbcast.Buffered -> schedule_nack t ~node ~root ~tree w
          end
        end
        else apply_bcast_event t ~node bcast_id
      end
      else if k = Net.code_digest then begin
        let root = Net.digest_root net pkt and tree = Net.digest_tree net pkt in
        let last_seq = Net.digest_last_seq net pkt in
        let hash = Net.digest_hash net pkt in
        if reliable t then begin
            let w = get_win t ~node ~root ~tree in
            if win_ensure_inc w ~inc:(Net.digest_epoch net pkt lsr 32) then begin
            if last_seq > w.hi then w.hi <- last_seq;
            let next = Rbcast.next_expected w.rx in
            if next <= last_seq then schedule_nack t ~node ~root ~tree w
            else if cfg.control = Per_node && next = last_seq + 1 then begin
              (* Sequence-caught-up on every tree of this origin, yet the
                 believed live-flow set hashes differently: genuine
                 divergence (e.g. a repair evicted from the replay log) —
                 ask for a full-state sync. If some other tree still has a
                 gap, its own digest will trigger the cheaper NACK path
                 first. *)
              let all_caught_up = ref true in
              for tr = 0 to cfg.trees_per_source - 1 do
                let wt = get_win t ~node ~root ~tree:tr in
                if Rbcast.next_expected wt.rx <= wt.hi then all_caught_up := false
              done;
              if
                !all_caught_up
                && Rbcast.hash_ids (per_source_view_ids t ~node ~root) <> hash
              then send_nack t ~node ~root ~tree ~from_seq:0 ~to_seq:(-1)
            end
            end
          end
      end);
  (* Lost Data packets — queue tail drops and failure blackholes alike —
     feed the retransmission machinery; payload losses are bucketed for the
     byte-conservation accounting. *)
  Net.on_drop net (fun pkt ->
      if Net.kind net pkt = Net.code_data then
        t.dropped_payload <- t.dropped_payload + (Net.bytes net pkt - header);
      handle_loss t pkt);
  Net.on_blackhole net (fun pkt ->
      if Net.kind net pkt = Net.code_data then
        t.blackholed_payload <- t.blackholed_payload + (Net.bytes net pkt - header);
      handle_loss t pkt);
  Net.on_deliver net (fun pkt ->
      let k = Net.kind net pkt in
      if k = Net.code_data then begin
          let flow = Net.data_flow net pkt and seq = Net.data_seq net pkt in
          let payload = Net.bytes net pkt - header in
          t.delivered_payload <- t.delivered_payload + payload;
          maybe_send_pause t pkt ~flow;
          let finished =
            Metrics.record_delivery t.mtrcs ~id:flow ~seq ~payload ~now:(Engine.now eng)
          in
          if finished then begin
            (match Hashtbl.find_opt t.active flow with
            | Some st ->
                Hashtbl.remove t.active flow;
                t.epoch_dirty <- true;
                (* With nothing left to allocate, a detected failure is
                   trivially reconverged — the periodic loop is about to
                   stop and would never stamp it. *)
                if Hashtbl.length t.active = 0 then stamp_reconvergence t;
                (* The finish broadcast never reaches its own root, but the
                   sender knows its flow ended. *)
                if cfg.control = Per_node then Hashtbl.remove t.views.(st.src) flow;
                send_flow_broadcast t st Wire.Flow_finish
            | None -> ());
            match Hashtbl.find_opt t.on_complete flow with
            | Some k ->
                Hashtbl.remove t.on_complete flow;
                k flow
            | None -> ()
          end
      end
      else if k = Net.code_nack then begin
          (* A NACK reached the origin: replay the logged packets onto the
             same tree (duplicates at healthy nodes are absorbed by their
             windows), or fall back to a full-state sync when the range is
             empty (a sync request) or evicted from the log. *)
          let root = Net.nack_root net pkt and tree = Net.nack_tree net pkt in
          let from_seq = Net.nack_from net pkt and to_seq = Net.nack_to net pkt in
          let requester = Net.nack_requester net pkt in
          if reliable t then begin
            if to_seq < from_seq then send_sync t ~root ~requester
            else begin
              let o = t.origins.(root) in
              let evicted = ref false in
              (* Bound the replay burst; the requester re-NACKs for the
                 rest if the range was truly enormous. *)
              for s = from_seq to min to_seq (from_seq + 255) do
                match Rbcast.replay o ~tree ~seq:s with
                | Some (bcast_id, bytes) ->
                    t.event_retransmits <- t.event_retransmits + 1;
                    Net.send_bcast t.net ~seq:s ~inc:(Rbcast.incarnation o) ~root
                      ~tree ~bcast_id ~bytes ()
                | None -> evicted := true
              done;
              if !evicted then send_sync t ~root ~requester
            end
          end
      end
      else if k = Net.code_sync then begin
          if reliable t then begin
            let node = Net.route_last net pkt in
            apply_sync t ~node ~root:(Net.sync_root net pkt)
              ~entries:(Net.sync_entries net pkt)
              ~last_seqs:(Net.sync_last_seqs net pkt)
          end
      end
      else if k = Net.code_pause then begin
          if t.overload_on then begin
            let node = Net.pause_node net pkt in
            t.pauses_received <- t.pauses_received + 1;
            t.pause_cls.(node) <- Net.pause_class net pkt;
            Congestion.Overload.Pacer.note_pause t.pacers.(node)
              ~level:(Net.pause_level net pkt)
          end
      end);
  t

let start_flow ?(weight = 1) ?(priority = 0) ?(protocol = Routing.Rps) ?demand_gbps ?on_complete
    t ~src ~dst ~size =
  if src = dst then invalid_arg "R2c2_sim: flow with src = dst";
  if size <= 0 then invalid_arg "R2c2_sim: non-positive flow size";
  let shed =
    match t.admission with
    | Some adm -> not (Congestion.Overload.Admission.admits adm ~priority)
    | None -> false
  in
  if shed then begin
    (* Refused at admission: the flow consumes an id but injects nothing —
       its would-be payload is accounted to the shed counters, so the
       byte-conservation ledger still balances exactly. *)
    let idx = t.next_id in
    t.next_id <- idx + 1;
    t.shed_flows <- t.shed_flows + 1;
    t.shed_payload <- t.shed_payload + size;
    idx
  end
  else begin
  let idx = t.next_id in
  t.next_id <- idx + 1;
  Metrics.add_flow ~priority t.mtrcs ~id:idx ~src ~dst ~size ~arrival_ns:(Engine.now t.eng);
  let st =
    {
      idx;
      src;
      dst;
      proto = protocol;
      weight = float_of_int (max 1 weight);
      priority;
      wf_links = Routing.fractions t.rctx protocol ~src ~dst;
      (* Gbps from the caller, wire bytes/ns internally. *)
      demand = Option.map U.byte_rate_of_gbps demand_gbps;
      started_ns = Engine.now t.eng;
      remaining = size;
      seq = 0;
      (* New flows transmit immediately at line rate (§3.3.2): the headroom
         left by the rate computation absorbs them until the next epoch
         picks them up, and flows shorter than one epoch are never
         rate-limited at all. *)
      rate = t.cap_bytes_ns;
      last_inject = Engine.now t.eng;
      inject_gen = 0;
      visible = false;
      done_sending = false;
      rtx = Hashtbl.create 8;
      (* measured: empty on loss-free runs; only tail-drop/failure
         retransmission timers land here, a handful per flow *)
      failed = false;
      btree = -1;
    }
  in
  Hashtbl.replace t.active idx st;
  Hashtbl.replace t.all_states idx st;
  t.epoch_dirty <- true;
  (match on_complete with Some k -> Hashtbl.replace t.on_complete idx k | None -> ());
  if t.cfg.control = Per_node then Hashtbl.replace t.views.(src) idx ();
  send_flow_broadcast t st Wire.Flow_start;
  ensure_loop t;
  inject t st;
  idx
  end

let run_engine ?until_ns t = Engine.run ?until:until_ns t.eng

(* -- reliability accessors (tests, benches) -------------------------------- *)

let set_control_chaos_at t ~ns ~loss ~reorder ~dup =
  Engine.at t.eng ns (fun () ->
      Net.set_control_chaos t.net ~seed:(chaos_seed t.cfg.seed) ~loss ~reorder ~dup)

let loss_ewma t = U.fraction t.loss_ewma
let effective_headroom t = U.fraction t.eff_headroom

let shed_floor t =
  match t.admission with
  | Some adm -> Congestion.Overload.Admission.shed_floor adm
  | None -> Metrics.max_class

let pacer_scale t ~node =
  if Array.length t.pacers = 0 then 1.0
  else Congestion.Overload.Pacer.scale t.pacers.(node)

let node_view_ids t ~node =
  if t.cfg.control <> Per_node then
    invalid_arg "R2c2_sim.node_view_ids: Per_node control only";
  Array.to_list (Util.Tbl.sorted_keys ~cmp:Int.compare t.views.(node))

(* The full rate vector a node would compute from its current view — every
   flow it believes exists, not just its own. Two nodes with identical
   views produce identical vectors (the waterfill is deterministic), which
   is exactly what the reconvergence tests assert. *)
let node_allocations t ~node =
  if t.cfg.control <> Per_node then
    invalid_arg "R2c2_sim.node_allocations: Per_node control only";
  let view : (int, fstate) Hashtbl.t =
    Hashtbl.create (max 64 (Hashtbl.length t.views.(node)))
  in
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun flow () ->
      match Hashtbl.find_opt t.all_states flow with
      | Some st -> Hashtbl.replace view flow st
      | None -> ())
    t.views.(node);
  let flows = Util.Tbl.sorted_values ~cmp:Int.compare view in
  if Array.length flows = 0 then [||]
  else begin
    let wf = Array.map wf_of flows in
    let rates =
      Congestion.Waterfill.allocate ~headroom:(U.fraction t.eff_headroom)
        ~capacities:t.capacities wf
    in
    Array.mapi (fun i st -> (st.idx, rates.(i))) flows
  end

let diverged_nodes t =
  if t.cfg.control <> Per_node then 0
  else begin
    (* Nodes disagreeing with the modal view hash. *)
    let counts : (int64, int) Hashtbl.t = Hashtbl.create 8 in
    Array.iteri
      (fun node _ ->
        if Net.node_up t.net node then begin
          let h = view_hash t node in
          Hashtbl.replace counts h
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts h))
        end)
      t.views;
    let modal = ref 0 and total = ref 0 in
    Util.Tbl.iter_sorted ~cmp:Int64.compare
      (fun _ n ->
        total := !total + n;
        if n > !modal then modal := n)
      counts;
    !total - !modal
  end

let dup_events_absorbed t =
  Array.fold_left
    (fun acc wt ->
      Util.Tbl.fold_sorted ~cmp:Int.compare
        (fun _ w acc -> acc + Rbcast.duplicates w.rx)
        wt acc)
    0 t.wins

let results t =
  {
    metrics = t.mtrcs;
    max_queue = Net.max_queue_bytes t.net;
    drops = Net.drops t.net;
    data_wire_bytes = Net.data_bytes_on_wire t.net;
    control_wire_bytes = Net.control_bytes_on_wire t.net;
    recomputes = t.recomputes;
    rate_updates = List.rev t.rate_updates;
    reselections = t.reselections;
    flows_rerouted = t.flows_rerouted;
    blackholes = Net.blackholes t.net;
    blackholed_bytes = Net.blackholed_bytes t.net;
    injected_payload = t.injected_payload;
    delivered_payload = t.delivered_payload;
    dropped_payload = t.dropped_payload;
    blackholed_payload = t.blackholed_payload;
    retransmissions = t.retransmissions;
    aborted_flows = List.rev t.aborted;
    failures = List.rev t.failures;
    tree_repairs = Broadcast.repairs t.bcast;
    tree_repair_bytes = Broadcast.repair_bytes t.bcast;
    ctrl_lost = Net.ctrl_lost t.net;
    ctrl_lost_bytes = Net.ctrl_lost_bytes t.net;
    ctrl_reordered = Net.ctrl_reordered t.net;
    ctrl_dupped = Net.ctrl_dupped t.net;
    blackholed_data_bytes = Net.blackholed_data_bytes t.net;
    blackholed_ctrl_bytes = Net.blackholed_ctrl_bytes t.net;
    nacks_sent = t.nacks_sent;
    event_retransmits = t.event_retransmits;
    sync_requests = t.sync_requests;
    syncs_sent = t.syncs_sent;
    sync_bytes = t.sync_bytes;
    dup_events_absorbed = dup_events_absorbed t;
    divergence_epochs = t.divergence_epochs;
    reconverge_samples = List.rev t.reconverge_samples;
    terminal_diverged = diverged_nodes t;
    loss_ewma = U.fraction t.loss_ewma;
    effective_headroom = U.fraction t.eff_headroom;
    flaky_lost = Net.flaky_lost t.net;
    flaky_lost_bytes = Net.flaky_lost_bytes t.net;
    quarantines = t.quarantines;
    probations = t.probations;
    recoveries = t.recoveries;
    joins_sent = t.joins_sent;
    rejoins = Metrics.rejoin_samples t.mtrcs;
    rejoins_pending = Hashtbl.length t.pending_rejoins;
    shed_flows = t.shed_flows;
    shed_payload = t.shed_payload;
    pauses_sent = t.pauses_sent;
    pauses_received = t.pauses_received;
    overload_epochs = t.overload_epochs;
    overloaded_links = Net.overloaded_links t.net;
  }

let link_health t u v = Routing.link_health t.rctx u v
let net t = t.net

let run ?(protocol_of = fun _ _ -> Routing.Rps) ?(demand_of = fun _ _ -> None) ?until_ns cfg
    topo specs =
  let t = create cfg topo in
  List.iteri
    (fun i spec ->
      let open Workload.Flowgen in
      Engine.at t.eng spec.arrival_ns (fun () ->
          let id =
            start_flow ~weight:spec.weight ~priority:spec.priority
              ~protocol:(protocol_of i spec)
              ?demand_gbps:(demand_of i spec) t ~src:spec.src ~dst:spec.dst ~size:spec.size
          in
          (* Batch flow ids must equal list positions. *)
          assert (id = i)))
    specs;
  run_engine ?until_ns t;
  results t

