type control = Global_epoch | Per_node

type config = {
  link_gbps : float;
  hop_latency_ns : int;
  headroom : float;
  recompute_interval_ns : int;
  mtu : int;
  trees_per_source : int;
  real_broadcast : bool;
  queue_capacity : int;
  control : control;
  reselect_interval_ns : int option;
      (** §3.4: when set, long flows are periodically re-assigned a routing
          protocol (RPS vs VLB) by the GA selector *)
  detection_delay_ns : int option;
      (** failure -> topology-discovery latency; [None] = twice the
          broadcast depth of the rack (2 * diameter hops of a 16-byte
          packet) *)
  rtx_timeout_ns : int;  (** initial per-packet retransmission timeout *)
  rtx_backoff : float;  (** timeout multiplier per unacknowledged attempt *)
  rtx_cap_ns : int;  (** backed-off timeout ceiling *)
  rtx_max_retries : int;  (** per packet; exceeding it aborts the flow *)
  seed : int;
}

let default_config =
  {
    link_gbps = 10.0;
    hop_latency_ns = 100;
    headroom = 0.05;
    recompute_interval_ns = 500_000;
    mtu = 1500;
    trees_per_source = 4;
    real_broadcast = true;
    queue_capacity = max_int;
    control = Global_epoch;
    reselect_interval_ns = None;
    detection_delay_ns = None;
    rtx_timeout_ns = 50_000;
    rtx_backoff = 2.0;
    rtx_cap_ns = 1_000_000;
    rtx_max_retries = 30;
    seed = 1;
  }

type failure = {
  kind : string;  (** "link" | "node" | "restore-link" | "restore-node" *)
  fail_ns : int;
  detect_ns : int;
  mutable reconverge_ns : int;  (** -1 until the first post-detection rate epoch *)
  mutable aborted : int;  (** flows dropped because an endpoint died *)
  mutable repaired : int;  (** broadcast trees rebuilt at detection *)
}

type result = {
  metrics : Metrics.t;
  max_queue : int array;
  drops : int;
  data_wire_bytes : float;
  control_wire_bytes : float;
  recomputes : int;
  rate_updates : (int * float) list;
  reselections : int;
  flows_rerouted : int;
  blackholes : int;
  blackholed_bytes : int;
  injected_payload : int;
  delivered_payload : int;
  dropped_payload : int;
  blackholed_payload : int;
  retransmissions : int;
  aborted_flows : int list;
  failures : failure list;
  tree_repairs : int;
  tree_repair_bytes : int;
}

type fstate = {
  idx : int;
  src : int;
  dst : int;
  mutable proto : Routing.protocol;
  weight : float;
  priority : int;
  mutable wf_links : (int * float) array;
  demand : float option;  (** host cap, wire bytes per ns *)
  started_ns : int;
  mutable remaining : int;  (** payload bytes not yet injected *)
  mutable seq : int;
  mutable rate : float;  (** allocated rate, wire bytes per ns *)
  mutable last_inject : int;
  mutable inject_gen : int;
  mutable visible : bool;  (** start broadcast reached every node *)
  mutable done_sending : bool;
  rtx : (int, int) Hashtbl.t;  (** seq -> retransmission attempts so far *)
  mutable failed : bool;  (** aborted: endpoint died or retries exhausted *)
}

type t = {
  cfg : config;
  topo : Topology.t;
  eng : Engine.t;
  net : Net.t;
  bcast : Broadcast.t;
  rctx : Routing.ctx;
  rng : Util.Rng.t;
  root_rng : Util.Rng.t;
  mtrcs : Metrics.t;
  cap_bytes_ns : float;
  capacities : float array;
  active : (int, fstate) Hashtbl.t;
  all_states : (int, fstate) Hashtbl.t;  (** for per-node views that may lag *)
  views : (int, unit) Hashtbl.t array;  (** per-node traffic-matrix views (Per_node) *)
  bcast_seen : (int, int ref) Hashtbl.t;
      (** receipt counters: flow idx * 2 for start, * 2 + 1 for finish *)
  on_complete : (int, int -> unit) Hashtbl.t;
  mutable next_id : int;
  mutable recomputes : int;
  mutable rate_updates : (int * float) list;
  mutable rate_update_count : int;
  mutable loop_running : bool;
  mutable reselections : int;
  mutable flows_rerouted : int;
  mutable reselect_running : bool;
  galloc : Congestion.Waterfill.Inc.t option;
      (** Global_epoch: incremental allocator mirroring the visible,
          still-sending flow set; clean epochs are skipped in O(1) *)
  mutable epoch_dirty : bool;
      (** Per_node: any view/flow event since the last epoch; a clean epoch
          leaves every node's rates untouched and is skipped *)
  mutable bcast_target : int;
      (** copies needed for global visibility: alive vertices - 1 *)
  mutable injected_payload : int;  (** payload bytes of every transmission *)
  mutable delivered_payload : int;  (** payload arriving at destinations, pre-dedup *)
  mutable dropped_payload : int;  (** payload lost to queue tail drops *)
  mutable blackholed_payload : int;  (** payload destroyed by dead links/nodes *)
  mutable retransmissions : int;
  mutable aborted : int list;  (** newest first *)
  mutable failures : failure list;  (** newest first *)
}

let header = Wire.data_header_size

let engine t = t.eng
let metrics t = t.mtrcs
let topology t = t.topo

(* -- epoch dirty tracking -------------------------------------------------- *)

(* Every event that can change the next rate computation funnels through
   these: the flow set (visibility, completion), demands and routes. *)

let mark_visible t st =
  if not st.visible then begin
    st.visible <- true;
    t.epoch_dirty <- true;
    match t.galloc with
    | Some inc when not st.done_sending ->
        Congestion.Waterfill.Inc.add_flow ~weight:st.weight ~priority:st.priority
          ?demand:st.demand inc ~id:st.idx st.wf_links
    | _ -> ()
  end

let flow_done_sending t st =
  if not st.done_sending then begin
    st.done_sending <- true;
    t.epoch_dirty <- true;
    match t.galloc with
    | Some inc when Congestion.Waterfill.Inc.mem inc ~id:st.idx ->
        Congestion.Waterfill.Inc.remove_flow inc ~id:st.idx
    | _ -> ()
  end

(* -- data plane: token-bucket pacing and source routing ------------------- *)

let rec inject t st =
  (* A dead sender stops existing: no injections, no rescheduling. The flow
     is aborted when the failure is detected. *)
  if Net.node_up t.net st.src then begin
    let wire = min t.cfg.mtu (st.remaining + header) in
    let payload = wire - header in
    st.remaining <- st.remaining - payload;
    let last = st.remaining = 0 in
    if last then flow_done_sending t st;
    st.last_inject <- Engine.now t.eng;
    t.injected_payload <- t.injected_payload + payload;
    Metrics.note_first_tx t.mtrcs ~id:st.idx ~now:(Engine.now t.eng);
    let path = Routing.sample_path t.rctx t.rng st.proto ~src:st.src ~dst:st.dst in
    Net.send t.net
      {
        Net.kind = Net.Data { flow = st.idx; seq = st.seq; last };
        bytes = wire;
        route = path;
        hop = 0;
      };
    st.seq <- st.seq + 1;
    if not st.done_sending then schedule_injection t st
  end

and schedule_injection t st =
  st.inject_gen <- st.inject_gen + 1;
  let gen = st.inject_gen in
  let wire = min t.cfg.mtu (st.remaining + header) in
  (* A host-limited flow never injects above its demand, whatever the
     allocation says. *)
  let pace = match st.demand with Some d -> Float.min st.rate d | None -> st.rate in
  let gap = int_of_float (ceil (float_of_int wire /. pace)) in
  let tnext = max (Engine.now t.eng) (st.last_inject + gap) in
  Engine.at t.eng tnext (fun () ->
      if st.inject_gen = gen && not st.done_sending then inject t st)

(* -- control plane: broadcast and rate computation ------------------------ *)

let send_flow_broadcast t st event =
  let bcast_id =
    (2 * st.idx)
    +
    match event with
    | Wire.Flow_start -> 0
    | Wire.Flow_finish | Wire.Demand_update | Wire.Route_change -> 1
  in
  if t.cfg.real_broadcast then begin
    Hashtbl.replace t.bcast_seen bcast_id (ref 0);
    let tree = Broadcast.choose_tree t.bcast t.root_rng ~src:st.src in
    Net.send_bcast t.net ~root:st.src ~tree ~bcast_id ~bytes:Wire.broadcast_size
  end
  else begin
    match event with
    | Wire.Flow_start ->
        let tree = Broadcast.choose_tree t.bcast t.root_rng ~src:st.src in
        let depth = Broadcast.depth t.bcast ~src:st.src ~tree in
        let tx = Net.tx_time_ns t.net Wire.broadcast_size in
        Engine.after t.eng (depth * (t.cfg.hop_latency_ns + tx)) (fun () -> mark_visible t st)
    | Wire.Flow_finish | Wire.Demand_update | Wire.Route_change -> ()
  end

let apply_rate t st r =
  let r = Float.max (0.001 *. t.cap_bytes_ns) r in
  if abs_float (r -. st.rate) > 1e-12 then begin
    st.rate <- r;
    if not st.done_sending then schedule_injection t st
  end;
  if t.rate_update_count < 10_000 then begin
    t.rate_update_count <- t.rate_update_count + 1;
    t.rate_updates <- (Engine.now t.eng, r *. 8.0) :: t.rate_updates
  end

let wf_of st =
  Congestion.Waterfill.flow ~weight:st.weight ~priority:st.priority ?demand:st.demand ~id:st.idx
    st.wf_links

(* Per-node control (§3.3, the paper's actual design): every sender runs
   water-filling over its own broadcast-built view of the traffic matrix
   and rate-limits only its own flows. Views differ transiently — that is
   precisely what the headroom absorbs. Views only change when a broadcast
   delivery, completion or reroute happened since the last epoch
   ([epoch_dirty]); a quiet epoch is skipped outright. *)
let recompute_per_node t =
  let senders : (int, fstate list) Hashtbl.t = Hashtbl.create 64 in
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun _ st ->
      if not st.done_sending then
        Hashtbl.replace senders st.src
          (st :: Option.value ~default:[] (Hashtbl.find_opt senders st.src)))
    t.active;
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun node own ->
      (* The node's view, plus its own flows which it always knows. *)
      let view : (int, fstate) Hashtbl.t = Hashtbl.create 64 in
      Util.Tbl.iter_sorted ~cmp:Int.compare
        (fun flow () ->
          match Hashtbl.find_opt t.all_states flow with
          | Some st -> Hashtbl.replace view flow st
          | None -> ())
        t.views.(node);
      List.iter (fun st -> Hashtbl.replace view st.idx st) own;
      let flows = Util.Tbl.sorted_values ~cmp:Int.compare view in
      if Array.length flows > 0 then begin
        t.recomputes <- t.recomputes + 1;
        let wf = Array.map wf_of flows in
        let rates =
          Congestion.Waterfill.allocate ~headroom:t.cfg.headroom ~capacities:t.capacities wf
        in
        Array.iteri (fun i st -> if st.src = node then apply_rate t st rates.(i)) flows
      end)
    senders

(* Global-epoch approximation: every node would run the same water-filling
   over (nearly) the same visible flow set; run it once per epoch and apply
   the rates at the senders. The `ablation` bench compares this against
   Per_node. The incremental allocator is kept in sync by the visibility /
   completion / reroute events, so an epoch with no event returns the
   cached rates in O(1) and applies nothing. *)
let recompute_global t inc =
  let open Congestion.Waterfill in
  if Inc.live_flows inc > 0 && Inc.is_dirty inc then begin
    t.recomputes <- t.recomputes + 1;
    Inc.allocate inc;
    Inc.iter_rates inc (fun ~id ~rate ->
        match Hashtbl.find_opt t.active id with
        | Some st -> apply_rate t st rate
        | None -> ())
  end

(* After a rate epoch executes, every allocation reflects all events known
   so far — including any detected failure: that is the reconvergence
   instant the recovery metrics report. *)
let stamp_reconvergence t =
  let now = Engine.now t.eng in
  List.iter
    (fun fr -> if fr.reconverge_ns < 0 && fr.detect_ns <= now then fr.reconverge_ns <- now)
    t.failures

let recompute t =
  (match (t.cfg.control, t.galloc) with
  | Global_epoch, Some inc -> recompute_global t inc
  | Global_epoch, None -> assert false
  | Per_node, _ ->
      if t.epoch_dirty then begin
        t.epoch_dirty <- false;
        recompute_per_node t
      end);
  stamp_reconvergence t

(* §3.4: periodic per-flow routing-protocol reselection. Long flows (alive
   for at least one reselection interval) are re-assigned RPS or VLB by the
   GA maximizing aggregate throughput; changed assignments are advertised
   in a single batched broadcast (up to 300 {flow, protocol} pairs per
   1500-byte packet, §3.4). *)
let reselect t interval =
  let now = Engine.now t.eng in
  let eligible = ref [] in
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun _ st ->
      if (not st.done_sending) && now - st.started_ns >= interval then eligible := st :: !eligible)
    t.active;
  let sts = Array.of_list !eligible in
  if Array.length sts >= 2 then begin
    t.reselections <- t.reselections + 1;
    let selector =
      Genetic.Selector.make ~headroom:t.cfg.headroom t.rctx ~link_gbps:t.cfg.link_gbps
    in
    let flows = Array.map (fun st -> (st.src, st.dst)) sts in
    let init = Array.map (fun st -> st.proto) sts in
    (* Flows currently on protocols outside {RPS, VLB} seed as RPS. *)
    let init =
      Array.map (fun p -> if p = Routing.Vlb then Routing.Vlb else Routing.Rps) init
    in
    let current = Genetic.Selector.utility_gbps selector ~flows init in
    let assignment, best =
      Genetic.Selector.select ~pop_size:24 ~generations:6 selector t.rng ~flows ~init
    in
    (* §3.4: re-route only "if a significant improvement is possible" —
       near-ties would otherwise make flows flap between protocols. *)
    let changed = ref 0 in
    if best > current *. 1.01 then
      Array.iteri
        (fun i st ->
          if assignment.(i) <> st.proto then begin
            incr changed;
            st.proto <- assignment.(i);
            st.wf_links <- Routing.fractions t.rctx assignment.(i) ~src:st.src ~dst:st.dst;
            t.epoch_dirty <- true;
            match t.galloc with
            | Some inc when Congestion.Waterfill.Inc.mem inc ~id:st.idx ->
                Congestion.Waterfill.Inc.set_links inc ~id:st.idx st.wf_links
            | _ -> ()
          end)
        sts;
    t.flows_rerouted <- t.flows_rerouted + !changed;
    if !changed > 0 && t.cfg.real_broadcast then begin
      (* One batched route-change announcement: 16-byte header plus 5 bytes
         per {flow, protocol} pair, capped at an MTU. *)
      let bytes = min t.cfg.mtu (Wire.broadcast_size + (5 * !changed)) in
      let root = sts.(0).src in
      let bcast_id = -(t.reselections) in
      let tree = Broadcast.choose_tree t.bcast t.root_rng ~src:root in
      Net.send_bcast t.net ~root ~tree ~bcast_id ~bytes
    end
  end

let rec reselect_loop t interval () =
  reselect t interval;
  if Hashtbl.length t.active > 0 then Engine.after t.eng interval (reselect_loop t interval)
  else t.reselect_running <- false

(* The periodic loop must not keep the event queue alive once the rack is
   idle; it stops when no flow remains and restarts when one starts. *)
let rec recompute_loop t () =
  recompute t;
  if Hashtbl.length t.active > 0 then
    Engine.after t.eng t.cfg.recompute_interval_ns (recompute_loop t)
  else t.loop_running <- false

let ensure_loop t =
  if not t.loop_running then begin
    t.loop_running <- true;
    Engine.after t.eng t.cfg.recompute_interval_ns (recompute_loop t)
  end;
  match t.cfg.reselect_interval_ns with
  | Some interval when not t.reselect_running ->
      t.reselect_running <- true;
      Engine.after t.eng interval (reselect_loop t interval)
  | _ -> ()

(* -- fault injection and recovery (§3.2) ----------------------------------- *)

let rcfg cfg =
  {
    Reliability.packets = 1;
    rtx_timeout_ns = cfg.rtx_timeout_ns;
    max_retries = cfg.rtx_max_retries;
    rtx_backoff = cfg.rtx_backoff;
    rtx_cap_ns = cfg.rtx_cap_ns;
  }

let flow_complete t idx = Metrics.complete t.mtrcs (Metrics.find t.mtrcs idx)

(* Dead-endpoint flows cannot recover; they are dropped from the rack state
   entirely (active set, allocator, per-node views) and reported. *)
let abort_flow t st =
  if not st.failed then begin
    st.failed <- true;
    t.aborted <- st.idx :: t.aborted;
    st.inject_gen <- st.inject_gen + 1;
    flow_done_sending t st;
    Hashtbl.remove t.active st.idx;
    Hashtbl.remove t.on_complete st.idx;
    Array.iter (fun view -> Hashtbl.remove view st.idx) t.views;
    t.epoch_dirty <- true;
    if Hashtbl.length t.active = 0 then stamp_reconvergence t
  end

(* The simulator plays the receiver's ARQ with global knowledge: a lost Data
   packet re-arms a per-sequence retransmission timer under the
   {!Reliability} backoff discipline and is re-sent — same sequence number,
   freshly sampled path — once it fires. Until the failure is detected the
   fresh path may cross the same dead cable; the backoff rides out exactly
   that window. *)
let rec arm_retransmit t st ~seq ~bytes ~last =
  let n = Option.value ~default:0 (Hashtbl.find_opt st.rtx seq) in
  if n >= t.cfg.rtx_max_retries then abort_flow t st
  else begin
    Hashtbl.replace st.rtx seq (n + 1);
    Engine.after t.eng
      (Reliability.timeout_ns (rcfg t.cfg) ~attempt:n)
      (fun () -> retransmit t st ~seq ~bytes ~last)
  end

and retransmit t st ~seq ~bytes ~last =
  if (not st.failed) && (not (flow_complete t st.idx)) && Net.node_up t.net st.src then begin
    if Topology.reachable t.topo st.src st.dst then begin
      t.retransmissions <- t.retransmissions + 1;
      t.injected_payload <- t.injected_payload + (bytes - header);
      let path = Routing.sample_path t.rctx t.rng st.proto ~src:st.src ~dst:st.dst in
      Net.send t.net
        { Net.kind = Net.Data { flow = st.idx; seq; last }; bytes; route = path; hop = 0 }
    end
    else
      (* Partitioned for now: wait out another timeout (the detection
         handler aborts the flow if the endpoint is truly gone). *)
      arm_retransmit t st ~seq ~bytes ~last
  end

let handle_loss t pkt =
  match pkt.Net.kind with
  | Net.Data { flow; seq; last } -> (
      match Hashtbl.find_opt t.all_states flow with
      | Some st when (not st.failed) && not (flow_complete t flow) ->
          arm_retransmit t st ~seq ~bytes:pkt.Net.bytes ~last
      | _ -> ())
  | Net.Ack _ | Net.Bcast _ -> ()

let detection_delay t =
  match t.cfg.detection_delay_ns with
  | Some d -> d
  | None ->
      let tx = Net.tx_time_ns t.net Wire.broadcast_size in
      2 * Topology.diameter t.topo * (t.cfg.hop_latency_ns + tx)

(* Runs one detection delay after the physical event: flips the
   control-plane overlay, repairs broadcast trees, drops flows whose
   endpoint died, and re-paths + re-announces the survivors (§3.2: every
   node re-broadcasts its ongoing flows after a discovery event). The next
   rate epoch then stamps reconvergence. *)
let detect t fr apply_overlay =
  apply_overlay ();
  fr.repaired <- Broadcast.repair_all t.bcast;
  t.bcast_target <- Topology.alive_vertex_count t.topo - 1;
  (* [t.active] is keyed by flow idx, so this is the old sort-by-idx. *)
  let sts = Array.to_list (Util.Tbl.sorted_values ~cmp:Int.compare t.active) in
  List.iter
    (fun st ->
      if not (Topology.reachable t.topo st.src st.dst) then begin
        abort_flow t st;
        fr.aborted <- fr.aborted + 1
      end
      else begin
        st.wf_links <- Routing.fractions t.rctx st.proto ~src:st.src ~dst:st.dst;
        t.epoch_dirty <- true;
        (match t.galloc with
        | Some inc when Congestion.Waterfill.Inc.mem inc ~id:st.idx ->
            Congestion.Waterfill.Inc.set_links inc ~id:st.idx st.wf_links
        | _ -> ());
        if not st.done_sending then send_flow_broadcast t st Wire.Flow_start
      end)
    sts;
  if Hashtbl.length t.active = 0 then fr.reconverge_ns <- Engine.now t.eng
  else ensure_loop t

let schedule_event t ~ns kind phys overlay =
  Engine.at t.eng ns (fun () ->
      phys ();
      let fr =
        {
          kind;
          fail_ns = ns;
          detect_ns = ns + detection_delay t;
          reconverge_ns = -1;
          aborted = 0;
          repaired = 0;
        }
      in
      t.failures <- fr :: t.failures;
      Engine.after t.eng (detection_delay t) (fun () -> detect t fr overlay))

let fail_link_at t ~ns u v =
  schedule_event t ~ns "link"
    (fun () -> Net.fail_link t.net u v)
    (fun () -> Topology.fail_link t.topo u v)

let fail_node_at t ~ns u =
  schedule_event t ~ns "node"
    (fun () -> Net.fail_node t.net u)
    (fun () -> Topology.fail_node t.topo u)

let restore_link_at t ~ns u v =
  schedule_event t ~ns "restore-link"
    (fun () -> Net.restore_link t.net u v)
    (fun () -> Topology.restore_link t.topo u v)

let restore_node_at t ~ns u =
  schedule_event t ~ns "restore-node"
    (fun () -> Net.restore_node t.net u)
    (fun () -> Topology.restore_node t.topo u)

(* -- construction ---------------------------------------------------------- *)

let create cfg topo =
  if cfg.mtu <= header then invalid_arg "R2c2_sim: mtu must exceed the header size";
  if cfg.control = Per_node && not cfg.real_broadcast then
    invalid_arg "R2c2_sim: Per_node control builds its views from real broadcasts";
  let eng = Engine.create () in
  let net =
    Net.create eng topo ~queue_capacity:cfg.queue_capacity ~link_gbps:cfg.link_gbps
      ~hop_latency_ns:cfg.hop_latency_ns ()
  in
  let bcast = Broadcast.make ~trees_per_source:cfg.trees_per_source topo in
  Net.set_broadcast net bcast;
  let nverts = Topology.vertex_count topo in
  let capacities = Array.make (Topology.link_count topo) (cfg.link_gbps /. 8.0) in
  let t =
    {
      cfg;
      topo;
      eng;
      net;
      bcast;
      rctx = Routing.make topo;
      rng = Util.Rng.create cfg.seed;
      root_rng = Util.Rng.create (cfg.seed + 7);
      mtrcs = Metrics.create ();
      cap_bytes_ns = cfg.link_gbps /. 8.0;
      capacities;
      active = Hashtbl.create 256;
      all_states = Hashtbl.create 256;
      views =
        (if cfg.control = Per_node then Array.init nverts (fun _ -> Hashtbl.create 32)
         else [||]);
      bcast_seen = Hashtbl.create 256;
      on_complete = Hashtbl.create 16;
      next_id = 0;
      recomputes = 0;
      rate_updates = [];
      rate_update_count = 0;
      loop_running = false;
      reselections = 0;
      flows_rerouted = 0;
      reselect_running = false;
      galloc =
        (if cfg.control = Global_epoch then
           Some (Congestion.Waterfill.Inc.create ~headroom:cfg.headroom ~capacities ())
         else None);
      epoch_dirty = false;
      bcast_target = nverts - 1;
      injected_payload = 0;
      delivered_payload = 0;
      dropped_payload = 0;
      blackholed_payload = 0;
      retransmissions = 0;
      aborted = [];
      failures = [];
    }
  in
  (* Broadcast copies arriving anywhere bump the receipt counter; once all
     other vertices have a copy, the flow is globally visible. Per-node
     views learn flow starts/finishes from the same deliveries. *)
  Net.on_bcast_deliver net (fun pkt ~node ->
      match pkt.Net.kind with
      | Net.Bcast { bcast_id; _ } -> (
          (* Negative ids are batched route-change announcements (§3.4);
             only flow start/finish events update the views. *)
          if cfg.control = Per_node && bcast_id >= 0 then begin
            let flow = bcast_id / 2 in
            t.epoch_dirty <- true;
            if bcast_id land 1 = 0 then Hashtbl.replace t.views.(node) flow ()
            else Hashtbl.remove t.views.(node) flow
          end;
          match Hashtbl.find_opt t.bcast_seen bcast_id with
          | None -> ()
          | Some count ->
              incr count;
              (* [>=]: after a node failure the target shrinks to the alive
                 count, and stale pre-failure copies may still arrive. *)
              if !count >= t.bcast_target && bcast_id land 1 = 0 then begin
                match Hashtbl.find_opt t.active (bcast_id / 2) with
                | Some st -> mark_visible t st
                | None -> ()
              end)
      | Net.Data _ | Net.Ack _ -> ());
  (* Lost Data packets — queue tail drops and failure blackholes alike —
     feed the retransmission machinery; payload losses are bucketed for the
     byte-conservation accounting. *)
  Net.on_drop net (fun pkt ->
      (match pkt.Net.kind with
      | Net.Data _ -> t.dropped_payload <- t.dropped_payload + (pkt.Net.bytes - header)
      | Net.Ack _ | Net.Bcast _ -> ());
      handle_loss t pkt);
  Net.on_blackhole net (fun pkt ->
      (match pkt.Net.kind with
      | Net.Data _ -> t.blackholed_payload <- t.blackholed_payload + (pkt.Net.bytes - header)
      | Net.Ack _ | Net.Bcast _ -> ());
      handle_loss t pkt);
  Net.on_deliver net (fun pkt ->
      match pkt.Net.kind with
      | Net.Data { flow; seq; _ } ->
          let payload = pkt.Net.bytes - header in
          t.delivered_payload <- t.delivered_payload + payload;
          let finished =
            Metrics.record_delivery t.mtrcs ~id:flow ~seq ~payload ~now:(Engine.now eng)
          in
          if finished then begin
            (match Hashtbl.find_opt t.active flow with
            | Some st ->
                Hashtbl.remove t.active flow;
                t.epoch_dirty <- true;
                (* With nothing left to allocate, a detected failure is
                   trivially reconverged — the periodic loop is about to
                   stop and would never stamp it. *)
                if Hashtbl.length t.active = 0 then stamp_reconvergence t;
                (* The finish broadcast never reaches its own root, but the
                   sender knows its flow ended. *)
                if cfg.control = Per_node then Hashtbl.remove t.views.(st.src) flow;
                send_flow_broadcast t st Wire.Flow_finish
            | None -> ());
            match Hashtbl.find_opt t.on_complete flow with
            | Some k ->
                Hashtbl.remove t.on_complete flow;
                k flow
            | None -> ()
          end
      | Net.Ack _ | Net.Bcast _ -> ());
  t

let start_flow ?(weight = 1) ?(priority = 0) ?(protocol = Routing.Rps) ?demand_gbps ?on_complete
    t ~src ~dst ~size =
  if src = dst then invalid_arg "R2c2_sim: flow with src = dst";
  if size <= 0 then invalid_arg "R2c2_sim: non-positive flow size";
  let idx = t.next_id in
  t.next_id <- idx + 1;
  Metrics.add_flow t.mtrcs ~id:idx ~src ~dst ~size ~arrival_ns:(Engine.now t.eng);
  let st =
    {
      idx;
      src;
      dst;
      proto = protocol;
      weight = float_of_int (max 1 weight);
      priority;
      wf_links = Routing.fractions t.rctx protocol ~src ~dst;
      (* Gbps from the caller, wire bytes/ns internally. *)
      demand = Option.map (fun gbps -> gbps /. 8.0) demand_gbps;
      started_ns = Engine.now t.eng;
      remaining = size;
      seq = 0;
      (* New flows transmit immediately at line rate (§3.3.2): the headroom
         left by the rate computation absorbs them until the next epoch
         picks them up, and flows shorter than one epoch are never
         rate-limited at all. *)
      rate = t.cap_bytes_ns;
      last_inject = Engine.now t.eng;
      inject_gen = 0;
      visible = false;
      done_sending = false;
      rtx = Hashtbl.create 8;
      failed = false;
    }
  in
  Hashtbl.replace t.active idx st;
  Hashtbl.replace t.all_states idx st;
  t.epoch_dirty <- true;
  (match on_complete with Some k -> Hashtbl.replace t.on_complete idx k | None -> ());
  if t.cfg.control = Per_node then Hashtbl.replace t.views.(src) idx ();
  send_flow_broadcast t st Wire.Flow_start;
  ensure_loop t;
  inject t st;
  idx

let run_engine ?until_ns t = Engine.run ?until:until_ns t.eng

let results t =
  {
    metrics = t.mtrcs;
    max_queue = Net.max_queue_bytes t.net;
    drops = Net.drops t.net;
    data_wire_bytes = Net.data_bytes_on_wire t.net;
    control_wire_bytes = Net.control_bytes_on_wire t.net;
    recomputes = t.recomputes;
    rate_updates = List.rev t.rate_updates;
    reselections = t.reselections;
    flows_rerouted = t.flows_rerouted;
    blackholes = Net.blackholes t.net;
    blackholed_bytes = Net.blackholed_bytes t.net;
    injected_payload = t.injected_payload;
    delivered_payload = t.delivered_payload;
    dropped_payload = t.dropped_payload;
    blackholed_payload = t.blackholed_payload;
    retransmissions = t.retransmissions;
    aborted_flows = List.rev t.aborted;
    failures = List.rev t.failures;
    tree_repairs = Broadcast.repairs t.bcast;
    tree_repair_bytes = Broadcast.repair_bytes t.bcast;
  }

let run ?(protocol_of = fun _ _ -> Routing.Rps) ?(demand_of = fun _ _ -> None) ?until_ns cfg
    topo specs =
  let t = create cfg topo in
  List.iteri
    (fun i spec ->
      let open Workload.Flowgen in
      Engine.at t.eng spec.arrival_ns (fun () ->
          let id =
            start_flow ~weight:spec.weight ~priority:spec.priority
              ~protocol:(protocol_of i spec)
              ?demand_gbps:(demand_of i spec) t ~src:spec.src ~dst:spec.dst ~size:spec.size
          in
          (* Batch flow ids must equal list positions. *)
          assert (id = i)))
    specs;
  run_engine ?until_ns t;
  results t
