(* Event pool + pluggable queue. Events are records in parallel arrays
   addressed by pool id — a tagged event (tag >= 0, two int args, routed
   through the dispatch handler) never touches the OCaml heap; a closure
   event stores its thunk in [fns]. The queue holds bare pool ids: a
   calendar wheel by default (O(1) for the fabric's 100 ns / few-µs event
   horizon), or the original binary heap for differential testing. Both
   queues share the (time, insertion order) pop contract, so the choice
   cannot reorder a simulation. *)

type backend = Binary_heap | Calendar

let nop () = ()

let no_dispatch ~tag:_ ~a:_ ~b:_ =
  invalid_arg "Engine: tagged event fired with no dispatch handler installed"

type t = {
  mutable now : int;
  backend : backend;
  cal : Util.Calqueue.t;
  heap : int Util.Heap.t;
  (* Event pool; the free list is chained through [aa]. *)
  mutable tags : int array;
  mutable aa : int array;
  mutable bb : int array;
  mutable fns : (unit -> unit) array;
  mutable free_head : int;
  mutable next_fresh : int;
  mutable count : int;
  mutable dispatch : tag:int -> a:int -> b:int -> unit;
}

let create ?(backend = Calendar) () =
  {
    now = 0;
    backend;
    cal = Util.Calqueue.create ();
    heap = Util.Heap.create ();
    tags = Array.make 256 (-1);
    aa = Array.make 256 (-1);
    bb = Array.make 256 0;
    fns = Array.make 256 nop;
    free_head = -1;
    next_fresh = 0;
    count = 0;
    dispatch = no_dispatch;
  }

let backend t = t.backend
let now t = t.now
let pending t = t.count
let set_dispatch t f = t.dispatch <- f

let grow t =
  let n = Array.length t.tags in
  let n' = 2 * n in
  let copy a fill =
    let a' = Array.make n' fill in
    Array.blit a 0 a' 0 n;
    a'
  in
  t.tags <- copy t.tags (-1);
  t.aa <- copy t.aa (-1);
  t.bb <- copy t.bb 0;
  t.fns <- copy t.fns nop

let schedule t time ~tag ~a ~b fn =
  let id =
    if t.free_head >= 0 then begin
      let id = t.free_head in
      t.free_head <- t.aa.(id);
      id
    end
    else begin
      if t.next_fresh = Array.length t.tags then grow t;
      let id = t.next_fresh in
      t.next_fresh <- id + 1;
      id
    end
  in
  (* [id < length] holds by construction (grow above); unsafe stores skip
     three bounds checks per event. *)
  Array.unsafe_set t.tags id tag;
  Array.unsafe_set t.aa id a;
  Array.unsafe_set t.bb id b;
  (* Tagged events leave [fns] at the recycled [nop]: skipping the store
     skips a caml_modify write barrier per event. *)
  if tag < 0 then t.fns.(id) <- fn;
  t.count <- t.count + 1;
  match t.backend with
  | Calendar -> Util.Calqueue.add t.cal ~time id
  | Binary_heap -> Util.Heap.push t.heap time id

let at t time thunk =
  if time < t.now then invalid_arg "Engine.at: time in the past";
  schedule t time ~tag:(-1) ~a:0 ~b:0 thunk

let after t delay thunk =
  if delay < 0 then invalid_arg "Engine.after: negative delay";
  schedule t (t.now + delay) ~tag:(-1) ~a:0 ~b:0 thunk

let after_tagged t delay ~tag ~a ~b =
  if delay < 0 then invalid_arg "Engine.after: negative delay";
  if tag < 0 then invalid_arg "Engine.after_tagged: negative tag";
  schedule t (t.now + delay) ~tag ~a ~b nop

let fire t id =
  let tag = Array.unsafe_get t.tags id
  and a = Array.unsafe_get t.aa id
  and b = Array.unsafe_get t.bb id in
  (* Recycle before firing so the handler can reuse the slot. *)
  Array.unsafe_set t.aa id t.free_head;
  t.free_head <- id;
  t.count <- t.count - 1;
  if tag >= 0 then t.dispatch ~tag ~a ~b
  else begin
    let fn = t.fns.(id) in
    t.fns.(id) <- nop;
    fn ()
  end

(* The Calendar loop drains through the queue's int-returning [pop_until]
   so each event costs one bitmap scan and zero allocation; [u] folds the
   no-deadline case into [max_int]. *)
let run_calendar t u =
  let continue = ref true in
  while !continue do
    let id = Util.Calqueue.pop_until t.cal ~until:u in
    if id >= 0 then begin
      t.now <- Util.Calqueue.popped_time t.cal;
      fire t id
    end
    else begin
      (* [-2]: the next event lies past the deadline — clamp the clock to
         it, exactly as the heap path does. [-1]: queue empty, clock stays
         on the last fired event. *)
      if id = -2 then t.now <- u;
      continue := false
    end
  done

let run_heap t u =
  let continue = ref true in
  while !continue do
    match Util.Heap.peek t.heap with
    | None -> continue := false
    | Some (time, _) ->
        if time > u then begin
          t.now <- u;
          continue := false
        end
        else begin
          (match Util.Heap.pop t.heap with
          | Some (time, id) ->
              t.now <- time;
              fire t id
          | None -> assert false)
        end
  done

let run ?until t =
  (* [until = Some max_int] behaves identically to no deadline: no event
     time can exceed it, so [now] is never clamped. *)
  let u = match until with Some u -> u | None -> max_int in
  match t.backend with
  | Calendar -> run_calendar t u
  | Binary_heap -> run_heap t u
