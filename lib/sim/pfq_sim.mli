(** Idealized per-flow-queue baseline (paper §5.2, "PFQ").

    The paper's upper bound: per-flow queues with back-pressure at every
    node, which no real rack node could afford. We realize the bound as a
    fluid simulation with {e path-level} max-min allocation recomputed
    instantaneously on every flow event, zero headroom and zero control
    delay: each flow spreads over up to [paths_per_flow] distinct shortest
    paths whose rates fill independently, i.e. exactly the freedom that
    per-flow queuing buys. Completion times additionally include the
    store-and-forward pipeline latency of the flow's path. *)

type config = {
  link_gbps : Util.Units.gbps;
  hop_latency_ns : int;
  mtu : int;
  paths_per_flow : int;
  seed : int;
}

val default_config : config
(** 10 Gbps, 100 ns hops, 1500-byte MTU, 8 paths per flow. *)

type flow_result = {
  spec : Workload.Flowgen.spec;
  fct_ns : int;
  throughput_gbps : Util.Units.gbps;
}

val run : ?until_ns:int -> config -> Topology.t -> Workload.Flowgen.spec list -> flow_result list
(** Results for flows that complete before [until_ns] (default: all). *)
