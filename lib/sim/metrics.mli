(** Per-flow and per-queue measurement for simulator runs, plus
    per-priority-class tail-latency histograms and SLO attainment. *)

type flow = {
  id : int;
  src : int;
  dst : int;
  size : int;
  priority : int;  (** allocation class; 0 is highest *)
  arrival_ns : int;
  mutable start_tx_ns : int;  (** first packet injection; -1 until then *)
  mutable delivered : int;  (** payload bytes received *)
  mutable finish_ns : int;  (** -1 until complete *)
  mutable next_seq : int;  (** receiver's next in-order sequence *)
  mutable reorder_max : int;  (** peak out-of-order buffer, packets *)
  ooo : (int, int) Hashtbl.t;  (** seq -> payload of out-of-order packets *)
}

type t

val create : unit -> t

val add_flow :
  ?priority:int -> t -> id:int -> src:int -> dst:int -> size:int -> arrival_ns:int -> unit
(** [priority] (default 0) is recorded on the flow and selects the FCT
    histogram / SLO class the flow's completion is accounted to. *)

val note_first_tx : t -> id:int -> now:int -> unit

val record_delivery : t -> id:int -> seq:int -> payload:int -> now:int -> bool
(** Account one received packet; duplicates are ignored. Returns [true]
    when this packet completes the flow ([delivered >= size]); completion
    also records the flow's FCT into its class histogram and SLO counters
    — all allocation-free. *)

val find : t -> int -> flow
val complete : t -> flow -> bool
val completed_count : t -> int
val all : t -> flow list

val fct_ns : flow -> int
(** Completion minus arrival; raises if incomplete. *)

val throughput_gbps : flow -> Util.Units.gbps
(** size / fct; raises if incomplete. *)

val fcts_us : ?min_size:int -> ?max_size:int -> ?priority:int -> t -> float array
(** Completion times (µs) of completed flows within the size band;
    [priority] additionally restricts to one class (exact match on the
    flow's recorded priority). *)

val throughputs_gbps : ?min_size:int -> ?max_size:int -> t -> Util.Units.gbps array

val reorder_depths : t -> float array
(** Peak reorder-buffer depth per completed flow, in packets. *)

(** {2 Per-class tail latency and SLO attainment}

    Completions are bucketed into log-major / linear-sub latency histograms
    (HDR layout, 32 sub-buckets per octave, relative quantization error
    under ~3%), one per priority class — fixed arrays allocated at
    {!create}, so steady-state recording allocates nothing. Priorities are
    clamped into [0, max_class - 1] for accounting. *)

val max_class : int
(** 8: priority classes tracked separately. *)

val set_slo : t -> priority:int -> bound_ns:int -> unit
(** Declare the class's latency bound; completions at or under it count as
    within-SLO. Call before the run. Raises [Invalid_argument] on a class
    outside [0, max_class) or a non-positive bound. *)

val slo_bound : t -> priority:int -> int
(** The declared bound; 0 when the class has no SLO. *)

val class_completed : t -> priority:int -> int
(** Completed flows accounted to the class. *)

val slo_attainment : t -> priority:int -> float
(** Fraction of the class's completed flows with FCT within the bound —
    exact (per-flow comparison, not read off the quantized histogram);
    1 while nothing has completed, and 1 for classes without an SLO. *)

val class_percentile : t -> priority:int -> float -> float
(** [class_percentile t ~priority p] is the class's FCT percentile in ns
    from its histogram ({!Util.Stats.percentile} rank convention, linear
    interpolation between order statistics, bucket-midpoint values);
    0 while the class has no completion. *)

val set_goodput_bucket : t -> bucket_ns:int -> unit
(** Enable the rack-wide goodput time series: every newly accepted payload
    byte (duplicates excluded) is added to the bucket of its delivery time.
    Used to measure the goodput dip around a failure. *)

val goodput_series : t -> (int * int) array
(** [(bucket_start_ns, payload_bytes)] pairs in time order; empty buckets
    are omitted. Empty unless {!set_goodput_bucket} was called. *)

val note_rejoin : t -> node:int -> start:int -> finish:int -> unit
(** Stamp one completed crash-restart rejoin: the node came back at [start]
    and was sequence-caught-up with every reachable origin at [finish].
    Raises [Invalid_argument] if [finish < start]. *)

val rejoin_samples : t -> (int * int * int) list
(** [(node, restart_ns, caught_up_ns)] in stamping order — the p99 rejoin
    time of the graychaos bench comes from here. *)
