(** Per-flow and per-queue measurement for simulator runs. *)

type flow = {
  id : int;
  src : int;
  dst : int;
  size : int;
  arrival_ns : int;
  mutable start_tx_ns : int;  (** first packet injection; -1 until then *)
  mutable delivered : int;  (** payload bytes received *)
  mutable finish_ns : int;  (** -1 until complete *)
  mutable next_seq : int;  (** receiver's next in-order sequence *)
  mutable reorder_max : int;  (** peak out-of-order buffer, packets *)
  ooo : (int, int) Hashtbl.t;  (** seq -> payload of out-of-order packets *)
}

type t

val create : unit -> t

val add_flow : t -> id:int -> src:int -> dst:int -> size:int -> arrival_ns:int -> unit

val note_first_tx : t -> id:int -> now:int -> unit

val record_delivery : t -> id:int -> seq:int -> payload:int -> now:int -> bool
(** Account one received packet; duplicates are ignored. Returns [true]
    when this packet completes the flow ([delivered >= size]). *)

val find : t -> int -> flow
val complete : t -> flow -> bool
val completed_count : t -> int
val all : t -> flow list

val fct_ns : flow -> int
(** Completion minus arrival; raises if incomplete. *)

val throughput_gbps : flow -> Util.Units.gbps
(** size / fct; raises if incomplete. *)

val fcts_us : ?min_size:int -> ?max_size:int -> t -> float array
(** Completion times (µs) of completed flows within the size band. *)

val throughputs_gbps : ?min_size:int -> ?max_size:int -> t -> Util.Units.gbps array

val reorder_depths : t -> float array
(** Peak reorder-buffer depth per completed flow, in packets. *)

val set_goodput_bucket : t -> bucket_ns:int -> unit
(** Enable the rack-wide goodput time series: every newly accepted payload
    byte (duplicates excluded) is added to the bucket of its delivery time.
    Used to measure the goodput dip around a failure. *)

val goodput_series : t -> (int * int) array
(** [(bucket_start_ns, payload_bytes)] pairs in time order; empty buckets
    are omitted. Empty unless {!set_goodput_bucket} was called. *)

val note_rejoin : t -> node:int -> start:int -> finish:int -> unit
(** Stamp one completed crash-restart rejoin: the node came back at [start]
    and was sequence-caught-up with every reachable origin at [finish].
    Raises [Invalid_argument] if [finish < start]. *)

val rejoin_samples : t -> (int * int * int) list
(** [(node, restart_ns, caught_up_ns)] in stamping order — the p99 rejoin
    time of the graychaos bench comes from here. *)
