(** Discrete-event simulation engine.

    Time is integer nanoseconds. Events scheduled for the same instant fire
    in scheduling order, making runs deterministic — the contract holds
    identically under both backends below, which the differential tests in
    [test_sim.ml] assert digest-for-digest.

    Events live in a flat pool recycled through a free list; the default
    {!Calendar} backend stores pending events in a {!Util.Calqueue} (1-ns
    buckets over a 16384-ns window, {!Util.Heap} overflow beyond it), so
    scheduling and firing a near-future {e tagged} event allocates nothing.
    Closure events ([at] / [after]) still cost their closure — the packet
    hot path uses {!after_tagged} instead. *)

type t

(** [Binary_heap] is the original single binary-heap queue, kept as the
    reference for differential tests; [Calendar] is the O(1) wheel. Both
    pop in (time, scheduling order). *)
type backend = Binary_heap | Calendar

val create : ?backend:backend -> unit -> t
(** Default backend is [Calendar]. *)

val backend : t -> backend

val now : t -> int
(** Current simulation time in ns. *)

val at : t -> int -> (unit -> unit) -> unit
(** Schedule a thunk at an absolute time (>= now). *)

val after : t -> int -> (unit -> unit) -> unit
(** Schedule a thunk [delay] ns from now. *)

val set_dispatch : t -> (tag:int -> a:int -> b:int -> unit) -> unit
(** Install the handler for tagged events. One consumer owns the tag
    space — in this simulator, {!Net}. *)

val after_tagged : t -> int -> tag:int -> a:int -> b:int -> unit
(** Schedule a tagged event [delay] ns from now: at fire time the dispatch
    handler receives [(tag, a, b)]. No closure is built — with the
    [Calendar] backend this is the zero-allocation path. [tag] must be
    [>= 0]; firing without a handler installed raises. *)

val run : ?until:int -> t -> unit
(** Process events in time order until the queue empties or the clock
    passes [until]. *)

val pending : t -> int
(** Number of scheduled events; for tests. *)
