type flow = {
  id : int;
  src : int;
  dst : int;
  size : int;
  priority : int;
  arrival_ns : int;
  mutable start_tx_ns : int;
  mutable delivered : int;
  mutable finish_ns : int;
  mutable next_seq : int;
  mutable reorder_max : int;
  ooo : (int, int) Hashtbl.t;
}

(* -- allocation-free log-bucketed latency histogram ----------------------- *)

(* HDR-style layout: values below [sub_count] get one bucket each; above,
   each power-of-two octave is split into [sub_count] linear sub-buckets,
   so the relative quantization error is bounded by 2^-sub_bits (~3%).
   Fixed int arrays sized at creation; recording is a handful of integer
   ops and never allocates — safe on the delivery hot path. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)

(* 62-bit values: msb in 0..62, blocks 1..58 above the direct range. *)
let hist_buckets = (63 - sub_bits + 1) * sub_count

let msb_index v =
  let m = ref 0 in
  let x = ref v in
  while !x > 1 do
    x := !x lsr 1;
    incr m
  done;
  !m

let bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else begin
    let msb = msb_index v in
    let shift = msb - sub_bits in
    let sub = (v lsr shift) land (sub_count - 1) in
    ((msb - sub_bits + 1) * sub_count) + sub
  end

(* Inclusive value range covered by a bucket. *)
let bucket_bounds idx =
  if idx < sub_count then (idx, idx)
  else begin
    let block = idx lsr sub_bits in
    let sub = idx land (sub_count - 1) in
    let msb = block + sub_bits - 1 in
    let width = 1 lsl (msb - sub_bits) in
    let lo = (1 lsl msb) lor (sub * width) in
    (lo, lo + width - 1)
  end

type hist = { counts : int array; mutable total : int }

let hist_create () = { counts = Array.make hist_buckets 0; total = 0 }

let hist_record h v =
  let b = bucket_of v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.total <- h.total + 1

(* Value at 0-based integer rank [k]: the midpoint of the bucket holding
   the k-th order statistic (exact below [sub_count], where buckets are
   single-valued). *)
let hist_value_at_rank h k =
  let cum = ref 0 in
  let idx = ref 0 in
  let found = ref (-1) in
  while !found < 0 && !idx < hist_buckets do
    let c = h.counts.(!idx) in
    if c > 0 && !cum + c > k then found := !idx else cum := !cum + c;
    incr idx
  done;
  if !found < 0 then invalid_arg "Metrics: histogram rank out of range";
  let lo, hi = bucket_bounds !found in
  float_of_int (lo + hi) /. 2.0

(* Same rank convention as {!Util.Stats.percentile}: rank = p/100 * (n-1),
   linear interpolation between the two enclosing order statistics. *)
let hist_percentile h p =
  if h.total = 0 then invalid_arg "Metrics: percentile of an empty histogram";
  if p < 0.0 || p > 100.0 then invalid_arg "Metrics: percentile out of [0, 100]";
  let n = h.total in
  if n = 1 then hist_value_at_rank h 0
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (hist_value_at_rank h lo *. (1.0 -. frac)) +. (hist_value_at_rank h hi *. frac)
  end

(* -- per-priority-class SLO accounting ------------------------------------ *)

(* Classes are clamped into [0, max_class - 1] for accounting; the flow
   record keeps the exact priority. *)
let max_class = 8

type t = {
  flows : (int, flow) Hashtbl.t;
  mutable completed : int;
  mutable bucket_ns : int;  (* goodput histogram bucket width; 0 = disabled *)
  buckets : (int, int) Hashtbl.t;  (* bucket index -> accepted payload bytes *)
  mutable rejoins : (int * int * int) list;  (* (node, restart_ns, caught_up_ns), newest first *)
  fct_hist : hist array;  (* per-class FCT histograms, always recorded *)
  slo_bound_ns : int array;  (* 0 = no SLO declared for the class *)
  slo_completed : int array;  (* completed flows per class *)
  slo_within : int array;  (* of those, FCT <= bound (all, when no SLO) *)
}

let create () =
  {
    flows = Hashtbl.create 256;
    completed = 0;
    bucket_ns = 0;
    buckets = Hashtbl.create 64;
    rejoins = [];
    fct_hist = Array.init max_class (fun _ -> hist_create ());
    slo_bound_ns = Array.make max_class 0;
    slo_completed = Array.make max_class 0;
    slo_within = Array.make max_class 0;
  }

let clamp_class p = if p < 0 then 0 else if p >= max_class then max_class - 1 else p

let set_slo t ~priority ~bound_ns =
  if priority < 0 || priority >= max_class then invalid_arg "Metrics.set_slo: class out of range";
  if bound_ns <= 0 then invalid_arg "Metrics.set_slo: non-positive bound";
  t.slo_bound_ns.(priority) <- bound_ns

let slo_bound t ~priority = t.slo_bound_ns.(clamp_class priority)
let class_completed t ~priority = t.slo_completed.(clamp_class priority)

(* Attainment is exact (per-flow comparison against the bound), not read
   off the quantized histogram; vacuously 1 before any completion. *)
let slo_attainment t ~priority =
  let c = clamp_class priority in
  if t.slo_completed.(c) = 0 then 1.0
  else float_of_int t.slo_within.(c) /. float_of_int t.slo_completed.(c)

let class_percentile t ~priority p =
  let h = t.fct_hist.(clamp_class priority) in
  if h.total = 0 then 0.0 else hist_percentile h p

let note_rejoin t ~node ~start ~finish =
  if finish < start then invalid_arg "Metrics.note_rejoin: finish < start";
  t.rejoins <- (node, start, finish) :: t.rejoins

let rejoin_samples t = List.rev t.rejoins

let set_goodput_bucket t ~bucket_ns =
  if bucket_ns <= 0 then invalid_arg "Metrics.set_goodput_bucket";
  t.bucket_ns <- bucket_ns

let goodput_series t =
  Array.map
    (fun (i, b) -> (i * t.bucket_ns, b))
    (Util.Tbl.sorted_bindings ~cmp:Int.compare t.buckets)

let add_flow ?(priority = 0) t ~id ~src ~dst ~size ~arrival_ns =
  if Hashtbl.mem t.flows id then invalid_arg "Metrics.add_flow: duplicate id";
  Hashtbl.replace t.flows id
    {
      id;
      src;
      dst;
      size;
      priority;
      arrival_ns;
      start_tx_ns = -1;
      delivered = 0;
      finish_ns = -1;
      next_seq = 0;
      reorder_max = 0;
      ooo = Hashtbl.create 8;
    }

let find t id =
  match Hashtbl.find_opt t.flows id with
  | Some f -> f
  | None -> invalid_arg "Metrics: unknown flow"

let note_first_tx t ~id ~now =
  let f = find t id in
  if f.start_tx_ns < 0 then f.start_tx_ns <- now

let record_delivery t ~id ~seq ~payload ~now =
  let f = find t id in
  if f.finish_ns >= 0 then false
  else if seq < f.next_seq || Hashtbl.mem f.ooo seq then false (* duplicate *)
  else begin
    if t.bucket_ns > 0 then begin
      (* Goodput counts every newly accepted payload byte, in-order or not. *)
      let i = now / t.bucket_ns in
      let cur = Option.value ~default:0 (Hashtbl.find_opt t.buckets i) in
      Hashtbl.replace t.buckets i (cur + payload)
    end;
    if seq = f.next_seq then begin
      f.delivered <- f.delivered + payload;
      f.next_seq <- f.next_seq + 1;
      (* Drain any contiguous out-of-order suffix. *)
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt f.ooo f.next_seq with
        | Some p ->
            Hashtbl.remove f.ooo f.next_seq;
            f.delivered <- f.delivered + p;
            f.next_seq <- f.next_seq + 1
        | None -> continue := false
      done
    end
    else begin
      Hashtbl.replace f.ooo seq payload;
      if Hashtbl.length f.ooo > f.reorder_max then f.reorder_max <- Hashtbl.length f.ooo
    end;
    if f.delivered >= f.size && f.finish_ns < 0 then begin
      f.finish_ns <- now;
      t.completed <- t.completed + 1;
      let c = clamp_class f.priority in
      let fct = now - f.arrival_ns in
      hist_record t.fct_hist.(c) fct;
      t.slo_completed.(c) <- t.slo_completed.(c) + 1;
      if t.slo_bound_ns.(c) = 0 || fct <= t.slo_bound_ns.(c) then
        t.slo_within.(c) <- t.slo_within.(c) + 1;
      true
    end
    else false
  end

let complete _t f = f.finish_ns >= 0
let completed_count t = t.completed
(* Sorted by flow id so every derived series (and any JSON report built
   from it) is byte-stable across runs. *)
let all t = Array.to_list (Util.Tbl.sorted_values ~cmp:Int.compare t.flows)

let fct_ns f =
  if f.finish_ns < 0 then invalid_arg "Metrics.fct_ns: incomplete flow";
  f.finish_ns - f.arrival_ns

let throughput_gbps f =
  let fct = fct_ns f in
  if fct <= 0 then invalid_arg "Metrics.throughput_gbps: zero-duration flow";
  Util.Units.gbps (float_of_int (8 * f.size) /. float_of_int fct)

let in_band ?(min_size = 0) ?(max_size = max_int) f = f.size >= min_size && f.size < max_size

let fcts_us ?min_size ?max_size ?priority t =
  let want f = match priority with None -> true | Some p -> f.priority = p in
  let xs =
    List.filter_map
      (fun f ->
        if f.finish_ns >= 0 && in_band ?min_size ?max_size f && want f then
          Some (float_of_int (fct_ns f) /. 1000.0)
        else None)
      (all t)
  in
  Array.of_list xs

let throughputs_gbps ?min_size ?max_size t =
  let xs =
    List.filter_map
      (fun f ->
        if f.finish_ns >= 0 && in_band ?min_size ?max_size f then Some (throughput_gbps f)
        else None)
      (all t)
  in
  Array.of_list xs

let reorder_depths t =
  Array.of_list
    (List.filter_map
       (fun f -> if f.finish_ns >= 0 then Some (float_of_int f.reorder_max) else None)
       (all t))
