type flow = {
  id : int;
  src : int;
  dst : int;
  size : int;
  arrival_ns : int;
  mutable start_tx_ns : int;
  mutable delivered : int;
  mutable finish_ns : int;
  mutable next_seq : int;
  mutable reorder_max : int;
  ooo : (int, int) Hashtbl.t;
}

type t = {
  flows : (int, flow) Hashtbl.t;
  mutable completed : int;
  mutable bucket_ns : int;  (* goodput histogram bucket width; 0 = disabled *)
  buckets : (int, int) Hashtbl.t;  (* bucket index -> accepted payload bytes *)
  mutable rejoins : (int * int * int) list;  (* (node, restart_ns, caught_up_ns), newest first *)
}

let create () =
  {
    flows = Hashtbl.create 256;
    completed = 0;
    bucket_ns = 0;
    buckets = Hashtbl.create 64;
    rejoins = [];
  }

let note_rejoin t ~node ~start ~finish =
  if finish < start then invalid_arg "Metrics.note_rejoin: finish < start";
  t.rejoins <- (node, start, finish) :: t.rejoins

let rejoin_samples t = List.rev t.rejoins

let set_goodput_bucket t ~bucket_ns =
  if bucket_ns <= 0 then invalid_arg "Metrics.set_goodput_bucket";
  t.bucket_ns <- bucket_ns

let goodput_series t =
  Array.map
    (fun (i, b) -> (i * t.bucket_ns, b))
    (Util.Tbl.sorted_bindings ~cmp:Int.compare t.buckets)

let add_flow t ~id ~src ~dst ~size ~arrival_ns =
  if Hashtbl.mem t.flows id then invalid_arg "Metrics.add_flow: duplicate id";
  Hashtbl.replace t.flows id
    {
      id;
      src;
      dst;
      size;
      arrival_ns;
      start_tx_ns = -1;
      delivered = 0;
      finish_ns = -1;
      next_seq = 0;
      reorder_max = 0;
      ooo = Hashtbl.create 8;
    }

let find t id =
  match Hashtbl.find_opt t.flows id with
  | Some f -> f
  | None -> invalid_arg "Metrics: unknown flow"

let note_first_tx t ~id ~now =
  let f = find t id in
  if f.start_tx_ns < 0 then f.start_tx_ns <- now

let record_delivery t ~id ~seq ~payload ~now =
  let f = find t id in
  if f.finish_ns >= 0 then false
  else if seq < f.next_seq || Hashtbl.mem f.ooo seq then false (* duplicate *)
  else begin
    if t.bucket_ns > 0 then begin
      (* Goodput counts every newly accepted payload byte, in-order or not. *)
      let i = now / t.bucket_ns in
      let cur = Option.value ~default:0 (Hashtbl.find_opt t.buckets i) in
      Hashtbl.replace t.buckets i (cur + payload)
    end;
    if seq = f.next_seq then begin
      f.delivered <- f.delivered + payload;
      f.next_seq <- f.next_seq + 1;
      (* Drain any contiguous out-of-order suffix. *)
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt f.ooo f.next_seq with
        | Some p ->
            Hashtbl.remove f.ooo f.next_seq;
            f.delivered <- f.delivered + p;
            f.next_seq <- f.next_seq + 1
        | None -> continue := false
      done
    end
    else begin
      Hashtbl.replace f.ooo seq payload;
      if Hashtbl.length f.ooo > f.reorder_max then f.reorder_max <- Hashtbl.length f.ooo
    end;
    if f.delivered >= f.size && f.finish_ns < 0 then begin
      f.finish_ns <- now;
      t.completed <- t.completed + 1;
      true
    end
    else false
  end

let complete _t f = f.finish_ns >= 0
let completed_count t = t.completed
(* Sorted by flow id so every derived series (and any JSON report built
   from it) is byte-stable across runs. *)
let all t = Array.to_list (Util.Tbl.sorted_values ~cmp:Int.compare t.flows)

let fct_ns f =
  if f.finish_ns < 0 then invalid_arg "Metrics.fct_ns: incomplete flow";
  f.finish_ns - f.arrival_ns

let throughput_gbps f =
  let fct = fct_ns f in
  if fct <= 0 then invalid_arg "Metrics.throughput_gbps: zero-duration flow";
  Util.Units.gbps (float_of_int (8 * f.size) /. float_of_int fct)

let in_band ?(min_size = 0) ?(max_size = max_int) f = f.size >= min_size && f.size < max_size

let fcts_us ?min_size ?max_size t =
  let xs =
    List.filter_map
      (fun f ->
        if f.finish_ns >= 0 && in_band ?min_size ?max_size f then
          Some (float_of_int (fct_ns f) /. 1000.0)
        else None)
      (all t)
  in
  Array.of_list xs

let throughputs_gbps ?min_size ?max_size t =
  let xs =
    List.filter_map
      (fun f ->
        if f.finish_ns >= 0 && in_band ?min_size ?max_size f then Some (throughput_gbps f)
        else None)
      (all t)
  in
  Array.of_list xs

let reorder_depths t =
  Array.of_list
    (List.filter_map
       (fun f -> if f.finish_ns >= 0 then Some (float_of_int f.reorder_max) else None)
       (all t))
