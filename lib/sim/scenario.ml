type event =
  | Crash of int
  | Restart of int
  | Fail_link of int * int
  | Restore_link of int * int
  | Flaky of {
      u : int;
      v : int;
      loss : Util.Units.fraction;
      spike : Util.Units.fraction;
      spike_ns : int option;
    }
  | Unflaky of int * int
  | Partition of int list
  | Heal of int list
  | Surge of Workload.Flowgen.spec list

type step = { at_ns : int; event : event }

let crash ~at u = { at_ns = at; event = Crash u }
let restart ~at u = { at_ns = at; event = Restart u }
let fail_link ~at u v = { at_ns = at; event = Fail_link (u, v) }
let restore_link ~at u v = { at_ns = at; event = Restore_link (u, v) }

let flaky ~at ?spike_ns u v ~loss ~spike =
  { at_ns = at; event = Flaky { u; v; loss; spike; spike_ns } }

let unflaky ~at u v = { at_ns = at; event = Unflaky (u, v) }
let partition ~at group = { at_ns = at; event = Partition group }
let heal ~at group = { at_ns = at; event = Heal group }
let surge ~at specs = { at_ns = at; event = Surge specs }

type invariant =
  | Byte_conservation
  | No_crashed_traversal
  | Reconverge_within of { max_ns : int }
  | View_staleness of { max_ns : int; poll_ns : int }
  | Slo_attainment of { priority : int; min_attainment : float }
  | Tail_latency of { priority : int; percentile : float; max_ns : int }

type report = {
  checks : int;
  violations : string list;
  worst_staleness_ns : int;
  end_ns : int;
}

type state = {
  sim : R2c2_sim.t;
  on_violation : string -> unit;
  mutable checks : int;
  mutable violations : string list;  (* newest first *)
  crashed : (int, unit) Hashtbl.t;  (* scenario's own truth for the tap *)
  mutable diverged_since : int;  (* -1 = views currently consistent *)
  mutable staleness_reported : bool;  (* one violation per stretch *)
  mutable worst_staleness : int;
}

let violate st msg =
  st.violations <- msg :: st.violations;
  st.on_violation msg

(* The cables a partition of [group] cuts: every cable with exactly one
   endpoint inside the set, each once, in deterministic order. *)
let cut_cables topo group =
  let inside = Hashtbl.create 16 in
  List.iter (fun u -> Hashtbl.replace inside u ()) group;
  List.concat_map
    (fun u ->
      Array.to_list
        (Array.map fst (Topology.out_links topo u))
      |> List.filter_map (fun v ->
             if Hashtbl.mem inside v then None else Some (u, v)))
    (List.sort_uniq Int.compare group)

let apply st { at_ns = ns; event } =
  let sim = st.sim in
  let eng = R2c2_sim.engine sim in
  match event with
  | Crash u ->
      (* Physical death first, the monitor mark right after at the same
         instant — an arrival scheduled for this exact ns is not blamed. *)
      R2c2_sim.crash_node_at sim ~ns u;
      Engine.at eng ns (fun () -> Hashtbl.replace st.crashed u ())
  | Restart u ->
      (* Unmark before revival so the node's first legitimate arrivals
         are not blamed either. *)
      Engine.at eng ns (fun () -> Hashtbl.remove st.crashed u);
      R2c2_sim.restart_node_at sim ~ns u
  | Fail_link (u, v) -> R2c2_sim.fail_link_at sim ~ns u v
  | Restore_link (u, v) -> R2c2_sim.restore_link_at sim ~ns u v
  | Flaky { u; v; loss; spike; spike_ns } ->
      R2c2_sim.flaky_link_at sim ~ns ?spike_ns u v ~loss ~spike
  | Unflaky (u, v) -> R2c2_sim.unflaky_link_at sim ~ns u v
  | Partition group ->
      List.iter
        (fun (u, v) -> R2c2_sim.fail_link_at sim ~ns u v)
        (cut_cables (R2c2_sim.topology sim) group)
  | Heal group ->
      List.iter
        (fun (u, v) -> R2c2_sim.restore_link_at sim ~ns u v)
        (cut_cables (R2c2_sim.topology sim) group)
  | Surge specs ->
      (* A flow burst (e.g. one partition/aggregate incast volley); each
         spec's arrival is relative to the step instant. Shed flows are
         silently counted by the simulator's admission control. *)
      List.iter
        (fun (s : Workload.Flowgen.spec) ->
          Engine.at eng (ns + s.arrival_ns) (fun () ->
              ignore
                (R2c2_sim.start_flow ~weight:s.weight ~priority:s.priority sim
                   ~src:s.src ~dst:s.dst ~size:s.size)))
        specs

let install_tap st =
  let net = R2c2_sim.net st.sim in
  let eng = R2c2_sim.engine st.sim in
  Net.set_arrive_tap net (fun ~node _pkt ->
      st.checks <- st.checks + 1;
      if Hashtbl.mem st.crashed node then
        violate st
          (Printf.sprintf "packet traversed crashed node %d at %d ns" node
             (Engine.now eng)))

let rec staleness_poll st ~max_ns ~poll_ns ~stop_ns () =
  let eng = R2c2_sim.engine st.sim in
  let now = Engine.now eng in
  st.checks <- st.checks + 1;
  if R2c2_sim.diverged_nodes st.sim = 0 then begin
    st.diverged_since <- -1;
    st.staleness_reported <- false
  end
  else begin
    if st.diverged_since < 0 then st.diverged_since <- now;
    let dur = now - st.diverged_since in
    if dur > st.worst_staleness then st.worst_staleness <- dur;
    if dur > max_ns && not st.staleness_reported then begin
      st.staleness_reported <- true;
      violate st
        (Printf.sprintf
           "control-plane views diverged for %d ns (bound %d) at %d ns" dur
           max_ns now)
    end
  end;
  if now < stop_ns then
    Engine.after eng poll_ns (staleness_poll st ~max_ns ~poll_ns ~stop_ns)

let end_checks st invariants =
  let res = R2c2_sim.results st.sim in
  let eng = R2c2_sim.engine st.sim in
  List.iter
    (fun inv ->
      match inv with
      | Byte_conservation ->
          st.checks <- st.checks + 1;
          let accounted =
            res.R2c2_sim.delivered_payload + res.R2c2_sim.dropped_payload
            + res.R2c2_sim.blackholed_payload
          in
          if res.R2c2_sim.injected_payload <> accounted then
            violate st
              (Printf.sprintf
                 "byte conservation broken: injected %d <> delivered %d + \
                  dropped %d + blackholed %d"
                 res.R2c2_sim.injected_payload res.R2c2_sim.delivered_payload
                 res.R2c2_sim.dropped_payload res.R2c2_sim.blackholed_payload)
      | Reconverge_within { max_ns } ->
          List.iter
            (fun (f : R2c2_sim.failure) ->
              st.checks <- st.checks + 1;
              if f.reconverge_ns < 0 then
                violate st
                  (Printf.sprintf
                     "%s at %d ns never reconverged before the run ended"
                     f.kind f.fail_ns)
              else if f.reconverge_ns - f.detect_ns > max_ns then
                violate st
                  (Printf.sprintf
                     "%s at %d ns reconverged %d ns after detection (bound \
                      %d)"
                     f.kind f.fail_ns
                     (f.reconverge_ns - f.detect_ns)
                     max_ns))
            res.R2c2_sim.failures
      | View_staleness { max_ns; poll_ns = _ } ->
          st.checks <- st.checks + 1;
          if res.R2c2_sim.terminal_diverged > 0 then
            violate st
              (Printf.sprintf
                 "%d nodes still hold divergent views at the end of the run"
                 res.R2c2_sim.terminal_diverged)
          else if
            st.diverged_since >= 0
            && Engine.now eng - st.diverged_since > max_ns
          then
            violate st
              (Printf.sprintf
                 "views were continuously diverged for the last %d ns of \
                  the run (bound %d)"
                 (Engine.now eng - st.diverged_since)
                 max_ns)
      | Slo_attainment { priority; min_attainment } ->
          st.checks <- st.checks + 1;
          let m = R2c2_sim.metrics st.sim in
          let att = Metrics.slo_attainment m ~priority in
          if att < min_attainment -. 1e-9 then
            violate st
              (Printf.sprintf
                 "class %d SLO attainment %.4f below the %.4f floor (%d \
                  flows completed)"
                 priority att min_attainment
                 (Metrics.class_completed m ~priority))
      | Tail_latency { priority; percentile; max_ns } ->
          st.checks <- st.checks + 1;
          let m = R2c2_sim.metrics st.sim in
          if Metrics.class_completed m ~priority > 0 then begin
            let v = Metrics.class_percentile m ~priority percentile in
            if v > float_of_int max_ns then
              violate st
                (Printf.sprintf
                   "class %d p%g FCT %.0f ns exceeds the %d ns bound" priority
                   percentile v max_ns)
          end
      | No_crashed_traversal -> ())
    invariants

let run ?on_violation ?until_ns ~invariants sim steps =
  let on_violation =
    match on_violation with
    | Some f -> f
    | None -> fun msg -> failwith ("scenario invariant violated: " ^ msg)
  in
  let st =
    {
      sim;
      on_violation;
      checks = 0;
      violations = [];
      crashed = Hashtbl.create 8;
      diverged_since = -1;
      staleness_reported = false;
      worst_staleness = 0;
    }
  in
  List.iter (apply st) steps;
  let last_event_ns = List.fold_left (fun a s -> max a s.at_ns) 0 steps in
  List.iter
    (fun inv ->
      match inv with
      | No_crashed_traversal -> install_tap st
      | View_staleness { max_ns; poll_ns } ->
          if poll_ns <= 0 then invalid_arg "Scenario: poll_ns must be > 0";
          (* Poll through the chaos window plus a reconvergence tail; the
             end check covers divergence persisting past it. *)
          let stop_ns =
            match until_ns with
            | Some u -> u
            | None -> last_event_ns + (2 * max_ns)
          in
          Engine.at (R2c2_sim.engine sim) poll_ns
            (staleness_poll st ~max_ns ~poll_ns ~stop_ns)
      | Byte_conservation | Reconverge_within _ | Slo_attainment _ | Tail_latency _ -> ())
    invariants;
  R2c2_sim.run_engine ?until_ns sim;
  end_checks st invariants;
  {
    checks = st.checks;
    violations = List.rev st.violations;
    worst_staleness_ns = st.worst_staleness;
    end_ns = Engine.now (R2c2_sim.engine sim);
  }
