type config = {
  link_gbps : Util.Units.gbps;
  hop_latency_ns : int;
  mtu : int;
  queue_capacity : int;
  init_cwnd : float;
  rto_min_ns : int;
  seed : int;
}

let default_config =
  {
    link_gbps = Util.Units.gbps 10.0;
    hop_latency_ns = 100;
    mtu = 1500;
    queue_capacity = 64 * 1024;
    init_cwnd = 10.0;
    rto_min_ns = 100_000;
    seed = 1;
  }

type result = {
  metrics : Metrics.t;
  max_queue : int array;
  drops : int;
  retransmits : int;
  data_wire_bytes : Util.Units.bytes;
}

let header = Wire.data_header_size
let ack_bytes = 40

type fstate = {
  idx : int;
  (* Interned once per flow; every packet of the flow (retransmits
     included) shares the slice instead of carrying a fresh array copy. *)
  path : Net.route;
  rpath : Net.route;
  size : int;
  total : int;  (** packet count *)
  full_payload : int;
  mutable next_new : int;
  mutable cum : int;
  mutable dupacks : int;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable srtt : float;  (** ns; 0 until first sample *)
  mutable rttvar : float;
  mutable timed_seq : int;  (** segment being RTT-timed; -1 = none *)
  mutable timed_at : int;
  mutable rto : int;
  mutable rto_gen : int;
  mutable rto_armed : bool;
  sent_ns : int array;
  retx : bool array;
  mutable finished : bool;
}

let run ?until_ns cfg topo specs =
  if cfg.mtu <= header then invalid_arg "Tcp_sim: mtu must exceed the header size";
  let eng = Engine.create () in
  let net =
    Net.create eng topo ~queue_capacity:cfg.queue_capacity ~link_gbps:cfg.link_gbps
      ~hop_latency_ns:cfg.hop_latency_ns ()
  in
  let rctx = Routing.make topo in
  let metrics = Metrics.create () in
  (* Pre-sized past the largest experiment (60-240 flows measured) so the
     packet path never pays a rehash. *)
  let flows : (int, fstate) Hashtbl.t = Hashtbl.create 256 in
  let retransmits = ref 0 in
  let full_payload = cfg.mtu - header in

  let payload_of st seq =
    if seq = st.total - 1 then st.size - ((st.total - 1) * st.full_payload)
    else st.full_payload
  in

  let send_packet st seq ~is_retx =
    if is_retx then begin
      incr retransmits;
      st.retx.(seq) <- true
    end
    else begin
      st.sent_ns.(seq) <- Engine.now eng;
      (* Single-timer RTT measurement: time one untimed segment at a time
         so cumulative-ACK jumps over long-buffered segments never yield
         bogus samples. *)
      if st.timed_seq < 0 then begin
        st.timed_seq <- seq;
        st.timed_at <- Engine.now eng
      end
    end;
    Metrics.note_first_tx metrics ~id:st.idx ~now:(Engine.now eng);
    let payload = payload_of st seq in
    Net.send_data net ~flow:st.idx ~seq ~last:(seq = st.total - 1)
      ~bytes:(payload + header) ~route:st.path
  in

  let flight st = st.next_new - st.cum in

  let rec arm_rto st =
    st.rto_gen <- st.rto_gen + 1;
    st.rto_armed <- true;
    let gen = st.rto_gen in
    if st.rto < 0 then Printf.eprintf "NEG RTO %d srtt=%f rttvar=%f\n" st.rto st.srtt st.rttvar;
    Engine.after eng st.rto (fun () ->
        if gen = st.rto_gen && st.rto_armed && not st.finished then on_rto st)

  and on_rto st =
    if st.cum < st.total then begin
      st.ssthresh <- Float.max (float_of_int (flight st) /. 2.0) 2.0;
      st.cwnd <- 1.0;
      st.dupacks <- 0;
      (* Everything outstanding is presumed lost: recover the holes one per
         partial ACK, exactly as in fast-retransmit recovery. *)
      st.in_recovery <- st.cum < st.next_new - 1;
      st.recover <- st.next_new;
      st.timed_seq <- -1 (* Karn: retransmission ambiguity *);
      st.rto <- min (2 * st.rto) 16_000_000;
      send_packet st st.cum ~is_retx:true;
      arm_rto st
    end
  in

  let update_rtt st sample =
    let s = float_of_int sample in
    if st.srtt = 0.0 then begin
      st.srtt <- s;
      st.rttvar <- s /. 2.0
    end
    else begin
      st.rttvar <- (0.75 *. st.rttvar) +. (0.25 *. abs_float (st.srtt -. s));
      st.srtt <- (0.875 *. st.srtt) +. (0.125 *. s)
    end;
    st.rto <- max cfg.rto_min_ns (int_of_float (st.srtt +. (4.0 *. st.rttvar)))
  in

  let try_send st =
    while st.next_new < st.total && flight st < int_of_float st.cwnd do
      send_packet st st.next_new ~is_retx:false;
      st.next_new <- st.next_new + 1
    done;
    if st.cum < st.total && not st.rto_armed then arm_rto st
  in

  let on_ack st ackno =
    if st.finished then ()
    else if ackno > st.cum then begin
      let newly = ackno - st.cum in
      (* RTT from the timed segment only (Karn's rule: skip if it was ever
         retransmitted). *)
      if st.timed_seq >= 0 && ackno > st.timed_seq then begin
        if not st.retx.(st.timed_seq) then
          update_rtt st (Engine.now eng - st.timed_at);
        st.timed_seq <- -1
      end;
      st.cum <- ackno;
      st.dupacks <- 0;
      if st.in_recovery then begin
        if ackno >= st.recover then begin
          st.in_recovery <- false;
          st.cwnd <- st.ssthresh
        end
        else
          (* NewReno partial ACK: the next hole was also lost. *)
          send_packet st st.cum ~is_retx:true
      end
      else if st.cwnd < st.ssthresh then st.cwnd <- st.cwnd +. float_of_int newly
      else st.cwnd <- st.cwnd +. (float_of_int newly /. st.cwnd);
      if st.cum >= st.total then begin
        st.finished <- true;
        st.rto_armed <- false
      end
      else arm_rto st;
      try_send st
    end
    else begin
      st.dupacks <- st.dupacks + 1;
      if (not st.in_recovery) && st.dupacks = 3 then begin
        st.ssthresh <- Float.max (float_of_int (flight st) /. 2.0) 2.0;
        st.in_recovery <- true;
        st.recover <- st.next_new;
        st.cwnd <- st.ssthresh +. 3.0;
        send_packet st st.cum ~is_retx:true
      end
      else if st.in_recovery then begin
        st.cwnd <- st.cwnd +. 1.0;
        try_send st
      end
    end
  in

  Net.on_deliver net (fun pkt ->
      let k = Net.kind net pkt in
      if k = Net.code_data then begin
        let flow = Net.data_flow net pkt in
        let seq = Net.data_seq net pkt in
        let st = Hashtbl.find flows flow in
        let payload = Net.bytes net pkt - header in
        ignore (Metrics.record_delivery metrics ~id:flow ~seq ~payload ~now:(Engine.now eng));
        let rcv_next = (Metrics.find metrics flow).Metrics.next_seq in
        Net.send_ack net ~flow ~ackno:rcv_next ~bytes:ack_bytes ~route:st.rpath
      end
      else if k = Net.code_ack then
        on_ack (Hashtbl.find flows (Net.ack_flow net pkt)) (Net.ack_ackno net pkt));

  List.iteri
    (fun idx spec ->
      let open Workload.Flowgen in
      if spec.src = spec.dst then invalid_arg "Tcp_sim: flow with src = dst";
      Metrics.add_flow metrics ~id:idx ~src:spec.src ~dst:spec.dst ~size:spec.size
        ~arrival_ns:spec.arrival_ns;
      Engine.at eng spec.arrival_ns (fun () ->
          let path = Routing.ecmp_path rctx ~flow_id:idx ~src:spec.src ~dst:spec.dst in
          let rpath = Array.of_list (List.rev (Array.to_list path)) in
          let total = (spec.size + full_payload - 1) / full_payload in
          let st =
            {
              idx;
              path = Net.intern_route net path;
              rpath = Net.intern_route net rpath;
              size = spec.size;
              total;
              full_payload;
              next_new = 0;
              cum = 0;
              dupacks = 0;
              cwnd = cfg.init_cwnd;
              ssthresh = 1e9;
              in_recovery = false;
              recover = 0;
              srtt = 0.0;
              rttvar = 0.0;
              timed_seq = -1;
              timed_at = 0;
              rto = 2 * cfg.rto_min_ns;
              rto_gen = 0;
              rto_armed = false;
              sent_ns = Array.make total (-1);
              retx = Array.make total false;
              finished = false;
            }
          in
          Hashtbl.replace flows idx st;
          try_send st))
    specs;

  Engine.run ?until:until_ns eng;
  {
    metrics;
    max_queue = Net.max_queue_bytes net;
    drops = Net.drops net;
    retransmits = !retransmits;
    data_wire_bytes = Net.data_bytes_on_wire net;
  }
