(** On-the-wire packet formats (paper Fig. 6).

    Data packets are variable sized with a 35-byte header:
    type(1) rlen(1) ridx(1) flow(4) src(2) dst(2) seq(4) checksum(2) plen(2)
    route(16). The route field holds up to 42 hops of 3 bits each, every hop
    selecting one of at most eight outgoing links; [ridx] is the index of
    the next hop and is incremented by every forwarder.

    Broadcast packets are fixed 16 bytes:
    type(1) src(2) dst(2) weight(1) priority(1) demand(4, Kbps) tree(1)
    rp(1) pad(1) checksum(2). *)

val data_header_size : int
(** 35 bytes. *)

val broadcast_size : int
(** 16 bytes. *)

val seq_broadcast_size : int
(** 24 bytes: the 16-byte broadcast layout extended with a 32-bit flow id, a
    32-bit per-(source, tree) sequence number and one pad byte. The overhead
    model ({!Broadcast.bytes_per_broadcast}) keeps the paper's 16-byte
    constant; the loss-tolerant control plane charges this size. *)

val digest_size : int
(** 22 bytes: the periodic anti-entropy digest. *)

val nack_size : int
(** 16 bytes: a missing-range retransmission request. *)

val join_size : int
(** 10 bytes: a restarted node's rejoin announcement. *)

val snapshot_req_size : int
(** 12 bytes: a full-state catch-up request. *)

val pause_size : int
(** 11 bytes: a backpressure PAUSE from a congested receiver. *)

val max_route_hops : int
(** 42: the 128-bit route field at 3 bits per hop. *)

val max_links_per_node : int
(** 8: the widest link selector a 3-bit hop can express. *)

type event = Flow_start | Flow_finish | Demand_update | Route_change

type data_header = {
  flow : int;  (** 32-bit flow identifier *)
  src : int;  (** 16-bit source node *)
  dst : int;  (** 16-bit destination node *)
  seq : int;  (** 32-bit sequence number *)
  plen : int;  (** 16-bit payload length *)
  route : int array;  (** per-hop outgoing-link selectors, 0..7 each *)
  ridx : int;  (** index of the next hop in [route] *)
}

type broadcast = {
  event : event;
  bsrc : int;  (** flow source *)
  bdst : int;  (** flow destination *)
  weight : int;  (** allocation weight, 1..255 *)
  priority : int;  (** 0 is highest *)
  demand_kbps : int;  (** current demand, up to ~4 Tbps *)
  tree : int;  (** broadcast-tree identifier *)
  rp : Routing.protocol;
}

val encode_data : data_header -> bytes
(** Header bytes with a valid checksum. Raises [Invalid_argument] when a
    field exceeds its width. *)

val decode_data : bytes -> (data_header, string) result
(** Fails on short input, bad type, or checksum mismatch. *)

val encode_broadcast : broadcast -> bytes
val decode_broadcast : bytes -> (broadcast, string) result

(** {2 Loss-tolerant control plane (reliable broadcast)}

    Three formats let the control plane survive packet loss: the sequenced
    broadcast carries a per-(source, tree) monotonic sequence number (plus
    the 32-bit flow id that the 16-byte format omits, so finish / demand /
    route events can be correlated with their start); the digest is a
    periodic anti-entropy beacon [(source, tree, epoch, last sequence,
    state hash)] that exposes a loss even when the {e last} packet of a
    burst was dropped; the NACK requests retransmission of an inclusive
    missing range from the origin. *)

type digest = {
  dsrc : int;  (** origin node *)
  dtree : int;  (** broadcast tree the digest covers *)
  epoch : int;  (** anti-entropy round counter *)
  last_seq : int;  (** highest sequence number sent on this tree *)
  state_hash : int64;  (** hash of the origin's live-flow set *)
}

type nack = {
  nsrc : int;  (** origin whose packets are missing *)
  nrequester : int;  (** node asking for retransmission *)
  ntree : int;
  nfrom : int;  (** first missing sequence number *)
  nto : int;  (** last missing sequence number, inclusive *)
}

val encode_seq_broadcast : broadcast -> flow:int -> seq:int -> bytes
(** 24-byte sequenced event. Raises [Invalid_argument] when a field exceeds
    its width (flow and seq are 32-bit). *)

val decode_seq_broadcast : bytes -> (broadcast * int * int, string) result
(** Returns [(packet, flow, seq)]. *)

val encode_digest : digest -> bytes
val decode_digest : bytes -> (digest, string) result

val encode_nack : nack -> bytes
(** Raises [Invalid_argument] on an empty range ([nto < nfrom]). *)

val decode_nack : bytes -> (nack, string) result

(** {2 Crash-restart rejoin}

    A node that crashes loses its soft state (receive windows, view, flow
    bookkeeping) and comes back cold under a fresh incarnation number. The
    JOIN announces the restart rack-wide so peers drop windows keyed to the
    old incarnation; the SNAPSHOT-REQ asks one origin for a full-state sync
    over the anti-entropy catch-up path. *)

type join = {
  jnode : int;  (** the restarted node *)
  jinc : int;  (** its fresh 32-bit incarnation number *)
}

type snapshot_req = {
  sroot : int;  (** origin whose state is requested *)
  srequester : int;  (** node asking for the snapshot *)
  sinc : int;  (** requester's incarnation of record for [sroot] *)
}

val encode_join : join -> bytes
(** 10-byte rejoin announcement. Raises [Invalid_argument] when a field
    exceeds its width. *)

val decode_join : bytes -> (join, string) result

val encode_snapshot_req : snapshot_req -> bytes
(** 12-byte full-state catch-up request. *)

val decode_snapshot_req : bytes -> (snapshot_req, string) result

(** {2 Overload backpressure}

    A receiver whose output queue crosses its high watermark PAUSEs the
    senders feeding it: the packet names the congested node, the lowest
    priority class it still admits, and the multiplicative back-off level
    senders must apply (each level halves the pacing rate; level 0 is the
    all-clear that begins additive recovery). The window field is an
    advisory per-class rate ceiling in Kbps, 0 when the receiver offers no
    estimate. *)

type pause = {
  pnode : int;  (** the congested node *)
  pclass : int;  (** lowest priority class still admitted (0 is highest) *)
  plevel : int;  (** multiplicative back-off level; 0 = recovered *)
  pwindow_kbps : int;  (** advisory rate window, 0 = none *)
}

val encode_pause : pause -> bytes
(** 11-byte backpressure notification. Raises [Invalid_argument] when a
    field exceeds its width. *)

val decode_pause : bytes -> (pause, string) result

(** {2 Batched control-plane codec}

    Control traffic travels in bursts — an epoch's digests, a NACK repair's
    replayed events — so the codec can pack a heterogeneous run of items
    into one contiguous buffer: each item is a 1-byte format code followed
    by its standard encoding, checksum included. Per-item checksums mean a
    corrupted item is reported with its offset instead of poisoning the
    whole batch. Data packets are not batchable (their route field is
    bit-packed at dynamic offsets). *)

type batch_item =
  | Item_broadcast of broadcast
  | Item_seq_broadcast of broadcast * int * int
      (** [(packet, flow, seq)] — a sequenced control event *)
  | Item_digest of digest
  | Item_nack of nack

val batch_size : batch_item list -> int
(** Encoded size in bytes: each item costs its format size plus one. *)

val encode_batch : batch_item list -> bytes
(** One contiguous buffer; the empty list encodes to zero bytes. Raises
    [Invalid_argument] when any item's field exceeds its width. *)

val decode_batch : bytes -> (batch_item list, string) result
(** Walks the buffer with a running offset; fails (with the offending
    offset) on an unknown format code, a truncated final item, or a
    per-item decode error. [decode_batch (encode_batch items) = Ok items]. *)

val route_selectors : Routing.ctx -> int array -> int array
(** [route_selectors ctx path] converts a vertex path to per-hop 3-bit link
    selectors: at hop [i], the index of the link towards [path.(i+1)] within
    [Topology.out_links] of [path.(i)]. Raises when a node has more than
    {!max_links_per_node} links or the path is longer than
    {!max_route_hops}. *)

val apply_selector : Topology.t -> int -> int -> int
(** [apply_selector topo node sel] is the neighbor reached from [node] via
    outgoing-link index [sel]. *)

val checksum : bytes -> int
(** 16-bit ones'-complement checksum over a buffer. *)

val corrupt : Util.Rng.t -> bytes -> bytes
(** Flip one random bit; for loss/corruption tests. *)
