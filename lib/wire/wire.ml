let data_header_size = 35
let broadcast_size = 16
let seq_broadcast_size = 24
let digest_size = 22
let nack_size = 16
let join_size = 10
let snapshot_req_size = 12
let pause_size = 11
let max_route_hops = 42
let max_links_per_node = 8

type event = Flow_start | Flow_finish | Demand_update | Route_change

type data_header = {
  flow : int;
  src : int;
  dst : int;
  seq : int;
  plen : int;
  route : int array;
  ridx : int;
}

type broadcast = {
  event : event;
  bsrc : int;
  bdst : int;
  weight : int;
  priority : int;
  demand_kbps : int;
  tree : int;
  rp : Routing.protocol;
}

type digest = {
  dsrc : int;
  dtree : int;
  epoch : int;
  last_seq : int;
  state_hash : int64;
}

type nack = {
  nsrc : int;
  nrequester : int;
  ntree : int;
  nfrom : int;
  nto : int;
}

type join = { jnode : int; jinc : int }
type snapshot_req = { sroot : int; srequester : int; sinc : int }
type pause = { pnode : int; pclass : int; plevel : int; pwindow_kbps : int }

(* Packet type codes. 0 is a data packet; broadcast packets carry the event
   kind directly in the type byte; digests and NACKs get their own codes,
   as do the crash-restart rejoin formats. *)
let type_data = 0
let type_digest = 5
let type_nack = 6
let type_join = 7
let type_snapshot_req = 8
let type_pause = 9

let type_of_event = function
  | Flow_start -> 1
  | Flow_finish -> 2
  | Demand_update -> 3
  | Route_change -> 4

let event_of_type = function
  | 1 -> Some Flow_start
  | 2 -> Some Flow_finish
  | 3 -> Some Demand_update
  | 4 -> Some Route_change
  | _ -> None

(* -- field access ------------------------------------------------------- *)

let check_width name v bits =
  if v < 0 || v lsr bits <> 0 then
    invalid_arg (Printf.sprintf "Wire: field %s = %d exceeds %d bits" name v bits)

let put8 b off v = Bytes.set_uint8 b off v
let put16 b off v = Bytes.set_uint16_be b off v

let put32 b off v =
  Bytes.set_uint16_be b off (v lsr 16);
  Bytes.set_uint16_be b (off + 2) (v land 0xFFFF)

let get8 = Bytes.get_uint8
let get16 = Bytes.get_uint16_be
let get32 b off = (get16 b off lsl 16) lor get16 b (off + 2)
let put64 b off v = Bytes.set_int64_be b off v
let get64 b off = Bytes.get_int64_be b off

(* -- checksum ----------------------------------------------------------- *)

(* Ones'-complement sum over [off, off + len): word boundaries are relative
   to [off], so an item checksums identically wherever it sits in a batch
   buffer. *)
let checksum_sub b off len =
  let fin = off + len in
  let sum = ref 0 in
  let i = ref off in
  while !i + 1 < fin do
    sum := !sum + get16 b !i;
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (get8 b (fin - 1) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let checksum b = checksum_sub b 0 (Bytes.length b)

(* Verify an item's checksum in place: zero the stored field, sum the
   range, restore. The buffer is briefly mutated but always restored
   before returning. [stored] is read by the caller so the U3 symmetry
   walk sees the checksum field read back at its written offset. *)
let verify_sub b ~off ~len ~cksum_off ~stored =
  put16 b cksum_off 0;
  let computed = checksum_sub b off len in
  put16 b cksum_off stored;
  stored = computed

(* -- data packets ------------------------------------------------------- *)

(* Offsets in the data header. *)
let off_type = 0
let off_rlen = 1
let off_ridx = 2
let off_flow = 3
let off_src = 7
let off_dst = 9
let off_seq = 11
let off_cksum = 15
let off_plen = 17
let off_route = 19

let encode_data h =
  check_width "flow" h.flow 32;
  check_width "src" h.src 16;
  check_width "dst" h.dst 16;
  check_width "seq" h.seq 32;
  check_width "plen" h.plen 16;
  let rlen = Array.length h.route in
  if rlen > max_route_hops then invalid_arg "Wire.encode_data: route too long";
  if h.ridx < 0 || h.ridx > rlen then invalid_arg "Wire.encode_data: bad ridx";
  Array.iter (fun s -> check_width "route hop" s 3) h.route;
  let b = Bytes.make data_header_size '\000' in
  put8 b off_type type_data;
  put8 b off_rlen rlen;
  put8 b off_ridx h.ridx;
  put32 b off_flow h.flow;
  put16 b off_src h.src;
  put16 b off_dst h.dst;
  put32 b off_seq h.seq;
  put16 b off_plen h.plen;
  (* 3-bit hop selectors packed little-end first into the 128-bit field. *)
  Array.iteri
    (fun i s ->
      let bit = 3 * i in
      let byte = off_route + (bit / 8) and shift = bit mod 8 in
      let cur = get8 b byte in
      put8 b byte (cur lor ((s lsl shift) land 0xFF));
      if shift > 5 then begin
        let cur = get8 b (byte + 1) in
        put8 b (byte + 1) (cur lor (s lsr (8 - shift)))
      end)
    h.route;
  put16 b off_cksum (checksum b);
  b

let decode_data b =
  if Bytes.length b < data_header_size then Error "short data header"
  else if get8 b off_type <> type_data then Error "not a data packet"
  else begin
    let stored = get16 b off_cksum in
    let zeroed = Bytes.copy b in
    put16 zeroed off_cksum 0;
    let computed = checksum (Bytes.sub zeroed 0 data_header_size) in
    if stored <> computed then Error "data checksum mismatch"
    else begin
      let rlen = get8 b off_rlen in
      if rlen > max_route_hops then Error "route length out of range"
      else begin
        let route =
          Array.init rlen (fun i ->
              let bit = 3 * i in
              let byte = off_route + (bit / 8) and shift = bit mod 8 in
              let lo = get8 b byte lsr shift in
              let v =
                if shift > 5 then lo lor (get8 b (byte + 1) lsl (8 - shift)) else lo
              in
              v land 0x7)
        in
        Ok
          {
            flow = get32 b off_flow;
            src = get16 b off_src;
            dst = get16 b off_dst;
            seq = get32 b off_seq;
            plen = get16 b off_plen;
            route;
            ridx = get8 b off_ridx;
          }
      end
    end
  end

(* -- broadcast packets --------------------------------------------------- *)

let boff_type = 0
let boff_src = 1
let boff_dst = 3
let boff_weight = 5
let boff_priority = 6
let boff_demand = 7
let boff_tree = 11
let boff_rp = 12
let boff_cksum = 14

(* Writer into a caller-provided buffer at a symbolic base [off] (the item's
   origin in a batch; the slice must be zero-filled). The U3 checker
   resolves [off] to 0, so these stay statically proven against the same
   budgets as the whole-buffer forms below. *)
let encode_broadcast_at b ~off p =
  check_width "src" p.bsrc 16;
  check_width "dst" p.bdst 16;
  check_width "weight" p.weight 8;
  check_width "priority" p.priority 8;
  check_width "demand" p.demand_kbps 32;
  check_width "tree" p.tree 8;
  put8 b (off + boff_type) (type_of_event p.event);
  put16 b (off + boff_src) p.bsrc;
  put16 b (off + boff_dst) p.bdst;
  put8 b (off + boff_weight) p.weight;
  put8 b (off + boff_priority) p.priority;
  put32 b (off + boff_demand) p.demand_kbps;
  put8 b (off + boff_tree) p.tree;
  put8 b (off + boff_rp) (Routing.protocol_to_int p.rp);
  put16 b (off + boff_cksum) (checksum_sub b off broadcast_size)

let decode_broadcast_at b ~off =
  if off < 0 || off + broadcast_size > Bytes.length b then
    Error "short broadcast packet"
  else if
    not
      (verify_sub b ~off ~len:broadcast_size ~cksum_off:(off + boff_cksum)
         ~stored:(get16 b (off + boff_cksum)))
  then Error "broadcast checksum mismatch"
  else begin
    match event_of_type (get8 b (off + boff_type)) with
    | None -> Error "unknown broadcast type"
    | Some event -> (
        match Routing.protocol_of_int (get8 b (off + boff_rp)) with
        | None -> Error "unknown routing protocol"
        | Some rp ->
            Ok
              {
                event;
                bsrc = get16 b (off + boff_src);
                bdst = get16 b (off + boff_dst);
                weight = get8 b (off + boff_weight);
                priority = get8 b (off + boff_priority);
                demand_kbps = get32 b (off + boff_demand);
                tree = get8 b (off + boff_tree);
                rp;
              })
  end

let encode_broadcast p =
  let b = Bytes.make broadcast_size '\000' in
  encode_broadcast_at b ~off:0 p;
  b

let decode_broadcast b =
  if Bytes.length b <> broadcast_size then Error "broadcast packet must be 16 bytes"
  else decode_broadcast_at b ~off:0

(* -- sequenced broadcast (loss-tolerant control plane) -------------------- *)

(* The 16-byte event format above has no room for ordering metadata, so the
   reliable control plane extends it: the same layout through [rp], then a
   32-bit flow id (correlating finish/demand/route events with the start),
   a 32-bit per-(source, tree) sequence number, one pad byte and the
   checksum — 24 bytes on the wire. The overhead model keeps quoting the
   paper's 16-byte constant; simulations of the reliable plane charge
   [seq_broadcast_size]. *)

let sboff_flow = 13
let sboff_seq = 17
let sboff_cksum = 22

let encode_seq_broadcast_at b ~off p ~flow ~seq =
  check_width "src" p.bsrc 16;
  check_width "dst" p.bdst 16;
  check_width "weight" p.weight 8;
  check_width "priority" p.priority 8;
  check_width "demand" p.demand_kbps 32;
  check_width "tree" p.tree 8;
  check_width "flow" flow 32;
  check_width "seq" seq 32;
  put8 b (off + boff_type) (type_of_event p.event);
  put16 b (off + boff_src) p.bsrc;
  put16 b (off + boff_dst) p.bdst;
  put8 b (off + boff_weight) p.weight;
  put8 b (off + boff_priority) p.priority;
  put32 b (off + boff_demand) p.demand_kbps;
  put8 b (off + boff_tree) p.tree;
  put8 b (off + boff_rp) (Routing.protocol_to_int p.rp);
  put32 b (off + sboff_flow) flow;
  put32 b (off + sboff_seq) seq;
  put16 b (off + sboff_cksum) (checksum_sub b off seq_broadcast_size)

let decode_seq_broadcast_at b ~off =
  if off < 0 || off + seq_broadcast_size > Bytes.length b then
    Error "short sequenced broadcast"
  else if
    not
      (verify_sub b ~off ~len:seq_broadcast_size ~cksum_off:(off + sboff_cksum)
         ~stored:(get16 b (off + sboff_cksum)))
  then Error "sequenced broadcast checksum mismatch"
  else begin
    match event_of_type (get8 b (off + boff_type)) with
    | None -> Error "unknown broadcast type"
    | Some event -> (
        match Routing.protocol_of_int (get8 b (off + boff_rp)) with
        | None -> Error "unknown routing protocol"
        | Some rp ->
            Ok
              ( {
                  event;
                  bsrc = get16 b (off + boff_src);
                  bdst = get16 b (off + boff_dst);
                  weight = get8 b (off + boff_weight);
                  priority = get8 b (off + boff_priority);
                  demand_kbps = get32 b (off + boff_demand);
                  tree = get8 b (off + boff_tree);
                  rp;
                },
                get32 b (off + sboff_flow),
                get32 b (off + sboff_seq) ))
  end

let encode_seq_broadcast p ~flow ~seq =
  let b = Bytes.make seq_broadcast_size '\000' in
  encode_seq_broadcast_at b ~off:0 p ~flow ~seq;
  b

let decode_seq_broadcast b =
  if Bytes.length b <> seq_broadcast_size then
    Error "sequenced broadcast must be 24 bytes"
  else decode_seq_broadcast_at b ~off:0

(* -- anti-entropy digest --------------------------------------------------- *)

let goff_src = 1
let goff_tree = 3
let goff_epoch = 4
let goff_last = 8
let goff_hash = 12
let goff_cksum = 20

let encode_digest_at b ~off d =
  check_width "src" d.dsrc 16;
  check_width "tree" d.dtree 8;
  check_width "epoch" d.epoch 32;
  check_width "last_seq" d.last_seq 32;
  put8 b (off + boff_type) type_digest;
  put16 b (off + goff_src) d.dsrc;
  put8 b (off + goff_tree) d.dtree;
  put32 b (off + goff_epoch) d.epoch;
  put32 b (off + goff_last) d.last_seq;
  put64 b (off + goff_hash) d.state_hash;
  put16 b (off + goff_cksum) (checksum_sub b off digest_size)

let decode_digest_at b ~off =
  if off < 0 || off + digest_size > Bytes.length b then Error "short digest"
  else if get8 b (off + boff_type) <> type_digest then Error "not a digest packet"
  else if
    not
      (verify_sub b ~off ~len:digest_size ~cksum_off:(off + goff_cksum)
         ~stored:(get16 b (off + goff_cksum)))
  then Error "digest checksum mismatch"
  else
    Ok
      {
        dsrc = get16 b (off + goff_src);
        dtree = get8 b (off + goff_tree);
        epoch = get32 b (off + goff_epoch);
        last_seq = get32 b (off + goff_last);
        state_hash = get64 b (off + goff_hash);
      }

let encode_digest d =
  let b = Bytes.make digest_size '\000' in
  encode_digest_at b ~off:0 d;
  b

let decode_digest b =
  if Bytes.length b <> digest_size then Error "digest must be 22 bytes"
  else decode_digest_at b ~off:0

(* -- NACK ------------------------------------------------------------------ *)

let noff_src = 1
let noff_req = 3
let noff_tree = 5
let noff_from = 6
let noff_to = 10
let noff_cksum = 14

let encode_nack_at b ~off n =
  check_width "src" n.nsrc 16;
  check_width "requester" n.nrequester 16;
  check_width "tree" n.ntree 8;
  check_width "from" n.nfrom 32;
  check_width "to" n.nto 32;
  if n.nto < n.nfrom then invalid_arg "Wire.encode_nack: empty range";
  put8 b (off + boff_type) type_nack;
  put16 b (off + noff_src) n.nsrc;
  put16 b (off + noff_req) n.nrequester;
  put8 b (off + noff_tree) n.ntree;
  put32 b (off + noff_from) n.nfrom;
  put32 b (off + noff_to) n.nto;
  put16 b (off + noff_cksum) (checksum_sub b off nack_size)

let decode_nack_at b ~off =
  if off < 0 || off + nack_size > Bytes.length b then Error "short NACK"
  else if get8 b (off + boff_type) <> type_nack then Error "not a NACK packet"
  else if
    not
      (verify_sub b ~off ~len:nack_size ~cksum_off:(off + noff_cksum)
         ~stored:(get16 b (off + noff_cksum)))
  then Error "NACK checksum mismatch"
  else begin
    let n =
      {
        nsrc = get16 b (off + noff_src);
        nrequester = get16 b (off + noff_req);
        ntree = get8 b (off + noff_tree);
        nfrom = get32 b (off + noff_from);
        nto = get32 b (off + noff_to);
      }
    in
    if n.nto < n.nfrom then Error "NACK range empty" else Ok n
  end

let encode_nack n =
  let b = Bytes.make nack_size '\000' in
  encode_nack_at b ~off:0 n;
  b

let decode_nack b =
  if Bytes.length b <> nack_size then Error "NACK must be 16 bytes"
  else decode_nack_at b ~off:0

(* -- crash-restart rejoin (JOIN / SNAPSHOT-REQ) --------------------------- *)

(* A restarted node announces itself with a JOIN carrying its fresh
   incarnation number; receivers drop any receive window still keyed to an
   older incarnation of that origin. The SNAPSHOT-REQ asks an origin for a
   full-state sync (the PR 4 catch-up path) when the joiner's windows start
   cold. Both are fixed-size, checksummed, and follow the [_at ~off]
   writer/reader discipline so the U3 symbolic walk proves them. *)

let joff_node = 1
let joff_inc = 3
let joff_cksum = 8

let encode_join_at b ~off j =
  check_width "node" j.jnode 16;
  check_width "inc" j.jinc 32;
  put8 b (off + boff_type) type_join;
  put16 b (off + joff_node) j.jnode;
  put32 b (off + joff_inc) j.jinc;
  put16 b (off + joff_cksum) (checksum_sub b off join_size)

let decode_join_at b ~off =
  if off < 0 || off + join_size > Bytes.length b then Error "short JOIN"
  else if get8 b (off + boff_type) <> type_join then Error "not a JOIN packet"
  else if
    not
      (verify_sub b ~off ~len:join_size ~cksum_off:(off + joff_cksum)
         ~stored:(get16 b (off + joff_cksum)))
  then Error "JOIN checksum mismatch"
  else Ok { jnode = get16 b (off + joff_node); jinc = get32 b (off + joff_inc) }

let encode_join j =
  let b = Bytes.make join_size '\000' in
  encode_join_at b ~off:0 j;
  b

let decode_join b =
  if Bytes.length b <> join_size then Error "JOIN must be 10 bytes"
  else decode_join_at b ~off:0

let soff_root = 1
let soff_req = 3
let soff_inc = 5
let soff_cksum = 10

let encode_snapshot_req_at b ~off s =
  check_width "root" s.sroot 16;
  check_width "requester" s.srequester 16;
  check_width "inc" s.sinc 32;
  put8 b (off + boff_type) type_snapshot_req;
  put16 b (off + soff_root) s.sroot;
  put16 b (off + soff_req) s.srequester;
  put32 b (off + soff_inc) s.sinc;
  put16 b (off + soff_cksum) (checksum_sub b off snapshot_req_size)

let decode_snapshot_req_at b ~off =
  if off < 0 || off + snapshot_req_size > Bytes.length b then
    Error "short SNAPSHOT-REQ"
  else if get8 b (off + boff_type) <> type_snapshot_req then
    Error "not a SNAPSHOT-REQ packet"
  else if
    not
      (verify_sub b ~off ~len:snapshot_req_size ~cksum_off:(off + soff_cksum)
         ~stored:(get16 b (off + soff_cksum)))
  then Error "SNAPSHOT-REQ checksum mismatch"
  else
    Ok
      {
        sroot = get16 b (off + soff_root);
        srequester = get16 b (off + soff_req);
        sinc = get32 b (off + soff_inc);
      }

let encode_snapshot_req s =
  let b = Bytes.make snapshot_req_size '\000' in
  encode_snapshot_req_at b ~off:0 s;
  b

let decode_snapshot_req b =
  if Bytes.length b <> snapshot_req_size then Error "SNAPSHOT-REQ must be 12 bytes"
  else decode_snapshot_req_at b ~off:0

(* -- backpressure PAUSE --------------------------------------------------- *)

(* A congested receiver paces its senders down: the PAUSE names the choking
   node, the lowest priority class it still admits, the back-off level the
   sender must apply (each level halves the pacing rate; 0 means recovered)
   and an advisory per-class rate window in Kbps (0 = no advice). Fixed
   size, checksummed, [_at ~off] discipline like the rejoin formats so the
   U3 symbolic walk proves exact fill and encode/decode symmetry. *)

let poff_node = 1
let poff_class = 3
let poff_level = 4
let poff_window = 5
let poff_cksum = 9

let encode_pause_at b ~off p =
  check_width "node" p.pnode 16;
  check_width "class" p.pclass 8;
  check_width "level" p.plevel 8;
  check_width "window" p.pwindow_kbps 32;
  put8 b (off + boff_type) type_pause;
  put16 b (off + poff_node) p.pnode;
  put8 b (off + poff_class) p.pclass;
  put8 b (off + poff_level) p.plevel;
  put32 b (off + poff_window) p.pwindow_kbps;
  put16 b (off + poff_cksum) (checksum_sub b off pause_size)

let decode_pause_at b ~off =
  if off < 0 || off + pause_size > Bytes.length b then Error "short PAUSE"
  else if get8 b (off + boff_type) <> type_pause then Error "not a PAUSE packet"
  else if
    not
      (verify_sub b ~off ~len:pause_size ~cksum_off:(off + poff_cksum)
         ~stored:(get16 b (off + poff_cksum)))
  then Error "PAUSE checksum mismatch"
  else
    Ok
      {
        pnode = get16 b (off + poff_node);
        pclass = get8 b (off + poff_class);
        plevel = get8 b (off + poff_level);
        pwindow_kbps = get32 b (off + poff_window);
      }

let encode_pause p =
  let b = Bytes.make pause_size '\000' in
  encode_pause_at b ~off:0 p;
  b

let decode_pause b =
  if Bytes.length b <> pause_size then Error "PAUSE must be 11 bytes"
  else decode_pause_at b ~off:0

(* -- batched control-plane codec ------------------------------------------ *)

(* One contiguous buffer holding a heterogeneous run of control items, each
   framed as a 1-byte format code followed by the item's standard encoding
   (own checksum included, so a corrupted item is pinpointed rather than
   poisoning the whole batch). The format code is needed because the inner
   type byte alone cannot distinguish a 16-byte event from its 24-byte
   sequenced extension. Data packets are not batchable: their route field
   is bit-packed at dynamic offsets, outside what the U3 checker can prove
   for a running-offset writer. *)

type batch_item =
  | Item_broadcast of broadcast
  | Item_seq_broadcast of broadcast * int * int
  | Item_digest of digest
  | Item_nack of nack

let batch_code_broadcast = 1
let batch_code_seq_broadcast = 2
let batch_code_digest = 3
let batch_code_nack = 4

let item_code = function
  | Item_broadcast _ -> batch_code_broadcast
  | Item_seq_broadcast _ -> batch_code_seq_broadcast
  | Item_digest _ -> batch_code_digest
  | Item_nack _ -> batch_code_nack

let size_of_code c =
  if c = batch_code_broadcast then Some broadcast_size
  else if c = batch_code_seq_broadcast then Some seq_broadcast_size
  else if c = batch_code_digest then Some digest_size
  else if c = batch_code_nack then Some nack_size
  else None

let item_size it =
  match size_of_code (item_code it) with Some s -> 1 + s | None -> assert false

let batch_size items = List.fold_left (fun acc it -> acc + item_size it) 0 items

let encode_batch items =
  let b = Bytes.make (batch_size items) '\000' in
  let off = ref 0 in
  List.iter
    (fun it ->
      put8 b !off (item_code it);
      let body = !off + 1 in
      (match it with
      | Item_broadcast p -> encode_broadcast_at b ~off:body p
      | Item_seq_broadcast (p, flow, seq) ->
          encode_seq_broadcast_at b ~off:body p ~flow ~seq
      | Item_digest d -> encode_digest_at b ~off:body d
      | Item_nack n -> encode_nack_at b ~off:body n);
      off := !off + item_size it)
    items;
  b

(* The cursor is deliberately not named [off]: that name is U3's symbolic
   item base, and the batch walker's accesses are genuinely dynamic. *)
let decode_batch b =
  let n = Bytes.length b in
  let rec go pos acc =
    if pos = n then Ok (List.rev acc)
    else begin
      let code = get8 b pos in
      match size_of_code code with
      | None ->
          Error (Printf.sprintf "batch: unknown item code %d at offset %d" code pos)
      | Some size ->
          if pos + 1 + size > n then
            Error (Printf.sprintf "batch truncated mid-item at offset %d" pos)
          else begin
            let body = pos + 1 in
            let item =
              if code = batch_code_broadcast then
                Result.map (fun p -> Item_broadcast p) (decode_broadcast_at b ~off:body)
              else if code = batch_code_seq_broadcast then
                Result.map
                  (fun (p, flow, seq) -> Item_seq_broadcast (p, flow, seq))
                  (decode_seq_broadcast_at b ~off:body)
              else if code = batch_code_digest then
                Result.map (fun d -> Item_digest d) (decode_digest_at b ~off:body)
              else Result.map (fun k -> Item_nack k) (decode_nack_at b ~off:body)
            in
            match item with
            | Error e -> Error (Printf.sprintf "batch item at offset %d: %s" pos e)
            | Ok it -> go (pos + 1 + size) (it :: acc)
          end
    end
  in
  go 0 []

(* -- route selectors ----------------------------------------------------- *)

let route_selectors ctx path =
  let t = Routing.topo ctx in
  let hops = Array.length path - 1 in
  if hops > max_route_hops then invalid_arg "Wire.route_selectors: path too long";
  Array.init hops (fun i ->
      let u = path.(i) and v = path.(i + 1) in
      let out = Topology.out_links t u in
      if Array.length out > max_links_per_node then
        invalid_arg "Wire.route_selectors: node degree exceeds 8";
      let rec find j =
        if j >= Array.length out then
          invalid_arg "Wire.route_selectors: non-adjacent vertices"
        else begin
          let w, _ = out.(j) in
          if w = v then j else find (j + 1)
        end
      in
      find 0)

let apply_selector topo node sel =
  let out = Topology.out_links topo node in
  if sel >= Array.length out then invalid_arg "Wire.apply_selector: selector out of range";
  fst out.(sel)

let corrupt rng b =
  let b' = Bytes.copy b in
  let bit = Util.Rng.int rng (8 * Bytes.length b') in
  let byte = bit / 8 and off = bit mod 8 in
  Bytes.set_uint8 b' byte (Bytes.get_uint8 b' byte lxor (1 lsl off));
  b'
