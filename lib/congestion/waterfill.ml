(* Boundary types are Units-dimensioned (byte_rate / fraction, see the
   mli); the algorithms below unwrap once per use with the free [:> float]
   coercion and run on raw floats — identical code to the pre-Units
   version, bit for bit. *)
module U = Util.Units

type flow = {
  id : int;
  weight : float;
  priority : int;
  demand : U.byte_rate option;
  links : (int * U.fraction) array;
}

let flow ?(weight = 1.0) ?(priority = 0) ?demand ~id links =
  { id; weight; priority; demand; links }

let eps = 1e-9

let validate flows capacities =
  Array.iter
    (fun f ->
      if f.weight <= 0.0 then invalid_arg "Waterfill: non-positive weight";
      (match f.demand with
      | Some d when (d : U.byte_rate :> float) < 0.0 -> invalid_arg "Waterfill: negative demand"
      | _ -> ());
      Array.iter
        (fun (l, frac) ->
          if (frac : U.fraction :> float) <= 0.0 then invalid_arg "Waterfill: non-positive fraction";
          if l < 0 || l >= Array.length capacities then
            invalid_arg "Waterfill: link id out of range")
        f.links)
    flows

(* One priority round of progressive filling over [indices], mutating
   [remaining] capacity and writing into [rates]. *)
let fill_round ~remaining ~rates flows indices =
  let nl = Array.length remaining in
  let frozen = Array.make (Array.length flows) false in
  (* Per-link sum of weight * fraction over unfrozen flows of this round. *)
  let wsum = Array.make nl 0.0 in
  let on_link = Array.make nl [] in
  List.iter
    (fun i ->
      let f = flows.(i) in
      Array.iter
        (fun (l, frac) ->
          wsum.(l) <- wsum.(l) +. (f.weight *. (frac : U.fraction :> float));
          on_link.(l) <- i :: on_link.(l))
        f.links)
    indices;
  let active = ref (List.length indices) in
  let t = ref 0.0 in
  (* Demand-limited flows freeze at fill level demand/weight. *)
  let demand_level i =
    match flows.(i).demand with
    | Some d -> Some ((d : U.byte_rate :> float) /. flows.(i).weight)
    | None -> None
  in
  while !active > 0 do
    (* Smallest fill increment that saturates a link or meets a demand. *)
    let dt = ref infinity in
    for l = 0 to nl - 1 do
      if wsum.(l) > eps then begin
        let step = remaining.(l) /. wsum.(l) in
        if step < !dt then dt := step
      end
    done;
    List.iter
      (fun i ->
        if not frozen.(i) then
          match demand_level i with
          | Some lvl when lvl -. !t < !dt -> dt := lvl -. !t
          | _ -> ())
      indices;
    if !dt = infinity then begin
      (* No constraining link and no demand: flows with no links; give 0. *)
      List.iter
        (fun i ->
          if not frozen.(i) then begin
            frozen.(i) <- true;
            rates.(i) <- flows.(i).weight *. !t;
            decr active
          end)
        indices
    end
    else begin
      let dt = max 0.0 !dt in
      t := !t +. dt;
      (* Drain capacity at the advanced fill level. *)
      for l = 0 to nl - 1 do
        if wsum.(l) > eps then remaining.(l) <- remaining.(l) -. (dt *. wsum.(l))
      done;
      (* Freeze flows on saturated links. *)
      for l = 0 to nl - 1 do
        if wsum.(l) > eps && remaining.(l) <= eps then begin
          List.iter
            (fun i ->
              if not frozen.(i) then begin
                frozen.(i) <- true;
                rates.(i) <- flows.(i).weight *. !t;
                decr active;
                Array.iter
                  (fun (l', frac) ->
                    wsum.(l') <- wsum.(l') -. (flows.(i).weight *. (frac : U.fraction :> float)))
                  flows.(i).links
              end)
            on_link.(l);
          remaining.(l) <- 0.0
        end
      done;
      (* Freeze flows whose demand is met. *)
      List.iter
        (fun i ->
          if not frozen.(i) then
            match demand_level i with
            | Some lvl when lvl <= !t +. eps -> begin
                frozen.(i) <- true;
                rates.(i) <- flows.(i).weight *. lvl;
                decr active;
                Array.iter
                  (fun (l', frac) ->
                    wsum.(l') <- wsum.(l') -. (flows.(i).weight *. (frac : U.fraction :> float)))
                  flows.(i).links
              end
            | _ -> ())
        indices
    end
  done

let by_priority flows =
  let by_prio = Hashtbl.create 4 in
  Array.iteri
    (fun i f ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_prio f.priority) in
      Hashtbl.replace by_prio f.priority (i :: cur))
    flows;
  let prios = Util.Tbl.sorted_keys ~cmp:Int.compare by_prio in
  List.map (fun p -> List.rev (Hashtbl.find by_prio p)) (Array.to_list prios)

let headroom_raw = function
  | Some h ->
      let h = (h : U.fraction :> float) in
      if h < 0.0 || h >= 1.0 then invalid_arg "Waterfill: headroom out of range";
      h
  | None -> 0.0

let allocate_reference ?headroom ~capacities flows =
  let headroom = headroom_raw headroom in
  let capacities = U.floats_of capacities in
  validate flows capacities;
  let rates = Array.make (Array.length flows) 0.0 in
  let remaining = Array.map (fun c -> c *. (1.0 -. headroom)) capacities in
  List.iter (fun idx -> fill_round ~remaining ~rates flows idx) (by_priority flows);
  U.of_floats rates

(* -- efficient variant (§4.2) ------------------------------------------- *)

(* Min-heap on float keys with insertion-order tie-breaking; payloads carry
   a version for lazy deletion. *)
module Fheap = struct
  type 'a t = { mutable keys : float array; mutable vals : 'a array; mutable len : int }

  let create dummy = { keys = Array.make 64 0.0; vals = Array.make 64 dummy; len = 0 }

  let push h key v =
    if h.len = Array.length h.keys then begin
      let keys = Array.make (2 * h.len) 0.0 and vals = Array.make (2 * h.len) h.vals.(0) in
      Array.blit h.keys 0 keys 0 h.len;
      Array.blit h.vals 0 vals 0 h.len;
      h.keys <- keys;
      h.vals <- vals
    end;
    h.keys.(h.len) <- key;
    h.vals.(h.len) <- v;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
      let p = (!i - 1) / 2 in
      let k = h.keys.(p) and v' = h.vals.(p) in
      h.keys.(p) <- h.keys.(!i);
      h.vals.(p) <- h.vals.(!i);
      h.keys.(!i) <- k;
      h.vals.(!i) <- v';
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let key = h.keys.(0) and v = h.vals.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.keys.(0) <- h.keys.(h.len);
        h.vals.(0) <- h.vals.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.len && h.keys.(l) < h.keys.(!s) then s := l;
          if r < h.len && h.keys.(r) < h.keys.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            let k = h.keys.(!s) and v' = h.vals.(!s) in
            h.keys.(!s) <- h.keys.(!i);
            h.vals.(!s) <- h.vals.(!i);
            h.keys.(!i) <- k;
            h.vals.(!i) <- v';
            i := !s
          end
        done
      end;
      Some (key, v)
    end
end

(* Operation counters for the performance ablation (bench `ablation`).
   Reset at the top of every allocation so each call reports only its own
   work. One explicit record — registered domain_local in the lint
   ownership map (tools/lint/ownership.sexp): sharded domains each keep
   their own copy; the counters are never read across domains. *)
type debug_counters = {
  mutable pops : int;
  mutable valid : int;
  mutable scan : int;
  mutable push : int;
}

let dbg = { pops = 0; valid = 0; scan = 0; push = 0 }

let reset_debug_counters () =
  dbg.pops <- 0;
  dbg.valid <- 0;
  dbg.scan <- 0;
  dbg.push <- 0

type event = Link_sat of int (* link *) | Demand_met of int (* flow index *)

(* One priority round, event-driven: a heap orders link saturations and
   demand caps by fill level. Each link keeps exactly ONE heap entry whose
   key is a lower bound on its true saturation level (the level can only
   grow as other flows freeze and stop loading the link). On pop the true
   level is recomputed: if it moved, the entry is re-inserted at the new
   key; otherwise the link saturates and its flows freeze. Keeping the
   heap at O(links) entries keeps every sift in cache, which is what makes
   this the fast variant. *)
let fast_round ~remaining ~rates flows indices =
  let nl = Array.length remaining in
  let wsum = Array.make nl 0.0 in
  let last_t = Array.make nl 0.0 in
  let queued = Array.make nl false in
  let on_link = Array.make nl [] in
  let frozen = Array.make (Array.length flows) false in
  let heap = Fheap.create (Demand_met 0) in
  let settle l t =
    if t > last_t.(l) then begin
      remaining.(l) <- Float.max 0.0 (remaining.(l) -. (wsum.(l) *. (t -. last_t.(l))));
      last_t.(l) <- t
    end
  in
  let sat_level l =
    if wsum.(l) > eps then last_t.(l) +. (remaining.(l) /. wsum.(l)) else infinity
  in
  List.iter
    (fun i ->
      let f = flows.(i) in
      Array.iter
        (fun (l, frac) ->
          wsum.(l) <- wsum.(l) +. (f.weight *. (frac : U.fraction :> float));
          on_link.(l) <- i :: on_link.(l))
        f.links)
    indices;
  List.iter
    (fun i ->
      let f = flows.(i) in
      Array.iter
        (fun (l, _) ->
          if not queued.(l) then begin
            queued.(l) <- true;
            dbg.push <- dbg.push + 1;
            Fheap.push heap (sat_level l) (Link_sat l)
          end)
        f.links;
      match f.demand with
      | Some d -> Fheap.push heap ((d : U.byte_rate :> float) /. f.weight) (Demand_met i)
      | None -> ())
    indices;
  let active = ref (List.length indices) in
  let freeze_flow i level =
    if not frozen.(i) then begin
      frozen.(i) <- true;
      rates.(i) <- flows.(i).weight *. level;
      decr active;
      Array.iter
        (fun (l, frac) ->
          settle l level;
          wsum.(l) <- Float.max 0.0 (wsum.(l) -. (flows.(i).weight *. (frac : U.fraction :> float))))
        flows.(i).links
    end
  in
  let rec drain () =
    if !active > 0 then begin
      match Fheap.pop heap with
      | None ->
          (* No constraining event left: flows with no links get 0. *)
          List.iter (fun i -> freeze_flow i 0.0) indices
      | Some (key, Link_sat l) ->
          dbg.pops <- dbg.pops + 1;
          let cur = sat_level l in
          if cur = infinity then () (* no unfrozen flow loads this link *)
          else if cur > key +. (1e-12 *. (1.0 +. abs_float key)) then begin
            (* The level moved since this entry was queued; re-insert. *)
            dbg.push <- dbg.push + 1;
            Fheap.push heap cur (Link_sat l)
          end
          else begin
            dbg.valid <- dbg.valid + 1;
            settle l cur;
            List.iter
              (fun i ->
                dbg.scan <- dbg.scan + 1;
                freeze_flow i cur)
              on_link.(l)
          end;
          drain ()
      | Some (key, Demand_met i) ->
          freeze_flow i key;
          drain ()
    end
  in
  drain ()

let allocate ?headroom ~capacities flows =
  let headroom = headroom_raw headroom in
  let capacities = U.floats_of capacities in
  validate flows capacities;
  reset_debug_counters ();
  let rates = Array.make (Array.length flows) 0.0 in
  let remaining = Array.map (fun c -> c *. (1.0 -. headroom)) capacities in
  List.iter (fun idx -> fast_round ~remaining ~rates flows idx) (by_priority flows);
  U.of_floats rates

let link_utilization ~capacities flows rates =
  let capacities = U.floats_of capacities in
  let rates = U.floats_of rates in
  let load = Array.make (Array.length capacities) 0.0 in
  Array.iteri
    (fun i f ->
      Array.iter
        (fun (l, frac) -> load.(l) <- load.(l) +. (rates.(i) *. (frac : U.fraction :> float)))
        f.links)
    flows;
  U.of_floats
    (Array.mapi (fun l x -> if capacities.(l) > 0.0 then x /. capacities.(l) else 0.0) load)

(* -- incremental allocator (control-plane hot path) ---------------------- *)

(* Epoch recomputation state that lives across calls. Flows are rows of a
   CSR (compressed sparse row) layout: per-row metadata in flat arrays plus
   one shared (link id, fraction) pool indexed by [foff]/[flen]. Flow
   open/close/demand/reroute events patch rows and mark the state dirty; a
   clean [allocate] is O(1) and a dirty one reuses every buffer, so the
   steady-state recompute allocates nothing on the hot path. Link storage is
   append-only with swap-removed rows leaving garbage; the pool is repacked
   when more than half of it is dead. *)
module Inc = struct
  type t = {
    capacities : float array;
    mutable headroom : float;
    (* per-class headroom reservation (overload backpressure): a capacity
       fraction withheld from every class with priority >= reserve_prio,
       kept free for the classes above the threshold. 0.0 = disabled. *)
    mutable reserve_prio : int;
    mutable reserve_frac : float;
    row_of : (int, int) Hashtbl.t;  (* flow id -> row *)
    (* CSR rows: rows 0..nrows-1 are live, swap-remove keeps them dense. *)
    mutable nrows : int;
    mutable fid : int array;
    mutable fweight : float array;
    mutable fprio : int array;
    mutable fdemand : float array;  (* nan = network-limited *)
    mutable foff : int array;
    mutable flen : int array;
    (* shared link pool *)
    mutable lnk_id : int array;
    mutable lnk_frac : float array;
    mutable lnk_used : int;  (* append watermark *)
    mutable lnk_live : int;  (* sum of flen over live rows *)
    (* arena: waterfill working buffers, reused across epochs *)
    mutable rates : float array;  (* per row; survives swap-remove *)
    mutable frozen : bool array;  (* per row *)
    mutable order : int array;  (* rows sorted by (priority, insertion) *)
    mutable round_of : int array;  (* per row: rank of its priority *)
    remaining : float array;  (* per link *)
    wsum : float array;
    last_t : float array;
    queued : bool array;
    link_start : int array;  (* transpose row starts, nl + 1 *)
    link_fill : int array;
    mutable link_rows : int array;  (* link -> rows, rebuilt in place *)
    (* min-heap with int payload: link l => l, demand of row r => -(r+1) *)
    mutable hkeys : float array;
    mutable hvals : int array;
    mutable hlen : int;
    mutable prio_counts : int array;  (* counting-sort buffer *)
    mutable dirty : bool;
    mutable computed : bool;
  }

  let create ?headroom ~capacities () =
    let headroom = headroom_raw headroom in
    let capacities = U.floats_of capacities in
    let nl = Array.length capacities in
    let cap0 = 16 in
    {
      capacities = Array.copy capacities;
      headroom;
      reserve_prio = 0;
      reserve_frac = 0.0;
      row_of = Hashtbl.create 64;
      nrows = 0;
      fid = Array.make cap0 0;
      fweight = Array.make cap0 0.0;
      fprio = Array.make cap0 0;
      fdemand = Array.make cap0 Float.nan;
      foff = Array.make cap0 0;
      flen = Array.make cap0 0;
      lnk_id = Array.make 64 0;
      lnk_frac = Array.make 64 0.0;
      lnk_used = 0;
      lnk_live = 0;
      rates = Array.make cap0 0.0;
      frozen = Array.make cap0 false;
      order = Array.make cap0 0;
      round_of = Array.make cap0 0;
      remaining = Array.make nl 0.0;
      wsum = Array.make nl 0.0;
      last_t = Array.make nl 0.0;
      queued = Array.make nl false;
      link_start = Array.make (nl + 1) 0;
      link_fill = Array.make (max nl 1) 0;
      link_rows = Array.make 64 0;
      hkeys = Array.make 64 0.0;
      hvals = Array.make 64 0;
      hlen = 0;
      prio_counts = Array.make 8 0;
      dirty = false;
      computed = false;
    }

  let live_flows t = t.nrows
  let is_dirty t = t.dirty || not t.computed
  let headroom t = U.fraction t.headroom

  let set_headroom t h =
    let h = (h : U.fraction :> float) in
    if h < 0.0 || h >= 1.0 then invalid_arg "Waterfill: headroom out of range";
    if h <> t.headroom then begin
      t.headroom <- h;
      t.dirty <- true
    end

  let class_reserve t = (t.reserve_prio, U.fraction t.reserve_frac)

  let set_class_reserve t ~priority ~reserve =
    let r = (reserve : U.fraction :> float) in
    if priority < 0 then invalid_arg "Waterfill: negative reserve priority";
    if r < 0.0 || r >= 1.0 then invalid_arg "Waterfill: class reserve out of range";
    if r <> t.reserve_frac || priority <> t.reserve_prio then begin
      t.reserve_prio <- priority;
      t.reserve_frac <- r;
      t.dirty <- true
    end

  let mem t ~id = Hashtbl.mem t.row_of id

  let row t id =
    match Hashtbl.find_opt t.row_of id with
    | Some r -> r
    | None -> invalid_arg "Waterfill.Inc: unknown flow id"

  let grow_rows t =
    let n = Array.length t.fid in
    let gi a = Array.append a (Array.make n 0) in
    let gf a = Array.append a (Array.make n 0.0) in
    t.fid <- gi t.fid;
    t.fweight <- gf t.fweight;
    t.fprio <- gi t.fprio;
    t.fdemand <- Array.append t.fdemand (Array.make n Float.nan);
    t.foff <- gi t.foff;
    t.flen <- gi t.flen;
    t.rates <- gf t.rates;
    t.frozen <- Array.append t.frozen (Array.make n false);
    t.order <- gi t.order;
    t.round_of <- gi t.round_of

  (* Make room for [n] more pool entries: repack live rows into fresh
     arrays, dropping the garbage left by removed/relinked rows. Amortized
     over churn; never reached by a steady-state epoch. *)
  let ensure_links t n =
    if t.lnk_used + n > Array.length t.lnk_id then begin
      let cap = max (Array.length t.lnk_id) (max 64 (2 * (t.lnk_live + n))) in
      let id' = Array.make cap 0 and frac' = Array.make cap 0.0 in
      let pos = ref 0 in
      for r = 0 to t.nrows - 1 do
        let off = t.foff.(r) and len = t.flen.(r) in
        (* rows emptied by set_links/add_flow may carry a stale offset *)
        if len > 0 then begin
          Array.blit t.lnk_id off id' !pos len;
          Array.blit t.lnk_frac off frac' !pos len
        end;
        t.foff.(r) <- !pos;
        pos := !pos + len
      done;
      t.lnk_id <- id';
      t.lnk_frac <- frac';
      t.lnk_used <- !pos
    end

  let validate_links t links =
    let nl = Array.length t.capacities in
    Array.iter
      (fun (l, frac) ->
        if (frac : U.fraction :> float) <= 0.0 then
          invalid_arg "Waterfill: non-positive fraction";
        if l < 0 || l >= nl then invalid_arg "Waterfill: link id out of range")
      links

  let write_links t r links =
    let n = Array.length links in
    ensure_links t n;
    t.foff.(r) <- t.lnk_used;
    Array.iteri
      (fun j (l, frac) ->
        t.lnk_id.(t.lnk_used + j) <- l;
        t.lnk_frac.(t.lnk_used + j) <- (frac : U.fraction :> float))
      links;
    t.flen.(r) <- n;
    t.lnk_used <- t.lnk_used + n;
    t.lnk_live <- t.lnk_live + n

  let add_flow ?(weight = 1.0) ?(priority = 0) ?demand t ~id links =
    if weight <= 0.0 then invalid_arg "Waterfill: non-positive weight";
    (match demand with
    | Some d when (d : U.byte_rate :> float) < 0.0 ->
        invalid_arg "Waterfill: negative demand"
    | _ -> ());
    validate_links t links;
    if Hashtbl.mem t.row_of id then invalid_arg "Waterfill.Inc: duplicate flow id";
    if t.nrows = Array.length t.fid then grow_rows t;
    let r = t.nrows in
    t.nrows <- r + 1;
    t.fid.(r) <- id;
    t.fweight.(r) <- weight;
    t.fprio.(r) <- priority;
    t.fdemand.(r) <- (match demand with Some d -> (d : U.byte_rate :> float) | None -> Float.nan);
    t.rates.(r) <- 0.0;
    t.flen.(r) <- 0;
    write_links t r links;
    Hashtbl.replace t.row_of id r;
    t.dirty <- true

  let remove_flow t ~id =
    let r = row t id in
    t.lnk_live <- t.lnk_live - t.flen.(r);
    let last = t.nrows - 1 in
    if r <> last then begin
      t.fid.(r) <- t.fid.(last);
      t.fweight.(r) <- t.fweight.(last);
      t.fprio.(r) <- t.fprio.(last);
      t.fdemand.(r) <- t.fdemand.(last);
      t.foff.(r) <- t.foff.(last);
      t.flen.(r) <- t.flen.(last);
      t.rates.(r) <- t.rates.(last);
      Hashtbl.replace t.row_of t.fid.(r) r
    end;
    t.nrows <- last;
    Hashtbl.remove t.row_of id;
    t.dirty <- true

  let set_demand t ~id demand =
    let r = row t id in
    let d = match demand with Some d -> (d : U.byte_rate :> float) | None -> Float.nan in
    (match demand with
    | Some d when (d : U.byte_rate :> float) < 0.0 -> invalid_arg "Waterfill: negative demand"
    | _ -> ());
    let cur = t.fdemand.(r) in
    let unchanged = (Float.is_nan d && Float.is_nan cur) || d = cur in
    if not unchanged then begin
      t.fdemand.(r) <- d;
      t.dirty <- true
    end

  let set_links t ~id links =
    validate_links t links;
    let r = row t id in
    let n = Array.length links in
    if n <= t.flen.(r) then begin
      (* Fits in place; the tail of the old row becomes garbage. *)
      let off = t.foff.(r) in
      Array.iteri
        (fun j (l, frac) ->
          t.lnk_id.(off + j) <- l;
          t.lnk_frac.(off + j) <- (frac : U.fraction :> float))
        links;
      t.lnk_live <- t.lnk_live - t.flen.(r) + n;
      t.flen.(r) <- n
    end
    else begin
      t.lnk_live <- t.lnk_live - t.flen.(r);
      t.flen.(r) <- 0;
      write_links t r links
    end;
    t.dirty <- true

  (* -- heap: float keys, int payloads, buffers reused across epochs -- *)

  let heap_push t key v =
    if t.hlen = Array.length t.hkeys then begin
      t.hkeys <- Array.append t.hkeys (Array.make t.hlen 0.0);
      t.hvals <- Array.append t.hvals (Array.make t.hlen 0)
    end;
    t.hkeys.(t.hlen) <- key;
    t.hvals.(t.hlen) <- v;
    t.hlen <- t.hlen + 1;
    let i = ref (t.hlen - 1) in
    while !i > 0 && t.hkeys.((!i - 1) / 2) > t.hkeys.(!i) do
      let p = (!i - 1) / 2 in
      let k = t.hkeys.(p) and v' = t.hvals.(p) in
      t.hkeys.(p) <- t.hkeys.(!i);
      t.hvals.(p) <- t.hvals.(!i);
      t.hkeys.(!i) <- k;
      t.hvals.(!i) <- v';
      i := p
    done

  (* Returns the payload, storing the key in [heap_key]; -max_int = empty. *)
  let heap_key = ref 0.0

  let heap_pop t =
    if t.hlen = 0 then min_int
    else begin
      let key = t.hkeys.(0) and v = t.hvals.(0) in
      t.hlen <- t.hlen - 1;
      if t.hlen > 0 then begin
        t.hkeys.(0) <- t.hkeys.(t.hlen);
        t.hvals.(0) <- t.hvals.(t.hlen);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < t.hlen && t.hkeys.(l) < t.hkeys.(!s) then s := l;
          if r < t.hlen && t.hkeys.(r) < t.hkeys.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            let k = t.hkeys.(!s) and v' = t.hvals.(!s) in
            t.hkeys.(!s) <- t.hkeys.(!i);
            t.hvals.(!s) <- t.hvals.(!i);
            t.hkeys.(!i) <- k;
            t.hvals.(!i) <- v';
            i := !s
          end
        done
      end;
      heap_key := key;
      v
    end

  (* Stable counting sort of live rows by priority into [order]; also
     assigns [round_of] (the rank of each row's priority). Falls back to a
     comparison sort if the priority range is degenerate. *)
  let sort_rounds t =
    let nf = t.nrows in
    let pmin = ref max_int and pmax = ref min_int in
    for r = 0 to nf - 1 do
      if t.fprio.(r) < !pmin then pmin := t.fprio.(r);
      if t.fprio.(r) > !pmax then pmax := t.fprio.(r)
    done;
    let range = !pmax - !pmin + 1 in
    if range <= 4096 then begin
      if Array.length t.prio_counts < range + 1 then t.prio_counts <- Array.make (2 * range) 0;
      Array.fill t.prio_counts 0 range 0;
      for r = 0 to nf - 1 do
        let p = t.fprio.(r) - !pmin in
        t.prio_counts.(p) <- t.prio_counts.(p) + 1
      done;
      (* exclusive prefix sums = segment starts *)
      let acc = ref 0 in
      for p = 0 to range - 1 do
        let c = t.prio_counts.(p) in
        t.prio_counts.(p) <- !acc;
        acc := !acc + c
      done;
      for r = 0 to nf - 1 do
        let p = t.fprio.(r) - !pmin in
        t.order.(t.prio_counts.(p)) <- r;
        t.prio_counts.(p) <- t.prio_counts.(p) + 1
      done
    end
    else begin
      (* Pathological priority spread: pay one comparison sort. *)
      let tmp = Array.sub t.order 0 nf in
      Array.iteri (fun k _ -> tmp.(k) <- k) tmp;
      Array.sort
        (fun a b ->
          let c = compare t.fprio.(a) t.fprio.(b) in
          if c <> 0 then c else compare a b)
        tmp;
      Array.blit tmp 0 t.order 0 nf
    end;
    let round = ref (-1) in
    let prev = ref min_int in
    for k = 0 to nf - 1 do
      let r = t.order.(k) in
      if t.fprio.(r) <> !prev then begin
        incr round;
        prev := t.fprio.(r)
      end;
      t.round_of.(r) <- !round
    done

  (* Rebuild the link -> rows transpose in place (counting pass + fill). *)
  let build_transpose t =
    let nl = Array.length t.capacities in
    Array.fill t.link_fill 0 nl 0;
    for r = 0 to t.nrows - 1 do
      for j = t.foff.(r) to t.foff.(r) + t.flen.(r) - 1 do
        let l = t.lnk_id.(j) in
        t.link_fill.(l) <- t.link_fill.(l) + 1
      done
    done;
    let acc = ref 0 in
    for l = 0 to nl - 1 do
      t.link_start.(l) <- !acc;
      acc := !acc + t.link_fill.(l)
    done;
    t.link_start.(nl) <- !acc;
    if Array.length t.link_rows < !acc then t.link_rows <- Array.make (2 * !acc) 0;
    Array.blit t.link_start 0 t.link_fill 0 nl;
    for r = 0 to t.nrows - 1 do
      for j = t.foff.(r) to t.foff.(r) + t.flen.(r) - 1 do
        let l = t.lnk_id.(j) in
        t.link_rows.(t.link_fill.(l)) <- r;
        t.link_fill.(l) <- t.link_fill.(l) + 1
      done
    done

  (* One priority round over order[lo..hi): the same event-driven algorithm
     as [fast_round], on the CSR layout. The transpose spans all rounds, so
     the saturation scan skips rows of other rounds ([round_of]); earlier
     rounds are frozen, later ones not yet filling. *)
  let round_inc t ~round lo hi =
    let nl = Array.length t.capacities in
    Array.fill t.wsum 0 nl 0.0;
    Array.fill t.last_t 0 nl 0.0;
    Array.fill t.queued 0 nl false;
    t.hlen <- 0;
    let settle l lvl =
      if lvl > t.last_t.(l) then begin
        t.remaining.(l) <-
          Float.max 0.0 (t.remaining.(l) -. (t.wsum.(l) *. (lvl -. t.last_t.(l))));
        t.last_t.(l) <- lvl
      end
    in
    let sat_level l =
      if t.wsum.(l) > eps then t.last_t.(l) +. (t.remaining.(l) /. t.wsum.(l)) else infinity
    in
    for k = lo to hi - 1 do
      let r = t.order.(k) in
      for j = t.foff.(r) to t.foff.(r) + t.flen.(r) - 1 do
        let l = t.lnk_id.(j) in
        t.wsum.(l) <- t.wsum.(l) +. (t.fweight.(r) *. t.lnk_frac.(j))
      done
    done;
    for k = lo to hi - 1 do
      let r = t.order.(k) in
      for j = t.foff.(r) to t.foff.(r) + t.flen.(r) - 1 do
        let l = t.lnk_id.(j) in
        if not t.queued.(l) then begin
          t.queued.(l) <- true;
          dbg.push <- dbg.push + 1;
          heap_push t (sat_level l) l
        end
      done;
      if not (Float.is_nan t.fdemand.(r)) then
        heap_push t (t.fdemand.(r) /. t.fweight.(r)) (-(r + 1))
    done;
    let active = ref (hi - lo) in
    let freeze r lvl =
      if not t.frozen.(r) then begin
        t.frozen.(r) <- true;
        t.rates.(r) <- t.fweight.(r) *. lvl;
        decr active;
        for j = t.foff.(r) to t.foff.(r) + t.flen.(r) - 1 do
          let l = t.lnk_id.(j) in
          settle l lvl;
          t.wsum.(l) <- Float.max 0.0 (t.wsum.(l) -. (t.fweight.(r) *. t.lnk_frac.(j)))
        done
      end
    in
    while !active > 0 do
      let v = heap_pop t in
      if v = min_int then
        (* No constraining event left: link-less flows get 0. *)
        for k = lo to hi - 1 do
          freeze t.order.(k) 0.0
        done
      else if v >= 0 then begin
        let l = v and key = !heap_key in
        dbg.pops <- dbg.pops + 1;
        let cur = sat_level l in
        if cur = infinity then ()
        else if cur > key +. (1e-12 *. (1.0 +. abs_float key)) then begin
          dbg.push <- dbg.push + 1;
          heap_push t cur l
        end
        else begin
          dbg.valid <- dbg.valid + 1;
          settle l cur;
          for p = t.link_start.(l) to t.link_start.(l + 1) - 1 do
            let r = t.link_rows.(p) in
            dbg.scan <- dbg.scan + 1;
            if t.round_of.(r) = round then freeze r cur
          done
        end
      end
      else freeze (-v - 1) !heap_key
    done

  let compute t =
    let nl = Array.length t.capacities in
    let nf = t.nrows in
    for l = 0 to nl - 1 do
      t.remaining.(l) <- t.capacities.(l) *. (1.0 -. t.headroom)
    done;
    if nf > 0 then begin
      Array.fill t.rates 0 nf 0.0;
      Array.fill t.frozen 0 nf false;
      sort_rounds t;
      build_transpose t;
      let k0 = ref 0 in
      let round = ref 0 in
      let reserved = ref false in
      while !k0 < nf do
        let p = t.fprio.(t.order.(!k0)) in
        (* Crossing the reserve threshold: withhold the reserved slice from
           this and every lower class, exactly once. Gated on a non-zero
           fraction so the default path stays bit-identical. *)
        if (not !reserved) && t.reserve_frac > 0.0 && p >= t.reserve_prio then begin
          for l = 0 to nl - 1 do
            t.remaining.(l) <-
              Float.max 0.0 (t.remaining.(l) -. (t.reserve_frac *. t.capacities.(l)))
          done;
          reserved := true
        end;
        let k1 = ref (!k0 + 1) in
        while !k1 < nf && t.fprio.(t.order.(!k1)) = p do
          incr k1
        done;
        round_inc t ~round:!round !k0 !k1;
        incr round;
        k0 := !k1
      done
    end

  let allocate t =
    if t.dirty || not t.computed then begin
      reset_debug_counters ();
      compute t;
      t.dirty <- false;
      t.computed <- true
    end

  let rate t ~id = U.byte_rate t.rates.(row t id)

  let iter_rates t f =
    for r = 0 to t.nrows - 1 do
      f ~id:t.fid.(r) ~rate:(U.byte_rate t.rates.(r))
    done
end

let bottleneck_fill ~capacities flows =
  let capacities = U.floats_of capacities in
  let nl = Array.length capacities in
  let wsum = Array.make nl 0.0 in
  Array.iter
    (fun f ->
      Array.iter
        (fun (l, frac) -> wsum.(l) <- wsum.(l) +. (f.weight *. (frac : U.fraction :> float)))
        f.links)
    flows;
  let fill = ref infinity in
  for l = 0 to nl - 1 do
    if wsum.(l) > eps then begin
      let step = capacities.(l) /. wsum.(l) in
      if step < !fill then fill := step
    end
  done;
  U.byte_rate !fill
