(** Overload control shared by the simulator and the application stack:
    strict-priority admission/shedding with hysteresis, and an AIMD
    backpressure pacer driven by PAUSE packets.

    Both machines are driven once per rate epoch and are allocation-free
    after construction. *)

(** Strict-priority load shedding. The shed floor starts above the lowest
    class (admit everything); every overloaded epoch lowers it by one class
    (lowest priority refused first, class 0 never refused), and only
    [clean_epochs_to_recover] consecutive clean epochs raise it back — the
    hysteresis that keeps a queue oscillating around the watermark from
    flapping admission. *)
module Admission : sig
  type t

  val create : ?clean_epochs_to_recover:int -> max_priority:int -> unit -> t
  (** [max_priority] is the numerically largest (least urgent) class in
      use; [clean_epochs_to_recover] defaults to 3. Raises
      [Invalid_argument] on a negative class count or a window < 1. *)

  val admits : t -> priority:int -> bool
  (** Would a flow of this class be admitted right now? *)

  val shed_floor : t -> int
  (** Classes with [priority >= shed_floor] are refused;
      [max_priority + 1] when nothing is shed. *)

  val shedding : t -> bool

  val note_epoch : t -> overloaded:bool -> unit
  (** Feed one rate epoch's overload verdict. *)

  val reset : t -> unit
end

(** One sender's AIMD rate scale: PAUSE level [n] multiplies the scale by
    [backoff]^n (floored at [min_scale]); each clean epoch adds [recovery]
    back until the scale returns to 1. *)
module Pacer : sig
  type t

  val create : ?backoff:float -> ?recovery:float -> ?min_scale:float -> unit -> t
  (** Defaults: backoff 0.5, recovery 0.1/epoch, min_scale 0.05. Raises
      [Invalid_argument] outside (0,1) / positive / (0,1] respectively. *)

  val scale : t -> float
  (** Current pacing multiplier in [[min_scale, 1]]. *)

  val note_pause : t -> level:int -> unit
  (** Apply a received PAUSE. Raises [Invalid_argument] on a negative
      level; level 0 is a no-op (the all-clear — recovery is additive,
      through {!note_clean_epoch}). *)

  val note_clean_epoch : t -> unit
  val reset : t -> unit
end
