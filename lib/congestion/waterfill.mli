(** Weighted max-min rate allocation by progressive filling (paper §3.3).

    Every flow comes with its per-link rate fractions (from
    {!Routing.fractions}): a flow sending at rate [r] loads link [l] with
    [r *. frac]. The allocator raises the fill level of all flows of the
    highest priority at equal weighted pace, freezing flows as links
    saturate or demands are met, then repeats for the next priority level
    with the leftover capacity (§3.3.2, "Beyond per-flow fairness").

    A [headroom] fraction of every link's capacity is set aside to absorb
    flows that have started but are not yet globally visible (§3.3.2).

    All rates carried across this interface are {!Util.Units.byte_rate}
    (bytes/ns) — the allocator's canonical unit (DESIGN.md §10); link
    fractions and headroom are {!Util.Units.fraction}. *)

type flow = {
  id : int;  (** opaque; echoed back in results *)
  weight : float;  (** allocation weight, > 0 *)
  priority : int;  (** 0 is served first *)
  demand : Util.Units.byte_rate option;  (** rate cap for host-limited flows *)
  links : (int * Util.Units.fraction) array;
      (** (link id, fraction), fractions > 0 *)
}

val flow :
  ?weight:float ->
  ?priority:int ->
  ?demand:Util.Units.byte_rate ->
  id:int ->
  (int * Util.Units.fraction) array ->
  flow
(** Convenience constructor; weight defaults to 1, priority to 0. *)

val allocate :
  ?headroom:Util.Units.fraction ->
  capacities:Util.Units.byte_rate array ->
  flow array ->
  Util.Units.byte_rate array
(** [allocate ~capacities flows] returns the rate of each flow, indexed as
    the input array. [capacities.(l)] is link [l]'s capacity in bytes/ns.
    [headroom] (default 0) is the capacity fraction left unallocated.
    Raises [Invalid_argument] on non-positive weights or fractions.

    This is the paper's "efficient variant of the water-filling algorithm"
    (§4.2): saturation events are processed from a heap with lazy per-link
    settlement, so the cost is near-linear in the total number of
    (flow, link) incidences rather than iterations times links. *)

val allocate_reference :
  ?headroom:Util.Units.fraction ->
  capacities:Util.Units.byte_rate array ->
  flow array ->
  Util.Units.byte_rate array
(** Textbook progressive filling [12]: raise all rates at equal weighted
    pace, scan every link for the next saturation, repeat. Quadratic but
    obviously correct — the oracle that {!allocate} is property-tested
    against. *)

val link_utilization :
  capacities:Util.Units.byte_rate array ->
  flow array ->
  Util.Units.byte_rate array ->
  Util.Units.fraction array
(** [link_utilization ~capacities flows rates] is each link's load divided
    by its capacity; for checking feasibility in tests. *)

val bottleneck_fill :
  capacities:Util.Units.byte_rate array -> flow array -> Util.Units.byte_rate
(** Fill level at which the first link saturates when all flows rise
    together — the single-iteration core of progressive filling, exposed
    for the channel-load analysis. *)

(** Incremental epoch recomputation (§3.3.4).

    [Inc.t] keeps the allocator's inputs — flow rows in a flat CSR layout —
    and all water-filling working buffers alive across epochs. Flow
    open/close/demand/reroute events patch single rows and mark the state
    dirty; {!Inc.allocate} on a clean state returns the cached rates in
    O(1), and on a dirty state recomputes with every buffer reused, so a
    steady-state recompute performs no per-epoch array or list allocation.
    Results are bit-compatible with {!allocate} up to floating-point noise
    and property-tested against {!allocate_reference}. *)
module Inc : sig
  type t

  val create :
    ?headroom:Util.Units.fraction ->
    capacities:Util.Units.byte_rate array ->
    unit ->
    t
  (** Same [headroom]/[capacities] contract as {!allocate}; capacities are
      copied and fixed for the lifetime of the state. *)

  val add_flow :
    ?weight:float ->
    ?priority:int ->
    ?demand:Util.Units.byte_rate ->
    t ->
    id:int ->
    (int * Util.Units.fraction) array ->
    unit
  (** Open a flow. [id] must be fresh; links are validated like {!allocate}
      inputs. Raises [Invalid_argument] otherwise. *)

  val remove_flow : t -> id:int -> unit
  (** Close a flow; unknown ids raise. *)

  val set_demand : t -> id:int -> Util.Units.byte_rate option -> unit
  (** Update a flow's demand cap ([None] = network-limited). Setting the
      value it already has keeps the state clean. *)

  val set_links : t -> id:int -> (int * Util.Units.fraction) array -> unit
  (** Replace a flow's link fractions after a routing change. *)

  val allocate : t -> unit
  (** Recompute rates if any event arrived since the last call; otherwise a
      no-op (the O(1) clean-epoch path — it performs no heap operation, as
      the debug counters can verify). *)

  val rate : t -> id:int -> Util.Units.byte_rate
  (** The flow's rate from the last {!allocate} (0 for flows added since). *)

  val iter_rates : t -> (id:int -> rate:Util.Units.byte_rate -> unit) -> unit
  (** Visit every live flow's last-computed rate, in unspecified order. *)

  val live_flows : t -> int
  val is_dirty : t -> bool
  val mem : t -> id:int -> bool

  val headroom : t -> Util.Units.fraction

  val set_headroom : t -> Util.Units.fraction -> unit
  (** Retune the reserved capacity fraction — the graceful-degradation knob
      under control-plane loss. Same range contract as {!create}; a changed
      value marks the state dirty, an unchanged one keeps it clean. *)

  val class_reserve : t -> int * Util.Units.fraction
  (** Current [(priority threshold, reserved fraction)]; fraction 0 when
      disabled (the default). *)

  val set_class_reserve : t -> priority:int -> reserve:Util.Units.fraction -> unit
  (** Per-class headroom reservation (overload backpressure): withhold
      [reserve] of every link's capacity from all classes with priority >=
      [priority], keeping that slice free for the classes above the
      threshold. [reserve] must be in [\[0, 1)]; 0 disables (the default —
      allocations are then bit-identical to a state without the feature).
      A changed value marks the state dirty. *)
end

(**/**)

(** Operation counters for the performance ablation. One explicit record
    rather than loose refs: it is registered [domain_local] in the lint
    ownership map (each domain will keep its own copy once the engine is
    sharded). *)
type debug_counters = {
  mutable pops : int;
  mutable valid : int;
  mutable scan : int;
  mutable push : int;
}

val dbg : debug_counters

val reset_debug_counters : unit -> unit
(** Zero the four counters; {!allocate} and a dirty {!Inc.allocate} also
    reset them on entry so each measurement reports one computation. *)
