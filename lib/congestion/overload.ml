(* Overload control: strict-priority admission with hysteresis, plus an
   AIMD backpressure pacer (paper §3.3.2 priorities, defended under
   offered load beyond rack capacity).

   Two small state machines share this module because both the simulator
   (lib/sim) and the application stack (lib/core) need them and lib/sim
   cannot see lib/core:

   - [Admission] turns a per-epoch overload verdict (queue occupancy above
     the high watermark somewhere) into a shed floor: the lowest priority
     class is refused first, escalating one class per overloaded epoch up
     to [max_priority], and de-escalating one class only after
     [clean_epochs_to_recover] consecutive clean epochs — hysteresis so
     recovery does not flap admission on a queue oscillating around the
     watermark.

   - [Pacer] holds one sender's multiplicative-decrease /
     additive-increase rate scale: each PAUSE level received multiplies
     the scale by [backoff]^level (clamped at [min_scale]); every clean
     epoch adds [recovery] back until the scale reaches 1. *)

module Admission = struct
  type t = {
    max_priority : int;  (** lowest (numerically highest) class that exists *)
    clean_epochs_to_recover : int;
    mutable shed_floor : int;
        (** classes with priority >= shed_floor are refused;
            [max_priority + 1] = admit everything *)
    mutable clean_run : int;  (** consecutive clean epochs seen *)
  }

  let create ?(clean_epochs_to_recover = 3) ~max_priority () =
    if max_priority < 0 then invalid_arg "Overload.Admission: negative max_priority";
    if clean_epochs_to_recover < 1 then
      invalid_arg "Overload.Admission: clean_epochs_to_recover < 1";
    { max_priority; clean_epochs_to_recover; shed_floor = max_priority + 1; clean_run = 0 }

  let shed_floor t = t.shed_floor
  let shedding t = t.shed_floor <= t.max_priority

  let admits t ~priority = priority < t.shed_floor

  (* One verdict per rate epoch. Escalation is immediate (shed one more
     class, never class 0 — the highest class is only throttled by the
     pacer, not refused); de-escalation waits out the hysteresis window. *)
  let note_epoch t ~overloaded =
    if overloaded then begin
      t.clean_run <- 0;
      if t.shed_floor > 1 then t.shed_floor <- t.shed_floor - 1
    end
    else begin
      t.clean_run <- t.clean_run + 1;
      if t.clean_run >= t.clean_epochs_to_recover && shedding t then begin
        t.shed_floor <- t.shed_floor + 1;
        t.clean_run <- 0
      end
    end

  let reset t =
    t.shed_floor <- t.max_priority + 1;
    t.clean_run <- 0
end

module Pacer = struct
  type t = {
    backoff : float;  (** multiplicative decrease per PAUSE level, in (0, 1) *)
    recovery : float;  (** additive increase per clean epoch, > 0 *)
    min_scale : float;  (** floor so a paused sender keeps probing, in (0, 1] *)
    mutable scale : float;  (** current pacing multiplier, [min_scale, 1] *)
  }

  let create ?(backoff = 0.5) ?(recovery = 0.1) ?(min_scale = 0.05) () =
    if not (backoff > 0.0 && backoff < 1.0) then
      invalid_arg "Overload.Pacer: backoff outside (0, 1)";
    if not (recovery > 0.0) then invalid_arg "Overload.Pacer: non-positive recovery";
    if not (min_scale > 0.0 && min_scale <= 1.0) then
      invalid_arg "Overload.Pacer: min_scale outside (0, 1]";
    { backoff; recovery; min_scale; scale = 1.0 }

  let scale t = t.scale

  (* PAUSE level n: back off n halvings at once (exponential in the level,
     so a deeply congested receiver cuts a sender down in one packet). *)
  let note_pause t ~level =
    if level < 0 then invalid_arg "Overload.Pacer: negative pause level";
    let s = ref t.scale in
    for _ = 1 to level do
      s := !s *. t.backoff
    done;
    t.scale <- Float.max t.min_scale !s

  let note_clean_epoch t = t.scale <- Float.min 1.0 (t.scale +. t.recovery)
  let reset t = t.scale <- 1.0
end
