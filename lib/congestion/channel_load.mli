(** Saturation-throughput analysis of routing algorithms under a traffic
    pattern — the model behind the paper's Fig. 2 table (after Dally &
    Towles).

    A pattern assigns every source a set of destinations with relative
    demands summing to 1 per node. Under routing protocol [p], the expected
    load on link [l] per unit injection is
    [gamma(l) = sum over flows of demand * fraction(l)]. With unit link
    capacity, the saturation injection rate per node is [1 / max gamma],
    and the paper's table normalizes it by the network capacity
    [2 * bisection_links / nodes]. *)

val channel_loads : Routing.ctx -> Routing.protocol -> (int * int * float) list -> float array
(** [channel_loads ctx p flows] with [flows = (src, dst, demand) list]:
    expected per-link load for unit-capacity links. *)

val saturation_injection : Routing.ctx -> Routing.protocol -> (int * int * float) list -> float
(** Per-node injection rate (in link-capacity units) at which the most
    loaded link saturates. *)

val capacity_fraction :
  Routing.ctx -> Routing.protocol -> (int * int * float) list -> Util.Units.fraction
(** Saturation throughput as a fraction of bisection capacity — directly
    comparable to the Fig. 2 table entries. *)
