(** Host-limited flow demand estimation (paper §3.3.2, Eq. 1).

    A flow sending faster than its allocation queues at the sender; the
    demand for the next period is estimated as
    [d(i+1) = r(i) + q(i)/T] — current rate plus observed sender-side
    queuing drained over one period — smoothed by an EWMA. Rates are
    {!Util.Units.byte_rate} (bytes/ns), queue depths {!Util.Units.bytes}
    — the canonical data-plane units (DESIGN.md §10). *)

type t

val create : ?alpha:float -> period_ns:int -> unit -> t
(** [alpha] is the EWMA smoothing factor (default 0.5); [period_ns] the
    estimation period T. *)

val observe : t -> rate:Util.Units.byte_rate -> queued_bytes:Util.Units.bytes -> unit
(** Feed one period's allocated rate and sender-queue depth. *)

val estimate : t -> Util.Units.byte_rate
(** Current smoothed demand estimate; 0 before the first observation. *)

val is_host_limited : t -> allocation:Util.Units.byte_rate -> bool
(** True when the estimated demand falls below the current allocation, i.e.
    the flow cannot use its share and the spare should be re-broadcast. *)
