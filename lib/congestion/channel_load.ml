let channel_loads ctx p flows =
  let t = Routing.topo ctx in
  let load = Array.make (Topology.link_count t) 0.0 in
  List.iter
    (fun (src, dst, demand) ->
      if src <> dst && demand > 0.0 then
        Array.iter
          (fun (l, frac) -> load.(l) <- load.(l) +. (demand *. frac))
          (Util.Units.pairs_to_floats (Routing.fractions ctx p ~src ~dst)))
    flows;
  load

let saturation_injection ctx p flows =
  let load = channel_loads ctx p flows in
  let worst = Array.fold_left max 0.0 load in
  if worst <= 0.0 then infinity else 1.0 /. worst

let capacity_fraction ctx p flows =
  let t = Routing.topo ctx in
  let capacity =
    2.0 *. float_of_int (Topology.bisection_links t) /. float_of_int (Topology.host_count t)
  in
  Util.Units.fraction (saturation_injection ctx p flows /. capacity)
