module U = Util.Units

type t = { period_ns : U.ns; ewma : Util.Stats.ewma }

let create ?(alpha = 0.5) ~period_ns () =
  if period_ns <= 0 then invalid_arg "Demand.create: period must be positive";
  { period_ns = U.ns_of_int period_ns; ewma = Util.Stats.ewma_create ~alpha }

let observe t ~rate ~queued_bytes =
  let d = U.add rate (U.rate_of ~amount:queued_bytes ~dt:t.period_ns) in
  Util.Stats.ewma_update t.ewma (U.to_float d)

let estimate t = U.byte_rate (Util.Stats.ewma_value t.ewma)

let is_host_limited t ~allocation = U.compare_q (estimate t) allocation < 0
