type tree = {
  parent : int array;
  children : int list array;
  depth : int;
  hops : int array;
  mutable version : int;  (* Topology.version the tree was last validated against *)
}

type t = {
  topo : Topology.t;
  trees_per_source : int;
  cache : (int, tree) Hashtbl.t;  (* key = src * trees_per_source + tree id *)
  mutable repairs : int;
  mutable repair_bytes : int;
}

let make ?(trees_per_source = 4) topo =
  if trees_per_source < 1 then invalid_arg "Broadcast.make: trees_per_source < 1";
  { topo; trees_per_source; cache = Hashtbl.create 64; repairs = 0; repair_bytes = 0 }

let topo t = t.topo
let trees_per_source t = t.trees_per_source
let repairs t = t.repairs
let repair_bytes t = t.repair_bytes

let tree_hops parent ~root =
  let n = Array.length parent in
  let hops = Array.make n (-1) in
  hops.(root) <- 0;
  let rec hop v = if hops.(v) >= 0 then hops.(v) else begin
      let h = hop parent.(v) + 1 in
      hops.(v) <- h;
      h
    end
  in
  for v = 0 to n - 1 do
    if parent.(v) >= 0 then ignore (hop v)
  done;
  hops

(* A tree is valid when every alive vertex reachable from the source is
   covered by an alive tree edge. Checking edges locally suffices: a broken
   chain higher up surfaces as a dead (or missing) edge at the first alive,
   reachable vertex below the break. *)
let check_tree t ~src parent =
  let topo = t.topo in
  if not (Topology.node_alive topo src) then false
  else begin
    let d = Topology.dist_to topo src in
    let ok = ref true in
    let n = Array.length parent in
    for v = 0 to n - 1 do
      if !ok && v <> src && Topology.node_alive topo v && d.(v) < max_int then begin
        let p = parent.(v) in
        if p < 0 then ok := false
        else
          match Topology.find_link topo p v with
          | Some l -> if not (Topology.link_alive topo l) then ok := false
          | None -> ok := false
      end
    done;
    !ok
  end

let build_tree t ~src ~tree =
  let parent = Topology.shortest_path_tree t.topo ~root:src ~variant:tree in
  let children = Topology.tree_children parent ~root:src in
  let depth = Topology.tree_depth parent ~root:src in
  let hops = tree_hops parent ~root:src in
  { parent; children; depth; hops; version = Topology.version t.topo }

let tree_edge_count tr ~root =
  let n = ref 0 in
  Array.iteri (fun v p -> if v <> root && p >= 0 then incr n) tr.parent;
  !n

let get_tree t ~src ~tree =
  if tree < 0 || tree >= t.trees_per_source then invalid_arg "Broadcast: tree id out of range";
  let key = (src * t.trees_per_source) + tree in
  let v = Topology.version t.topo in
  match Hashtbl.find_opt t.cache key with
  | Some tr when tr.version = v -> tr
  | Some tr when check_tree t ~src tr.parent ->
      (* Survived the failure untouched; just re-stamp. *)
      tr.version <- v;
      tr
  | Some _ ->
      (* Crosses a dead element: rebuild on the surviving graph and charge
         the FIB re-announcement (one broadcast-sized update per edge). *)
      let tr = build_tree t ~src ~tree in
      t.repairs <- t.repairs + 1;
      t.repair_bytes <- t.repair_bytes + (Wire.broadcast_size * tree_edge_count tr ~root:src);
      Hashtbl.replace t.cache key tr;
      tr
  | None ->
      let tr = build_tree t ~src ~tree in
      Hashtbl.replace t.cache key tr;
      tr

let tree_valid t ~src ~tree =
  if tree < 0 || tree >= t.trees_per_source then invalid_arg "Broadcast: tree id out of range";
  let key = (src * t.trees_per_source) + tree in
  match Hashtbl.find_opt t.cache key with
  | Some tr -> tr.version = Topology.version t.topo || check_tree t ~src tr.parent
  | None -> Topology.node_alive t.topo src

let surviving_tree t ~src =
  let rec go tree =
    if tree >= t.trees_per_source then None
    else if tree_valid t ~src ~tree then Some tree
    else go (tree + 1)
  in
  go 0

let repair_all t =
  let before = t.repairs in
  Array.iter
    (fun key ->
      let src = key / t.trees_per_source and tree = key mod t.trees_per_source in
      ignore (get_tree t ~src ~tree))
    (Util.Tbl.sorted_keys ~cmp:Int.compare t.cache);
  t.repairs - before

let choose_tree t rng ~src:_ = Util.Rng.int rng t.trees_per_source

let children t ~src ~tree v = (get_tree t ~src ~tree).children.(v)
let parent t ~src ~tree v = (get_tree t ~src ~tree).parent.(v)
let depth t ~src ~tree = (get_tree t ~src ~tree).depth
let delivery_hops t ~src ~tree = (get_tree t ~src ~tree).hops

let edges t ~src ~tree =
  let tr = get_tree t ~src ~tree in
  let acc = ref [] in
  Array.iteri (fun v p -> if v <> src && p >= 0 then acc := (p, v) :: !acc) tr.parent;
  List.rev !acc

(* -- overhead model ------------------------------------------------------ *)

let bytes_per_broadcast topo = Wire.broadcast_size * (Topology.vertex_count topo - 1)

let relative_flow_overhead topo ~flow_bytes =
  let bcast = 2 * bytes_per_broadcast topo in
  let wire = float_of_int flow_bytes *. Topology.average_distance topo in
  float_of_int bcast /. wire

let analytic_overhead topo ~frac_small_bytes ~small_size ~large_size =
  if frac_small_bytes < 0.0 || frac_small_bytes > 1.0 then
    invalid_arg "Broadcast.analytic_overhead: fraction out of range";
  let per_flow = float_of_int (2 * bytes_per_broadcast topo) in
  let hops = Topology.average_distance topo in
  (* Per unit of payload bytes: flows/byte in each class times broadcast
     bytes per flow, against payload-bytes * average path length of wire
     traffic. *)
  let bcast_wire =
    (frac_small_bytes /. float_of_int small_size *. per_flow)
    +. ((1.0 -. frac_small_bytes) /. float_of_int large_size *. per_flow)
  in
  let data_wire = hops in
  bcast_wire /. (bcast_wire +. data_wire)
