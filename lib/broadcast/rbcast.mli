(** Reliable-broadcast bookkeeping for a lossy control plane.

    The flow-event broadcasts of §3.2 are only a usable traffic-matrix feed
    if every node can tell {e that} it missed a packet and recover it. This
    module provides the deterministic machinery both ends need:

    - the {e origin} stamps each broadcast with a per-(source, tree)
      monotonic sequence number, keeps a bounded replay log for answering
      NACKs, and maintains the authoritative live-flow set whose hash rides
      in anti-entropy digests;
    - the {e receive window} (one per (source, tree) at every node)
      delivers packets exactly once in sequence order, buffers reordered
      arrivals, surfaces gaps for NACK-based repair and absorbs duplicates.

    Everything here is pure data structure: timers, packet transport and
    topology stay with the caller, so the same code backs the packet
    simulator ([Sim.R2c2_sim]) and the application-level control plane
    ([R2c2.Stack]). Payloads are polymorphic — the simulator stores compact
    event ids, the stack stores decoded {!Wire.broadcast} records. *)

(** {2 Origin (sender) side} *)

type 'a origin

val origin : ?log_cap:int -> trees:int -> unit -> 'a origin
(** Sender state for one source owning [trees] broadcast trees. The replay
    log keeps the [log_cap] (default 65536) most recent packets per tree;
    older sequence numbers can no longer be retransmitted and must be
    recovered by a full-state sync. *)

val send : 'a origin -> tree:int -> 'a -> int
(** Assign the next sequence number on [tree], log the payload for
    retransmission, and return the sequence number to put on the wire. *)

val last_seq : 'a origin -> tree:int -> int
(** Highest sequence number assigned on [tree]; -1 if none yet. *)

val replay : 'a origin -> tree:int -> seq:int -> 'a option
(** Look up a logged packet for NACK retransmission; [None] once evicted. *)

val mark_live : 'a origin -> int -> unit
(** Record a flow id as live at this origin (sent with its start event). *)

val mark_dead : 'a origin -> int -> unit
(** Remove a flow id (sent with its finish event). *)

val live_ids : 'a origin -> int list
(** The live-flow ids, ascending — the payload of a full-state sync. *)

val live_count : 'a origin -> int
val state_hash : 'a origin -> int64
(** {!hash_ids} of {!live_ids} — what digests advertise. *)

val bump_epoch : 'a origin -> int
(** Advance and return the anti-entropy epoch counter. *)

val epoch : 'a origin -> int

val restart : 'a origin -> int
(** Crash-restart: wipe the replay logs, live set and sequence spaces (the
    node lost all soft state), bump the anti-entropy epoch, and advance the
    {e incarnation} — returned so the rejoin JOIN can announce it. Receive
    windows key their invalidation on the incarnation via {!ensure_epoch},
    {e not} on the epoch, which moves every digest round. *)

val incarnation : 'a origin -> int
(** Number of restarts this origin has gone through; 0 initially. *)

(** {2 Receive window (per source, per tree)} *)

type 'a rx

type 'a verdict =
  | Deliver of 'a list
      (** the packet (and any buffered successors) is deliverable now, in
          sequence order, each exactly once *)
  | Duplicate  (** already delivered or already buffered; drop *)
  | Buffered  (** arrived ahead of a gap; a repair should be scheduled *)

val rx : unit -> 'a rx
(** A fresh window expecting sequence number 0, keyed to incarnation 0. *)

val ensure_epoch : 'a rx -> epoch:int -> bool
(** Stale-window guard: call with the origin incarnation stamped on an
    incoming packet {e before} {!receive}. A higher incarnation than the
    window's drops all window state (pending buffer, sequence cursor,
    repair latch) and re-keys it — without this, the restarted origin's
    fresh sequence 0 would be absorbed as a duplicate of the pre-crash
    run. Returns false when the packet is from an older incarnation and
    must be ignored. *)

val rx_incarnation : 'a rx -> int
(** The origin incarnation the window is currently keyed to. *)

val receive : 'a rx -> seq:int -> 'a -> 'a verdict

val next_expected : 'a rx -> int
val pending_count : 'a rx -> int
(** Out-of-order packets currently buffered behind a gap. *)

val duplicates : 'a rx -> int
(** Packets absorbed as duplicates so far. *)

val missing : 'a rx -> upto:int -> (int * int) list
(** Inclusive gaps in [next_expected .. upto] not covered by buffered
    packets — the ranges a NACK should request. Empty when caught up. *)

val fast_forward : 'a rx -> next:int -> 'a list
(** After a full-state sync covering everything below [next]: drop the
    stale buffer entries, jump the window to [next], and return any
    buffered in-order run starting there (strictly newer than the sync, so
    the caller still applies it). No-op returning [[]] if the window is
    already at or past [next]. *)

val arm : 'a rx -> bool
(** Latch the caller's repair timer: true exactly when it was not armed,
    so only one timer per window is outstanding. *)

val disarm : 'a rx -> unit

(** {2 Deterministic state hash} *)

val hash_ids : int list -> int64
(** FNV-1a over the ids; callers feed them sorted ascending so every node
    hashes identical sets to identical values. *)
