(* Reliable-broadcast bookkeeping: per-(source, tree) sequence numbers on
   the sending side, receive windows with gap detection and dedup on the
   receiving side, and the deterministic state hash that anti-entropy
   digests carry. Pure data structures — timers, packets and topology live
   with the caller (R2c2_sim / Stack), which keeps this logic reusable by
   both the packet simulator and the application-level control plane. *)

(* -- deterministic state hash -------------------------------------------- *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let hash_fold h v = Int64.mul (Int64.logxor h (Int64.of_int v)) fnv_prime

(* Order-sensitive, so callers must feed ids sorted ascending (the
   accessors below do). *)
let hash_ids ids = List.fold_left hash_fold fnv_offset ids

(* -- origin (sender) side ------------------------------------------------- *)

type 'a origin = {
  trees : int;
  log_cap : int;
  next : int array;  (* per tree: next sequence number to assign *)
  logs : (int, 'a) Hashtbl.t array;  (* per tree: seq -> payload replay log *)
  live : (int, unit) Hashtbl.t;  (* authoritative live-flow id set *)
  mutable epoch : int;
  mutable inc : int;  (* incarnation: bumped by crash-restart, not by digests *)
}

let origin ?(log_cap = 65536) ~trees () =
  if trees < 1 then invalid_arg "Rbcast.origin: trees < 1";
  if log_cap < 1 then invalid_arg "Rbcast.origin: log_cap < 1";
  {
    trees;
    log_cap;
    next = Array.make trees 0;
    logs = Array.init trees (fun _ -> Hashtbl.create 16);
    live = Hashtbl.create 16;
    epoch = 0;
    inc = 0;
  }

let check_tree o tree =
  if tree < 0 || tree >= o.trees then invalid_arg "Rbcast: tree id out of range"

let send o ~tree payload =
  check_tree o tree;
  let seq = o.next.(tree) in
  o.next.(tree) <- seq + 1;
  Hashtbl.replace o.logs.(tree) seq payload;
  (* Dense sequence space: evicting [seq - cap] on every send bounds the
     log at [cap] entries without a scan. *)
  if seq >= o.log_cap then Hashtbl.remove o.logs.(tree) (seq - o.log_cap);
  seq

let last_seq o ~tree =
  check_tree o tree;
  o.next.(tree) - 1

let replay o ~tree ~seq =
  check_tree o tree;
  Hashtbl.find_opt o.logs.(tree) seq

let mark_live o id = Hashtbl.replace o.live id ()
let mark_dead o id = Hashtbl.remove o.live id
let live_ids o = Array.to_list (Util.Tbl.sorted_keys ~cmp:Int.compare o.live)
let live_count o = Hashtbl.length o.live
let state_hash o = hash_ids (live_ids o)

let bump_epoch o =
  o.epoch <- o.epoch + 1;
  o.epoch

let epoch o = o.epoch

(* Crash-restart: the node lost every bit of its soft state, so the origin
   comes back cold — empty logs, sequence spaces at 0, no live flows —
   under a fresh incarnation. The incarnation, not the anti-entropy epoch
   (which [bump_epoch] advances every digest round), is what receive
   windows key their invalidation on: a window seeing a higher incarnation
   than its own drops itself and restarts from sequence 0. *)
let restart o =
  Array.fill o.next 0 (Array.length o.next) 0;
  Array.iter Hashtbl.reset o.logs;
  Hashtbl.reset o.live;
  o.epoch <- o.epoch + 1;
  o.inc <- o.inc + 1;
  o.inc

let incarnation o = o.inc

(* -- receive window (per source, per tree) -------------------------------- *)

type 'a rx = {
  mutable rnext : int;  (* next expected sequence number *)
  pending : (int, 'a) Hashtbl.t;  (* out-of-order buffer: seq -> payload *)
  mutable dups : int;
  mutable armed : bool;  (* caller's repair-timer latch *)
  mutable rinc : int;  (* origin incarnation this window is keyed to *)
}

type 'a verdict =
  | Deliver of 'a list  (* in-order run, oldest first *)
  | Duplicate
  | Buffered  (* out of order: a gap is now open *)

let rx () =
  { rnext = 0; pending = Hashtbl.create 8; dups = 0; armed = false; rinc = 0 }

let next_expected r = r.rnext
let pending_count r = Hashtbl.length r.pending
let duplicates r = r.dups
let rx_incarnation r = r.rinc

(* The stale-window guard (satellite of the crash-restart protocol): a
   window still keyed to a pre-crash incarnation MUST drop its state the
   moment it learns of a newer one, or the restarted origin's fresh
   sequence space collides with the old window — seq 0 of the new
   incarnation would be absorbed as a duplicate and never delivered.
   Returns whether a packet stamped with [epoch] should be processed at
   all: packets from an older incarnation are stale and must be ignored. *)
let ensure_epoch r ~epoch =
  if epoch < r.rinc then false
  else begin
    if epoch > r.rinc then begin
      Hashtbl.reset r.pending;
      r.rnext <- 0;
      r.armed <- false;
      r.rinc <- epoch
    end;
    true
  end

let drain r acc =
  let rec go acc =
    match Hashtbl.find_opt r.pending r.rnext with
    | Some p ->
        Hashtbl.remove r.pending r.rnext;
        r.rnext <- r.rnext + 1;
        go (p :: acc)
    | None -> List.rev acc
  in
  go acc

let receive r ~seq payload =
  if seq < 0 then invalid_arg "Rbcast.receive: negative seq";
  if seq < r.rnext || Hashtbl.mem r.pending seq then begin
    r.dups <- r.dups + 1;
    Duplicate
  end
  else if seq = r.rnext then begin
    r.rnext <- r.rnext + 1;
    Deliver (drain r [ payload ])
  end
  else begin
    Hashtbl.replace r.pending seq payload;
    Buffered
  end

let missing r ~upto =
  let out = ref [] in
  let from = ref (-1) in
  for s = r.rnext to upto do
    if Hashtbl.mem r.pending s then begin
      if !from >= 0 then begin
        out := (!from, s - 1) :: !out;
        from := -1
      end
    end
    else if !from < 0 then from := s
  done;
  if !from >= 0 then out := (!from, upto) :: !out;
  List.rev !out

let fast_forward r ~next =
  if next <= r.rnext then []
  else begin
    (* Everything below [next] is already reflected in the synced state;
       buffered events at or above it are strictly newer and still apply. *)
    Array.iter
      (fun s -> if s < next then Hashtbl.remove r.pending s)
      (Util.Tbl.sorted_keys ~cmp:Int.compare r.pending);
    r.rnext <- next;
    drain r []
  end

let arm r =
  if r.armed then false
  else begin
    r.armed <- true;
    true
  end

let disarm r = r.armed <- false
