(** Rack-wide broadcast of flow events (paper §3.2).

    Every source owns several shortest-path spanning trees of the rack;
    a broadcast packet carries [(source, tree-id)] and intermediate nodes
    forward it to their children in that tree via a broadcast FIB. Using
    several trees per source load-balances the broadcast traffic and gives
    alternatives under failures. *)

type t

val make : ?trees_per_source:int -> Topology.t -> t
(** Build the broadcast FIB machinery (default 4 trees per source). Trees
    are constructed lazily per source and cached. *)

val topo : t -> Topology.t
val trees_per_source : t -> int

val choose_tree : t -> Util.Rng.t -> src:int -> int
(** Tree id for the next broadcast, drawn uniformly to spread load. *)

(** {2 Failure-aware tree repair}

    Cached trees are stamped with {!Topology.version}. After a fail/restore,
    the next access to a tree re-validates it: a tree crossing a dead link
    or node (or missing a newly reachable vertex) is rebuilt on the
    surviving graph and the FIB re-announcement traffic is accounted; trees
    untouched by the failure are kept as-is. *)

val tree_valid : t -> src:int -> tree:int -> bool
(** Whether the (cached) tree still covers every alive reachable vertex over
    alive links. An unbuilt tree is valid iff the source is alive (it would
    be built on the surviving graph). *)

val surviving_tree : t -> src:int -> int option
(** Lowest tree id of [src] that is currently valid without a rebuild —
    the "alternative tree" fallback of §3.2 — or [None] if every tree of
    this source crosses a failure. *)

val repair_all : t -> int
(** Re-validate every cached tree, rebuilding the broken ones; returns how
    many were rebuilt. *)

val repairs : t -> int
(** Cumulative number of tree rebuilds caused by failures. *)

val repair_bytes : t -> int
(** Cumulative control traffic charged for repairs: one broadcast-sized FIB
    update per edge of each rebuilt tree. *)

val children : t -> src:int -> tree:int -> int -> int list
(** FIB lookup: nodes to which a vertex forwards a [(src, tree)] broadcast
    packet. *)

val parent : t -> src:int -> tree:int -> int -> int
(** Parent of a vertex in the tree ([src] is its own parent). *)

val depth : t -> src:int -> tree:int -> int
(** Maximum hop count from the source to any vertex — the broadcast time in
    hops. *)

val edges : t -> src:int -> tree:int -> (int * int) list
(** Tree edges as (parent, child) pairs; [Topology.vertex_count - 1] of
    them. *)

val delivery_hops : t -> src:int -> tree:int -> int array
(** Per-vertex hop distance from the source along the tree. *)

(** {2 Overhead model (paper §3.2 and Fig. 9)} *)

val bytes_per_broadcast : Topology.t -> int
(** Total wire bytes of one 16-byte broadcast: 16 * (vertices - 1). *)

val analytic_overhead :
  Topology.t -> frac_small_bytes:float -> small_size:int -> large_size:int -> float
(** Fraction of total wire traffic consumed by flow-event broadcasts when a
    [frac_small_bytes] fraction of all payload bytes travels in flows of
    [small_size] bytes and the rest in flows of [large_size] bytes; every
    flow broadcasts a start and a finish event. Matches §3.2's examples:
    26.66%-per-10KB-flow relative overhead, 1.3% of capacity when 5% of
    bytes are in small flows. *)

val relative_flow_overhead : Topology.t -> flow_bytes:int -> float
(** Broadcast bytes (start + finish) over the expected wire bytes of a flow
    of the given size under minimal routing. *)
