(** Per-flow routing-protocol selection maximizing rack utility (paper
    §3.4, evaluated in Fig. 18).

    §3.4: "Example utility metrics include the rack's aggregate throughput
    or the tail throughput, as measured across tenants or even across jobs
    and application tasks." All three are provided; the selector encodes
    one gene per flow and searches protocol assignments with the genetic
    algorithm, seeding the uniform single-protocol assignments so the
    result is never below those baselines. *)

type utility =
  | Aggregate_throughput  (** sum of allocated rates *)
  | Tail_throughput  (** minimum allocated flow rate *)
  | Tenant_tail of int array
      (** minimum over tenants of the tenant's summed rate; the array maps
          each flow index to its tenant *)

type t

val make :
  ?headroom:Util.Units.fraction ->
  ?choices:Routing.protocol array ->
  ?utility:utility ->
  Routing.ctx ->
  link_gbps:Util.Units.gbps ->
  t
(** [choices] defaults to [RPS; VLB] — the two protocols the paper's Fig. 18
    experiment selects between; [utility] defaults to
    [Aggregate_throughput]. *)

val aggregate_throughput_gbps :
  t -> flows:(int * int) array -> Routing.protocol array -> Util.Units.gbps
(** Sum of allocated rates under one assignment, regardless of the
    configured utility. *)

val utility_gbps :
  t -> flows:(int * int) array -> Routing.protocol array -> Util.Units.gbps
(** The configured utility of one assignment for the given (src, dst)
    flows. Raises [Invalid_argument] if a [Tenant_tail] map has the wrong
    length. *)

val uniform : t -> flows:(int * int) array -> Routing.protocol -> Util.Units.gbps
(** Utility when every flow uses the same protocol (the RPS/VLB
    baselines). *)

val random_assignment : t -> Util.Rng.t -> flows:(int * int) array -> Routing.protocol array

val select :
  ?pop_size:int ->
  ?mutation:float ->
  ?generations:int ->
  t ->
  Util.Rng.t ->
  flows:(int * int) array ->
  init:Routing.protocol array ->
  Routing.protocol array * Util.Units.gbps
(** GA search (population 100, mutation 0.01 by default) seeded with the
    current assignment and the uniform assignments; returns the best
    assignment and its utility. *)
