type utility =
  | Aggregate_throughput
  | Tail_throughput
  | Tenant_tail of int array

module U = Util.Units

type t = {
  ctx : Routing.ctx;
  headroom : U.fraction;
  choices : Routing.protocol array;
  utility : utility;
  capacities : U.byte_rate array;
}

let make ?(headroom = U.fraction 0.0) ?(choices = [| Routing.Rps; Routing.Vlb |])
    ?(utility = Aggregate_throughput) ctx ~link_gbps =
  if Array.length choices = 0 then invalid_arg "Selector.make: no protocol choices";
  let nl = Topology.link_count (Routing.topo ctx) in
  {
    ctx;
    headroom;
    choices;
    utility;
    capacities = Array.make nl (U.byte_rate_of_gbps link_gbps);
  }

let rates_of t ~flows assignment =
  if Array.length assignment <> Array.length flows then
    invalid_arg "Selector: assignment length mismatch";
  let wf =
    Array.mapi
      (fun i (src, dst) ->
        Congestion.Waterfill.flow ~id:i (Routing.fractions t.ctx assignment.(i) ~src ~dst))
      flows
  in
  U.floats_of (Congestion.Waterfill.allocate ~headroom:t.headroom ~capacities:t.capacities wf)

let aggregate_throughput_gbps t ~flows assignment =
  U.gbps (8.0 *. Array.fold_left ( +. ) 0.0 (rates_of t ~flows assignment))

let utility_gbps t ~flows assignment =
  let rates = rates_of t ~flows assignment in
  match t.utility with
  | Aggregate_throughput -> U.gbps (8.0 *. Array.fold_left ( +. ) 0.0 rates)
  | Tail_throughput ->
      if Array.length rates = 0 then U.gbps 0.0
      else U.gbps (8.0 *. Array.fold_left Float.min rates.(0) rates)
  | Tenant_tail tenants ->
      if Array.length tenants <> Array.length flows then
        invalid_arg "Selector: tenant map length mismatch";
      let totals = Hashtbl.create 8 in
      Array.iteri
        (fun i r ->
          let tnt = tenants.(i) in
          Hashtbl.replace totals tnt (r +. Option.value ~default:0.0 (Hashtbl.find_opt totals tnt)))
        rates;
      let worst = Util.Tbl.fold_sorted ~cmp:Int.compare (fun _ v acc -> Float.min v acc) totals infinity in
      if worst = infinity then U.gbps 0.0 else U.gbps (8.0 *. worst)

let uniform t ~flows proto = utility_gbps t ~flows (Array.make (Array.length flows) proto)

let random_assignment t rng ~flows =
  Array.init (Array.length flows) (fun _ -> Util.Rng.pick rng t.choices)

let select ?(pop_size = 100) ?(mutation = 0.01) ?(generations = 30) t rng ~flows ~init =
  let encode assignment =
    Array.map
      (fun proto ->
        let rec find i =
          if i >= Array.length t.choices then
            invalid_arg "Selector.select: init uses a protocol outside choices"
          else if t.choices.(i) = proto then i
          else find (i + 1)
        in
        find 0)
      assignment
  in
  let decode genes = Array.map (fun g -> t.choices.(g)) genes in
  let problem =
    {
      Ga.genes = Array.length flows;
      choices = Array.length t.choices;
      fitness = (fun genes -> U.to_float (utility_gbps t ~flows (decode genes)));
    }
  in
  (* Seed the uniform single-protocol assignments so the search can never
     end below the all-RPS / all-VLB baselines (elitism keeps them). *)
  let seeds =
    List.init (Array.length t.choices) (fun c -> Array.make (Array.length flows) c)
  in
  let best, fit =
    Ga.optimize ~pop_size ~mutation ~generations ~seeds rng problem ~init:(encode init)
  in
  (decode best, U.gbps fit)
