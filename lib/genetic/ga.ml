type problem = {
  genes : int;
  choices : int;
  fitness : int array -> float;
}

let random_genotype rng p = Array.init p.genes (fun _ -> Util.Rng.int rng p.choices)

let mutate rng p rate g =
  Array.map (fun x -> if Util.Rng.float rng 1.0 < rate then Util.Rng.int rng p.choices else x) g

let crossover rng a b =
  let n = Array.length a in
  if n < 2 then Array.copy a
  else begin
    let cut = 1 + Util.Rng.int rng (n - 1) in
    Array.init n (fun i -> if i < cut then a.(i) else b.(i))
  end

let tournament rng scored =
  let n = Array.length scored in
  let a = Util.Rng.int rng n and b = Util.Rng.int rng n in
  let (ga, fa) = scored.(a) and (gb, fb) = scored.(b) in
  if fa >= fb then ga else gb

let sort_desc scored = Array.sort (fun (_, a) (_, b) -> Float.compare b a) scored

let optimize ?(pop_size = 100) ?(mutation = 0.01) ?(elite = 5) ?(generations = 30)
    ?(patience = 8) ?(seeds = []) rng p ~init =
  if Array.length init <> p.genes then invalid_arg "Ga.optimize: init length mismatch";
  List.iter
    (fun s -> if Array.length s <> p.genes then invalid_arg "Ga.optimize: seed length mismatch")
    seeds;
  if p.genes = 0 then ([||], p.fitness [||])
  else begin
    let score g = (g, p.fitness g) in
    let seeds = Array.of_list (init :: seeds) in
    let pop =
      Array.init pop_size (fun i ->
          if i < Array.length seeds then score seeds.(i) else score (random_genotype rng p))
    in
    sort_desc pop;
    let best = ref pop.(0) in
    let stale = ref 0 in
    let gen = ref 0 in
    while !gen < generations && !stale < patience do
      incr gen;
      let next =
        Array.init pop_size (fun i ->
            if i < elite then pop.(i)
            else begin
              let a = tournament rng pop and b = tournament rng pop in
              score (mutate rng p mutation (crossover rng a b))
            end)
      in
      Array.blit next 0 pop 0 pop_size;
      sort_desc pop;
      if snd pop.(0) > snd !best then begin
        best := pop.(0);
        stale := 0
      end
      else incr stale
    done;
    !best
  end

let hill_climb ?(iterations = 500) rng p ~init =
  let cur = ref (Array.copy init) in
  let cur_fit = ref (p.fitness !cur) in
  for _ = 1 to iterations do
    if p.genes > 0 then begin
      let i = Util.Rng.int rng p.genes in
      let old = !cur.(i) in
      let cand = Util.Rng.int rng p.choices in
      if cand <> old then begin
        !cur.(i) <- cand;
        let f = p.fitness !cur in
        if f > !cur_fit then cur_fit := f else !cur.(i) <- old
      end
    end
  done;
  (!cur, !cur_fit)

let simulated_annealing ?(iterations = 500) ?(t0 = 1.0) ?(cooling = 0.99) rng p ~init =
  let cur = Array.copy init in
  let cur_fit = ref (p.fitness cur) in
  let best = ref (Array.copy cur) in
  let best_fit = ref !cur_fit in
  let temp = ref t0 in
  for _ = 1 to iterations do
    if p.genes > 0 then begin
      let i = Util.Rng.int rng p.genes in
      let old = cur.(i) in
      cur.(i) <- Util.Rng.int rng p.choices;
      let f = p.fitness cur in
      let accept =
        f >= !cur_fit
        || Util.Rng.float rng 1.0 < exp ((f -. !cur_fit) /. Float.max 1e-9 !temp)
      in
      if accept then begin
        cur_fit := f;
        if f > !best_fit then begin
          best_fit := f;
          best := Array.copy cur
        end
      end
      else cur.(i) <- old;
      temp := !temp *. cooling
    end
  done;
  (!best, !best_fit)

let random_search ?(iterations = 200) rng p =
  let best = ref (random_genotype rng p) in
  let best_fit = ref (p.fitness !best) in
  for _ = 2 to iterations do
    let g = random_genotype rng p in
    let f = p.fitness g in
    if f > !best_fit then begin
      best := g;
      best_fit := f
    end
  done;
  (!best, !best_fit)
