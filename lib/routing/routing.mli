(** Routing protocols for direct-connect rack topologies.

    Four protocols from the paper (§2.2.1):
    - {b RPS} — randomized packet spraying: every packet takes an independent
      uniformly-drawn shortest path.
    - {b DOR} — destination-tag / dimension-order routing: one deterministic
      shortest path, correcting coordinates dimension by dimension.
    - {b VLB} — Valiant load balancing: every packet bounces off a uniformly
      random intermediate host, taking a random minimal path per phase.
    - {b WLB} — weighted load balancing: like VLB but the waypoint is drawn
      with probability biased towards shorter total paths.

    Besides per-packet path sampling (data plane), the module computes a
    flow's {e link fractions}: the expected fraction of the flow's rate
    crossing each directed link, which is what the paper's flow-level rate
    computation consumes (§3.3). Fraction computation is cached per
    (protocol, src, dst) inside a {!ctx}. *)

type protocol = Rps | Dor | Vlb | Wlb

val all_protocols : protocol list
val protocol_to_int : protocol -> int
val protocol_of_int : int -> protocol option
val protocol_name : protocol -> string
val pp_protocol : Format.formatter -> protocol -> unit

type ctx
(** Per-topology routing context holding fraction caches. The caches are
    stamped with {!Topology.version} and flushed automatically after any
    fail/restore, so sampled paths never emit a dead link and fractions
    reflect the surviving graph: DOR detours over the surviving
    shortest-path DAG when its coordinate path crosses a dead link, VLB
    resamples waypoints that died or were cut off, and WLB gives them zero
    weight. Sampling a path or fractions towards an unreachable
    destination raises [Invalid_argument]. *)

val make : Topology.t -> ctx
val topo : ctx -> Topology.t

(** {2 Data plane: per-packet path sampling} *)

val sample_path : ctx -> Util.Rng.t -> protocol -> src:int -> dst:int -> int array
(** Vertex sequence [src; ...; dst] of one packet's path. For RPS/DOR the
    path is minimal; for VLB/WLB it concatenates two minimal phases through
    a waypoint. [src <> dst] required. *)

val ecmp_path : ctx -> flow_id:int -> src:int -> dst:int -> int array
(** Deterministic shortest path chosen by hashing the flow identifier — the
    single-path routing used under the TCP baseline. *)

val path_links : ctx -> int array -> int array
(** Directed-link ids along a vertex path. Raises if consecutive vertices
    are not adjacent. *)

val sample_paths_distinct : ctx -> Util.Rng.t -> k:int -> src:int -> dst:int -> int array list
(** Up to [k] distinct minimal vertex paths (used by the idealized per-flow
    queue baseline). *)

(** {2 Control plane: link fractions} *)

val fractions :
  ctx -> protocol -> src:int -> dst:int -> (int * Util.Units.fraction) array
(** [fractions ctx p ~src ~dst] lists [(link_id, f)] with [f] the expected
    rate fraction of a [src]->[dst] flow under protocol [p] on that link;
    entries with zero fraction are omitted. For minimal protocols the
    fractions out of [src] sum to 1; for VLB/WLB a link can carry both
    phases so per-link fractions may exceed shortest-path values. *)

val min_path_fractions :
  ctx -> src:int -> dst:int -> (int * Util.Units.fraction) array
(** Fractions of uniform packet spraying over shortest paths (the RPS data
    plane); exposed for analysis and tests. *)

val wlb_beta : float
(** Path-length bias of WLB: waypoint [w] is drawn with probability
    proportional to [wlb_beta ^ (d(s,w) + d(w,d) - d(s,d))]. *)

(** {2 Gray-failure quarantine}

    A flaky link is not dead, so deleting it (the fail/restore overlay)
    would be both wrong and unobservable — once no traffic crosses the
    link, nothing can notice it recovering. Instead the health estimator
    {e demotes} a suspect cable: its sampling weight in spraying
    ([Healthy] 1.0, [Probation] {!probation_weight}, [Quarantined]
    {!quarantine_weight}) shrinks, the fraction DP splits mass by the same
    weights, and VLB/WLB waypoints sitting behind a quarantined cable are
    kept only with the demoted weight. The residual trickle keeps probing
    the link so probation can observe recovery. Health transitions flush
    the fraction caches exactly like a topology fail/restore. With no
    demoted links every code path — including the RNG draw sequence — is
    the exact pre-quarantine one. *)

type health = Healthy | Probation | Quarantined

val probation_weight : float
(** 0.5 — a link on probation carries half its healthy sampling weight. *)

val quarantine_weight : float
(** 0.125 — the quarantined trickle. *)

val note_suspect : ctx -> int -> int -> unit
(** Quarantine the cable between adjacent vertices (both directions).
    Raises [Invalid_argument] if not adjacent. *)

val note_probation : ctx -> int -> int -> unit
(** Begin probation: the link earns back half weight while the estimator
    watches whether its loss stays low. *)

val note_recovered : ctx -> int -> int -> unit
(** Full weight restored. *)

val link_health : ctx -> int -> int -> health

val demoted_links : ctx -> int
(** Directed links currently not [Healthy]; 0 guarantees the legacy
    sampling paths. *)
