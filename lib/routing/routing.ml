type protocol = Rps | Dor | Vlb | Wlb

let all_protocols = [ Rps; Dor; Vlb; Wlb ]

let protocol_to_int = function Rps -> 0 | Dor -> 1 | Vlb -> 2 | Wlb -> 3

let protocol_of_int = function
  | 0 -> Some Rps
  | 1 -> Some Dor
  | 2 -> Some Vlb
  | 3 -> Some Wlb
  | _ -> None

let protocol_name = function Rps -> "RPS" | Dor -> "DOR" | Vlb -> "VLB" | Wlb -> "WLB"
let pp_protocol ppf p = Format.pp_print_string ppf (protocol_name p)

let wlb_beta = 0.5

(* Gray-failure quarantine (DESIGN.md §12): a suspect link is demoted, not
   deleted — its sampling weight shrinks so spraying, waypoint choice and
   the fraction DP route most (but not all) traffic around it, and the
   residual trickle keeps probing it so probation can observe recovery. *)
type health = Healthy | Probation | Quarantined

let probation_weight = 0.5
let quarantine_weight = 0.125
let hrank = function Healthy -> 0 | Probation -> 1 | Quarantined -> 2

let hweight = function
  | Healthy -> 1.0
  | Probation -> probation_weight
  | Quarantined -> quarantine_weight

type ctx = {
  topo : Topology.t;
  frac_cache : (int, (int * float) array) Hashtbl.t;
      (* key = (protocol, src, dst) packed; sparse link fractions *)
  vlb_a : (int, float array) Hashtbl.t;  (* per source: sum over waypoints of minimal fractions *)
  vlb_b : (int, float array) Hashtbl.t;  (* per destination *)
  wlb_dist : (int, float array) Hashtbl.t;  (* per (src,dst): waypoint prefix weights *)
  mutable cache_version : int;  (* combined stamp the caches were built against *)
  quar : (int, health) Hashtbl.t;  (* per directed link; absent = Healthy *)
  mutable demoted : int;  (* directed links currently not Healthy *)
  mutable quar_version : int;  (* bumped on every health transition *)
}

let make topo =
  {
    topo;
    frac_cache = Hashtbl.create 1024;
    vlb_a = Hashtbl.create 64;
    vlb_b = Hashtbl.create 64;
    wlb_dist = Hashtbl.create 256;
    cache_version = Topology.version topo;
    quar = Hashtbl.create 16;
    demoted = 0;
    quar_version = 0;
  }

(* Every cached structure bakes in the down-state and link-health it was
   computed under; flush wholesale when either version moved. Both counters
   only grow, so their sum is a monotone combined stamp. *)
let sync ctx =
  let v = Topology.version ctx.topo + ctx.quar_version in
  if v <> ctx.cache_version then begin
    Hashtbl.reset ctx.frac_cache;
    Hashtbl.reset ctx.vlb_a;
    Hashtbl.reset ctx.vlb_b;
    Hashtbl.reset ctx.wlb_dist;
    ctx.cache_version <- v
  end

let topo ctx = ctx.topo

(* -- link-health state machine ------------------------------------------ *)

let link_weight ctx l =
  match Hashtbl.find_opt ctx.quar l with None -> 1.0 | Some h -> hweight h

let quar_cable ctx u v =
  match (Topology.find_link ctx.topo u v, Topology.find_link ctx.topo v u) with
  | Some a, Some b -> (a, b)
  | _ -> invalid_arg "Routing: vertices not adjacent"

let set_health ctx u v h =
  let a, b = quar_cable ctx u v in
  let set l =
    let cur =
      match Hashtbl.find_opt ctx.quar l with None -> Healthy | Some x -> x
    in
    if hrank cur <> hrank h then begin
      (match h with
      | Healthy ->
          Hashtbl.remove ctx.quar l;
          ctx.demoted <- ctx.demoted - 1
      | Probation | Quarantined ->
          if hrank cur = 0 then ctx.demoted <- ctx.demoted + 1;
          Hashtbl.replace ctx.quar l h);
      ctx.quar_version <- ctx.quar_version + 1
    end
  in
  set a;
  set b

let note_suspect ctx u v = set_health ctx u v Quarantined
let note_probation ctx u v = set_health ctx u v Probation
let note_recovered ctx u v = set_health ctx u v Healthy

let link_health ctx u v =
  let a, _ = quar_cable ctx u v in
  match Hashtbl.find_opt ctx.quar a with None -> Healthy | Some h -> h

let demoted_links ctx = ctx.demoted

(* A waypoint sitting behind a quarantined cable is demoted from VLB/WLB
   waypoint choice with the same weight the cable itself gets. Checked
   only when something is demoted, so clean runs pay nothing. *)
let node_shadowed ctx w =
  ctx.demoted > 0
  && Array.exists
       (fun (_, l) ->
         match Hashtbl.find_opt ctx.quar l with
         | Some Quarantined -> true
         | Some (Healthy | Probation) | None -> false)
       (Topology.out_links ctx.topo w)

let pack ctx p ~src ~dst =
  let n = Topology.vertex_count ctx.topo in
  ((protocol_to_int p * n) + src) * n + dst

(* -- path sampling ------------------------------------------------------ *)

let walk_minimal ctx rng ~src ~dst =
  (* Random shortest path: spray uniformly over productive hops at every
     vertex — health-weighted instead when any link is demoted. The
     [demoted = 0] branch is the exact legacy draw, so runs without
     quarantine consume the identical RNG stream. *)
  let rec go acc u =
    if u = dst then List.rev (dst :: acc)
    else begin
      let hops = Topology.productive_hops ctx.topo u ~dst in
      if Array.length hops = 0 then invalid_arg "Routing: destination unreachable";
      let v =
        if ctx.demoted = 0 then fst (Util.Rng.pick rng hops)
        else begin
          let weights = Array.map (fun (_, l) -> link_weight ctx l) hops in
          fst hops.(Util.Rng.categorical rng weights)
        end
      in
      go (u :: acc) v
    end
  in
  Array.of_list (go [] src)

let path_alive ctx path =
  let t = ctx.topo in
  let ok = ref true in
  for i = 0 to Array.length path - 2 do
    match Topology.find_link t path.(i) path.(i + 1) with
    | Some l -> if not (Topology.link_alive t l) then ok := false
    | None -> ok := false
  done;
  !ok

(* Dimension-ordered paths. On a torus an exact half-way offset can be
   corrected in either wrap direction; destination-tag routing uses both
   evenly, so we enumerate every tie combination with its probability
   (at most 2^dims weighted paths). *)
let dor_torus_paths ctx ~src ~dst =
  let t = ctx.topo in
  let dims = match Topology.kind t with
    | Topology.Torus d | Topology.Mesh d -> d
    | Topology.Clos _ | Topology.Flattened_butterfly _ | Topology.Custom _ -> assert false
  in
  let wrap =
    match Topology.kind t with
    | Topology.Torus _ -> true
    | Topology.Mesh _ | Topology.Clos _ | Topology.Flattened_butterfly _ | Topology.Custom _ ->
        false
  in
  let cd = Topology.coords t dst in
  (* steps_choices.(i): list of (step, probability) for dimension i. *)
  let c0 = Topology.coords t src in
  let choices =
    Array.mapi
      (fun i k ->
        if c0.(i) = cd.(i) then [ (0, 1.0) ]
        else if not wrap then [ ((if cd.(i) > c0.(i) then 1 else -1), 1.0) ]
        else begin
          let fwd = (cd.(i) - c0.(i) + k) mod k in
          if fwd < k - fwd then [ (1, 1.0) ]
          else if fwd > k - fwd then [ (-1, 1.0) ]
          else [ (1, 0.5); (-1, 0.5) ]
        end)
      dims
  in
  let rec expand i acc_steps acc_prob =
    if i = Array.length dims then begin
      let c = Array.copy c0 in
      let path = ref [ src ] in
      List.iteri
        (fun dim step ->
          let k = dims.(dim) in
          while c.(dim) <> cd.(dim) do
            c.(dim) <- (c.(dim) + step + k) mod k;
            path := Topology.of_coords t c :: !path
          done)
        (List.rev acc_steps);
      [ (Array.of_list (List.rev !path), acc_prob) ]
    end
    else
      List.concat_map
        (fun (step, p) -> expand (i + 1) (step :: acc_steps) (acc_prob *. p))
        choices.(i)
  in
  expand 0 [] 1.0

let dor_torus_path ctx rng ~src ~dst =
  let paths = dor_torus_paths ctx ~src ~dst in
  match paths with
  | [ (p, _) ] -> p
  | _ ->
      let weights = Array.of_list (List.map snd paths) in
      let i = Util.Rng.categorical rng weights in
      fst (List.nth paths i)

let deterministic_min_path ctx ~src ~dst =
  (* Fallback single shortest path for non-grid topologies: lowest-id
     productive hop at every step. *)
  let rec go acc u =
    if u = dst then List.rev (dst :: acc)
    else begin
      let hops = Topology.productive_hops ctx.topo u ~dst in
      let best =
        Array.fold_left
          (fun best (v, _) -> match best with Some b when b <= v -> best | _ -> Some v)
          None hops
      in
      match best with
      | Some v -> go (u :: acc) v
      | None -> invalid_arg "Routing: destination unreachable"
    end
  in
  Array.of_list (go [] src)

let dor_path ctx rng ~src ~dst =
  match Topology.kind ctx.topo with
  | Topology.Torus _ | Topology.Mesh _ ->
      let p = dor_torus_path ctx rng ~src ~dst in
      (* Dimension-order paths ignore down-state; detour on the surviving
         shortest-path DAG when the coordinate path crosses a dead link. *)
      if path_alive ctx p then p else walk_minimal ctx rng ~src ~dst
  | Topology.Clos _ | Topology.Flattened_butterfly _ | Topology.Custom _ ->
      deterministic_min_path ctx ~src ~dst

let dor_paths_weighted ctx ~src ~dst =
  match Topology.kind ctx.topo with
  | Topology.Torus _ | Topology.Mesh _ -> dor_torus_paths ctx ~src ~dst
  | Topology.Clos _ | Topology.Flattened_butterfly _ | Topology.Custom _ ->
      [ (deterministic_min_path ctx ~src ~dst, 1.0) ]

let concat_phases p1 p2 =
  (* [p1] ends where [p2] starts; drop the duplicated waypoint. *)
  Array.append p1 (Array.sub p2 1 (Array.length p2 - 1))

let wlb_waypoint_weights ctx ~src ~dst =
  let key = (src * Topology.vertex_count ctx.topo) + dst in
  match Hashtbl.find_opt ctx.wlb_dist key with
  | Some w -> w
  | None ->
      let t = ctx.topo in
      let h = Topology.host_count t in
      let base = Topology.distance t src dst in
      if base = max_int then invalid_arg "Routing: destination unreachable";
      let weights =
        Array.init h (fun w ->
            let dsw = Topology.distance t src w and dwd = Topology.distance t w dst in
            (* Dead or cut-off waypoints get zero weight; shadowed ones are
               demoted, not deleted. *)
            if dsw = max_int || dwd = max_int then 0.0
            else begin
              let base_w = wlb_beta ** float_of_int (dsw + dwd - base) in
              if node_shadowed ctx w then base_w *. quarantine_weight
              else base_w
            end)
      in
      (* Prefix sums for O(log n) sampling. *)
      let prefix = Array.make h 0.0 in
      let acc = ref 0.0 in
      for i = 0 to h - 1 do
        acc := !acc +. weights.(i);
        prefix.(i) <- !acc
      done;
      Hashtbl.replace ctx.wlb_dist key prefix;
      prefix

let sample_prefix rng prefix =
  let total = prefix.(Array.length prefix - 1) in
  let x = Util.Rng.float rng total in
  (* Binary search for the first prefix >= x. *)
  let lo = ref 0 and hi = ref (Array.length prefix - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if prefix.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let two_phase ctx rng ~src ~dst w =
  if w = src then walk_minimal ctx rng ~src ~dst
  else if w = dst then walk_minimal ctx rng ~src ~dst
  else concat_phases (walk_minimal ctx rng ~src ~dst:w) (walk_minimal ctx rng ~src:w ~dst)

let sample_path ctx rng p ~src ~dst =
  if src = dst then invalid_arg "Routing.sample_path: src = dst";
  sync ctx;
  match p with
  | Rps -> walk_minimal ctx rng ~src ~dst
  | Dor -> dor_path ctx rng ~src ~dst
  | Vlb ->
      let t = ctx.topo in
      let h = Topology.host_count t in
      (* Resample until the waypoint is alive and connects both phases;
         degenerate to a single minimal phase if none is found quickly.
         A quarantine-shadowed waypoint is kept only with its demoted
         weight (never outright rejected forever: the last try accepts),
         so suspect regions still see a probing trickle. *)
      let rec draw tries =
        if tries = 0 then src
        else begin
          let w = Util.Rng.int rng h in
          if w = src || w = dst then w
          else if Topology.reachable t src w && Topology.reachable t w dst then
            if
              node_shadowed ctx w
              && tries > 1
              && Util.Rng.float rng 1.0 >= quarantine_weight
            then draw (tries - 1)
            else w
          else draw (tries - 1)
        end
      in
      two_phase ctx rng ~src ~dst (draw 32)
  | Wlb ->
      let prefix = wlb_waypoint_weights ctx ~src ~dst in
      let w = sample_prefix rng prefix in
      let marginal = if w = 0 then prefix.(0) else prefix.(w) -. prefix.(w - 1) in
      (* A zero-weight (dead) waypoint can only surface on an exact
         prefix-sum tie; degrade to the single minimal phase. *)
      let w = if marginal > 0.0 then w else src in
      two_phase ctx rng ~src ~dst w

let ecmp_path ctx ~flow_id ~src ~dst =
  sync ctx;
  let seed = (flow_id * 1000003) lxor (src * 8191) lxor dst in
  let rng = Util.Rng.create seed in
  walk_minimal ctx rng ~src ~dst

let path_links ctx path =
  Array.init
    (Array.length path - 1)
    (fun i ->
      match Topology.find_link ctx.topo path.(i) path.(i + 1) with
      | Some l -> l
      | None -> invalid_arg "Routing.path_links: non-adjacent vertices")

let sample_paths_distinct ctx rng ~k ~src ~dst =
  sync ctx;
  let seen = Hashtbl.create 16 in
  let paths = ref [] in
  let tries = ref 0 in
  while Hashtbl.length seen < k && !tries < 8 * k do
    incr tries;
    let p = walk_minimal ctx rng ~src ~dst in
    let key = String.concat "," (Array.to_list (Array.map string_of_int p)) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      paths := p :: !paths
    end
  done;
  List.rev !paths

(* -- link fractions ----------------------------------------------------- *)

let min_fractions_uncached ctx ~src ~dst =
  (* DP over the shortest-path DAG: probability mass splits uniformly over
     productive hops at every vertex. *)
  let t = ctx.topo in
  let d = Topology.dist_to t dst in
  if d.(src) = max_int then invalid_arg "Routing: destination unreachable";
  let layers = Array.make (d.(src) + 1) [] in
  layers.(d.(src)) <- [ src ];
  let prob = Hashtbl.create 32 in
  Hashtbl.replace prob src 1.0;
  let frac = Hashtbl.create 32 in
  (* Mass deposits on link [l] and flows into [v]. *)
  let deposit v l share =
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt frac l) in
    Hashtbl.replace frac l (cur +. share);
    match Hashtbl.find_opt prob v with
    | Some q -> Hashtbl.replace prob v (q +. share)
    | None ->
        Hashtbl.replace prob v share;
        layers.(d.(v)) <- v :: layers.(d.(v))
  in
  for layer = d.(src) downto 1 do
    List.iter
      (fun u ->
        let p = Hashtbl.find prob u in
        let hops = Topology.productive_hops t u ~dst in
        if ctx.demoted = 0 then begin
          (* Uniform split — the exact legacy arithmetic. *)
          let share = p /. float_of_int (Array.length hops) in
          Array.iter (fun (v, l) -> deposit v l share) hops
        end
        else begin
          let wtot =
            Array.fold_left (fun acc (_, l) -> acc +. link_weight ctx l) 0.0 hops
          in
          Array.iter
            (fun (v, l) -> deposit v l (p *. link_weight ctx l /. wtot))
            hops
        end)
      layers.(layer)
  done;
  Util.Tbl.sorted_bindings ~cmp:Int.compare frac

let dor_fractions ctx ~src ~dst =
  let acc = Hashtbl.create 16 in
  let add l p =
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt acc l) in
    Hashtbl.replace acc l (cur +. p)
  in
  (* Probability mass of coordinate paths crossing a dead link detours over
     the surviving shortest-path DAG, mirroring the data plane's fallback. *)
  let dead = ref 0.0 in
  List.iter
    (fun (path, p) ->
      if path_alive ctx path then Array.iter (fun l -> add l p) (path_links ctx path)
      else dead := !dead +. p)
    (dor_paths_weighted ctx ~src ~dst);
  if !dead > 0.0 then
    Array.iter (fun (l, f) -> add l (!dead *. f)) (min_fractions_uncached ctx ~src ~dst);
  Util.Tbl.sorted_bindings ~cmp:Int.compare acc

let accumulate_dense dense scale sparse =
  Array.iter (fun (l, f) -> dense.(l) <- dense.(l) +. (scale *. f)) sparse

let vlb_a ctx src =
  match Hashtbl.find_opt ctx.vlb_a src with
  | Some a -> a
  | None ->
      let t = ctx.topo in
      let dense = Array.make (Topology.link_count t) 0.0 in
      for w = 0 to Topology.host_count t - 1 do
        if w <> src && Topology.reachable t src w then
          accumulate_dense dense 1.0 (min_fractions_uncached ctx ~src ~dst:w)
      done;
      Hashtbl.replace ctx.vlb_a src dense;
      dense

let vlb_b ctx dst =
  match Hashtbl.find_opt ctx.vlb_b dst with
  | Some b -> b
  | None ->
      let t = ctx.topo in
      let dense = Array.make (Topology.link_count t) 0.0 in
      for w = 0 to Topology.host_count t - 1 do
        if w <> dst && Topology.reachable t w dst then
          accumulate_dense dense 1.0 (min_fractions_uncached ctx ~src:w ~dst)
      done;
      Hashtbl.replace ctx.vlb_b dst dense;
      dense

let sparse_of_dense dense =
  let acc = ref [] in
  for l = Array.length dense - 1 downto 0 do
    if dense.(l) > 1e-12 then acc := (l, dense.(l)) :: !acc
  done;
  Array.of_list !acc

let vlb_fractions ctx ~src ~dst =
  (* Expected load: average over uniform waypoints of phase-1 plus phase-2
     minimal fractions. Waypoints equal to src or dst degenerate to a single
     minimal phase, which the sums already capture (the degenerate phase
     contributes nothing). *)
  let t = ctx.topo in
  (* Waypoints are drawn from hosts that are up and connect both phases;
     under no failures this is every host. *)
  let valid = ref 0 in
  for w = 0 to Topology.host_count t - 1 do
    if
      Topology.node_alive t w
      && (w = src || Topology.reachable t src w)
      && (w = dst || Topology.reachable t w dst)
    then incr valid
  done;
  if !valid = 0 then invalid_arg "Routing: destination unreachable";
  let h = float_of_int !valid in
  let a = vlb_a ctx src and b = vlb_b ctx dst in
  let dense = Array.make (Array.length a) 0.0 in
  Array.iteri (fun l x -> dense.(l) <- (x +. b.(l)) /. h) a;
  sparse_of_dense dense

let wlb_fractions ctx ~src ~dst =
  let t = ctx.topo in
  let h = Topology.host_count t in
  let prefix = wlb_waypoint_weights ctx ~src ~dst in
  let total = prefix.(h - 1) in
  let dense = Array.make (Topology.link_count t) 0.0 in
  for w = 0 to h - 1 do
    let weight = (if w = 0 then prefix.(0) else prefix.(w) -. prefix.(w - 1)) /. total in
    if weight > 0.0 then begin
      if w <> src && w <> dst then begin
        accumulate_dense dense weight (min_fractions_uncached ctx ~src ~dst:w);
        accumulate_dense dense weight (min_fractions_uncached ctx ~src:w ~dst)
      end
      else accumulate_dense dense weight (min_fractions_uncached ctx ~src ~dst)
    end
  done;
  sparse_of_dense dense

let fractions_raw ctx p ~src ~dst =
  if src = dst then invalid_arg "Routing.fractions: src = dst";
  sync ctx;
  let key = pack ctx p ~src ~dst in
  match Hashtbl.find_opt ctx.frac_cache key with
  | Some f -> f
  | None ->
      let f =
        match p with
        | Rps -> min_fractions_uncached ctx ~src ~dst
        | Dor -> dor_fractions ctx ~src ~dst
        | Vlb -> vlb_fractions ctx ~src ~dst
        | Wlb -> wlb_fractions ctx ~src ~dst
      in
      Hashtbl.replace ctx.frac_cache key f;
      f

let fractions ctx p ~src ~dst =
  Util.Units.pairs_of_floats (fractions_raw ctx p ~src ~dst)

let min_path_fractions ctx ~src ~dst = fractions ctx Rps ~src ~dst
