type node = int
type link_id = int

type kind =
  | Torus of int array
  | Mesh of int array
  | Clos of { leaves : int; spines : int; servers_per_leaf : int }
  | Flattened_butterfly of int
  | Custom of string

type t = {
  kind : kind;
  hosts : int;
  nverts : int;
  out : (node * link_id) array array;
  lsrc : int array;
  ldst : int array;
  link_tbl : (int, link_id) Hashtbl.t;
  (* Dense (u * nverts + v) -> link_id matrix, -1 when not adjacent: the
     packet hot path resolves one link per hop and cannot afford the
     Hashtbl probe (or the [Some] cell find_opt allocates). Rack-scale
     vertex counts keep it small: 512 nodes -> 2 MB. *)
  link_mat : int array;
  dist_cache : (int, int array) Hashtbl.t;
  (* Live down-state overlay: links and nodes can be failed and restored
     without rebuilding the graph. [link_failed] records explicitly failed
     directed links; a link is alive only if it is not failed AND both its
     endpoints are up, so node and link failures compose. *)
  link_failed : bool array;
  node_up : bool array;
  mutable version : int;
}

(* -- construction ------------------------------------------------------- *)

let build ~kind ~hosts ~nverts edges =
  (* [edges] are undirected cables; materialize two directed links each. *)
  let adj = Array.make nverts [] in
  List.iter
    (fun (u, v) ->
      assert (u <> v && u >= 0 && v >= 0 && u < nverts && v < nverts);
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let link_tbl = Hashtbl.create (4 * List.length edges) in
  let link_mat = Array.make (nverts * nverts) (-1) in
  let lsrc = ref [] and ldst = ref [] in
  let next = ref 0 in
  let out =
    Array.init nverts (fun u ->
        let neighbors = List.rev adj.(u) in
        Array.of_list
          (List.map
             (fun v ->
               let id = !next in
               incr next;
               Hashtbl.replace link_tbl ((u * nverts) + v) id;
               link_mat.((u * nverts) + v) <- id;
               lsrc := u :: !lsrc;
               ldst := v :: !ldst;
               (v, id))
             neighbors))
  in
  let lsrc = Array.of_list (List.rev !lsrc) in
  {
    kind;
    hosts;
    nverts;
    out;
    lsrc;
    ldst = Array.of_list (List.rev !ldst);
    link_tbl;
    link_mat;
    dist_cache = Hashtbl.create 64;
    link_failed = Array.make (Array.length lsrc) false;
    node_up = Array.make nverts true;
    version = 0;
  }

let effective_dims dims =
  let dims = Array.of_list (List.filter (fun d -> d > 1) (Array.to_list dims)) in
  if Array.length dims = 0 then invalid_arg "Topology: all dimensions are 1";
  Array.iter (fun d -> if d < 2 then invalid_arg "Topology: dimension < 2") dims;
  dims

let product = Array.fold_left ( * ) 1

let coords_of ~dims id =
  let n = Array.length dims in
  let c = Array.make n 0 in
  let rem = ref id in
  for i = 0 to n - 1 do
    c.(i) <- !rem mod dims.(i);
    rem := !rem / dims.(i)
  done;
  c

let id_of ~dims c =
  let id = ref 0 in
  for i = Array.length dims - 1 downto 0 do
    assert (c.(i) >= 0 && c.(i) < dims.(i));
    id := (!id * dims.(i)) + c.(i)
  done;
  !id

let grid_edges ~dims ~wrap =
  let n = product dims in
  let edges = ref [] in
  for u = 0 to n - 1 do
    let c = coords_of ~dims u in
    (* Only the +1 direction per dimension, so each cable appears once.
       With wraparound and k = 2 the +1 and -1 neighbors coincide. *)
    Array.iteri
      (fun i k ->
        let x = c.(i) in
        if x + 1 < k then begin
          let c' = Array.copy c in
          c'.(i) <- x + 1;
          edges := (u, id_of ~dims c') :: !edges
        end
        else if wrap && k > 2 && x = k - 1 then begin
          let c' = Array.copy c in
          c'.(i) <- 0;
          edges := (u, id_of ~dims c') :: !edges
        end)
      dims
  done;
  List.rev !edges

let torus dims =
  let dims = effective_dims dims in
  let n = product dims in
  build ~kind:(Torus dims) ~hosts:n ~nverts:n (grid_edges ~dims ~wrap:true)

let mesh dims =
  let dims = effective_dims dims in
  let n = product dims in
  build ~kind:(Mesh dims) ~hosts:n ~nverts:n (grid_edges ~dims ~wrap:false)

let clos ~leaves ~spines ~servers_per_leaf =
  if leaves < 1 || spines < 1 || servers_per_leaf < 1 then invalid_arg "Topology.clos";
  let servers = leaves * servers_per_leaf in
  let leaf l = servers + l in
  let spine s = servers + leaves + s in
  let edges = ref [] in
  for i = 0 to servers - 1 do
    edges := (i, leaf (i / servers_per_leaf)) :: !edges
  done;
  for l = 0 to leaves - 1 do
    for s = 0 to spines - 1 do
      edges := (leaf l, spine s) :: !edges
    done
  done;
  build
    ~kind:(Clos { leaves; spines; servers_per_leaf })
    ~hosts:servers
    ~nverts:(servers + leaves + spines)
    (List.rev !edges)

let pp_kind ppf = function
  | Torus dims ->
      Format.fprintf ppf "torus %s"
        (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
  | Mesh dims ->
      Format.fprintf ppf "mesh %s"
        (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
  | Clos _ -> Format.pp_print_string ppf "clos"
  | Flattened_butterfly k -> Format.fprintf ppf "fb %d" k
  | Custom name -> Format.pp_print_string ppf name

let hypercube n =
  if n < 1 then invalid_arg "Topology.hypercube: dimension < 1";
  torus (Array.make n 2)

let flattened_butterfly k =
  if k < 2 then invalid_arg "Topology.flattened_butterfly: k < 2";
  let dims = [| k; k |] in
  let n = k * k in
  let edges = ref [] in
  for u = 0 to n - 1 do
    let c = coords_of ~dims u in
    (* Full row and column connectivity; each cable counted once. *)
    for x = c.(0) + 1 to k - 1 do
      edges := (u, id_of ~dims [| x; c.(1) |]) :: !edges
    done;
    for y = c.(1) + 1 to k - 1 do
      edges := (u, id_of ~dims [| c.(0); y |]) :: !edges
    done
  done;
  build ~kind:(Flattened_butterfly k) ~hosts:n ~nverts:n (List.rev !edges)

let edges_of t =
  let acc = ref [] in
  for u = 0 to t.nverts - 1 do
    Array.iter (fun (v, _) -> if u < v then acc := (u, v) :: !acc) t.out.(u)
  done;
  List.rev !acc

let bridge a b ~cables =
  if cables = [] then invalid_arg "Topology.bridge: no cables";
  let off = a.nverts in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= a.hosts || v < 0 || v >= b.hosts then
        invalid_arg "Topology.bridge: cable endpoint out of host range")
    cables;
  let edges =
    edges_of a
    @ List.map (fun (u, v) -> (u + off, v + off)) (edges_of b)
    @ List.map (fun (u, v) -> (u, v + off)) cables
  in
  let name =
    Format.asprintf "bridge(%a | %a, %d cables)" pp_kind a.kind pp_kind b.kind
      (List.length cables)
  in
  (* Switch vertices of either rack stay non-hosts: renumber b's hosts to
     follow a's, then b's switches, then a's switches would interleave —
     keep it simple by requiring pure-host racks for bridging. *)
  if a.hosts <> a.nverts || b.hosts <> b.nverts then
    invalid_arg "Topology.bridge: switched (Clos) racks cannot be bridged directly";
  build ~kind:(Custom name) ~hosts:(a.nverts + b.nverts) ~nverts:(a.nverts + b.nverts) edges

(* -- accessors ---------------------------------------------------------- *)

let kind t = t.kind
let vertex_count t = t.nverts
let host_count t = t.hosts
let link_count t = Array.length t.lsrc
let link_src t l = t.lsrc.(l)
let link_dst t l = t.ldst.(l)
let out_links t u = t.out.(u)
let degree t u = Array.length t.out.(u)
let find_link t u v = Hashtbl.find_opt t.link_tbl ((u * t.nverts) + v)

let[@inline] find_link_id t u v = Array.unsafe_get t.link_mat ((u * t.nverts) + v)

(* -- live down-state ----------------------------------------------------- *)

let node_alive t u = t.node_up.(u)
let link_alive t l = (not t.link_failed.(l)) && t.node_up.(t.lsrc.(l)) && t.node_up.(t.ldst.(l))
let version t = t.version

let alive_vertex_count t =
  let n = ref 0 in
  Array.iter (fun up -> if up then incr n) t.node_up;
  !n

let failed_nodes t =
  let acc = ref [] in
  for u = t.nverts - 1 downto 0 do
    if not t.node_up.(u) then acc := u :: !acc
  done;
  !acc

let failed_links t =
  (* Explicitly failed cables, each reported once as (u, v) with u < v. *)
  let acc = ref [] in
  for l = Array.length t.link_failed - 1 downto 0 do
    if t.link_failed.(l) && t.lsrc.(l) < t.ldst.(l) then acc := (t.lsrc.(l), t.ldst.(l)) :: !acc
  done;
  !acc

let cable_ids t u v =
  match (find_link t u v, find_link t v u) with
  | Some a, Some b -> (a, b)
  | _ -> invalid_arg "Topology: vertices not adjacent"

(* Cache invalidation is selective: a cached distance array towards [dst]
   is dropped only when the changed element can lie on (failure) or create
   (restore) a shortest path towards [dst] under the distances the cache
   currently holds. *)

let invalidate_link_failure t u v =
  let stale = ref [] in
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun dst d ->
      let du = d.(u) and dv = d.(v) in
      if du < max_int && dv < max_int && abs (du - dv) = 1 then stale := dst :: !stale)
    t.dist_cache;
  List.iter (Hashtbl.remove t.dist_cache) !stale

let invalidate_link_restore t u v =
  let stale = ref [] in
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun dst d -> if d.(u) <> d.(v) then stale := dst :: !stale)
    t.dist_cache;
  List.iter (Hashtbl.remove t.dist_cache) !stale

let invalidate_node_failure t u =
  let stale = ref [] in
  Util.Tbl.iter_sorted ~cmp:Int.compare
    (fun dst d -> if d.(u) < max_int then stale := dst :: !stale)
    t.dist_cache;
  List.iter (Hashtbl.remove t.dist_cache) !stale

let fail_link t u v =
  let a, b = cable_ids t u v in
  if not (t.link_failed.(a) && t.link_failed.(b)) then begin
    invalidate_link_failure t u v;
    t.link_failed.(a) <- true;
    t.link_failed.(b) <- true;
    t.version <- t.version + 1
  end

let restore_link t u v =
  let a, b = cable_ids t u v in
  if t.link_failed.(a) || t.link_failed.(b) then begin
    t.link_failed.(a) <- false;
    t.link_failed.(b) <- false;
    invalidate_link_restore t u v;
    t.version <- t.version + 1
  end

let fail_node t u =
  if u < 0 || u >= t.nverts then invalid_arg "Topology.fail_node";
  if t.node_up.(u) then begin
    invalidate_node_failure t u;
    t.node_up.(u) <- false;
    t.version <- t.version + 1
  end

let restore_node t u =
  if u < 0 || u >= t.nverts then invalid_arg "Topology.restore_node";
  if not t.node_up.(u) then begin
    t.node_up.(u) <- true;
    (* A node coming back can shorten arbitrary paths; flush everything. *)
    Hashtbl.reset t.dist_cache;
    t.version <- t.version + 1
  end

let restore_all t =
  let changed = ref false in
  Array.iteri
    (fun l f ->
      if f then begin
        t.link_failed.(l) <- false;
        changed := true
      end)
    t.link_failed;
  Array.iteri
    (fun u up ->
      if not up then begin
        t.node_up.(u) <- true;
        changed := true
      end)
    t.node_up;
  if !changed then begin
    Hashtbl.reset t.dist_cache;
    t.version <- t.version + 1
  end

let coords t id =
  match t.kind with
  | Torus dims | Mesh dims -> coords_of ~dims id
  | Flattened_butterfly k -> coords_of ~dims:[| k; k |] id
  | Clos _ | Custom _ -> invalid_arg "Topology.coords: no coordinate system"

let of_coords t c =
  match t.kind with
  | Torus dims | Mesh dims -> id_of ~dims c
  | Flattened_butterfly k -> id_of ~dims:[| k; k |] c
  | Clos _ | Custom _ -> invalid_arg "Topology.of_coords: no coordinate system"

(* -- distances ---------------------------------------------------------- *)

let bfs t src =
  let dist = Array.make t.nverts max_int in
  if t.node_up.(src) then begin
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      Array.iter
        (fun (v, l) ->
          if dist.(v) = max_int && link_alive t l then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        t.out.(u)
    done
  end;
  dist

let dist_to t dst =
  (* The graph is symmetric, so a forward BFS from [dst] yields distances
     towards [dst]. *)
  match Hashtbl.find_opt t.dist_cache dst with
  | Some d -> d
  | None ->
      let d = bfs t dst in
      Hashtbl.replace t.dist_cache dst d;
      d

let distance t u v = (dist_to t v).(u)

let productive_hops t u ~dst =
  if u = dst then [||]
  else begin
    let d = dist_to t dst in
    let du = d.(u) in
    if du = max_int then [||]
    else begin
      let hops = Array.to_list t.out.(u) in
      (* The distance filter alone is not enough: a dead link between two
         alive vertices still satisfies d.(v) = du - 1. *)
      Array.of_list (List.filter (fun (v, l) -> d.(v) = du - 1 && link_alive t l) hops)
    end
  end

let reachable t u v =
  t.node_up.(u) && t.node_up.(v) && (u = v || (dist_to t v).(u) < max_int)

let average_distance t =
  let h = t.hosts in
  let pairs = h * (h - 1) in
  if pairs <= 4096 then begin
    let total = ref 0 in
    for u = 0 to h - 1 do
      let d = dist_to t u in
      for v = 0 to h - 1 do
        if u <> v then total := !total + d.(v)
      done
    done;
    float_of_int !total /. float_of_int pairs
  end
  else begin
    let rng = Util.Rng.create 42 in
    let total = ref 0 and count = ref 0 in
    while !count < 4096 do
      let u = Util.Rng.int rng h and v = Util.Rng.int rng h in
      if u <> v then begin
        total := !total + distance t u v;
        incr count
      end
    done;
    float_of_int !total /. 4096.0
  end

let diameter t =
  match t.kind with
  | Torus dims -> Array.fold_left (fun acc k -> acc + (k / 2)) 0 dims
  | Mesh dims -> Array.fold_left (fun acc k -> acc + (k - 1)) 0 dims
  | Flattened_butterfly _ -> 2
  | Clos _ | Custom _ ->
      let d = dist_to t 0 in
      let m = ref 0 in
      for v = 0 to t.hosts - 1 do
        if d.(v) > !m then m := d.(v)
      done;
      (* All host pairs are symmetric in a Clos; distance from host 0 is the
         worst case. *)
      !m

let bisection_links t =
  match t.kind with
  | Torus dims ->
      let n = product dims in
      let k = Array.fold_left max 0 dims in
      if k > 2 then 4 * n / k else 2 * n / k
  | Mesh dims ->
      let n = product dims in
      let k = Array.fold_left max 0 dims in
      2 * n / k
  | Clos { leaves; spines; _ } -> leaves * spines
  | Flattened_butterfly k ->
      (* Cut the columns in half: per row, (k/2)*(k - k/2) cables cross. *)
      2 * k * (k / 2) * (k - (k / 2))
  | Custom _ ->
      (* The natural cut of a bridged fabric is the bridge itself; fall
         back to a half-split BFS frontier count. *)
      let half = t.hosts / 2 in
      let crossing = ref 0 in
      for u = 0 to t.nverts - 1 do
        Array.iter (fun (v, _) -> if (u < half) <> (v < half) then incr crossing) t.out.(u)
      done;
      !crossing

(* -- spanning trees ----------------------------------------------------- *)

let shortest_path_tree t ~root ~variant =
  let parent = Array.make t.nverts (-1) in
  if t.node_up.(root) then begin
    parent.(root) <- root;
    let q = Queue.create () in
    Queue.add root q;
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      let hops = t.out.(u) in
      let deg = Array.length hops in
      for i = 0 to deg - 1 do
        (* Rotate exploration order so different variants attach vertices to
           different shortest-path parents. *)
        let v, l = hops.((i + variant + u) mod deg) in
        if parent.(v) < 0 && link_alive t l then begin
          parent.(v) <- u;
          Queue.add v q
        end
      done
    done
  end;
  parent

let tree_children parent ~root =
  let n = Array.length parent in
  let children = Array.make n [] in
  for v = n - 1 downto 0 do
    if v <> root && parent.(v) >= 0 then children.(parent.(v)) <- v :: children.(parent.(v))
  done;
  children

let tree_depth parent ~root =
  let n = Array.length parent in
  let depth = Array.make n (-1) in
  depth.(root) <- 0;
  let rec depth_of v =
    if depth.(v) >= 0 then depth.(v)
    else begin
      let d = depth_of parent.(v) + 1 in
      depth.(v) <- d;
      d
    end
  in
  let m = ref 0 in
  for v = 0 to n - 1 do
    if parent.(v) >= 0 then m := max !m (depth_of v)
  done;
  !m

(* -- failures ----------------------------------------------------------- *)

let remove_link t u v =
  (match find_link t u v with
  | None -> invalid_arg "Topology.remove_link: vertices not adjacent"
  | Some _ -> ());
  let edges = ref [] in
  for x = 0 to t.nverts - 1 do
    Array.iter
      (fun (y, _) ->
        (* Keep each cable once (x < y) and drop the failed one. *)
        if x < y && not ((x = u && y = v) || (x = v && y = u)) then edges := (x, y) :: !edges)
      t.out.(x)
  done;
  build ~kind:t.kind ~hosts:t.hosts ~nverts:t.nverts (List.rev !edges)

let pp ppf t =
  let pp_dims ppf dims =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "x")
      Format.pp_print_int ppf (Array.to_list dims)
  in
  match t.kind with
  | Torus dims -> Format.fprintf ppf "torus %a (%d nodes, %d links)" pp_dims dims t.hosts (link_count t)
  | Mesh dims -> Format.fprintf ppf "mesh %a (%d nodes, %d links)" pp_dims dims t.hosts (link_count t)
  | Clos { leaves; spines; servers_per_leaf } ->
      Format.fprintf ppf "clos %d leaves x %d spines, %d servers/leaf (%d hosts)" leaves spines
        servers_per_leaf (leaves * servers_per_leaf)
  | Flattened_butterfly k ->
      Format.fprintf ppf "flattened butterfly %dx%d (%d nodes, %d links)" k k t.hosts
        (link_count t)
  | Custom name -> Format.fprintf ppf "%s (%d nodes, %d links)" name t.hosts (link_count t)
