(** Direct-connect rack topologies.

    A topology is a symmetric directed graph: every physical cable between
    two nodes appears as two directed links, one per direction. Rack nodes
    ("hosts") generate and sink traffic; a folded-Clos topology additionally
    contains switch vertices that only forward.

    Torus and mesh topologies are k-ary n-cube style: node identifiers are
    mixed-radix encodings of coordinates, [id = x0 + d0*(x1 + d1*x2 ...)]. *)

type node = int
type link_id = int

type kind =
  | Torus of int array  (** wraparound per dimension; [Torus [|4;4;4|]] is a 4x4x4 3D torus *)
  | Mesh of int array  (** no wraparound *)
  | Clos of { leaves : int; spines : int; servers_per_leaf : int }
      (** two-level folded Clos; servers attach to leaves, leaves to spines *)
  | Flattened_butterfly of int
      (** k x k grid with full connectivity inside every row and column *)
  | Custom of string  (** composite fabrics, e.g. bridged racks (§6) *)

type t

val torus : int array -> t
(** [torus dims] builds a k-ary n-cube. Each dimension must be >= 2 except
    that a 1-sized dimension is ignored. *)

val mesh : int array -> t

val clos : leaves:int -> spines:int -> servers_per_leaf:int -> t
(** Two-level folded Clos: every leaf connects to every spine with one cable
    and to [servers_per_leaf] servers. Servers are vertices
    [0 .. leaves*servers_per_leaf - 1]. *)

val hypercube : int -> t
(** [hypercube n] is the n-dimensional binary hypercube — the degenerate
    k = 2 torus, provided as a convenience. *)

val flattened_butterfly : int -> t
(** [flattened_butterfly k] is the 2D flattened butterfly: a k x k node
    grid where every node links directly to every other node in its row
    and in its column (degree 2(k-1), diameter 2). Note that k > 5 exceeds
    the 8-links-per-node budget of the {!Wire} source-route format. *)

val kind : t -> kind

val vertex_count : t -> int
(** Total vertices, including Clos switches. *)

val host_count : t -> int
(** Number of traffic end-points; hosts are vertices [0 .. host_count-1]. *)

val link_count : t -> int
(** Number of directed links. *)

val link_src : t -> link_id -> node
val link_dst : t -> link_id -> node

val out_links : t -> node -> (node * link_id) array
(** Outgoing neighbors of a vertex with the link towards each, in a fixed
    deterministic order. *)

val degree : t -> node -> int

val find_link : t -> node -> node -> link_id option
(** Directed link from [src] to an adjacent [dst], if any. *)

val find_link_id : t -> node -> node -> int
(** Allocation-free {!find_link}: the directed link id, or [-1] when the
    vertices are not adjacent. Bounds-unchecked — both vertices must be in
    range. The packet hot path resolves one link per hop through this. *)

(** {2 Live down-state}

    Links and nodes can be failed at runtime without rebuilding the graph:
    the overlay masks dead elements out of {!bfs}-derived distances,
    {!productive_hops} and {!shortest_path_tree}, invalidating cached
    distance arrays selectively (an entry towards [dst] is dropped only if
    the changed element can sit on — or, for restores, create — a shortest
    path towards [dst]). Multi-failure scenarios compose: a link is alive
    iff it is not explicitly failed and both endpoints are up, so restoring
    a node does not resurrect a cable that was failed on its own. *)

val fail_link : t -> node -> node -> unit
(** Fail the (bidirectional) cable between two adjacent vertices. Idempotent.
    Raises [Invalid_argument] if the vertices are not adjacent. *)

val restore_link : t -> node -> node -> unit
(** Undo {!fail_link}. Idempotent. *)

val fail_node : t -> node -> unit
(** Take a vertex down; every incident link becomes dead. Idempotent. *)

val restore_node : t -> node -> unit
(** Undo {!fail_node}. Idempotent. *)

val restore_all : t -> unit
(** Clear every failed link and node. *)

val link_alive : t -> link_id -> bool
(** A directed link is alive iff it is not failed and both endpoints are up. *)

val node_alive : t -> node -> bool

val alive_vertex_count : t -> int
(** Number of vertices currently up (switches included). *)

val failed_links : t -> (node * node) list
(** Explicitly failed cables, each once as [(u, v)] with [u < v] (cables
    dead only because an endpoint is down are not listed). *)

val failed_nodes : t -> node list

val version : t -> int
(** Monotonic counter bumped by every effective fail/restore; consumers
    caching derived structures (routing DAGs, broadcast trees) compare it
    to decide staleness. *)

val reachable : t -> node -> node -> bool
(** Both vertices up and connected by alive links. *)

val coords : t -> node -> int array
(** Coordinates of a torus/mesh node. Raises [Invalid_argument] for Clos. *)

val of_coords : t -> int array -> node

val distance : t -> node -> node -> int
(** Hop count of a shortest path. *)

val dist_to : t -> node -> int array
(** [dist_to t dst] is the array of shortest-path distances from every
    vertex to [dst], over alive links and nodes only ([max_int] marks
    unreachable). Computed once per destination and cached; fail/restore
    invalidates affected entries. *)

val productive_hops : t -> node -> dst:node -> (node * link_id) array
(** Next hops of [node] lying on some shortest path to [dst] over alive
    links. Empty if [node = dst] or [dst] is unreachable; never contains a
    failed link. *)

val average_distance : t -> float
(** Mean shortest-path distance over distinct host pairs (exact for small
    topologies, sampled above 4096 pairs with a fixed seed). *)

val diameter : t -> int
(** Maximum shortest-path distance between hosts. *)

val bisection_links : t -> int
(** Number of unidirectional links crossing a bisection of the hosts (cut
    along the largest dimension for torus/mesh, the leaf-spine stage for
    Clos). *)

val shortest_path_tree : t -> root:node -> variant:int -> int array
(** [shortest_path_tree t ~root ~variant] is a spanning tree of all alive,
    reachable vertices given as a parent array ([parent.(root) = root];
    dead or unreachable vertices keep [-1]); every tree path from the root
    is a shortest path. Different [variant] values rotate the neighbor
    exploration order, producing (generally) different trees. *)

val tree_children : int array -> root:node -> node list array
(** Children adjacency of a parent array as produced by
    {!shortest_path_tree}. *)

val tree_depth : int array -> root:node -> int
(** Maximum root-to-leaf hop count of a parent-array tree. *)

val bridge : t -> t -> cables:(node * node) list -> t
(** [bridge a b ~cables] composes two racks into one fabric by adding
    direct cables — the switchless inter-rack interconnect sketched in the
    paper's §6 ("directly connect multiple rack-scale computers without
    using any switch"). Vertices of [b] are renumbered by
    [Topology.vertex_count a]; [cables] pairs an [a]-vertex with a
    [b]-vertex (pre-renumbering). The result is a [Custom] composite:
    coordinate-based routing falls back to generic shortest paths. *)

val remove_link : t -> node -> node -> t
(** Topology with the (bidirectional) cable between two adjacent vertices
    removed; used for failure experiments. Distances are recomputed by BFS.
    Raises [Invalid_argument] if the vertices are not adjacent. *)

val pp : Format.formatter -> t -> unit
