(** Control-traffic comparison: decentralized broadcast vs a centralized
    controller (paper §5.2, Fig. 19).

    Decentralized (R2C2): every flow arrival or departure is broadcast to
    all vertices — a fixed [16 * (vertices - 1)] wire bytes per event,
    independent of how many flows exist.

    Centralized (Fastpass-like): the source unicasts the event to the
    controller, which recomputes all rates and unicasts to every server
    sourcing flows a message carrying the new rates for its own flows
    (16-byte header + 4 bytes per flow). Wire bytes therefore grow with
    the number of concurrent flows per server. *)

val decentralized_event_bytes : Topology.t -> Util.Units.bytes
(** Wire bytes per flow event under broadcast. *)

val centralized_event_bytes :
  ?controller:int -> Topology.t -> flows_per_server:int -> Util.Units.bytes
(** Wire bytes per flow event with a controller node (default host 0):
    event unicast to the controller plus per-source rate-update unicasts,
    each weighted by its hop distance. *)

val ratio : Topology.t -> flows_per_server:int -> float
(** centralized / decentralized — the paper reports 6.2x at one flow per
    server and 19.9x at ten. *)

val sync_bytes : flows:int -> trees:int -> int
(** Wire bytes of one full-state sync repairing a diverged view: the
    rate-update header, a 4-byte entry per live flow, and a 4-byte
    last-sequence number per broadcast tree. *)
