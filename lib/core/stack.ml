module U = Util.Units

type config = {
  link_gbps : U.gbps;
  headroom : U.fraction;
  trees_per_source : int;
  default_protocol : Routing.protocol;
  selection_choices : Routing.protocol array;
  loss_headroom_gain : float;
  max_headroom : U.fraction;
  shed_recover_epochs : int;
}

let default_config =
  {
    link_gbps = U.gbps 10.0;
    headroom = U.fraction 0.05;
    trees_per_source = 4;
    default_protocol = Routing.Rps;
    selection_choices = [| Routing.Rps; Routing.Vlb |];
    loss_headroom_gain = 2.0;
    max_headroom = U.fraction 0.30;
    shed_recover_epochs = 3;
  }

(* Priority classes the admission machinery distinguishes: one above the
   deadline bands plus the scavenger class, matching the simulator's eight
   tracked SLO classes. *)
let max_shed_class = 7

type flow_id = int

type flow = {
  id : flow_id;
  src : int;
  dst : int;
  weight : int;
  priority : int;
  tree : int;
      (* every event of a flow rides one broadcast tree, so the per-tree
         sequence window at each receiver orders finish after start *)
  mutable protocol : Routing.protocol;
  mutable demand_gbps : U.gbps option;
  mutable rate_gbps : U.gbps;
  demand_estimator : Congestion.Demand.t option ref;
}

type t = {
  cfg : config;
  topo : Topology.t;
  rctx : Routing.ctx;
  bcast : Broadcast.t;
  rng : Util.Rng.t;
  flows : (flow_id, flow) Hashtbl.t;
  mutable next_id : flow_id;
  mutable observers : (Wire.broadcast -> unit) list;
  mutable seq_observers : (bytes -> unit) list;
  mutable control_bytes : int;
  mutable reliability_bytes : int;
      (* the loss-tolerance overhead on top of the paper's pinned 16-byte
         broadcast model: sequencing extensions, digests, replays, syncs *)
  origin : (Wire.broadcast * flow_id) Rbcast.origin;
  mutable event_retransmits : int;
  mutable syncs_sent : int;
  mutable loss_ewma : float;  (* raw EWMA state; exposed as a fraction *)
  mutable eff_headroom : float;  (* raw; exposed/applied as a fraction *)
  capacities : U.byte_rate array;
  alloc : Congestion.Waterfill.Inc.t;
      (* incremental epoch state: patched on every flow event, so a
         recompute with no intervening event is O(1) *)
  admission : Congestion.Overload.Admission.t;
      (* strict-priority shedding; inert until {!note_epoch_load} reports
         an overloaded epoch *)
  mutable shed_flows : int;
}

let create ?(config = default_config) ?(seed = 1) topo =
  if config.loss_headroom_gain < 0.0 then
    invalid_arg "Stack.create: loss_headroom_gain < 0";
  if
    U.compare_q config.max_headroom config.headroom < 0
    || (config.max_headroom :> float) >= 1.0
  then invalid_arg "Stack.create: max_headroom out of [headroom, 1)";
  let capacities =
    Array.make (Topology.link_count topo) (U.byte_rate_of_gbps config.link_gbps)
  in
  {
    cfg = config;
    topo;
    rctx = Routing.make topo;
    bcast = Broadcast.make ~trees_per_source:config.trees_per_source topo;
    rng = Util.Rng.create seed;
    flows = Hashtbl.create 64;
    next_id = 0;
    observers = [];
    seq_observers = [];
    control_bytes = 0;
    reliability_bytes = 0;
    origin = Rbcast.origin ~trees:config.trees_per_source ();
    event_retransmits = 0;
    syncs_sent = 0;
    loss_ewma = 0.0;
    eff_headroom = (config.headroom :> float);
    capacities;
    alloc = Congestion.Waterfill.Inc.create ~headroom:config.headroom ~capacities ();
    admission =
      Congestion.Overload.Admission.create
        ~clean_epochs_to_recover:config.shed_recover_epochs
        ~max_priority:max_shed_class ();
    shed_flows = 0;
  }

let topology t = t.topo
let routing t = t.rctx
let broadcast t = t.bcast
let config t = t.cfg
let on_broadcast t f = t.observers <- f :: t.observers
let on_broadcast_seq t f = t.seq_observers <- f :: t.seq_observers

(* Broadcast replicas one event costs: one packet per non-root vertex. *)
let fanout t = Broadcast.bytes_per_broadcast t.topo / Wire.broadcast_size

let pkt_of_flow f event =
  let demand_kbps =
    match f.demand_gbps with
    | None -> 0
    | Some g -> min 0xFFFFFFFF (int_of_float ((g : U.gbps :> float) *. 1_000_000.0))
  in
  {
    Wire.event;
    bsrc = f.src;
    bdst = f.dst;
    weight = min 255 f.weight;
    priority = min 255 f.priority;
    demand_kbps;
    tree = f.tree;
    rp = f.protocol;
  }

let emit_broadcast t f event =
  let pkt = pkt_of_flow f event in
  (* The encoding must round-trip; this exercises the wire format on every
     control event. *)
  (match Wire.decode_broadcast (Wire.encode_broadcast pkt) with
  | Ok p -> assert (p = pkt)
  | Error e -> failwith ("Stack: broadcast encoding failed: " ^ e));
  t.control_bytes <- t.control_bytes + Broadcast.bytes_per_broadcast t.topo;
  (match event with
  | Wire.Flow_start -> Rbcast.mark_live t.origin f.id
  | Wire.Flow_finish -> Rbcast.mark_dead t.origin f.id
  | Wire.Demand_update | Wire.Route_change -> ());
  let seq = Rbcast.send t.origin ~tree:f.tree (pkt, f.id) in
  let wire = Wire.encode_seq_broadcast pkt ~flow:f.id ~seq in
  (match Wire.decode_seq_broadcast wire with
  | Ok (p, fl, sq) -> assert (p = pkt && fl = f.id && sq = seq)
  | Error e -> failwith ("Stack: seq broadcast encoding failed: " ^ e));
  t.reliability_bytes <-
    t.reliability_bytes
    + ((Wire.seq_broadcast_size - Wire.broadcast_size) * fanout t);
  List.iter (fun obs -> obs pkt) t.observers;
  List.iter (fun obs -> obs wire) t.seq_observers

let find t id =
  match Hashtbl.find_opt t.flows id with
  | Some f -> f
  | None -> invalid_arg "Stack: unknown flow id"

let open_flow ?(weight = 1) ?(priority = 0) ?protocol t ~src ~dst =
  let h = Topology.host_count t.topo in
  if src = dst then invalid_arg "Stack.open_flow: src = dst";
  if src < 0 || src >= h || dst < 0 || dst >= h then
    invalid_arg "Stack.open_flow: host out of range";
  if weight < 1 then invalid_arg "Stack.open_flow: weight < 1";
  let id = t.next_id in
  t.next_id <- id + 1;
  let f =
    {
      id;
      src;
      dst;
      weight;
      priority;
      tree = Broadcast.choose_tree t.bcast t.rng ~src;
      protocol = Option.value ~default:t.cfg.default_protocol protocol;
      demand_gbps = None;
      rate_gbps = U.gbps 0.0;
      demand_estimator = ref None;
    }
  in
  Hashtbl.replace t.flows id f;
  Congestion.Waterfill.Inc.add_flow ~weight:(float_of_int weight) ~priority t.alloc ~id
    (Routing.fractions t.rctx f.protocol ~src ~dst);
  emit_broadcast t f Wire.Flow_start;
  id

(* -- overload admission ---------------------------------------------------- *)

let note_epoch_load t ~overloaded =
  Congestion.Overload.Admission.note_epoch t.admission ~overloaded

let admits t ~priority = Congestion.Overload.Admission.admits t.admission ~priority
let shed_floor t = Congestion.Overload.Admission.shed_floor t.admission
let shed_flows t = t.shed_flows

let try_open_flow ?weight ?(priority = 0) ?protocol t ~src ~dst =
  if admits t ~priority then Some (open_flow ?weight ~priority ?protocol t ~src ~dst)
  else begin
    t.shed_flows <- t.shed_flows + 1;
    None
  end

let set_class_reserve t ~priority ~reserve =
  Congestion.Waterfill.Inc.set_class_reserve t.alloc ~priority ~reserve

let close_flow t id =
  let f = find t id in
  Hashtbl.remove t.flows id;
  Congestion.Waterfill.Inc.remove_flow t.alloc ~id;
  emit_broadcast t f Wire.Flow_finish

let set_demand t id ~gbps =
  let f = find t id in
  f.demand_gbps <- gbps;
  Congestion.Waterfill.Inc.set_demand t.alloc ~id (Option.map U.byte_rate_of_gbps gbps);
  emit_broadcast t f Wire.Demand_update

let set_protocol t id proto =
  let f = find t id in
  if f.protocol <> proto then begin
    f.protocol <- proto;
    Congestion.Waterfill.Inc.set_links t.alloc ~id
      (Routing.fractions t.rctx proto ~src:f.src ~dst:f.dst);
    emit_broadcast t f Wire.Route_change
  end

let observe_sender_queue t id ~queued_bytes ~period_ns =
  let f = find t id in
  let est =
    match !(f.demand_estimator) with
    | Some e -> e
    | None ->
        let e = Congestion.Demand.create ~period_ns () in
        f.demand_estimator := Some e;
        e
  in
  (* Rates are tracked in Gbps; the estimator works in bytes/ns. *)
  Congestion.Demand.observe est ~rate:(U.byte_rate_of_gbps f.rate_gbps) ~queued_bytes;
  let alloc = U.byte_rate_of_gbps f.rate_gbps in
  if U.compare_q alloc U.zero > 0 && Congestion.Demand.is_host_limited est ~allocation:alloc
  then set_demand t id ~gbps:(Some (U.gbps_of_byte_rate (Congestion.Demand.estimate est)))

let flow_array t = Util.Tbl.sorted_values ~cmp:Int.compare t.flows

let recompute t =
  (* Flow open/close/demand/reroute events have already patched [t.alloc];
     an epoch with no event since the last one is a no-op. *)
  if Congestion.Waterfill.Inc.is_dirty t.alloc then begin
    Congestion.Waterfill.Inc.allocate t.alloc;
    Congestion.Waterfill.Inc.iter_rates t.alloc (fun ~id ~rate ->
        match Hashtbl.find_opt t.flows id with
        | Some f -> f.rate_gbps <- U.gbps_of_byte_rate rate
        | None -> ())
  end

let rate_gbps t id = (find t id).rate_gbps

let allocations t =
  List.rev
    (Util.Tbl.fold_sorted ~cmp:Int.compare
       (fun id f acc -> (id, f.rate_gbps) :: acc)
       t.flows [])

let active_flows t =
  List.rev
    (Util.Tbl.fold_sorted ~cmp:Int.compare
       (fun id f acc -> (id, f.src, f.dst, f.protocol) :: acc)
       t.flows [])

let aggregate_throughput_gbps t =
  (* Summing in flow-id order keeps the float total identical on every node. *)
  U.gbps
    (Util.Tbl.fold_sorted ~cmp:Int.compare
       (fun _ f acc -> acc +. (f.rate_gbps :> float))
       t.flows 0.0)

let reselect_routing ?pop_size ?mutation ?generations t rng =
  let fl = flow_array t in
  if Array.length fl = 0 then 0
  else begin
    let selector =
      Genetic.Selector.make ~headroom:t.cfg.headroom ~choices:t.cfg.selection_choices t.rctx
        ~link_gbps:t.cfg.link_gbps
    in
    let flows = Array.map (fun f -> (f.src, f.dst)) fl in
    (* Flows routed outside the choice set keep their protocol but seed the
       search from the default choice. *)
    let in_choices p = Array.exists (fun c -> c = p) t.cfg.selection_choices in
    let init =
      Array.map
        (fun f -> if in_choices f.protocol then f.protocol else t.cfg.selection_choices.(0))
        fl
    in
    let current = Genetic.Selector.aggregate_throughput_gbps selector ~flows init in
    let best, fit =
      Genetic.Selector.select ?pop_size ?mutation ?generations selector rng ~flows ~init
    in
    let fit = U.to_float fit and current = U.to_float current in
    if fit > current +. 1e-9 then begin
      let changed = ref 0 in
      Array.iteri
        (fun i f ->
          if f.protocol <> best.(i) then begin
            incr changed;
            set_protocol t f.id best.(i)
          end)
        fl;
      !changed
    end
    else 0
  end

let sample_packet_route t id rng =
  let f = find t id in
  let path = Routing.sample_path t.rctx rng f.protocol ~src:f.src ~dst:f.dst in
  (path, Wire.route_selectors t.rctx path)

let control_bytes_sent t = t.control_bytes
let reliability_bytes_sent t = t.reliability_bytes
let loss_ewma t = U.fraction t.loss_ewma
let effective_headroom t = U.fraction t.eff_headroom
let syncs_sent t = t.syncs_sent
let event_retransmits t = t.event_retransmits
let last_seq t ~tree = Rbcast.last_seq t.origin ~tree

let matrix_hash t =
  Rbcast.hash_ids (Array.to_list (Util.Tbl.sorted_keys ~cmp:Int.compare t.flows))

let emit_digests ?(src = 0) t =
  let epoch = Rbcast.bump_epoch t.origin in
  let hash = Rbcast.state_hash t.origin in
  let ds = ref [] in
  for tree = t.cfg.trees_per_source - 1 downto 0 do
    let last = Rbcast.last_seq t.origin ~tree in
    (* A tree that never carried an event has nothing to anti-entropy. *)
    if last >= 0 then begin
      t.reliability_bytes <- t.reliability_bytes + (Wire.digest_size * fanout t);
      ds := { Wire.dsrc = src; dtree = tree; epoch; last_seq = last; state_hash = hash } :: !ds
    end
  done;
  (* The whole beacon round travels as one contiguous batch; check it
     round-trips once instead of re-encoding each digest separately. *)
  let items = List.map (fun d -> Wire.Item_digest d) !ds in
  (match Wire.decode_batch (Wire.encode_batch items) with
  | Ok got -> assert (got = items)
  | Error e -> failwith ("Stack: digest batch encoding failed: " ^ e));
  !ds

let replay t ~tree ~seq =
  match Rbcast.replay t.origin ~tree ~seq with
  | None -> None
  | Some (pkt, flow) ->
      t.event_retransmits <- t.event_retransmits + 1;
      (* A repair travels the whole tree again: losers downstream of the
         original loss need it too. *)
      t.reliability_bytes <- t.reliability_bytes + (Wire.seq_broadcast_size * fanout t);
      Some (Wire.encode_seq_broadcast pkt ~flow ~seq)

let replay_range t ~tree ~from_seq ~to_seq =
  if to_seq < from_seq then invalid_arg "Stack.replay_range: empty range";
  let items = ref [] in
  for seq = to_seq downto from_seq do
    match Rbcast.replay t.origin ~tree ~seq with
    | None -> ()  (* evicted: the requester falls back to a full sync *)
    | Some (pkt, flow) ->
        t.event_retransmits <- t.event_retransmits + 1;
        t.reliability_bytes <- t.reliability_bytes + (Wire.seq_broadcast_size * fanout t);
        items := Wire.Item_seq_broadcast (pkt, flow, seq) :: !items
  done;
  if !items = [] then None else Some (Wire.encode_batch !items)

let sync_view t view =
  let fl = flow_array t in
  let flows =
    Array.to_list (Array.map (fun f -> (f.id, pkt_of_flow f Wire.Flow_start)) fl)
  in
  let last_seqs =
    Array.init t.cfg.trees_per_source (fun tree -> Rbcast.last_seq t.origin ~tree)
  in
  View.sync view ~flows ~last_seqs;
  t.syncs_sent <- t.syncs_sent + 1;
  t.reliability_bytes <-
    t.reliability_bytes
    + Control_traffic.sync_bytes ~flows:(Array.length fl) ~trees:t.cfg.trees_per_source

let watchdog t views =
  let h = matrix_hash t in
  let repaired = ref 0 in
  List.iter
    (fun v ->
      if View.matrix_hash v <> h then begin
        sync_view t v;
        incr repaired
      end)
    views;
  !repaired

let incarnation t = Rbcast.incarnation t.origin

let restart ?(src = 0) t =
  (* The crash destroyed the authoritative state: every open flow is gone
     (silently — a dead node cannot announce finishes) and the origin
     comes back under a fresh incarnation whose streams start at sequence
     zero. The returned JOIN is what peers need to void their replicas. *)
  Array.iter
    (fun f ->
      Hashtbl.remove t.flows f.id;
      Congestion.Waterfill.Inc.remove_flow t.alloc ~id:f.id)
    (flow_array t);
  let inc = Rbcast.restart t.origin in
  let j = { Wire.jnode = src; jinc = inc } in
  let wire = Wire.encode_join j in
  (match Wire.decode_join wire with
  | Ok got -> assert (got = j)
  | Error e -> failwith ("Stack: join encoding failed: " ^ e));
  t.reliability_bytes <- t.reliability_bytes + (Wire.join_size * fanout t);
  wire

let snapshot_request ?(requester = 0) t ~root =
  let s =
    { Wire.sroot = root; srequester = requester; sinc = incarnation t }
  in
  let wire = Wire.encode_snapshot_req s in
  (match Wire.decode_snapshot_req wire with
  | Ok got -> assert (got = s)
  | Error e -> failwith ("Stack: snapshot-req encoding failed: " ^ e));
  t.reliability_bytes <- t.reliability_bytes + Wire.snapshot_req_size;
  wire

let note_control_loss t ~sent ~lost =
  if sent < 0 || lost < 0 || lost > sent then invalid_arg "Stack.note_control_loss";
  if sent > 0 then begin
    let observed = float_of_int lost /. float_of_int sent in
    t.loss_ewma <- (0.8 *. t.loss_ewma) +. (0.2 *. observed);
    let eff =
      Float.min
        (t.cfg.max_headroom :> float)
        ((t.cfg.headroom :> float) +. (t.cfg.loss_headroom_gain *. t.loss_ewma))
    in
    if eff <> t.eff_headroom then begin
      t.eff_headroom <- eff;
      Congestion.Waterfill.Inc.set_headroom t.alloc (U.fraction eff)
    end
  end

let handle_failure t =
  let fl = flow_array t in
  Array.iter (fun f -> emit_broadcast t f Wire.Flow_start) fl;
  (* A bare re-announce would lose the demand side of the rack state: peers
     rebuild the traffic matrix from these broadcasts, so every flow whose
     demand is known — declared or estimated — re-emits it too. This only
     rebuilds the view of the flows still in the table; dropping flows with
     a dead endpoint is [notify_failure]'s job. *)
  Array.iter
    (fun f ->
      if f.demand_gbps <> None || !(f.demand_estimator) <> None then
        emit_broadcast t f Wire.Demand_update)
    fl

let notify_failure t =
  (* Tree repair first: the drop and re-announce broadcasts below must ride
     surviving trees. The FIB re-announcements count as control traffic. *)
  let rb = Broadcast.repair_bytes t.bcast in
  ignore (Broadcast.repair_all t.bcast);
  t.control_bytes <- t.control_bytes + (Broadcast.repair_bytes t.bcast - rb);
  let fl = flow_array t in
  let dropped = ref [] in
  Array.iter
    (fun f ->
      if not (Topology.reachable t.topo f.src f.dst) then begin
        dropped := f.id :: !dropped;
        Hashtbl.remove t.flows f.id;
        Congestion.Waterfill.Inc.remove_flow t.alloc ~id:f.id;
        emit_broadcast t f Wire.Flow_finish
      end
      else
        (* Fractions are recomputed on the surviving graph (the routing
           cache flushed itself on the topology version bump); patching the
           allocator rows marks it dirty for the next recompute. *)
        Congestion.Waterfill.Inc.set_links t.alloc ~id:f.id
          (Routing.fractions t.rctx f.protocol ~src:f.src ~dst:f.dst))
    fl;
  handle_failure t;
  List.rev !dropped
