module U = Util.Units

let decentralized_event_bytes topo =
  U.bytes (float_of_int (Wire.broadcast_size * (Topology.vertex_count topo - 1)))

(* Rate-update unicast: a compact header plus a 4-byte rate per flow
   (flows are implicitly ordered at the source, mirroring the 4-byte
   demand field of the broadcast format). *)
let rate_update_header = 12
let bytes_per_flow_entry = 4

let centralized_event_bytes ?(controller = 0) topo ~flows_per_server =
  if flows_per_server < 0 then invalid_arg "Control_traffic: negative flows_per_server";
  let h = Topology.host_count topo in
  let dist = Topology.dist_to topo controller in
  (* Event notification from an average source. *)
  let avg_dist =
    let total = ref 0 in
    for v = 0 to h - 1 do
      total := !total + dist.(v)
    done;
    float_of_int !total /. float_of_int h
  in
  let notify = float_of_int Wire.broadcast_size *. avg_dist in
  (* Rate updates to every server sourcing flows. *)
  let update_msg = rate_update_header + (bytes_per_flow_entry * flows_per_server) in
  let updates =
    let total = ref 0.0 in
    for v = 0 to h - 1 do
      if v <> controller then total := !total +. float_of_int (update_msg * dist.(v))
    done;
    !total
  in
  U.bytes (notify +. updates)

let ratio topo ~flows_per_server =
  let c = U.to_float (centralized_event_bytes topo ~flows_per_server) in
  let d = U.to_float (decentralized_event_bytes topo) in
  c /. d

(* Full-state sync answering a divergence: same shape as a rate update —
   compact header, one entry per live flow — plus a 4-byte last-sequence
   per broadcast tree so the receiver can fast-forward its windows. *)
let sync_bytes ~flows ~trees =
  if flows < 0 || trees < 0 then invalid_arg "Control_traffic.sync_bytes";
  rate_update_header + (bytes_per_flow_entry * flows) + (4 * trees)
