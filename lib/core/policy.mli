(** Mapping high-level allocation policies onto the stack's weight and
    priority primitives (paper §3.3.2, "Beyond per-flow fairness"):
    "Many recently proposed high-level fairness policies such as
    deadline-based or tenant-based, can be mapped onto these two
    primitives, similar to pFabric."

    Priorities are strict (0 first); weights divide capacity within a
    priority level. *)

type directive = { weight : int; priority : int }

val per_flow_fair : directive
(** The default: weight 1, priority 0. *)

val tenant_share : weight:int -> directive
(** Tenant-based fairness [10, 11, 30]: a tenant buying [weight] units of
    the network has each of its flows carry that weight. Raises on
    weights outside 1..255 (the broadcast packet's 8-bit field). *)

val deadline :
  size_bytes:int -> deadline_ns:int -> link_gbps:Util.Units.gbps -> directive
(** Deadline-based allocation [28, 46]: flows whose required rate
    (size/deadline) is a larger share of the link rate get a higher
    priority band (pFabric-style most-critical-first), so urgent flows
    preempt lax ones. Raises on non-positive sizes or deadlines. *)

val background : directive
(** Scavenger class: priority below every deadline band, weight 1. *)

val deadline_bands : int
(** Number of priority bands used by {!deadline}; {!background} sits
    below them. *)

val required_gbps : size_bytes:int -> deadline_ns:int -> Util.Units.gbps
(** The rate a flow needs to meet its deadline. *)

val meets_deadline :
  size_bytes:int -> deadline_ns:int -> rate_gbps:Util.Units.gbps -> bool
