(** Mapping high-level allocation policies onto the stack's weight and
    priority primitives (paper §3.3.2, "Beyond per-flow fairness"):
    "Many recently proposed high-level fairness policies such as
    deadline-based or tenant-based, can be mapped onto these two
    primitives, similar to pFabric."

    Priorities are strict (0 first); weights divide capacity within a
    priority level. *)

type directive = { weight : int; priority : int }

val per_flow_fair : directive
(** The default: weight 1, priority 0. *)

val tenant_share : weight:int -> directive
(** Tenant-based fairness [10, 11, 30]: a tenant buying [weight] units of
    the network has each of its flows carry that weight. Raises on
    weights outside 1..255 (the broadcast packet's 8-bit field). *)

val deadline :
  size_bytes:int -> deadline_ns:int -> link_gbps:Util.Units.gbps -> directive
(** Deadline-based allocation [28, 46]: flows whose required rate
    (size/deadline) is a larger share of the link rate get a higher
    priority band (pFabric-style most-critical-first), so urgent flows
    preempt lax ones. Raises on non-positive sizes or deadlines. *)

val background : directive
(** Scavenger class: priority below every deadline band, weight 1. *)

val deadline_bands : int
(** Number of priority bands used by {!deadline}; {!background} sits
    below them. *)

val required_gbps : size_bytes:int -> deadline_ns:int -> Util.Units.gbps
(** The rate a flow needs to meet its deadline. *)

val meets_deadline :
  size_bytes:int -> deadline_ns:int -> rate_gbps:Util.Units.gbps -> bool

(** {2 Tail-latency SLO classes}

    An SLO class promises a priority band a latency bound at a target
    percentile ("class 0 finishes within 1 ms at p99"). The overload
    control plane defends these promises under load beyond rack capacity:
    admission shedding refuses the lowest classes first and backpressure
    paces senders down, so the bound of the highest class survives an
    incast surge. *)

type slo_class = {
  slo_priority : int;  (** the priority band the promise covers *)
  latency_bound_ns : int;  (** FCT bound the class is promised *)
  target_percentile : float;  (** fraction of flows that must meet it, in (0, 100] *)
}

val slo : priority:int -> latency_bound_ns:int -> target_percentile:float -> slo_class
(** Validating constructor. Raises [Invalid_argument] on a negative
    priority, non-positive bound, or a percentile outside (0, 100]. *)

val slo_satisfied : slo_class -> attainment:float -> bool
(** [attainment] is the measured within-bound fraction in [0, 1] (e.g.
    {!Sim.Metrics.slo_attainment}); true when it reaches the class's
    target percentile. *)
