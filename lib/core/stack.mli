(** The R2C2 network stack control plane (paper §3).

    A [Stack.t] is one node's view of the rack — which, thanks to flow-event
    broadcasting, equals every other node's view. Applications open and
    close flows; the stack broadcasts the events (exposed via
    {!on_broadcast} and counted in {!control_bytes_sent}), tracks the
    global traffic matrix, computes weighted max-min allocations with
    headroom on {!recompute}, estimates demand for host-limited flows, and
    periodically re-selects routing protocols for long flows to maximize
    aggregate throughput.

    The packet-level data plane lives in the [sim] library; this module is
    the control plane usable directly by applications and tests. *)

type config = {
  link_gbps : Util.Units.gbps;
  headroom : Util.Units.fraction;
  trees_per_source : int;
  default_protocol : Routing.protocol;
  selection_choices : Routing.protocol array;
      (** protocols the routing re-selection may assign *)
  loss_headroom_gain : float;
      (** graceful degradation under control-packet loss: the waterfill
          reserves [min max_headroom (headroom + gain * loss EWMA)] instead
          of the static [headroom], so stale peer views overbook less while
          repairs are in flight ({!note_control_loss}) *)
  max_headroom : Util.Units.fraction;
      (** ceiling on the loss-scaled reserve, < 1 *)
  shed_recover_epochs : int;
      (** overload admission: consecutive clean epochs before the shed
          floor re-admits one class ({!note_epoch_load}) *)
}

val default_config : config
(** 10 Gbps links, 5% headroom, 4 broadcast trees per source, RPS default
    routing, selection between RPS and VLB, loss gain 2 capped at 30%
    headroom, 3 clean epochs to recover shed classes. *)

type t
type flow_id = int

val create : ?config:config -> ?seed:int -> Topology.t -> t

val topology : t -> Topology.t
val routing : t -> Routing.ctx
val broadcast : t -> Broadcast.t
val config : t -> config

val on_broadcast : t -> (Wire.broadcast -> unit) -> unit
(** Observe every broadcast packet the stack emits (it is also checked to
    round-trip through {!Wire.encode_broadcast}). *)

val open_flow :
  ?weight:int -> ?priority:int -> ?protocol:Routing.protocol -> t -> src:int -> dst:int -> flow_id
(** Announce a new flow. Raises [Invalid_argument] on [src = dst] or
    out-of-range hosts. *)

val close_flow : t -> flow_id -> unit
(** Announce flow termination; unknown ids raise. *)

(** {2 Overload admission control}

    Strict-priority load shedding ({!Congestion.Overload.Admission}): feed
    each rate epoch's overload verdict — e.g. whether any link queue sat
    above its watermark ({!Sim.Net.overloaded_links} in simulation, switch
    telemetry on hardware) — into {!note_epoch_load}; every overloaded
    epoch lowers the shed floor one class (lowest priority refused first,
    class 0 never refused) and [shed_recover_epochs] consecutive clean
    epochs raise it back. *)

val note_epoch_load : t -> overloaded:bool -> unit
(** One rate epoch's overload verdict. *)

val admits : t -> priority:int -> bool
(** Would a flow of this class be admitted right now? *)

val shed_floor : t -> int
(** Classes with [priority >= shed_floor] are refused; 8 when nothing is
    shed. *)

val try_open_flow :
  ?weight:int ->
  ?priority:int ->
  ?protocol:Routing.protocol ->
  t ->
  src:int ->
  dst:int ->
  flow_id option
(** {!open_flow} behind the admission gate: [None] (counted in
    {!shed_flows}) when the class is currently being shed. {!open_flow}
    itself stays ungated — callers that must not be refused (control
    traffic, re-announcements) keep using it directly. *)

val shed_flows : t -> int
(** Flows refused by {!try_open_flow} so far. *)

val set_class_reserve : t -> priority:int -> reserve:Util.Units.fraction -> unit
(** Backpressure headroom: withhold [reserve] of every link's capacity
    from classes numerically >= [priority] in the rate computation
    ({!Congestion.Waterfill.Inc.set_class_reserve}), keeping that slice
    free for the latency-sensitive classes above the threshold. *)

val set_demand : t -> flow_id -> gbps:Util.Units.gbps option -> unit
(** Declare a host-limited flow's demand ([None] = network-limited);
    broadcast as a demand update. *)

val set_protocol : t -> flow_id -> Routing.protocol -> unit
(** Re-route a flow; broadcast as a route change. *)

val observe_sender_queue :
  t -> flow_id -> queued_bytes:Util.Units.bytes -> period_ns:int -> unit
(** Feed sender-side queuing into the §3.3.2 demand estimator; when the
    estimate drops below the current allocation the flow's demand is
    updated (and broadcast) automatically. *)

val recompute : t -> unit
(** One rate-computation round over the current traffic matrix. The epoch
    state is maintained incrementally ({!Congestion.Waterfill.Inc}): flow
    events patch it as they happen, so a recompute with no intervening
    event is O(1) and a dirty one reuses all allocator buffers. *)

val rate_gbps : t -> flow_id -> Util.Units.gbps
(** Allocation from the last {!recompute}; 0 before any recompute. *)

val allocations : t -> (flow_id * Util.Units.gbps) list
(** All current allocations, in Gbps. *)

val active_flows : t -> (flow_id * int * int * Routing.protocol) list
(** (id, src, dst, protocol) of open flows. *)

val aggregate_throughput_gbps : t -> Util.Units.gbps
(** Sum of current allocations. *)

val reselect_routing :
  ?pop_size:int -> ?mutation:float -> ?generations:int -> t -> Util.Rng.t -> int
(** §3.4: GA over the open flows' routing protocols maximizing aggregate
    throughput; applies (and broadcasts) improved assignments. Returns the
    number of flows whose protocol changed. Call {!recompute} afterwards to
    refresh allocations. *)

val sample_packet_route : t -> flow_id -> Util.Rng.t -> int array * int array
(** Data plane helper: one packet's vertex path under the flow's current
    protocol, with its 3-bit route selectors for the {!Wire} header. *)

val control_bytes_sent : t -> int
(** Wire bytes of all broadcasts so far:
    16 * (vertices - 1) per event. *)

(** {2 Loss-tolerant control plane}

    Every flow-event broadcast also carries a per-(stack, tree) sequence
    number in the 24-byte {!Wire.encode_seq_broadcast} format; a flow's
    events all ride the tree pinned at {!open_flow}, so a peer's per-tree
    receive window ({!View}) orders its finish after its start. Receivers
    repair gaps by NACKing the origin, which answers from a bounded replay
    log ({!replay}); periodic digests ({!emit_digests}) expose losses the
    stream cannot (a dropped final packet), and a state-hash mismatch
    while sequence-caught-up triggers a full-state {!sync_view}. The
    overhead of all of this is accounted separately in
    {!reliability_bytes_sent} — {!control_bytes_sent} keeps the paper's
    pinned 16-byte model. *)

val on_broadcast_seq : t -> (bytes -> unit) -> unit
(** Observe the 24-byte sequenced wire encoding of every emitted
    broadcast — what a lossy transport should carry to a {!View}. *)

val last_seq : t -> tree:int -> int
(** Last sequence number sent on a tree; -1 if none. *)

val matrix_hash : t -> int64
(** Hash of the open-flow id set ({!Rbcast.hash_ids}); equals
    {!View.matrix_hash} of every consistent replica. *)

val emit_digests : ?src:int -> t -> Wire.digest list
(** One anti-entropy beacon round: bumps the epoch and returns a digest
    per tree that has carried at least one event, each stamped with the
    per-tree last sequence number and the live-set state hash. [src]
    (default 0) fills the digest's source field. Charged to
    {!reliability_bytes_sent}. *)

val replay : t -> tree:int -> seq:int -> bytes option
(** Answer a NACK: the stored event re-encoded with its original sequence
    number, or [None] if it has been evicted from the replay log (the
    requester then needs a full {!sync_view}). Charged to
    {!reliability_bytes_sent} and counted in {!event_retransmits}. *)

val replay_range : t -> tree:int -> from_seq:int -> to_seq:int -> bytes option
(** Answer a NACK's whole inclusive range as one {!Wire.encode_batch} of
    sequenced events, in ascending order, skipping sequences already
    evicted from the replay log; [None] when nothing in the range survives
    (the requester then needs a full {!sync_view}). Feed the result to
    {!View.apply_batch}. Each replayed event is charged and counted exactly
    as {!replay} would. Raises [Invalid_argument] on [to_seq < from_seq]. *)

val sync_view : t -> View.t -> unit
(** Full-state repair of a diverged replica: replaces its believed flow
    set with the authoritative one and fast-forwards its windows. Charged
    as {!Control_traffic.sync_bytes} to {!reliability_bytes_sent}. *)

val watchdog : t -> View.t list -> int
(** One divergence-watchdog round: compare each replica's
    {!View.matrix_hash} against {!matrix_hash} and {!sync_view} the
    diverged ones. Returns how many needed repair. *)

val incarnation : t -> int
(** The origin's crash–restart incarnation, 0 for a stack that never
    crashed; bumped by {!restart}. *)

val restart : ?src:int -> t -> bytes
(** Come back {e cold} after a crash: every open flow is dropped without a
    finish announcement (a dead node cannot send one — peers learn of the
    loss from the JOIN instead), the origin's streams restart at sequence
    zero under a bumped incarnation, and the encoded {!Wire.join}
    announcement to broadcast rack-wide is returned. [src] (default 0)
    fills the JOIN's node field. Charged to {!reliability_bytes_sent} at
    broadcast fan-out. *)

val snapshot_request : ?requester:int -> t -> root:int -> bytes
(** The encoded {!Wire.snapshot_req} asking [root] for a full-state
    catch-up after {!restart}; the origin answers with {!sync_view}.
    Charged to {!reliability_bytes_sent} (unicast, no fan-out). *)

val note_control_loss : t -> sent:int -> lost:int -> unit
(** Feed one observation interval of control-transport statistics into the
    loss EWMA (weight 0.2); updates {!effective_headroom} and the
    allocator so the next {!recompute} reserves more under loss. Raises
    [Invalid_argument] unless [0 <= lost <= sent]. *)

val reliability_bytes_sent : t -> int
(** Wire bytes of the loss-tolerance machinery: the 8-byte sequencing
    extension per broadcast replica, digest beacons, NACK-answering
    replays and full-state syncs. *)

val loss_ewma : t -> Util.Units.fraction
(** Current control-loss estimate in [\[0, 1\]]. *)

val effective_headroom : t -> Util.Units.fraction
(** The loss-scaled headroom the allocator is using now. *)

val syncs_sent : t -> int
val event_retransmits : t -> int

val handle_failure : t -> unit
(** §3.2 re-announcement: after a topology-discovery event every node
    re-broadcasts its ongoing flows; this re-announces every open flow
    (observable via {!on_broadcast}), then re-emits a demand update for
    every flow with a declared demand or a live demand estimator. It only
    rebuilds the view of the flows still open — it does {e not} remove
    flows whose endpoint died, so on an actual failure call
    {!notify_failure} (which owns that case) rather than this directly. *)

val notify_failure : t -> flow_id list
(** Full failure response; call after the topology's down-state changed
    ({!Topology.fail_link} / {!Topology.fail_node}). Repairs broken
    broadcast trees (charging the FIB re-announcements to
    {!control_bytes_sent}), closes every open flow whose endpoint is dead
    or unreachable (announced as a flow-finish; their ids are returned in
    ascending order), re-paths the surviving flows over the surviving
    graph — marking the allocator dirty — and finally runs
    {!handle_failure}. Call {!recompute} afterwards to reconverge the
    allocations. *)
