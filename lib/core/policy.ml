module U = Util.Units

type directive = { weight : int; priority : int }

let per_flow_fair = { weight = 1; priority = 0 }

let tenant_share ~weight =
  if weight < 1 || weight > 255 then
    invalid_arg "Policy.tenant_share: weight must be in 1..255";
  { weight; priority = 0 }

let deadline_bands = 4

let required_gbps ~size_bytes ~deadline_ns =
  if size_bytes <= 0 then invalid_arg "Policy: non-positive size";
  if deadline_ns <= 0 then invalid_arg "Policy: non-positive deadline";
  U.gbps (float_of_int (8 * size_bytes) /. float_of_int deadline_ns)

let deadline ~size_bytes ~deadline_ns ~link_gbps =
  if (link_gbps : U.gbps :> float) <= 0.0 then
    invalid_arg "Policy.deadline: non-positive link rate";
  let urgency =
    (U.frac_of ~num:(required_gbps ~size_bytes ~deadline_ns) ~den:link_gbps :> float)
  in
  (* Band 0: needs more than half the link; band 3: under an eighth. *)
  let priority =
    if urgency > 0.5 then 0
    else if urgency > 0.25 then 1
    else if urgency > 0.125 then 2
    else 3
  in
  { weight = 1; priority }

let background = { weight = 1; priority = deadline_bands }

let meets_deadline ~size_bytes ~deadline_ns ~rate_gbps =
  (rate_gbps : U.gbps :> float) >= (required_gbps ~size_bytes ~deadline_ns :> float) -. 1e-9

(* -- SLO classes ---------------------------------------------------------- *)

type slo_class = { slo_priority : int; latency_bound_ns : int; target_percentile : float }

let slo ~priority ~latency_bound_ns ~target_percentile =
  if priority < 0 then invalid_arg "Policy.slo: negative priority";
  if latency_bound_ns <= 0 then invalid_arg "Policy.slo: non-positive latency bound";
  if target_percentile <= 0.0 || target_percentile > 100.0 then
    invalid_arg "Policy.slo: target percentile outside (0, 100]";
  { slo_priority = priority; latency_bound_ns; target_percentile }

let slo_satisfied c ~attainment = attainment *. 100.0 >= c.target_percentile -. 1e-9
