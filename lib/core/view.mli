(** A peer's replica of one source's traffic-matrix slice, rebuilt from the
    sequenced broadcast stream alone.

    The authoritative state lives in a {!Stack}; a view is what another
    node believes after the transport between them lost, reordered or
    duplicated control packets. Per-tree receive windows deliver each event
    exactly once in sequence order; {!observe_digest} turns the source's
    anti-entropy beacons into repair decisions; {!sync} applies a
    full-state repair. The view's {!matrix_hash} equals the source's
    {!Stack.matrix_hash} exactly when the replica is consistent — the
    property the divergence watchdog checks each epoch. *)

type t

val create : trees:int -> unit -> t
(** A replica expecting the source's tree count. *)

val observe_incarnation : t -> inc:int -> [ `Current | `Reset | `Stale ]
(** Process the source incarnation stamped on an incoming packet (a JOIN,
    or any sequenced broadcast). [`Current] — matches the replica's key,
    nothing to do. [`Reset] — the source restarted: the windows re-key to
    the new incarnation and the believed flow set is dropped; the caller
    should request a snapshot ({!Stack.snapshot_request}). [`Stale] — old
    incarnation, the packet should be ignored. *)

type verdict =
  | Applied of int
      (** the packet (plus any unblocked buffered successors) was folded
          into the matrix — count of events applied *)
  | Duplicate  (** absorbed; the matrix is unchanged *)
  | Buffered  (** arrived ahead of a gap; repair should be requested *)
  | Malformed of string  (** decode or checksum failure; dropped *)

val apply : t -> bytes -> verdict
(** Feed one 24-byte sequenced broadcast ({!Wire.encode_seq_broadcast})
    as received off the wire. *)

val apply_batch : t -> bytes -> (verdict list, string) result
(** Feed one repair batch ({!Stack.replay_range}): every
    [Wire.Item_seq_broadcast] is applied in batch order, yielding one
    verdict each (a non-event item yields [Malformed] in its slot).
    [Error] only when the buffer itself fails to parse — then nothing was
    applied. *)

type digest_verdict =
  | Synced  (** nothing missing as far as this digest can tell *)
  | Gaps of (int * int) list
      (** inclusive missing sequence ranges on the digest's tree — what a
          NACK to the source should request (then replay via
          {!Stack.replay}) *)
  | Diverged
      (** sequence-caught-up on every tree yet hashing differently from
          the source's live set: genuine divergence, repair with
          {!Stack.sync_view} *)

val observe_digest : t -> Wire.digest -> digest_verdict
(** Process one anti-entropy digest from the source. Detects losses the
    stream cannot reveal — e.g. when the {e last} broadcast of a burst was
    dropped and no later packet exposes the gap. *)

val sync : t -> flows:(int * Wire.broadcast) list -> last_seqs:int array -> unit
(** Full-state repair: replace the believed flow set and fast-forward
    every window past [last_seqs]; events buffered beyond the sync still
    apply. *)

val matrix_hash : t -> int64
(** Hash of the believed live-flow ids ({!Rbcast.hash_ids}). *)

val flow_ids : t -> int list
(** Believed-live flow ids, ascending. *)

val flow : t -> int -> Wire.broadcast option
(** The latest record applied for a flow, if believed live. *)

val flow_count : t -> int

val missing : t -> tree:int -> (int * int) list
(** Known missing ranges on a tree (window gaps up to the highest sequence
    heard of). *)

val next_expected : t -> tree:int -> int
val caught_up : t -> bool
(** No known missing sequence on any tree. *)

val applied : t -> int
(** Events folded into the matrix so far. *)

val duplicates : t -> int
(** Packets absorbed as duplicates across all windows. *)
