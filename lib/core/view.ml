(* A peer node's replica of one source's slice of the traffic matrix,
   rebuilt purely from that source's sequenced broadcast stream. The owner
   of the authoritative state is a [Stack]; a [View] is what some other
   node in the rack believes, with the transport between them allowed to
   lose, reorder and duplicate packets. Per-tree receive windows
   ([Rbcast.rx]) deliver events exactly once in order; digests from the
   source expose losses the stream itself cannot reveal (a dropped final
   packet); a state-hash mismatch while sequence-caught-up marks the view
   as diverged, to be repaired by a full-state {!sync}. *)

type t = {
  trees : int;
  windows : (Wire.broadcast * int) Rbcast.rx array;  (* per tree *)
  hi : int array;  (* highest sequence advertised per tree; -1 = none *)
  flows : (int, Wire.broadcast) Hashtbl.t;  (* believed-live id -> record *)
  mutable applied : int;
}

let create ~trees () =
  if trees < 1 then invalid_arg "View.create: trees < 1";
  {
    trees;
    windows = Array.init trees (fun _ -> Rbcast.rx ());
    hi = Array.make trees (-1);
    flows = Hashtbl.create 32;
    applied = 0;
  }

let apply_event t (pkt, flow) =
  t.applied <- t.applied + 1;
  match pkt.Wire.event with
  | Wire.Flow_finish -> Hashtbl.remove t.flows flow
  | Wire.Flow_start | Wire.Demand_update | Wire.Route_change ->
      (* Every event carries the full flow record, so a view can
         (re)materialize a flow from any of them. *)
      Hashtbl.replace t.flows flow pkt

let observe_incarnation t ~inc =
  let prev = Rbcast.rx_incarnation t.windows.(0) in
  if inc < prev then `Stale
  else if inc = prev then `Current
  else begin
    (* The source restarted: everything learned from its old life —
       window positions, advertised highs, the believed flow set — is
       void. The windows re-key in lockstep, so [windows.(0)] speaks for
       all of them above. *)
    Array.iter (fun w -> ignore (Rbcast.ensure_epoch w ~epoch:inc)) t.windows;
    Array.fill t.hi 0 t.trees (-1);
    Hashtbl.reset t.flows;
    `Reset
  end

type verdict =
  | Applied of int  (* events folded into the matrix, in order *)
  | Duplicate
  | Buffered  (* ahead of a gap; repair should be requested *)
  | Malformed of string

let apply_seq t pkt flow seq =
  let tree = pkt.Wire.tree in
  if tree < 0 || tree >= t.trees then Malformed "tree id out of range"
  else begin
    if seq > t.hi.(tree) then t.hi.(tree) <- seq;
    match Rbcast.receive t.windows.(tree) ~seq (pkt, flow) with
    | Rbcast.Deliver ps ->
        List.iter (apply_event t) ps;
        Applied (List.length ps)
    | Rbcast.Duplicate -> Duplicate
    | Rbcast.Buffered -> Buffered
  end

let apply t bytes =
  match Wire.decode_seq_broadcast bytes with
  | Error e -> Malformed e
  | Ok (pkt, flow, seq) -> apply_seq t pkt flow seq

let apply_batch t bytes =
  match Wire.decode_batch bytes with
  | Error e -> Error e
  | Ok items ->
      Ok
        (List.map
           (function
             | Wire.Item_seq_broadcast (pkt, flow, seq) -> apply_seq t pkt flow seq
             | Wire.Item_broadcast _ | Wire.Item_digest _ | Wire.Item_nack _ ->
                 (* Repair batches carry sequenced events only; anything
                    else is a framing mistake, reported in place. *)
                 Malformed "batch item is not a sequenced broadcast")
           items)

let flow_ids t = Array.to_list (Util.Tbl.sorted_keys ~cmp:Int.compare t.flows)
let flow t id = Hashtbl.find_opt t.flows id
let flow_count t = Hashtbl.length t.flows
let matrix_hash t = Rbcast.hash_ids (flow_ids t)
let applied t = t.applied

let duplicates t =
  Array.fold_left (fun acc w -> acc + Rbcast.duplicates w) 0 t.windows

let check_tree t tree =
  if tree < 0 || tree >= t.trees then invalid_arg "View: tree id out of range"

let next_expected t ~tree =
  check_tree t tree;
  Rbcast.next_expected t.windows.(tree)

let missing t ~tree =
  check_tree t tree;
  Rbcast.missing t.windows.(tree) ~upto:t.hi.(tree)

let caught_up t =
  let ok = ref true in
  for tree = 0 to t.trees - 1 do
    if Rbcast.next_expected t.windows.(tree) <= t.hi.(tree) then ok := false
  done;
  !ok

type digest_verdict =
  | Synced
  | Gaps of (int * int) list  (* inclusive missing ranges to NACK *)
  | Diverged  (* caught up yet hashing differently: needs a full sync *)

let observe_digest t (d : Wire.digest) =
  check_tree t d.Wire.dtree;
  let tree = d.Wire.dtree in
  if d.Wire.last_seq > t.hi.(tree) then t.hi.(tree) <- d.Wire.last_seq;
  if Rbcast.next_expected t.windows.(tree) <= d.Wire.last_seq then
    Gaps (missing t ~tree)
  else if caught_up t && matrix_hash t <> d.Wire.state_hash then Diverged
  else Synced

let sync t ~flows ~last_seqs =
  if Array.length last_seqs <> t.trees then invalid_arg "View.sync: last_seqs";
  Hashtbl.reset t.flows;
  List.iter (fun (id, pkt) -> Hashtbl.replace t.flows id pkt) flows;
  Array.iteri
    (fun tree last ->
      if last > t.hi.(tree) then t.hi.(tree) <- last;
      (* Buffered events beyond the sync are strictly newer; apply them. *)
      List.iter (apply_event t) (Rbcast.fast_forward t.windows.(tree) ~next:(last + 1)))
    last_seqs
