(** Flow-level fluid emulation of the R2C2 stack.

    This is the repository's stand-in for the paper's Maze rack-emulation
    platform (§4.1): an independent second engine that runs the same
    control plane — flow-level water-filling with headroom, periodic
    recomputation, line-rate transmission of not-yet-scheduled flows — but
    integrates flow progress as a fluid instead of moving packets. The
    packet simulator and this emulator are cross-validated against each
    other (paper Fig. 7).

    Per-link queue depth is estimated by integrating over-subscription:
    while the fluid load on a link exceeds its capacity the queue grows at
    the difference, and drains at the spare capacity otherwise. *)

type config = {
  link_gbps : Util.Units.gbps;
  hop_latency_ns : int;
  mtu : int;
  headroom : Util.Units.fraction;
  recompute_interval_ns : int;  (** 0 = recompute on every flow event (the ideal) *)
  seed : int;
}

val default_config : config
(** Matches {!Sim.R2c2_sim.default_config}: 10 Gbps, 100 ns, 5% headroom,
    rho = 500 µs. *)

type flow_result = {
  spec : Workload.Flowgen.spec;
  fct_ns : int;
  avg_rate_gbps : Util.Units.gbps;
      (** size / (completion - arrival), header-less *)
}

type result = {
  flows : flow_result list;
  max_queue_bytes : Util.Units.bytes array;  (** per-link peak of the queue estimate *)
  recomputes : int;
}

val run :
  ?protocol_of:(int -> Workload.Flowgen.spec -> Routing.protocol) ->
  ?until_ns:int ->
  config ->
  Topology.t ->
  Workload.Flowgen.spec list ->
  result

val rate_error :
  ?protocol_of:(int -> Workload.Flowgen.spec -> Routing.protocol) ->
  ?min_lifetime_ns:int ->
  config ->
  Topology.t ->
  Workload.Flowgen.spec list ->
  rho_ns:int ->
  float array
(** Paper Fig. 15/16: per-flow normalized difference
    [|rate(rho) - rate(0)| / rate(0)] between average rates under periodic
    recomputation at [rho_ns] and the every-event ideal. Only flows whose
    ideal completion time is at least [min_lifetime_ns] (default [rho_ns])
    are compared — the batched design never rate-limits shorter flows
    (§3.3.2); pass a fixed value when sweeping [rho_ns] so every point
    measures the same flow population. *)
