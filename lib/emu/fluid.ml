module U = Util.Units

type config = {
  link_gbps : U.gbps;
  hop_latency_ns : int;
  mtu : int;
  headroom : U.fraction;
  recompute_interval_ns : int;
  seed : int;
}

let default_config =
  {
    link_gbps = U.gbps 10.0;
    hop_latency_ns = 100;
    mtu = 1500;
    headroom = U.fraction 0.05;
    recompute_interval_ns = 500_000;
    seed = 1;
  }

type flow_result = {
  spec : Workload.Flowgen.spec;
  fct_ns : int;
  avg_rate_gbps : U.gbps;
}

type result = {
  flows : flow_result list;
  max_queue_bytes : U.bytes array;
  recomputes : int;
}

type fstate = {
  idx : int;
  spec : Workload.Flowgen.spec;
  wf : Congestion.Waterfill.flow;
  pipe_ns : int;
  mutable remaining : float;
  mutable rate : float;  (** bytes/ns *)
  mutable scheduled : bool;  (** has been through a recompute epoch *)
}

let run ?(protocol_of = fun _ _ -> Routing.Rps) ?until_ns cfg topo specs =
  let rctx = Routing.make topo in
  let cap = U.to_float (U.byte_rate_of_gbps cfg.link_gbps) in
  let link_gbps_f = U.to_float cfg.link_gbps in
  let nl = Topology.link_count topo in
  let capacities : U.byte_rate array = U.of_floats (Array.make nl cap) in
  let arrivals =
    ref
      (List.mapi (fun i s -> (i, s)) specs
      |> List.stable_sort (fun (_, a) (_, b) ->
             compare a.Workload.Flowgen.arrival_ns b.Workload.Flowgen.arrival_ns))
  in
  let active : fstate list ref = ref [] in
  let finished = ref [] in
  let now = ref 0 in
  let horizon = Option.value ~default:max_int until_ns in
  let recomputes = ref 0 in
  let every_event = cfg.recompute_interval_ns = 0 in
  let next_epoch = ref (if every_event then max_int else cfg.recompute_interval_ns) in
  (* Per-link fluid load (bytes/ns), queue estimate and its peak. *)
  let load = Array.make nl 0.0 in
  let queue = Array.make nl 0.0 in
  let max_queue = Array.make nl 0.0 in

  let refresh_load () =
    Array.fill load 0 nl 0.0;
    List.iter
      (fun st ->
        Array.iter
          (fun (l, frac) -> load.(l) <- load.(l) +. (st.rate *. frac))
          (U.pairs_to_floats st.wf.Congestion.Waterfill.links))
      !active
  in

  let recompute ~all =
    incr recomputes;
    let eligible = List.filter (fun st -> all || st.scheduled) !active in
    (match eligible with
    | [] -> ()
    | _ ->
        let arr = Array.of_list eligible in
        let wf = Array.map (fun st -> st.wf) arr in
        let rates =
          U.floats_of (Congestion.Waterfill.allocate ~headroom:cfg.headroom ~capacities wf)
        in
        Array.iteri (fun i st -> st.rate <- Float.max 1e-9 rates.(i)) arr);
    refresh_load ()
  in

  let admit idx spec =
    let open Workload.Flowgen in
    let proto = protocol_of idx spec in
    let links = Routing.fractions rctx proto ~src:spec.src ~dst:spec.dst in
    let wf =
      Congestion.Waterfill.flow
        ~weight:(float_of_int (max 1 spec.weight))
        ~priority:spec.priority ~id:idx links
    in
    let hops = Topology.distance topo spec.src spec.dst in
    let tx = int_of_float (ceil (float_of_int (8 * cfg.mtu) /. link_gbps_f)) in
    let st =
      {
        idx;
        spec;
        wf;
        pipe_ns = hops * (tx + cfg.hop_latency_ns);
        remaining = float_of_int spec.size;
        (* Unscheduled flows transmit at line rate into the headroom. *)
        rate = cap;
        scheduled = false;
      }
    in
    active := st :: !active
  in

  let running = ref true in
  while !running do
    let t_arrival =
      match !arrivals with [] -> max_int | (_, s) :: _ -> s.Workload.Flowgen.arrival_ns
    in
    let t_completion =
      List.fold_left
        (fun acc st ->
          if st.rate > 1e-12 then min acc (!now + int_of_float (ceil (st.remaining /. st.rate)))
          else acc)
        max_int !active
    in
    let t_next = min (min t_arrival t_completion) !next_epoch in
    if (!arrivals = [] && !active = []) || t_next = max_int || t_next > horizon then
      running := false
    else begin
      let dt = float_of_int (t_next - !now) in
      List.iter (fun st -> st.remaining <- Float.max 0.0 (st.remaining -. (st.rate *. dt))) !active;
      (* Integrate the queue estimate under the (constant) loads. *)
      for l = 0 to nl - 1 do
        let delta = (load.(l) -. cap) *. dt in
        queue.(l) <- Float.max 0.0 (queue.(l) +. delta);
        if queue.(l) > max_queue.(l) then max_queue.(l) <- queue.(l)
      done;
      now := t_next;
      let done_, still = List.partition (fun st -> st.remaining <= 0.5) !active in
      List.iter
        (fun st ->
          let fct = !now - st.spec.Workload.Flowgen.arrival_ns + st.pipe_ns in
          finished :=
            {
              spec = st.spec;
              fct_ns = fct;
              avg_rate_gbps =
                U.gbps (float_of_int (8 * st.spec.Workload.Flowgen.size) /. float_of_int fct);
            }
            :: !finished)
        done_;
      active := still;
      let arrived = ref false in
      let rec admit_due () =
        match !arrivals with
        | (i, s) :: rest when s.Workload.Flowgen.arrival_ns <= !now ->
            arrivals := rest;
            arrived := true;
            admit i s;
            admit_due ()
        | _ -> ()
      in
      admit_due ();
      if every_event then begin
        if !arrived || done_ <> [] then begin
          List.iter (fun st -> st.scheduled <- true) !active;
          recompute ~all:true
        end
      end
      else begin
        if !now >= !next_epoch then begin
          while !next_epoch <= !now do
            next_epoch := !next_epoch + cfg.recompute_interval_ns
          done;
          List.iter (fun st -> st.scheduled <- true) !active;
          recompute ~all:false
        end
        else if done_ <> [] || !arrived then
          (* Between epochs every flow keeps its allocation; only the link
             loads change as flows come and go. *)
          refresh_load ()
      end
    end
  done;
  { flows = List.rev !finished; max_queue_bytes = U.of_floats max_queue; recomputes = !recomputes }

let rate_error ?protocol_of ?min_lifetime_ns cfg topo specs ~rho_ns =
  let min_lifetime_ns = Option.value ~default:rho_ns min_lifetime_ns in
  let run_with rho =
    let r = run ?protocol_of { cfg with recompute_interval_ns = rho } topo specs in
    let tbl = Hashtbl.create (List.length r.flows) in
    List.iter
      (fun (fr : flow_result) ->
        Hashtbl.replace tbl
          (fr.spec.Workload.Flowgen.arrival_ns, fr.spec.src, fr.spec.dst)
          (U.to_float fr.avg_rate_gbps, fr.fct_ns))
      r.flows;
    tbl
  in
  let ideal = run_with 0 and measured = run_with rho_ns in
  let cmp_key (a1, s1, d1) (a2, s2, d2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c
    else
      let c = Int.compare s1 s2 in
      if c <> 0 then c else Int.compare d1 d2
  in
  let errs = ref [] in
  Util.Tbl.iter_sorted ~cmp:cmp_key
    (fun key (r0, ideal_fct) ->
      match Hashtbl.find_opt measured key with
      | Some (r, _) when r0 > 0.0 && ideal_fct >= min_lifetime_ns ->
          (* The batched design never rate-limits flows shorter than one
             interval (§3.3.2); like the paper, compare only flows the
             periodic computation actually schedules. *)
          errs := (abs_float (r -. r0) /. r0) :: !errs
      | _ -> ())
    ideal;
  Array.of_list !errs
