(** Classic interconnection-network traffic patterns (paper Fig. 2).

    A pattern is rendered as a list of [(src, dst, demand)] flows in which
    every host injects total demand 1, split across its destinations. *)

type t =
  | Uniform  (** every host to every other host equally *)
  | Nearest_neighbor  (** every host to each grid neighbor equally *)
  | Bit_complement  (** coordinate x -> k-1-x in every dimension *)
  | Transpose  (** (x, y, ...) -> reversed coordinates; needs equal dims *)
  | Tornado  (** x -> x + ceil(k/2) - 1 along dimension 0 *)
  | Permutation of int array  (** explicit host permutation *)

val name : t -> string

val flows : Topology.t -> t -> (int * int * float) list
(** Unit-injection flow list; self-flows are dropped. Raises
    [Invalid_argument] when the pattern does not fit the topology (e.g.
    [Transpose] on unequal dimensions). *)

val adversarial :
  Routing.ctx ->
  Routing.protocol ->
  tries:int ->
  seed:int ->
  (int * int * float) list * Util.Units.fraction
(** Worst-case search: evaluates structured adversaries (tornado-like
    shifts, transpose, bit-complement, diagonal shifts) plus [tries] random
    permutations and returns the pattern minimizing the protocol's
    capacity fraction, with that fraction. *)
