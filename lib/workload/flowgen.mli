(** Synthetic datacenter flow workloads (paper §5.2).

    The paper's canonical workload: uniformly random source/destination
    pairs, Poisson arrivals, Pareto flow sizes with shape 1.05 and mean
    100 KB — heavy-tailed so ~95% of flows are under 100 KB while most
    bytes ride in large flows. *)

type spec = {
  arrival_ns : int;
  src : int;
  dst : int;
  size : int;  (** bytes *)
  weight : int;  (** allocation weight (1 = plain fair share) *)
  priority : int;  (** 0 is highest *)
}

val pareto_size : Util.Rng.t -> shape:float -> mean:float -> max_size:int -> int
(** One Pareto-distributed flow size in bytes, truncated at [max_size]. *)

val poisson_pareto :
  ?shape:float ->
  ?mean_size:float ->
  ?max_size:int ->
  ?priority:int ->
  Topology.t ->
  Util.Rng.t ->
  flows:int ->
  mean_interarrival_ns:float ->
  spec list
(** The §5.2 workload: [flows] flows, Poisson arrivals with the given mean
    spacing, uniform random host pairs, Pareto(shape=1.05, mean=100 KB)
    sizes truncated at [max_size] (default 50 MB). Sorted by arrival.
    [priority] (default 0) tags every flow — use it to run this as the
    background class under a higher-priority foreground workload. *)

val fixed_size :
  Topology.t -> Util.Rng.t -> flows:int -> size:int -> mean_interarrival_ns:float -> spec list
(** Fig. 7 cross-validation workload: fixed-size flows, Poisson arrivals,
    uniform random pairs. *)

val permutation_long_flows :
  Topology.t -> Util.Rng.t -> load:Util.Units.fraction -> spec list
(** Fig. 18 workload: a fraction [load] of hosts each sources one
    long-running flow to a random host, with every host the source and
    destination of at most one flow. Long-running is encoded as
    [size = max_int / 2]. *)

val partition_aggregate :
  ?priority:int ->
  ?response_size:int ->
  Topology.t ->
  Util.Rng.t ->
  aggregators:int ->
  fanout:int ->
  rounds:int ->
  round_interval_ns:int ->
  spec list
(** Partition/aggregate incast: [aggregators] hosts (a fixed random set)
    each fan a request to [fanout] distinct workers every
    [round_interval_ns], and all workers answer with a [response_size]
    (default 20 KB) flow {e simultaneously} — [rounds] synchronized
    response surges converging on each aggregator's ingress links. All
    flows carry [priority] (default 0, the most urgent class). Sorted by
    arrival; deterministic in the RNG. Raises [Invalid_argument] on an
    aggregator count outside [1, hosts], a fanout outside [1, hosts - 1],
    fewer than one round, or a negative interval. *)

val short_fraction : spec list -> threshold:int -> Util.Units.fraction
(** Fraction of flows smaller than [threshold] bytes. *)

val bytes_in_small : spec list -> threshold:int -> Util.Units.fraction
(** Fraction of payload bytes carried by flows smaller than [threshold]. *)
