type spec = {
  arrival_ns : int;
  src : int;
  dst : int;
  size : int;
  weight : int;
  priority : int;
}

let pareto_size rng ~shape ~mean ~max_size =
  (* Pareto mean = shape * scale / (shape - 1); invert for the scale. *)
  if shape <= 1.0 then invalid_arg "Flowgen.pareto_size: shape must exceed 1";
  let scale = mean *. (shape -. 1.0) /. shape in
  let x = Util.Rng.pareto rng ~shape ~scale in
  let v = int_of_float (Float.round x) in
  max 1 (min v max_size)

let random_pair topo rng =
  let h = Topology.host_count topo in
  let src = Util.Rng.int rng h in
  let rec pick () =
    let d = Util.Rng.int rng h in
    if d = src then pick () else d
  in
  (src, pick ())

let poisson_arrivals rng ~flows ~mean_interarrival_ns =
  let t = ref 0.0 in
  List.init flows (fun _ ->
      t := !t +. Util.Rng.exponential rng ~mean:mean_interarrival_ns;
      int_of_float !t)

let poisson_pareto ?(shape = 1.05) ?(mean_size = 100_000.0) ?(max_size = 50_000_000)
    ?(priority = 0) topo rng ~flows ~mean_interarrival_ns =
  List.map
    (fun arrival_ns ->
      let src, dst = random_pair topo rng in
      let size = pareto_size rng ~shape ~mean:mean_size ~max_size in
      { arrival_ns; src; dst; size; weight = 1; priority })
    (poisson_arrivals rng ~flows ~mean_interarrival_ns)

let fixed_size topo rng ~flows ~size ~mean_interarrival_ns =
  List.map
    (fun arrival_ns ->
      let src, dst = random_pair topo rng in
      { arrival_ns; src; dst; size; weight = 1; priority = 0 })
    (poisson_arrivals rng ~flows ~mean_interarrival_ns)

let permutation_long_flows topo rng ~load =
  let load = (load : Util.Units.fraction :> float) in
  if load < 0.0 || load > 1.0 then invalid_arg "Flowgen.permutation_long_flows: load";
  let h = Topology.host_count topo in
  let sources = Util.Rng.permutation rng h in
  let dests = Util.Rng.permutation rng h in
  let n = int_of_float (Float.round (load *. float_of_int h)) in
  (* Repair self-pairs: swap the colliding destination with one that keeps
     both positions valid. Always possible for h >= 3. *)
  for i = 0 to n - 1 do
    if dests.(i) = sources.(i) then begin
      let j = ref (-1) in
      for cand = 0 to h - 1 do
        if !j < 0 && cand <> i && dests.(cand) <> sources.(i)
           && (cand >= n || dests.(i) <> sources.(cand))
        then j := cand
      done;
      assert (!j >= 0);
      let tmp = dests.(i) in
      dests.(i) <- dests.(!j);
      dests.(!j) <- tmp
    end
  done;
  List.init n (fun i ->
      { arrival_ns = 0; src = sources.(i); dst = dests.(i); size = max_int / 2; weight = 1; priority = 0 })

(* Partition/aggregate incast: each aggregator fans a request to [fanout]
   workers and every worker answers at once — the responses of one round
   all converge on the aggregator's ingress links in the same instant,
   which is exactly the surge the overload controller must survive. The
   aggregator set is a fixed permutation prefix; workers are re-drawn per
   round, so the whole workload is a pure function of the RNG. *)
let partition_aggregate ?(priority = 0) ?(response_size = 20_000) topo rng ~aggregators
    ~fanout ~rounds ~round_interval_ns =
  let h = Topology.host_count topo in
  if aggregators < 1 || aggregators > h then
    invalid_arg "Flowgen.partition_aggregate: aggregators out of [1, hosts]";
  if fanout < 1 || fanout > h - 1 then
    invalid_arg "Flowgen.partition_aggregate: fanout out of [1, hosts - 1]";
  if rounds < 1 then invalid_arg "Flowgen.partition_aggregate: rounds < 1";
  if round_interval_ns < 0 then
    invalid_arg "Flowgen.partition_aggregate: negative round interval";
  if response_size <= 0 then
    invalid_arg "Flowgen.partition_aggregate: non-positive response size";
  let aggs = Array.sub (Util.Rng.permutation rng h) 0 aggregators in
  let out = ref [] in
  for r = 0 to rounds - 1 do
    let arrival_ns = r * round_interval_ns in
    Array.iter
      (fun agg ->
        let perm = Util.Rng.permutation rng h in
        let picked = ref 0 and i = ref 0 in
        while !picked < fanout do
          let w = perm.(!i) in
          incr i;
          if w <> agg then begin
            incr picked;
            out :=
              { arrival_ns; src = w; dst = agg; size = response_size; weight = 1; priority }
              :: !out
          end
        done)
      aggs
  done;
  List.rev !out

let short_fraction specs ~threshold =
  let n = List.length specs in
  if n = 0 then Util.Units.fraction 0.0
  else begin
    let small = List.length (List.filter (fun s -> s.size < threshold) specs) in
    Util.Units.fraction (float_of_int small /. float_of_int n)
  end

let bytes_in_small specs ~threshold =
  let total = List.fold_left (fun acc s -> acc +. float_of_int s.size) 0.0 specs in
  if total = 0.0 then Util.Units.fraction 0.0
  else begin
    let small =
      List.fold_left
        (fun acc s -> if s.size < threshold then acc +. float_of_int s.size else acc)
        0.0 specs
    in
    Util.Units.fraction (small /. total)
  end
