(* Cross-library integration tests: whole-stack scenarios on torus, mesh
   and Clos fabrics, failure injection, and end-to-end invariants. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

let specs_on topo seed n tau =
  Workload.Flowgen.poisson_pareto topo (Util.Rng.create seed) ~flows:n ~mean_interarrival_ns:tau

(* Flow conservation of routing fractions must hold on a Clos too. *)
let clos_fraction_conservation () =
  let topo = Topology.clos ~leaves:4 ~spines:2 ~servers_per_leaf:4 in
  let ctx = Routing.make topo in
  let rng = Util.Rng.create 3 in
  for _ = 1 to 20 do
    let src = Util.Rng.int rng 16 and dst = Util.Rng.int rng 16 in
    if src <> dst then begin
      let fr = U.pairs_to_floats (Routing.fractions ctx Routing.Rps ~src ~dst) in
      let net = Array.make (Topology.vertex_count topo) 0.0 in
      Array.iter
        (fun (l, f) ->
          net.(Topology.link_src topo l) <- net.(Topology.link_src topo l) +. f;
          net.(Topology.link_dst topo l) <- net.(Topology.link_dst topo l) -. f)
        fr;
      Alcotest.(check (float 1e-6)) "src emits 1" 1.0 net.(src);
      Alcotest.(check (float 1e-6)) "dst absorbs 1" (-1.0) net.(dst)
    end
  done

let clos_r2c2_completes () =
  let topo = Topology.clos ~leaves:4 ~spines:2 ~servers_per_leaf:4 in
  let specs = specs_on topo 5 100 1_000.0 in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  Alcotest.(check int) "all complete on the Clos" 100
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics)

let clos_broadcast_size () =
  (* §6: 512 servers behind 32-port switches -> a broadcast is ~8.7 KB. *)
  (* 512 servers + 32 leaves + 16 spines = 560 vertices -> 559 tree edges. *)
  let topo = Topology.clos ~leaves:32 ~spines:16 ~servers_per_leaf:16 in
  Alcotest.(check int) "16 * 559" 8944 (Broadcast.bytes_per_broadcast topo)

let mesh_r2c2_completes () =
  let topo = Topology.mesh [| 4; 4 |] in
  let specs = specs_on topo 7 100 1_000.0 in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  Alcotest.(check int) "all complete on the mesh" 100
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics)

let mesh_tcp_completes () =
  let topo = Topology.mesh [| 4; 4 |] in
  let specs = specs_on topo 9 80 1_000.0 in
  let res = Sim.Tcp_sim.run Sim.Tcp_sim.default_config topo specs in
  Alcotest.(check int) "tcp completes on the mesh" 80
    (Sim.Metrics.completed_count res.Sim.Tcp_sim.metrics)

let degraded_topology_r2c2 () =
  (* Fail a cable, rebuild the fabric, and run traffic across it. *)
  let topo = Topology.remove_link (Topology.torus [| 4; 4 |]) 0 1 in
  let specs = specs_on topo 11 100 1_000.0 in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  Alcotest.(check int) "all complete after failure" 100
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics)

let fct_lower_bound () =
  (* No transport can beat size/line-rate plus the pipeline latency. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs = specs_on topo 13 100 1_000.0 in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  List.iteri
    (fun i (s : Workload.Flowgen.spec) ->
      let f = Sim.Metrics.find res.Sim.R2c2_sim.metrics i in
      let fct = Sim.Metrics.fct_ns f in
      (* 10 Gbps = 1.25 B/ns; at least one hop of latency. *)
      let bound = int_of_float (float_of_int s.size /. 1.25) in
      Alcotest.(check bool)
        (Printf.sprintf "flow %d: fct %d >= bound %d" i fct bound)
        true (fct >= bound))
    specs

let pfq_beats_single_link_bound () =
  (* PFQ's multipath ideal must finish a lone big flow faster than a
     single 10 Gbps link could. *)
  let topo = Topology.torus [| 4; 4 |] in
  let spec =
    { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 5; size = 50_000_000; weight = 1; priority = 0 }
  in
  match Sim.Pfq_sim.run Sim.Pfq_sim.default_config topo [ spec ] with
  | [ r ] ->
      let single_link_ns = int_of_float (float_of_int spec.size /. 1.25) in
      Alcotest.(check bool) "faster than one link" true (r.Sim.Pfq_sim.fct_ns < single_link_ns)
  | _ -> Alcotest.fail "expected one result"

let stack_matches_fluid_rates () =
  (* The Stack facade and the fluid emulator share the allocator: for a
     static set of long flows their aggregate rates must agree. *)
  let topo = Topology.torus [| 4; 4; 4 |] in
  let stack = R2c2.Stack.create topo in
  let rng = Util.Rng.create 17 in
  let specs = Workload.Flowgen.permutation_long_flows topo rng ~load:(U.fraction 0.5) in
  List.iter
    (fun (s : Workload.Flowgen.spec) -> ignore (R2c2.Stack.open_flow stack ~src:s.src ~dst:s.dst))
    specs;
  R2c2.Stack.recompute stack;
  let stack_agg = U.to_float (R2c2.Stack.aggregate_throughput_gbps stack) in
  (* Same flows via the raw allocator. *)
  let ctx = Routing.make topo in
  let wf =
    Array.of_list
      (List.mapi
         (fun i (s : Workload.Flowgen.spec) ->
           Congestion.Waterfill.flow ~id:i (Routing.fractions ctx Routing.Rps ~src:s.src ~dst:s.dst))
         specs)
  in
  let capacities = Array.make (Topology.link_count topo) (U.byte_rate 1.25) in
  let rates =
    Congestion.Waterfill.allocate ~headroom:(U.fraction 0.05) ~capacities wf
  in
  let raw_agg = 8.0 *. Array.fold_left ( +. ) 0.0 (U.floats_of rates) in
  Alcotest.(check (float 0.001)) "same aggregate" raw_agg stack_agg

let broadcast_after_failure_spans () =
  let topo = Topology.remove_link (Topology.torus [| 4; 4; 4 |]) 0 1 in
  let b = Broadcast.make topo in
  for tree = 0 to 3 do
    let count = ref 0 in
    let rec walk v =
      incr count;
      List.iter walk (Broadcast.children b ~src:0 ~tree v)
    in
    walk 0;
    Alcotest.(check int) "tree spans degraded rack" 64 !count
  done

let vlb_flow_on_wire () =
  (* A VLB flow's simulated packets must stay within the header's 42-hop
     route budget on a 512-node rack. *)
  let topo = Topology.torus [| 8; 8; 8 |] in
  let ctx = Routing.make topo in
  let rng = Util.Rng.create 19 in
  for _ = 1 to 200 do
    let src = Util.Rng.int rng 512 in
    let dst = (src + 1 + Util.Rng.int rng 511) mod 512 in
    let path = Routing.sample_path ctx rng Routing.Vlb ~src ~dst in
    Alcotest.(check bool) "within route budget" true (Array.length path - 1 <= Wire.max_route_hops);
    ignore (Wire.route_selectors ctx path)
  done

let flattened_butterfly_r2c2 () =
  let topo = Topology.flattened_butterfly 4 in
  let specs = specs_on topo 21 100 1_000.0 in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  Alcotest.(check int) "all complete on the flattened butterfly" 100
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics)

let hypercube_broadcast_spans () =
  let topo = Topology.hypercube 6 in
  let b = Broadcast.make topo in
  let count = ref 0 in
  let rec walk v =
    incr count;
    List.iter walk (Broadcast.children b ~src:0 ~tree:1 v)
  in
  walk 0;
  Alcotest.(check int) "64-node hypercube broadcast" 64 !count

let bridged_racks_inter_rack_traffic () =
  (* SS6: two racks joined by direct cables, no switch in between. *)
  let rack = Topology.torus [| 4; 4 |] in
  let fabric = Topology.bridge rack rack ~cables:[ (3, 0); (12, 15) ] in
  Alcotest.(check int) "32 hosts" 32 (Topology.host_count fabric);
  (* Cross-rack distance = to the bridge + 1 + from the bridge. *)
  Alcotest.(check int) "across a cable" 1 (Topology.distance fabric 3 16);
  Alcotest.(check bool) "fabric connected" true (Topology.distance fabric 0 31 < max_int);
  (* Broadcast trees span both racks. *)
  let b = Broadcast.make fabric in
  let count = ref 0 in
  let rec walk v =
    incr count;
    List.iter walk (Broadcast.children b ~src:5 ~tree:0 v)
  in
  walk 5;
  Alcotest.(check int) "broadcast spans both racks" 32 !count;
  (* And the full stack runs inter-rack flows over it. *)
  let rng = Util.Rng.create 23 in
  let specs =
    List.init 40 (fun i ->
        let src = Util.Rng.int rng 16 and dst = 16 + Util.Rng.int rng 16 in
        { Workload.Flowgen.arrival_ns = i * 1000; src; dst; size = 50_000; weight = 1; priority = 0 })
  in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config fabric specs in
  Alcotest.(check int) "inter-rack flows complete" 40
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics)

let bridge_validates () =
  let rack = Topology.torus [| 4; 4 |] in
  Alcotest.check_raises "no cables" (Invalid_argument "Topology.bridge: no cables") (fun () ->
      ignore (Topology.bridge rack rack ~cables:[]));
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Topology.bridge: cable endpoint out of host range") (fun () ->
      ignore (Topology.bridge rack rack ~cables:[ (99, 0) ]));
  let clos = Topology.clos ~leaves:2 ~spines:2 ~servers_per_leaf:2 in
  Alcotest.check_raises "switched racks"
    (Invalid_argument "Topology.bridge: switched (Clos) racks cannot be bridged directly")
    (fun () -> ignore (Topology.bridge clos clos ~cables:[ (0, 0) ]))

let qcheck_r2c2_delivers =
  QCheck.Test.make ~name:"R2C2 sim delivers every byte (random workloads)" ~count:15
    QCheck.(pair (int_bound 1000) (1 -- 40))
    (fun (seed, n) ->
      let topo = Topology.torus [| 3; 3 |] in
      let specs = specs_on topo (seed + 1) n 2_000.0 in
      let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
      Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics = n)

let qcheck_reliability_completes =
  QCheck.Test.make ~name:"ARQ completes under any loss < 0.6" ~count:30
    QCheck.(pair (int_bound 1000) (float_bound_exclusive 0.6))
    (fun (seed, loss) ->
      let s =
        Sim.Reliability.run_over_lossy_channel ~seed ~loss:(U.fraction loss)
          { Sim.Reliability.packets = 50; rtx_timeout_ns = 5_000; max_retries = 60;
            rtx_backoff = 1.0; rtx_cap_ns = max_int }
          ~rtt_ns:1_000
      in
      s.Sim.Reliability.completed && s.Sim.Reliability.delivered = 50)

let qcheck_tcp_vs_r2c2_bytes =
  QCheck.Test.make ~name:"TCP and R2C2 deliver identical byte totals" ~count:10
    (QCheck.int_bound 1000) (fun seed ->
      let topo = Topology.torus [| 3; 3 |] in
      let specs = specs_on topo (seed + 3) 25 2_000.0 in
      let total = List.fold_left (fun a (s : Workload.Flowgen.spec) -> a + s.size) 0 specs in
      let sum m =
        List.fold_left (fun a (f : Sim.Metrics.flow) -> a + f.Sim.Metrics.delivered) 0
          (Sim.Metrics.all m)
      in
      let r = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
      let t = Sim.Tcp_sim.run Sim.Tcp_sim.default_config topo specs in
      sum r.Sim.R2c2_sim.metrics = total && sum t.Sim.Tcp_sim.metrics = total)

let suites =
  [
    ( "integration",
      [
        tc "Clos fraction conservation" clos_fraction_conservation;
        tc "R2C2 completes on a Clos" clos_r2c2_completes;
        tc "Clos broadcast ~8.7 KB (paper SS6)" clos_broadcast_size;
        tc "R2C2 completes on a mesh" mesh_r2c2_completes;
        tc "TCP completes on a mesh" mesh_tcp_completes;
        tc "R2C2 completes on a degraded torus" degraded_topology_r2c2;
        tc "FCT never beats the line-rate bound" fct_lower_bound;
        tc "PFQ multipath beats one link" pfq_beats_single_link_bound;
        tc "Stack aggregate equals raw allocator" stack_matches_fluid_rates;
        tc "broadcast trees span a degraded rack" broadcast_after_failure_spans;
        tc "VLB paths fit the 42-hop route field" vlb_flow_on_wire;
        tc "R2C2 completes on a flattened butterfly" flattened_butterfly_r2c2;
        tc "hypercube broadcast spans" hypercube_broadcast_spans;
        tc "bridged racks carry inter-rack traffic (SS6)" bridged_racks_inter_rack_traffic;
        tc "bridge validation" bridge_validates;
        QCheck_alcotest.to_alcotest qcheck_r2c2_delivers;
        QCheck_alcotest.to_alcotest qcheck_reliability_completes;
        QCheck_alcotest.to_alcotest qcheck_tcp_vs_r2c2_bytes;
      ] );
  ]
