(* Tests for lib/util: deterministic RNG, binary heap, statistics. *)

let tc name f = Alcotest.test_case name `Quick f

let check_float = Alcotest.(check (float 1e-9))

(* -- rng ----------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let rng_seeds_differ () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.bits64 a = Util.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let rng_int_range () =
  let rng = Util.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let rng_int_covers_all () =
  let rng = Util.Rng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Util.Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let rng_float_range () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let rng_split_independent () =
  let a = Util.Rng.create 11 in
  let b = Util.Rng.split a in
  let x = Util.Rng.bits64 a and y = Util.Rng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let rng_permutation_valid () =
  let rng = Util.Rng.create 13 in
  for _ = 1 to 50 do
    let p = Util.Rng.permutation rng 20 in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted
  done

let rng_exponential_mean () =
  let rng = Util.Rng.create 17 in
  let n = 50_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Util.Rng.exponential rng ~mean:5.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (abs_float (mean -. 5.0) < 0.15)

let rng_pareto_support () =
  let rng = Util.Rng.create 19 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.pareto rng ~shape:1.05 ~scale:2.0 in
    Alcotest.(check bool) "x >= scale" true (v >= 2.0)
  done

let rng_categorical_weights () =
  let rng = Util.Rng.create 23 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Util.Rng.categorical rng [| 1.0; 2.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac1 = float_of_int counts.(1) /. 30_000.0 in
  Alcotest.(check bool) "middle weight dominates" true (abs_float (frac1 -. 0.5) < 0.03)

let rng_pick_uniform () =
  let rng = Util.Rng.create 29 in
  let counts = Hashtbl.create 4 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 9000 do
    let v = Util.Rng.pick rng arr in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  Array.iter
    (fun v ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts v) in
      Alcotest.(check bool) "roughly uniform" true (c > 2500 && c < 3500))
    arr

(* -- heap ---------------------------------------------------------------- *)

let heap_ordering () =
  let h = Util.Heap.create () in
  let rng = Util.Rng.create 31 in
  for _ = 1 to 1000 do
    Util.Heap.push h (Util.Rng.int rng 500) ()
  done;
  let last = ref min_int in
  let count = ref 0 in
  let rec drain () =
    match Util.Heap.pop h with
    | None -> ()
    | Some (p, ()) ->
        Alcotest.(check bool) "non-decreasing" true (p >= !last);
        last := p;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" 1000 !count

let heap_fifo_on_ties () =
  let h = Util.Heap.create () in
  Util.Heap.push h 5 "first";
  Util.Heap.push h 5 "second";
  Util.Heap.push h 5 "third";
  let pop () = match Util.Heap.pop h with Some (_, v) -> v | None -> assert false in
  Alcotest.(check string) "insertion order" "first" (pop ());
  Alcotest.(check string) "insertion order" "second" (pop ());
  Alcotest.(check string) "insertion order" "third" (pop ())

let heap_peek_no_remove () =
  let h = Util.Heap.create () in
  Util.Heap.push h 1 "x";
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "x")) (Util.Heap.peek h);
  Alcotest.(check int) "size unchanged" 1 (Util.Heap.size h)

let heap_empty () =
  let h : unit Util.Heap.t = Util.Heap.create () in
  Alcotest.(check bool) "is_empty" true (Util.Heap.is_empty h);
  Alcotest.(check (option (pair int unit))) "pop empty" None (Util.Heap.pop h)

let heap_interleaved () =
  let h = Util.Heap.create () in
  Util.Heap.push h 10 10;
  Util.Heap.push h 5 5;
  Alcotest.(check (option (pair int int))) "min first" (Some (5, 5)) (Util.Heap.pop h);
  Util.Heap.push h 1 1;
  Alcotest.(check (option (pair int int))) "new min" (Some (1, 1)) (Util.Heap.pop h);
  Alcotest.(check (option (pair int int))) "remaining" (Some (10, 10)) (Util.Heap.pop h)

(* -- stats --------------------------------------------------------------- *)

let stats_percentile_exact () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0 = min" 1.0 (Util.Stats.percentile xs 0.0);
  check_float "p100 = max" 5.0 (Util.Stats.percentile xs 100.0);
  check_float "p50 = median" 3.0 (Util.Stats.percentile xs 50.0);
  check_float "p25 interpolates" 2.0 (Util.Stats.percentile xs 25.0)

let stats_percentile_unsorted () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "sorts internally" 3.0 (Util.Stats.percentile xs 50.0)

let stats_mean_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Util.Stats.mean xs);
  Alcotest.(check bool) "stddev sample" true (abs_float (Util.Stats.stddev xs -. 2.138) < 0.01)

let stats_cdf_monotone () =
  let rng = Util.Rng.create 37 in
  let xs = Array.init 500 (fun _ -> Util.Rng.float rng 10.0) in
  let cdf = Util.Stats.cdf xs in
  let rec check_mono = function
    | (v1, f1) :: ((v2, f2) :: _ as rest) ->
        Alcotest.(check bool) "values non-decreasing" true (v1 <= v2);
        Alcotest.(check bool) "fractions non-decreasing" true (f1 <= f2);
        check_mono rest
    | _ -> ()
  in
  check_mono cdf;
  (match List.rev cdf with
  | (_, last) :: _ -> check_float "reaches 1" 1.0 last
  | [] -> Alcotest.fail "empty cdf")

let stats_ewma () =
  let e = Util.Stats.ewma_create ~alpha:0.5 in
  check_float "zero before update" 0.0 (Util.Stats.ewma_value e);
  Util.Stats.ewma_update e 10.0;
  check_float "first sample taken whole" 10.0 (Util.Stats.ewma_value e);
  Util.Stats.ewma_update e 20.0;
  check_float "smoothed" 15.0 (Util.Stats.ewma_value e)

let stats_summary_empty () =
  let s = Util.Stats.summarize [||] in
  Alcotest.(check int) "count" 0 s.Util.Stats.count;
  check_float "mean" 0.0 s.Util.Stats.mean;
  check_float "p999" 0.0 s.Util.Stats.p999

let stats_summary_p999 () =
  (* 0..999: rank 99.9 * 999 / 100 = 998.001 interpolates between the two
     largest samples; p99 sits well below it on a uniform ramp. *)
  let xs = Array.init 1000 float_of_int in
  let s = Util.Stats.summarize xs in
  check_float "p999 interpolated" 998.001 s.Util.Stats.p999;
  Alcotest.(check bool) "p99 <= p999 <= max" true
    (s.Util.Stats.p99 <= s.Util.Stats.p999 && s.Util.Stats.p999 <= s.Util.Stats.max);
  let one = Util.Stats.summarize [| 7.0 |] in
  check_float "single sample" 7.0 one.Util.Stats.p999

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min..max" ~count:500
    QCheck.(pair (array_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      QCheck.assume (Array.length xs > 0);
      let v = Util.Stats.percentile xs p in
      let mn = Array.fold_left min xs.(0) xs and mx = Array.fold_left max xs.(0) xs in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

let qcheck_percentile_monotone =
  (* Monotone in p, and exact at the band edges: p = 100*k/(n-1) must hit
     the k-th sorted sample (the interpolation weight is exactly 0 there),
     pinning the rank convention the histogram percentiles mirror. *)
  QCheck.Test.make ~name:"percentile monotone in p, exact at band edges" ~count:300
    QCheck.(array_of_size Gen.(2 -- 40) (float_bound_exclusive 1000.0))
    (fun xs ->
      QCheck.assume (Array.length xs >= 2);
      let n = Array.length xs in
      let ys = Array.copy xs in
      Array.sort compare ys;
      let mono = ref true in
      let prev = ref (Util.Stats.percentile xs 0.0) in
      for i = 1 to 20 do
        let v = Util.Stats.percentile xs (5.0 *. float_of_int i) in
        if v < !prev -. 1e-9 then mono := false;
        prev := v
      done;
      let edges = ref true in
      for k = 0 to n - 1 do
        let p = 100.0 *. float_of_int k /. float_of_int (n - 1) in
        if abs_float (Util.Stats.percentile xs p -. ys.(k)) > 1e-6 *. (1.0 +. ys.(k))
        then edges := false
      done;
      !mono && !edges)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap pops = sorted input" ~count:300
    QCheck.(list (int_bound 10_000))
    (fun xs ->
      let h = Util.Heap.create () in
      List.iter (fun x -> Util.Heap.push h x x) xs;
      let rec drain acc =
        match Util.Heap.pop h with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.sort compare xs)

(* -- units ---------------------------------------------------------------- *)

module U = Util.Units

(* The combinators advertise themselves as exactly their raw-float
   formulas; anything weaker would shift benchmark trajectories. So the
   properties compare IEEE bit patterns, not epsilons — NaN payloads,
   signed zeros, infinities and subnormals included. *)
let bits = Int64.bits_of_float

let same_bits a b = Int64.equal (bits a) (bits b)

let any_float =
  QCheck.float (* the qcheck float generator includes nan, infinities and 0.0 *)

let qcheck_drain_is_raw_mul =
  QCheck.Test.make ~name:"drain ~rate ~dt = rate *. dt (bit-for-bit)" ~count:1000
    QCheck.(pair any_float any_float)
    (fun (r, d) ->
      same_bits (U.to_float (U.drain ~rate:(U.byte_rate r) ~dt:(U.ns d))) (r *. d))

let qcheck_rate_of_is_raw_div =
  QCheck.Test.make ~name:"rate_of ~amount ~dt = amount /. dt (bit-for-bit)" ~count:1000
    QCheck.(pair any_float any_float)
    (fun (a, d) ->
      same_bits (U.to_float (U.rate_of ~amount:(U.bytes a) ~dt:(U.ns d))) (a /. d))

let qcheck_scale_is_raw_mul =
  QCheck.Test.make ~name:"scale_by_fraction q f = q *. f (bit-for-bit)" ~count:1000
    QCheck.(pair any_float any_float)
    (fun (q, f) ->
      same_bits (U.to_float (U.scale_by_fraction (U.gbps q) (U.fraction f))) (q *. f))

let qcheck_fill_time_and_frac =
  QCheck.Test.make ~name:"fill_time and frac_of are raw divisions (bit-for-bit)" ~count:1000
    QCheck.(pair any_float any_float)
    (fun (a, b) ->
      same_bits (U.to_float (U.fill_time ~amount:(U.bytes a) ~rate:(U.byte_rate b))) (a /. b)
      && same_bits (U.to_float (U.frac_of ~num:(U.bytes a) ~den:(U.bytes b))) (a /. b))

let qcheck_rate_conversions =
  QCheck.Test.make ~name:"gbps <-> byte_rate are *. 8.0 / /. 8.0 (bit-for-bit)" ~count:1000
    any_float
    (fun x ->
      same_bits (U.to_float (U.byte_rate_of_gbps (U.gbps x))) (x /. 8.0)
      && same_bits (U.to_float (U.gbps_of_byte_rate (U.byte_rate x))) (x *. 8.0)
      && same_bits (U.to_float (U.bits_of_bytes (U.bytes x))) (x *. 8.0)
      && same_bits (U.to_float (U.bytes_of_bits (U.bits x))) (x /. 8.0))

let qcheck_same_unit_algebra =
  QCheck.Test.make ~name:"same-unit algebra mirrors float ops (bit-for-bit)" ~count:1000
    QCheck.(pair any_float any_float)
    (fun (a, b) ->
      let qa = U.bytes a and qb = U.bytes b in
      same_bits (U.to_float (U.add qa qb)) (a +. b)
      && same_bits (U.to_float (U.sub qa qb)) (a -. b)
      && same_bits (U.to_float (U.min_q qa qb)) (Float.min a b)
      && same_bits (U.to_float (U.max_q qa qb)) (Float.max a b)
      && U.compare_q qa qb = Float.compare a b)

let units_views_are_zero_copy () =
  (* floats_of / of_floats alias the same backing array: a write through
     one view is visible through the other, proving no copy happened. *)
  let typed = U.of_floats [| 1.0; 2.0; 3.0 |] in
  let raw = U.floats_of typed in
  raw.(1) <- 42.0;
  check_float "write via raw view lands in typed view" 42.0 (U.to_float typed.(1));
  let back = U.of_floats raw in
  raw.(2) <- 7.0;
  check_float "re-blessing still aliases" 7.0 (U.to_float back.(2));
  let pairs = U.pairs_of_floats [| (4, 0.5); (9, 0.25) |] in
  let praw = U.pairs_to_floats pairs in
  Alcotest.(check int) "pair keys survive" 9 (fst praw.(1));
  check_float "pair values survive" 0.25 (snd praw.(1))

let units_ticks_counter () =
  let t = U.ticks 41 in
  Alcotest.(check int) "tick_succ increments" 42 (U.ticks_to_int (U.tick_succ t));
  check_float "zero is 0.0" 0.0 (U.to_float (U.zero : U.bytes))

(* -- arena ---------------------------------------------------------------- *)

(* Random alloc/free interleavings against a model map: values written into
   surviving records are never clobbered by allocation, recycling or pool
   growth, [alloc] hands back zeroed records, and the live count tracks the
   model exactly. *)
let qcheck_arena_roundtrip =
  QCheck.Test.make ~name:"alloc/free/reuse round-trips" ~count:200
    QCheck.(list (int_bound 999))
    (fun ops ->
      let a = Util.Arena.create ~capacity:2 ~width:3 () in
      let live = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun op ->
          if op mod 3 = 0 && Hashtbl.length live > 0 then begin
            (* lint: allow D3 — order-independent: commutative min over live handles *)
            let h = Hashtbl.fold (fun h _ m -> min h m) live max_int in
            ok := !ok && Util.Arena.get a h 1 = Hashtbl.find live h;
            Util.Arena.free a h;
            Hashtbl.remove live h;
            ok := !ok && not (Util.Arena.is_live a h)
          end
          else begin
            let h = Util.Arena.alloc a in
            ok := !ok && Util.Arena.get a h 1 = 0 && Util.Arena.is_live a h;
            Util.Arena.set a h 1 (op + 1);
            Hashtbl.replace live h (op + 1)
          end)
        ops;
      (* lint: allow D3 — order-independent: conjunction over all live bindings *)
      Hashtbl.iter (fun h v -> ok := !ok && Util.Arena.get a h 1 = v) live;
      !ok && Util.Arena.live a = Hashtbl.length live)

let arena_double_free_detected () =
  let a = Util.Arena.create ~width:2 () in
  let h = Util.Arena.alloc a in
  Util.Arena.free a h;
  Alcotest.check_raises "double free" (Invalid_argument "Arena.free: double free")
    (fun () -> Util.Arena.free a h);
  Alcotest.check_raises "out of range" (Invalid_argument "Arena.free: handle out of range")
    (fun () -> Util.Arena.free a (-1))

let arena_recycles_handles () =
  let a = Util.Arena.create ~capacity:4 ~width:2 () in
  let h0 = Util.Arena.alloc a in
  let h1 = Util.Arena.alloc a in
  Util.Arena.set a h1 0 42;
  Util.Arena.free a h1;
  (* LIFO free list: the next allocation reuses the freed record. *)
  Alcotest.(check int) "freed handle reused" h1 (Util.Arena.alloc a);
  Alcotest.(check int) "reused record zeroed" 0 (Util.Arena.get a h1 0);
  Util.Arena.free a h0;
  Util.Arena.free a h1;
  Alcotest.(check int) "live drained" 0 (Util.Arena.live a);
  Alcotest.(check int) "high water saw both" 2 (Util.Arena.high_water a)

let arena_ints_refcount () =
  let p = Util.Arena.Ints.create () in
  let s = Util.Arena.Ints.of_array p [| 7; 8; 9 |] in
  Alcotest.(check int) "length" 3 (Util.Arena.Ints.length p s);
  Alcotest.(check int) "contents" 8 (Util.Arena.Ints.get p s 1);
  Util.Arena.Ints.retain p s;
  Alcotest.(check int) "refcount 2" 2 (Util.Arena.Ints.refcount p s);
  Util.Arena.Ints.release p s;
  Util.Arena.Ints.release p s;
  Alcotest.(check int) "recycled" 0 (Util.Arena.Ints.live p);
  Alcotest.check_raises "double release"
    (Invalid_argument "Arena.Ints.release: double release") (fun () ->
      Util.Arena.Ints.release p s);
  (* Same length allocates from the free list: the block comes back. *)
  let s' = Util.Arena.Ints.of_array p [| 1; 2; 3 |] in
  Alcotest.(check int) "exact-fit block reused" s s';
  (* The empty slice is a pinned singleton: refcounting it is a no-op. *)
  let e = Util.Arena.Ints.of_array p [||] in
  Alcotest.(check int) "empty singleton" Util.Arena.Ints.empty e;
  Util.Arena.Ints.release p e;
  Util.Arena.Ints.release p e

(* -- calendar queue -------------------------------------------------------- *)

(* Ids double as list indices so every payload is unique (the queue's FIFO
   links are intrusive). Times up to 50k against a 256-slot wheel exercise
   the overflow heap and window migration, not just the happy path. *)
let qcheck_calqueue_order =
  QCheck.Test.make ~name:"drain order = stable sort by time" ~count:300
    QCheck.(list_of_size Gen.(0 -- 200) (int_bound 50_000))
    (fun times ->
      let q = Util.Calqueue.create ~wheel:256 () in
      List.iteri (fun i t -> Util.Calqueue.add q ~time:t i) times;
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
      in
      let rec drain acc =
        match Util.Calqueue.pop q with
        | None -> List.rev acc
        | Some (t, id) -> drain ((t, id) :: acc)
      in
      drain [] = expected)

let calqueue_pop_until () =
  let q = Util.Calqueue.create ~wheel:16 () in
  Alcotest.(check int) "empty" (-1) (Util.Calqueue.pop_until q ~until:100);
  (* Time 50 lands in the overflow heap (wheel 16), so hitting it also
     crosses a window advance. *)
  Util.Calqueue.add q ~time:50 7;
  Alcotest.(check int) "deadline before head" (-2) (Util.Calqueue.pop_until q ~until:49);
  Alcotest.(check int) "head time readable after -2" 50 (Util.Calqueue.popped_time q);
  Alcotest.(check int) "pops at deadline" 7 (Util.Calqueue.pop_until q ~until:50);
  Alcotest.(check int) "popped time" 50 (Util.Calqueue.popped_time q);
  Alcotest.(check int) "drained" (-1) (Util.Calqueue.pop_until q ~until:1000);
  Alcotest.check_raises "past add rejected"
    (Invalid_argument "Calqueue.add: time below window") (fun () ->
      Util.Calqueue.add q ~time:3 0)

let calqueue_fifo_across_stores () =
  (* Ties must pop in insertion order even when some of the tied entries
     were bucketed directly and others migrated in from the overflow heap. *)
  let q = Util.Calqueue.create ~wheel:8 () in
  Util.Calqueue.add q ~time:100 0;
  Util.Calqueue.add q ~time:3 10;
  Util.Calqueue.add q ~time:100 1;
  Util.Calqueue.add q ~time:3 11;
  Util.Calqueue.add q ~time:100 2;
  Alcotest.(check bool) "overflow used" true (Util.Calqueue.overflow_pushes q > 0);
  let rec drain acc =
    match Util.Calqueue.pop q with
    | None -> List.rev acc
    | Some (_, id) -> drain (id :: acc)
  in
  Alcotest.(check (list int)) "insertion order on ties" [ 10; 11; 0; 1; 2 ] (drain [])

let suites =
  [
    ( "util.units",
      [
        QCheck_alcotest.to_alcotest qcheck_drain_is_raw_mul;
        QCheck_alcotest.to_alcotest qcheck_rate_of_is_raw_div;
        QCheck_alcotest.to_alcotest qcheck_scale_is_raw_mul;
        QCheck_alcotest.to_alcotest qcheck_fill_time_and_frac;
        QCheck_alcotest.to_alcotest qcheck_rate_conversions;
        QCheck_alcotest.to_alcotest qcheck_same_unit_algebra;
        tc "array/pair views are zero-copy aliases" units_views_are_zero_copy;
        tc "ticks counter" units_ticks_counter;
      ] );
    ( "util.rng",
      [
        tc "deterministic per seed" rng_deterministic;
        tc "different seeds differ" rng_seeds_differ;
        tc "int in range" rng_int_range;
        tc "int covers all values" rng_int_covers_all;
        tc "float in range" rng_float_range;
        tc "split independent" rng_split_independent;
        tc "permutation valid" rng_permutation_valid;
        tc "exponential mean" rng_exponential_mean;
        tc "pareto support" rng_pareto_support;
        tc "categorical follows weights" rng_categorical_weights;
        tc "pick roughly uniform" rng_pick_uniform;
      ] );
    ( "util.heap",
      [
        tc "pops in priority order" heap_ordering;
        tc "fifo on equal priorities" heap_fifo_on_ties;
        tc "peek does not remove" heap_peek_no_remove;
        tc "empty heap" heap_empty;
        tc "interleaved push/pop" heap_interleaved;
        QCheck_alcotest.to_alcotest qcheck_heap_sorts;
      ] );
    ( "util.arena",
      [
        QCheck_alcotest.to_alcotest qcheck_arena_roundtrip;
        tc "double free detected" arena_double_free_detected;
        tc "freed handles recycled" arena_recycles_handles;
        tc "slice refcounting" arena_ints_refcount;
      ] );
    ( "util.calqueue",
      [
        QCheck_alcotest.to_alcotest qcheck_calqueue_order;
        tc "pop_until deadline semantics" calqueue_pop_until;
        tc "fifo ties across wheel and overflow" calqueue_fifo_across_stores;
      ] );
    ( "util.stats",
      [
        tc "percentile exact points" stats_percentile_exact;
        tc "percentile sorts input" stats_percentile_unsorted;
        tc "mean and stddev" stats_mean_stddev;
        tc "cdf monotone, reaches 1" stats_cdf_monotone;
        tc "ewma smoothing" stats_ewma;
        tc "summary of empty array" stats_summary_empty;
        tc "summary p999 tail" stats_summary_p999;
        QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
        QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
      ] );
  ]
