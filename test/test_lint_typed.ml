(* Tests for the typed-tree M-rule pass (Lint_typed).

   Fixtures are typechecked in-process: `Compmisc.initial_env` gives an
   environment with the stdlib on the load path, `Typemod.type_structure`
   produces the same `Typedtree.structure` a `.cmt` file would carry, and
   the result is wrapped in a `unit_info` exactly as `load_unit` would.
   That exercises everything except `Cmt_format.read_cmt` itself, which
   the driver-level test in test_lint.ml covers against the real build
   tree. *)

let tc name f = Alcotest.test_case name `Quick f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fixture_env =
  lazy
    (Compmisc.init_path ();
     Env.set_unit_name "Lint_typed_fixture";
     Compmisc.initial_env ())

let type_unit ~name src =
  let file = String.lowercase_ascii name ^ ".ml" in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  let past = Parse.implementation lexbuf in
  let tstr, _sig, _names, _shape, _env =
    Typemod.type_structure (Lazy.force fixture_env) past
  in
  { Lint_typed.u_name = name; u_file = file; u_str = tstr }

let registry src = Lint_typed.load_registry_src ~file:"ownership.sexp" src
let empty_registry = { Lint_typed.reg_file = "ownership.sexp"; entries = [] }

let analyze ?(registry = empty_registry) ~name src =
  Lint_typed.analyze ~registry [ type_unit ~name src ]

let by_rule rule (res : Lint_typed.result) =
  List.filter (fun v -> v.Lint_core.rule = rule) res.typed_violations

let check_count name n vs = Alcotest.(check int) name n (List.length vs)

(* -- registry parsing -------------------------------------------------------- *)

let registry_parses () =
  let reg =
    registry
      (String.concat "\n"
         [
           "; ownership registry fixture";
           "((item Fix.hits) (class domain_local)";
           " (why \"per-domain counter with a \\\"quoted\\\" word\\nand two lines\"))";
           "";
           "((class shard_owned) (item Fix.tbl) (why \"field order is free\"))";
         ])
  in
  Alcotest.(check int) "two entries" 2 (List.length reg.entries);
  let e1 = List.nth reg.entries 0 and e2 = List.nth reg.entries 1 in
  Alcotest.(check string) "item" "Fix.hits" e1.r_item;
  Alcotest.(check string) "class" "domain_local" e1.r_class;
  Alcotest.(check bool) "escapes decoded" true (contains e1.r_why "\"quoted\" word\nand");
  Alcotest.(check int) "entry line tracks the open paren" 2 e1.r_line;
  Alcotest.(check string) "field order is free" "Fix.tbl" e2.r_item;
  Alcotest.(check int) "second entry line" 5 e2.r_line

(* -- M3: the inventory and its coverage -------------------------------------- *)

let m3_flags_unregistered () =
  let res = analyze ~name:"Fix" "let hits : int ref = ref 0" in
  let m3 = by_rule "M3" res in
  check_count "one M3" 1 m3;
  let v = List.hd m3 in
  Alcotest.(check bool) "names the item" true (contains v.message "Fix.hits");
  Alcotest.(check string) "located in the fixture" "fix.ml" v.file;
  check_count "inventory has it, unregistered" 1
    (List.filter (fun (i, c) -> i.Lint_typed.i_name = "Fix.hits" && c = None) res.inventory)

let m3_sees_through_aliases () =
  (* The mutability is three hops away from the binding: a record with a
     mutable field, hidden behind a local alias. This is exactly what the
     parse-level pass cannot see and the typed fixpoint must. *)
  let res =
    analyze ~name:"Fix"
      (String.concat "\n"
         [
           "type counter = { mutable count : int }";
           "type t = counter";
           "let c : t = { count = 0 }";
         ])
  in
  check_count "alias-hidden mutable flags" 1
    (List.filter (fun v -> contains v.Lint_core.message "Fix.c") (by_rule "M3" res))

let m3_scopes_submodules () =
  (* A submodule's own type referenced bare inside it, and the same type
     referenced as `Sub.t` from the unit toplevel: both spellings must
     resolve to the one declaration in the fixpoint set. *)
  let res =
    analyze ~name:"Fix"
      (String.concat "\n"
         [
           "module Sub = struct";
           "  type t = { mutable v : int }";
           "  let own : t = { v = 0 }";
           "end";
           "let outer : Sub.t = { Sub.v = 1 }";
         ])
  in
  let m3 = by_rule "M3" res in
  check_count "both spellings flag" 2 m3;
  Alcotest.(check bool) "submodule item is fully qualified" true
    (List.exists (fun v -> contains v.Lint_core.message "Fix.Sub.own") m3);
  Alcotest.(check bool) "toplevel item flags too" true
    (List.exists (fun v -> contains v.Lint_core.message "Fix.outer") m3)

let m3_respects_registration () =
  let res =
    analyze
      ~registry:
        (registry "((item Fix.hits) (class domain_local) (why \"per-domain stat\"))")
      ~name:"Fix" "let hits : int ref = ref 0"
  in
  check_count "no violations" 0 res.typed_violations;
  check_count "inventory carries the class" 1
    (List.filter
       (fun (i, c) -> i.Lint_typed.i_name = "Fix.hits" && c = Some "domain_local")
       res.inventory)

let functions_and_factories_exempt () =
  let res =
    analyze ~name:"Fix"
      (String.concat "\n"
         [
           "let pure = 42";
           "let mk () = ref 0  (* a factory mints fresh state; nothing is shared *)";
           "let double (r : int ref) = 2 * !r";
         ])
  in
  check_count "no M3" 0 (by_rule "M3" res);
  check_count "empty inventory" 0 res.inventory

let captured_spine_flags () =
  (* `tick` has an arrow type, but the ref on its definition spine is
     permanent state wearing a closure. *)
  let res = analyze ~name:"Fix" "let tick = let n = ref 0 in fun () -> incr n; !n" in
  let m3 = by_rule "M3" res in
  check_count "captured spine flags" 1 m3;
  Alcotest.(check bool) "names the captured binding" true
    (contains (List.hd m3).message "Fix.tick");
  check_count "inventory reason is the capture" 1
    (List.filter
       (fun (i, _) -> contains i.Lint_typed.i_why_mutable "'n'")
       res.inventory)

(* -- M1: registry hygiene ----------------------------------------------------- *)

let m1_hygiene () =
  let res =
    analyze
      ~registry:
        (registry
           (String.concat "\n"
              [
                "((item Fix.a) (class domain_local) (why \"fine\"))";
                "((item Fix.a) (class domain_local) (why \"duplicate\"))";
                "((item Fix.gone) (class domain_local) (why \"stale\"))";
                "((item Fix.b) (class sharded) (why \"typo class\"))";
                "((item Fix.c) (class shared_readonly) (why \"   \"))";
              ]))
      ~name:"Fix"
      (String.concat "\n"
         [
           "let a : int ref = ref 0";
           "let b : int ref = ref 0";
           "let c : int ref = ref 0";
         ])
  in
  let m1 = by_rule "M1" res in
  check_count "four hygiene violations" 4 m1;
  let has sub = List.exists (fun v -> contains v.Lint_core.message sub) m1 in
  Alcotest.(check bool) "duplicate cites the first line" true
    (has "duplicate registry entry for 'Fix.a' (first at line 1)");
  Alcotest.(check bool) "stale entry" true (has "no toplevel mutable item 'Fix.gone'");
  Alcotest.(check bool) "unknown class" true (has "unknown ownership class 'sharded'");
  Alcotest.(check bool) "empty why" true (has "empty justification");
  Alcotest.(check bool) "all land in the registry file" true
    (List.for_all (fun v -> v.Lint_core.file = "ownership.sexp") m1);
  check_count "hygiene problems are not coverage problems" 0 (by_rule "M3" res)

(* -- M2: escaping closures over shard_owned state ----------------------------- *)

let shard_tbl_registry =
  "((item Fix.tbl) (class shard_owned) (why \"per-shard flow table\"))"

let m2_domain_spawn_flags () =
  let res =
    analyze
      ~registry:(registry shard_tbl_registry)
      ~name:"Fix"
      (String.concat "\n"
         [
           "let tbl : (int, int) Hashtbl.t = Hashtbl.create 8";
           "let run () = ignore (Domain.spawn (fun () -> Hashtbl.clear tbl))";
         ])
  in
  let m2 = by_rule "M2" res in
  check_count "spawned closure over shard state flags" 1 m2;
  let v = List.hd m2 in
  Alcotest.(check bool) "names the item" true (contains v.message "Fix.tbl");
  Alcotest.(check bool) "names the callee" true (contains v.message "Domain.spawn");
  check_count "registered, so no M3" 0 (by_rule "M3" res)

let m2_stdlib_iterators_exempt () =
  let res =
    analyze
      ~registry:(registry shard_tbl_registry)
      ~name:"Fix"
      (String.concat "\n"
         [
           "let tbl : (int, int) Hashtbl.t = Hashtbl.create 8";
           "let bump () = List.iter (fun k -> Hashtbl.replace tbl k k) [ 1; 2; 3 ]";
         ])
  in
  check_count "immediate stdlib iterators are exempt" 0 (by_rule "M2" res)

let m2_own_submodules_exempt () =
  let res =
    analyze
      ~registry:(registry shard_tbl_registry)
      ~name:"Fix"
      (String.concat "\n"
         [
           "module Sub = struct let run f = f () end";
           "let tbl : (int, int) Hashtbl.t = Hashtbl.create 8";
           "let go () = Sub.run (fun () -> Hashtbl.clear tbl)";
         ])
  in
  check_count "same-unit submodules are inside the boundary" 0 (by_rule "M2" res)

let m2_ignores_noncapturing_closures () =
  let res =
    analyze
      ~registry:(registry shard_tbl_registry)
      ~name:"Fix"
      (String.concat "\n"
         [
           "let tbl : (int, int) Hashtbl.t = Hashtbl.create 8";
           "let detach () = ignore (Domain.spawn (fun () -> 41 + 1))";
           "let size () = Hashtbl.length tbl";
         ])
  in
  check_count "closure without shard state is fine" 0 (by_rule "M2" res)

let suites =
  [
    ( "lint-typed",
      [
        tc "registry: parses comments, strings, field order" registry_parses;
        tc "M3: unregistered mutable flags" m3_flags_unregistered;
        tc "M3: fixpoint sees through aliases" m3_sees_through_aliases;
        tc "M3: submodule scoping resolves both spellings" m3_scopes_submodules;
        tc "M3: registered items are quiet" m3_respects_registration;
        tc "M3: functions and factories are exempt" functions_and_factories_exempt;
        tc "M3: refs captured on a definition spine flag" captured_spine_flags;
        tc "M1: duplicate / stale / class / why hygiene" m1_hygiene;
        tc "M2: Domain.spawn over shard state flags" m2_domain_spawn_flags;
        tc "M2: stdlib iterators are exempt" m2_stdlib_iterators_exempt;
        tc "M2: own submodules are exempt" m2_own_submodules_exempt;
        tc "M2: non-capturing closures are quiet" m2_ignores_noncapturing_closures;
      ] );
  ]
