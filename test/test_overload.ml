(* Overload control end to end: the PAUSE wire format, the admission and
   pacing state machines, queue-watermark detection in the fabric, the
   per-class latency histograms and SLO accounting, the waterfill class
   reserve, the incast workload generator, and the full simulator loop
   shedding and pacing under a 5x incast. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units
module Ov = Congestion.Overload

(* -- wire: PAUSE ---------------------------------------------------------- *)

let pause_roundtrip () =
  let p = { Wire.pnode = 317; pclass = 5; plevel = 9; pwindow_kbps = 1_000_000 } in
  let b = Wire.encode_pause p in
  Alcotest.(check int) "size" Wire.pause_size (Bytes.length b);
  match Wire.decode_pause b with
  | Ok q ->
      Alcotest.(check int) "node" p.Wire.pnode q.Wire.pnode;
      Alcotest.(check int) "class" p.Wire.pclass q.Wire.pclass;
      Alcotest.(check int) "level" p.Wire.plevel q.Wire.plevel;
      Alcotest.(check int) "window" p.Wire.pwindow_kbps q.Wire.pwindow_kbps
  | Error e -> Alcotest.fail ("decode failed: " ^ e)

let pause_corruption_detected () =
  let b = Wire.encode_pause { Wire.pnode = 12; pclass = 1; plevel = 2; pwindow_kbps = 0 } in
  for i = 0 to Bytes.length b - 1 do
    for bit = 0 to 7 do
      let c = Bytes.copy b in
      Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor (1 lsl bit)));
      match Wire.decode_pause c with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "bit flip %d:%d undetected" i bit)
    done
  done

(* -- admission state machine ---------------------------------------------- *)

let admission_sheds_lowest_first () =
  let a = Ov.Admission.create ~max_priority:7 () in
  Alcotest.(check int) "floor starts above all classes" 8 (Ov.Admission.shed_floor a);
  Alcotest.(check bool) "not shedding" false (Ov.Admission.shedding a);
  Ov.Admission.note_epoch a ~overloaded:true;
  Alcotest.(check int) "class 7 refused first" 7 (Ov.Admission.shed_floor a);
  Alcotest.(check bool) "7 refused" false (Ov.Admission.admits a ~priority:7);
  Alcotest.(check bool) "6 admitted" true (Ov.Admission.admits a ~priority:6);
  Ov.Admission.note_epoch a ~overloaded:true;
  Ov.Admission.note_epoch a ~overloaded:true;
  Alcotest.(check int) "escalates one class per epoch" 5 (Ov.Admission.shed_floor a)

let admission_never_sheds_class0 () =
  let a = Ov.Admission.create ~max_priority:7 () in
  for _ = 1 to 50 do
    Ov.Admission.note_epoch a ~overloaded:true
  done;
  Alcotest.(check int) "floor pinned at 1" 1 (Ov.Admission.shed_floor a);
  Alcotest.(check bool) "class 0 always admitted" true (Ov.Admission.admits a ~priority:0)

let admission_hysteresis () =
  let a = Ov.Admission.create ~clean_epochs_to_recover:3 ~max_priority:7 () in
  Ov.Admission.note_epoch a ~overloaded:true;
  Ov.Admission.note_epoch a ~overloaded:true;
  Alcotest.(check int) "two classes shed" 6 (Ov.Admission.shed_floor a);
  (* Two clean epochs are not enough; an overloaded one resets the count. *)
  Ov.Admission.note_epoch a ~overloaded:false;
  Ov.Admission.note_epoch a ~overloaded:false;
  Alcotest.(check int) "still shed after 2 clean" 6 (Ov.Admission.shed_floor a);
  Ov.Admission.note_epoch a ~overloaded:true;
  Alcotest.(check int) "relapse re-escalates" 5 (Ov.Admission.shed_floor a);
  for _ = 1 to 3 do
    Ov.Admission.note_epoch a ~overloaded:false
  done;
  Alcotest.(check int) "3 clean epochs re-admit one class" 6 (Ov.Admission.shed_floor a);
  for _ = 1 to 9 do
    Ov.Admission.note_epoch a ~overloaded:false
  done;
  Alcotest.(check int) "full recovery" 8 (Ov.Admission.shed_floor a);
  Ov.Admission.reset a;
  Alcotest.(check bool) "reset" false (Ov.Admission.shedding a)

(* -- pacer state machine -------------------------------------------------- *)

let check_float msg a b = Alcotest.(check (float 1e-9)) msg a b

let pacer_aimd () =
  let p = Ov.Pacer.create ~backoff:0.5 ~recovery:0.25 ~min_scale:0.05 () in
  check_float "starts at full rate" 1.0 (Ov.Pacer.scale p);
  Ov.Pacer.note_pause p ~level:1;
  check_float "one level halves" 0.5 (Ov.Pacer.scale p);
  Ov.Pacer.note_pause p ~level:2;
  check_float "level 2 quarters" 0.125 (Ov.Pacer.scale p);
  Ov.Pacer.note_pause p ~level:0;
  check_float "level 0 is a no-op" 0.125 (Ov.Pacer.scale p);
  Ov.Pacer.note_clean_epoch p;
  check_float "additive recovery" 0.375 (Ov.Pacer.scale p);
  for _ = 1 to 10 do
    Ov.Pacer.note_clean_epoch p
  done;
  check_float "recovery capped at 1" 1.0 (Ov.Pacer.scale p);
  for _ = 1 to 30 do
    Ov.Pacer.note_pause p ~level:1
  done;
  check_float "floored at min_scale" 0.05 (Ov.Pacer.scale p);
  Ov.Pacer.reset p;
  check_float "reset" 1.0 (Ov.Pacer.scale p);
  Alcotest.check_raises "negative level" (Invalid_argument "Overload.Pacer: negative pause level")
    (fun () -> Ov.Pacer.note_pause p ~level:(-1))

(* -- net: queue watermarks ------------------------------------------------ *)

let mk_net ?queue_capacity () =
  let eng = Sim.Engine.create () in
  let topo = Topology.torus [| 4; 4 |] in
  let net = Sim.Net.create eng topo ?queue_capacity ~link_gbps:(U.gbps 10.0) ~hop_latency_ns:100 () in
  (eng, topo, net)

let send_data net ~flow ~bytes verts =
  let r = Sim.Net.intern_route net verts in
  Sim.Net.send_data net ~flow ~seq:0 ~last:true ~bytes ~route:r;
  Sim.Net.release_route net r

let watermark_hysteresis () =
  let eng, _, net = mk_net () in
  Sim.Net.set_queue_watermarks net ~high:3_000 ~low:500;
  Alcotest.(check int) "idle fabric clean" 0 (Sim.Net.overloaded_links net);
  (* Four 1500 B packets down the same first hop: ~4.5 KB of standing
     queue behind the serializing head packet crosses the high mark. *)
  let seen_over = ref false in
  Sim.Net.on_deliver net (fun _ ->
      if Sim.Net.overloaded_links net > 0 then seen_over := true);
  for _ = 1 to 4 do
    send_data net ~flow:1 ~bytes:1500 [| 0; 1 |]
  done;
  Alcotest.(check bool) "flagged while queued" true (Sim.Net.overloaded_links net > 0);
  Sim.Engine.run eng;
  (* The flag persists down to the low watermark, then clears: a drained
     fabric must end clean. *)
  Alcotest.(check bool) "was flagged during drain" true !seen_over;
  Alcotest.(check int) "clears once drained" 0 (Sim.Net.overloaded_links net)

let watermark_rearm_revaluates_standing_queues () =
  let _, _, net = mk_net () in
  for _ = 1 to 4 do
    send_data net ~flow:1 ~bytes:1500 [| 0; 1 |]
  done;
  Alcotest.(check int) "unarmed: nothing flagged" 0 (Sim.Net.overloaded_links net);
  (* Arming after the queue built must flag it immediately. *)
  Sim.Net.set_queue_watermarks net ~high:3_000 ~low:500;
  Alcotest.(check bool) "standing queue flagged on arm" true
    (Sim.Net.overloaded_links net > 0);
  Alcotest.check_raises "low >= high rejected"
    (Invalid_argument "Net.set_queue_watermarks: low must be in [0, high)") (fun () ->
      Sim.Net.set_queue_watermarks net ~high:100 ~low:100)

let pause_packet_delivery () =
  let eng, _, net = mk_net () in
  let got = ref None in
  Sim.Net.on_deliver net (fun pkt ->
      if Sim.Net.kind net pkt = Sim.Net.code_pause then
        got :=
          Some
            ( Sim.Net.pause_node net pkt,
              Sim.Net.pause_class net pkt,
              Sim.Net.pause_level net pkt,
              Sim.Net.pause_window net pkt ));
  let r = Sim.Net.intern_route net [| 1; 0 |] in
  Sim.Net.send_pause net ~node:1 ~cls:2 ~level:3 ~window_kbps:4_000 ~bytes:Wire.pause_size
    ~route:r;
  Sim.Net.release_route net r;
  Sim.Engine.run eng;
  Alcotest.(check (option (pair (pair int int) (pair int int))))
    "pause fields ride the fabric"
    (Some ((1, 2), (3, 4_000)))
    (Option.map (fun (a, b, c, d) -> ((a, b), (c, d))) !got)

(* -- metrics: per-class histograms and SLO accounting --------------------- *)

let mk_metrics () = Sim.Metrics.create ()

let hist_percentile_tracks_stats () =
  let m = mk_metrics () in
  let rng = Util.Rng.create 99 in
  (* Log-uniform FCTs across 5 decades stress every octave band. *)
  let fcts =
    Array.init 500 (fun _ -> int_of_float (10.0 ** (2.0 +. Util.Rng.float rng 5.0)))
  in
  Array.iteri
    (fun i fct ->
      Sim.Metrics.add_flow m ~priority:2 ~id:i ~src:0 ~dst:1 ~size:100 ~arrival_ns:0;
      ignore (Sim.Metrics.record_delivery m ~id:i ~seq:0 ~payload:100 ~now:fct))
    fcts;
  let exact = Array.map float_of_int fcts in
  List.iter
    (fun p ->
      let h = Sim.Metrics.class_percentile m ~priority:2 p in
      let s = Util.Stats.percentile exact p in
      (* HDR layout with 32 sub-buckets: relative quantization error < ~3%. *)
      Alcotest.(check bool)
        (Printf.sprintf "p%g within 3%% (hist %.0f vs exact %.0f)" p h s)
        true
        (abs_float (h -. s) /. s < 0.03))
    [ 10.0; 50.0; 90.0; 99.0; 99.9 ]

let slo_attainment_exact () =
  let m = mk_metrics () in
  Sim.Metrics.set_slo m ~priority:0 ~bound_ns:1_000;
  Alcotest.(check int) "bound readable" 1_000 (Sim.Metrics.slo_bound m ~priority:0);
  check_float "vacuously 1 before completions" 1.0 (Sim.Metrics.slo_attainment m ~priority:0);
  (* 3 within (one exactly at the bound), 1 beyond. *)
  List.iteri
    (fun i fct ->
      Sim.Metrics.add_flow m ~id:i ~src:0 ~dst:1 ~size:10 ~arrival_ns:0;
      ignore (Sim.Metrics.record_delivery m ~id:i ~seq:0 ~payload:10 ~now:fct))
    [ 400; 999; 1_000; 1_001 ];
  Alcotest.(check int) "class count" 4 (Sim.Metrics.class_completed m ~priority:0);
  check_float "exactly 3/4 within bound" 0.75 (Sim.Metrics.slo_attainment m ~priority:0);
  (* A class without an SLO attains trivially; classes are independent. *)
  Sim.Metrics.add_flow m ~priority:3 ~id:9 ~src:0 ~dst:1 ~size:10 ~arrival_ns:0;
  ignore (Sim.Metrics.record_delivery m ~id:9 ~seq:0 ~payload:10 ~now:999_999);
  check_float "no-SLO class attains 1" 1.0 (Sim.Metrics.slo_attainment m ~priority:3);
  check_float "class 0 unchanged" 0.75 (Sim.Metrics.slo_attainment m ~priority:0);
  Alcotest.check_raises "class out of range"
    (Invalid_argument "Metrics.set_slo: class out of range") (fun () ->
      Sim.Metrics.set_slo m ~priority:Sim.Metrics.max_class ~bound_ns:5);
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Metrics.set_slo: non-positive bound") (fun () ->
      Sim.Metrics.set_slo m ~priority:1 ~bound_ns:0)

let fcts_filter_by_priority () =
  let m = mk_metrics () in
  List.iter
    (fun (id, priority, fct) ->
      Sim.Metrics.add_flow m ~priority ~id ~src:0 ~dst:1 ~size:10 ~arrival_ns:0;
      ignore (Sim.Metrics.record_delivery m ~id ~seq:0 ~payload:10 ~now:fct))
    [ (0, 0, 1_000); (1, 3, 2_000); (2, 0, 3_000); (3, 5, 4_000) ];
  Alcotest.(check int) "unfiltered sees all" 4 (Array.length (Sim.Metrics.fcts_us m));
  let c0 = Sim.Metrics.fcts_us ~priority:0 m in
  Alcotest.(check int) "class 0 only" 2 (Array.length c0);
  check_float "first" 1.0 c0.(0);
  check_float "second" 3.0 c0.(1);
  Alcotest.(check int) "class 5 only" 1 (Array.length (Sim.Metrics.fcts_us ~priority:5 m))

let goodput_bucket_edges () =
  let m = mk_metrics () in
  Sim.Metrics.set_goodput_bucket m ~bucket_ns:1_000;
  Sim.Metrics.add_flow m ~id:0 ~src:0 ~dst:1 ~size:400 ~arrival_ns:0;
  (* Deliveries at 999 / 1000 / 1999 / 2000: bucket starts are inclusive,
     so the edge samples land in the younger bucket, never both. *)
  List.iteri
    (fun seq now -> ignore (Sim.Metrics.record_delivery m ~id:0 ~seq ~payload:100 ~now))
    [ 999; 1_000; 1_999; 2_000 ];
  Alcotest.(check (list (pair int int)))
    "edge deliveries bucket inclusively"
    [ (0, 100); (1_000, 200); (2_000, 100) ]
    (Array.to_list (Sim.Metrics.goodput_series m))

let note_rejoin_validates () =
  let m = mk_metrics () in
  Sim.Metrics.note_rejoin m ~node:3 ~start:100 ~finish:100;
  Alcotest.(check (list (triple int int int)))
    "zero-length rejoin allowed"
    [ (3, 100, 100) ]
    (Sim.Metrics.rejoin_samples m);
  Alcotest.check_raises "finish < start rejected"
    (Invalid_argument "Metrics.note_rejoin: finish < start") (fun () ->
      Sim.Metrics.note_rejoin m ~node:3 ~start:100 ~finish:99)

let hist_recording_allocation_free () =
  (* The flow lookup costs a couple of minor words per delivery (find_opt's
     [Some]); the completion path — histogram bucketing plus SLO counters —
     must add {e nothing} on top of that pre-existing baseline. *)
  let n = 4_000 in
  let per_delivery ~complete =
    let m = mk_metrics () in
    for c = 0 to Sim.Metrics.max_class - 1 do
      Sim.Metrics.set_slo m ~priority:c ~bound_ns:1_000
    done;
    if complete then
      for i = 0 to n - 1 do
        Sim.Metrics.add_flow m ~priority:(i mod Sim.Metrics.max_class) ~id:i ~src:0 ~dst:1
          ~size:100 ~arrival_ns:0
      done
    else Sim.Metrics.add_flow m ~id:0 ~src:0 ~dst:1 ~size:max_int ~arrival_ns:0;
    ignore (Sim.Metrics.record_delivery m ~id:0 ~seq:0 ~payload:100 ~now:500);
    let before = Gc.minor_words () in
    if complete then
      for i = 1 to n - 1 do
        ignore (Sim.Metrics.record_delivery m ~id:i ~seq:0 ~payload:100 ~now:(500 + i))
      done
    else
      for s = 1 to n - 1 do
        ignore (Sim.Metrics.record_delivery m ~id:0 ~seq:s ~payload:100 ~now:(500 + s))
      done;
    (Gc.minor_words () -. before) /. float_of_int (n - 1)
  in
  let base = per_delivery ~complete:false in
  let compl = per_delivery ~complete:true in
  Alcotest.(check bool)
    (Printf.sprintf "completion adds %.3f words over the %.3f/delivery baseline"
       (compl -. base) base)
    true
    (compl -. base < 0.1)

(* -- waterfill class reserve ---------------------------------------------- *)

let class_reserve_withholds_slice () =
  (* The waterfill already serves classes in strict priority order, so the
     reserve's job is the case where the high class is {e absent}: keep a
     slice of every link free so a class-0 burst finds instant headroom
     instead of a link the background filled wall to wall. *)
  let capacities = [| U.byte_rate 10.0 |] in
  let links = [| (0, U.fraction 1.0) |] in
  let rate_of ~priority ~reserve =
    let inc = Congestion.Waterfill.Inc.create ~capacities () in
    Congestion.Waterfill.Inc.set_class_reserve inc ~priority:1 ~reserve:(U.fraction reserve);
    Congestion.Waterfill.Inc.add_flow inc ~id:0 ~priority links;
    Congestion.Waterfill.Inc.allocate inc;
    U.to_float (Congestion.Waterfill.Inc.rate inc ~id:0)
  in
  let lo0 = rate_of ~priority:3 ~reserve:0.0 in
  let lo = rate_of ~priority:3 ~reserve:0.4 in
  check_float "low class loses exactly the reserved slice" 4.0 (lo0 -. lo);
  Alcotest.(check bool) "still forwards" true (lo > 0.0);
  check_float "high class untouched by the reserve"
    (rate_of ~priority:0 ~reserve:0.0)
    (rate_of ~priority:0 ~reserve:0.4);
  let inc = Congestion.Waterfill.Inc.create ~capacities () in
  Alcotest.check_raises "reserve >= 1 rejected"
    (Invalid_argument "Waterfill: class reserve out of range") (fun () ->
      Congestion.Waterfill.Inc.set_class_reserve inc ~priority:1 ~reserve:(U.fraction 1.0))

(* -- flowgen: partition/aggregate incast ---------------------------------- *)

let partition_aggregate_shape () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    Workload.Flowgen.partition_aggregate ~priority:1 topo (Util.Rng.create 7) ~aggregators:2
      ~fanout:5 ~rounds:3 ~round_interval_ns:1_000
  in
  Alcotest.(check int) "aggregators * fanout * rounds" 30 (List.length specs);
  List.iter
    (fun (s : Workload.Flowgen.spec) ->
      Alcotest.(check bool) "worker <> aggregator" true (s.src <> s.dst);
      Alcotest.(check bool) "round-aligned arrival" true (s.arrival_ns mod 1_000 = 0);
      Alcotest.(check int) "priority tagged" 1 s.priority;
      Alcotest.(check int) "response size" 20_000 s.size)
    specs;
  (* One synchronized volley per (round, aggregator): each round has
     exactly aggregators * fanout arrivals, and the aggregator set is
     fixed across rounds. *)
  let dsts r =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (s : Workload.Flowgen.spec) ->
           if s.arrival_ns = r * 1_000 then Some s.dst else None)
         specs)
  in
  Alcotest.(check (list int)) "same aggregators every round" (dsts 0) (dsts 2);
  Alcotest.(check int) "two aggregators" 2 (List.length (dsts 0));
  let again =
    Workload.Flowgen.partition_aggregate ~priority:1 topo (Util.Rng.create 7) ~aggregators:2
      ~fanout:5 ~rounds:3 ~round_interval_ns:1_000
  in
  Alcotest.(check bool) "deterministic in the seed" true (specs = again)

let partition_aggregate_validates () =
  let topo = Topology.torus [| 4; 4 |] in
  let rng = Util.Rng.create 1 in
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Flowgen.partition_aggregate: fanout out of [1, hosts - 1]" (fun () ->
      ignore
        (Workload.Flowgen.partition_aggregate topo rng ~aggregators:1 ~fanout:16 ~rounds:1
           ~round_interval_ns:0));
  expect "Flowgen.partition_aggregate: aggregators out of [1, hosts]" (fun () ->
      ignore
        (Workload.Flowgen.partition_aggregate topo rng ~aggregators:0 ~fanout:3 ~rounds:1
           ~round_interval_ns:0));
  expect "Flowgen.partition_aggregate: rounds < 1" (fun () ->
      ignore
        (Workload.Flowgen.partition_aggregate topo rng ~aggregators:1 ~fanout:3 ~rounds:0
           ~round_interval_ns:0))

(* -- stack admission gate ------------------------------------------------- *)

let stack_try_open_flow () =
  let topo = Topology.torus [| 3; 3 |] in
  let s = R2c2.Stack.create topo in
  Alcotest.(check int) "floor starts open" 8 (R2c2.Stack.shed_floor s);
  (match R2c2.Stack.try_open_flow s ~priority:7 ~src:0 ~dst:1 with
  | Some _ -> ()
  | None -> Alcotest.fail "admitted class refused");
  R2c2.Stack.note_epoch_load s ~overloaded:true;
  R2c2.Stack.note_epoch_load s ~overloaded:true;
  Alcotest.(check bool) "class 6 now refused" false (R2c2.Stack.admits s ~priority:6);
  (match R2c2.Stack.try_open_flow s ~priority:6 ~src:0 ~dst:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "shed class admitted");
  Alcotest.(check int) "refusals counted" 1 (R2c2.Stack.shed_flows s);
  (* The ungated path still works for shed classes, and class 0 always
     passes the gate. *)
  ignore (R2c2.Stack.open_flow s ~priority:6 ~src:0 ~dst:2);
  (match R2c2.Stack.try_open_flow s ~priority:0 ~src:0 ~dst:3 with
  | Some _ -> ()
  | None -> Alcotest.fail "class 0 refused");
  (* Recovery: default 3 clean epochs re-admit one class. *)
  for _ = 1 to 3 do
    R2c2.Stack.note_epoch_load s ~overloaded:false
  done;
  Alcotest.(check bool) "class 6 re-admitted" true (R2c2.Stack.admits s ~priority:6)

(* -- simulator: shedding and pacing under incast -------------------------- *)

let overload_cfg ~on =
  {
    Sim.R2c2_sim.default_config with
    recompute_interval_ns = 20_000;
    queue_high_watermark = (if on then 10_000 else max_int);
    queue_low_watermark = 2_000;
    overload_control = on;
    slos = [ (0, 2_000_000) ];
    reserve_priority = 1;
    class_reserve = U.fraction (if on then 0.2 else 0.0);
    seed = 11;
  }

let mk_overload_sim ~on =
  let topo = Topology.torus [| 3; 3 |] in
  let t = Sim.R2c2_sim.create (overload_cfg ~on) topo in
  let rng = Util.Rng.create 5 in
  let bg =
    Workload.Flowgen.poisson_pareto ~priority:3 ~max_size:300_000 topo rng ~flows:60
      ~mean_interarrival_ns:4_000.0
  in
  let incast =
    Workload.Flowgen.partition_aggregate ~priority:0 topo rng ~aggregators:2 ~fanout:6
      ~rounds:3 ~round_interval_ns:60_000
  in
  (t, bg, incast)

let sim_sheds_and_paces_under_incast () =
  let t, bg, incast = mk_overload_sim ~on:true in
  let report =
    Sim.Scenario.run
      ~invariants:
        [
          Sim.Scenario.Byte_conservation;
          Sim.Scenario.Slo_attainment { priority = 0; min_attainment = 0.99 };
          Sim.Scenario.Tail_latency { priority = 0; percentile = 99.9; max_ns = 2_000_000 };
        ]
      t
      [ Sim.Scenario.surge ~at:0 bg; Sim.Scenario.surge ~at:30_000 incast ]
  in
  Alcotest.(check (list string)) "no violations" [] report.Sim.Scenario.violations;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check bool) "overload detected" true (r.overload_epochs > 0);
  Alcotest.(check bool) "background shed" true (r.shed_flows > 0);
  Alcotest.(check bool) "shed payload accounted" true (r.shed_payload > 0);
  (* Every class-0 flow completes (never shed), every background flow is
     either completed or shed — nothing is silently lost. *)
  let m = r.metrics in
  Alcotest.(check int) "class 0 all complete" (List.length incast)
    (Sim.Metrics.class_completed m ~priority:0);
  Alcotest.(check int) "background accounted"
    (List.length bg)
    (Sim.Metrics.class_completed m ~priority:3 + r.shed_flows);
  Alcotest.(check int) "payload conserved" r.injected_payload
    (r.delivered_payload + r.dropped_payload + r.blackholed_payload);
  Alcotest.(check int) "fabric drained" 0 r.overloaded_links

let sim_overload_default_off () =
  (* With the controller off the same workload runs ungated: no epochs,
     sheds or pauses, and the introspection accessors report neutral. *)
  let t, bg, incast = mk_overload_sim ~on:false in
  Sim.Scenario.run ~invariants:[ Sim.Scenario.Byte_conservation ] t
    [ Sim.Scenario.surge ~at:0 bg; Sim.Scenario.surge ~at:30_000 incast ]
  |> ignore;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check int) "no epochs" 0 r.overload_epochs;
  Alcotest.(check int) "no sheds" 0 r.shed_flows;
  Alcotest.(check int) "no pauses" 0 (r.pauses_sent + r.pauses_received);
  Alcotest.(check int) "floor neutral" Sim.Metrics.max_class (Sim.R2c2_sim.shed_floor t);
  check_float "pacer neutral" 1.0 (Sim.R2c2_sim.pacer_scale t ~node:0);
  Alcotest.(check int) "all flows ran"
    (List.length bg + List.length incast)
    (Sim.Metrics.completed_count r.metrics)

let scenario_slo_invariant_fires () =
  (* An unattainable bound must trip both latency monitors. *)
  let t, bg, _ = mk_overload_sim ~on:false in
  let violations = ref [] in
  Sim.Scenario.run
    ~on_violation:(fun m -> violations := m :: !violations)
    ~invariants:
      [
        Sim.Scenario.Slo_attainment { priority = 3; min_attainment = 1.1 };
        Sim.Scenario.Tail_latency { priority = 3; percentile = 50.0; max_ns = 1 };
      ]
    t
    [ Sim.Scenario.surge ~at:0 bg ]
  |> ignore;
  Alcotest.(check int) "both monitors fired" 2 (List.length !violations)

let suites =
  [
    ( "overload.wire",
      [ tc "pause roundtrip" pause_roundtrip; tc "pause corruption" pause_corruption_detected ]
    );
    ( "overload.admission",
      [
        tc "sheds lowest class first" admission_sheds_lowest_first;
        tc "class 0 never shed" admission_never_sheds_class0;
        tc "hysteresis on recovery" admission_hysteresis;
      ] );
    ("overload.pacer", [ tc "multiplicative decrease, additive recovery" pacer_aimd ]);
    ( "overload.net",
      [
        tc "watermark hysteresis" watermark_hysteresis;
        tc "arming re-evaluates standing queues" watermark_rearm_revaluates_standing_queues;
        tc "pause packets ride the fabric" pause_packet_delivery;
      ] );
    ( "overload.metrics",
      [
        tc "class percentiles track exact stats" hist_percentile_tracks_stats;
        tc "slo attainment is exact" slo_attainment_exact;
        tc "fcts filter by priority" fcts_filter_by_priority;
        tc "goodput bucket edges" goodput_bucket_edges;
        tc "note_rejoin validates" note_rejoin_validates;
        tc "completion recording allocation-free" hist_recording_allocation_free;
      ] );
    ("overload.waterfill", [ tc "class reserve withholds a slice" class_reserve_withholds_slice ]);
    ( "overload.flowgen",
      [
        tc "partition/aggregate shape" partition_aggregate_shape;
        tc "partition/aggregate validation" partition_aggregate_validates;
      ] );
    ("overload.stack", [ tc "try_open_flow gate" stack_try_open_flow ]);
    ( "overload.sim",
      [
        tc "sheds and paces under incast" sim_sheds_and_paces_under_incast;
        tc "default-off is inert" sim_overload_default_off;
        tc "slo invariants fire" scenario_slo_invariant_fires;
      ] );
  ]
