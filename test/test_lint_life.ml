(* Tests for the L-rule arena-lifetime walker (Lint_life).

   Two layers:

   - Fixtures: the bug classes the rules exist for — use-after-free,
     double release, conditional leak, wrong releaser, loop-body
     release — must flag, and the sanctioned intern/send/release idiom
     plus every ownership-transfer shape must stay quiet.

   - A qcheck differential: random mini-programs over alloc / release /
     use / if are rendered to OCaml source and fed to the walker, while
     a reference interpreter enumerates every path through the same
     program and computes the ground-truth verdict per handle
     (exists-path semantics: leak if some path ends with the handle
     unreleased, L2 if some path releases twice or uses after a
     release). The walker's branch-join lattice must agree with literal
     path enumeration on every generated program. *)

let tc name f = Alcotest.test_case name `Quick f

let scan src = Lint_life.scan_src ~file:"lib/sim/fixture.ml" src

let rules_of vs =
  List.sort String.compare (List.map (fun v -> v.Lint_core.rule) vs)

let check_rules name expected src =
  Alcotest.(check (list string)) name (List.sort String.compare expected) (rules_of (scan src))

(* -- fixtures: must flag ---------------------------------------------------- *)

let use_after_free_flags () =
  check_rules "use after release" [ "L2" ]
    (String.concat "\n"
       [
         "let f t a =";
         "  let r = intern_route t a in";
         "  release_route t r;";
         "  send_data t r";
       ]);
  check_rules "read through a freed packet" [ "L2" ]
    (String.concat "\n"
       [
         "let g t =";
         "  let h = alloc_pkt t in";
         "  free t h;";
         "  get t h 1";
       ])

let double_release_flags () =
  check_rules "released twice" [ "L2" ]
    (String.concat "\n"
       [
         "let f t a =";
         "  let r = intern_route t a in";
         "  release_route t r;";
         "  release_route t r";
       ]);
  check_rules "second release on one path only" [ "L2" ]
    (String.concat "\n"
       [
         "let f t a c =";
         "  let r = intern_route t a in";
         "  (if c then release_route t r);";
         "  release_route t r";
       ])

let leak_flags () =
  check_rules "never released" [ "L1" ]
    "let f t a = let r = intern_route t a in send_data t r";
  check_rules "released on only some paths" [ "L1" ]
    (String.concat "\n"
       [
         "let f t a c =";
         "  let r = intern_route t a in";
         "  if c then release_route t r else ()";
       ]);
  check_rules "minted and discarded in statement position" [ "L1" ]
    "let f t a = intern_route t a; ()"

let wrong_releaser_flags () =
  (* A route slice handed to the packet pool's free recycles the wrong
     arena; both the mismatch and kind symmetry are checked. *)
  check_rules "route to the packet releaser" [ "L2" ]
    "let f t a = let r = intern_route t a in free t r";
  check_rules "packet to the route releaser" [ "L2" ]
    "let f t = let h = alloc_pkt t in release_route t h"

let loop_release_flags () =
  (* Two genuine defects in one shape: a second iteration double-releases
     (L2) and a zero-iteration loop leaks (L1). *)
  check_rules "release of an outer handle inside a loop body" [ "L1"; "L2" ]
    (String.concat "\n"
       [
         "let f t a n =";
         "  let r = intern_route t a in";
         "  for i = 0 to n do release_route t r done";
       ])

(* -- fixtures: must stay quiet ---------------------------------------------- *)

let sanctioned_idiom_ok () =
  (* The dominant shape in lib/sim/r2c2_sim.ml. *)
  check_rules "intern / send / release" []
    (String.concat "\n"
       [
         "let f t net path flow seq =";
         "  let route = intern_route net path in";
         "  send_data net ~flow ~seq ~route;";
         "  release_route net route";
       ]);
  check_rules "release on every branch" []
    (String.concat "\n"
       [
         "let f t a c =";
         "  let r = intern_route t a in";
         "  if c then begin send_data t r; release_route t r end";
         "  else release_route t r";
       ])

let ownership_transfer_ok () =
  check_rules "returned handle transfers ownership" []
    "let mint t a = let r = intern_route t a in r";
  check_rules "handle stored in a record transfers ownership" []
    "let f t a = let r = intern_route t a in { path = r; hops = 0 }";
  check_rules "handle passed to an unknown callee transfers ownership" []
    "let f t a = let r = intern_route t a in register t r"

let diverging_paths_exempt () =
  check_rules "raising branch owes no release" []
    (String.concat "\n"
       [
         "let f t a c =";
         "  let r = intern_route t a in";
         "  if c then failwith \"bad\" else release_route t r";
       ]);
  check_rules "assert false branch owes no release" []
    (String.concat "\n"
       [
         "let f t a c =";
         "  let r = intern_route t a in";
         "  (match c with 0 -> assert false | _ -> release_route t r)";
       ])

(* -- qcheck differential ----------------------------------------------------- *)

type stmt =
  | Alloc of int
  | Release of int
  | Use of int
  | If of stmt list * stmt list

let rec render_block b =
  match b with
  | [] -> "()"
  | Alloc i :: rest ->
      Printf.sprintf "let h%d = intern_route t a in\n%s" i (render_block rest)
  | Release i :: rest -> Printf.sprintf "release_route t h%d;\n%s" i (render_block rest)
  | Use i :: rest -> Printf.sprintf "send_data t h%d;\n%s" i (render_block rest)
  | If (a, b') :: rest ->
      Printf.sprintf "(if c then begin\n%s\nend else begin\n%s\nend);\n%s" (render_block a)
        (render_block b') (render_block rest)

let render prog = "let f t a c =\n" ^ render_block prog

(* Scope-correct generator: Release/Use only name handles in scope;
   branch-local allocations die with the branch. Handle ids are globally
   fresh so violation messages identify them unambiguously. *)
let gen_prog =
  let open QCheck.Gen in
  let rec block ~depth ~fuel scope fresh =
    if fuel <= 0 then return ([], fresh)
    else
      let cont stmt scope fresh =
        map (fun (rest, f) -> (stmt :: rest, f)) (block ~depth ~fuel:(fuel - 1) scope fresh)
      in
      let choices =
        (3, cont (Alloc fresh) (fresh :: scope) (fresh + 1))
        :: (if scope = [] then []
            else
              [
                (3, oneofl scope >>= fun v -> cont (Release v) scope fresh);
                (2, oneofl scope >>= fun v -> cont (Use v) scope fresh);
              ])
        @ (if depth <= 0 then []
           else
             [
               ( 1,
                 block ~depth:(depth - 1) ~fuel:3 scope fresh >>= fun (a, f1) ->
                 block ~depth:(depth - 1) ~fuel:3 scope f1 >>= fun (b, f2) ->
                 cont (If (a, b)) scope f2 );
             ])
      in
      frequency choices
  in
  map fst (block ~depth:2 ~fuel:6 [] 0)

(* Reference interpreter: enumerate every path as a flat event sequence
   (a handle's scope closes at the end of the block that bound it), then
   simulate each path with literal release counters. *)
type ev = EAlloc of int | ERel of int | EUse of int | EEnd of int

let rec seqs block =
  match block with
  | [] -> [ [] ]
  | Alloc i :: rest -> List.map (fun s -> (EAlloc i :: s) @ [ EEnd i ]) (seqs rest)
  | Release i :: rest -> List.map (fun s -> ERel i :: s) (seqs rest)
  | Use i :: rest -> List.map (fun s -> EUse i :: s) (seqs rest)
  | If (a, b) :: rest ->
      let branches = seqs a @ seqs b and conts = seqs rest in
      List.concat_map (fun br -> List.map (fun k -> br @ k) conts) branches

module IMap = Map.Make (Int)

let reference_flags prog =
  let l1 = ref IMap.empty and l2 = ref IMap.empty in
  let mark m i = m := IMap.add i true !m in
  List.iter
    (fun path ->
      let rel = Hashtbl.create 8 in
      let count i = Option.value ~default:0 (Hashtbl.find_opt rel i) in
      List.iter
        (function
          | EAlloc i -> Hashtbl.replace rel i 0
          | ERel i ->
              if count i >= 1 then mark l2 i;
              Hashtbl.replace rel i (count i + 1)
          | EUse i -> if count i >= 1 then mark l2 i
          | EEnd i -> if count i = 0 then mark l1 i)
        path)
    (seqs prog);
  (!l1, !l2)

(* The walker's verdicts, keyed back to handles by the 'h<i>' the
   violation message names. *)
let walker_flags prog =
  let l1 = ref IMap.empty and l2 = ref IMap.empty in
  List.iter
    (fun (v : Lint_core.violation) ->
      let msg = v.message in
      let handle =
        let n = String.length msg in
        let rec find i =
          if i + 2 >= n then None
          else if msg.[i] = '\'' && msg.[i + 1] = 'h' then begin
            let j = ref (i + 2) in
            while !j < n && msg.[!j] >= '0' && msg.[!j] <= '9' do
              incr j
            done;
            if !j < n && msg.[!j] = '\'' && !j > i + 2 then
              Some (int_of_string (String.sub msg (i + 2) (!j - i - 2)))
            else find (i + 1)
          end
          else find (i + 1)
        in
        find 0
      in
      match handle with
      | None -> ()
      | Some i -> (
          match v.rule with
          | "L1" -> l1 := IMap.add i true !l1
          | "L2" -> l2 := IMap.add i true !l2
          | _ -> ()))
    (scan (render prog));
  (!l1, !l2)

let pp_flags (l1, l2) =
  let names m = String.concat "," (List.map (fun (i, _) -> "h" ^ string_of_int i) (IMap.bindings m)) in
  Printf.sprintf "L1:{%s} L2:{%s}" (names l1) (names l2)

let qcheck_walker_matches_reference =
  QCheck.Test.make ~count:500 ~name:"L-walker agrees with path enumeration"
    (QCheck.make ~print:(fun p -> render p ^ "\nreference: " ^ pp_flags (reference_flags p))
       gen_prog)
    (fun prog ->
      let re_l1, re_l2 = reference_flags prog in
      let wa_l1, wa_l2 = walker_flags prog in
      IMap.equal Bool.equal re_l1 wa_l1 && IMap.equal Bool.equal re_l2 wa_l2)

let suites =
  [
    ( "lint-life",
      [
        tc "L2: use after free flags" use_after_free_flags;
        tc "L2: double release flags" double_release_flags;
        tc "L1: leaks flag" leak_flags;
        tc "L2: wrong releaser flags" wrong_releaser_flags;
        tc "L2: loop-body release flags" loop_release_flags;
        tc "sanctioned intern/send/release idiom is quiet" sanctioned_idiom_ok;
        tc "ownership transfer is quiet" ownership_transfer_ok;
        tc "diverging paths owe no release" diverging_paths_exempt;
        QCheck_alcotest.to_alcotest qcheck_walker_matches_reference;
      ] );
  ]
