(* Tests for lib/wire: packet formats of Fig. 6, checksums, route
   selectors. *)

let tc name f = Alcotest.test_case name `Quick f

let sample_header =
  {
    Wire.flow = 0xDEADBEE;
    src = 17;
    dst = 391;
    seq = 123_456;
    plen = 1465;
    route = [| 0; 3; 5; 1; 2; 4; 0; 7 |];
    ridx = 2;
  }

let data_roundtrip () =
  let b = Wire.encode_data sample_header in
  Alcotest.(check int) "header size" Wire.data_header_size (Bytes.length b);
  match Wire.decode_data b with
  | Error e -> Alcotest.fail e
  | Ok h ->
      Alcotest.(check int) "flow" sample_header.Wire.flow h.Wire.flow;
      Alcotest.(check int) "src" sample_header.Wire.src h.Wire.src;
      Alcotest.(check int) "dst" sample_header.Wire.dst h.Wire.dst;
      Alcotest.(check int) "seq" sample_header.Wire.seq h.Wire.seq;
      Alcotest.(check int) "plen" sample_header.Wire.plen h.Wire.plen;
      Alcotest.(check int) "ridx" sample_header.Wire.ridx h.Wire.ridx;
      Alcotest.(check (array int)) "route" sample_header.Wire.route h.Wire.route

let data_max_route () =
  let h = { sample_header with Wire.route = Array.init 42 (fun i -> i mod 8); ridx = 0 } in
  match Wire.decode_data (Wire.encode_data h) with
  | Ok h' -> Alcotest.(check (array int)) "42-hop route" h.Wire.route h'.Wire.route
  | Error e -> Alcotest.fail e

let data_rejects_oversized_route () =
  Alcotest.check_raises "route too long"
    (Invalid_argument "Wire.encode_data: route too long") (fun () ->
      ignore (Wire.encode_data { sample_header with Wire.route = Array.make 43 0 }))

let data_rejects_wide_fields () =
  Alcotest.check_raises "selector too wide"
    (Invalid_argument "Wire: field route hop = 8 exceeds 3 bits") (fun () ->
      ignore (Wire.encode_data { sample_header with Wire.route = [| 8 |]; ridx = 0 }))

let data_detects_corruption () =
  let rng = Util.Rng.create 3 in
  let b = Wire.encode_data sample_header in
  let detected = ref 0 in
  let n = 200 in
  for _ = 1 to n do
    match Wire.decode_data (Wire.corrupt rng b) with
    | Error _ -> incr detected
    | Ok h' -> if h' <> sample_header then () else incr detected
    (* a flip that decodes to the identical header would be a real miss *)
  done;
  Alcotest.(check int) "every single-bit flip detected or harmless" n !detected

let data_short_buffer () =
  match Wire.decode_data (Bytes.create 10) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded short buffer"

let sample_bcast =
  {
    Wire.event = Wire.Flow_start;
    bsrc = 12;
    bdst = 511;
    weight = 3;
    priority = 1;
    demand_kbps = 1_000_000;
    tree = 2;
    rp = Routing.Vlb;
  }

let broadcast_roundtrip () =
  let b = Wire.encode_broadcast sample_bcast in
  Alcotest.(check int) "16 bytes" Wire.broadcast_size (Bytes.length b);
  match Wire.decode_broadcast b with
  | Error e -> Alcotest.fail e
  | Ok p -> Alcotest.(check bool) "roundtrip" true (p = sample_bcast)

let broadcast_all_events () =
  List.iter
    (fun event ->
      let p = { sample_bcast with Wire.event } in
      match Wire.decode_broadcast (Wire.encode_broadcast p) with
      | Ok p' -> Alcotest.(check bool) "event preserved" true (p'.Wire.event = event)
      | Error e -> Alcotest.fail e)
    [ Wire.Flow_start; Wire.Flow_finish; Wire.Demand_update; Wire.Route_change ]

let broadcast_detects_corruption () =
  let rng = Util.Rng.create 5 in
  let b = Wire.encode_broadcast sample_bcast in
  for _ = 1 to 200 do
    match Wire.decode_broadcast (Wire.corrupt rng b) with
    | Error _ -> ()
    | Ok p -> Alcotest.(check bool) "if decoded, must equal original" true (p = sample_bcast)
  done

let broadcast_max_demand () =
  (* 4 Tbps in Kbps fits 32 bits. *)
  let p = { sample_bcast with Wire.demand_kbps = 4_000_000_000 } in
  match Wire.decode_broadcast (Wire.encode_broadcast p) with
  | Ok p' -> Alcotest.(check int) "4 Tbps demand" 4_000_000_000 p'.Wire.demand_kbps
  | Error e -> Alcotest.fail e

let broadcast_wrong_size () =
  match Wire.decode_broadcast (Bytes.create 15) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded 15-byte broadcast"

let checksum_zero_buffer () =
  let b = Bytes.make 8 '\000' in
  Alcotest.(check int) "ones-complement of 0" 0xFFFF (Wire.checksum b)

let checksum_odd_length () =
  let b = Bytes.of_string "abc" in
  let c1 = Wire.checksum b in
  Alcotest.(check bool) "in 16-bit range" true (c1 >= 0 && c1 <= 0xFFFF)

let route_selectors_roundtrip () =
  let topo = Topology.torus [| 4; 4; 4 |] in
  let ctx = Routing.make topo in
  let rng = Util.Rng.create 7 in
  for _ = 1 to 50 do
    let src = Util.Rng.int rng 64 and dst = Util.Rng.int rng 64 in
    if src <> dst then begin
      let path = Routing.sample_path ctx rng Routing.Rps ~src ~dst in
      let sels = Wire.route_selectors ctx path in
      (* Walking the selectors reproduces the path. *)
      let v = ref src in
      Array.iteri
        (fun i s ->
          v := Wire.apply_selector topo !v s;
          Alcotest.(check int) "selector walks the path" path.(i + 1) !v)
        sels
    end
  done

let route_selectors_reject_high_degree () =
  (* A k=6 flattened butterfly has degree 10 — beyond the 3-bit selector
     budget of the Fig. 6 header. *)
  let topo = Topology.flattened_butterfly 6 in
  let ctx = Routing.make topo in
  let rng = Util.Rng.create 11 in
  let path = Routing.sample_path ctx rng Routing.Rps ~src:0 ~dst:35 in
  Alcotest.check_raises "degree over 8"
    (Invalid_argument "Wire.route_selectors: node degree exceeds 8") (fun () ->
      ignore (Wire.route_selectors ctx path))

let qcheck_data_roundtrip =
  QCheck.Test.make ~name:"data header roundtrip" ~count:500
    QCheck.(
      quad (int_bound 0xFFFF) (int_bound 0xFFFF)
        (pair (int_bound 1_000_000) (int_bound 1465))
        (list_of_size Gen.(0 -- 42) (int_bound 7)))
    (fun (src, dst, (seq, plen), route) ->
      let h = { Wire.flow = src lxor (dst * 7); src; dst; seq; plen; route = Array.of_list route; ridx = 0 } in
      match Wire.decode_data (Wire.encode_data h) with Ok h' -> h' = h | Error _ -> false)

let qcheck_broadcast_roundtrip =
  QCheck.Test.make ~name:"broadcast roundtrip" ~count:500
    QCheck.(
      quad (int_bound 0xFFFF) (int_bound 0xFFFF) (pair (int_bound 255) (int_bound 255))
        (pair (int_bound 0xFFFFFFF) (int_bound 3)))
    (fun (bsrc, bdst, (weight, priority), (demand_kbps, rpi)) ->
      let rp = Option.get (Routing.protocol_of_int rpi) in
      let p = { Wire.event = Wire.Flow_start; bsrc; bdst; weight; priority; demand_kbps; tree = 1; rp } in
      match Wire.decode_broadcast (Wire.encode_broadcast p) with
      | Ok p' -> p' = p
      | Error _ -> false)

let qcheck_join_roundtrip =
  QCheck.Test.make ~name:"JOIN roundtrip" ~count:500
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0x3FFFFFFF))
    (fun (jnode, jinc) ->
      match Wire.decode_join (Wire.encode_join { Wire.jnode; jinc }) with
      | Ok j -> j = { Wire.jnode; jinc }
      | Error _ -> false)

let qcheck_snapshot_req_roundtrip =
  QCheck.Test.make ~name:"SNAPSHOT-REQ roundtrip" ~count:500
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0x3FFFFFFF))
    (fun (sroot, srequester, sinc) ->
      let s = { Wire.sroot; srequester; sinc } in
      match Wire.decode_snapshot_req (Wire.encode_snapshot_req s) with
      | Ok s' -> s' = s
      | Error _ -> false)

let join_wrong_size_rejected () =
  (match Wire.decode_join (Bytes.make Wire.snapshot_req_size '\000') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "12-byte buffer accepted as JOIN");
  match Wire.decode_snapshot_req (Bytes.make Wire.join_size '\000') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "10-byte buffer accepted as SNAPSHOT-REQ"

(* -- deterministic fuzz over every packet type ----------------------------- *)

(* One seeded generator drives random instances of every control format —
   all four broadcast events in both the 16-byte and the sequenced 24-byte
   layout, digests and NACKs — through an encode/decode round trip, plus a
   bit-flip corruption check per format. *)
let fuzz_all_packet_types () =
  let rng = Util.Rng.create 4099 in
  let events = [| Wire.Flow_start; Wire.Flow_finish; Wire.Demand_update; Wire.Route_change |] in
  let int64_of rng =
    Int64.logxor
      (Int64.of_int (Util.Rng.int rng 0x3FFFFFFF))
      (Int64.shift_left (Int64.of_int (Util.Rng.int rng 0x3FFFFFFF)) 34)
  in
  for i = 0 to 499 do
    let p =
      {
        Wire.event = events.(i mod 4);
        bsrc = Util.Rng.int rng 0x10000;
        bdst = Util.Rng.int rng 0x10000;
        weight = Util.Rng.int rng 256;
        priority = Util.Rng.int rng 256;
        demand_kbps = Util.Rng.int rng 0x40000000;
        tree = Util.Rng.int rng 256;
        rp = Option.get (Routing.protocol_of_int (Util.Rng.int rng 4));
      }
    in
    (match Wire.decode_broadcast (Wire.encode_broadcast p) with
    | Ok p' -> if p' <> p then Alcotest.failf "broadcast roundtrip broke at %d" i
    | Error e -> Alcotest.failf "broadcast decode failed at %d: %s" i e);
    let flow = Util.Rng.int rng 0x40000000 and seq = Util.Rng.int rng 0x40000000 in
    let sb = Wire.encode_seq_broadcast p ~flow ~seq in
    (match Wire.decode_seq_broadcast sb with
    | Ok (p', flow', seq') ->
        if p' <> p || flow' <> flow || seq' <> seq then
          Alcotest.failf "seq broadcast roundtrip broke at %d" i
    | Error e -> Alcotest.failf "seq broadcast decode failed at %d: %s" i e);
    (match Wire.decode_seq_broadcast (Wire.corrupt rng sb) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "seq broadcast corruption undetected at %d" i);
    let d =
      {
        Wire.dsrc = Util.Rng.int rng 0x10000;
        dtree = Util.Rng.int rng 256;
        epoch = Util.Rng.int rng 0x40000000;
        last_seq = Util.Rng.int rng 0x40000000;
        state_hash = int64_of rng;
      }
    in
    let db = Wire.encode_digest d in
    (match Wire.decode_digest db with
    | Ok d' -> if d' <> d then Alcotest.failf "digest roundtrip broke at %d" i
    | Error e -> Alcotest.failf "digest decode failed at %d: %s" i e);
    (match Wire.decode_digest (Wire.corrupt rng db) with
    | Error _ -> ()
    | Ok d' -> if d' <> d then () else Alcotest.failf "digest corruption undetected at %d" i);
    let nfrom = Util.Rng.int rng 0x3FFFFFFF in
    let n =
      {
        Wire.nsrc = Util.Rng.int rng 0x10000;
        nrequester = Util.Rng.int rng 0x10000;
        ntree = Util.Rng.int rng 256;
        nfrom;
        nto = nfrom + Util.Rng.int rng 1024;
      }
    in
    let nb = Wire.encode_nack n in
    (match Wire.decode_nack nb with
    | Ok n' -> if n' <> n then Alcotest.failf "NACK roundtrip broke at %d" i
    | Error e -> Alcotest.failf "NACK decode failed at %d: %s" i e);
    (match Wire.decode_nack (Wire.corrupt rng nb) with
    | Error _ -> ()
    | Ok n' -> if n' <> n then () else Alcotest.failf "NACK corruption undetected at %d" i);
    let j =
      { Wire.jnode = Util.Rng.int rng 0x10000; jinc = Util.Rng.int rng 0x40000000 }
    in
    let jb = Wire.encode_join j in
    (match Wire.decode_join jb with
    | Ok j' -> if j' <> j then Alcotest.failf "JOIN roundtrip broke at %d" i
    | Error e -> Alcotest.failf "JOIN decode failed at %d: %s" i e);
    (match Wire.decode_join (Wire.corrupt rng jb) with
    | Error _ -> ()
    | Ok j' -> if j' <> j then () else Alcotest.failf "JOIN corruption undetected at %d" i);
    let s =
      {
        Wire.sroot = Util.Rng.int rng 0x10000;
        srequester = Util.Rng.int rng 0x10000;
        sinc = Util.Rng.int rng 0x40000000;
      }
    in
    let sb = Wire.encode_snapshot_req s in
    (match Wire.decode_snapshot_req sb with
    | Ok s' -> if s' <> s then Alcotest.failf "SNAPSHOT-REQ roundtrip broke at %d" i
    | Error e -> Alcotest.failf "SNAPSHOT-REQ decode failed at %d: %s" i e);
    match Wire.decode_snapshot_req (Wire.corrupt rng sb) with
    | Error _ -> ()
    | Ok s' ->
        if s' <> s then ()
        else Alcotest.failf "SNAPSHOT-REQ corruption undetected at %d" i
  done

let nack_rejects_empty_range () =
  Alcotest.check_raises "to < from"
    (Invalid_argument "Wire.encode_nack: empty range") (fun () ->
      ignore
        (Wire.encode_nack
           { Wire.nsrc = 1; nrequester = 2; ntree = 0; nfrom = 5; nto = 4 }))

let seq_broadcast_wrong_size_rejected () =
  (match Wire.decode_seq_broadcast (Bytes.make Wire.broadcast_size '\000') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "16-byte buffer accepted as sequenced broadcast");
  match Wire.decode_digest (Bytes.make Wire.nack_size '\000') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "16-byte buffer accepted as digest"

(* -- batched control-plane codec ------------------------------------------ *)

let batch_pkt =
  {
    Wire.event = Wire.Demand_update;
    bsrc = 7;
    bdst = 12;
    weight = 3;
    priority = 1;
    demand_kbps = 250_000;
    tree = 2;
    rp = Routing.Rps;
  }

let batch_items =
  [
    Wire.Item_broadcast batch_pkt;
    Wire.Item_seq_broadcast (batch_pkt, 41, 9);
    Wire.Item_digest
      { Wire.dsrc = 3; dtree = 2; epoch = 5; last_seq = 9; state_hash = 0xBEEFL };
    Wire.Item_nack { Wire.nsrc = 3; nrequester = 8; ntree = 2; nfrom = 4; nto = 7 };
  ]

let batch_heterogeneous_roundtrip () =
  let b = Wire.encode_batch batch_items in
  Alcotest.(check int)
    "size" (Wire.batch_size batch_items) (Bytes.length b);
  match Wire.decode_batch b with
  | Ok got -> if got <> batch_items then Alcotest.fail "batch roundtrip broke"
  | Error e -> Alcotest.failf "batch decode failed: %s" e

let batch_empty () =
  let b = Wire.encode_batch [] in
  Alcotest.(check int) "empty encodes to zero bytes" 0 (Bytes.length b);
  match Wire.decode_batch b with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty batch decoded items"
  | Error e -> Alcotest.failf "empty batch decode failed: %s" e

let batch_truncation_detected () =
  let b = Wire.encode_batch batch_items in
  match Wire.decode_batch (Bytes.sub b 0 (Bytes.length b - 1)) with
  | Error e ->
      if not (String.length e >= 15 && String.sub e 0 15 = "batch truncated") then
        Alcotest.failf "unexpected truncation error: %s" e
  | Ok _ -> Alcotest.fail "truncated batch accepted"

let batch_unknown_code_rejected () =
  let b = Wire.encode_batch batch_items in
  Bytes.set b 0 '\255';
  match Wire.decode_batch b with
  | Error e ->
      if not (String.length e >= 24 && String.sub e 0 24 = "batch: unknown item code") then
        Alcotest.failf "unexpected unknown-code error: %s" e
  | Ok _ -> Alcotest.fail "unknown item code accepted"

let batch_corruption_located () =
  (* Flip a byte inside the second item's body; the error must name the
     second item's offset, one broadcast frame in. *)
  let b = Wire.encode_batch batch_items in
  let second = 1 + Wire.broadcast_size in
  Bytes.set b (second + 3) (Char.chr (Char.code (Bytes.get b (second + 3)) lxor 0x40));
  match Wire.decode_batch b with
  | Error e ->
      let want = Printf.sprintf "batch item at offset %d:" second in
      let n = String.length want in
      if not (String.length e >= n && String.sub e 0 n = want) then
        Alcotest.failf "corruption not located: %s" e
  | Ok _ -> Alcotest.fail "corrupted batch item accepted"

let suites =
  [
    ( "wire",
      [
        tc "data header roundtrip" data_roundtrip;
        tc "42-hop route fits" data_max_route;
        tc "oversized route rejected" data_rejects_oversized_route;
        tc "wide selector rejected" data_rejects_wide_fields;
        tc "corruption detected" data_detects_corruption;
        tc "short buffer rejected" data_short_buffer;
        tc "broadcast roundtrip" broadcast_roundtrip;
        tc "all broadcast events" broadcast_all_events;
        tc "broadcast corruption detected" broadcast_detects_corruption;
        tc "4 Tbps demand encodes" broadcast_max_demand;
        tc "wrong-size broadcast rejected" broadcast_wrong_size;
        tc "checksum of zeros" checksum_zero_buffer;
        tc "checksum odd length" checksum_odd_length;
        tc "route selectors walk the path" route_selectors_roundtrip;
        tc "route selectors reject degree > 8" route_selectors_reject_high_degree;
        tc "fuzz all packet types" fuzz_all_packet_types;
        tc "NACK rejects empty range" nack_rejects_empty_range;
        tc "wrong-size reliability packets rejected" seq_broadcast_wrong_size_rejected;
        tc "wrong-size rejoin packets rejected" join_wrong_size_rejected;
        tc "batch heterogeneous roundtrip" batch_heterogeneous_roundtrip;
        tc "batch empty" batch_empty;
        tc "batch truncation detected" batch_truncation_detected;
        tc "batch unknown code rejected" batch_unknown_code_rejected;
        tc "batch corruption located" batch_corruption_located;
        QCheck_alcotest.to_alcotest qcheck_data_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_broadcast_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_join_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_snapshot_req_roundtrip;
      ] );
  ]
