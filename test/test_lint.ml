(* Tests for tools/lint (r2c2-lint): every rule D1–D3 / S1–S2 on inline
   good/bad fixture snippets, the `lint: allow` suppression path, and
   fixtures that reproduce the pre-Util.Tbl code this repo was scrubbed
   of — so reverting any one conversion demonstrably re-fails the lint
   gate. *)

let tc name f = Alcotest.test_case name `Quick f

let lint ?(in_lib = true) src = Lint_core.lint_source ~file:"fixture.ml" ~in_lib src

let rules_of r = List.map (fun v -> v.Lint_core.rule) r.Lint_core.violations

let check_rules ?in_lib name expected src =
  Alcotest.(check (list string)) name expected (rules_of (lint ?in_lib src))

(* -- D1: ambient PRNG ----------------------------------------------------- *)

let d1_random_banned () =
  check_rules "Random.int flagged" [ "D1" ] "let x = Random.int 10";
  check_rules "Random.self_init flagged" [ "D1" ] "let () = Random.self_init ()";
  check_rules "Stdlib-qualified flagged" [ "D1" ] "let x = Stdlib.Random.bits ()";
  check_rules "State submodule flagged" [ "D1" ] "let s = Random.State.make [| 1 |]";
  check_rules "open Random flagged" [ "D1" ] "open Random\nlet x = int 10";
  (* D1 holds in bench/ too: benches must be reproducible from their seed. *)
  check_rules ~in_lib:false "banned in bench too" [ "D1" ] "let x = Random.int 10"

let d1_util_rng_ok () =
  check_rules "Util.Rng is the sanctioned PRNG" []
    "let x rng = Util.Rng.int rng 10\nlet y rng = Util.Rng.shuffle rng [| 1; 2 |]";
  (* A module merely *named* like the stdlib's entry points is fine. *)
  check_rules "Rng.self_init-free module untouched" [] "let r = Util.Rng.create 42"

(* -- D2: wall clock / environment ----------------------------------------- *)

let d2_wall_clock_banned_in_lib () =
  check_rules "gettimeofday flagged" [ "D2" ] "let t = Unix.gettimeofday ()";
  check_rules "Sys.time flagged" [ "D2" ] "let t = Sys.time ()";
  check_rules "Sys.getenv flagged" [ "D2" ] "let v = Sys.getenv \"SEED\"";
  check_rules "Sys.getenv_opt flagged" [ "D2" ] "let v = Sys.getenv_opt \"SEED\""

let d2_allowed_in_bench () =
  check_rules ~in_lib:false "bench may time itself" []
    "let t0 = Unix.gettimeofday ()\nlet t1 = Sys.time ()"

(* -- D3: raw Hashtbl iteration -------------------------------------------- *)

let d3_raw_iteration_banned_in_lib () =
  check_rules "Hashtbl.fold flagged" [ "D3" ]
    "let f tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []";
  check_rules "Hashtbl.iter flagged" [ "D3" ] "let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl";
  check_rules "first-class reference flagged" [ "D3" ] "let h = Hashtbl.iter";
  check_rules "open Hashtbl flagged" [ "D3" ] "open Hashtbl\nlet n t = length t"

let d3_sorted_and_bench_ok () =
  check_rules "Util.Tbl is the sanctioned iteration" []
    (String.concat "\n"
       [
         "let f tbl = Util.Tbl.fold_sorted ~cmp:Int.compare (fun k v acc -> (k, v) :: acc) tbl []";
         "let g tbl = Util.Tbl.iter_sorted ~cmp:Int.compare (fun _ _ -> ()) tbl";
         "let h tbl = Util.Tbl.sorted_keys ~cmp:Int.compare tbl";
       ]);
  check_rules "point lookups untouched" []
    "let f tbl k = Hashtbl.find_opt tbl k\nlet g tbl k v = Hashtbl.replace tbl k v";
  check_rules ~in_lib:false "bench may iterate raw" []
    "let f tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []"

(* -- S1: Obj.magic and swallowed exceptions ------------------------------- *)

let s1_flagged () =
  check_rules "Obj.magic flagged" [ "S1" ] "let f (x : int) : float = Obj.magic x";
  check_rules "catch-all try flagged" [ "S1" ] "let f () = try List.hd [] with _ -> 0";
  check_rules "catch-all among cases flagged" [ "S1" ]
    "let f () = try List.hd [] with Not_found -> 0 | _ -> 1"

let s1_specific_handlers_ok () =
  check_rules "named exception ok" [] "let f () = try List.hd [] with Not_found -> 0";
  check_rules "binding the exn ok (can reraise)" []
    "let f () = try List.hd [] with e -> raise e"

(* -- S2: bare polymorphic compare ----------------------------------------- *)

let s2_bare_compare_flagged () =
  check_rules "List.sort compare flagged" [ "S2" ] "let f xs = List.sort compare xs";
  check_rules "Array.sort compare flagged" [ "S2" ] "let f a = Array.sort compare a";
  check_rules "List.sort_uniq compare flagged" [ "S2" ] "let f xs = List.sort_uniq compare xs";
  check_rules "Stdlib.compare flagged" [ "S2" ] "let f xs = List.sort Stdlib.compare xs";
  check_rules "flagged in bench too" ~in_lib:false [ "S2" ] "let f xs = List.sort compare xs"

let s2_explicit_comparators_ok () =
  check_rules "Int.compare ok" [] "let f xs = List.sort Int.compare xs";
  check_rules "Float.compare ok" [] "let f xs = List.sort Float.compare xs";
  check_rules "explicit key comparator ok" []
    "let f xs = List.sort (fun (a, _) (b, _) -> Int.compare a b) xs";
  (* Direct application `compare a b` is monomorphised by its arguments at
     the call site; the syntactic rule targets first-class uses only. *)
  check_rules "applied compare not flagged" [] "let f a b = compare a b"

(* -- suppressions --------------------------------------------------------- *)

let allow_same_line () =
  let r =
    lint
      ("let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] "
      ^ "(* lint: allow D3 — commutative fold, order irrelevant *)")
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of r);
  Alcotest.(check int) "counted" 1 r.Lint_core.suppressed

let allow_previous_line () =
  let r =
    lint
      (String.concat "\n"
         [
           "(* lint: allow D2 — feature-gated debug knob, not on a sim path *)";
           "let debug = Sys.getenv_opt \"R2C2_DEBUG\"";
         ])
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of r);
  Alcotest.(check int) "counted" 1 r.Lint_core.suppressed

let allow_multiple_rules () =
  let r =
    lint
      (String.concat "\n"
         [
           "(* lint: allow D3 S2 — scratch table in a test helper *)";
           "let f tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])";
         ])
  in
  Alcotest.(check (list string)) "both suppressed" [] (rules_of r);
  Alcotest.(check int) "both counted" 2 r.Lint_core.suppressed

let allow_wrong_rule_does_not_suppress () =
  let r =
    lint "let t = Unix.gettimeofday () (* lint: allow D3 — wrong rule named *)"
  in
  Alcotest.(check (list string)) "violation survives" [ "D2" ] (rules_of r);
  Alcotest.(check int) "nothing suppressed" 0 r.Lint_core.suppressed;
  Alcotest.(check int) "stale allow reported" 1 (List.length r.Lint_core.unused_allows)

let allow_requires_reason () =
  check_rules "reason-less allow is malformed" [ "D3"; "LINT" ]
    "let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] (* lint: allow D3 *)";
  check_rules "unknown rule name is malformed" [ "LINT"; "S1" ]
    (String.concat "\n"
       [ "(* lint: allow D9 — no such rule *)"; "let f (x : int) : float = Obj.magic x" ])

(* -- revert guard: the exact code this PR scrubbed ------------------------ *)

(* Pre-PR lib/core/stack.ml:166 — reverting the Util.Tbl conversion in any
   swept file reintroduces exactly this shape, which must fail the gate. *)
let revert_guard_stack () =
  check_rules "old flow_array fails D3" [ "D3" ]
    (String.concat "\n"
       [
         "let flow_array t =";
         "  let fl = Hashtbl.fold (fun _ f acc -> f :: acc) t.flows [] in";
         "  Array.of_list (List.sort (fun a b -> compare a.id b.id) fl)";
       ])

(* Pre-PR lib/sim/metrics.ml:30 — fold in hash order, then a polymorphic
   sort over (int * int) pairs. *)
let revert_guard_metrics () =
  check_rules "old goodput_series fails D3+S2" [ "D3"; "S2" ]
    (String.concat "\n"
       [
         "let goodput_series t =";
         "  let xs = Hashtbl.fold (fun i b acc -> (i * t.bucket_ns, b) :: acc) t.buckets [] in";
         "  Array.of_list (List.sort compare xs)";
       ])

(* Pre-PR lib/congestion/waterfill.ml:128. *)
let revert_guard_waterfill () =
  check_rules "old by_priority fails D3+S2" [ "D3"; "S2" ]
    "let prios t = List.sort_uniq compare (Hashtbl.fold (fun p _ acc -> p :: acc) t [])"

(* Pre-PR lib/sim/r2c2_sim.ml:255 — control-plane epoch iterating the
   active-flow table in hash order. *)
let revert_guard_sim () =
  check_rules "old recompute iteration fails D3" [ "D3"; "D3" ]
    (String.concat "\n"
       [
         "let senders t tbl =";
         "  Hashtbl.iter (fun _ st -> Hashtbl.replace tbl st.src st) t.active;";
         "  Array.of_list (Hashtbl.fold (fun _ st acc -> st :: acc) tbl [])";
       ])

(* -- whole-tree gate ------------------------------------------------------ *)

let repo_tree_is_clean () =
  (* The real gate is `dune build @lint`; when the test sandbox carries the
     sources (dune `deps`), re-check them here so `dune runtest` alone also
     proves the tree clean. *)
  let roots = List.filter Sys.file_exists [ "../lib"; "../bench" ] in
  if roots = [] then ()
  else begin
    let r = Lint_core.lint_roots roots in
    List.iter
      (fun (v : Lint_core.violation) ->
        Printf.printf "%s:%d: [%s] %s\n" v.file v.line v.rule v.message)
      r.Lint_core.violations;
    Alcotest.(check int) "no violations in lib/ + bench/" 0
      (List.length r.Lint_core.violations)
  end

let suites =
  [
    ( "lint",
      [
        tc "D1: Random banned everywhere" d1_random_banned;
        tc "D1: Util.Rng sanctioned" d1_util_rng_ok;
        tc "D2: wall clock banned in lib" d2_wall_clock_banned_in_lib;
        tc "D2: bench may time itself" d2_allowed_in_bench;
        tc "D3: raw Hashtbl iteration banned in lib" d3_raw_iteration_banned_in_lib;
        tc "D3: Util.Tbl / lookups / bench ok" d3_sorted_and_bench_ok;
        tc "S1: Obj.magic and catch-all try" s1_flagged;
        tc "S1: specific handlers ok" s1_specific_handlers_ok;
        tc "S2: bare compare flagged" s2_bare_compare_flagged;
        tc "S2: explicit comparators ok" s2_explicit_comparators_ok;
        tc "allow: same line" allow_same_line;
        tc "allow: previous line" allow_previous_line;
        tc "allow: several rules at once" allow_multiple_rules;
        tc "allow: wrong rule does not suppress" allow_wrong_rule_does_not_suppress;
        tc "allow: justification mandatory" allow_requires_reason;
        tc "revert guard: stack.ml conversion" revert_guard_stack;
        tc "revert guard: metrics.ml conversion" revert_guard_metrics;
        tc "revert guard: waterfill.ml conversion" revert_guard_waterfill;
        tc "revert guard: r2c2_sim.ml conversion" revert_guard_sim;
        tc "repo tree is lint-clean" repo_tree_is_clean;
      ] );
  ]
