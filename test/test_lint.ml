(* Tests for tools/lint (r2c2-lint): every rule D1–D3 / S1–S2 on inline
   good/bad fixture snippets, the allow-comment suppression path, and
   fixtures that reproduce the pre-Util.Tbl code this repo was scrubbed
   of — so reverting any one conversion demonstrably re-fails the lint
   gate. *)

let tc name f = Alcotest.test_case name `Quick f

(* This file is itself linted (test/ runs at the Relaxed tier since v3),
   and the allow scanner is a raw line scan — it cannot tell a fixture
   string from a real comment. Fixtures therefore spell the marker with
   a caret, `lint^ allow`, and [q] restores the colon before the string
   reaches the linter. *)
let q = String.map (fun c -> if c = '^' then ':' else c)

let lint ?(in_lib = true) src = Lint_core.lint_source ~file:"fixture.ml" ~in_lib src

let rules_of r = List.map (fun v -> v.Lint_core.rule) r.Lint_core.violations

let check_rules ?in_lib name expected src =
  Alcotest.(check (list string)) name expected (rules_of (lint ?in_lib src))

(* -- D1: ambient PRNG ----------------------------------------------------- *)

let d1_random_banned () =
  check_rules "Random.int flagged" [ "D1" ] "let x = Random.int 10";
  check_rules "Random.self_init flagged" [ "D1" ] "let () = Random.self_init ()";
  check_rules "Stdlib-qualified flagged" [ "D1" ] "let x = Stdlib.Random.bits ()";
  check_rules "State submodule flagged" [ "D1" ] "let s = Random.State.make [| 1 |]";
  check_rules "open Random flagged" [ "D1" ] "open Random\nlet x = int 10";
  (* D1 holds in bench/ too: benches must be reproducible from their seed. *)
  check_rules ~in_lib:false "banned in bench too" [ "D1" ] "let x = Random.int 10"

let d1_util_rng_ok () =
  check_rules "Util.Rng is the sanctioned PRNG" []
    "let x rng = Util.Rng.int rng 10\nlet y rng = Util.Rng.shuffle rng [| 1; 2 |]";
  (* A module merely *named* like the stdlib's entry points is fine. *)
  check_rules "Rng.self_init-free module untouched" [] "let r = Util.Rng.create 42"

(* -- D2: wall clock / environment ----------------------------------------- *)

let d2_wall_clock_banned_in_lib () =
  check_rules "gettimeofday flagged" [ "D2" ] "let t = Unix.gettimeofday ()";
  check_rules "Sys.time flagged" [ "D2" ] "let t = Sys.time ()";
  check_rules "Sys.getenv flagged" [ "D2" ] "let v = Sys.getenv \"SEED\"";
  check_rules "Sys.getenv_opt flagged" [ "D2" ] "let v = Sys.getenv_opt \"SEED\""

let d2_allowed_in_bench () =
  check_rules ~in_lib:false "bench may time itself" []
    "let t0 = Unix.gettimeofday ()\nlet t1 = Sys.time ()"

(* -- D3: raw Hashtbl iteration -------------------------------------------- *)

let d3_raw_iteration_banned_in_lib () =
  check_rules "Hashtbl.fold flagged" [ "D3" ]
    "let f tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []";
  check_rules "Hashtbl.iter flagged" [ "D3" ] "let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl";
  check_rules "first-class reference flagged" [ "D3" ] "let h = Hashtbl.iter";
  check_rules "open Hashtbl flagged" [ "D3" ] "open Hashtbl\nlet n t = length t"

let d3_sorted_and_bench_ok () =
  check_rules "Util.Tbl is the sanctioned iteration" []
    (String.concat "\n"
       [
         "let f tbl = Util.Tbl.fold_sorted ~cmp:Int.compare (fun k v acc -> (k, v) :: acc) tbl []";
         "let g tbl = Util.Tbl.iter_sorted ~cmp:Int.compare (fun _ _ -> ()) tbl";
         "let h tbl = Util.Tbl.sorted_keys ~cmp:Int.compare tbl";
       ]);
  check_rules "point lookups untouched" []
    "let f tbl k = Hashtbl.find_opt tbl k\nlet g tbl k v = Hashtbl.replace tbl k v";
  (* in_lib:false is the Default tier (bin/, examples/): D3 does not
     apply there — but it DOES at the Relaxed tier, see the tier tests. *)
  check_rules ~in_lib:false "bin/examples may iterate raw" []
    "let f tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []"

(* -- rule tiers ------------------------------------------------------------ *)

let lint_relaxed src =
  Lint_core.lint_source ~tier:Lint_core.Relaxed ~file:"test/fixture.ml" ~in_lib:false src

let relaxed_tier_d_rules_only () =
  (* D1 and D3 stay on: a test or bench iterating a table in hash order
     can mask the exact divergence bug the code under test guards. *)
  Alcotest.(check (list string)) "D1 on at Relaxed" [ "D1" ]
    (rules_of (lint_relaxed "let x = Random.int 10"));
  Alcotest.(check (list string)) "D3 on at Relaxed" [ "D3" ]
    (rules_of (lint_relaxed "let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []"));
  (* A bench times itself by design; harness code builds raw fixtures. *)
  Alcotest.(check (list string)) "D2 off at Relaxed" []
    (rules_of (lint_relaxed "let t = Unix.gettimeofday ()"));
  Alcotest.(check (list string)) "S1/S2 off at Relaxed" []
    (rules_of
       (lint_relaxed "let f xs = List.sort compare xs\nlet g () = try List.hd [] with _ -> 0"));
  Alcotest.(check (list string)) "U1 off at Relaxed" []
    (rules_of (lint_relaxed "let s = make ctx ~link_gbps:10.0"))

let tier_of_root_mapping () =
  let t = Lint_core.tier_of_root in
  Alcotest.(check bool) "lib -> Lib" true (t "lib" = Lint_core.Lib);
  Alcotest.(check bool) "../lib -> Lib" true (t "../lib" = Lint_core.Lib);
  Alcotest.(check bool) "bench -> Relaxed" true (t "bench" = Lint_core.Relaxed);
  Alcotest.(check bool) "test/ -> Relaxed" true (t "test/" = Lint_core.Relaxed);
  Alcotest.(check bool) "bin -> Default" true (t "bin" = Lint_core.Default);
  Alcotest.(check bool) "examples -> Default" true (t "examples" = Lint_core.Default)

(* -- S1: Obj.magic and swallowed exceptions ------------------------------- *)

let s1_flagged () =
  check_rules "Obj.magic flagged" [ "S1" ] "let f (x : int) : float = Obj.magic x";
  check_rules "catch-all try flagged" [ "S1" ] "let f () = try List.hd [] with _ -> 0";
  check_rules "catch-all among cases flagged" [ "S1" ]
    "let f () = try List.hd [] with Not_found -> 0 | _ -> 1"

let s1_specific_handlers_ok () =
  check_rules "named exception ok" [] "let f () = try List.hd [] with Not_found -> 0";
  check_rules "binding the exn ok (can reraise)" []
    "let f () = try List.hd [] with e -> raise e"

(* -- S2: bare polymorphic compare ----------------------------------------- *)

let s2_bare_compare_flagged () =
  check_rules "List.sort compare flagged" [ "S2" ] "let f xs = List.sort compare xs";
  check_rules "Array.sort compare flagged" [ "S2" ] "let f a = Array.sort compare a";
  check_rules "List.sort_uniq compare flagged" [ "S2" ] "let f xs = List.sort_uniq compare xs";
  check_rules "Stdlib.compare flagged" [ "S2" ] "let f xs = List.sort Stdlib.compare xs";
  check_rules "flagged in bench too" ~in_lib:false [ "S2" ] "let f xs = List.sort compare xs"

let s2_explicit_comparators_ok () =
  check_rules "Int.compare ok" [] "let f xs = List.sort Int.compare xs";
  check_rules "Float.compare ok" [] "let f xs = List.sort Float.compare xs";
  check_rules "explicit key comparator ok" []
    "let f xs = List.sort (fun (a, _) (b, _) -> Int.compare a b) xs";
  (* Direct application `compare a b` is monomorphised by its arguments at
     the call site; the syntactic rule targets first-class uses only. *)
  check_rules "applied compare not flagged" [] "let f a b = compare a b"

(* -- suppressions --------------------------------------------------------- *)

let allow_same_line () =
  let r =
    lint
      (q
         ("let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] "
         ^ "(* lint^ allow D3 — commutative fold, order irrelevant *)"))
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of r);
  Alcotest.(check int) "counted" 1 r.Lint_core.suppressed

let allow_previous_line () =
  let r =
    lint
      (q
         (String.concat "\n"
            [
              "(* lint^ allow D2 — feature-gated debug knob, not on a sim path *)";
              "let debug = Sys.getenv_opt \"R2C2_DEBUG\"";
            ]))
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of r);
  Alcotest.(check int) "counted" 1 r.Lint_core.suppressed

let allow_multiple_rules () =
  let r =
    lint
      (q
         (String.concat "\n"
            [
              "(* lint^ allow D3 S2 — scratch table in a test helper *)";
              "let f tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])";
            ]))
  in
  Alcotest.(check (list string)) "both suppressed" [] (rules_of r);
  Alcotest.(check int) "both counted" 2 r.Lint_core.suppressed

let allow_wrong_rule_does_not_suppress () =
  let r =
    lint (q "let t = Unix.gettimeofday () (* lint^ allow D3 — wrong rule named *)")
  in
  Alcotest.(check (list string)) "violation survives" [ "D2" ] (rules_of r);
  Alcotest.(check int) "nothing suppressed" 0 r.Lint_core.suppressed;
  match r.Lint_core.unused_allows with
  | [ sa ] ->
      (* The stale report carries the comment's exact position, not just
         a count — the reviewer can jump straight to it. *)
      Alcotest.(check string) "stale allow names its file" "fixture.ml" sa.Lint_core.sa_file;
      Alcotest.(check int) "stale allow names its line" 1 sa.Lint_core.sa_line;
      Alcotest.(check (list string)) "stale allow names its rules" [ "D3" ]
        sa.Lint_core.sa_rules
  | l -> Alcotest.failf "expected exactly one stale allow, got %d" (List.length l)

let partial_multi_rule_allow_reports_unused_rules () =
  (* A multi-rule allow where only one rule fires: the allow is not
     silently "used" — the unexercised rule names are reported at the
     comment's file:line so it can be trimmed. *)
  let r =
    lint
      (q
         ("let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] "
         ^ "(* lint^ allow D3 S2 — fold is commutative here *)"))
  in
  Alcotest.(check (list string)) "D3 suppressed" [] (rules_of r);
  Alcotest.(check int) "one suppression" 1 r.Lint_core.suppressed;
  match r.Lint_core.unused_allows with
  | [ sa ] ->
      Alcotest.(check int) "reported at the comment's line" 1 sa.Lint_core.sa_line;
      Alcotest.(check (list string)) "only the unused rule is stale" [ "S2" ]
        sa.Lint_core.sa_rules
  | l -> Alcotest.failf "expected exactly one stale allow, got %d" (List.length l)

let allow_requires_reason () =
  check_rules "reason-less allow is malformed" [ "D3"; "LINT" ]
    (q "let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] (* lint^ allow D3 *)");
  check_rules "unknown rule name is malformed" [ "LINT"; "S1" ]
    (String.concat "\n"
       (List.map q
          [ "(* lint^ allow D9 — no such rule *)"; "let f (x : int) : float = Obj.magic x" ]))

(* -- U1: raw float literals into unit-carrying labels ---------------------- *)

let u1_raw_literals_flagged () =
  check_rules "raw gbps literal" [ "U1" ] "let s = make ctx ~link_gbps:10.0";
  check_rules "raw headroom literal" [ "U1" ] "let r = allocate ~headroom:0.05 ~capacities flows";
  check_rules "Some literal under a unit label" [ "U1" ]
    "let () = set_demand st f ~gbps:(Some 2.0)";
  check_rules ~in_lib:false "applies in bench/bin/examples too" [ "U1" ]
    "let x = run ~loss:0.02 ()"

let u1_wrapped_ok () =
  check_rules "constructor-wrapped ok" [] "let s = make ctx ~link_gbps:(Util.Units.gbps 10.0)";
  check_rules "Some-wrapped ok" [] "let () = set_demand st f ~gbps:(Some (Util.Units.gbps 2.0))";
  check_rules "non-unit labels untouched" []
    "let n = pareto_size rng ~shape:1.05 ~mean:100_000.0";
  check_rules "unlabeled literals untouched" [] "let x = f 10.0 0.05"

(* -- U2: arithmetic directly on to_float ----------------------------------- *)

let u2_arith_on_to_float_flagged () =
  check_rules "operator on a to_float result" [ "U2" ] "let x r = Util.Units.to_float r *. 2.0";
  check_rules "both operands flagged" [ "U2"; "U2" ] "let x a b = U.to_float a /. U.to_float b";
  check_rules "bare to_float flagged" [ "U2" ] "let x r = 1.0 -. to_float r"

let u2_let_bound_ok () =
  check_rules "let-bound unwrap is the sanctioned idiom" []
    "let x r = let v = Util.Units.to_float r in v *. 2.0";
  check_rules "to_float as a plain argument ok" []
    "let pr r = Printf.printf \"%f\" (Util.Units.to_float r)"

let u2_exempt_in_units_ml () =
  (* The combinator definitions are the one place raw unwrap-and-compute
     is the point. *)
  let r =
    Lint_core.lint_source ~file:"units.ml" ~in_lib:true "let x r = Util.Units.to_float r *. 2.0"
  in
  Alcotest.(check (list string)) "units.ml itself is exempt" [] (rules_of r)

(* -- U3: wire budget and encoder/decoder symmetry -------------------------- *)

let u3_symmetric_codec_ok () =
  check_rules "balanced encoder/decoder pair" []
    (String.concat "\n"
       [
         "let sz = 8";
         "let encode_x v =";
         "  let b = Bytes.make sz '\\000' in";
         "  put8 b 0 1; put16 b 1 v; put32 b 3 v; put8 b 7 0; b";
         "let decode_x b = (get8 b 0, get16 b 1, get32 b 3, get8 b 7)";
       ])

let u3_one_byte_drift_flagged () =
  (* The acceptance fixture: shrink the declared size by one byte and the
     final fixed field overruns the budget. *)
  check_rules "one-byte size drift overruns" [ "U3" ]
    (String.concat "\n"
       [
         "let sz = 7";
         "let encode_x v =";
         "  let b = Bytes.make sz '\\000' in";
         "  put8 b 0 1; put16 b 1 v; put32 b 3 v; put8 b 7 0; b";
         "let decode_x b = (get8 b 0, get16 b 1, get32 b 3, get8 b 7)";
       ])

let u3_slack_flagged () =
  check_rules "trailing slack is a budget mismatch" [ "U3" ]
    (String.concat "\n"
       [
         "let sz = 9";
         "let encode_x v =";
         "  let b = Bytes.make sz '\\000' in";
         "  put8 b 0 1; put16 b 1 v; put32 b 3 v; put8 b 7 0; b";
         "let decode_x b = (get8 b 0, get16 b 1, get32 b 3, get8 b 7)";
       ])

let u3_overlap_flagged () =
  check_rules "overlapping fixed writes" [ "U3" ]
    (String.concat "\n"
       [
         "let sz = 4";
         "let encode_x v =";
         "  let b = Bytes.make sz '\\000' in";
         "  put16 b 1 v; put16 b 2 v; b";
         "let decode_x b = (get16 b 1, get16 b 2)";
       ])

let u3_asymmetry_flagged () =
  (* Writer emits 4 bytes at offset 2, reader takes back only 2: both
     sides of the mismatch are reported. *)
  check_rules "width mismatch reported on both sides" [ "U3"; "U3" ]
    (String.concat "\n"
       [
         "let sz = 6";
         "let encode_y v = let b = Bytes.make sz '\\000' in put16 b 0 v; put32 b 2 v; b";
         "let decode_y b = (get16 b 0, get16 b 2)";
       ])

let u3_dynamic_offsets_tolerated () =
  (* Computed offsets (the packed route field) fall outside the symbolic
     walk: no false budget/symmetry findings, static fields still checked. *)
  check_rules "loop-written fields are skipped, not flagged" []
    (String.concat "\n"
       [
         "let sz = 8";
         "let encode_z v =";
         "  let b = Bytes.make sz '\\000' in";
         "  put8 b 0 1;";
         "  Array.iteri (fun i s -> put8 b (1 + i) s) v;";
         "  b";
         "let decode_z b = get8 b 0";
       ])

(* -- A1: arena bypass on the packet path (lib/sim only) -------------------- *)

let lint_sim src = Lint_core.lint_source ~file:"lib/sim/fixture.ml" ~in_lib:true src
let check_sim_rules name expected src =
  Alcotest.(check (list string)) name expected (rules_of (lint_sim src))

let a1_packet_record_flagged () =
  check_sim_rules "kind+route record literal" [ "A1" ]
    "let p = { kind = Data; route = r; hop = 0 }";
  check_sim_rules "route+hop record literal" [ "A1" ]
    "let p = { route = r; hop = 1; bytes = 1500 }";
  (* The pre-arena Net.packet constructor: reverting the arena conversion
     reintroduces exactly this shape. *)
  check_sim_rules "pre-arena Net.packet fails A1" [ "A1" ]
    (String.concat "\n"
       [
         "let send t ~flow ~seq ~last ~bytes ~route =";
         "  let p = { kind = Data { flow; seq; last }; bytes; route; hop = 0 } in";
         "  enqueue_link t p";
       ])

let a1_route_copy_flagged () =
  check_sim_rules "Array.copy of a route field" [ "A1" ]
    "let clone t p = Array.copy p.route";
  check_sim_rules "Array.copy of a route binding" [ "A1" ]
    "let dup route = Array.copy route";
  check_sim_rules "route-prefixed names count" [ "A1" ]
    "let r2 fwd_route = Array.copy fwd_route"

let a1_scoped_to_sim () =
  (* Outside a sim/ directory component the rule is off: the control plane
     and tests may build packet-shaped values freely. *)
  check_rules "record literal fine outside sim" []
    "let p = { kind = Data; route = r; hop = 0 }";
  check_rules "route copy fine outside sim" [] "let dup route = Array.copy route"

let a1_benign_shapes_ok () =
  check_sim_rules "record without route untouched" []
    "let s = { kind = Data; bytes = 1500 }";
  check_sim_rules "route record without kind/hop untouched" []
    "let e = { route = r; cost = 3 }";
  check_sim_rules "Array.copy of non-route untouched" []
    "let snap stats = Array.copy stats"

let a1_allow_suppresses () =
  let r =
    lint_sim
      (q
         (String.concat "\n"
            [
              "(* lint^ allow A1 — test fixture builds a throwaway packet *)";
              "let p = { kind = Data; route = r; hop = 0 }";
            ]))
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of r);
  Alcotest.(check int) "counted" 1 (List.assoc "A1" r.Lint_core.suppressed_by_rule)

(* -- stale allows and the summary ------------------------------------------ *)

let stale_allow_fails_gate () =
  let r = lint (q "(* lint^ allow D3 — left behind after a refactor *)\nlet x = 1") in
  Alcotest.(check (list string)) "no violations" [] (rules_of r);
  Alcotest.(check int) "stale allow reported" 1 (List.length r.Lint_core.unused_allows);
  let null = open_out Filename.null in
  let code = Lint_core.report_and_exit_code null r in
  close_out null;
  Alcotest.(check int) "stale allow fails the gate" 1 code

let per_rule_suppression_counts () =
  let r = lint (q "let t = Unix.gettimeofday () (* lint^ allow D2 — summary fixture *)") in
  Alcotest.(check int) "D2 suppression counted" 1
    (List.assoc "D2" r.Lint_core.suppressed_by_rule);
  Alcotest.(check int) "other rules untouched" 0 (List.assoc "U1" r.Lint_core.suppressed_by_rule)

(* -- the phantom-type layer itself: dimension swaps must not compile ------- *)

let obj_dirs =
  List.map
    (fun l -> Printf.sprintf "../lib/%s/.%s.objs/byte" l l)
    [ "util"; "topology"; "routing"; "congestion" ]

let typechecks =
  (* In-process typecheck against the repo's own compiled interfaces: the
     negative fixtures prove the Units sweep rejects dimension swaps at
     compile time, which no runtime test can demonstrate. *)
  let initialized =
    lazy
      (Compmisc.init_path ();
       List.iter Load_path.add_dir obj_dirs)
  in
  fun src ->
    Lazy.force initialized;
    let env = Compmisc.initial_env () in
    match Typemod.type_structure env (Parse.implementation (Lexing.from_string src)) with
    | _ -> true
    | exception (Typetexp.Error _ | Typecore.Error _) -> false

let units_reject_dimension_swap () =
  if List.for_all Sys.file_exists obj_dirs then begin
    Alcotest.(check bool) "correctly-typed caller compiles" true
      (typechecks
         "let _ = Congestion.Waterfill.allocate ~capacities:[| Util.Units.byte_rate 1.25 |] [||]");
    Alcotest.(check bool) "bytes-for-rate swap rejected by the compiler" false
      (typechecks
         "let _ = Congestion.Waterfill.allocate ~capacities:[| Util.Units.bytes 1.25 |] [||]");
    Alcotest.(check bool) "raw float capacities rejected" false
      (typechecks "let _ = Congestion.Waterfill.allocate ~capacities:[| 1.25 |] [||]");
    Alcotest.(check bool) "fraction-for-rate demand rejected" false
      (typechecks "let _ = Congestion.Waterfill.flow ~demand:(Util.Units.fraction 0.5) ~id:0 [||]")
  end

(* -- revert guard: the exact code this PR scrubbed ------------------------ *)

(* Pre-PR lib/core/stack.ml:166 — reverting the Util.Tbl conversion in any
   swept file reintroduces exactly this shape, which must fail the gate. *)
let revert_guard_stack () =
  check_rules "old flow_array fails D3" [ "D3" ]
    (String.concat "\n"
       [
         "let flow_array t =";
         "  let fl = Hashtbl.fold (fun _ f acc -> f :: acc) t.flows [] in";
         "  Array.of_list (List.sort (fun a b -> compare a.id b.id) fl)";
       ])

(* Pre-PR lib/sim/metrics.ml:30 — fold in hash order, then a polymorphic
   sort over (int * int) pairs. *)
let revert_guard_metrics () =
  check_rules "old goodput_series fails D3+S2" [ "D3"; "S2" ]
    (String.concat "\n"
       [
         "let goodput_series t =";
         "  let xs = Hashtbl.fold (fun i b acc -> (i * t.bucket_ns, b) :: acc) t.buckets [] in";
         "  Array.of_list (List.sort compare xs)";
       ])

(* Pre-PR lib/congestion/waterfill.ml:128. *)
let revert_guard_waterfill () =
  check_rules "old by_priority fails D3+S2" [ "D3"; "S2" ]
    "let prios t = List.sort_uniq compare (Hashtbl.fold (fun p _ acc -> p :: acc) t [])"

(* Pre-PR lib/sim/r2c2_sim.ml:255 — control-plane epoch iterating the
   active-flow table in hash order. *)
let revert_guard_sim () =
  check_rules "old recompute iteration fails D3" [ "D3"; "D3" ]
    (String.concat "\n"
       [
         "let senders t tbl =";
         "  Hashtbl.iter (fun _ st -> Hashtbl.replace tbl st.src st) t.active;";
         "  Array.of_list (Hashtbl.fold (fun _ st acc -> st :: acc) tbl [])";
       ])

(* -- the driver: JSON report and exit codes --------------------------------- *)

(* A scratch tree under the test's own cwd (inside _build) with one dirty
   file: enough to drive the full driver end to end. *)
let with_fixture_tree f =
  let dir = "lint_fixture_tmp" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "dirty.ml") in
  output_string oc "let x = Random.int 10\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove (Filename.concat dir "dirty.ml");
      Sys.rmdir dir)
    (fun () -> f dir)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let driver_json_and_exit_code () =
  with_fixture_tree (fun dir ->
      let config =
        { Lint_driver.roots = [ dir ]; relaxed = []; registry_file = None; cmt_root = None }
      in
      let report = Lint_driver.run config in
      let null = open_out Filename.null in
      let code = Lint_driver.report_and_exit_code null report in
      close_out null;
      Alcotest.(check int) "violations exit 1" 1 code;
      let json = Lint_driver.to_json report in
      Alcotest.(check bool) "json names the rule" true (contains json "\"rule\": \"D1\"");
      Alcotest.(check bool) "json names the file" true (contains json "dirty.ml");
      Alcotest.(check bool) "json carries per-rule counts" true
        (contains json "\"violations_by_rule\"");
      Alcotest.(check bool) "json carries the ownership key" true
        (contains json "\"ownership\"");
      Alcotest.(check bool) "json carries per-pass timings" true
        (contains json "\"timings_ms\"");
      Alcotest.(check bool) "parse pass is timed" true (contains json "\"parse\""))

let driver_relaxed_override () =
  (* --relaxed forces a root to the Relaxed tier regardless of basename:
     the D1 fixture still flags, but S/U violations would not. *)
  with_fixture_tree (fun dir ->
      let config =
        {
          Lint_driver.roots = [ dir ];
          relaxed = [ dir ];
          registry_file = None;
          cmt_root = None;
        }
      in
      let report = Lint_driver.run config in
      Alcotest.(check (list string)) "D1 survives the Relaxed override" [ "D1" ]
        (List.map (fun v -> v.Lint_core.rule) report.Lint_driver.core.Lint_core.violations))

let registry_syntax_error_is_internal () =
  (* Exit-code contract: a broken registry is an internal error (exit 2),
     never a clean run. *)
  Alcotest.check_raises "unbalanced paren raises Internal"
    (Lint_core.Internal "reg.sexp:1: unterminated '('")
    (fun () -> ignore (Lint_typed.load_registry_src ~file:"reg.sexp" "((item Foo.x)"));
  match Lint_typed.load_registry_src ~file:"reg.sexp" "((item Foo.x) (why \"y\"))" with
  | _ -> Alcotest.fail "entry without a class must not load"
  | exception Lint_core.Internal msg ->
      Alcotest.(check bool) "missing field is diagnosed" true (contains msg "class")

let driver_mli_stale_allow () =
  (* Interface files carry allow comments too (doc text can trip D rules);
     a stale one must be reported with its file and line, same as in .ml. *)
  let dir = "lint_fixture_mli" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let mli = Filename.concat dir "iface.mli" in
  let oc = open_out mli in
  output_string oc
    (q "val f : int -> int\n(* lint^ allow D1 - nothing on this line needs it *)\nval g : int\n");
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove mli;
      Sys.rmdir dir)
    (fun () ->
      let config =
        { Lint_driver.roots = [ dir ]; relaxed = []; registry_file = None; cmt_root = None }
      in
      let report = Lint_driver.run config in
      match report.Lint_driver.core.Lint_core.unused_allows with
      | [ sa ] ->
          Alcotest.(check string) "file" mli sa.Lint_core.sa_file;
          Alcotest.(check int) "line" 2 sa.sa_line;
          Alcotest.(check (list string)) "rules" [ "D1" ] sa.sa_rules
      | other ->
          Alcotest.fail
            (Printf.sprintf "expected exactly one stale allow, got %d" (List.length other)))

let init_spans_windows () =
  let spans =
    Lint_core.init_spans
      (String.concat "\n"
         [
           "let a = 1";
           "(* lint: init *)";
           "let b = 2";
           "(* lint: init end *)";
           "let c = 3";
           "(* lint: init *)";
           "let d = 4";
         ])
  in
  Alcotest.(check (list (pair int int)))
    "closed span, then an unclosed one running to end of file"
    [ (2, 4); (6, max_int) ]
    spans

let cmt_preflight_diagnoses () =
  (* The --cmt-root pre-flight: each failure mode gets a one-line cause. *)
  (match Lint_typed.cmt_root_problem ~cmt_root:"no_such_dir_zz" with
  | Some why -> Alcotest.(check bool) "missing dir named" true (contains why "does not exist")
  | None -> Alcotest.fail "missing dir must be diagnosed");
  let dir = "lint_fixture_cmt" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let ml = Filename.concat dir "foo.ml" and cmt = Filename.concat dir "lint__Foo.cmt" in
  let touch f = close_out (open_out f) in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ ml; cmt ];
      Sys.rmdir dir)
    (fun () ->
      (match Lint_typed.cmt_root_problem ~cmt_root:dir with
      | Some why -> Alcotest.(check bool) "empty dir named" true (contains why ".cmt")
      | None -> Alcotest.fail "cmt-less dir must be diagnosed");
      touch cmt;
      touch ml;
      (* mangled `lint__Foo.cmt` pairs with `foo.ml`; date the .cmt a day
         before the .ml so the tree reads as stale *)
      Unix.utimes cmt 1000.0 1000.0;
      (match Lint_typed.cmt_root_problem ~cmt_root:dir with
      | Some why -> Alcotest.(check bool) "staleness named" true (contains why "stale")
      | None -> Alcotest.fail "stale .cmt must be diagnosed");
      let now = Unix.gettimeofday () in
      Unix.utimes cmt (now +. 60.0) (now +. 60.0);
      Alcotest.(check bool) "fresh tree passes" true
        (Lint_typed.cmt_root_problem ~cmt_root:dir = None))

(* -- whole-tree gate ------------------------------------------------------ *)

let repo_tree_is_clean () =
  (* The real gate is `dune build @lint`; when the test sandbox carries the
     sources (dune `deps`), re-check them here so `dune runtest` alone also
     proves the tree clean — all three passes, same config as the @lint
     rule (the typed pass only when the .cmt files are reachable). *)
  let roots =
    List.filter Sys.file_exists [ "../lib"; "../bench"; "../bin"; "../examples"; "../test" ]
  in
  if roots = [] then ()
  else begin
    let registry = "../tools/lint/ownership.sexp" in
    let typed_ready =
      Sys.file_exists registry && Sys.file_exists "../lib/congestion/.congestion.objs/byte"
    in
    let config =
      {
        Lint_driver.roots;
        relaxed = [];
        registry_file = (if typed_ready then Some registry else None);
        cmt_root = (if typed_ready then Some "../lib" else None);
      }
    in
    let report = Lint_driver.run config in
    let r = report.Lint_driver.core in
    List.iter
      (fun (v : Lint_core.violation) ->
        Printf.printf "%s:%d: [%s] %s\n" v.file v.line v.rule v.message)
      r.Lint_core.violations;
    List.iter (Lint_core.pp_stale stdout) r.Lint_core.unused_allows;
    Alcotest.(check int) "no violations in lib/ bench/ bin/ examples/ test/" 0
      (List.length r.Lint_core.violations);
    Alcotest.(check int) "no stale allows anywhere" 0 (List.length r.Lint_core.unused_allows);
    if typed_ready then begin
      Alcotest.(check bool) "ownership map is non-empty" true
        (report.Lint_driver.ownership <> []);
      Alcotest.(check bool) "every mutable item is registered" true
        (List.for_all (fun (_, cls) -> cls <> None) report.Lint_driver.ownership)
    end
  end

let suites =
  [
    ( "lint",
      [
        tc "D1: Random banned everywhere" d1_random_banned;
        tc "D1: Util.Rng sanctioned" d1_util_rng_ok;
        tc "D2: wall clock banned in lib" d2_wall_clock_banned_in_lib;
        tc "D2: bench may time itself" d2_allowed_in_bench;
        tc "D3: raw Hashtbl iteration banned in lib" d3_raw_iteration_banned_in_lib;
        tc "D3: Util.Tbl / lookups / bench ok" d3_sorted_and_bench_ok;
        tc "tiers: Relaxed runs D-rules only" relaxed_tier_d_rules_only;
        tc "tiers: root basename mapping" tier_of_root_mapping;
        tc "S1: Obj.magic and catch-all try" s1_flagged;
        tc "S1: specific handlers ok" s1_specific_handlers_ok;
        tc "S2: bare compare flagged" s2_bare_compare_flagged;
        tc "S2: explicit comparators ok" s2_explicit_comparators_ok;
        tc "allow: same line" allow_same_line;
        tc "allow: previous line" allow_previous_line;
        tc "allow: several rules at once" allow_multiple_rules;
        tc "allow: wrong rule does not suppress" allow_wrong_rule_does_not_suppress;
        tc "allow: partial multi-rule use reported" partial_multi_rule_allow_reports_unused_rules;
        tc "allow: justification mandatory" allow_requires_reason;
        tc "U1: raw literals into unit labels" u1_raw_literals_flagged;
        tc "U1: wrapped / non-unit labels ok" u1_wrapped_ok;
        tc "U2: arithmetic on to_float" u2_arith_on_to_float_flagged;
        tc "U2: let-bound unwrap ok" u2_let_bound_ok;
        tc "U2: units.ml exempt" u2_exempt_in_units_ml;
        tc "U3: symmetric codec ok" u3_symmetric_codec_ok;
        tc "U3: one-byte size drift" u3_one_byte_drift_flagged;
        tc "U3: trailing slack" u3_slack_flagged;
        tc "U3: overlapping writes" u3_overlap_flagged;
        tc "U3: read/write asymmetry" u3_asymmetry_flagged;
        tc "U3: dynamic offsets tolerated" u3_dynamic_offsets_tolerated;
        tc "A1: packet-shaped record literal" a1_packet_record_flagged;
        tc "A1: route Array.copy" a1_route_copy_flagged;
        tc "A1: scoped to lib/sim" a1_scoped_to_sim;
        tc "A1: benign shapes ok" a1_benign_shapes_ok;
        tc "A1: allow suppresses" a1_allow_suppresses;
        tc "stale allow fails the gate" stale_allow_fails_gate;
        tc "per-rule suppression counts" per_rule_suppression_counts;
        tc "phantom types reject dimension swaps" units_reject_dimension_swap;
        tc "revert guard: stack.ml conversion" revert_guard_stack;
        tc "revert guard: metrics.ml conversion" revert_guard_metrics;
        tc "revert guard: waterfill.ml conversion" revert_guard_waterfill;
        tc "revert guard: r2c2_sim.ml conversion" revert_guard_sim;
        tc "driver: json report and exit code" driver_json_and_exit_code;
        tc "driver: --relaxed tier override" driver_relaxed_override;
        tc "driver: registry errors are internal" registry_syntax_error_is_internal;
        tc "driver: .mli stale allow reported" driver_mli_stale_allow;
        tc "init spans: windows parsed" init_spans_windows;
        tc "driver: cmt-root pre-flight diagnoses" cmt_preflight_diagnoses;
        tc "repo tree is lint-clean" repo_tree_is_clean;
      ] );
  ]
