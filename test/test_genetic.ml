(* Tests for lib/genetic: GA machinery and routing-protocol selection. *)

let tc name f = Alcotest.test_case name `Quick f

(* A simple separable fitness the GA must crack: maximize sum of genes
   matching a hidden target. *)
let onemax_problem target =
  {
    Genetic.Ga.genes = Array.length target;
    choices = 4;
    fitness =
      (fun g ->
        let score = ref 0 in
        Array.iteri (fun i x -> if x = target.(i) then incr score) g;
        float_of_int !score);
  }

let ga_solves_onemax () =
  let rng = Util.Rng.create 3 in
  let target = Array.init 24 (fun i -> i mod 4) in
  let p = onemax_problem target in
  let best, fit = Genetic.Ga.optimize ~generations:60 ~patience:60 rng p ~init:(Array.make 24 0) in
  Alcotest.(check bool) (Printf.sprintf "near optimal (%.0f/24)" fit) true (fit >= 22.0);
  Alcotest.(check int) "genotype length preserved" 24 (Array.length best)

let ga_keeps_init_when_optimal () =
  let rng = Util.Rng.create 5 in
  let target = Array.init 10 (fun i -> i mod 4) in
  let p = onemax_problem target in
  let _, fit = Genetic.Ga.optimize ~generations:5 rng p ~init:(Array.copy target) in
  Alcotest.(check (float 1e-9)) "elite preserves the optimum" 10.0 fit

let ga_empty_genotype () =
  let rng = Util.Rng.create 7 in
  let p = { Genetic.Ga.genes = 0; choices = 2; fitness = (fun _ -> 1.0) } in
  let best, fit = Genetic.Ga.optimize rng p ~init:[||] in
  Alcotest.(check int) "empty" 0 (Array.length best);
  Alcotest.(check (float 1e-9)) "fitness evaluated" 1.0 fit

let hill_climb_improves () =
  let rng = Util.Rng.create 9 in
  let target = Array.init 16 (fun i -> (i * 3) mod 4) in
  let p = onemax_problem target in
  let init = Array.make 16 0 in
  let _, fit = Genetic.Ga.hill_climb ~iterations:2000 rng p ~init in
  Alcotest.(check bool) "reaches optimum on separable problem" true (fit >= 15.0)

let annealing_improves () =
  let rng = Util.Rng.create 11 in
  let target = Array.init 16 (fun i -> (i * 7) mod 4) in
  let p = onemax_problem target in
  let _, fit = Genetic.Ga.simulated_annealing ~iterations:3000 rng p ~init:(Array.make 16 0) in
  Alcotest.(check bool) (Printf.sprintf "improves (%.0f)" fit) true (fit >= 12.0)

let random_search_bounded () =
  let rng = Util.Rng.create 13 in
  let p = { Genetic.Ga.genes = 8; choices = 2; fitness = (fun g -> float_of_int (Array.fold_left ( + ) 0 g)) } in
  let _, fit = Genetic.Ga.random_search ~iterations:500 rng p in
  Alcotest.(check bool) "finds a good genotype" true (fit >= 6.0)

(* -- selector (Fig 18 mechanics) ------------------------------------------- *)

let selector_ctx = lazy (Routing.make (Topology.torus [| 4; 4; 4 |]))

module U = Util.Units

let mk_selector ?utility () =
  Genetic.Selector.make ?utility (Lazy.force selector_ctx) ~link_gbps:(U.gbps 10.0)

let permutation_flows load seed =
  let topo = Routing.topo (Lazy.force selector_ctx) in
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.permutation_long_flows topo rng ~load:(U.fraction load) in
  Array.of_list (List.map (fun (s : Workload.Flowgen.spec) -> (s.src, s.dst)) specs)

let selector_uniform_matches_manual () =
  let sel = mk_selector () in
  let flows = permutation_flows 0.5 3 in
  let manual =
    U.to_float
      (Genetic.Selector.aggregate_throughput_gbps sel ~flows
         (Array.make (Array.length flows) Routing.Rps))
  in
  Alcotest.(check (float 1e-9)) "uniform = all-same assignment" manual
    (U.to_float (Genetic.Selector.uniform sel ~flows Routing.Rps))

let selector_beats_or_matches_baselines () =
  (* The GA-selected assignment must never be worse than either uniform
     baseline (the paper's Fig. 18 claim: ratio always >= 1). *)
  let sel = mk_selector () in
  List.iter
    (fun load ->
      let flows = permutation_flows load (17 + int_of_float (load *. 10.0)) in
      let rng = Util.Rng.create 23 in
      let init = Array.make (Array.length flows) Routing.Rps in
      let rps = U.to_float (Genetic.Selector.uniform sel ~flows Routing.Rps) in
      let vlb = U.to_float (Genetic.Selector.uniform sel ~flows Routing.Vlb) in
      let sel_assignment, adaptive_q =
        Genetic.Selector.select ~pop_size:30 ~generations:10 sel rng ~flows ~init
      in
      ignore sel_assignment;
      let adaptive = U.to_float adaptive_q in
      Alcotest.(check bool)
        (Printf.sprintf "load %.2f: adaptive %.1f >= max(rps %.1f, vlb %.1f)" load adaptive rps vlb)
        true
        (adaptive >= Float.max rps vlb -. 1e-6))
    [ 0.25; 0.75 ]

let selector_low_load_prefers_nonminimal_sometimes () =
  (* At low load VLB's extra capacity helps; the adaptive assignment should
     strictly beat all-RPS at least somewhere. *)
  let sel = mk_selector () in
  let flows = permutation_flows 0.125 29 in
  let rng = Util.Rng.create 31 in
  let init = Array.make (Array.length flows) Routing.Rps in
  let rps = U.to_float (Genetic.Selector.uniform sel ~flows Routing.Rps) in
  let _, adaptive_q = Genetic.Selector.select ~pop_size:40 ~generations:12 sel rng ~flows ~init in
  let adaptive = U.to_float adaptive_q in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.2f > rps %.2f" adaptive rps)
    true (adaptive >= rps)

let selector_tail_utility () =
  (* Tail utility optimizes the worst flow; must also never fall below the
     uniform baselines under the same metric. *)
  let sel = mk_selector ~utility:Genetic.Selector.Tail_throughput () in
  let flows = permutation_flows 0.5 41 in
  let rng = Util.Rng.create 43 in
  let init = Array.make (Array.length flows) Routing.Rps in
  let rps = U.to_float (Genetic.Selector.uniform sel ~flows Routing.Rps) in
  let vlb = U.to_float (Genetic.Selector.uniform sel ~flows Routing.Vlb) in
  let _, best_q = Genetic.Selector.select ~pop_size:30 ~generations:8 sel rng ~flows ~init in
  let best = U.to_float best_q in
  Alcotest.(check bool)
    (Printf.sprintf "tail %.2f >= max(%.2f, %.2f)" best rps vlb)
    true
    (best >= Float.max rps vlb -. 1e-6);
  (* Tail <= aggregate / flows for any assignment. *)
  let agg = U.to_float (Genetic.Selector.aggregate_throughput_gbps sel ~flows init) in
  let tail = U.to_float (Genetic.Selector.utility_gbps sel ~flows init) in
  Alcotest.(check bool) "tail below mean" true
    (tail <= (agg /. float_of_int (Array.length flows)) +. 1e-6)

let selector_tenant_tail () =
  let flows = permutation_flows 0.5 47 in
  let n = Array.length flows in
  let tenants = Array.init n (fun i -> i mod 2) in
  let sel = mk_selector ~utility:(Genetic.Selector.Tenant_tail tenants) () in
  let assignment = Array.make n Routing.Rps in
  let per_flow_sel = mk_selector ~utility:Genetic.Selector.Aggregate_throughput () in
  let agg = U.to_float (Genetic.Selector.aggregate_throughput_gbps per_flow_sel ~flows assignment) in
  let tenant_tail = U.to_float (Genetic.Selector.utility_gbps sel ~flows assignment) in
  (* The worse tenant holds at most half the aggregate. *)
  Alcotest.(check bool) "tenant tail <= aggregate/2" true (tenant_tail <= (agg /. 2.0) +. 1e-6);
  Alcotest.(check bool) "positive" true (tenant_tail > 0.0)

let selector_tenant_tail_validates () =
  let flows = permutation_flows 0.25 53 in
  let sel = mk_selector ~utility:(Genetic.Selector.Tenant_tail [| 0 |]) () in
  Alcotest.check_raises "bad tenant map"
    (Invalid_argument "Selector: tenant map length mismatch") (fun () ->
      ignore (Genetic.Selector.utility_gbps sel ~flows (Array.make (Array.length flows) Routing.Rps)))

let selector_rejects_bad_lengths () =
  let sel = mk_selector () in
  let flows = permutation_flows 0.25 37 in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Selector: assignment length mismatch") (fun () ->
      ignore (Genetic.Selector.aggregate_throughput_gbps sel ~flows [| Routing.Rps |]))

let suites =
  [
    ( "genetic.ga",
      [
        tc "solves onemax" ga_solves_onemax;
        tc "elite keeps optimal init" ga_keeps_init_when_optimal;
        tc "empty genotype" ga_empty_genotype;
        tc "hill climbing improves" hill_climb_improves;
        tc "simulated annealing improves" annealing_improves;
        tc "random search bounded" random_search_bounded;
      ] );
    ( "genetic.selector",
      [
        tc "uniform equals manual assignment" selector_uniform_matches_manual;
        tc "adaptive >= best uniform baseline (Fig 18)" selector_beats_or_matches_baselines;
        tc "low load benefits from flexibility" selector_low_load_prefers_nonminimal_sometimes;
        tc "rejects bad assignment lengths" selector_rejects_bad_lengths;
        tc "tail-throughput utility (SS3.4)" selector_tail_utility;
        tc "tenant-tail utility (SS3.4)" selector_tenant_tail;
        tc "tenant map validated" selector_tenant_tail_validates;
      ] );
  ]
