(* PR 7 robustness: crash-restart with cold rejoin, gray-failure (flaky
   link) quarantine, and the declarative chaos-scenario engine with
   invariant monitors. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

(* -- Rbcast: incarnations --------------------------------------------------- *)

let rbcast_restart_bumps_incarnation () =
  let o = Rbcast.origin ~trees:2 () in
  ignore (Rbcast.send o ~tree:0 "a");
  ignore (Rbcast.send o ~tree:0 "b");
  Alcotest.(check int) "first life" 0 (Rbcast.incarnation o);
  let inc = Rbcast.restart o in
  Alcotest.(check int) "incarnation bumped" 1 inc;
  Alcotest.(check int) "log forgotten" (-1) (Rbcast.last_seq o ~tree:0);
  Alcotest.(check int) "streams restart at zero" 0 (Rbcast.send o ~tree:0 "c");
  Alcotest.(check int) "other trees too" 0 (Rbcast.send o ~tree:1 "x")

(* The satellite regression: a receive window surviving an origin crash
   keeps its old sequence position, so the fresh incarnation's seq 0 is
   absorbed as a duplicate and the event silently lost. [ensure_epoch]
   re-keys the window to the incarnation and is the fix. *)
let stale_window_duplicate_regression () =
  let o = Rbcast.origin ~trees:1 () in
  let r = Rbcast.rx () in
  ignore (Rbcast.send o ~tree:0 "a");
  ignore (Rbcast.send o ~tree:0 "b");
  (match Rbcast.receive r ~seq:0 "a" with
  | Rbcast.Deliver _ -> ()
  | Rbcast.Duplicate | Rbcast.Buffered -> Alcotest.fail "first life seq 0");
  (match Rbcast.receive r ~seq:1 "b" with
  | Rbcast.Deliver _ -> ()
  | Rbcast.Duplicate | Rbcast.Buffered -> Alcotest.fail "first life seq 1");
  let inc = Rbcast.restart o in
  let seq = Rbcast.send o ~tree:0 "c" in
  Alcotest.(check int) "new life starts at seq 0" 0 seq;
  (* The hazard itself: without re-keying, the stale window eats it. *)
  (match Rbcast.receive r ~seq "c" with
  | Rbcast.Duplicate -> ()
  | Rbcast.Deliver _ | Rbcast.Buffered ->
      Alcotest.fail "hazard gone: stale window no longer absorbs seq 0");
  Alcotest.(check bool) "new incarnation re-keys" true (Rbcast.ensure_epoch r ~epoch:inc);
  Alcotest.(check int) "window speaks the new incarnation" inc (Rbcast.rx_incarnation r);
  Alcotest.(check bool) "old incarnation now stale" false
    (Rbcast.ensure_epoch r ~epoch:(inc - 1));
  (match Rbcast.receive r ~seq "c" with
  | Rbcast.Deliver ps -> Alcotest.(check (list string)) "new life delivers" [ "c" ] ps
  | Rbcast.Duplicate | Rbcast.Buffered -> Alcotest.fail "post-restart event lost");
  (match Rbcast.receive r ~seq "c" with
  | Rbcast.Duplicate -> ()
  | Rbcast.Deliver _ | Rbcast.Buffered -> Alcotest.fail "dedup broke after re-key");
  Alcotest.(check bool) "same incarnation is a no-op" true (Rbcast.ensure_epoch r ~epoch:inc)

(* -- Stack / View: restart, JOIN, snapshot request -------------------------- *)

let feed view bytes =
  match R2c2.View.apply view bytes with
  | R2c2.View.Malformed e -> Alcotest.fail ("view rejected stack bytes: " ^ e)
  | R2c2.View.Applied _ | R2c2.View.Duplicate | R2c2.View.Buffered -> ()

let stack_restart_and_snapshot_request () =
  let topo = Topology.torus [| 2; 2; 2 |] in
  let st = R2c2.Stack.create ~seed:5 topo in
  ignore (R2c2.Stack.open_flow st ~src:0 ~dst:1);
  ignore (R2c2.Stack.open_flow st ~src:2 ~dst:3);
  Alcotest.(check int) "first life" 0 (R2c2.Stack.incarnation st);
  let join = R2c2.Stack.restart ~src:4 st in
  Alcotest.(check int) "incarnation bumped" 1 (R2c2.Stack.incarnation st);
  Alcotest.(check int) "open flows dropped silently" 0
    (List.length (R2c2.Stack.active_flows st));
  (match Wire.decode_join join with
  | Ok j ->
      Alcotest.(check int) "JOIN names the node" 4 j.Wire.jnode;
      Alcotest.(check int) "JOIN carries the incarnation" 1 j.Wire.jinc
  | Error e -> Alcotest.fail ("JOIN does not decode: " ^ e));
  let sr = R2c2.Stack.snapshot_request ~requester:4 st ~root:2 in
  (match Wire.decode_snapshot_req sr with
  | Ok s ->
      Alcotest.(check int) "asks the right origin" 2 s.Wire.sroot;
      Alcotest.(check int) "names the requester" 4 s.Wire.srequester;
      Alcotest.(check int) "carries the incarnation" 1 s.Wire.sinc
  | Error e -> Alcotest.fail ("SNAPSHOT-REQ does not decode: " ^ e));
  (* The reborn origin's streams start over. *)
  let seq0 = ref (-1) in
  R2c2.Stack.on_broadcast_seq st (fun b ->
      match Wire.decode_seq_broadcast b with
      | Ok (_, _, seq) -> if !seq0 < 0 then seq0 := seq
      | Error e -> Alcotest.fail e);
  ignore (R2c2.Stack.open_flow st ~src:0 ~dst:5);
  Alcotest.(check int) "post-restart stream starts at seq 0" 0 !seq0

let view_observe_incarnation () =
  let topo = Topology.torus [| 2; 2; 2 |] in
  let st = R2c2.Stack.create ~seed:5 topo in
  let trees = (R2c2.Stack.config st).R2c2.Stack.trees_per_source in
  let view = R2c2.View.create ~trees () in
  R2c2.Stack.on_broadcast_seq st (fun b -> feed view b);
  ignore (R2c2.Stack.open_flow st ~src:0 ~dst:1);
  ignore (R2c2.Stack.open_flow st ~src:2 ~dst:3);
  Alcotest.(check int) "replica believes two flows" 2 (R2c2.View.flow_count view);
  (match R2c2.View.observe_incarnation view ~inc:0 with
  | `Current -> ()
  | `Reset | `Stale -> Alcotest.fail "matching incarnation must be current");
  let join = R2c2.Stack.restart st in
  let inc =
    match Wire.decode_join join with
    | Ok j -> j.Wire.jinc
    | Error e -> Alcotest.fail e
  in
  (match R2c2.View.observe_incarnation view ~inc with
  | `Reset -> ()
  | `Current | `Stale -> Alcotest.fail "a restart must reset the replica");
  Alcotest.(check int) "believed flows dropped" 0 (R2c2.View.flow_count view);
  (match R2c2.View.observe_incarnation view ~inc:0 with
  | `Stale -> ()
  | `Current | `Reset -> Alcotest.fail "the old incarnation is stale");
  (* The new life's stream — starting back at seq 0 — applies cleanly
     through the re-keyed windows instead of being eaten as duplicates. *)
  ignore (R2c2.Stack.open_flow st ~src:4 ~dst:5);
  Alcotest.(check int) "new life applied" 1 (R2c2.View.flow_count view);
  Alcotest.(check bool) "replica tracks the new life" true
    (R2c2.View.matrix_hash view = R2c2.Stack.matrix_hash st)

(* -- Routing: quarantine state machine -------------------------------------- *)

let quarantine_state_machine () =
  let topo = Topology.torus [| 4; 4 |] in
  let ctx = Routing.make topo in
  Alcotest.(check int) "clean ctx has nothing demoted" 0 (Routing.demoted_links ctx);
  (match Routing.link_health ctx 0 1 with
  | Routing.Healthy -> ()
  | Routing.Probation | Routing.Quarantined -> Alcotest.fail "fresh cable must be healthy");
  Routing.note_suspect ctx 0 1;
  (match Routing.link_health ctx 0 1 with
  | Routing.Quarantined -> ()
  | Routing.Healthy | Routing.Probation -> Alcotest.fail "suspect must quarantine");
  Alcotest.(check int) "both directions demoted" 2 (Routing.demoted_links ctx);
  Routing.note_probation ctx 0 1;
  (match Routing.link_health ctx 1 0 with
  | Routing.Probation -> ()
  | Routing.Healthy | Routing.Quarantined -> Alcotest.fail "probation is symmetric");
  Alcotest.(check int) "probation still demoted" 2 (Routing.demoted_links ctx);
  Routing.note_recovered ctx 0 1;
  (match Routing.link_health ctx 0 1 with
  | Routing.Healthy -> ()
  | Routing.Probation | Routing.Quarantined -> Alcotest.fail "recovery must clear");
  Alcotest.(check int) "clean again" 0 (Routing.demoted_links ctx)

let quarantine_demotes_spray () =
  let topo = Topology.torus [| 4; 4 |] in
  let ctx = Routing.make topo in
  (* 0 = (0,0) -> 5 = (1,1): two productive first hops, vertices 1 and 4.
     Quarantine the 0-1 cable; the spray must shift towards 4 without ever
     abandoning 1 — demoted, not deleted. *)
  Routing.note_suspect ctx 0 1;
  let rng = Util.Rng.create 23 in
  let via1 = ref 0 and n = 2000 in
  for _ = 1 to n do
    let p = Routing.sample_path ctx rng Routing.Rps ~src:0 ~dst:5 in
    if p.(1) = 1 then incr via1
  done;
  let frac = float_of_int !via1 /. float_of_int n in
  Alcotest.(check bool) "demoted link still probed" true (!via1 > 0);
  Alcotest.(check bool) "well below its fair 50% share" true (frac < 0.25);
  (* Expected share: w / (1 + w) with w = 0.125, about 11%. *)
  Alcotest.(check bool) "near its quarantine weight" true (frac > 0.02);
  (* Recovery restores the exact legacy draw: two same-seeded generators,
     one on a never-touched ctx and one on the recovered ctx, must sample
     identical paths — quarantine left no residue in the RNG stream. *)
  Routing.note_recovered ctx 0 1;
  let fresh = Routing.make topo in
  let r1 = Util.Rng.create 99 and r2 = Util.Rng.create 99 in
  for _ = 1 to 200 do
    let a = Routing.sample_path ctx r1 Routing.Rps ~src:0 ~dst:5 in
    let b = Routing.sample_path fresh r2 Routing.Rps ~src:0 ~dst:5 in
    if a <> b then Alcotest.fail "recovered ctx diverges from the legacy draw"
  done

(* -- packet-level simulation ------------------------------------------------ *)

let interval = 100_000

let sim_cfg ?(seed = 7) () =
  {
    Sim.R2c2_sim.default_config with
    control = Sim.R2c2_sim.Per_node;
    reliable_bcast = true;
    recompute_interval_ns = interval;
    digest_interval_ns = 50_000;
    seed;
  }

let permutation t topo ~size =
  let h = Topology.host_count topo in
  for i = 0 to h - 1 do
    ignore (Sim.R2c2_sim.start_flow t ~src:i ~dst:((i + (h / 2) + 1) mod h) ~size)
  done

(* A flaky cable must be noticed (quarantined), kept on probation after the
   glitch clears, and eventually recovered — with every gray loss routed
   through the ordinary drop path so payload accounting still balances. *)
let flaky_quarantine_and_recovery () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ()) topo in
  permutation t topo ~size:400_000;
  Sim.R2c2_sim.flaky_link_at t ~ns:20_000 1 2 ~loss:(U.fraction 0.3)
    ~spike:(U.fraction 0.2);
  Sim.R2c2_sim.unflaky_link_at t ~ns:700_000 1 2;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check bool) "gray losses happened" true (r.flaky_lost > 0);
  Alcotest.(check bool) "lost bytes counted" true (r.flaky_lost_bytes > 0);
  Alcotest.(check bool) "cable was quarantined" true (r.quarantines >= 1);
  Alcotest.(check bool) "probation happened" true (r.probations >= 1);
  Alcotest.(check bool) "cable recovered" true (r.recoveries >= 1);
  (match Sim.R2c2_sim.link_health t 1 2 with
  | Routing.Healthy -> ()
  | Routing.Probation | Routing.Quarantined ->
      Alcotest.fail "link still demoted after the glitch cleared");
  Alcotest.(check int) "byte conservation" r.injected_payload
    (r.delivered_payload + r.dropped_payload + r.blackholed_payload);
  Alcotest.(check int) "all flows complete" (Topology.host_count topo)
    (Sim.Metrics.completed_count r.metrics);
  Alcotest.(check int) "zero terminal divergence" 0 r.terminal_diverged

let crash_restart_rejoins () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ()) topo in
  permutation t topo ~size:200_000;
  Sim.R2c2_sim.crash_node_at t ~ns:100_000 13;
  Sim.R2c2_sim.restart_node_at t ~ns:400_000 13;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check bool) "crash recorded" true
    (List.exists (fun f -> f.kind = "crash") r.failures);
  Alcotest.(check bool) "restart recorded" true
    (List.exists (fun f -> f.kind = "restart") r.failures);
  Alcotest.(check bool) "JOIN announced" true (r.joins_sent >= 1);
  (match r.rejoins with
  | [ (node, start, fin) ] ->
      Alcotest.(check int) "node 13 rejoined" 13 node;
      Alcotest.(check int) "stamped at the restart instant" 400_000 start;
      Alcotest.(check bool) "caught up after coming back" true (fin >= start)
  | l -> Alcotest.failf "expected exactly one rejoin, got %d" (List.length l));
  Alcotest.(check int) "no rejoin left pending" 0 r.rejoins_pending;
  Alcotest.(check int) "zero terminal divergence" 0 r.terminal_diverged;
  Alcotest.(check bool) "control plane converged" true (Sim.R2c2_sim.control_converged t);
  Alcotest.(check bool) "the crash killed its flows" true
    (List.length r.aborted_flows >= 1);
  Alcotest.(check int) "every surviving flow completes"
    (Topology.host_count topo - List.length r.aborted_flows)
    (Sim.Metrics.completed_count r.metrics);
  Alcotest.(check int) "byte conservation across the crash" r.injected_payload
    (r.delivered_payload + r.dropped_payload + r.blackholed_payload)

(* -- chaos-scenario engine -------------------------------------------------- *)

let all_invariants =
  [
    Sim.Scenario.Byte_conservation;
    Sim.Scenario.No_crashed_traversal;
    Sim.Scenario.Reconverge_within { max_ns = 2_000_000 };
    Sim.Scenario.View_staleness { max_ns = 1_000_000; poll_ns = 50_000 };
  ]

let scenario_clean_run_no_violations () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ()) topo in
  permutation t topo ~size:120_000;
  let report = Sim.Scenario.run ~invariants:all_invariants t [] in
  Alcotest.(check (list string)) "no violations" [] report.Sim.Scenario.violations;
  Alcotest.(check bool) "monitors actually evaluated" true
    (report.Sim.Scenario.checks > 0);
  Alcotest.(check bool) "run went somewhere" true (report.Sim.Scenario.end_ns > 0)

let scenario_partition_heals () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ()) topo in
  permutation t topo ~size:200_000;
  let steps =
    [ Sim.Scenario.partition ~at:100_000 [ 0 ]; Sim.Scenario.heal ~at:300_000 [ 0 ] ]
  in
  let report =
    Sim.Scenario.run
      ~invariants:
        [ Sim.Scenario.Byte_conservation; Sim.Scenario.Reconverge_within { max_ns = 2_000_000 } ]
      t steps
  in
  Alcotest.(check (list string)) "no violations" [] report.Sim.Scenario.violations;
  let r = Sim.R2c2_sim.results t in
  (* Node 0 has 6 cables on a 3x3x3 torus: 6 cuts + 6 restores. *)
  Alcotest.(check int) "all twelve link events recorded" 12
    (List.length r.Sim.R2c2_sim.failures);
  Alcotest.(check int) "zero terminal divergence" 0 r.Sim.R2c2_sim.terminal_diverged;
  (* The heal lands after every flow completed — exactly the case where
     anti-entropy must come back from idle to repair the cut-off node. *)
  Alcotest.(check bool) "cut-off node was repaired by syncs or replays" true
    (r.Sim.R2c2_sim.syncs_sent + r.Sim.R2c2_sim.event_retransmits > 0)

let scenario_reports_violations () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ()) topo in
  permutation t topo ~size:120_000;
  let steps = [ Sim.Scenario.fail_link ~at:50_000 0 1 ] in
  (* A zero reconvergence bound is unsatisfiable: detection always precedes
     the next rate epoch. The monitor must both call the hook and return
     the violation in the report. *)
  let seen = ref [] in
  let report =
    Sim.Scenario.run
      ~on_violation:(fun m -> seen := m :: !seen)
      ~invariants:[ Sim.Scenario.Reconverge_within { max_ns = 0 } ]
      t steps
  in
  Alcotest.(check bool) "violations reported" true
    (report.Sim.Scenario.violations <> []);
  Alcotest.(check int) "hook fired once per violation"
    (List.length report.Sim.Scenario.violations)
    (List.length !seen)

let scenario_default_hook_fails_loudly () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ()) topo in
  permutation t topo ~size:120_000;
  let steps = [ Sim.Scenario.fail_link ~at:50_000 0 1 ] in
  match
    Sim.Scenario.run ~invariants:[ Sim.Scenario.Reconverge_within { max_ns = 0 } ] t steps
  with
  | _ -> Alcotest.fail "unsatisfiable invariant must kill the run"
  | exception Failure _ -> ()

(* The graychaos composition — one node crash-restart plus two flaky
   cables — with every invariant armed. Returns a byte-exact snapshot for
   the determinism and backend-differential checks. *)
let graychaos_scenario ?(backend = Sim.Engine.Calendar) () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let cfg = { (sim_cfg ()) with Sim.R2c2_sim.engine_backend = backend } in
  let t = Sim.R2c2_sim.create cfg topo in
  let h = Topology.host_count topo in
  for i = 0 to h - 1 do
    let src = i and dst = (i + (h / 2) + 1) mod h in
    Sim.Engine.at (Sim.R2c2_sim.engine t) (i * 3_000) (fun () ->
        ignore (Sim.R2c2_sim.start_flow t ~src ~dst ~size:200_000))
  done;
  let steps =
    [
      Sim.Scenario.flaky ~at:50_000 1 2 ~loss:(U.fraction 0.25) ~spike:(U.fraction 0.1);
      Sim.Scenario.flaky ~at:60_000 4 5 ~loss:(U.fraction 0.25) ~spike:(U.fraction 0.1);
      Sim.Scenario.crash ~at:100_000 13;
      Sim.Scenario.restart ~at:400_000 13;
      Sim.Scenario.unflaky ~at:700_000 1 2;
      Sim.Scenario.unflaky ~at:700_000 4 5;
    ]
  in
  let report = Sim.Scenario.run ~invariants:all_invariants t steps in
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (f : Sim.Metrics.flow) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %d %d->%d del=%d fin=%d\n" f.id f.src f.dst f.delivered
           f.finish_ns))
    (Sim.Metrics.all r.metrics);
  List.iter
    (fun (node, s, e) -> Buffer.add_string buf (Printf.sprintf "rejoin %d %d %d\n" node s e))
    r.rejoins;
  Buffer.add_string buf
    (Printf.sprintf "flaky=%d/%dB quar=%d prob=%d rec=%d joins=%d rtx=%d nacks=%d syncs=%d\n"
       r.flaky_lost r.flaky_lost_bytes r.quarantines r.probations r.recoveries r.joins_sent
       r.retransmissions r.nacks_sent r.syncs_sent);
  Buffer.add_string buf
    (Printf.sprintf "checks=%d staleness=%d end=%d\n" report.Sim.Scenario.checks
       report.Sim.Scenario.worst_staleness_ns report.Sim.Scenario.end_ns);
  (Buffer.contents buf, report, r)

let graychaos_invariants_hold () =
  let _, report, r = graychaos_scenario () in
  Alcotest.(check (list string)) "every invariant monitor passes" []
    report.Sim.Scenario.violations;
  let open Sim.R2c2_sim in
  Alcotest.(check bool) "gray losses happened" true (r.flaky_lost > 0);
  Alcotest.(check bool) "quarantine engaged" true (r.quarantines >= 1);
  Alcotest.(check int) "the crashed node rejoined" 1 (List.length r.rejoins);
  Alcotest.(check int) "nothing left pending" 0 r.rejoins_pending;
  Alcotest.(check int) "zero terminal divergence" 0 r.terminal_diverged

(* Satellite: same-seed chaos scenarios are byte-identical — across two
   runs, and across the Calendar and Binary_heap engine backends (the
   crash-restart and flaky-link machinery joins the PR 6 differential
   surface). *)
let graychaos_deterministic () =
  let s1, _, _ = graychaos_scenario () in
  let s2, _, _ = graychaos_scenario () in
  Alcotest.(check bool) "snapshot non-trivial" true (String.length s1 > 200);
  Alcotest.(check string) "same seed, same bytes" s1 s2

let graychaos_backend_differential () =
  let cal, _, _ = graychaos_scenario ~backend:Sim.Engine.Calendar () in
  let heap, _, _ = graychaos_scenario ~backend:Sim.Engine.Binary_heap () in
  Alcotest.(check string) "heap = calendar under chaos" cal heap

let suites =
  [
    ( "robustness",
      [
        tc "rbcast restart bumps incarnation" rbcast_restart_bumps_incarnation;
        tc "stale window duplicate regression" stale_window_duplicate_regression;
        tc "stack restart and snapshot request" stack_restart_and_snapshot_request;
        tc "view observes incarnations" view_observe_incarnation;
        tc "quarantine state machine" quarantine_state_machine;
        tc "quarantine demotes spray" quarantine_demotes_spray;
        tc "flaky link quarantined and recovered" flaky_quarantine_and_recovery;
        tc "crash-restart rejoins" crash_restart_rejoins;
        tc "scenario: clean run, no violations" scenario_clean_run_no_violations;
        tc "scenario: partition heals" scenario_partition_heals;
        tc "scenario: violations reported" scenario_reports_violations;
        tc "scenario: default hook fails loudly" scenario_default_hook_fails_loudly;
        tc "graychaos invariants hold" graychaos_invariants_hold;
        tc "graychaos deterministic" graychaos_deterministic;
        tc "graychaos backend differential" graychaos_backend_differential;
      ] );
  ]
