(* Tests for lib/core: the Stack control-plane facade and the Fig. 19
   control-traffic model. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

(* Unwrap an allocation for the raw-number checks below. *)
let rate st f = U.to_float (R2c2.Stack.rate_gbps st f)

let mk () = R2c2.Stack.create ~seed:3 (Topology.torus [| 4; 4 |])

let open_close_lifecycle () =
  let st = mk () in
  let f = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  Alcotest.(check int) "one active flow" 1 (List.length (R2c2.Stack.active_flows st));
  R2c2.Stack.close_flow st f;
  Alcotest.(check int) "closed" 0 (List.length (R2c2.Stack.active_flows st));
  Alcotest.check_raises "double close" (Invalid_argument "Stack: unknown flow id") (fun () ->
      R2c2.Stack.close_flow st f)

let open_flow_validation () =
  let st = mk () in
  Alcotest.check_raises "self flow" (Invalid_argument "Stack.open_flow: src = dst") (fun () ->
      ignore (R2c2.Stack.open_flow st ~src:3 ~dst:3));
  Alcotest.check_raises "out of range" (Invalid_argument "Stack.open_flow: host out of range")
    (fun () -> ignore (R2c2.Stack.open_flow st ~src:0 ~dst:99))

let broadcasts_observable () =
  let st = mk () in
  let events = ref [] in
  R2c2.Stack.on_broadcast st (fun b -> events := b.Wire.event :: !events);
  let f = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  R2c2.Stack.set_demand st f ~gbps:(Some (U.gbps 2.0));
  R2c2.Stack.set_protocol st f Routing.Vlb;
  R2c2.Stack.close_flow st f;
  Alcotest.(check (list bool)) "event sequence" [ true; true; true; true ]
    (List.map
       (fun e ->
         List.mem e [ Wire.Flow_start; Wire.Demand_update; Wire.Route_change; Wire.Flow_finish ])
       !events);
  Alcotest.(check int) "four events" 4 (List.length !events)

let set_protocol_idempotent () =
  let st = mk () in
  let count = ref 0 in
  R2c2.Stack.on_broadcast st (fun _ -> incr count);
  let f = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  let before = !count in
  R2c2.Stack.set_protocol st f Routing.Rps;
  (* Same protocol: no broadcast. *)
  Alcotest.(check int) "no event for no-op" before !count

let control_bytes_accounting () =
  let st = mk () in
  let f = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  R2c2.Stack.close_flow st f;
  (* 16 bytes x 15 edges x 2 events on a 16-node rack. *)
  Alcotest.(check int) "control bytes" (2 * 16 * 15) (R2c2.Stack.control_bytes_sent st)

let recompute_rates () =
  let st = mk () in
  let f1 = R2c2.Stack.open_flow st ~src:1 ~dst:0 in
  let f2 = R2c2.Stack.open_flow st ~src:2 ~dst:0 in
  Alcotest.(check (float 1e-9)) "zero before recompute" 0.0 (rate st f1);
  R2c2.Stack.recompute st;
  let r1 = rate st f1 and r2 = rate st f2 in
  Alcotest.(check bool) "positive" true (r1 > 0.0 && r2 > 0.0);
  Alcotest.(check bool) "nearly fair" true (abs_float (r1 -. r2) < 0.5);
  Alcotest.(check (float 1e-6)) "aggregate = sum" (r1 +. r2)
    (U.to_float (R2c2.Stack.aggregate_throughput_gbps st))

let weights_and_priorities () =
  let st = mk () in
  let hi = R2c2.Stack.open_flow ~priority:0 st ~src:1 ~dst:0 in
  let lo = R2c2.Stack.open_flow ~priority:1 st ~src:1 ~dst:0 in
  R2c2.Stack.recompute st;
  Alcotest.(check bool) "strict priority" true
    (rate st hi > 8.0 && rate st lo < 1.0)

let demand_limits_allocation () =
  let st = mk () in
  let f1 = R2c2.Stack.open_flow st ~src:1 ~dst:0 in
  let f2 = R2c2.Stack.open_flow st ~src:2 ~dst:0 in
  R2c2.Stack.set_demand st f1 ~gbps:(Some (U.gbps 1.0));
  R2c2.Stack.recompute st;
  Alcotest.(check bool) "demand-capped" true (rate st f1 <= 1.0 +. 1e-6);
  Alcotest.(check bool) "spare goes to the other flow" true (rate st f2 > 2.0)

let observe_queue_triggers_demand_update () =
  let st = mk () in
  let f = R2c2.Stack.open_flow st ~src:1 ~dst:0 in
  let other = R2c2.Stack.open_flow st ~src:2 ~dst:0 in
  R2c2.Stack.recompute st;
  (* Build estimator history while the flow's share is low... *)
  R2c2.Stack.observe_sender_queue st f ~queued_bytes:(U.bytes 0.0) ~period_ns:1_000_000;
  (* ...then give it a much larger allocation: the smoothed demand estimate
     now sits below the new share, i.e. the flow is host limited. *)
  R2c2.Stack.close_flow st other;
  R2c2.Stack.recompute st;
  let saw_demand = ref false in
  R2c2.Stack.on_broadcast st (fun b -> if b.Wire.event = Wire.Demand_update then saw_demand := true);
  R2c2.Stack.observe_sender_queue st f ~queued_bytes:(U.bytes 0.0) ~period_ns:1_000_000;
  Alcotest.(check bool) "demand update broadcast" true !saw_demand

let reselect_improves_throughput () =
  let topo = Topology.torus [| 4; 4; 4 |] in
  let st = R2c2.Stack.create ~seed:5 topo in
  let rng = Util.Rng.create 7 in
  let specs = Workload.Flowgen.permutation_long_flows topo rng ~load:(U.fraction 0.25) in
  List.iter
    (fun (s : Workload.Flowgen.spec) -> ignore (R2c2.Stack.open_flow st ~src:s.src ~dst:s.dst))
    specs;
  R2c2.Stack.recompute st;
  let before = U.to_float (R2c2.Stack.aggregate_throughput_gbps st) in
  let changed = R2c2.Stack.reselect_routing ~pop_size:30 ~generations:8 st (Util.Rng.create 9) in
  R2c2.Stack.recompute st;
  let after = U.to_float (R2c2.Stack.aggregate_throughput_gbps st) in
  Alcotest.(check bool)
    (Printf.sprintf "no regression (%.1f -> %.1f, %d changed)" before after changed)
    true
    (after >= before -. 1e-6)

let sample_packet_route_valid () =
  let st = mk () in
  let f = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  let rng = Util.Rng.create 11 in
  let path, sels = R2c2.Stack.sample_packet_route st f rng in
  Alcotest.(check int) "route selectors cover hops" (Array.length path - 1) (Array.length sels);
  Alcotest.(check int) "starts at src" 0 path.(0);
  Alcotest.(check int) "ends at dst" 5 path.(Array.length path - 1)

let failure_reannounces_flows () =
  let st = mk () in
  let _ = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  let _ = R2c2.Stack.open_flow st ~src:1 ~dst:6 in
  let count = ref 0 in
  R2c2.Stack.on_broadcast st (fun b -> if b.Wire.event = Wire.Flow_start then incr count);
  R2c2.Stack.handle_failure st;
  Alcotest.(check int) "every open flow re-broadcast" 2 !count

(* Regression: a failure re-announce must also re-emit the demand state, or
   the rebuilt rack view would silently treat host-limited flows as
   network-limited until their next estimator period. *)
let failure_reemits_demand () =
  let st = mk () in
  let limited = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  let unlimited = R2c2.Stack.open_flow st ~src:1 ~dst:6 in
  let estimated = R2c2.Stack.open_flow st ~src:2 ~dst:7 in
  R2c2.Stack.set_demand st limited ~gbps:(Some (U.gbps 2.0));
  (* [estimated] has a live estimator but no declared demand. *)
  R2c2.Stack.recompute st;
  R2c2.Stack.observe_sender_queue st estimated ~queued_bytes:(U.bytes 1e6) ~period_ns:1_000_000;
  let demand_updates = ref [] in
  let starts = ref 0 in
  R2c2.Stack.on_broadcast st (fun b ->
      match b.Wire.event with
      | Wire.Demand_update -> demand_updates := (b.Wire.bsrc, b.Wire.demand_kbps) :: !demand_updates
      | Wire.Flow_start -> incr starts
      | Wire.Flow_finish | Wire.Route_change -> ());
  R2c2.Stack.handle_failure st;
  Alcotest.(check int) "every open flow re-broadcast" 3 !starts;
  Alcotest.(check int) "demand re-emitted for declared + estimated flows" 2
    (List.length !demand_updates);
  (* The declared 2 Gbps demand survives the failure verbatim. *)
  Alcotest.(check bool) "declared demand value carried" true
    (List.exists (fun (src, kbps) -> src = 0 && kbps = 2_000_000) !demand_updates);
  ignore unlimited

(* The incremental epoch state must converge to exactly what a fresh stack
   computes from scratch for the same final traffic matrix. *)
let incremental_matches_fresh_stack () =
  let churned = mk () in
  let rng = Util.Rng.create 21 in
  let live = ref [] in
  for _ = 1 to 60 do
    (match Util.Rng.int rng 4 with
    | 0 | 1 ->
        let src = Util.Rng.int rng 16 in
        let dst = (src + 1 + Util.Rng.int rng 15) mod 16 in
        let weight = 1 + Util.Rng.int rng 3 in
        let priority = Util.Rng.int rng 2 in
        let id = R2c2.Stack.open_flow ~weight ~priority churned ~src ~dst in
        live := (id, src, dst, weight, priority, ref None) :: !live
    | 2 when !live <> [] ->
        let n = List.length !live in
        let id, _, _, _, _, _ = List.nth !live (Util.Rng.int rng n) in
        R2c2.Stack.close_flow churned id;
        live := List.filter (fun (i, _, _, _, _, _) -> i <> id) !live
    | _ -> (
        match !live with
        | [] -> ()
        | l ->
            let id, _, _, _, _, demand = List.nth l (Util.Rng.int rng (List.length l)) in
            let g = if Util.Rng.bool rng then Some (U.gbps (Util.Rng.float rng 4.0)) else None in
            demand := g;
            R2c2.Stack.set_demand churned id ~gbps:g));
    (* Interleave recomputes so the arena really is reused across epochs. *)
    if Util.Rng.int rng 3 = 0 then R2c2.Stack.recompute churned
  done;
  R2c2.Stack.recompute churned;
  let fresh = mk () in
  let pairs =
    List.rev_map
      (fun (id, src, dst, weight, priority, demand) ->
        let id' = R2c2.Stack.open_flow ~weight ~priority fresh ~src ~dst in
        (match !demand with Some _ as g -> R2c2.Stack.set_demand fresh id' ~gbps:g | None -> ());
        (id, id'))
      !live
  in
  R2c2.Stack.recompute fresh;
  Alcotest.(check bool) "nonempty scenario" true (List.length pairs > 3);
  List.iter
    (fun (id, id') ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "flow %d" id)
        (rate fresh id') (rate churned id))
    pairs

(* -- policy mapping (SS3.3.2) -------------------------------------------------- *)

let policy_tenant_weights () =
  let d = R2c2.Policy.tenant_share ~weight:3 in
  Alcotest.(check int) "weight" 3 d.R2c2.Policy.weight;
  Alcotest.(check int) "priority" 0 d.R2c2.Policy.priority;
  Alcotest.check_raises "weight too large"
    (Invalid_argument "Policy.tenant_share: weight must be in 1..255") (fun () ->
      ignore (R2c2.Policy.tenant_share ~weight:256))

let policy_deadline_bands () =
  let link_gbps = U.gbps 10.0 in
  (* 1 MB in 1 ms needs 8 Gbps: most urgent band. *)
  let urgent = R2c2.Policy.deadline ~size_bytes:1_000_000 ~deadline_ns:1_000_000 ~link_gbps in
  Alcotest.(check int) "urgent band" 0 urgent.R2c2.Policy.priority;
  (* 10 KB in 1 ms needs 0.08 Gbps: laxest band. *)
  let lax = R2c2.Policy.deadline ~size_bytes:10_000 ~deadline_ns:1_000_000 ~link_gbps in
  Alcotest.(check int) "lax band" (R2c2.Policy.deadline_bands - 1) lax.R2c2.Policy.priority;
  Alcotest.(check bool) "background below all bands" true
    (R2c2.Policy.background.R2c2.Policy.priority > lax.R2c2.Policy.priority)

let policy_deadline_monotone () =
  (* Tighter deadlines never get a lower-urgency band. *)
  let link_gbps = U.gbps 10.0 in
  let prev = ref max_int in
  List.iter
    (fun dl ->
      let d = R2c2.Policy.deadline ~size_bytes:1_000_000 ~deadline_ns:dl ~link_gbps in
      Alcotest.(check bool) "priority non-increasing with urgency" true
        (d.R2c2.Policy.priority <= !prev);
      prev := d.R2c2.Policy.priority)
    [ 100_000_000; 10_000_000; 2_000_000; 1_000_000; 500_000 ]

let policy_end_to_end_deadline () =
  (* An urgent flow mapped through the policy module preempts background
     bulk on the same bottleneck and meets its deadline. *)
  let st = mk () in
  let link_gbps = (R2c2.Stack.config st).R2c2.Stack.link_gbps in
  let urgent_d = R2c2.Policy.deadline ~size_bytes:1_000_000 ~deadline_ns:1_200_000 ~link_gbps in
  let urgent =
    R2c2.Stack.open_flow ~weight:urgent_d.R2c2.Policy.weight
      ~priority:urgent_d.R2c2.Policy.priority st ~src:1 ~dst:0
  in
  let bulk =
    R2c2.Stack.open_flow ~weight:R2c2.Policy.background.R2c2.Policy.weight
      ~priority:R2c2.Policy.background.R2c2.Policy.priority st ~src:1 ~dst:0
  in
  R2c2.Stack.recompute st;
  let r = R2c2.Stack.rate_gbps st urgent in
  Alcotest.(check bool) "meets deadline" true
    (R2c2.Policy.meets_deadline ~size_bytes:1_000_000 ~deadline_ns:1_200_000 ~rate_gbps:r);
  Alcotest.(check bool) "bulk preempted" true (rate st bulk < (r : U.gbps :> float))

(* -- control traffic (Fig 19) ------------------------------------------------ *)

let fig19_decentralized_constant () =
  let topo = Topology.torus [| 8; 8; 8 |] in
  Alcotest.(check (float 1e-9)) "16 x 511" 8176.0
    (U.to_float (R2c2.Control_traffic.decentralized_event_bytes topo))

let fig19_centralized_grows () =
  let topo = Topology.torus [| 8; 8; 8 |] in
  let r1 = R2c2.Control_traffic.ratio topo ~flows_per_server:1 in
  let r10 = R2c2.Control_traffic.ratio topo ~flows_per_server:10 in
  Alcotest.(check bool) (Printf.sprintf "~6x at 1 flow (got %.1f)" r1) true (r1 > 4.0 && r1 < 9.0);
  Alcotest.(check bool) (Printf.sprintf "~20x at 10 flows (got %.1f)" r10) true
    (r10 > 15.0 && r10 < 27.0);
  Alcotest.(check bool) "monotone" true (r10 > r1)

let suites =
  [
    ( "stack",
      [
        tc "open/close lifecycle" open_close_lifecycle;
        tc "open_flow validation" open_flow_validation;
        tc "broadcasts observable and well-formed" broadcasts_observable;
        tc "set_protocol idempotent" set_protocol_idempotent;
        tc "control bytes accounting" control_bytes_accounting;
        tc "recompute produces fair rates" recompute_rates;
        tc "priorities respected" weights_and_priorities;
        tc "demand limits allocation" demand_limits_allocation;
        tc "queue observation triggers demand update" observe_queue_triggers_demand_update;
        tc "routing reselection never regresses" reselect_improves_throughput;
        tc "sampled packet routes valid" sample_packet_route_valid;
        tc "failure handling re-announces flows" failure_reannounces_flows;
        tc "failure handling re-emits demand state" failure_reemits_demand;
        tc "incremental epochs match a fresh stack" incremental_matches_fresh_stack;
      ] );
    ( "policy",
      [
        tc "tenant weights" policy_tenant_weights;
        tc "deadline bands" policy_deadline_bands;
        tc "deadline urgency monotone" policy_deadline_monotone;
        tc "deadline end-to-end via the stack" policy_end_to_end_deadline;
      ] );
    ( "control_traffic",
      [
        tc "decentralized constant (paper: ~8 KB)" fig19_decentralized_constant;
        tc "centralized grows with flows/server" fig19_centralized_grows;
      ] );
  ]
