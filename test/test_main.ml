let () =
  Alcotest.run "r2c2"
    (List.concat
       [
         Test_util.suites;
         Test_topology.suites;
         Test_routing.suites;
         Test_wire.suites;
         Test_congestion.suites;
         Test_incremental.suites;
         Test_broadcast.suites;
         Test_workload.suites;
         Test_sim.suites;
         Test_emu.suites;
         Test_genetic.suites;
         Test_stack.suites;
         Test_failure.suites;
         Test_controlloss.suites;
         Test_robustness.suites;
         Test_overload.suites;
         Test_integration.suites;
         Test_lint.suites;
         Test_lint_life.suites;
         Test_lint_typed.suites;
         Test_lint_effects.suites;
       ])
