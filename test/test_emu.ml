(* Tests for lib/emu: fluid emulation, cross-validation against the packet
   simulator (the Fig. 7 methodology), and rate-error analysis. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

let torus44 = lazy (Topology.torus [| 4; 4 |])

let fluid_completes_all () =
  let topo = Lazy.force torus44 in
  let rng = Util.Rng.create 3 in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows:150 ~mean_interarrival_ns:1_000.0 in
  let r = Emu.Fluid.run Emu.Fluid.default_config topo specs in
  Alcotest.(check int) "all complete" 150 (List.length r.Emu.Fluid.flows);
  List.iter
    (fun (f : Emu.Fluid.flow_result) ->
      Alcotest.(check bool) "positive fct" true (f.fct_ns > 0);
      Alcotest.(check bool) "sane rate" true ((f.avg_rate_gbps : U.gbps :> float) > 0.0))
    r.Emu.Fluid.flows

let fluid_single_flow_rate () =
  let topo = Lazy.force torus44 in
  let specs =
    [ { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 1; size = 10_000_000; weight = 1; priority = 0 } ]
  in
  let r = Emu.Fluid.run Emu.Fluid.default_config topo specs in
  match r.Emu.Fluid.flows with
  | [ f ] ->
      (* A lone flow runs at line rate (the first epoch schedules it at
         95%, but it starts unthrottled). *)
      let rate = U.to_float f.avg_rate_gbps in
      Alcotest.(check bool) (Printf.sprintf "near line rate (%.2f)" rate) true (rate > 8.5)
  | _ -> Alcotest.fail "expected one flow"

let fluid_fair_sharing () =
  let topo = Lazy.force torus44 in
  let mk src = { Workload.Flowgen.arrival_ns = 0; src; dst = 0; size = 20_000_000; weight = 1; priority = 0 } in
  let r = Emu.Fluid.run Emu.Fluid.default_config topo [ mk 1; mk 2 ] in
  match r.Emu.Fluid.flows with
  | [ a; b ] ->
      let ra = U.to_float a.avg_rate_gbps and rb = U.to_float b.avg_rate_gbps in
      Alcotest.(check bool) (Printf.sprintf "fair (%.2f vs %.2f)" ra rb) true
        (abs_float (ra -. rb) < 1.5)
  | _ -> Alcotest.fail "expected two flows"

let fluid_deterministic () =
  let topo = Lazy.force torus44 in
  let rng = Util.Rng.create 5 in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows:80 ~mean_interarrival_ns:1_000.0 in
  let r1 = Emu.Fluid.run Emu.Fluid.default_config topo specs in
  let r2 = Emu.Fluid.run Emu.Fluid.default_config topo specs in
  Alcotest.(check bool) "identical results" true (r1.Emu.Fluid.flows = r2.Emu.Fluid.flows)

let fluid_cross_validates_simulator () =
  (* The Fig. 7 claim: the two independent engines agree on the workload's
     throughput distribution. *)
  let topo = Lazy.force torus44 in
  let rng = Util.Rng.create 7 in
  let specs = Workload.Flowgen.fixed_size topo rng ~flows:100 ~size:1_000_000 ~mean_interarrival_ns:100_000.0 in
  let sim = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  let emu = Emu.Fluid.run Emu.Fluid.default_config topo specs in
  let sim_med =
    Util.Stats.median (U.floats_of (Sim.Metrics.throughputs_gbps sim.Sim.R2c2_sim.metrics))
  in
  let emu_med =
    Util.Stats.median
      (Array.of_list
         (List.map (fun (f : Emu.Fluid.flow_result) -> U.to_float f.avg_rate_gbps) emu.Emu.Fluid.flows))
  in
  Alcotest.(check bool)
    (Printf.sprintf "medians within 15%% (sim %.2f, emu %.2f)" sim_med emu_med)
    true
    (abs_float (sim_med -. emu_med) /. Float.max sim_med emu_med < 0.15)

let fluid_queue_estimate_grows_under_burst () =
  let topo = Lazy.force torus44 in
  (* Many simultaneous flows into one node: loads exceed capacity until the
     first recompute, so the queue estimate must be positive. *)
  let specs =
    List.init 6 (fun i ->
        { Workload.Flowgen.arrival_ns = 0; src = i + 1; dst = 0; size = 5_000_000; weight = 1; priority = 0 })
  in
  let r = Emu.Fluid.run Emu.Fluid.default_config topo specs in
  let peak = Array.fold_left max 0.0 (U.floats_of r.Emu.Fluid.max_queue_bytes) in
  Alcotest.(check bool) "queues grew" true (peak > 0.0)

let fluid_until_cuts_off () =
  let topo = Lazy.force torus44 in
  let specs =
    [ { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 5; size = 100_000_000; weight = 1; priority = 0 } ]
  in
  let r = Emu.Fluid.run ~until_ns:1_000 Emu.Fluid.default_config topo specs in
  Alcotest.(check int) "not done in 1 us" 0 (List.length r.Emu.Fluid.flows)

let fluid_vlb_protocol () =
  (* A custom protocol_of drives flows over VLB and still completes. *)
  let topo = Lazy.force torus44 in
  let rng = Util.Rng.create 13 in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows:60 ~mean_interarrival_ns:1_000.0 in
  let r =
    Emu.Fluid.run ~protocol_of:(fun _ _ -> Routing.Vlb) Emu.Fluid.default_config topo specs
  in
  Alcotest.(check int) "all complete on VLB" 60 (List.length r.Emu.Fluid.flows)

let rate_error_zero_at_rho_zero () =
  let topo = Lazy.force torus44 in
  let rng = Util.Rng.create 9 in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows:60 ~mean_interarrival_ns:1_000.0 in
  let errs = Emu.Fluid.rate_error Emu.Fluid.default_config topo specs ~rho_ns:0 in
  Alcotest.(check bool) "no error against itself" true
    (Array.for_all (fun e -> e < 1e-9) errs)

let rate_error_grows_with_rho () =
  (* Long-lived flows so both intervals schedule them (the batching filter
     drops flows shorter than one interval). *)
  let topo = Lazy.force torus44 in
  let rng = Util.Rng.create 11 in
  let specs =
    Workload.Flowgen.fixed_size topo rng ~flows:40 ~size:3_000_000
      ~mean_interarrival_ns:100_000.0
  in
  let med rho =
    Util.Stats.median (Emu.Fluid.rate_error Emu.Fluid.default_config topo specs ~rho_ns:rho)
  in
  let small = med 100_000 and large = med 1_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "error grows with rho (%.4f -> %.4f)" small large)
    true (small <= large +. 1e-6)

let suites =
  [
    ( "emu.fluid",
      [
        tc "completes all flows" fluid_completes_all;
        tc "single flow near line rate" fluid_single_flow_rate;
        tc "fair sharing of a bottleneck" fluid_fair_sharing;
        tc "deterministic" fluid_deterministic;
        tc "cross-validates the packet simulator (Fig 7)" fluid_cross_validates_simulator;
        tc "queue estimate grows under burst" fluid_queue_estimate_grows_under_burst;
        tc "until_ns cuts off" fluid_until_cuts_off;
        tc "VLB protocol end to end" fluid_vlb_protocol;
      ] );
    ( "emu.rate_error",
      [
        tc "zero against itself" rate_error_zero_at_rho_zero;
        tc "grows with rho (Fig 15)" rate_error_grows_with_rho;
      ] );
  ]
