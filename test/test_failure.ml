(* Fault injection and rack-wide recovery: the topology down-state overlay
   under exhaustive single-link removal, the packet-level failure story
   (blackholing, detection, tree repair, retransmission, reconvergence),
   byte conservation under overload, and the Stack control-plane response. *)

let tc name f = Alcotest.test_case name `Quick f

(* -- single-link survival across every builder ----------------------------- *)

(* Every direct-connect builder we ship is 2-edge-connected: removing any
   single cable must keep all hosts mutually reachable with finite
   distances, and [productive_hops] must never emit a dead link. *)
let builders =
  [
    ("torus 5x4", fun () -> Topology.torus [| 5; 4 |]);
    ("torus 3x3x3", fun () -> Topology.torus [| 3; 3; 3 |]);
    ("mesh 3x3", fun () -> Topology.mesh [| 3; 3 |]);
    ("mesh 4x3x2", fun () -> Topology.mesh [| 4; 3; 2 |]);
    ("fb 3", fun () -> Topology.flattened_butterfly 3);
    ("fb 4", fun () -> Topology.flattened_butterfly 4);
    ("hypercube 3", fun () -> Topology.hypercube 3);
  ]

let check_single_link_survival name build () =
  let t = build () in
  let nv = Topology.vertex_count t in
  let nh = Topology.host_count t in
  (* Undirected cables, each once. *)
  let cables = ref [] in
  for l = 0 to Topology.link_count t - 1 do
    let u = Topology.link_src t l and v = Topology.link_dst t l in
    if u < v then cables := (u, v) :: !cables
  done;
  List.iter
    (fun (u, v) ->
      Topology.fail_link t u v;
      let ctx = Printf.sprintf "%s -%d-%d" name u v in
      for w = 1 to nv - 1 do
        if not (Topology.reachable t 0 w) then
          Alcotest.failf "%s: vertex %d unreachable" ctx w
      done;
      for dst = 0 to nh - 1 do
        let d = Topology.dist_to t dst in
        for s = 0 to nh - 1 do
          if d.(s) = max_int then Alcotest.failf "%s: no path %d->%d" ctx s dst;
          if s <> dst then
            Array.iter
              (fun (_, l) ->
                if not (Topology.link_alive t l) then
                  Alcotest.failf "%s: dead productive hop %d->%d" ctx s dst)
              (Topology.productive_hops t s ~dst)
        done
      done;
      Topology.restore_link t u v)
    !cables;
  (* The overlay is clean again: distances match a fresh build. *)
  let fresh = build () in
  for dst = 0 to min 3 (nh - 1) do
    Alcotest.(check (array int))
      "restored distances" (Topology.dist_to fresh dst) (Topology.dist_to t dst)
  done

let single_link_cases =
  List.map
    (fun (name, build) ->
      tc (Printf.sprintf "single-link survival: %s" name) (check_single_link_survival name build))
    builders

(* -- packet-level recovery -------------------------------------------------- *)

let conservation r =
  let open Sim.R2c2_sim in
  Alcotest.(check int)
    "injected = delivered + dropped + blackholed" r.injected_payload
    (r.delivered_payload + r.dropped_payload + r.blackholed_payload)

let permutation_sim ?(cfg = Sim.R2c2_sim.default_config) ?(size = 200_000) () =
  let topo = Topology.torus [| 4; 4 |] in
  let cfg = { cfg with Sim.R2c2_sim.seed = 11 } in
  let t = Sim.R2c2_sim.create cfg topo in
  for i = 0 to 15 do
    ignore (Sim.R2c2_sim.start_flow t ~src:i ~dst:((i + 5) mod 16) ~size)
  done;
  t

let link_kill_zero_lost_flows () =
  let t = permutation_sim () in
  Sim.R2c2_sim.fail_link_at t ~ns:50_000 0 1;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check int) "every flow completes" 16 (Sim.Metrics.completed_count r.metrics);
  Alcotest.(check (list int)) "no flow aborted" [] r.aborted_flows;
  Alcotest.(check bool) "traffic was blackholed" true (r.blackholed_payload > 0);
  Alcotest.(check bool) "losses were retransmitted" true (r.retransmissions > 0);
  conservation r;
  (match r.failures with
  | [ fr ] ->
      Alcotest.(check string) "kind" "link" fr.kind;
      Alcotest.(check int) "failed on time" 50_000 fr.fail_ns;
      Alcotest.(check bool) "detected after the failure" true (fr.detect_ns > fr.fail_ns);
      Alcotest.(check bool) "reconverged" true (fr.reconverge_ns >= fr.detect_ns);
      Alcotest.(check bool) "within one recompute interval" true
        (fr.reconverge_ns - fr.detect_ns <= default_config.recompute_interval_ns)
  | l -> Alcotest.failf "expected one failure record, got %d" (List.length l));
  Alcotest.(check bool) "broken trees were repaired" true (r.tree_repairs > 0)

let node_kill_aborts_only_dead_endpoints () =
  let t = permutation_sim () in
  Sim.R2c2_sim.fail_node_at t ~ns:50_000 3;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  (* Flow i runs i -> (i+5) mod 16: only flow 3 (src) and 14 (dst) touch
     node 3. *)
  Alcotest.(check (list int)) "dead-endpoint flows aborted" [ 3; 14 ] r.aborted_flows;
  Alcotest.(check int) "the rest complete" 14 (Sim.Metrics.completed_count r.metrics);
  conservation r;
  (match r.failures with
  | [ fr ] ->
      Alcotest.(check string) "kind" "node" fr.kind;
      Alcotest.(check int) "two aborts charged to the event" 2 fr.aborted;
      Alcotest.(check bool) "reconverged" true (fr.reconverge_ns >= fr.detect_ns)
  | l -> Alcotest.failf "expected one failure record, got %d" (List.length l))

let failure_run_deterministic () =
  let run () =
    let t = permutation_sim () in
    Sim.R2c2_sim.fail_link_at t ~ns:50_000 0 1;
    Sim.R2c2_sim.run_engine t;
    let r = Sim.R2c2_sim.results t in
    let open Sim.R2c2_sim in
    ( Sim.Metrics.fcts_us r.metrics,
      r.drops,
      r.blackholes,
      r.retransmissions,
      List.map (fun fr -> fr.reconverge_ns) r.failures )
  in
  let fcts1, d1, b1, rtx1, rc1 = run () in
  let fcts2, d2, b2, rtx2, rc2 = run () in
  Alcotest.(check (array (float 0.0))) "same FCTs" fcts1 fcts2;
  Alcotest.(check int) "same drops" d1 d2;
  Alcotest.(check int) "same blackholes" b1 b2;
  Alcotest.(check int) "same retransmissions" rtx1 rtx2;
  Alcotest.(check (list int)) "same reconvergence" rc1 rc2

let overload_conserves_bytes () =
  (* Six senders incast 60 Gbps into a node with 40 Gbps of in-capacity
     through 4-packet queues: tail drops are certain, yet retransmission
     completes every flow and every payload byte is accounted for. *)
  let topo = Topology.torus [| 3; 3 |] in
  let cfg =
    {
      Sim.R2c2_sim.default_config with
      queue_capacity = 6_000;
      real_broadcast = false;
      seed = 5;
    }
  in
  let t = Sim.R2c2_sim.create cfg topo in
  for i = 1 to 6 do
    ignore (Sim.R2c2_sim.start_flow t ~src:i ~dst:0 ~size:60_000)
  done;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check bool) "queues overflowed" true (r.drops > 0);
  Alcotest.(check int) "every flow completes" 6 (Sim.Metrics.completed_count r.metrics);
  Alcotest.(check (list int)) "no aborts" [] r.aborted_flows;
  Alcotest.(check int) "nothing blackholed" 0 r.blackholed_payload;
  conservation r

let goodput_series_accounts_all_bytes () =
  let t = permutation_sim ~size:50_000 () in
  Sim.Metrics.set_goodput_bucket (Sim.R2c2_sim.metrics t) ~bucket_ns:10_000;
  Sim.R2c2_sim.run_engine t;
  let series = Sim.Metrics.goodput_series (Sim.R2c2_sim.metrics t) in
  let total = Array.fold_left (fun acc (_, b) -> acc + b) 0 series in
  Alcotest.(check int) "series sums to the delivered payload" (16 * 50_000) total;
  let sorted = ref true in
  for i = 1 to Array.length series - 1 do
    if fst series.(i - 1) >= fst series.(i) then sorted := false
  done;
  Alcotest.(check bool) "buckets in time order" true !sorted

(* -- Stack control-plane response ------------------------------------------- *)

let stack_notify_drops_dead_endpoints () =
  let st = R2c2.Stack.create ~seed:3 (Topology.torus [| 4; 4 |]) in
  let a = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  let b = R2c2.Stack.open_flow st ~src:1 ~dst:2 in
  let c = R2c2.Stack.open_flow st ~src:2 ~dst:9 in
  Topology.fail_node (R2c2.Stack.topology st) 2;
  let dropped = R2c2.Stack.notify_failure st in
  Alcotest.(check (list int)) "dead-endpoint flows dropped, ascending" [ b; c ] dropped;
  let survivors = List.map (fun (id, _, _, _) -> id) (R2c2.Stack.active_flows st) in
  Alcotest.(check (list int)) "survivor remains" [ a ] survivors;
  R2c2.Stack.recompute st;
  Alcotest.(check bool) "survivor reallocated" true ((R2c2.Stack.rate_gbps st a : Util.Units.gbps :> float) > 0.0)

let stack_notify_survives_link_failure () =
  let st = R2c2.Stack.create ~seed:3 (Topology.torus [| 4; 4 |]) in
  let a = R2c2.Stack.open_flow st ~src:0 ~dst:1 in
  R2c2.Stack.recompute st;
  let before = R2c2.Stack.control_bytes_sent st in
  Topology.fail_link (R2c2.Stack.topology st) 0 1;
  let dropped = R2c2.Stack.notify_failure st in
  Alcotest.(check (list int)) "nothing dropped" [] dropped;
  Alcotest.(check bool) "repair + re-announce cost control bytes" true
    (R2c2.Stack.control_bytes_sent st > before);
  R2c2.Stack.recompute st;
  Alcotest.(check bool) "flow re-pathed and reallocated" true ((R2c2.Stack.rate_gbps st a : Util.Units.gbps :> float) > 0.0)

let suites =
  [
    ("failure.topology", single_link_cases);
    ( "failure.sim",
      [
        tc "link kill loses no flow" link_kill_zero_lost_flows;
        tc "node kill aborts only dead endpoints" node_kill_aborts_only_dead_endpoints;
        tc "failure runs are deterministic" failure_run_deterministic;
        tc "overload conserves every byte" overload_conserves_bytes;
        tc "goodput series accounts all bytes" goodput_series_accounts_all_bytes;
      ] );
    ( "failure.stack",
      [
        tc "notify_failure drops dead endpoints" stack_notify_drops_dead_endpoints;
        tc "notify_failure re-paths around a dead link" stack_notify_survives_link_failure;
      ] );
  ]
