(* Tests for lib/workload: traffic patterns, flow generation, traces. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

let torus88 = lazy (Topology.torus [| 8; 8 |])

let pattern_unit_injection pattern () =
  let topo = Lazy.force torus88 in
  let flows = Workload.Pattern.flows topo pattern in
  let inject = Array.make 64 0.0 in
  List.iter
    (fun (s, d, demand) ->
      Alcotest.(check bool) "no self flow" true (s <> d);
      Alcotest.(check bool) "positive demand" true (demand > 0.0);
      inject.(s) <- inject.(s) +. demand)
    flows;
  Array.iteri
    (fun v total ->
      (* Permutation patterns may leave fixed points with zero demand. *)
      Alcotest.(check bool)
        (Printf.sprintf "node %d injects <= 1" v)
        true
        (total <= 1.0 +. 1e-9))
    inject

let uniform_covers_all_pairs () =
  let topo = Lazy.force torus88 in
  let flows = Workload.Pattern.flows topo Workload.Pattern.Uniform in
  Alcotest.(check int) "n(n-1) flows" (64 * 63) (List.length flows)

let transpose_is_involution () =
  let topo = Lazy.force torus88 in
  let flows = Workload.Pattern.flows topo Workload.Pattern.Transpose in
  List.iter
    (fun (s, d, _) ->
      Alcotest.(check bool) "transpose pairs back" true
        (List.exists (fun (s', d', _) -> s' = d && d' = s) flows))
    flows

let tornado_shift () =
  let topo = Lazy.force torus88 in
  let flows = Workload.Pattern.flows topo Workload.Pattern.Tornado in
  List.iter
    (fun (s, d, _) ->
      let cs = Topology.coords topo s and cd = Topology.coords topo d in
      Alcotest.(check int) "x shifted by 3" ((cs.(0) + 3) mod 8) cd.(0);
      Alcotest.(check int) "y unchanged" cs.(1) cd.(1))
    flows

let bit_complement_antipodal () =
  let topo = Lazy.force torus88 in
  let flows = Workload.Pattern.flows topo Workload.Pattern.Bit_complement in
  List.iter
    (fun (s, d, _) ->
      let cs = Topology.coords topo s and cd = Topology.coords topo d in
      Alcotest.(check int) "x complement" (7 - cs.(0)) cd.(0);
      Alcotest.(check int) "y complement" (7 - cs.(1)) cd.(1))
    flows

let transpose_rejects_unequal_dims () =
  Alcotest.check_raises "unequal dims"
    (Invalid_argument "Pattern.Transpose: unequal dimensions") (fun () ->
      ignore (Workload.Pattern.flows (Topology.torus [| 4; 8 |]) Workload.Pattern.Transpose))

let adversarial_no_worse_than_known () =
  let ctx = Routing.make (Lazy.force torus88) in
  let _, worst_q = Workload.Pattern.adversarial ctx Routing.Dor ~tries:10 ~seed:3 in
  let tornado =
    U.to_float
      (Congestion.Channel_load.capacity_fraction ctx Routing.Dor
         (Workload.Pattern.flows (Lazy.force torus88) Workload.Pattern.Tornado))
  in
  let worst = U.to_float worst_q in
  Alcotest.(check bool) "worst <= tornado for DOR" true (worst <= tornado +. 1e-9)

(* -- flowgen ------------------------------------------------------------- *)

let pareto_sizes_mean () =
  let rng = Util.Rng.create 3 in
  let n = 200_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total :=
      !total
      +. float_of_int
           (Workload.Flowgen.pareto_size rng ~shape:1.05 ~mean:100_000.0 ~max_size:50_000_000)
  done;
  let mean = !total /. float_of_int n in
  (* Truncation at 50 MB pulls the heavy-tailed mean well below 100 KB;
     it must sit in a plausible band. *)
  Alcotest.(check bool) (Printf.sprintf "mean band (got %.0f)" mean) true
    (mean > 20_000.0 && mean < 120_000.0)

let pareto_mostly_small () =
  (* §5.2: ~95% of flows are smaller than 100 KB. *)
  let rng = Util.Rng.create 5 in
  let n = 50_000 in
  let small = ref 0 in
  for _ = 1 to n do
    if Workload.Flowgen.pareto_size rng ~shape:1.05 ~mean:100_000.0 ~max_size:50_000_000 < 100_000
    then incr small
  done;
  let frac = float_of_int !small /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "~95%% small (got %.3f)" frac) true
    (frac > 0.90 && frac < 0.99)

let poisson_arrival_spacing () =
  let topo = Lazy.force torus88 in
  let rng = Util.Rng.create 7 in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows:20_000 ~mean_interarrival_ns:1_000.0 in
  let last = List.nth specs 19_999 in
  let span = float_of_int last.Workload.Flowgen.arrival_ns in
  Alcotest.(check bool) "mean spacing ~1us" true
    (abs_float ((span /. 20_000.0) -. 1_000.0) < 50.0);
  (* Sorted by arrival. *)
  let sorted = ref true in
  let prev = ref 0 in
  List.iter
    (fun s ->
      if s.Workload.Flowgen.arrival_ns < !prev then sorted := false;
      prev := s.Workload.Flowgen.arrival_ns)
    specs;
  Alcotest.(check bool) "sorted" true !sorted

let flows_have_valid_endpoints () =
  let topo = Lazy.force torus88 in
  let rng = Util.Rng.create 9 in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows:5000 ~mean_interarrival_ns:100.0 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "src != dst" true (s.Workload.Flowgen.src <> s.Workload.Flowgen.dst);
      Alcotest.(check bool) "in range" true
        (s.Workload.Flowgen.src >= 0 && s.Workload.Flowgen.src < 64 && s.Workload.Flowgen.dst >= 0
       && s.Workload.Flowgen.dst < 64))
    specs

let permutation_long_flows_distinct () =
  let topo = Lazy.force torus88 in
  for load10 = 1 to 10 do
    let load = float_of_int load10 /. 10.0 in
    let rng = Util.Rng.create (100 + load10) in
    let specs = Workload.Flowgen.permutation_long_flows topo rng ~load:(U.fraction load) in
    let expected = int_of_float (Float.round (load *. 64.0)) in
    Alcotest.(check int) "flow count = load * hosts" expected (List.length specs);
    let srcs = List.map (fun s -> s.Workload.Flowgen.src) specs in
    let dsts = List.map (fun s -> s.Workload.Flowgen.dst) specs in
    Alcotest.(check int) "distinct sources" expected (List.length (List.sort_uniq compare srcs));
    Alcotest.(check int) "distinct dests" expected (List.length (List.sort_uniq compare dsts));
    List.iter
      (fun s ->
        Alcotest.(check bool) "no self flow" true (s.Workload.Flowgen.src <> s.Workload.Flowgen.dst))
      specs
  done

let byte_fraction_helpers () =
  let mk size = { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 1; size; weight = 1; priority = 0 } in
  let specs = [ mk 10_000; mk 10_000; mk 80_000; mk 900_000 ] in
  Alcotest.(check (float 1e-9)) "short fraction" 0.75
    (U.to_float (Workload.Flowgen.short_fraction specs ~threshold:100_000));
  Alcotest.(check (float 1e-9)) "bytes in small" 0.1
    (U.to_float (Workload.Flowgen.bytes_in_small specs ~threshold:100_000))

(* -- trace ---------------------------------------------------------------- *)

let trace_roundtrip () =
  let topo = Lazy.force torus88 in
  let rng = Util.Rng.create 11 in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows:50 ~mean_interarrival_ns:1000.0 in
  let trace =
    Workload.Trace.events_sorted
      (Workload.Trace.of_specs specs @ [ Workload.Trace.Depart { time_ns = 99_999; flow = 3 } ])
  in
  let path = Filename.temp_file "r2c2" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace.save path trace;
      let loaded = Workload.Trace.load path in
      Alcotest.(check bool) "roundtrip" true (loaded = trace))

let trace_active_count () =
  let mk t = Workload.Trace.Arrive { Workload.Flowgen.arrival_ns = t; src = 0; dst = 1; size = 1; weight = 1; priority = 0 } in
  let trace = [ mk 10; mk 20; Workload.Trace.Depart { time_ns = 30; flow = 0 }; mk 40 ] in
  Alcotest.(check int) "at t=25" 2 (Workload.Trace.active_at trace 25);
  Alcotest.(check int) "at t=35" 1 (Workload.Trace.active_at trace 35);
  Alcotest.(check int) "at t=45" 2 (Workload.Trace.active_at trace 45)

let suites =
  [
    ( "workload.pattern",
      [
        tc "uniform injects <= 1 per node" (pattern_unit_injection Workload.Pattern.Uniform);
        tc "NN injects <= 1 per node" (pattern_unit_injection Workload.Pattern.Nearest_neighbor);
        tc "tornado injects <= 1 per node" (pattern_unit_injection Workload.Pattern.Tornado);
        tc "uniform covers all pairs" uniform_covers_all_pairs;
        tc "transpose is an involution" transpose_is_involution;
        tc "tornado shifts half-way minus one" tornado_shift;
        tc "bit complement antipodal" bit_complement_antipodal;
        tc "transpose needs equal dims" transpose_rejects_unequal_dims;
        tc "adversarial search beats known adversary" adversarial_no_worse_than_known;
      ] );
    ( "workload.flowgen",
      [
        tc "pareto mean in band" pareto_sizes_mean;
        tc "~95% of flows are small" pareto_mostly_small;
        tc "poisson spacing and ordering" poisson_arrival_spacing;
        tc "valid endpoints" flows_have_valid_endpoints;
        tc "permutation long flows distinct" permutation_long_flows_distinct;
        tc "byte-fraction helpers" byte_fraction_helpers;
      ] );
    ( "workload.trace",
      [ tc "save/load roundtrip" trace_roundtrip; tc "active flow counting" trace_active_count ] );
  ]
