(* Tests for the interprocedural effect pass (Lint_effects).

   Two layers, mirroring the pass itself:

   - the fixpoint solver is checked by a qcheck differential against a
     naive whole-program reference evaluator on generated call graphs
     (cycles, diamonds, widened nodes included): for every node, the
     worklist summary must equal the union of direct effects over the
     node's DFS-reachable set;

   - the typed-tree extraction and the E1/E2/E3 rules run on in-process
     `Typemod` fixtures (shared with the M-pass tests), driven with
     explicit roots and init spans so positives and negatives are exact. *)

module E = Lint_effects
module ISet = E.ISet

let tc name f = Alcotest.test_case name `Quick f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* -- solver differential ---------------------------------------------------- *)

let iset l = List.fold_left (fun a i -> ISet.add i a) ISet.empty l

(* Naive reference: union the direct effects over the DFS-reachable set
   of each node. O(n²) and obviously correct; the worklist must agree. *)
let reference directs calls f =
  let n = Array.length directs in
  let seen = Array.make n false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go calls.(i)
    end
  in
  go f;
  let acc = ref { E.e_reads = ISet.empty; e_writes = ISet.empty; e_widened = false } in
  Array.iteri
    (fun i (d : E.direct) ->
      if seen.(i) then
        acc :=
          {
            E.e_reads = ISet.union (!acc).E.e_reads d.d_reads;
            e_writes = ISet.union (!acc).E.e_writes d.d_writes;
            e_widened = (!acc).E.e_widened || d.d_widened;
          })
    directs;
  !acc

(* A generated graph: node count, then per node (reads, writes, widened,
   callees). Callees land in range by construction. *)
let graph_gen =
  let open QCheck.Gen in
  int_range 1 20 >>= fun n ->
  list_repeat n
    (pair
       (pair (list_size (int_bound 3) (int_bound 5)) (list_size (int_bound 3) (int_bound 5)))
       (pair
          (frequency [ (5, return false); (1, return true) ])
          (list_size (int_bound 4) (int_bound (max 0 (n - 1))))))
  >|= fun nodes -> (n, nodes)

let graph_print (n, nodes) =
  let node i (((rs, ws), (wd, cs)) : (int list * int list) * (bool * int list)) =
    Printf.sprintf "%d: r[%s] w[%s]%s -> [%s]" i
      (String.concat "," (List.map string_of_int rs))
      (String.concat "," (List.map string_of_int ws))
      (if wd then " widened" else "")
      (String.concat "," (List.map string_of_int cs))
  in
  Printf.sprintf "n=%d\n%s" n (String.concat "\n" (List.mapi node nodes))

let to_arrays (n, nodes) =
  let directs =
    Array.of_list
      (List.map
         (fun (((rs, ws), (wd, _)) : (int list * int list) * (bool * int list)) ->
           { E.d_reads = iset rs; d_writes = iset ws; d_widened = wd })
         nodes)
  in
  let calls =
    Array.of_list (List.map (fun ((_, (_, cs)) : _ * (bool * int list)) -> cs) nodes)
  in
  ignore n;
  (directs, calls)

let qcheck_solver_matches_reference =
  QCheck.Test.make ~count:500 ~name:"effect fixpoint agrees with naive reference"
    (QCheck.make ~print:graph_print graph_gen)
    (fun g ->
      let directs, calls = to_arrays g in
      let got = E.solve directs calls in
      Array.for_all
        (fun i ->
          let want = reference directs calls i in
          let s = got.(i) in
          ISet.equal s.E.e_reads want.E.e_reads
          && ISet.equal s.E.e_writes want.E.e_writes
          && s.E.e_widened = want.E.e_widened)
        (Array.init (Array.length directs) (fun i -> i)))

let solver_cycle () =
  (* 0 → 1 → 2 → 0 with one write at 2 and widening at 1: every node in
     the cycle must see both. *)
  let d w wd = { E.d_reads = ISet.empty; d_writes = iset w; d_widened = wd } in
  let directs = [| d [] false; d [] true; d [ 7 ] false |] in
  let calls = [| [ 1 ]; [ 2 ]; [ 0 ] |] in
  let s = E.solve directs calls in
  Array.iter
    (fun (x : E.summary) ->
      Alcotest.(check bool) "write visible around the cycle" true (ISet.mem 7 x.e_writes);
      Alcotest.(check bool) "widening visible around the cycle" true x.e_widened)
    s

let reachable_basic () =
  let calls = [| [ 1 ]; [ 2 ]; []; [ 4 ]; [] |] in
  let r = E.reachable calls [ 0 ] in
  Alcotest.(check (list bool))
    "0,1,2 reachable; 3,4 not"
    [ true; true; true; false; false ]
    (Array.to_list r)

(* -- typed fixtures ---------------------------------------------------------- *)

let type_unit = Test_lint_typed.type_unit
let registry src = Lint_typed.load_registry_src ~file:"ownership.sexp" src

let analyze ?roots ?(init_spans = []) ~reg ~name src =
  E.analyze ?roots ~init_spans ~registry:(registry reg) [ type_unit ~name src ]

let by_rule rule (res : E.result) =
  List.filter (fun v -> v.Lint_core.rule = rule) res.eff_violations

let check_count name n vs = Alcotest.(check int) name n (List.length vs)

let shard_reg ~key =
  String.concat "\n"
    [
      "((item Fix.shards) (class shard_owned)";
      (if key then " (key node)" else "");
      " (why \"per-node state, keyed by destination node\"))";
    ]

let e1_unkeyed_write_fires () =
  let res =
    analyze ~roots:[ "Fix." ] ~reg:(shard_reg ~key:true) ~name:"Fix"
      (String.concat "\n"
         [
           "let shards : (int, int) Hashtbl.t = Hashtbl.create 8";
           "let handle x = Hashtbl.replace shards 0 x";
         ])
  in
  let e1 = by_rule "E1" res in
  check_count "one E1" 1 e1;
  let v = List.hd e1 in
  Alcotest.(check bool) "names the region" true (contains v.message "Fix.shards");
  Alcotest.(check bool) "names the key" true (contains v.message "'node' argument");
  Alcotest.(check int) "on the write line" 2 v.line

let e1_keyed_write_is_clean () =
  let res =
    analyze ~roots:[ "Fix." ] ~reg:(shard_reg ~key:true) ~name:"Fix"
      (String.concat "\n"
         [
           "let shards : (int, int) Hashtbl.t = Hashtbl.create 8";
           "let handle ~node x = Hashtbl.replace shards node x";
         ])
  in
  check_count "keyed write passes" 0 (by_rule "E1" res)

let e1_transitive_and_unreachable () =
  (* The unkeyed write sits two calls below the root; a sibling writer
     outside the root's reach must stay silent. *)
  let res =
    analyze ~roots:[ "Fix.entry" ] ~reg:(shard_reg ~key:true) ~name:"Fix"
      (String.concat "\n"
         [
           "let shards : (int, int) Hashtbl.t = Hashtbl.create 8";
           "let helper x = Hashtbl.replace shards 1 x";
           "let middle x = helper (x + 1)";
           "let entry x = middle x";
           "let unreachable_writer x = Hashtbl.replace shards 2 x";
         ])
  in
  let e1 = by_rule "E1" res in
  check_count "only the reachable writer fires" 1 e1;
  Alcotest.(check bool)
    "attributed to helper" true
    (contains (List.hd e1).message "Fix.helper");
  (* and the cut-set witnesses the region with the concrete writer *)
  match List.find_opt (fun c -> c.E.c_item = "Fix.shards") res.cut_set with
  | Some c ->
      Alcotest.(check string) "witnessed" "witnessed" c.c_via;
      Alcotest.(check (list string)) "writer" [ "Fix.helper" ] c.c_writers
  | None -> Alcotest.fail "Fix.shards missing from the cut-set"

let e1_missing_key_is_named () =
  let res =
    analyze ~roots:[ "Fix." ] ~reg:(shard_reg ~key:false) ~name:"Fix"
      (String.concat "\n"
         [
           "let shards : (int, int) Hashtbl.t = Hashtbl.create 8";
           "let handle ~node x = Hashtbl.replace shards node x";
         ])
  in
  let e1 = by_rule "E1" res in
  check_count "no declared key still fires" 1 e1;
  Alcotest.(check bool)
    "asks for a (key …) entry" true
    (contains (List.hd e1).message "(key");
  ignore e1

let shared_fixture =
  String.concat "\n"
    [
      "module Owner = struct";
      "  let cfg : int ref = ref 0";
      "  let set x = cfg := x";
      "end";
      "module Other = struct";
      "  let clobber x = Owner.cfg := x";
      "end";
    ]

let shared_reg =
  "((item Fix.Owner.cfg) (class shared_readonly) (why \"frozen after setup\"))"

let e2_foreign_write_fires () =
  let res = analyze ~reg:shared_reg ~name:"Fix" shared_fixture in
  let e2 = by_rule "E2" res in
  check_count "only the foreign write fires" 1 e2;
  let v = List.hd e2 in
  Alcotest.(check bool) "blames the clobberer" true (contains v.message "Fix.Other.clobber");
  Alcotest.(check bool) "names the owner" true (contains v.message "Fix.Owner");
  Alcotest.(check int) "on the write line" 6 v.line

let e2_init_span_exempts () =
  let res =
    analyze ~init_spans:[ ("fix.ml", [ (5, 7) ]) ] ~reg:shared_reg ~name:"Fix"
      shared_fixture
  in
  check_count "write inside the init span passes" 0 (by_rule "E2" res)

let e2_module_init_is_foreign_too () =
  (* A toplevel `let () = …` pools into the unit's (init) pseudo-node,
     which is still outside Owner: E2 applies unless a span covers it. *)
  let src = shared_fixture ^ "\nlet () = Owner.cfg := 9" in
  let res = analyze ~reg:shared_reg ~name:"Fix" src in
  check_count "toplevel foreign init write fires" 2 (by_rule "E2" res)

let float_reg = "((item Fix.acc) (class domain_local) (why \"per-domain samples\"))"

let e3_float_fold_over_region_fires () =
  let res =
    analyze ~roots:[ "Fix." ] ~reg:float_reg ~name:"Fix"
      (String.concat "\n"
         [
           "let acc : (int, float) Hashtbl.t = Hashtbl.create 8";
           "let total () = Hashtbl.fold (fun _ v a -> v +. a) acc 0.";
         ])
  in
  let e3 = by_rule "E3" res in
  check_count "one E3" 1 e3;
  Alcotest.(check bool) "names the region" true (contains (List.hd e3).message "Fix.acc")

let e3_negatives () =
  let src =
    String.concat "\n"
      [
        "let acc : (int, float) Hashtbl.t = Hashtbl.create 8";
        "let pure xs = List.fold_left ( +. ) 0. xs";
        "let ints () = Hashtbl.fold (fun k _ a -> k + a) acc 0";
      ]
  in
  let res = analyze ~roots:[ "Fix." ] ~reg:float_reg ~name:"Fix" src in
  check_count "pure float fold and int fold over region both pass" 0 (by_rule "E3" res);
  (* the same hazard outside the dispatch reach stays silent *)
  let res =
    analyze ~roots:[ "Fix.nothing_matches" ] ~reg:float_reg ~name:"Fix"
      (String.concat "\n"
         [
           "let acc : (int, float) Hashtbl.t = Hashtbl.create 8";
           "let total () = Hashtbl.fold (fun _ v a -> v +. a) acc 0.";
         ])
  in
  check_count "unreachable float fold passes" 0 (by_rule "E3" res)

let widening_and_param_ho () =
  let res =
    analyze ~roots:[ "Fix." ] ~reg:float_reg ~name:"Fix"
      (String.concat "\n"
         [
           "let acc : (int, float) Hashtbl.t = Hashtbl.create 8";
           "type h = { mutable run : int -> unit }";
           "let call (t : h) = t.run 3";
           "let rec iter f xs = match xs with [] -> () | x :: rest -> f x; iter f rest";
         ])
  in
  let fn name = List.find_opt (fun f -> f.E.f_name = name) res.fn_effects in
  (match fn "Fix.call" with
  | Some f -> Alcotest.(check bool) "field dispatch widens" true f.f_widened
  | None -> Alcotest.fail "Fix.call missing from the effect map");
  (match fn "Fix.iter" with
  | Some f ->
      Alcotest.(check bool) "own-parameter application does not widen" false f.f_widened;
      Alcotest.(check bool) "but is recorded as param_ho" true f.f_param_ho
  | None -> Alcotest.fail "Fix.iter missing from the effect map");
  (* widening pulls the never-written region into the cut-set as such *)
  match List.find_opt (fun c -> c.E.c_item = "Fix.acc") res.cut_set with
  | Some c ->
      Alcotest.(check string) "via widened" "widened" c.c_via;
      Alcotest.(check (list string)) "the ⊤ node is the writer" [ "Fix.call" ] c.c_writers
  | None -> Alcotest.fail "widened region missing from the cut-set"

let default_roots_miss_fixture () =
  let res =
    E.analyze ~init_spans:[] ~registry:(registry float_reg)
      [
        type_unit ~name:"Fix"
          "let acc : (int, float) Hashtbl.t = Hashtbl.create 8\nlet f () = Hashtbl.clear acc";
      ]
  in
  Alcotest.(check int) "nothing reachable from the real roots" 0 res.reachable_fns;
  Alcotest.(check int) "empty cut-set" 0 (List.length res.cut_set)

(* -- registry (key …) hygiene, M1 ------------------------------------------- *)

let m1_key_on_wrong_class () =
  let reg =
    registry "((item Fix.hits) (class domain_local) (key node) (why \"counter\"))"
  in
  let r =
    Lint_typed.analyze ~registry:reg [ type_unit ~name:"Fix" "let hits : int ref = ref 0" ]
  in
  let m1_key =
    List.filter
      (fun v -> v.Lint_core.rule = "M1" && contains v.Lint_core.message "key")
      r.typed_violations
  in
  check_count "key on domain_local is M1" 1 m1_key

let m1_key_on_shard_owned_ok () =
  let reg = registry (shard_reg ~key:true) in
  let r =
    Lint_typed.analyze ~registry:reg
      [ type_unit ~name:"Fix" "let shards : (int, int) Hashtbl.t = Hashtbl.create 8" ]
  in
  check_count "key on shard_owned is clean" 0
    (List.filter
       (fun v -> v.Lint_core.rule = "M1" && contains v.Lint_core.message "key")
       r.typed_violations)

let suites =
  [
    ( "lint_effects:solver",
      [
        QCheck_alcotest.to_alcotest qcheck_solver_matches_reference;
        tc "cycle propagation" solver_cycle;
        tc "reachability" reachable_basic;
      ] );
    ( "lint_effects:rules",
      [
        tc "E1 unkeyed write fires" e1_unkeyed_write_fires;
        tc "E1 keyed write clean" e1_keyed_write_is_clean;
        tc "E1 transitive + unreachable" e1_transitive_and_unreachable;
        tc "E1 missing (key …)" e1_missing_key_is_named;
        tc "E2 foreign write fires" e2_foreign_write_fires;
        tc "E2 init span exempts" e2_init_span_exempts;
        tc "E2 module init is foreign" e2_module_init_is_foreign_too;
        tc "E3 float fold over region" e3_float_fold_over_region_fires;
        tc "E3 negatives" e3_negatives;
        tc "widening + param_ho + widened cut-set" widening_and_param_ho;
        tc "default roots miss fixtures" default_roots_miss_fixture;
        tc "M1 key on wrong class" m1_key_on_wrong_class;
        tc "M1 key on shard_owned ok" m1_key_on_shard_owned_ok;
      ] );
  ]
