(* The lossy control plane: reliable-broadcast windows (Rbcast), peer view
   replicas (View), the Stack repair machinery (digests, NACK replay,
   watchdog sync, loss-scaled headroom), and the packet-level simulation
   under chaos injection — loss, reordering and duplication of control
   packets must never leave the rack with diverged traffic-matrix views. *)

let tc name f = Alcotest.test_case name `Quick f

(* -- Reliability (data plane) dedups on sequence number -------------------- *)

(* A retransmission racing a lost ACK delivers the same packet twice; the
   receiver's per-seq record must absorb it so the delivered count equals
   the packet count exactly — never more. *)
let reliability_dedup_under_loss () =
  let cfg =
    {
      Sim.Reliability.packets = 200;
      rtx_timeout_ns = 10_000;
      max_retries = 50;
      rtx_backoff = 2.0;
      rtx_cap_ns = 200_000;
    }
  in
  let s =
    Sim.Reliability.run_over_lossy_channel ~seed:3 ~loss:(Util.Units.fraction 0.3) cfg
      ~rtt_ns:2_000
  in
  Alcotest.(check bool) "completed" true s.Sim.Reliability.completed;
  Alcotest.(check int) "each packet delivered exactly once" cfg.Sim.Reliability.packets
    s.Sim.Reliability.delivered;
  Alcotest.(check bool) "retransmissions happened" true
    (s.Sim.Reliability.transmissions > cfg.Sim.Reliability.packets)

(* -- Rbcast: sequence windows ---------------------------------------------- *)

let rbcast_window_orders_and_dedups () =
  let o = Rbcast.origin ~trees:2 () in
  let s0 = Rbcast.send o ~tree:0 "a" in
  let s1 = Rbcast.send o ~tree:0 "b" in
  let s2 = Rbcast.send o ~tree:0 "c" in
  Alcotest.(check (list int)) "per-tree seqs are dense" [ 0; 1; 2 ] [ s0; s1; s2 ];
  Alcotest.(check int) "other tree has its own space" 0 (Rbcast.send o ~tree:1 "x");
  let r = Rbcast.rx () in
  (match Rbcast.receive r ~seq:1 "b" with
  | Rbcast.Buffered -> ()
  | Rbcast.Deliver _ | Rbcast.Duplicate -> Alcotest.fail "seq 1 before 0 must buffer");
  Alcotest.(check (list (pair int int))) "gap is visible" [ (0, 0) ] (Rbcast.missing r ~upto:1);
  (match Rbcast.receive r ~seq:0 "a" with
  | Rbcast.Deliver ps -> Alcotest.(check (list string)) "in order" [ "a"; "b" ] ps
  | Rbcast.Buffered | Rbcast.Duplicate -> Alcotest.fail "seq 0 must release the window");
  (match Rbcast.receive r ~seq:0 "a" with
  | Rbcast.Duplicate -> ()
  | Rbcast.Deliver _ | Rbcast.Buffered -> Alcotest.fail "replayed seq must dedup");
  Alcotest.(check int) "duplicate counted" 1 (Rbcast.duplicates r);
  (match Rbcast.receive r ~seq:2 "c" with
  | Rbcast.Deliver ps -> Alcotest.(check (list string)) "tail" [ "c" ] ps
  | Rbcast.Buffered | Rbcast.Duplicate -> Alcotest.fail "seq 2 must deliver");
  Alcotest.(check (option string)) "origin replays" (Some "b") (Rbcast.replay o ~tree:0 ~seq:1)

(* -- View: replica repair from the sequenced stream ------------------------ *)

let mk_stack () =
  let topo = Topology.torus [| 2; 2; 2 |] in
  (R2c2.Stack.create ~seed:5 topo, topo)

let feed view bytes =
  match R2c2.View.apply view bytes with
  | R2c2.View.Malformed e -> Alcotest.fail ("view rejected stack bytes: " ^ e)
  | R2c2.View.Applied _ | R2c2.View.Duplicate | R2c2.View.Buffered -> ()

(* Drop a third of the broadcasts on the way to the replica, then let the
   digest + NACK + replay loop repair it: afterwards the replica's hash and
   flow set must equal the authority's, even when the drop hit the last
   packet of the stream (which no later packet could reveal). *)
let view_nack_repair_heals_all_loss () =
  let st, _ = mk_stack () in
  let trees = (R2c2.Stack.config st).R2c2.Stack.trees_per_source in
  let view = R2c2.View.create ~trees () in
  let n = ref 0 in
  R2c2.Stack.on_broadcast_seq st (fun b ->
      incr n;
      if !n mod 3 <> 0 then feed view b);
  let ids = ref [] in
  for i = 0 to 5 do
    ids := R2c2.Stack.open_flow st ~src:(i mod 8) ~dst:((i + 3) mod 8) :: !ids
  done;
  (match !ids with
  | last :: _ -> R2c2.Stack.close_flow st last
  | [] -> assert false);
  Alcotest.(check bool) "loss actually diverged the replica" true
    (R2c2.View.matrix_hash view <> R2c2.Stack.matrix_hash st);
  (* Anti-entropy: keep running digest rounds until the replica reports no
     gaps; every gap is NACKed back as a replay of the original bytes. *)
  let rounds = ref 0 in
  let rec heal () =
    incr rounds;
    if !rounds > 10 then Alcotest.fail "view did not heal within 10 digest rounds";
    let again = ref false in
    List.iter
      (fun d ->
        match R2c2.View.observe_digest view d with
        | R2c2.View.Gaps ranges ->
            again := true;
            List.iter
              (fun (lo, hi) ->
                for seq = lo to hi do
                  match R2c2.Stack.replay st ~tree:d.Wire.dtree ~seq with
                  | Some bytes -> feed view bytes
                  | None -> Alcotest.fail "replay log evicted too early"
                done)
              ranges
        | R2c2.View.Diverged -> Alcotest.fail "caught-up replica cannot hash differently"
        | R2c2.View.Synced -> ())
      (R2c2.Stack.emit_digests st);
    if !again then heal ()
  in
  heal ();
  Alcotest.(check bool) "hashes agree after repair" true
    (R2c2.View.matrix_hash view = R2c2.Stack.matrix_hash st);
  Alcotest.(check (list int)) "flow sets agree"
    (List.map (fun (id, _) -> id) (R2c2.Stack.allocations st))
    (R2c2.View.flow_ids view);
  Alcotest.(check bool) "repairs were charged" true (R2c2.Stack.reliability_bytes_sent st > 0);
  Alcotest.(check bool) "replays counted" true (R2c2.Stack.event_retransmits st > 0)

(* Same healing loop as above, but every NACKed gap is answered with one
   replay_range batch instead of per-sequence replays: the batched path
   must repair the replica identically and charge the same per-event
   accounting as single replays would. *)
let view_batched_repair_heals_all_loss () =
  let st, _ = mk_stack () in
  let trees = (R2c2.Stack.config st).R2c2.Stack.trees_per_source in
  let view = R2c2.View.create ~trees () in
  let n = ref 0 in
  R2c2.Stack.on_broadcast_seq st (fun b ->
      incr n;
      if !n mod 3 <> 0 then feed view b);
  let ids = ref [] in
  for i = 0 to 5 do
    ids := R2c2.Stack.open_flow st ~src:(i mod 8) ~dst:((i + 3) mod 8) :: !ids
  done;
  (match !ids with
  | last :: _ -> R2c2.Stack.close_flow st last
  | [] -> assert false);
  Alcotest.(check bool) "loss actually diverged the replica" true
    (R2c2.View.matrix_hash view <> R2c2.Stack.matrix_hash st);
  let rounds = ref 0 in
  let rec heal () =
    incr rounds;
    if !rounds > 10 then Alcotest.fail "view did not heal within 10 digest rounds";
    let again = ref false in
    List.iter
      (fun d ->
        match R2c2.View.observe_digest view d with
        | R2c2.View.Gaps ranges ->
            again := true;
            List.iter
              (fun (lo, hi) ->
                let before = R2c2.Stack.event_retransmits st in
                match
                  R2c2.Stack.replay_range st ~tree:d.Wire.dtree ~from_seq:lo ~to_seq:hi
                with
                | None -> Alcotest.fail "replay log evicted too early"
                | Some batch -> (
                    Alcotest.(check int) "one retransmit per ranged event"
                      (hi - lo + 1)
                      (R2c2.Stack.event_retransmits st - before);
                    match R2c2.View.apply_batch view batch with
                    | Error e -> Alcotest.fail ("repair batch rejected: " ^ e)
                    | Ok verdicts ->
                        Alcotest.(check int) "one verdict per ranged event"
                          (hi - lo + 1) (List.length verdicts);
                        List.iter
                          (function
                            | R2c2.View.Malformed e ->
                                Alcotest.fail ("malformed repair item: " ^ e)
                            | R2c2.View.Applied _ | R2c2.View.Duplicate
                            | R2c2.View.Buffered ->
                                ())
                          verdicts))
              ranges
        | R2c2.View.Diverged -> Alcotest.fail "caught-up replica cannot hash differently"
        | R2c2.View.Synced -> ())
      (R2c2.Stack.emit_digests st);
    if !again then heal ()
  in
  heal ();
  Alcotest.(check bool) "hashes agree after batched repair" true
    (R2c2.View.matrix_hash view = R2c2.Stack.matrix_hash st);
  Alcotest.(check (list int)) "flow sets agree"
    (List.map (fun (id, _) -> id) (R2c2.Stack.allocations st))
    (R2c2.View.flow_ids view);
  Alcotest.check_raises "empty range raises"
    (Invalid_argument "Stack.replay_range: empty range") (fun () ->
      ignore (R2c2.Stack.replay_range st ~tree:0 ~from_seq:5 ~to_seq:4))

let view_dedups_duplicates () =
  let st, _ = mk_stack () in
  let trees = (R2c2.Stack.config st).R2c2.Stack.trees_per_source in
  let view = R2c2.View.create ~trees () in
  (* Deliver everything twice: the replica must apply each event once. *)
  R2c2.Stack.on_broadcast_seq st (fun b ->
      feed view b;
      match R2c2.View.apply view b with
      | R2c2.View.Duplicate -> ()
      | R2c2.View.Applied _ | R2c2.View.Buffered | R2c2.View.Malformed _ ->
          Alcotest.fail "second copy must be absorbed as a duplicate");
  let a = R2c2.Stack.open_flow st ~src:0 ~dst:1 in
  let _b = R2c2.Stack.open_flow st ~src:2 ~dst:3 in
  R2c2.Stack.close_flow st a;
  Alcotest.(check int) "three events applied once each" 3 (R2c2.View.applied view);
  Alcotest.(check int) "three duplicates absorbed" 3 (R2c2.View.duplicates view);
  Alcotest.(check bool) "views agree" true
    (R2c2.View.matrix_hash view = R2c2.Stack.matrix_hash st)

(* -- Stack: watchdog full-state sync and loss-scaled headroom -------------- *)

let watchdog_repairs_diverged_view () =
  let st, _ = mk_stack () in
  let trees = (R2c2.Stack.config st).R2c2.Stack.trees_per_source in
  let connected = R2c2.View.create ~trees () in
  let deaf = R2c2.View.create ~trees () in
  R2c2.Stack.on_broadcast_seq st (fun b -> feed connected b);
  for i = 0 to 3 do
    ignore (R2c2.Stack.open_flow st ~src:i ~dst:(i + 4))
  done;
  Alcotest.(check int) "one replica needs repair" 1
    (R2c2.Stack.watchdog st [ connected; deaf ]);
  Alcotest.(check bool) "deaf replica synced" true
    (R2c2.View.matrix_hash deaf = R2c2.Stack.matrix_hash st);
  Alcotest.(check (list int)) "full flow set transferred"
    (R2c2.View.flow_ids connected) (R2c2.View.flow_ids deaf);
  Alcotest.(check int) "sync counted" 1 (R2c2.Stack.syncs_sent st);
  Alcotest.(check int) "clean watchdog round" 0 (R2c2.Stack.watchdog st [ connected; deaf ]);
  (* Events after the sync flow through the fast-forwarded windows. *)
  R2c2.Stack.on_broadcast_seq st (fun b -> feed deaf b);
  let f = R2c2.Stack.open_flow st ~src:0 ~dst:5 in
  R2c2.Stack.close_flow st f;
  ignore (R2c2.Stack.open_flow st ~src:1 ~dst:6);
  Alcotest.(check bool) "post-sync stream applies" true
    (R2c2.View.matrix_hash deaf = R2c2.Stack.matrix_hash st)

let loss_ewma_scales_headroom () =
  let st, _ = mk_stack () in
  let base = Util.Units.to_float (R2c2.Stack.config st).R2c2.Stack.headroom in
  Alcotest.(check (float 1e-9)) "starts at configured headroom" base
    (Util.Units.to_float (R2c2.Stack.effective_headroom st));
  R2c2.Stack.note_control_loss st ~sent:100 ~lost:10;
  Alcotest.(check (float 1e-9)) "EWMA weights the sample by 0.2" 0.02
    (Util.Units.to_float (R2c2.Stack.loss_ewma st));
  Alcotest.(check (float 1e-9)) "headroom grows with observed loss" (base +. (2.0 *. 0.02))
    (Util.Units.to_float (R2c2.Stack.effective_headroom st));
  (* Persistent heavy loss saturates at the cap, never at an allocator-
     breaking value. *)
  for _ = 1 to 50 do
    R2c2.Stack.note_control_loss st ~sent:10 ~lost:9
  done;
  Alcotest.(check (float 1e-9)) "capped at max_headroom"
    (Util.Units.to_float (R2c2.Stack.config st).R2c2.Stack.max_headroom)
    (Util.Units.to_float (R2c2.Stack.effective_headroom st));
  (* A clean interval decays the estimate and the reserve follows. *)
  for _ = 1 to 50 do
    R2c2.Stack.note_control_loss st ~sent:100 ~lost:0
  done;
  Alcotest.(check bool) "recovers toward the base" true
    (Util.Units.to_float (R2c2.Stack.effective_headroom st) < base +. 0.01);
  Alcotest.check_raises "lost > sent rejected"
    (Invalid_argument "Stack.note_control_loss") (fun () ->
      R2c2.Stack.note_control_loss st ~sent:1 ~lost:2)

(* -- packet-level simulation under chaos ----------------------------------- *)

let interval = 100_000

let sim_cfg ?(loss = 0.0) ?(reorder = 0.0) ?(dup = 0.0) ?(seed = 7) () =
  {
    Sim.R2c2_sim.default_config with
    control = Sim.R2c2_sim.Per_node;
    reliable_bcast = true;
    recompute_interval_ns = interval;
    digest_interval_ns = 50_000;
    control_loss = Util.Units.fraction loss;
    control_reorder = Util.Units.fraction reorder;
    control_dup = Util.Units.fraction dup;
    seed;
  }

let permutation t topo ~size =
  let h = Topology.host_count topo in
  for i = 0 to h - 1 do
    ignore (Sim.R2c2_sim.start_flow t ~src:i ~dst:((i + (h / 2) + 1) mod h) ~size)
  done

let run_chaos ~loss () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ~loss ()) topo in
  permutation t topo ~size:120_000;
  Sim.R2c2_sim.run_engine t;
  (t, Sim.R2c2_sim.results t, Topology.host_count topo)

(* Same seed, same chaos rates: every counter of the run is reproducible. *)
let chaos_is_deterministic () =
  let _, a, _ = run_chaos ~loss:0.03 () in
  let _, b, _ = run_chaos ~loss:0.03 () in
  let open Sim.R2c2_sim in
  let sig_of r =
    ( r.ctrl_lost,
      r.nacks_sent,
      r.event_retransmits,
      r.divergence_epochs,
      r.reconverge_samples,
      Sim.Metrics.completed_count r.metrics )
  in
  Alcotest.(check bool) "identical signatures" true (sig_of a = sig_of b);
  Alcotest.(check bool) "chaos actually fired" true (a.ctrl_lost > 0)

(* Loss at 5%: every flow still completes, the control plane reconverges,
   and every divergence window closes within a bounded number of epochs. *)
let reconverges_under_5pct_loss () =
  let t, r, h = run_chaos ~loss:0.05 () in
  let open Sim.R2c2_sim in
  Alcotest.(check int) "all flows complete" h (Sim.Metrics.completed_count r.metrics);
  Alcotest.(check (list int)) "no aborts" [] r.aborted_flows;
  Alcotest.(check int) "zero terminal divergence" 0 r.terminal_diverged;
  Alcotest.(check bool) "control plane converged" true (Sim.R2c2_sim.control_converged t);
  List.iter
    (fun s ->
      if s > 20 * interval then
        Alcotest.failf "reconvergence took %d ns > %d ns" s (20 * interval))
    r.reconverge_samples;
  Alcotest.(check bool) "repair machinery engaged" true (r.nacks_sent > 0)

(* Duplication without loss: windows absorb every duplicate and the run is
   indistinguishable from a clean one in its outcome. *)
let duplicates_are_absorbed () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ~dup:0.2 ()) topo in
  permutation t topo ~size:120_000;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check int) "all flows complete" (Topology.host_count topo)
    (Sim.Metrics.completed_count r.metrics);
  Alcotest.(check bool) "duplicates injected" true (r.ctrl_dupped > 0);
  Alcotest.(check bool) "duplicates absorbed" true (r.dup_events_absorbed > 0);
  Alcotest.(check int) "zero terminal divergence" 0 r.terminal_diverged;
  Alcotest.(check bool) "converged" true (Sim.R2c2_sim.control_converged t)

(* The acceptance property: after a lossy period ends (rates flipped
   mid-run through the engine), every alive node's view reconverges to a
   byte-identical allocation vector. *)
let identical_allocations_after_2pct_loss () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ~loss:0.02 ()) topo in
  (* Lossy for the first 600 us, clean afterwards. *)
  Sim.R2c2_sim.set_control_chaos_at t ~ns:600_000 ~loss:(Util.Units.fraction 0.0) ~reorder:(Util.Units.fraction 0.0)
    ~dup:(Util.Units.fraction 0.0);
  permutation t topo ~size:3_000_000;
  Sim.R2c2_sim.run_engine ~until_ns:1_500_000 t;
  let h = Topology.host_count topo in
  Alcotest.(check bool) "flows still active mid-run" true
    (Sim.Metrics.completed_count (Sim.R2c2_sim.metrics t) < h);
  Alcotest.(check int) "no diverged nodes" 0 (Sim.R2c2_sim.diverged_nodes t);
  Alcotest.(check bool) "control plane converged" true (Sim.R2c2_sim.control_converged t);
  let reference = Sim.R2c2_sim.node_allocations t ~node:0 in
  Alcotest.(check bool) "views are non-trivial" true (Array.length reference > 0);
  for node = 1 to h - 1 do
    if Sim.R2c2_sim.node_allocations t ~node <> reference then
      Alcotest.failf "node %d computes a different allocation vector" node
  done;
  (* The observed-loss EWMA reacted while packets were being dropped. *)
  let r = Sim.R2c2_sim.results t in
  Alcotest.(check bool) "chaos fired" true (r.Sim.R2c2_sim.ctrl_lost > 0);
  Alcotest.(check bool) "headroom scaled up" true
    (r.Sim.R2c2_sim.effective_headroom > Sim.R2c2_sim.default_config.Sim.R2c2_sim.headroom);
  (* And the run still finishes cleanly. *)
  Sim.R2c2_sim.run_engine t;
  Alcotest.(check int) "all flows complete" h
    (Sim.Metrics.completed_count (Sim.R2c2_sim.metrics t))

(* With a replay log too small to answer NACKs, the origin must fall back
   to full-state sync — and the rack still reconverges. *)
let evicted_replay_falls_back_to_sync () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let cfg = { (sim_cfg ~loss:0.05 ()) with Sim.R2c2_sim.bcast_log_cap = 1 } in
  let t = Sim.R2c2_sim.create cfg topo in
  permutation t topo ~size:120_000;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check bool) "full-state syncs happened" true (r.syncs_sent > 0);
  Alcotest.(check bool) "sync traffic accounted" true (r.sync_bytes > 0);
  Alcotest.(check int) "zero terminal divergence" 0 r.terminal_diverged;
  Alcotest.(check bool) "converged" true (Sim.R2c2_sim.control_converged t);
  Alcotest.(check int) "all flows complete" (Topology.host_count topo)
    (Sim.Metrics.completed_count r.metrics)

(* A dead node blackholes broadcast copies and digests; the counters must
   split the loss by plane and sum back to the total. *)
let blackhole_splits_control_and_data () =
  let topo = Topology.torus [| 3; 3; 3 |] in
  let t = Sim.R2c2_sim.create (sim_cfg ()) topo in
  permutation t topo ~size:200_000;
  Sim.R2c2_sim.fail_node_at t ~ns:100_000 13;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Alcotest.(check int) "split sums to total" r.blackholed_bytes
    (r.blackholed_data_bytes + r.blackholed_ctrl_bytes);
  Alcotest.(check bool) "control bytes were blackholed" true (r.blackholed_ctrl_bytes > 0);
  Alcotest.(check int) "zero terminal divergence" 0 r.terminal_diverged

let suites =
  [
    ( "control-loss",
      [
        tc "reliability dedups on seq under loss" reliability_dedup_under_loss;
        tc "rbcast window orders and dedups" rbcast_window_orders_and_dedups;
        tc "view NACK repair heals all loss" view_nack_repair_heals_all_loss;
        tc "view batched repair heals all loss" view_batched_repair_heals_all_loss;
        tc "view dedups duplicates" view_dedups_duplicates;
        tc "watchdog repairs diverged view" watchdog_repairs_diverged_view;
        tc "loss EWMA scales headroom" loss_ewma_scales_headroom;
        tc "chaos is seed-deterministic" chaos_is_deterministic;
        tc "reconverges under 5% loss" reconverges_under_5pct_loss;
        tc "duplicates are absorbed" duplicates_are_absorbed;
        tc "identical allocations after 2% loss" identical_allocations_after_2pct_loss;
        tc "evicted replay falls back to sync" evicted_replay_falls_back_to_sync;
        tc "blackhole splits control and data" blackhole_splits_control_and_data;
      ] );
  ]
