(* Tests for the incremental allocator (Waterfill.Inc): differential
   property tests against the reference progressive-filling oracle on
   randomized churn sequences, clean-epoch O(1) behaviour via the debug
   counters, and the per-call counter-reset contract. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

(* Wrap/unwrap shims so the scenarios below stay in raw numbers. *)
let lk = U.pairs_of_floats
let caps = U.of_floats
let inc_rate inc ~id = U.to_float (Congestion.Waterfill.Inc.rate inc ~id)

(* Mirror of the incremental state kept as plain lists, re-allocated from
   scratch for the oracle on every epoch. *)
type mirror = {
  mutable next_id : int;
  mutable live :
    (int * float * int * U.byte_rate option * (int * U.fraction) array) list;
      (* id, weight, priority, demand, links *)
}

let protocols = [| Routing.Rps; Routing.Dor; Routing.Vlb; Routing.Wlb |]

let random_links ctx rng =
  let h = Topology.host_count (Routing.topo ctx) in
  let src = Util.Rng.int rng h in
  let dst = (src + 1 + Util.Rng.int rng (h - 1)) mod h in
  Routing.fractions ctx (Util.Rng.pick rng protocols) ~src ~dst

let random_demand rng =
  if Util.Rng.bool rng then Some (U.byte_rate (Util.Rng.float rng 2.0)) else None

let apply_random_op ctx rng inc m =
  let n = List.length m.live in
  match Util.Rng.int rng (if n = 0 then 1 else 4) with
  | 0 ->
      (* open *)
      let id = m.next_id in
      m.next_id <- id + 1;
      let weight = 0.5 +. Util.Rng.float rng 2.5 in
      let priority = Util.Rng.int rng 3 in
      let demand = random_demand rng in
      let links = random_links ctx rng in
      Congestion.Waterfill.Inc.add_flow ~weight ~priority ?demand inc ~id links;
      m.live <- (id, weight, priority, demand, links) :: m.live
  | 1 ->
      (* close *)
      let id, _, _, _, _ = List.nth m.live (Util.Rng.int rng n) in
      Congestion.Waterfill.Inc.remove_flow inc ~id;
      m.live <- List.filter (fun (i, _, _, _, _) -> i <> id) m.live
  | 2 ->
      (* demand update *)
      let id, w, p, _, links = List.nth m.live (Util.Rng.int rng n) in
      let demand = random_demand rng in
      Congestion.Waterfill.Inc.set_demand inc ~id demand;
      m.live <-
        List.map (fun ((i, _, _, _, _) as f) -> if i = id then (id, w, p, demand, links) else f) m.live
  | _ ->
      (* reroute *)
      let id, w, p, d, _ = List.nth m.live (Util.Rng.int rng n) in
      let links = random_links ctx rng in
      Congestion.Waterfill.Inc.set_links inc ~id links;
      m.live <-
        List.map (fun ((i, _, _, _, _) as f) -> if i = id then (id, w, p, d, links) else f) m.live

let check_against_reference ~headroom ~capacities inc m =
  Congestion.Waterfill.Inc.allocate inc;
  let flows =
    Array.of_list
      (List.map
         (fun (id, weight, priority, demand, links) ->
           Congestion.Waterfill.flow ~weight ~priority ?demand ~id links)
         m.live)
  in
  let expected =
    U.floats_of (Congestion.Waterfill.allocate_reference ~headroom ~capacities flows)
  in
  Array.iteri
    (fun i f ->
      let got = inc_rate inc ~id:f.Congestion.Waterfill.id in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "flow %d" f.Congestion.Waterfill.id)
        expected.(i) got)
    flows

(* >= 200 random churn sequences on a 4x4 torus: after every burst of churn
   the incremental rates must equal the reference oracle's. *)
let inc_matches_reference_on_churn () =
  let topo = Topology.torus [| 4; 4 |] in
  let ctx = Routing.make topo in
  let capacities = Array.make (Topology.link_count topo) (U.byte_rate 1.25) in
  let headroom = U.fraction 0.05 in
  let rng = Util.Rng.create 42 in
  for _seq = 1 to 200 do
    let inc = Congestion.Waterfill.Inc.create ~headroom ~capacities () in
    let m = { next_id = 0; live = [] } in
    let epochs = 2 + Util.Rng.int rng 4 in
    for _epoch = 1 to epochs do
      let ops = 1 + Util.Rng.int rng 8 in
      for _op = 1 to ops do
        apply_random_op ctx rng inc m
      done;
      check_against_reference ~headroom ~capacities inc m
    done
  done

(* A clean epoch must not touch the heap at all — the O(1) cached path. *)
let clean_epoch_zero_heap_ops () =
  let topo = Topology.torus [| 4; 4 |] in
  let ctx = Routing.make topo in
  let capacities = Array.make (Topology.link_count topo) (U.byte_rate 1.25) in
  let inc = Congestion.Waterfill.Inc.create ~headroom:(U.fraction 0.05) ~capacities () in
  let rng = Util.Rng.create 7 in
  for id = 0 to 49 do
    Congestion.Waterfill.Inc.add_flow inc ~id (random_links ctx rng)
  done;
  Congestion.Waterfill.Inc.allocate inc;
  Alcotest.(check bool) "dirty epoch pushed events" true (Congestion.Waterfill.dbg.push > 0);
  let before = Array.init 50 (fun id -> inc_rate inc ~id) in
  (* Re-announcing the demand a flow already has keeps the epoch clean. *)
  Congestion.Waterfill.Inc.set_demand inc ~id:3 None;
  Alcotest.(check bool) "still clean" false (Congestion.Waterfill.Inc.is_dirty inc);
  Congestion.Waterfill.reset_debug_counters ();
  Congestion.Waterfill.Inc.allocate inc;
  Alcotest.(check int) "zero heap pushes" 0 Congestion.Waterfill.dbg.push;
  Alcotest.(check int) "zero heap pops" 0 Congestion.Waterfill.dbg.pops;
  Array.iteri
    (fun id r ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "rate %d unchanged" id) r (inc_rate inc ~id))
    before

(* The ablation counters must report one computation per call, not a
   running total across calls. *)
let counters_reset_per_allocate () =
  let capacities = caps [| 10.0; 4.0 |] in
  let flows =
    [|
      Congestion.Waterfill.flow ~id:0 (lk [| (0, 1.0); (1, 1.0) |]);
      Congestion.Waterfill.flow ~id:1 (lk [| (1, 1.0) |]);
      Congestion.Waterfill.flow ~id:2 (lk [| (0, 1.0) |]);
    |]
  in
  ignore (Congestion.Waterfill.allocate ~capacities flows);
  let first = Congestion.Waterfill.dbg.push in
  Alcotest.(check bool) "pushes counted" true (first > 0);
  ignore (Congestion.Waterfill.allocate ~capacities flows);
  Alcotest.(check int) "identical second measurement" first Congestion.Waterfill.dbg.push

let dirty_tracking_lifecycle () =
  let capacities = caps [| 1.0 |] in
  let inc = Congestion.Waterfill.Inc.create ~capacities () in
  Alcotest.(check bool) "dirty before first allocate" true
    (Congestion.Waterfill.Inc.is_dirty inc);
  Congestion.Waterfill.Inc.allocate inc;
  Alcotest.(check bool) "clean after allocate" false (Congestion.Waterfill.Inc.is_dirty inc);
  Congestion.Waterfill.Inc.add_flow inc ~id:5 (lk [| (0, 1.0) |]);
  Alcotest.(check bool) "open marks dirty" true (Congestion.Waterfill.Inc.is_dirty inc);
  Alcotest.(check (float 0.0)) "zero before allocate" 0.0 (inc_rate inc ~id:5);
  Congestion.Waterfill.Inc.allocate inc;
  Alcotest.(check (float 1e-9)) "full link" 1.0 (inc_rate inc ~id:5);
  Congestion.Waterfill.Inc.add_flow inc ~id:9 (lk [| (0, 1.0) |]);
  Congestion.Waterfill.Inc.allocate inc;
  Alcotest.(check (float 1e-9)) "half" 0.5 (inc_rate inc ~id:9);
  Congestion.Waterfill.Inc.remove_flow inc ~id:5;
  Alcotest.(check bool) "close marks dirty" true (Congestion.Waterfill.Inc.is_dirty inc);
  (* Swap-removal must keep the surviving flow's cached rate addressable. *)
  Alcotest.(check (float 1e-9)) "survivor rate intact" 0.5 (inc_rate inc ~id:9);
  Congestion.Waterfill.Inc.allocate inc;
  Alcotest.(check (float 1e-9)) "survivor takes the link" 1.0 (inc_rate inc ~id:9);
  Alcotest.(check int) "one live flow" 1 (Congestion.Waterfill.Inc.live_flows inc);
  Alcotest.check_raises "unknown id" (Invalid_argument "Waterfill.Inc: unknown flow id")
    (fun () -> ignore (Congestion.Waterfill.Inc.rate inc ~id:5));
  Alcotest.check_raises "duplicate id" (Invalid_argument "Waterfill.Inc: duplicate flow id")
    (fun () -> Congestion.Waterfill.Inc.add_flow inc ~id:9 (lk [| (0, 1.0) |]))

let inc_input_validation () =
  let inc = Congestion.Waterfill.Inc.create ~capacities:(caps [| 1.0 |]) () in
  Alcotest.check_raises "bad weight" (Invalid_argument "Waterfill: non-positive weight")
    (fun () -> Congestion.Waterfill.Inc.add_flow ~weight:0.0 inc ~id:0 (lk [| (0, 1.0) |]));
  Alcotest.check_raises "bad link" (Invalid_argument "Waterfill: link id out of range")
    (fun () -> Congestion.Waterfill.Inc.add_flow inc ~id:0 (lk [| (3, 1.0) |]));
  Alcotest.check_raises "bad fraction" (Invalid_argument "Waterfill: non-positive fraction")
    (fun () -> Congestion.Waterfill.Inc.add_flow inc ~id:0 (lk [| (0, 0.0) |]));
  Alcotest.check_raises "bad headroom" (Invalid_argument "Waterfill: headroom out of range")
    (fun () ->
      ignore
        (Congestion.Waterfill.Inc.create ~headroom:(U.fraction 1.0)
           ~capacities:(caps [| 1.0 |]) ()))

let suites =
  [
    ( "incremental",
      [
        tc "matches reference across 200 churn sequences" inc_matches_reference_on_churn;
        tc "clean epoch performs zero heap operations" clean_epoch_zero_heap_ops;
        tc "debug counters reset per allocate call" counters_reset_per_allocate;
        tc "dirty tracking across open/close" dirty_tracking_lifecycle;
        tc "input validation" inc_input_validation;
      ] );
  ]
