(* Tests for lib/sim: event engine, packet fabric, the three transports,
   metrics, and the reliability extension. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

(* Unwrap a flow's throughput for the raw-number checks below. *)
let tput f = U.to_float (Sim.Metrics.throughput_gbps f)

(* -- engine --------------------------------------------------------------- *)

let engine_time_order () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.at eng 30 (fun () -> log := 30 :: !log);
  Sim.Engine.at eng 10 (fun () -> log := 10 :: !log);
  Sim.Engine.at eng 20 (fun () -> log := 20 :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "fires in time order" [ 10; 20; 30 ] (List.rev !log)

let engine_same_time_fifo () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.at eng 5 (fun () -> log := "a" :: !log);
  Sim.Engine.at eng 5 (fun () -> log := "b" :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "fifo on ties" [ "a"; "b" ] (List.rev !log)

let engine_until () =
  let eng = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.at eng 10 (fun () -> incr fired);
  Sim.Engine.at eng 100 (fun () -> incr fired);
  Sim.Engine.run ~until:50 eng;
  Alcotest.(check int) "only first event" 1 !fired;
  Alcotest.(check int) "clock at until" 50 (Sim.Engine.now eng)

let engine_nested_scheduling () =
  let eng = Sim.Engine.create () in
  let finish = ref 0 in
  Sim.Engine.at eng 10 (fun () -> Sim.Engine.after eng 5 (fun () -> finish := Sim.Engine.now eng));
  Sim.Engine.run eng;
  Alcotest.(check int) "nested after" 15 !finish

let engine_rejects_past () =
  let eng = Sim.Engine.create () in
  Sim.Engine.at eng 10 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.at: time in the past") (fun () ->
          Sim.Engine.at eng 5 ignore));
  Sim.Engine.run eng

(* -- net ------------------------------------------------------------------ *)

let mk_net ?queue_capacity () =
  let eng = Sim.Engine.create () in
  let topo = Topology.torus [| 4; 4 |] in
  let net = Sim.Net.create eng topo ?queue_capacity ~link_gbps:(U.gbps 10.0) ~hop_latency_ns:100 () in
  (eng, topo, net)

(* One-shot send through the handle API: intern the route, send, drop the
   caller's reference (the packet keeps its own). *)
let send_data net ~flow ~bytes verts =
  let r = Sim.Net.intern_route net verts in
  Sim.Net.send_data net ~flow ~seq:0 ~last:true ~bytes ~route:r;
  Sim.Net.release_route net r

let net_delivers_along_route () =
  let eng, _, net = mk_net () in
  let delivered = ref false in
  (* Packets are freed after the callback returns, so inspect in place. *)
  Sim.Net.on_deliver net (fun pkt ->
      delivered := true;
      Alcotest.(check int) "arrived at final hop" 2
        (Sim.Net.route_at net pkt (Sim.Net.hop net pkt)));
  (* route 0 -> 1 -> 2 on the first row of the 4x4 torus *)
  send_data net ~flow:1 ~bytes:1500 [| 0; 1; 2 |];
  Sim.Engine.run eng;
  Alcotest.(check bool) "delivered" true !delivered;
  (* 2 hops x (serialization 1200ns + latency 100ns) *)
  Alcotest.(check int) "latency model" 2600 (Sim.Engine.now eng)

let net_serialization_queuing () =
  let eng, _, net = mk_net () in
  let times = ref [] in
  Sim.Net.on_deliver net (fun _ -> times := Sim.Engine.now eng :: !times);
  for i = 0 to 2 do
    send_data net ~flow:i ~bytes:1500 [| 0; 1 |]
  done;
  Sim.Engine.run eng;
  (* Back-to-back packets serialize at 1200ns each; propagation overlaps. *)
  Alcotest.(check (list int)) "pipelined deliveries" [ 1300; 2500; 3700 ] (List.rev !times)

let net_tail_drop () =
  let eng, _, net = mk_net ~queue_capacity:3000 () in
  let drops = ref 0 in
  Sim.Net.on_drop net (fun _ -> incr drops);
  for i = 0 to 4 do
    send_data net ~flow:i ~bytes:1500 [| 0; 1 |]
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "drops counted" !drops (Sim.Net.drops net);
  Alcotest.(check bool) "some dropped" true (!drops >= 2)

let net_max_queue_tracked () =
  let eng, _, net = mk_net () in
  for i = 0 to 3 do
    send_data net ~flow:i ~bytes:1500 [| 0; 1 |]
  done;
  Sim.Engine.run eng;
  let q = Sim.Net.max_queue_bytes net in
  Alcotest.(check int) "peak queue = 4 packets" 6000 (Array.fold_left max 0 q)

let net_broadcast_reaches_all () =
  let eng, topo, net = mk_net () in
  let b = Broadcast.make topo in
  Sim.Net.set_broadcast net b;
  let received = Array.make 16 false in
  Sim.Net.on_bcast_deliver net (fun _ ~node -> received.(node) <- true);
  Sim.Net.send_bcast net ~root:0 ~tree:0 ~bcast_id:1 ~bytes:16 ();
  Sim.Engine.run eng;
  received.(0) <- true;
  Alcotest.(check bool) "every node got a copy" true (Array.for_all Fun.id received);
  let ctrl = U.to_float (Sim.Net.control_bytes_on_wire net) in
  Alcotest.(check bool) "control bytes counted" true (ctrl >= 16.0 *. 15.0)

let net_wire_counters () =
  let eng, _, net = mk_net () in
  send_data net ~flow:0 ~bytes:1000 [| 0; 1; 2 |];
  Sim.Engine.run eng;
  Alcotest.(check (float 1e-9)) "bytes x hops" 2000.0 (U.to_float (Sim.Net.data_bytes_on_wire net));
  Sim.Net.reset_wire_counters net;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (U.to_float (Sim.Net.data_bytes_on_wire net))

let net_requires_fib_for_broadcast () =
  let _, _, net = mk_net () in
  Alcotest.check_raises "no FIB" (Invalid_argument "Net: broadcast FIB not configured")
    (fun () -> Sim.Net.send_bcast net ~root:0 ~tree:0 ~bcast_id:1 ~bytes:16 ())

let net_rejects_bad_route () =
  let _, _, net = mk_net () in
  Alcotest.check_raises "non-adjacent"
    (Invalid_argument "Net.send: route crosses non-adjacent vertices") (fun () ->
      send_data net ~flow:0 ~bytes:100 [| 0; 10 |]);
  Alcotest.check_raises "too short" (Invalid_argument "Net.send: route needs at least two vertices")
    (fun () -> send_data net ~flow:0 ~bytes:100 [| 0 |])

let net_steady_state_zero_alloc () =
  (* The zero-allocation contract, asserted rather than merely benchmarked:
     a steady-state send/ack loop — data 0->1, ack 1->0, next data on each
     ack — must not allocate minor words per packet once pools, queues and
     the serialization memo have warmed up. A regression to per-packet
     records or options shows up as tens of words per packet here. *)
  let eng, _, net = mk_net () in
  let fwd = Sim.Net.intern_route net [| 0; 1 |] in
  let rev = Sim.Net.intern_route net [| 1; 0 |] in
  let remaining = ref 0 in
  Sim.Net.on_deliver net (fun pkt ->
      if Sim.Net.kind net pkt = Sim.Net.code_data then
        Sim.Net.send_ack net ~flow:0 ~ackno:(Sim.Net.data_seq net pkt) ~bytes:64
          ~route:rev
      else if !remaining > 0 then begin
        decr remaining;
        Sim.Net.send_data net ~flow:0 ~seq:!remaining ~last:false ~bytes:1500
          ~route:fwd
      end);
  let run n =
    remaining := n;
    Sim.Net.send_data net ~flow:0 ~seq:0 ~last:false ~bytes:1500 ~route:fwd;
    Sim.Engine.run eng
  in
  run 200;
  let before = Gc.minor_words () in
  run 2000;
  let per_pkt = (Gc.minor_words () -. before) /. 4000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "minor words per packet ~ 0 (got %.3f)" per_pkt)
    true (per_pkt < 0.05);
  Sim.Net.release_route net fwd;
  Sim.Net.release_route net rev

(* -- metrics --------------------------------------------------------------- *)

let metrics_flow_lifecycle () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.add_flow m ~id:0 ~src:1 ~dst:2 ~size:3000 ~arrival_ns:100;
  Alcotest.(check bool) "incomplete" false (Sim.Metrics.complete m (Sim.Metrics.find m 0));
  Alcotest.(check bool) "first not final" false
    (Sim.Metrics.record_delivery m ~id:0 ~seq:0 ~payload:1500 ~now:200);
  Alcotest.(check bool) "second completes" true
    (Sim.Metrics.record_delivery m ~id:0 ~seq:1 ~payload:1500 ~now:400);
  Alcotest.(check int) "fct" 300 (Sim.Metrics.fct_ns (Sim.Metrics.find m 0));
  Alcotest.(check int) "completed count" 1 (Sim.Metrics.completed_count m)

let metrics_out_of_order_and_dups () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.add_flow m ~id:0 ~src:1 ~dst:2 ~size:4500 ~arrival_ns:0;
  ignore (Sim.Metrics.record_delivery m ~id:0 ~seq:2 ~payload:1500 ~now:10);
  ignore (Sim.Metrics.record_delivery m ~id:0 ~seq:1 ~payload:1500 ~now:20);
  (* duplicate of seq 2 must not double-count *)
  ignore (Sim.Metrics.record_delivery m ~id:0 ~seq:2 ~payload:1500 ~now:25);
  Alcotest.(check bool) "completes on seq 0" true
    (Sim.Metrics.record_delivery m ~id:0 ~seq:0 ~payload:1500 ~now:30);
  let f = Sim.Metrics.find m 0 in
  Alcotest.(check int) "reorder buffer peaked at 2" 2 f.Sim.Metrics.reorder_max;
  Alcotest.(check int) "all bytes" 4500 f.Sim.Metrics.delivered

(* -- r2c2 transport --------------------------------------------------------- *)

let default_specs topo rng n tau =
  Workload.Flowgen.poisson_pareto topo rng ~flows:n ~mean_interarrival_ns:tau

let r2c2_delivers_everything () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 3) 150 1_000.0 in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  Alcotest.(check int) "all flows complete" 150 (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics);
  Alcotest.(check int) "no drops with unbounded queues" 0 res.Sim.R2c2_sim.drops;
  List.iteri
    (fun i (s : Workload.Flowgen.spec) ->
      let f = Sim.Metrics.find res.Sim.R2c2_sim.metrics i in
      Alcotest.(check int) "every byte delivered" s.size f.Sim.Metrics.delivered)
    specs

let r2c2_single_flow_line_rate () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [ { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 1; size = 1_000_000; weight = 1; priority = 0 } ]
  in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  let f = Sim.Metrics.find res.Sim.R2c2_sim.metrics 0 in
  let gbps = tput f in
  (* Line rate 10G minus header overhead and pipeline latency. *)
  Alcotest.(check bool) (Printf.sprintf "near line rate (got %.2f)" gbps) true (gbps > 8.5)

let r2c2_clean_epochs_skipped () =
  (* One long flow spans many recompute intervals but generates exactly one
     rate-changing event (its start broadcast completing); with dirty-flow
     tracking every later epoch is clean and must be skipped, where the
     full-rebuild path recomputed on all of them. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [ { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 3; size = 4_000_000; weight = 1; priority = 0 } ]
  in
  let cfg = { Sim.R2c2_sim.default_config with recompute_interval_ns = 100_000 } in
  let res = Sim.R2c2_sim.run cfg topo specs in
  let f = Sim.Metrics.find res.Sim.R2c2_sim.metrics 0 in
  Alcotest.(check int) "flow completes" 4_000_000 f.Sim.Metrics.delivered;
  (* ~30+ epochs elapse; only the dirty one after visibility computes. *)
  Alcotest.(check bool)
    (Printf.sprintf "steady-state epochs skipped (%d recomputes)" res.Sim.R2c2_sim.recomputes)
    true
    (res.Sim.R2c2_sim.recomputes >= 1 && res.Sim.R2c2_sim.recomputes <= 3);
  Alcotest.(check bool) "rate still applied"
    true
    (tput f > 5.0)

let r2c2_deterministic () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 5) 80 1_000.0 in
  let r1 = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  let r2 = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  List.iteri
    (fun i _ ->
      Alcotest.(check int) "same fct"
        (Sim.Metrics.fct_ns (Sim.Metrics.find r1.Sim.R2c2_sim.metrics i))
        (Sim.Metrics.fct_ns (Sim.Metrics.find r2.Sim.R2c2_sim.metrics i)))
    specs

(* Byte-exact metrics snapshot of a seeded 4x4-torus run: per-flow records
   in [Metrics.all] order, the goodput time series, every sampled rate
   update and all the accounting counters. Parameterized over the engine
   backend (for the heap-vs-calendar differential test) and an optional
   control-plane chaos scenario. *)
let metrics_snapshot ?(backend = Sim.Engine.Calendar) ?(chaos = false) () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 11) 60 1_000.0 in
  let cfg =
    { Sim.R2c2_sim.default_config with
      recompute_interval_ns = 100_000;
      reselect_interval_ns = Some 200_000;
      engine_backend = backend;
    }
  in
  let cfg =
    if chaos then
      { cfg with
        Sim.R2c2_sim.control_loss = U.fraction 0.2;
        control_reorder = U.fraction 0.1;
        control_dup = U.fraction 0.05;
      }
    else cfg
  in
  let t = Sim.R2c2_sim.create cfg topo in
  Sim.Metrics.set_goodput_bucket (Sim.R2c2_sim.metrics t) ~bucket_ns:10_000;
  List.iter
    (fun (s : Workload.Flowgen.spec) ->
      Sim.Engine.at (Sim.R2c2_sim.engine t) s.arrival_ns (fun () ->
          ignore
            (Sim.R2c2_sim.start_flow ~weight:s.weight ~priority:s.priority t ~src:s.src
               ~dst:s.dst ~size:s.size)))
    specs;
  Sim.R2c2_sim.run_engine t;
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  let buf = Buffer.create 8192 in
  List.iter
    (fun (f : Sim.Metrics.flow) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %d %d->%d size=%d t0=%d tx=%d del=%d fin=%d ro=%d\n" f.id f.src
           f.dst f.size f.arrival_ns f.start_tx_ns f.delivered f.finish_ns f.reorder_max))
    (Sim.Metrics.all r.metrics);
  Array.iter
    (fun (ns, b) -> Buffer.add_string buf (Printf.sprintf "goodput %d %d\n" ns b))
    (Sim.Metrics.goodput_series r.metrics);
  List.iter
    (fun (ns, gbps) ->
      Buffer.add_string buf (Printf.sprintf "rate %d %.17g\n" ns (U.to_float gbps)))
    r.rate_updates;
  Buffer.add_string buf
    (Printf.sprintf "drops=%d recomputes=%d reselections=%d rerouted=%d inj=%d del=%d\n"
       r.drops r.recomputes r.reselections r.flows_rerouted r.injected_payload
       r.delivered_payload);
  (* Chaos-only so the clean snapshot stays byte-compatible with the
     golden pin below. *)
  if chaos then
    Buffer.add_string buf
      (Printf.sprintf "lost=%d lostB=%d reord=%d dup=%d\n" r.ctrl_lost r.ctrl_lost_bytes
         r.ctrl_reordered r.ctrl_dupped);
  Buffer.contents buf

let r2c2_metrics_snapshot_deterministic () =
  (* Stronger than [r2c2_deterministic]: two identically-seeded runs of a
     4x4 torus must produce *byte-identical* metric snapshots. Guards the
     Util.Tbl sorted-iteration conversion: any hash-order dependence left
     in the sim (or reintroduced later) shows up here as a diff. *)
  let s1 = metrics_snapshot () and s2 = metrics_snapshot () in
  Alcotest.(check bool) "snapshot is non-trivial" true (String.length s1 > 1000);
  Alcotest.(check string) "identical snapshots" s1 s2;
  (* Golden pin, captured immediately *before* the Util.Units sweep: the
     phantom wrappers are all [%identity] and the combinators are the
     literal raw formulas, so the typed stack must reproduce the unwrapped
     trajectory to the byte — not merely be self-consistent. *)
  Alcotest.(check int) "pre-sweep snapshot length" 4804 (String.length s1);
  Alcotest.(check string) "pre-sweep snapshot digest" "cdb08d68b4acc8b58fb70e9159ebabf6"
    (Digest.to_hex (Digest.string s1))

let r2c2_backend_differential () =
  (* The calendar queue must be observationally identical to the binary
     heap it replaced: same-instant events fire in the same FIFO order, so
     a full 4x4-torus run — and one with control-plane chaos layered on
     top (loss, reordering, duplication all active) — must produce
     byte-identical metric snapshots under both engine backends. *)
  Alcotest.(check string) "clean run: heap = calendar"
    (metrics_snapshot ~backend:Sim.Engine.Binary_heap ())
    (metrics_snapshot ~backend:Sim.Engine.Calendar ());
  Alcotest.(check string) "chaos run: heap = calendar"
    (metrics_snapshot ~backend:Sim.Engine.Binary_heap ~chaos:true ())
    (metrics_snapshot ~backend:Sim.Engine.Calendar ~chaos:true ())

let r2c2_rate_limited_after_epoch () =
  (* Two long flows from distinct sources to the same destination must
     converge to ~half the destination capacity each after recomputation. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [
      { Workload.Flowgen.arrival_ns = 0; src = 1; dst = 0; size = 4_000_000; weight = 1; priority = 0 };
      { Workload.Flowgen.arrival_ns = 0; src = 2; dst = 0; size = 4_000_000; weight = 1; priority = 0 };
    ]
  in
  let cfg = { Sim.R2c2_sim.default_config with recompute_interval_ns = 100_000 } in
  let res = Sim.R2c2_sim.run cfg topo specs in
  Alcotest.(check bool) "recomputed at least once" true (res.Sim.R2c2_sim.recomputes >= 1);
  let t0 = tput (Sim.Metrics.find res.Sim.R2c2_sim.metrics 0) in
  let t1 = tput (Sim.Metrics.find res.Sim.R2c2_sim.metrics 1) in
  (* Destination node 0 has 4 incoming links; two spraying flows share
     paths towards it. Fairness: roughly equal rates. *)
  Alcotest.(check bool) (Printf.sprintf "fair split (%.2f vs %.2f)" t0 t1) true
    (abs_float (t0 -. t1) /. Float.max t0 t1 < 0.25)

let r2c2_broadcast_overhead_counted () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 7) 50 1_000.0 in
  let res = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  (* Every flow start and finish is a real broadcast: 2 * 15 tree edges *
     16 bytes, all of which cross exactly one link each. *)
  Alcotest.(check (float 1.0)) "control wire bytes" (float_of_int (50 * 2 * 15 * 16))
    (U.to_float res.Sim.R2c2_sim.control_wire_bytes)

let r2c2_latency_model_broadcast () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 9) 60 1_000.0 in
  let cfg = { Sim.R2c2_sim.default_config with real_broadcast = false } in
  let res = Sim.R2c2_sim.run cfg topo specs in
  Alcotest.(check int) "all complete" 60 (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics);
  Alcotest.(check (float 1e-9)) "no control bytes on wire" 0.0
    (U.to_float res.Sim.R2c2_sim.control_wire_bytes)

let r2c2_respects_weights () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [
      { Workload.Flowgen.arrival_ns = 0; src = 1; dst = 0; size = 6_000_000; weight = 3; priority = 0 };
      { Workload.Flowgen.arrival_ns = 0; src = 2; dst = 0; size = 2_000_000; weight = 1; priority = 0 };
    ]
  in
  let cfg = { Sim.R2c2_sim.default_config with recompute_interval_ns = 50_000 } in
  let res = Sim.R2c2_sim.run cfg topo specs in
  let t0 = tput (Sim.Metrics.find res.Sim.R2c2_sim.metrics 0) in
  let t1 = tput (Sim.Metrics.find res.Sim.R2c2_sim.metrics 1) in
  Alcotest.(check bool) (Printf.sprintf "weighted flow faster (%.2f vs %.2f)" t0 t1) true (t0 > t1)

let r2c2_per_node_control () =
  (* The paper's literal decentralized design must complete everything and
     land close to the global-epoch approximation. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 23) 150 1_000.0 in
  let global = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  let per_node =
    Sim.R2c2_sim.run
      { Sim.R2c2_sim.default_config with control = Sim.R2c2_sim.Per_node }
      topo specs
  in
  Alcotest.(check int) "all complete" 150
    (Sim.Metrics.completed_count per_node.Sim.R2c2_sim.metrics);
  let m_g = Util.Stats.mean (Sim.Metrics.fcts_us global.Sim.R2c2_sim.metrics) in
  let m_p = Util.Stats.mean (Sim.Metrics.fcts_us per_node.Sim.R2c2_sim.metrics) in
  Alcotest.(check bool)
    (Printf.sprintf "mean FCT within 30%% (%.1f vs %.1f us)" m_g m_p)
    true
    (abs_float (m_g -. m_p) /. Float.max m_g m_p < 0.3)

let r2c2_per_node_needs_real_broadcast () =
  let topo = Topology.torus [| 4; 4 |] in
  let cfg =
    {
      Sim.R2c2_sim.default_config with
      control = Sim.R2c2_sim.Per_node;
      real_broadcast = false;
    }
  in
  Alcotest.check_raises "rejected"
    (Invalid_argument "R2c2_sim: Per_node control builds its views from real broadcasts")
    (fun () -> ignore (Sim.R2c2_sim.run cfg topo []))

let r2c2_per_node_long_flows_fair () =
  (* Two long flows from different senders: each sender computes its own
     rate from broadcasts and they still converge to a fair split. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [
      { Workload.Flowgen.arrival_ns = 0; src = 1; dst = 0; size = 4_000_000; weight = 1; priority = 0 };
      { Workload.Flowgen.arrival_ns = 0; src = 2; dst = 0; size = 4_000_000; weight = 1; priority = 0 };
    ]
  in
  let cfg =
    {
      Sim.R2c2_sim.default_config with
      control = Sim.R2c2_sim.Per_node;
      recompute_interval_ns = 100_000;
    }
  in
  let res = Sim.R2c2_sim.run cfg topo specs in
  let t0 = tput (Sim.Metrics.find res.Sim.R2c2_sim.metrics 0) in
  let t1 = tput (Sim.Metrics.find res.Sim.R2c2_sim.metrics 1) in
  Alcotest.(check bool) (Printf.sprintf "fair (%.2f vs %.2f)" t0 t1) true
    (abs_float (t0 -. t1) /. Float.max t0 t1 < 0.25)

let r2c2_host_limited_flow () =
  (* A demand-capped flow frees its unused share for the competing flow
     (SS3.3.2 host-limited flows). *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [
      { Workload.Flowgen.arrival_ns = 0; src = 1; dst = 0; size = 1_000_000; weight = 1; priority = 0 };
      { Workload.Flowgen.arrival_ns = 0; src = 2; dst = 0; size = 4_000_000; weight = 1; priority = 0 };
    ]
  in
  let demand_of idx _ = if idx = 0 then Some (U.gbps 1.0) else None in
  let cfg = { Sim.R2c2_sim.default_config with recompute_interval_ns = 100_000 } in
  let res = Sim.R2c2_sim.run ~demand_of cfg topo specs in
  Alcotest.(check int) "both complete" 2 (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics);
  let t0 = tput (Sim.Metrics.find res.Sim.R2c2_sim.metrics 0) in
  let t1 = tput (Sim.Metrics.find res.Sim.R2c2_sim.metrics 1) in
  Alcotest.(check bool) (Printf.sprintf "capped near 1 Gbps (got %.2f)" t0) true (t0 < 1.3);
  Alcotest.(check bool) (Printf.sprintf "other soaks the slack (got %.2f)" t1) true (t1 > 5.0)

let r2c2_live_reselection () =
  (* SS3.4 closed loop inside the simulator: long flows get re-assigned a
     routing protocol mid-run and everything still completes. *)
  let topo = Topology.torus [| 4; 4; 4 |] in
  let rng = Util.Rng.create 29 in
  let specs =
    List.map
      (fun (s : Workload.Flowgen.spec) -> { s with Workload.Flowgen.size = 3_000_000 })
      (Workload.Flowgen.permutation_long_flows topo rng ~load:(U.fraction 0.5))
  in
  let cfg =
    {
      Sim.R2c2_sim.default_config with
      recompute_interval_ns = 200_000;
      reselect_interval_ns = Some 400_000;
    }
  in
  let res = Sim.R2c2_sim.run cfg topo specs in
  Alcotest.(check int) "all complete" (List.length specs)
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics);
  Alcotest.(check bool) "reselections ran" true (res.Sim.R2c2_sim.reselections >= 1)

let r2c2_reselection_not_worse () =
  (* With reselection on, aggregate completion time of a long-flow batch
     should not regress materially. *)
  let topo = Topology.torus [| 4; 4; 4 |] in
  let rng = Util.Rng.create 31 in
  let specs =
    List.map
      (fun (s : Workload.Flowgen.spec) -> { s with Workload.Flowgen.size = 3_000_000 })
      (Workload.Flowgen.permutation_long_flows topo rng ~load:(U.fraction 0.25))
  in
  let base = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  let cfg = { Sim.R2c2_sim.default_config with reselect_interval_ns = Some 300_000 } in
  let sel = Sim.R2c2_sim.run cfg topo specs in
  let mean r = Util.Stats.mean (Sim.Metrics.fcts_us r.Sim.R2c2_sim.metrics) in
  Alcotest.(check bool)
    (Printf.sprintf "no big regression (%.0f vs %.0f us)" (mean base) (mean sel))
    true
    (mean sel <= mean base *. 1.15)

(* -- dynamic handle API -------------------------------------------------- *)

let dynamic_chained_flows () =
  (* A completion callback starting a response flow mid-simulation: the
     request/response pattern of an RPC. *)
  let topo = Topology.torus [| 4; 4 |] in
  let sim = Sim.R2c2_sim.create Sim.R2c2_sim.default_config topo in
  let eng = Sim.R2c2_sim.engine sim in
  let response_done = ref (-1) in
  Sim.Engine.at eng 0 (fun () ->
      ignore
        (Sim.R2c2_sim.start_flow sim ~src:0 ~dst:5 ~size:2_000 ~on_complete:(fun _ ->
             ignore
               (Sim.R2c2_sim.start_flow sim ~src:5 ~dst:0 ~size:10_000
                  ~on_complete:(fun _ -> response_done := Sim.Engine.now eng)))));
  Sim.R2c2_sim.run_engine sim;
  Alcotest.(check bool) "response completed" true (!response_done > 0);
  let res = Sim.R2c2_sim.results sim in
  Alcotest.(check int) "two flows total" 2
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics)

let dynamic_on_complete_gets_id () =
  let topo = Topology.torus [| 4; 4 |] in
  let sim = Sim.R2c2_sim.create Sim.R2c2_sim.default_config topo in
  let seen = ref [] in
  let eng = Sim.R2c2_sim.engine sim in
  Sim.Engine.at eng 0 (fun () ->
      for i = 0 to 2 do
        let id =
          Sim.R2c2_sim.start_flow sim ~src:i ~dst:(i + 4) ~size:5_000
            ~on_complete:(fun id -> seen := id :: !seen)
        in
        Alcotest.(check int) "sequential ids" i id
      done);
  Sim.R2c2_sim.run_engine sim;
  Alcotest.(check (list int)) "all callbacks fired" [ 0; 1; 2 ] (List.sort compare !seen)

let dynamic_run_engine_resumable () =
  (* run_engine can be called repeatedly as more work is scripted. *)
  let topo = Topology.torus [| 4; 4 |] in
  let sim = Sim.R2c2_sim.create Sim.R2c2_sim.default_config topo in
  let eng = Sim.R2c2_sim.engine sim in
  Sim.Engine.at eng 0 (fun () -> ignore (Sim.R2c2_sim.start_flow sim ~src:0 ~dst:1 ~size:3_000));
  Sim.R2c2_sim.run_engine sim;
  let first = Sim.Metrics.completed_count (Sim.R2c2_sim.metrics sim) in
  Sim.Engine.at eng (Sim.Engine.now eng) (fun () ->
      ignore (Sim.R2c2_sim.start_flow sim ~src:2 ~dst:3 ~size:3_000));
  Sim.R2c2_sim.run_engine sim;
  Alcotest.(check int) "first round" 1 first;
  Alcotest.(check int) "second round" 2 (Sim.Metrics.completed_count (Sim.R2c2_sim.metrics sim))

let dynamic_validates_inputs () =
  let topo = Topology.torus [| 4; 4 |] in
  let sim = Sim.R2c2_sim.create Sim.R2c2_sim.default_config topo in
  Alcotest.check_raises "self flow" (Invalid_argument "R2c2_sim: flow with src = dst")
    (fun () -> ignore (Sim.R2c2_sim.start_flow sim ~src:1 ~dst:1 ~size:100));
  Alcotest.check_raises "empty flow" (Invalid_argument "R2c2_sim: non-positive flow size")
    (fun () -> ignore (Sim.R2c2_sim.start_flow sim ~src:1 ~dst:2 ~size:0))

(* -- tcp transport ---------------------------------------------------------- *)

let tcp_delivers_everything () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 11) 150 1_000.0 in
  let res = Sim.Tcp_sim.run Sim.Tcp_sim.default_config topo specs in
  Alcotest.(check int) "all flows complete despite drops" 150
    (Sim.Metrics.completed_count res.Sim.Tcp_sim.metrics);
  List.iteri
    (fun i (s : Workload.Flowgen.spec) ->
      let f = Sim.Metrics.find res.Sim.Tcp_sim.metrics i in
      Alcotest.(check int) "every byte delivered" s.size f.Sim.Metrics.delivered)
    specs

let tcp_recovers_from_heavy_loss () =
  (* Tiny queues force drops; TCP must still finish. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 13) 60 200.0 in
  let cfg = { Sim.Tcp_sim.default_config with queue_capacity = 6_000 } in
  let res = Sim.Tcp_sim.run cfg topo specs in
  Alcotest.(check int) "all complete" 60 (Sim.Metrics.completed_count res.Sim.Tcp_sim.metrics);
  Alcotest.(check bool) "loss actually happened" true (res.Sim.Tcp_sim.drops > 0);
  Alcotest.(check bool) "retransmissions happened" true (res.Sim.Tcp_sim.retransmits > 0)

let tcp_single_path_per_flow () =
  (* With ECMP every packet of a flow follows one path: absent drops the
     receiver never buffers out of order. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [ { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 5; size = 500_000; weight = 1; priority = 0 } ]
  in
  let cfg = { Sim.Tcp_sim.default_config with queue_capacity = max_int } in
  let res = Sim.Tcp_sim.run cfg topo specs in
  Alcotest.(check int) "no drops" 0 res.Sim.Tcp_sim.drops;
  let f = Sim.Metrics.find res.Sim.Tcp_sim.metrics 0 in
  Alcotest.(check int) "no reordering on a single path" 0 f.Sim.Metrics.reorder_max

(* -- pfq transport ----------------------------------------------------------- *)

let pfq_completes_all () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 17) 150 1_000.0 in
  let results = Sim.Pfq_sim.run Sim.Pfq_sim.default_config topo specs in
  Alcotest.(check int) "all flows complete" 150 (List.length results);
  List.iter
    (fun (r : Sim.Pfq_sim.flow_result) ->
      Alcotest.(check bool) "positive fct" true (r.fct_ns > 0);
      Alcotest.(check bool) "positive throughput" true ((r.throughput_gbps : U.gbps :> float) > 0.0))
    results

let pfq_single_flow_multipath_beats_line_rate () =
  (* The ideal baseline can use several paths at once: a lone flow gets
     more than one link's capacity. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [ { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 5; size = 10_000_000; weight = 1; priority = 0 } ]
  in
  let results = Sim.Pfq_sim.run Sim.Pfq_sim.default_config topo specs in
  match results with
  | [ r ] ->
      let t = U.to_float r.throughput_gbps in
      Alcotest.(check bool) (Printf.sprintf "multipath > 10G (got %.1f)" t) true (t > 10.0)
  | _ -> Alcotest.fail "expected one result"

let pfq_mean_fct_not_worse_than_r2c2 () =
  (* PFQ is the idealized upper bound: on the same workload its mean FCT
     must not exceed R2C2's by any meaningful margin. *)
  let topo = Topology.torus [| 4; 4 |] in
  let specs = default_specs topo (Util.Rng.create 19) 200 1_000.0 in
  let pfq = Sim.Pfq_sim.run Sim.Pfq_sim.default_config topo specs in
  let r2c2 = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  let pfq_mean =
    Util.Stats.mean
      (Array.of_list
         (List.map (fun (r : Sim.Pfq_sim.flow_result) -> float_of_int r.fct_ns /. 1000.0) pfq))
  in
  let r2c2_mean = Util.Stats.mean (Sim.Metrics.fcts_us r2c2.Sim.R2c2_sim.metrics) in
  Alcotest.(check bool)
    (Printf.sprintf "pfq (%.1f us) <= r2c2 (%.1f us) * 1.1" pfq_mean r2c2_mean)
    true
    (pfq_mean <= r2c2_mean *. 1.1)

let pfq_identical_flows_fair () =
  (* Symmetric sources: (2,0) and (0,2) are both two hops from (0,0) with
     congruent shortest-path sets, so path-level max-min must treat them
     equally. *)
  let topo = Topology.torus [| 4; 4 |] in
  let mk src = { Workload.Flowgen.arrival_ns = 0; src; dst = 0; size = 10_000_000; weight = 1; priority = 0 } in
  let results = Sim.Pfq_sim.run Sim.Pfq_sim.default_config topo [ mk 2; mk 8 ] in
  match results with
  | [ a; b ] ->
      let ta = U.to_float a.Sim.Pfq_sim.throughput_gbps
      and tb = U.to_float b.Sim.Pfq_sim.throughput_gbps in
      Alcotest.(check bool) (Printf.sprintf "fair (%.2f vs %.2f)" ta tb) true
        (abs_float (ta -. tb) < 1.0)
  | _ -> Alcotest.fail "expected two results"

let pfq_until_cuts_off () =
  let topo = Topology.torus [| 4; 4 |] in
  let specs =
    [ { Workload.Flowgen.arrival_ns = 0; src = 0; dst = 5; size = 100_000_000; weight = 1; priority = 0 } ]
  in
  let results = Sim.Pfq_sim.run ~until_ns:1_000 Sim.Pfq_sim.default_config topo specs in
  Alcotest.(check int) "giant flow not done in 1 us" 0 (List.length results)

(* -- reliability --------------------------------------------------------------- *)

let reliability_lossless () =
  let s =
    Sim.Reliability.run_over_lossy_channel ~loss:(U.fraction 0.0)
      { Sim.Reliability.packets = 50; rtx_timeout_ns = 10_000; max_retries = 5;
        rtx_backoff = 1.0; rtx_cap_ns = max_int }
      ~rtt_ns:2_000
  in
  Alcotest.(check bool) "completed" true s.Sim.Reliability.completed;
  Alcotest.(check int) "no retransmissions" 50 s.Sim.Reliability.transmissions

let reliability_with_loss () =
  let s =
    Sim.Reliability.run_over_lossy_channel ~loss:(U.fraction 0.3)
      { Sim.Reliability.packets = 200; rtx_timeout_ns = 10_000; max_retries = 50;
        rtx_backoff = 1.0; rtx_cap_ns = max_int }
      ~rtt_ns:2_000
  in
  Alcotest.(check bool) "completed despite 30% loss" true s.Sim.Reliability.completed;
  Alcotest.(check int) "all delivered" 200 s.Sim.Reliability.delivered;
  Alcotest.(check bool) "needed retransmissions" true (s.Sim.Reliability.transmissions > 200)

let reliability_gives_up () =
  let s =
    Sim.Reliability.run_over_lossy_channel ~seed:3 ~loss:(U.fraction 0.95)
      { Sim.Reliability.packets = 20; rtx_timeout_ns = 1_000; max_retries = 2;
        rtx_backoff = 1.0; rtx_cap_ns = max_int }
      ~rtt_ns:2_000
  in
  Alcotest.(check bool) "aborts after max retries" false s.Sim.Reliability.completed;
  Alcotest.(check int) "abort marked" (-1) s.Sim.Reliability.finish_ns

let reliability_backoff_spacing () =
  (* Every data packet is lost; the per-packet timer must back off
     exponentially (1000, 2000, 4000, 8000 ns ...) up to the cap. *)
  let eng = Sim.Engine.create () in
  let times = ref [] in
  let result = ref None in
  Sim.Reliability.transfer eng
    { Sim.Reliability.packets = 1; rtx_timeout_ns = 1_000; max_retries = 6;
      rtx_backoff = 2.0; rtx_cap_ns = 10_000 }
    ~send_data:(fun ~seq:_ ~attempt:_ ->
      times := Sim.Engine.now eng :: !times;
      false)
    ~send_ack:(fun ~seq:_ -> true)
    ~ack_delay_ns:100 ~data_delay_ns:100
    (fun s -> result := Some s);
  Sim.Engine.run eng;
  let times = Array.of_list (List.rev !times) in
  Alcotest.(check int) "all attempts made" 7 (Array.length times);
  let gaps = Array.init (Array.length times - 1) (fun i -> times.(i + 1) - times.(i)) in
  Array.iteri
    (fun i g ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "gap %d no smaller than gap %d" i (i - 1))
          true
          (g >= gaps.(i - 1)))
    gaps;
  Alcotest.(check bool) "spacing strictly grows before the cap" true (gaps.(1) > gaps.(0));
  Alcotest.(check int) "spacing capped" 10_000 gaps.(Array.length gaps - 1);
  match !result with
  | Some s -> Alcotest.(check bool) "gave up in the end" false s.Sim.Reliability.completed
  | None -> Alcotest.fail "transfer did not terminate"

let suites =
  [
    ( "sim.engine",
      [
        tc "time ordering" engine_time_order;
        tc "fifo on simultaneous events" engine_same_time_fifo;
        tc "run until" engine_until;
        tc "nested scheduling" engine_nested_scheduling;
        tc "rejects scheduling in the past" engine_rejects_past;
      ] );
    ( "sim.net",
      [
        tc "source-routed delivery and latency" net_delivers_along_route;
        tc "serialization queues back-to-back" net_serialization_queuing;
        tc "tail drop on finite queues" net_tail_drop;
        tc "max queue occupancy tracked" net_max_queue_tracked;
        tc "broadcast reaches every node" net_broadcast_reaches_all;
        tc "wire byte counters" net_wire_counters;
        tc "broadcast requires a FIB" net_requires_fib_for_broadcast;
        tc "bad routes rejected" net_rejects_bad_route;
        tc "steady state allocates nothing" net_steady_state_zero_alloc;
      ] );
    ( "sim.metrics",
      [
        tc "flow lifecycle" metrics_flow_lifecycle;
        tc "out-of-order and duplicates" metrics_out_of_order_and_dups;
      ] );
    ( "sim.r2c2",
      [
        tc "delivers every byte" r2c2_delivers_everything;
        tc "single flow near line rate" r2c2_single_flow_line_rate;
        tc "deterministic given seed" r2c2_deterministic;
        tc "byte-identical metric snapshots" r2c2_metrics_snapshot_deterministic;
        tc "heap and calendar backends agree (clean + chaos)" r2c2_backend_differential;
        tc "fair split after recompute" r2c2_rate_limited_after_epoch;
        tc "clean epochs skipped by dirty tracking" r2c2_clean_epochs_skipped;
        tc "broadcast bytes accounted" r2c2_broadcast_overhead_counted;
        tc "latency-model broadcast mode" r2c2_latency_model_broadcast;
        tc "weights respected end-to-end" r2c2_respects_weights;
        tc "per-node control completes and matches" r2c2_per_node_control;
        tc "per-node requires real broadcasts" r2c2_per_node_needs_real_broadcast;
        tc "per-node control is fair" r2c2_per_node_long_flows_fair;
        tc "host-limited flow frees its share" r2c2_host_limited_flow;
        tc "dynamic API: chained request/response" dynamic_chained_flows;
        tc "dynamic API: completion callbacks" dynamic_on_complete_gets_id;
        tc "dynamic API: resumable engine" dynamic_run_engine_resumable;
        tc "dynamic API: input validation" dynamic_validates_inputs;
        tc "live routing reselection (SS3.4)" r2c2_live_reselection;
        tc "reselection does not regress" r2c2_reselection_not_worse;
      ] );
    ( "sim.tcp",
      [
        tc "delivers every byte" tcp_delivers_everything;
        tc "recovers from heavy loss" tcp_recovers_from_heavy_loss;
        tc "single path implies no reordering" tcp_single_path_per_flow;
      ] );
    ( "sim.pfq",
      [
        tc "completes all flows" pfq_completes_all;
        tc "multipath beats line rate" pfq_single_flow_multipath_beats_line_rate;
        tc "upper bound vs r2c2" pfq_mean_fct_not_worse_than_r2c2;
        tc "identical flows fair" pfq_identical_flows_fair;
        tc "until_ns cuts off" pfq_until_cuts_off;
      ] );
    ( "sim.reliability",
      [
        tc "lossless channel" reliability_lossless;
        tc "30% loss recovered" reliability_with_loss;
        tc "gives up after max retries" reliability_gives_up;
        tc "retry spacing backs off exponentially" reliability_backoff_spacing;
      ] );
  ]
