(* Tests for lib/routing: path validity per protocol, link fractions,
   conservation laws, caching. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

(* Unwrap a fractions table for the raw-number flow algebra below. *)
let fractions ctx proto ~src ~dst = U.pairs_to_floats (Routing.fractions ctx proto ~src ~dst)

let torus44 = lazy (Routing.make (Topology.torus [| 4; 4 |]))
let torus444 = lazy (Routing.make (Topology.torus [| 4; 4; 4 |]))

let check_path_valid ctx path ~src ~dst =
  let t = Routing.topo ctx in
  Alcotest.(check int) "starts at src" src path.(0);
  Alcotest.(check int) "ends at dst" dst path.(Array.length path - 1);
  for i = 0 to Array.length path - 2 do
    Alcotest.(check bool) "consecutive vertices adjacent" true
      (Topology.find_link t path.(i) path.(i + 1) <> None)
  done

let minimal_paths_have_min_length () =
  let ctx = Lazy.force torus444 in
  let t = Routing.topo ctx in
  let rng = Util.Rng.create 3 in
  for _ = 1 to 100 do
    let src = Util.Rng.int rng 64 and dst = Util.Rng.int rng 64 in
    if src <> dst then begin
      List.iter
        (fun proto ->
          let p = Routing.sample_path ctx rng proto ~src ~dst in
          check_path_valid ctx p ~src ~dst;
          Alcotest.(check int) "minimal length"
            (Topology.distance t src dst)
            (Array.length p - 1))
        [ Routing.Rps; Routing.Dor ]
    end
  done

let vlb_paths_valid () =
  let ctx = Lazy.force torus444 in
  let rng = Util.Rng.create 5 in
  for _ = 1 to 100 do
    let src = Util.Rng.int rng 64 and dst = Util.Rng.int rng 64 in
    if src <> dst then begin
      let p = Routing.sample_path ctx rng Routing.Vlb ~src ~dst in
      check_path_valid ctx p ~src ~dst
    end
  done

let wlb_paths_valid_and_biased_short () =
  let ctx = Lazy.force torus444 in
  let t = Routing.topo ctx in
  let rng = Util.Rng.create 7 in
  let total_extra_wlb = ref 0 and total_extra_vlb = ref 0 in
  for _ = 1 to 300 do
    let src = 0 and dst = 1 in
    let pw = Routing.sample_path ctx rng Routing.Wlb ~src ~dst in
    let pv = Routing.sample_path ctx rng Routing.Vlb ~src ~dst in
    check_path_valid ctx pw ~src ~dst;
    let d = Topology.distance t src dst in
    total_extra_wlb := !total_extra_wlb + (Array.length pw - 1 - d);
    total_extra_vlb := !total_extra_vlb + (Array.length pv - 1 - d)
  done;
  Alcotest.(check bool) "WLB shorter than VLB on average" true
    (!total_extra_wlb < !total_extra_vlb)

let dor_path_deterministic_when_no_tie () =
  let ctx = Lazy.force torus44 in
  let rng1 = Util.Rng.create 1 and rng2 = Util.Rng.create 999 in
  (* (0,0) -> (1,1): offsets 1,1 — no half-way tie on a 4-torus. *)
  let t = Routing.topo ctx in
  let src = Topology.of_coords t [| 0; 0 |] and dst = Topology.of_coords t [| 1; 1 |] in
  let p1 = Routing.sample_path ctx rng1 Routing.Dor ~src ~dst in
  let p2 = Routing.sample_path ctx rng2 Routing.Dor ~src ~dst in
  Alcotest.(check (array int)) "same path regardless of rng" p1 p2

let ecmp_deterministic_per_flow () =
  let ctx = Lazy.force torus444 in
  let p1 = Routing.ecmp_path ctx ~flow_id:7 ~src:0 ~dst:42 in
  let p2 = Routing.ecmp_path ctx ~flow_id:7 ~src:0 ~dst:42 in
  Alcotest.(check (array int)) "stable" p1 p2;
  (* Different flows usually take different paths. *)
  let distinct = ref false in
  for fid = 0 to 20 do
    if Routing.ecmp_path ctx ~flow_id:fid ~src:0 ~dst:42 <> p1 then distinct := true
  done;
  Alcotest.(check bool) "hashes spread flows" true !distinct

let path_links_roundtrip () =
  let ctx = Lazy.force torus444 in
  let t = Routing.topo ctx in
  let rng = Util.Rng.create 11 in
  let p = Routing.sample_path ctx rng Routing.Rps ~src:0 ~dst:63 in
  let links = Routing.path_links ctx p in
  Alcotest.(check int) "one link per hop" (Array.length p - 1) (Array.length links);
  Array.iteri
    (fun i l ->
      Alcotest.(check int) "src matches" p.(i) (Topology.link_src t l);
      Alcotest.(check int) "dst matches" p.(i + 1) (Topology.link_dst t l))
    links

let sample_paths_distinct_unique () =
  let ctx = Lazy.force torus444 in
  let rng = Util.Rng.create 13 in
  let paths = Routing.sample_paths_distinct ctx rng ~k:8 ~src:0 ~dst:21 in
  Alcotest.(check bool) "found some" true (List.length paths >= 2);
  let keys = List.map (fun p -> Array.to_list p) paths in
  Alcotest.(check int) "all distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* Conservation: for a minimal protocol, the fractions leaving the source
   sum to 1, and flow is conserved at every intermediate vertex. *)
let fraction_conservation proto () =
  let ctx = Lazy.force torus444 in
  let t = Routing.topo ctx in
  let rng = Util.Rng.create 17 in
  for _ = 1 to 30 do
    let src = Util.Rng.int rng 64 and dst = Util.Rng.int rng 64 in
    if src <> dst then begin
      let fr = fractions ctx proto ~src ~dst in
      let inflow = Array.make (Topology.vertex_count t) 0.0 in
      let outflow = Array.make (Topology.vertex_count t) 0.0 in
      Array.iter
        (fun (l, f) ->
          Alcotest.(check bool) "positive fraction" true (f > 0.0);
          outflow.(Topology.link_src t l) <- outflow.(Topology.link_src t l) +. f;
          inflow.(Topology.link_dst t l) <- inflow.(Topology.link_dst t l) +. f)
        fr;
      Alcotest.(check (float 1e-6)) "unit outflow at src" 1.0 (outflow.(src) -. inflow.(src));
      Alcotest.(check (float 1e-6)) "unit inflow at dst" 1.0 (inflow.(dst) -. outflow.(dst));
      for v = 0 to Topology.vertex_count t - 1 do
        if v <> src && v <> dst then
          Alcotest.(check (float 1e-6)) "conservation" 0.0 (inflow.(v) -. outflow.(v))
      done
    end
  done

let rps_fractions_match_sampling () =
  (* Empirical packet spraying frequencies converge to the DP fractions. *)
  let ctx = Lazy.force torus44 in
  let src = 0 and dst = 5 (* (1,1): two shortest paths *) in
  let fr = fractions ctx Routing.Rps ~src ~dst in
  let counts = Hashtbl.create 8 in
  let rng = Util.Rng.create 19 in
  let n = 20_000 in
  for _ = 1 to n do
    let p = Routing.sample_path ctx rng Routing.Rps ~src ~dst in
    Array.iter
      (fun l -> Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
      (Routing.path_links ctx p)
  done;
  Array.iter
    (fun (l, f) ->
      let emp = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts l)) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "link %d: %.3f vs %.3f" l f emp)
        true
        (abs_float (emp -. f) < 0.02))
    fr

let dor_fraction_single_path_no_tie () =
  let ctx = Lazy.force torus44 in
  let t = Routing.topo ctx in
  let src = Topology.of_coords t [| 0; 0 |] and dst = Topology.of_coords t [| 1; 1 |] in
  let fr = fractions ctx Routing.Dor ~src ~dst in
  Alcotest.(check int) "exactly distance links" 2 (Array.length fr);
  Array.iter (fun (_, f) -> Alcotest.(check (float 1e-9)) "full weight" 1.0 f) fr

let dor_fraction_tie_split () =
  let ctx = Lazy.force torus44 in
  let t = Routing.topo ctx in
  (* offset 2 on a 4-ring: exact half-way tie in dimension 0. *)
  let src = Topology.of_coords t [| 0; 0 |] and dst = Topology.of_coords t [| 2; 0 |] in
  let fr = fractions ctx Routing.Dor ~src ~dst in
  Alcotest.(check int) "two 2-hop directions" 4 (Array.length fr);
  Array.iter (fun (_, f) -> Alcotest.(check (float 1e-9)) "half each way" 0.5 f) fr

let vlb_fractions_sum_to_expected_hops () =
  let ctx = Lazy.force torus444 in
  let t = Routing.topo ctx in
  let src = 0 and dst = 63 in
  let fr = fractions ctx Routing.Vlb ~src ~dst in
  let total = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 fr in
  (* Expected hops = E[d(s,w)] + E[d(w,d)] over uniform waypoints. *)
  let h = Topology.host_count t in
  let expected = ref 0.0 in
  for w = 0 to h - 1 do
    expected :=
      !expected
      +. float_of_int (Topology.distance t src w + Topology.distance t w dst) /. float_of_int h
  done;
  Alcotest.(check (float 1e-6)) "total fraction = expected hops" !expected total

let fractions_cached () =
  let ctx = Routing.make (Topology.torus [| 4; 4 |]) in
  let a = Routing.fractions ctx Routing.Rps ~src:0 ~dst:5 in
  let b = Routing.fractions ctx Routing.Rps ~src:0 ~dst:5 in
  Alcotest.(check bool) "same physical array (cached)" true (a == b)

let protocol_int_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check (option bool)) "roundtrip" (Some true)
        (Option.map (fun q -> q = p) (Routing.protocol_of_int (Routing.protocol_to_int p))))
    Routing.all_protocols;
  Alcotest.(check bool) "invalid int" true (Routing.protocol_of_int 9 = None)

let qcheck_sampled_path_minimal =
  QCheck.Test.make ~name:"RPS sampled path length = distance" ~count:300
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (src, dst) ->
      QCheck.assume (src <> dst);
      let ctx = Lazy.force torus444 in
      let rng = Util.Rng.create (src + (64 * dst)) in
      let p = Routing.sample_path ctx rng Routing.Rps ~src ~dst in
      Array.length p - 1 = Topology.distance (Routing.topo ctx) src dst)

let suites =
  [
    ( "routing",
      [
        tc "minimal paths have minimal length" minimal_paths_have_min_length;
        tc "VLB paths valid" vlb_paths_valid;
        tc "WLB valid and shorter than VLB" wlb_paths_valid_and_biased_short;
        tc "DOR deterministic without ties" dor_path_deterministic_when_no_tie;
        tc "ECMP deterministic per flow" ecmp_deterministic_per_flow;
        tc "path_links matches path" path_links_roundtrip;
        tc "distinct path sampling" sample_paths_distinct_unique;
        tc "RPS fraction conservation" (fraction_conservation Routing.Rps);
        tc "DOR fraction conservation" (fraction_conservation Routing.Dor);
        tc "WLB fraction conservation" (fraction_conservation Routing.Wlb);
        tc "VLB fraction conservation" (fraction_conservation Routing.Vlb);
        tc "RPS fractions match empirical spraying" rps_fractions_match_sampling;
        tc "DOR single path without tie" dor_fraction_single_path_no_tie;
        tc "DOR splits half-way ties" dor_fraction_tie_split;
        tc "VLB fractions sum to expected hops" vlb_fractions_sum_to_expected_hops;
        tc "fraction caching" fractions_cached;
        tc "protocol int roundtrip" protocol_int_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_sampled_path_minimal;
      ] );
  ]
