(* Tests for lib/congestion: water-filling (known answers, invariants,
   fast = reference), channel loads, demand estimation. *)

let tc name f = Alcotest.test_case name `Quick f

module U = Util.Units

(* The tests state their instances in raw numbers; these shims wrap the
   units at the boundary (and unwrap the resulting rates) so the known
   answers below stay plain floats. *)
let wf ?weight ?priority ?demand ~id links =
  Congestion.Waterfill.flow ?weight ?priority
    ?demand:(Option.map U.byte_rate demand)
    ~id (U.pairs_of_floats links)

let allocate ?headroom ~capacities flows =
  U.floats_of
    (Congestion.Waterfill.allocate
       ?headroom:(Option.map U.fraction headroom)
       ~capacities:(U.of_floats capacities) flows)

let allocate_reference ?headroom ~capacities flows =
  U.floats_of
    (Congestion.Waterfill.allocate_reference
       ?headroom:(Option.map U.fraction headroom)
       ~capacities:(U.of_floats capacities) flows)

let single_flow_gets_capacity () =
  let rates = allocate ~capacities:[| 10.0 |] [| wf ~id:0 [| (0, 1.0) |] |] in
  Alcotest.(check (float 1e-9)) "full link" 10.0 rates.(0)

let two_flows_share_equally () =
  let flows = [| wf ~id:0 [| (0, 1.0) |]; wf ~id:1 [| (0, 1.0) |] |] in
  let rates = allocate ~capacities:[| 10.0 |] flows in
  Alcotest.(check (float 1e-9)) "half" 5.0 rates.(0);
  Alcotest.(check (float 1e-9)) "half" 5.0 rates.(1)

let weighted_sharing () =
  let flows = [| wf ~weight:3.0 ~id:0 [| (0, 1.0) |]; wf ~weight:1.0 ~id:1 [| (0, 1.0) |] |] in
  let rates = allocate ~capacities:[| 8.0 |] flows in
  Alcotest.(check (float 1e-9)) "3:1 split" 6.0 rates.(0);
  Alcotest.(check (float 1e-9)) "3:1 split" 2.0 rates.(1)

let headroom_respected () =
  let flows = [| wf ~id:0 [| (0, 1.0) |] |] in
  let rates = allocate ~headroom:0.05 ~capacities:[| 10.0 |] flows in
  Alcotest.(check (float 1e-9)) "95% of link" 9.5 rates.(0)

let demand_caps_rate () =
  let flows = [| wf ~demand:2.0 ~id:0 [| (0, 1.0) |]; wf ~id:1 [| (0, 1.0) |] |] in
  let rates = allocate ~capacities:[| 10.0 |] flows in
  Alcotest.(check (float 1e-9)) "capped at demand" 2.0 rates.(0);
  Alcotest.(check (float 1e-9)) "rest to the other" 8.0 rates.(1)

let priority_rounds () =
  let flows =
    [| wf ~priority:0 ~id:0 [| (0, 1.0) |]; wf ~priority:1 ~id:1 [| (0, 1.0) |] |]
  in
  let rates = allocate ~capacities:[| 10.0 |] flows in
  Alcotest.(check (float 1e-9)) "high priority takes all" 10.0 rates.(0);
  Alcotest.(check (float 1e-9)) "low priority starved" 0.0 rates.(1)

let priority_with_demand_leftover () =
  let flows =
    [| wf ~priority:0 ~demand:4.0 ~id:0 [| (0, 1.0) |]; wf ~priority:1 ~id:1 [| (0, 1.0) |] |]
  in
  let rates = allocate ~capacities:[| 10.0 |] flows in
  Alcotest.(check (float 1e-9)) "demand met" 4.0 rates.(0);
  Alcotest.(check (float 1e-9)) "leftover to next round" 6.0 rates.(1)

(* Paper Fig. 4: flow f1 sprays over two paths (direct + via node 3), flow
   f2 single path via node 3; respecting routing-dictated 50/50 split the
   max-min allocation is {2/3, 2/3}. Links: 0 = (1,4), 1 = (1,3), 2 = (3,4),
   3 = (2,3). *)
let paper_fig4_example () =
  let capacities = [| 1.0; 1.0; 1.0; 1.0 |] in
  let f1 = wf ~id:1 [| (0, 0.5); (1, 0.5); (2, 0.5) |] in
  let f2 = wf ~id:2 [| (3, 1.0); (2, 1.0) |] in
  let rates = allocate ~capacities [| f1; f2 |] in
  Alcotest.(check (float 1e-6)) "f1 = 2/3" (2.0 /. 3.0) rates.(0);
  Alcotest.(check (float 1e-6)) "f2 = 2/3" (2.0 /. 3.0) rates.(1)

let multilink_bottleneck () =
  (* Flow A crosses links 0,1; flow B crosses link 1; flow C crosses link 0.
     Link capacities make link 1 the first bottleneck. *)
  let flows =
    [|
      wf ~id:0 [| (0, 1.0); (1, 1.0) |]; wf ~id:1 [| (1, 1.0) |]; wf ~id:2 [| (0, 1.0) |];
    |]
  in
  let rates = allocate ~capacities:[| 10.0; 4.0 |] flows in
  Alcotest.(check (float 1e-6)) "A limited by link1" 2.0 rates.(0);
  Alcotest.(check (float 1e-6)) "B limited by link1" 2.0 rates.(1);
  Alcotest.(check (float 1e-6)) "C takes the slack on link0" 8.0 rates.(2)

let fractional_load () =
  (* A flow spraying over two links at 0.5 each loads each at rate/2. *)
  let flows = [| wf ~id:0 [| (0, 0.5); (1, 0.5) |] |] in
  let rates = allocate ~capacities:[| 1.0; 1.0 |] flows in
  Alcotest.(check (float 1e-9)) "rate 2 with half fractions" 2.0 rates.(0)

let empty_flow_list () =
  let rates = allocate ~capacities:[| 1.0 |] [||] in
  Alcotest.(check int) "empty result" 0 (Array.length rates)

let invalid_inputs_rejected () =
  Alcotest.check_raises "bad weight" (Invalid_argument "Waterfill: non-positive weight")
    (fun () ->
      ignore
        (allocate ~capacities:[| 1.0 |]
           [| wf ~weight:0.0 ~id:0 [| (0, 1.0) |] |]));
  Alcotest.check_raises "bad link id" (Invalid_argument "Waterfill: link id out of range")
    (fun () ->
      ignore (allocate ~capacities:[| 1.0 |] [| wf ~id:0 [| (7, 1.0) |] |]));
  Alcotest.check_raises "bad headroom" (Invalid_argument "Waterfill: headroom out of range")
    (fun () ->
      ignore
        (allocate ~headroom:1.0 ~capacities:[| 1.0 |]
           [| wf ~id:0 [| (0, 1.0) |] |]))

(* Random instances for the property tests. *)
let gen_instance =
  QCheck.Gen.(
    let* nl = 1 -- 12 in
    let* nf = 1 -- 20 in
    let* caps = array_size (return nl) (float_range 0.5 4.0) in
    let* flows =
      list_size (return nf)
        (let* k = 1 -- min 4 nl in
         let* links = list_size (return k) (pair (0 -- (nl - 1)) (float_range 0.1 1.0)) in
         let* weight = float_range 0.5 3.0 in
         let* priority = 0 -- 2 in
         let* has_demand = bool in
         let* demand = float_range 0.1 3.0 in
         return (links, weight, priority, if has_demand then Some demand else None))
    in
    return (caps, flows))

let build_flows specs =
  List.mapi
    (fun i (links, weight, priority, demand) ->
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun (l, f) ->
          Hashtbl.replace tbl l (f +. Option.value ~default:0.0 (Hashtbl.find_opt tbl l)))
        links;
      let links =
        Array.of_list (Util.Tbl.fold_sorted ~cmp:Int.compare (fun l f acc -> (l, f) :: acc) tbl [])
      in
      wf ~weight ~priority ?demand ~id:i links)
    specs
  |> Array.of_list

let qcheck_capacity_feasible =
  QCheck.Test.make ~name:"allocation never exceeds capacity" ~count:300
    (QCheck.make gen_instance) (fun (caps, specs) ->
      let flows = build_flows specs in
      let rates = allocate ~capacities:caps flows in
      let util =
        Congestion.Waterfill.link_utilization ~capacities:(U.of_floats caps) flows
          (U.of_floats rates)
      in
      Array.for_all (fun u -> U.to_float u <= 1.0 +. 1e-6) util)

let qcheck_fast_equals_reference =
  QCheck.Test.make ~name:"efficient variant = reference water-filling" ~count:300
    (QCheck.make gen_instance) (fun (caps, specs) ->
      let flows = build_flows specs in
      let a = allocate ~headroom:0.05 ~capacities:caps flows in
      let b = allocate_reference ~headroom:0.05 ~capacities:caps flows in
      Array.for_all2 (fun x y -> abs_float (x -. y) <= 1e-6 *. (1.0 +. abs_float y)) a b)

let qcheck_max_min_property =
  (* No flow below its demand can be rate-starved while every one of its
     links has spare capacity. *)
  QCheck.Test.make ~name:"no flow starved with slack everywhere" ~count:300
    (QCheck.make gen_instance) (fun (caps, specs) ->
      let flows = build_flows specs in
      let rates = allocate ~capacities:caps flows in
      let load = Array.make (Array.length caps) 0.0 in
      Array.iteri
        (fun i f ->
          Array.iter
            (fun (l, frac) ->
              load.(l) <- load.(l) +. (rates.(i) *. (frac : U.fraction :> float)))
            f.Congestion.Waterfill.links)
        flows;
      Array.for_all2
        (fun f r ->
          let demand_met =
            match f.Congestion.Waterfill.demand with
            | Some d -> r >= (d : U.byte_rate :> float) -. 1e-6
            | None -> false
          in
          let some_link_tight =
            Array.exists
              (fun (l, _) -> load.(l) >= caps.(l) -. 1e-6)
              f.Congestion.Waterfill.links
          in
          demand_met || some_link_tight || f.Congestion.Waterfill.priority > 0)
        flows rates)

let qcheck_demand_never_exceeded =
  QCheck.Test.make ~name:"rates never exceed demand" ~count:300 (QCheck.make gen_instance)
    (fun (caps, specs) ->
      let flows = build_flows specs in
      let rates = allocate ~capacities:caps flows in
      Array.for_all2
        (fun f r ->
          match f.Congestion.Waterfill.demand with
          | Some d -> r <= (d : U.byte_rate :> float) +. 1e-6
          | None -> true)
        flows rates)

let qcheck_fast_equals_reference_dense =
  (* VLB fractions are dense (every link carries a sliver of every flow);
     the two allocators must also agree there. *)
  QCheck.Test.make ~name:"efficient = reference on dense VLB fractions" ~count:25
    QCheck.(pair (int_bound 1000) (2 -- 12))
    (fun (seed, nf) ->
      let ctx = Routing.make (Topology.torus [| 4; 4 |]) in
      let rng = Util.Rng.create seed in
      let flows =
        Array.init nf (fun i ->
            let src = Util.Rng.int rng 16 in
            let dst = (src + 1 + Util.Rng.int rng 15) mod 16 in
            let proto = if i mod 2 = 0 then Routing.Vlb else Routing.Wlb in
            Congestion.Waterfill.flow ~id:i (Routing.fractions ctx proto ~src ~dst))
      in
      let capacities = Array.make (Topology.link_count (Routing.topo ctx)) 1.25 in
      let a = allocate ~headroom:0.05 ~capacities flows in
      let b = allocate_reference ~headroom:0.05 ~capacities flows in
      Array.for_all2 (fun x y -> abs_float (x -. y) <= 1e-6 *. (1.0 +. abs_float y)) a b)

(* -- channel load --------------------------------------------------------- *)

let channel_load_uniform_rps () =
  let ctx = Routing.make (Topology.torus [| 8; 8 |]) in
  let flows = Workload.Pattern.flows (Routing.topo ctx) Workload.Pattern.Uniform in
  let v = U.to_float (Congestion.Channel_load.capacity_fraction ctx Routing.Rps flows) in
  Alcotest.(check bool) "uniform RPS ~ 1.0" true (abs_float (v -. 1.0) < 0.05)

let channel_load_vlb_half () =
  let ctx = Routing.make (Topology.torus [| 8; 8 |]) in
  List.iter
    (fun pattern ->
      let flows = Workload.Pattern.flows (Routing.topo ctx) pattern in
      let v = U.to_float (Congestion.Channel_load.capacity_fraction ctx Routing.Vlb flows) in
      Alcotest.(check bool)
        (Printf.sprintf "VLB = 0.5 on %s" (Workload.Pattern.name pattern))
        true
        (abs_float (v -. 0.5) < 0.05))
    [ Workload.Pattern.Uniform; Workload.Pattern.Tornado; Workload.Pattern.Nearest_neighbor ]

let channel_load_tornado_dor () =
  let ctx = Routing.make (Topology.torus [| 8; 8 |]) in
  let flows = Workload.Pattern.flows (Routing.topo ctx) Workload.Pattern.Tornado in
  let v = U.to_float (Congestion.Channel_load.capacity_fraction ctx Routing.Dor flows) in
  Alcotest.(check bool) "tornado DOR ~ 1/3" true (abs_float (v -. (1.0 /. 3.0)) < 0.02)

let channel_load_nn_minimal () =
  let ctx = Routing.make (Topology.torus [| 8; 8 |]) in
  let flows = Workload.Pattern.flows (Routing.topo ctx) Workload.Pattern.Nearest_neighbor in
  let v = U.to_float (Congestion.Channel_load.capacity_fraction ctx Routing.Rps flows) in
  Alcotest.(check (float 1e-6)) "nearest neighbor = 4" 4.0 v

(* -- demand estimation ---------------------------------------------------- *)

let demand_estimator_converges () =
  let d = Congestion.Demand.create ~period_ns:1000 () in
  (* Flow allocated 1 B/ns but queuing 500 B per period: demand 1.5. *)
  for _ = 1 to 20 do
    Congestion.Demand.observe d ~rate:(U.byte_rate 1.0) ~queued_bytes:(U.bytes 500.0)
  done;
  let est = U.to_float (Congestion.Demand.estimate d) in
  Alcotest.(check bool) "estimate near 1.5" true (abs_float (est -. 1.5) < 0.01)

let demand_host_limited_detection () =
  let d = Congestion.Demand.create ~period_ns:1000 () in
  Congestion.Demand.observe d ~rate:(U.byte_rate 0.4) ~queued_bytes:(U.bytes 0.0);
  Alcotest.(check bool) "host limited vs 1.0 allocation" true
    (Congestion.Demand.is_host_limited d ~allocation:(U.byte_rate 1.0));
  Alcotest.(check bool) "not limited vs 0.3" false
    (Congestion.Demand.is_host_limited d ~allocation:(U.byte_rate 0.3))

let suites =
  [
    ( "congestion.waterfill",
      [
        tc "single flow takes the link" single_flow_gets_capacity;
        tc "two flows share equally" two_flows_share_equally;
        tc "weights respected" weighted_sharing;
        tc "headroom subtracted" headroom_respected;
        tc "demand caps rate" demand_caps_rate;
        tc "strict priority" priority_rounds;
        tc "priority leftover flows down" priority_with_demand_leftover;
        tc "paper Fig.4 example = {2/3, 2/3}" paper_fig4_example;
        tc "multi-link bottleneck chain" multilink_bottleneck;
        tc "fractional link loads" fractional_load;
        tc "empty flow list" empty_flow_list;
        tc "invalid inputs rejected" invalid_inputs_rejected;
        QCheck_alcotest.to_alcotest qcheck_capacity_feasible;
        QCheck_alcotest.to_alcotest qcheck_fast_equals_reference;
        QCheck_alcotest.to_alcotest qcheck_fast_equals_reference_dense;
        QCheck_alcotest.to_alcotest qcheck_max_min_property;
        QCheck_alcotest.to_alcotest qcheck_demand_never_exceeded;
      ] );
    ( "congestion.channel_load",
      [
        tc "uniform RPS saturates at capacity" channel_load_uniform_rps;
        tc "VLB = 0.5 on any pattern" channel_load_vlb_half;
        tc "tornado DOR = 1/3" channel_load_tornado_dor;
        tc "nearest-neighbor minimal = 4" channel_load_nn_minimal;
      ] );
    ( "congestion.demand",
      [
        tc "estimator converges to rate + queue/T" demand_estimator_converges;
        tc "host-limited detection" demand_host_limited_detection;
      ] );
  ]
