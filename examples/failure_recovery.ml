(* Failure handling (§3.2): when topology discovery reports a failed cable,
   nodes re-broadcast their ongoing flows and the control plane converges
   on the degraded topology.

   Run with: dune exec examples/failure_recovery.exe *)

let () =
  let topo = Topology.torus [| 4; 4 |] in
  let stack = R2c2.Stack.create topo in
  let f1 = R2c2.Stack.open_flow stack ~src:0 ~dst:2 in
  let f2 = R2c2.Stack.open_flow stack ~src:1 ~dst:2 in
  R2c2.Stack.recompute stack;
  Format.printf "before failure: flow %d at %.2f Gbps, flow %d at %.2f Gbps@." f1
    (Util.Units.to_float (R2c2.Stack.rate_gbps stack f1))
    f2
    (Util.Units.to_float (R2c2.Stack.rate_gbps stack f2));
  let rng = Util.Rng.create 3 in
  let path, _ = R2c2.Stack.sample_packet_route stack f1 rng in
  Format.printf "flow %d path before: [%s]@." f1
    (String.concat " -> " (Array.to_list (Array.map string_of_int path)));

  (* The cable between 1 and 2 fails. Topology discovery (which routing
     needs anyway) reports it; every node re-broadcasts its flows. *)
  Format.printf "@.!! link 1 <-> 2 fails@.";
  let degraded = Topology.remove_link topo 1 2 in
  let stack' = R2c2.Stack.create degraded in
  let reannounced = ref 0 in
  R2c2.Stack.on_broadcast stack' (fun b ->
      if b.Wire.event = Wire.Flow_start then incr reannounced);
  (* Rebuild the rack view: the paper's §3.2 — "Upon detecting a failure,
     nodes broadcast information about all their ongoing flows." *)
  let g1 = R2c2.Stack.open_flow stack' ~src:0 ~dst:2 in
  let g2 = R2c2.Stack.open_flow stack' ~src:1 ~dst:2 in
  R2c2.Stack.handle_failure stack';
  Format.printf "re-announced %d ongoing flows over the surviving links@." !reannounced;

  R2c2.Stack.recompute stack';
  Format.printf "after failure: flow %d at %.2f Gbps, flow %d at %.2f Gbps@." g1
    (Util.Units.to_float (R2c2.Stack.rate_gbps stack' g1))
    g2
    (Util.Units.to_float (R2c2.Stack.rate_gbps stack' g2));
  let path', _ = R2c2.Stack.sample_packet_route stack' g2 rng in
  Format.printf "flow %d path after: [%s] (avoids the dead cable)@." g2
    (String.concat " -> " (Array.to_list (Array.map string_of_int path')));

  (* Broadcast trees also avoid the failed link: all 4 per-source trees
     still span the rack. *)
  let b = R2c2.Stack.broadcast stack' in
  let spans tree =
    let count = ref 0 in
    let rec walk v =
      incr count;
      List.iter walk (Broadcast.children b ~src:1 ~tree v)
    in
    walk 1;
    !count = Topology.vertex_count degraded
  in
  let all = List.for_all spans [ 0; 1; 2; 3 ] in
  Format.printf "all broadcast trees still span the rack: %b@." all
