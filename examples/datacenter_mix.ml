(* Datacenter workload mix: the heavy-tailed flow mix of §5.2 on a 216-node
   rack, comparing R2C2's packet-level behavior with the TCP baseline.

   Run with: dune exec examples/datacenter_mix.exe *)

let () =
  let topo = Topology.torus [| 6; 6; 6 |] in
  let rng = Util.Rng.create 42 in
  let flows = 400 in
  (* Pareto(1.05, mean 100 KB) sizes, Poisson arrivals every 1 us: ~95% of
     flows are mice, most bytes ride in elephants. *)
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows ~mean_interarrival_ns:1_000.0 in
  let short = Util.Units.to_float (Workload.Flowgen.short_fraction specs ~threshold:100_000) in
  let small = Util.Units.to_float (Workload.Flowgen.bytes_in_small specs ~threshold:100_000) in
  Format.printf "workload: %d flows, %.0f%% short (<100 KB), %.0f%% of bytes in short flows@."
    flows (100.0 *. short) (100.0 *. small);

  Format.printf "simulating R2C2 (rate-based, packet spraying)...@.";
  let r2c2 = Sim.R2c2_sim.run Sim.R2c2_sim.default_config topo specs in
  Format.printf "simulating TCP (window-based, ECMP single path)...@.";
  let tcp = Sim.Tcp_sim.run Sim.Tcp_sim.default_config topo specs in

  let report name (metrics : Sim.Metrics.t) max_queue drops =
    let short = Sim.Metrics.fcts_us ~max_size:100_000 metrics in
    let long = Util.Units.floats_of (Sim.Metrics.throughputs_gbps ~min_size:1_000_000 metrics) in
    Format.printf "%s:@." name;
    Format.printf "  completed %d/%d flows, %d drops@." (Sim.Metrics.completed_count metrics)
      flows drops;
    Format.printf "  short-flow FCT: p50 %.1f us, p99 %.1f us@."
      (Util.Stats.percentile short 50.0) (Util.Stats.percentile short 99.0);
    if Array.length long > 0 then
      Format.printf "  long-flow throughput: mean %.2f Gbps@." (Util.Stats.mean long);
    let q = Array.map float_of_int max_queue in
    Format.printf "  max queue: median %.1f KB, p99 %.1f KB@."
      (Util.Stats.percentile q 50.0 /. 1024.0)
      (Util.Stats.percentile q 99.0 /. 1024.0)
  in
  report "R2C2" r2c2.Sim.R2c2_sim.metrics r2c2.Sim.R2c2_sim.max_queue r2c2.Sim.R2c2_sim.drops;
  report "TCP" tcp.Sim.Tcp_sim.metrics tcp.Sim.Tcp_sim.max_queue tcp.Sim.Tcp_sim.drops;
  let ctrl = Util.Units.to_float r2c2.Sim.R2c2_sim.control_wire_bytes in
  let data = Util.Units.to_float r2c2.Sim.R2c2_sim.data_wire_bytes in
  Format.printf "R2C2 broadcast overhead: %.2f%% of wire traffic@."
    (100.0 *. ctrl /. (ctrl +. data))
