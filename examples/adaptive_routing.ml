(* Adaptive routing selection (§3.4): long flows start on minimal routing;
   the stack periodically searches per-flow protocol assignments with a
   genetic algorithm to maximize aggregate throughput.

   Run with: dune exec examples/adaptive_routing.exe *)

let () =
  let topo = Topology.torus [| 4; 4; 4 |] in
  let stack = R2c2.Stack.create topo in
  Format.printf "rack: %a@." Topology.pp topo;

  (* A permutation of long-running flows at moderate load: enough spare
     capacity that detouring some flows (VLB) pays off. *)
  let rng = Util.Rng.create 3 in
  let specs =
    Workload.Flowgen.permutation_long_flows topo rng ~load:(Util.Units.fraction 0.25)
  in
  List.iter
    (fun (s : Workload.Flowgen.spec) -> ignore (R2c2.Stack.open_flow stack ~src:s.src ~dst:s.dst))
    specs;
  Format.printf "opened %d long-running flows, all on RPS (minimal routing)@."
    (List.length specs);

  R2c2.Stack.recompute stack;
  let before = Util.Units.to_float (R2c2.Stack.aggregate_throughput_gbps stack) in
  Format.printf "aggregate throughput, all-RPS: %.1f Gbps@." before;

  let changes = ref [] in
  R2c2.Stack.on_broadcast stack (fun b ->
      if b.Wire.event = Wire.Route_change then
        changes := (b.Wire.bsrc, b.Wire.bdst, b.Wire.rp) :: !changes);

  let changed = R2c2.Stack.reselect_routing ~generations:20 stack (Util.Rng.create 11) in
  R2c2.Stack.recompute stack;
  let after = Util.Units.to_float (R2c2.Stack.aggregate_throughput_gbps stack) in

  Format.printf "GA reselection moved %d flows to a different protocol:@." changed;
  List.iter
    (fun (s, d, rp) ->
      Format.printf "  flow %d -> %d now routed with %a@." s d Routing.pp_protocol rp)
    (List.rev !changes);
  Format.printf "aggregate throughput, adaptive: %.1f Gbps (%+.1f%%)@." after
    (100.0 *. (after -. before) /. before);

  (* Compare with the uniform baselines the paper plots in Fig. 18, under
     the same headroom the stack allocates with. *)
  let ctx = R2c2.Stack.routing stack in
  let sel =
    Genetic.Selector.make ~headroom:(R2c2.Stack.config stack).R2c2.Stack.headroom ctx
      ~link_gbps:(Util.Units.gbps 10.0)
  in
  let flows =
    Array.of_list (List.map (fun (s : Workload.Flowgen.spec) -> (s.src, s.dst)) specs)
  in
  Format.printf "baselines: all-RPS %.1f Gbps, all-VLB %.1f Gbps@."
    (Util.Units.to_float (Genetic.Selector.uniform sel ~flows Routing.Rps))
    (Util.Units.to_float (Genetic.Selector.uniform sel ~flows Routing.Vlb))
