(* Allocation flexibility (goal G4, §3.3.2 "Beyond per-flow fairness"):
   per-tenant weights and deadline-style priorities map onto the stack's
   weight/priority primitives.

   Run with: dune exec examples/tenant_isolation.exe *)

let () =
  let topo = Topology.torus [| 4; 4 |] in
  let stack = R2c2.Stack.create topo in

  (* Tenant A pays for 3x the share of tenant B; both run two flows into
     the same storage node 0, so the incoming links are the bottleneck.
     High-level policies map onto weight/priority via R2c2.Policy
     (§3.3.2). *)
  let a = R2c2.Policy.tenant_share ~weight:3 in
  let b = R2c2.Policy.tenant_share ~weight:1 in
  let open_with (d : R2c2.Policy.directive) ~src ~dst =
    R2c2.Stack.open_flow ~weight:d.R2c2.Policy.weight ~priority:d.R2c2.Policy.priority stack
      ~src ~dst
  in
  let a1 = open_with a ~src:1 ~dst:0 in
  let a2 = open_with a ~src:2 ~dst:0 in
  let b1 = open_with b ~src:5 ~dst:0 in
  let b2 = open_with b ~src:6 ~dst:0 in
  R2c2.Stack.recompute stack;

  let show name id =
    Format.printf "  %s: %5.2f Gbps@." name (Util.Units.to_float (R2c2.Stack.rate_gbps stack id))
  in
  Format.printf "weighted sharing (tenant A weight 3, tenant B weight 1):@.";
  show "A flow 1" a1;
  show "A flow 2" a2;
  show "B flow 1" b1;
  show "B flow 2" b2;
  let ta =
    Util.Units.to_float (Util.Units.add (R2c2.Stack.rate_gbps stack a1) (R2c2.Stack.rate_gbps stack a2))
  in
  let tb =
    Util.Units.to_float (Util.Units.add (R2c2.Stack.rate_gbps stack b1) (R2c2.Stack.rate_gbps stack b2))
  in
  Format.printf "tenant totals: A %.2f Gbps vs B %.2f Gbps (ratio %.2f)@." ta tb (ta /. tb);

  (* A deadline-critical RPC burst: 1 MB due within 1.5 ms maps to an
     urgent priority band; background replication sits below every band. *)
  Format.printf
    "@.adding a deadline flow (1 MB in 1.5 ms) and background replication:@.";
  let link_gbps = (R2c2.Stack.config stack).R2c2.Stack.link_gbps in
  let d = R2c2.Policy.deadline ~size_bytes:1_000_000 ~deadline_ns:1_500_000 ~link_gbps in
  let rpc = open_with d ~src:9 ~dst:10 in
  let bulk = open_with R2c2.Policy.background ~src:9 ~dst:10 in
  R2c2.Stack.recompute stack;
  show "RPC (deadline)" rpc;
  show "bulk (scavenger)" bulk;
  Format.printf "  deadline met: %b@."
    (R2c2.Policy.meets_deadline ~size_bytes:1_000_000 ~deadline_ns:1_500_000
       ~rate_gbps:(R2c2.Stack.rate_gbps stack rpc));

  (* When the RPC flow declares a small demand, the bulk flow soaks up the
     leftover capacity on the same path. *)
  R2c2.Stack.set_demand stack rpc ~gbps:(Some (Util.Units.gbps 2.0));
  R2c2.Stack.recompute stack;
  Format.printf "@.after the RPC flow declares a 2 Gbps demand:@.";
  show "RPC (deadline)" rpc;
  show "bulk (scavenger)" bulk
