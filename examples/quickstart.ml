(* Quickstart: build a rack, open a few flows, and watch the R2C2 control
   plane allocate rates.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 64-node rack wired as a 4x4x4 3D torus with 10 Gbps links. *)
  let topo = Topology.torus [| 4; 4; 4 |] in
  Format.printf "rack: %a@." Topology.pp topo;
  Format.printf "average distance: %.2f hops, diameter %d@."
    (Topology.average_distance topo) (Topology.diameter topo);

  let stack = R2c2.Stack.create topo in

  (* Observe the 16-byte broadcasts the stack emits for every flow event. *)
  R2c2.Stack.on_broadcast stack (fun b ->
      let kind =
        match b.Wire.event with
        | Wire.Flow_start -> "start"
        | Wire.Flow_finish -> "finish"
        | Wire.Demand_update -> "demand"
        | Wire.Route_change -> "route"
      in
      Format.printf "  broadcast: %-6s %d -> %d via tree %d (%a)@." kind b.Wire.bsrc
        b.Wire.bdst b.Wire.tree Routing.pp_protocol b.Wire.rp);

  (* Three flows: two compete for node 0, the third is off on its own. *)
  Format.printf "opening flows...@.";
  let f1 = R2c2.Stack.open_flow stack ~src:1 ~dst:0 in
  let f2 = R2c2.Stack.open_flow stack ~src:2 ~dst:0 in
  let f3 = R2c2.Stack.open_flow ~protocol:Routing.Vlb stack ~src:40 ~dst:63 in

  (* Every node can compute the same allocation locally — no probing. *)
  R2c2.Stack.recompute stack;
  Format.printf "allocations after one rate computation:@.";
  List.iter
    (fun (id, gbps) -> Format.printf "  flow %d: %6.2f Gbps@." id (Util.Units.to_float gbps))
    (R2c2.Stack.allocations stack);
  Format.printf "aggregate: %.2f Gbps, control traffic so far: %d bytes@."
    (Util.Units.to_float (R2c2.Stack.aggregate_throughput_gbps stack))
    (R2c2.Stack.control_bytes_sent stack);

  (* The data plane is source routing: sample a packet path for flow 1 and
     show the wire header that would carry it. *)
  let rng = Util.Rng.create 7 in
  let path, selectors = R2c2.Stack.sample_packet_route stack f1 rng in
  Format.printf "a packet of flow %d takes path [%s]@." f1
    (String.concat " -> " (Array.to_list (Array.map string_of_int path)));
  let header =
    {
      Wire.flow = f1;
      src = 1;
      dst = 0;
      seq = 0;
      plen = 1465;
      route = selectors;
      ridx = 0;
    }
  in
  let bytes = Wire.encode_data header in
  Format.printf "encoded header: %d bytes, checksum-protected@." (Bytes.length bytes);

  (* A host-limited flow announces its demand so others can use the slack. *)
  R2c2.Stack.set_demand stack f1 ~gbps:(Some (Util.Units.gbps 1.0));
  R2c2.Stack.recompute stack;
  Format.printf "after flow %d declares a 1 Gbps demand:@." f1;
  List.iter
    (fun (id, gbps) -> Format.printf "  flow %d: %6.2f Gbps@." id (Util.Units.to_float gbps))
    (R2c2.Stack.allocations stack);

  R2c2.Stack.close_flow stack f1;
  R2c2.Stack.close_flow stack f2;
  R2c2.Stack.close_flow stack f3;
  Format.printf "done.@."
