(* r2c2 — command-line interface to the rack-scale network stack.

   Subcommands:
     topo       inspect a topology
     analyze    channel-load analysis of routing protocols under a pattern
     simulate   run a workload through a transport and report statistics
     broadcast  broadcast-overhead analysis
     select     GA routing-protocol selection for long flows
     trace      generate a workload trace file

   Examples:
     r2c2_cli topo --dims 8x8x8
     r2c2_cli analyze --dims 8x8 --pattern tornado
     r2c2_cli simulate --transport tcp --dims 6x6x6 --flows 500 --tau-us 1
     r2c2_cli select --dims 4x4x4 --load 0.25 *)

open Cmdliner

(* -- shared argument parsing -------------------------------------------- *)

let dims_conv =
  let parse s =
    try
      let parts = String.split_on_char 'x' s in
      let dims = Array.of_list (List.map int_of_string parts) in
      if Array.length dims = 0 then Error (`Msg "empty dimension list")
      else Ok dims
    with Failure _ -> Error (`Msg (Printf.sprintf "bad dimensions %S (use e.g. 4x4x4)" s))
  in
  let print ppf dims =
    Format.pp_print_string ppf
      (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
  in
  Arg.conv (parse, print)

let dims_arg =
  Arg.(value & opt dims_conv [| 4; 4; 4 |] & info [ "dims" ] ~docv:"KxKxK" ~doc:"Torus dimensions.")

let mesh_arg =
  Arg.(value & flag & info [ "mesh" ] ~doc:"Use a mesh (no wraparound) instead of a torus.")

let fb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fb" ] ~docv:"K" ~doc:"Use a KxK flattened butterfly instead of a torus.")

let clos_arg =
  Arg.(
    value
    & opt (some dims_conv) None
    & info [ "clos" ] ~docv:"LxSxP"
        ~doc:"Use a folded Clos: L leaves x S spines x P servers per leaf.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
let flows_arg = Arg.(value & opt int 500 & info [ "flows" ] ~docv:"N" ~doc:"Number of flows.")

let tau_arg =
  Arg.(value & opt float 1.0 & info [ "tau-us" ] ~docv:"US" ~doc:"Mean flow inter-arrival time (µs).")

let make_topo dims mesh fb clos =
  match (fb, clos) with
  | Some k, _ -> Topology.flattened_butterfly k
  | None, Some [| l; s; p |] -> Topology.clos ~leaves:l ~spines:s ~servers_per_leaf:p
  | None, Some _ -> invalid_arg "--clos expects LxSxP"
  | None, None -> if mesh then Topology.mesh dims else Topology.torus dims

(* -- topo ----------------------------------------------------------------- *)

let topo_cmd =
  let run dims mesh fb clos =
    let t = make_topo dims mesh fb clos in
    Format.printf "%a@." Topology.pp t;
    Format.printf "  vertices        : %d@." (Topology.vertex_count t);
    Format.printf "  directed links  : %d@." (Topology.link_count t);
    Format.printf "  diameter        : %d hops@." (Topology.diameter t);
    Format.printf "  average distance: %.2f hops@." (Topology.average_distance t);
    Format.printf "  bisection links : %d@." (Topology.bisection_links t);
    Format.printf "  broadcast bytes : %d per flow event@." (Broadcast.bytes_per_broadcast t)
  in
  Cmd.v (Cmd.info "topo" ~doc:"Inspect a rack topology.")
    Term.(const run $ dims_arg $ mesh_arg $ fb_arg $ clos_arg)

(* -- analyze -------------------------------------------------------------- *)

let pattern_conv =
  Arg.enum
    [
      ("uniform", Workload.Pattern.Uniform);
      ("nearest-neighbor", Workload.Pattern.Nearest_neighbor);
      ("bit-complement", Workload.Pattern.Bit_complement);
      ("transpose", Workload.Pattern.Transpose);
      ("tornado", Workload.Pattern.Tornado);
    ]

let analyze_cmd =
  let run dims mesh fb clos pattern =
    let t = make_topo dims mesh fb clos in
    let ctx = Routing.make t in
    let flows = Workload.Pattern.flows t pattern in
    Format.printf "%s on %a — saturation throughput (fraction of bisection capacity):@."
      (Workload.Pattern.name pattern) Topology.pp t;
    List.iter
      (fun proto ->
        Format.printf "  %-4s %.3f@."
          (Routing.protocol_name proto)
          (Util.Units.to_float (Congestion.Channel_load.capacity_fraction ctx proto flows)))
      Routing.all_protocols
  in
  let pattern_arg =
    Arg.(
      value
      & opt pattern_conv Workload.Pattern.Uniform
      & info [ "pattern" ] ~docv:"PATTERN" ~doc:"Traffic pattern.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Channel-load analysis of the routing protocols under a pattern.")
    Term.(const run $ dims_arg $ mesh_arg $ fb_arg $ clos_arg $ pattern_arg)

(* -- simulate -------------------------------------------------------------- *)

type transport = R2c2 | Tcp | Pfq | Fluid

let transport_conv =
  Arg.enum [ ("r2c2", R2c2); ("tcp", Tcp); ("pfq", Pfq); ("fluid", Fluid) ]

let pp_band name fcts tputs =
  if Array.length fcts > 0 then
    Format.printf "  %s FCT      : p50 %.1f us, p95 %.1f us, p99 %.1f us@." name
      (Util.Stats.percentile fcts 50.0) (Util.Stats.percentile fcts 95.0)
      (Util.Stats.percentile fcts 99.0);
  if Array.length tputs > 0 then
    Format.printf "  %s thruput  : mean %.2f Gbps@." name (Util.Stats.mean tputs)

let report_metrics total (m : Sim.Metrics.t) =
  Format.printf "  completed        : %d / %d flows@." (Sim.Metrics.completed_count m) total;
  pp_band "short" (Sim.Metrics.fcts_us ~max_size:100_000 m) [||];
  pp_band "long " [||] (Util.Units.floats_of (Sim.Metrics.throughputs_gbps ~min_size:1_000_000 m));
  pp_band "all  " (Sim.Metrics.fcts_us m) (Util.Units.floats_of (Sim.Metrics.throughputs_gbps m))

let report_queues q =
  let kb = Array.map (fun b -> float_of_int b /. 1024.0) q in
  Format.printf "  max queue        : median %.1f KB, p99 %.1f KB@."
    (Util.Stats.percentile kb 50.0) (Util.Stats.percentile kb 99.0)

let simulate_cmd =
  let run dims mesh fb clos transport flows tau_us size seed headroom rho_us per_node reselect
      trace_file =
    let t = make_topo dims mesh fb clos in
    let rng = Util.Rng.create seed in
    let tau = tau_us *. 1000.0 in
    let specs =
      match trace_file with
      | Some path ->
          List.filter_map
            (function Workload.Trace.Arrive s -> Some s | Workload.Trace.Depart _ -> None)
            (Workload.Trace.load path)
      | None ->
          if size > 0 then
            Workload.Flowgen.fixed_size t rng ~flows ~size ~mean_interarrival_ns:tau
          else Workload.Flowgen.poisson_pareto t rng ~flows ~mean_interarrival_ns:tau
    in
    let total = List.length specs in
    Format.printf "simulating %d flows on %a (%s)@." total Topology.pp t
      (match transport with R2c2 -> "R2C2" | Tcp -> "TCP" | Pfq -> "PFQ" | Fluid -> "fluid emu");
    (match transport with
    | R2c2 ->
        let cfg =
          {
            Sim.R2c2_sim.default_config with
            seed;
            headroom;
            recompute_interval_ns = int_of_float (rho_us *. 1000.0);
            control = (if per_node then Sim.R2c2_sim.Per_node else Sim.R2c2_sim.Global_epoch);
            reselect_interval_ns =
              (if reselect > 0.0 then Some (int_of_float (reselect *. 1000.0)) else None);
          }
        in
        let res = Sim.R2c2_sim.run cfg t specs in
        report_metrics total res.Sim.R2c2_sim.metrics;
        report_queues res.Sim.R2c2_sim.max_queue;
        let ctrl = Util.Units.to_float res.Sim.R2c2_sim.control_wire_bytes in
        let data = Util.Units.to_float res.Sim.R2c2_sim.data_wire_bytes in
        Format.printf "  control traffic  : %.0f bytes on wire (%.2f%% of total)@." ctrl
          (100.0 *. ctrl /. Float.max 1.0 (ctrl +. data));
        Format.printf "  rate recomputes  : %d@." res.Sim.R2c2_sim.recomputes;
        if res.Sim.R2c2_sim.reselections > 0 then
          Format.printf "  reselections     : %d rounds, %d flows rerouted@."
            res.Sim.R2c2_sim.reselections res.Sim.R2c2_sim.flows_rerouted
    | Tcp ->
        let res = Sim.Tcp_sim.run { Sim.Tcp_sim.default_config with seed } t specs in
        report_metrics total res.Sim.Tcp_sim.metrics;
        report_queues res.Sim.Tcp_sim.max_queue;
        Format.printf "  drops / retx     : %d / %d@." res.Sim.Tcp_sim.drops
          res.Sim.Tcp_sim.retransmits
    | Pfq ->
        let results = Sim.Pfq_sim.run { Sim.Pfq_sim.default_config with seed } t specs in
        Format.printf "  completed        : %d / %d flows@." (List.length results) total;
        let fcts =
          Array.of_list
            (List.map (fun (r : Sim.Pfq_sim.flow_result) -> float_of_int r.fct_ns /. 1000.0) results)
        in
        pp_band "all  " fcts
          (Array.of_list
             (List.map
                (fun (r : Sim.Pfq_sim.flow_result) -> Util.Units.to_float r.throughput_gbps)
                results))
    | Fluid ->
        let cfg =
          {
            Emu.Fluid.default_config with
            seed;
            headroom;
            recompute_interval_ns = int_of_float (rho_us *. 1000.0);
          }
        in
        let res = Emu.Fluid.run cfg t specs in
        Format.printf "  completed        : %d / %d flows@." (List.length res.Emu.Fluid.flows)
          total;
        let fcts =
          Array.of_list
            (List.map
               (fun (r : Emu.Fluid.flow_result) -> float_of_int r.fct_ns /. 1000.0)
               res.Emu.Fluid.flows)
        in
        pp_band "all  " fcts
          (Array.of_list
             (List.map
                (fun (r : Emu.Fluid.flow_result) -> Util.Units.to_float r.avg_rate_gbps)
                res.Emu.Fluid.flows)))
  in
  let transport_arg =
    Arg.(value & opt transport_conv R2c2 & info [ "transport" ] ~docv:"T" ~doc:"r2c2, tcp, pfq or fluid.")
  in
  let size_arg =
    Arg.(value & opt int 0 & info [ "size" ] ~docv:"BYTES" ~doc:"Fixed flow size (0 = Pareto mix).")
  in
  let headroom_arg =
    Arg.(value & opt float 0.05 & info [ "headroom" ] ~docv:"F" ~doc:"Bandwidth headroom fraction.")
  in
  let rho_arg =
    Arg.(value & opt float 500.0 & info [ "rho-us" ] ~docv:"US" ~doc:"Rate recomputation interval (µs).")
  in
  let per_node_arg =
    Arg.(value & flag & info [ "per-node" ] ~doc:"Per-node decentralized rate computation (R2C2).")
  in
  let reselect_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "reselect-us" ] ~docv:"US"
          ~doc:"Routing-reselection interval in µs (0 = off; R2C2 only).")
  in
  let trace_arg =
    Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc:"Replay a trace file.")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a workload through a transport.")
    Term.(
      const run $ dims_arg $ mesh_arg $ fb_arg $ clos_arg $ transport_arg $ flows_arg $ tau_arg
      $ size_arg $ seed_arg
      $ (const Util.Units.fraction $ headroom_arg)
      $ rho_arg $ per_node_arg $ reselect_arg $ trace_arg)

(* -- broadcast -------------------------------------------------------------- *)

let broadcast_cmd =
  let run dims mesh fb clos =
    let t = make_topo dims mesh fb clos in
    Format.printf "broadcast overhead on %a:@." Topology.pp t;
    Format.printf "  %d bytes on the wire per flow event@." (Broadcast.bytes_per_broadcast t);
    Format.printf "  relative overhead of a 10 KB flow: %.1f%%@."
      (100.0 *. Broadcast.relative_flow_overhead t ~flow_bytes:10_000);
    Format.printf "  %% of capacity vs small-flow byte share (10 KB / 35 MB mix):@.";
    List.iter
      (fun frac ->
        Format.printf "    %3.0f%% small bytes -> %5.2f%%@." (100.0 *. frac)
          (100.0
          *. Broadcast.analytic_overhead t ~frac_small_bytes:frac ~small_size:10_000
               ~large_size:35_000_000))
      [ 0.01; 0.05; 0.1; 0.2; 0.5 ]
  in
  Cmd.v (Cmd.info "broadcast" ~doc:"Broadcast-overhead analysis.")
    Term.(const run $ dims_arg $ mesh_arg $ fb_arg $ clos_arg)

(* -- select ------------------------------------------------------------------ *)

let select_cmd =
  let run dims mesh fb clos load seed generations =
    let t = make_topo dims mesh fb clos in
    let ctx = Routing.make t in
    let sel = Genetic.Selector.make ctx ~link_gbps:(Util.Units.gbps 10.0) in
    let rng = Util.Rng.create seed in
    let specs = Workload.Flowgen.permutation_long_flows t rng ~load:(Util.Units.fraction load) in
    let flows =
      Array.of_list (List.map (fun (s : Workload.Flowgen.spec) -> (s.src, s.dst)) specs)
    in
    if Array.length flows = 0 then Format.printf "no flows at load %.2f@." load
    else begin
      let init = Array.make (Array.length flows) Routing.Rps in
      let rps = Util.Units.to_float (Genetic.Selector.uniform sel ~flows Routing.Rps) in
      let vlb = Util.Units.to_float (Genetic.Selector.uniform sel ~flows Routing.Vlb) in
      let assignment, adaptive_q = Genetic.Selector.select ~generations sel rng ~flows ~init in
      let adaptive = Util.Units.to_float adaptive_q in
      Format.printf "%d long flows at load %.2f on %a@." (Array.length flows) load Topology.pp t;
      Format.printf "  all-RPS : %8.1f Gbps@." rps;
      Format.printf "  all-VLB : %8.1f Gbps@." vlb;
      Format.printf "  adaptive: %8.1f Gbps (%d flows on VLB)@." adaptive
        (Array.fold_left (fun n p -> if p = Routing.Vlb then n + 1 else n) 0 assignment)
    end
  in
  let load_arg =
    Arg.(value & opt float 0.5 & info [ "load" ] ~docv:"F" ~doc:"Fraction of hosts sourcing a flow.")
  in
  let gen_arg =
    Arg.(value & opt int 20 & info [ "generations" ] ~docv:"N" ~doc:"GA generations.")
  in
  Cmd.v (Cmd.info "select" ~doc:"Adaptive per-flow routing-protocol selection.")
    Term.(const run $ dims_arg $ mesh_arg $ fb_arg $ clos_arg $ load_arg $ seed_arg $ gen_arg)

(* -- trace ------------------------------------------------------------------- *)

let trace_cmd =
  let run dims mesh fb clos flows tau_us seed out =
    let t = make_topo dims mesh fb clos in
    let rng = Util.Rng.create seed in
    let specs =
      Workload.Flowgen.poisson_pareto t rng ~flows ~mean_interarrival_ns:(tau_us *. 1000.0)
    in
    Workload.Trace.save out (Workload.Trace.of_specs specs);
    Format.printf "wrote %d arrivals to %s@." flows out
  in
  let out_arg =
    Arg.(value & opt string "workload.trace" & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Generate a workload trace file.")
    Term.(const run $ dims_arg $ mesh_arg $ fb_arg $ clos_arg $ flows_arg $ tau_arg $ seed_arg $ out_arg)

let () =
  let doc = "R2C2: a network stack for rack-scale computers" in
  let info = Cmd.info "r2c2_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ topo_cmd; analyze_cmd; simulate_cmd; broadcast_cmd; select_cmd; trace_cmd ]))
