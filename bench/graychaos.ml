(* Gray-failure chaos bench (writes BENCH_graychaos.json) -----------------
   The PR 7 robustness story end to end on the paper's 8x8x8 torus: a
   permutation workload runs while one node crash-restarts (losing all
   soft state and rejoining cold through the JOIN / snapshot-request
   protocol) and two cables turn gray — intermittently lossy at a rate
   the health estimator must notice and quarantine. The whole timeline is
   a {!Sim.Scenario} with every invariant monitor armed; the run exits
   non-zero if a monitor fires, goodput retention against the unfailed
   baseline drops below 95%, the rejoin takes longer than the bound, or
   two same-seed runs differ byte for byte. *)

let dims = [| 8; 8; 8 |]

type outcome = {
  completed : int;
  aborted : int list;
  flaky_lost : int;
  quarantines : int;
  probations : int;
  recoveries : int;
  joins_sent : int;
  rejoins : (int * int * int) list;
  retransmissions : int;
  syncs : int;
  violations : string list;
  checks : int;
  worst_staleness_ns : int;
  makespan_ns : int;
  series : (int * int) array;  (** 10 us goodput buckets *)
  snapshot : string;  (** byte-exact digest for the determinism check *)
}

let delivered_by o t_ns =
  Array.fold_left (fun acc (b, bytes) -> if b < t_ns then acc + bytes else acc) 0 o.series

(* Deterministic cable pick: vertex [v] and its first out-neighbor. *)
let cable topo v = fst (Topology.out_links topo v).(0)

let mk_sim ~size ~interval =
  let topo = Topology.torus dims in
  let h = Topology.host_count topo in
  (* Global-epoch control at the paper's 512-node scale (a per-node
     waterfill for all 512 views every rate epoch is minutes of wall
     clock; the Per_node rejoin path runs at test scale in
     test_robustness.ml). Reliable broadcast is on: the crash-restart
     rejoin protocol rides the digest / NACK / replay machinery. *)
  let cfg =
    {
      Sim.R2c2_sim.default_config with
      reliable_bcast = true;
      recompute_interval_ns = interval;
      digest_interval_ns = 50_000;
      rtx_timeout_ns = 10_000;
      seed = 42;
    }
  in
  let t = Sim.R2c2_sim.create cfg topo in
  Sim.Metrics.set_goodput_bucket (Sim.R2c2_sim.metrics t) ~bucket_ns:10_000;
  for i = 0 to h - 1 do
    ignore (Sim.R2c2_sim.start_flow t ~src:i ~dst:((i + (h / 2) + 3) mod h) ~size)
  done;
  t

let run_scenario ~size ~interval ~name ~invariants steps =
  let t = mk_sim ~size ~interval in
  let violations = ref [] in
  let t0 = Unix.gettimeofday () in
  let report =
    Sim.Scenario.run ~on_violation:(fun m -> violations := m :: !violations) ~invariants t
      steps
  in
  let wall = Unix.gettimeofday () -. t0 in
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  if r.injected_payload <> r.delivered_payload + r.dropped_payload + r.blackholed_payload
  then failwith (name ^ ": payload bytes not conserved");
  let makespan = ref 1 in
  List.iter
    (fun f ->
      if Sim.Metrics.complete r.metrics f then makespan := max !makespan f.Sim.Metrics.finish_ns)
    (Sim.Metrics.all r.metrics);
  let buf = Buffer.create 65536 in
  List.iter
    (fun (f : Sim.Metrics.flow) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %d %d->%d del=%d fin=%d\n" f.id f.src f.dst f.delivered
           f.finish_ns))
    (Sim.Metrics.all r.metrics);
  List.iter
    (fun (node, s, e) -> Buffer.add_string buf (Printf.sprintf "rejoin %d %d %d\n" node s e))
    r.rejoins;
  Buffer.add_string buf
    (Printf.sprintf "flaky=%d/%dB quar=%d prob=%d rec=%d joins=%d rtx=%d nacks=%d syncs=%d\n"
       r.flaky_lost r.flaky_lost_bytes r.quarantines r.probations r.recoveries r.joins_sent
       r.retransmissions r.nacks_sent r.syncs_sent);
  Buffer.add_string buf
    (Printf.sprintf "checks=%d staleness=%d end=%d\n" report.Sim.Scenario.checks
       report.Sim.Scenario.worst_staleness_ns report.Sim.Scenario.end_ns);
  Printf.printf
    "%-10s %3d flows done, %d gray losses, %d quarantines, %d rejoins, %d rtx (%.1fs)\n%!"
    name
    (Sim.Metrics.completed_count r.metrics)
    r.flaky_lost r.quarantines (List.length r.rejoins) r.retransmissions wall;
  {
    completed = Sim.Metrics.completed_count r.metrics;
    aborted = r.aborted_flows;
    flaky_lost = r.flaky_lost;
    quarantines = r.quarantines;
    probations = r.probations;
    recoveries = r.recoveries;
    joins_sent = r.joins_sent;
    rejoins = r.rejoins;
    retransmissions = r.retransmissions;
    syncs = r.syncs_sent;
    violations = List.rev !violations;
    checks = report.Sim.Scenario.checks;
    worst_staleness_ns = report.Sim.Scenario.worst_staleness_ns;
    makespan_ns = !makespan;
    series = Sim.Metrics.goodput_series r.metrics;
    snapshot = Buffer.contents buf;
  }

let run ~quick () =
  let size = if quick then 200_000 else 600_000 in
  let interval = 100_000 in
  let topo = Topology.torus dims in
  let h = Topology.host_count topo in
  let shift = (h / 2) + 3 in
  let detection =
    let tx_16b = 13 in
    2 * Topology.diameter topo * (Sim.R2c2_sim.default_config.hop_latency_ns + tx_16b)
  in
  (* Rejoin bound: the restarted node is detected and re-attached within
     one detection delay, announces its JOIN, pulls snapshots, and closes
     the gap through NACK replay. Completion additionally requires being
     sequence-caught-up with *every* origin at a digest instant, so while
     the other 510 flows are still finishing the rejoiner trails the live
     churn — measured 0.5 ms at smoke size, 1.25 ms at full size. Two
     retry periods plus ten digest rounds bound both with margin while
     staying a small fraction of the run. *)
  let digest = 50_000 in
  let rejoin_bound =
    detection + (2 * Sim.R2c2_sim.default_config.rejoin_retry_ns) + (10 * digest)
  in
  let crashed = 100 in
  let gray1 = (7, cable topo 7) in
  let gray2 = (200, cable topo 200) in
  let steps =
    [
      Sim.Scenario.flaky ~at:20_000 (fst gray1) (snd gray1)
        ~loss:(Util.Units.fraction 0.25) ~spike:(Util.Units.fraction 0.10);
      Sim.Scenario.flaky ~at:25_000 (fst gray2) (snd gray2)
        ~loss:(Util.Units.fraction 0.25) ~spike:(Util.Units.fraction 0.10);
      Sim.Scenario.crash ~at:30_000 crashed;
      Sim.Scenario.restart ~at:150_000 crashed;
      Sim.Scenario.unflaky ~at:400_000 (fst gray1) (snd gray1);
      Sim.Scenario.unflaky ~at:400_000 (fst gray2) (snd gray2);
    ]
  in
  let invariants =
    [
      Sim.Scenario.Byte_conservation;
      Sim.Scenario.No_crashed_traversal;
      Sim.Scenario.Reconverge_within { max_ns = detection + interval + 1_000 };
      Sim.Scenario.View_staleness { max_ns = rejoin_bound; poll_ns = 25_000 };
    ]
  in
  let baseline = run_scenario ~size ~interval ~name:"baseline" ~invariants:[] [] in
  let gray = run_scenario ~size ~interval ~name:"graychaos" ~invariants steps in
  let gray2run = run_scenario ~size ~interval ~name:"replay" ~invariants steps in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter (fun v -> fail "invariant violated: %s" v) gray.violations;
  if gray.checks = 0 then fail "invariant monitors never evaluated";
  (* Exactly the two flows touching the crashed node die with it; every
     other flow rides out both the crash and the gray cables. *)
  let expected_aborted = List.sort Int.compare [ crashed; (crashed - shift + h) mod h ] in
  if gray.aborted <> expected_aborted then
    fail "aborted %s, expected %s"
      (String.concat "," (List.map string_of_int gray.aborted))
      (String.concat "," (List.map string_of_int expected_aborted));
  if gray.completed <> h - 2 then fail "completed %d of %d expected" gray.completed (h - 2);
  if gray.flaky_lost = 0 then fail "gray links lost nothing — injection inert";
  if gray.quarantines < 1 then fail "gray links never quarantined";
  if gray.recoveries < 1 then fail "quarantined links never recovered";
  (* The crash-restart must complete exactly one rejoin, within bound. *)
  let rejoin_times = List.map (fun (_, s, e) -> e - s) gray.rejoins in
  let p99_rejoin = List.fold_left max 0 rejoin_times in
  (match gray.rejoins with
  | [ (node, _, _) ] when node = crashed ->
      if p99_rejoin > rejoin_bound then
        fail "rejoin took %d ns > bound %d ns" p99_rejoin rejoin_bound
  | l -> fail "expected one rejoin of node %d, got %d" crashed (List.length l));
  (* Goodput retention: payload delivered within the baseline's completion
     window, relative to the baseline (byte-weighted, so it captures the
     dip around the faults without being dominated by one straggler). *)
  let base_window = delivered_by baseline baseline.makespan_ns in
  let retention =
    float_of_int (delivered_by gray baseline.makespan_ns) /. float_of_int base_window
  in
  if retention < 0.95 then fail "goodput retention %.4f < 0.95" retention;
  (* Same seed, same timeline: the replay must be byte-identical. *)
  if gray.snapshot <> gray2run.snapshot then fail "same-seed replay diverged from first run";
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"graychaos\",\n\
      \  \"topology\": \"torus-8x8x8\",\n\
      \  \"flows\": %d,\n\
      \  \"flow_bytes\": %d,\n\
      \  \"crashed_node\": %d,\n\
      \  \"gray_links\": [[%d, %d], [%d, %d]],\n\
      \  \"gray_loss\": 0.25,\n\
      \  \"detection_delay_ns\": %d,\n\
      \  \"rejoin_bound_ns\": %d,\n\
      \  \"rejoin_p99_ns\": %d,\n\
      \  \"goodput_retention\": %.4f,\n\
      \  \"flaky_lost_packets\": %d,\n\
      \  \"quarantines\": %d,\n\
      \  \"probations\": %d,\n\
      \  \"link_recoveries\": %d,\n\
      \  \"joins_sent\": %d,\n\
      \  \"syncs\": %d,\n\
      \  \"retransmissions\": %d,\n\
      \  \"invariant_checks\": %d,\n\
      \  \"worst_view_staleness_ns\": %d,\n\
      \  \"violations\": [%s],\n\
      \  \"deterministic\": %b,\n\
      \  \"all_passed\": %b\n\
       }\n"
      h size crashed (fst gray1) (snd gray1) (fst gray2) (snd gray2) detection rejoin_bound
      p99_rejoin retention gray.flaky_lost gray.quarantines gray.probations gray.recoveries
      gray.joins_sent gray.syncs gray.retransmissions gray.checks gray.worst_staleness_ns
      (String.concat ", " (List.map (Printf.sprintf "%S") gray.violations))
      (gray.snapshot = gray2run.snapshot)
      (!failures = [])
  in
  let oc = open_out "BENCH_graychaos.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "graychaos: FAILED: %s\n") (List.rev !failures);
    exit 1
  end;
  Printf.printf "graychaos: crash-restart + 2 gray links survived (rejoin %d ns, retention %.3f)\n"
    p99_rejoin retention
