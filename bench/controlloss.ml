(* Control-loss sweep (writes BENCH_controlloss.json) ---------------------
   The lossy-control-plane story end to end: a permutation workload runs
   under Per_node control (every sender builds its own traffic matrix from
   the broadcasts it receives) while the chaos injector drops, reorders and
   duplicates control packets at swept rates from 0 to 10%. The reliable
   broadcast layer — sequence windows, NACK repair, anti-entropy digests,
   full-state sync — must bring every node's view back to byte-identical
   allocations: the run exits non-zero if any scenario ends with diverged
   views, an unconverged control plane, a lost flow, or (at loss <= 5%) a
   reconvergence sample above the bound. Everything is seed-fixed, so the
   JSON is byte-identical across runs. *)

let dims = [| 4; 4; 4 |]

type outcome = {
  oname : string;
  loss : float;
  reorder : float;
  dup : float;
  completed : int;
  aborted : int;
  ctrl_lost : int;
  ctrl_reordered : int;
  ctrl_dupped : int;
  nacks : int;
  retransmits : int;
  sync_requests : int;
  syncs : int;
  sync_bytes : int;
  dups_absorbed : int;
  divergence_epochs : int;
  reconverge_samples : int list;
  terminal_diverged : int;
  converged : bool;
  final_loss_ewma : float;
  eff_headroom : float;
}

let interval = 100_000

let frac = Util.Units.fraction

let run_scenario ~size ~name ~loss ~reorder ~dup ~flap () =
  let topo = Topology.torus dims in
  let h = Topology.host_count topo in
  let shift = (h / 2) + 3 in
  let cfg =
    {
      Sim.R2c2_sim.default_config with
      control = Sim.R2c2_sim.Per_node;
      reliable_bcast = true;
      recompute_interval_ns = interval;
      digest_interval_ns = 50_000;
      control_loss = (if flap then frac 0.0 else loss);
      control_reorder = (if flap then frac 0.0 else reorder);
      control_dup = (if flap then frac 0.0 else dup);
      seed = 42;
    }
  in
  let t = Sim.R2c2_sim.create cfg topo in
  if flap then begin
    (* Clean start, a lossy middle, clean tail: the run must reconverge
       after each flip, not merely survive a constant rate. *)
    Sim.R2c2_sim.set_control_chaos_at t ~ns:60_000 ~loss ~reorder ~dup;
    Sim.R2c2_sim.set_control_chaos_at t ~ns:400_000 ~loss:(frac 0.0) ~reorder:(frac 0.0)
      ~dup:(frac 0.0)
  end;
  for i = 0 to h - 1 do
    ignore (Sim.R2c2_sim.start_flow t ~src:i ~dst:((i + shift) mod h) ~size)
  done;
  let t0 = Unix.gettimeofday () in
  Sim.R2c2_sim.run_engine t;
  let wall = Unix.gettimeofday () -. t0 in
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  Printf.printf
    "%-10s %3d flows done, %4d ctrl lost, %3d nacks, %3d rtx, %2d syncs, %2d div epochs (%.1fs)\n%!"
    name
    (Sim.Metrics.completed_count r.metrics)
    r.ctrl_lost r.nacks_sent r.event_retransmits r.syncs_sent r.divergence_epochs wall;
  {
    oname = name;
    loss = Util.Units.to_float loss;
    reorder = Util.Units.to_float reorder;
    dup = Util.Units.to_float dup;
    completed = Sim.Metrics.completed_count r.metrics;
    aborted = List.length r.aborted_flows;
    ctrl_lost = r.ctrl_lost;
    ctrl_reordered = r.ctrl_reordered;
    ctrl_dupped = r.ctrl_dupped;
    nacks = r.nacks_sent;
    retransmits = r.event_retransmits;
    sync_requests = r.sync_requests;
    syncs = r.syncs_sent;
    sync_bytes = r.sync_bytes;
    dups_absorbed = r.dup_events_absorbed;
    divergence_epochs = r.divergence_epochs;
    reconverge_samples = r.reconverge_samples;
    terminal_diverged = r.terminal_diverged;
    converged = Sim.R2c2_sim.control_converged t;
    final_loss_ewma = Util.Units.to_float r.loss_ewma;
    eff_headroom = Util.Units.to_float r.effective_headroom;
  }

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n /. 100.0)) - 1))

let run ~quick () =
  let size = if quick then 150_000 else 400_000 in
  let topo = Topology.torus dims in
  let h = Topology.host_count topo in
  let sweep = if quick then [ 0.0; 0.02; 0.05 ] else [ 0.0; 0.01; 0.02; 0.05; 0.10 ] in
  let outcomes =
    List.map
      (fun loss ->
        let name = Printf.sprintf "loss-%g%%" (loss *. 100.0) in
        run_scenario ~size ~name ~loss:(frac loss) ~reorder:(frac 0.0) ~dup:(frac 0.0) ~flap:false ())
      sweep
    @ [
        run_scenario ~size ~name:"mixed" ~loss:(frac 0.02) ~reorder:(frac 0.02) ~dup:(frac 0.01)
          ~flap:false ();
        run_scenario ~size ~name:"flap" ~loss:(frac 0.08) ~reorder:(frac 0.0) ~dup:(frac 0.0)
          ~flap:true ();
      ]
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* Reconvergence bound for moderate loss: a gap must be healed within a
     handful of digest+NACK rounds, i.e. well within 20 rate epochs. *)
  let bound = 20 * interval in
  List.iter
    (fun o ->
      if o.terminal_diverged <> 0 then
        fail "%s: %d nodes still diverged at end of run" o.oname o.terminal_diverged;
      if not o.converged then fail "%s: control plane did not reconverge" o.oname;
      if o.completed <> h || o.aborted <> 0 then
        fail "%s: %d/%d flows completed, %d aborted" o.oname o.completed h o.aborted;
      if o.loss <= 0.05 then
        List.iter
          (fun s ->
            if s > bound then
              fail "%s: reconvergence took %d ns > bound %d ns" o.oname s bound)
          o.reconverge_samples;
      if o.loss = 0.0 && o.reorder = 0.0 && o.dup = 0.0 && o.divergence_epochs <> 0 then
        fail "%s: divergence without chaos" o.oname)
    outcomes;
  let all_samples =
    Array.of_list (List.concat_map (fun o -> o.reconverge_samples) outcomes)
  in
  Array.sort Int.compare all_samples;
  let p50, p95, pmax =
    if Array.length all_samples = 0 then (0, 0, 0)
    else
      ( percentile all_samples 50.0,
        percentile all_samples 95.0,
        percentile all_samples 100.0 )
  in
  let scenario_json o =
    Printf.sprintf
      "    { \"name\": \"%s\", \"loss\": %.2f, \"reorder\": %.2f, \"dup\": %.2f,\n\
      \      \"completed\": %d, \"aborted\": %d, \"ctrl_lost\": %d, \"ctrl_reordered\": %d,\n\
      \      \"ctrl_dupped\": %d, \"nacks\": %d, \"event_retransmits\": %d,\n\
      \      \"sync_requests\": %d, \"syncs_sent\": %d, \"sync_bytes\": %d,\n\
      \      \"dup_events_absorbed\": %d, \"divergence_epochs\": %d,\n\
      \      \"reconverge_ns\": [%s], \"terminal_diverged\": %d, \"converged\": %b,\n\
      \      \"loss_ewma\": %.4f, \"effective_headroom\": %.4f }"
      o.oname o.loss o.reorder o.dup o.completed o.aborted o.ctrl_lost o.ctrl_reordered
      o.ctrl_dupped o.nacks o.retransmits o.sync_requests o.syncs o.sync_bytes
      o.dups_absorbed o.divergence_epochs
      (String.concat ", " (List.map string_of_int o.reconverge_samples))
      o.terminal_diverged o.converged o.final_loss_ewma o.eff_headroom
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"control-loss\",\n\
      \  \"topology\": \"torus-4x4x4\",\n\
      \  \"flows\": %d,\n\
      \  \"flow_bytes\": %d,\n\
      \  \"recompute_interval_ns\": %d,\n\
      \  \"digest_interval_ns\": %d,\n\
      \  \"reconverge_bound_ns\": %d,\n\
      \  \"reconverge_p50_ns\": %d,\n\
      \  \"reconverge_p95_ns\": %d,\n\
      \  \"reconverge_max_ns\": %d,\n\
      \  \"all_converged\": %b,\n\
      \  \"scenarios\": [\n%s\n  ]\n\
       }\n"
      h size interval 50_000 bound p50 p95 pmax (!failures = [])
      (String.concat ",\n" (List.map scenario_json outcomes))
  in
  let oc = open_out "BENCH_controlloss.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "controlloss: FAILED: %s\n") (List.rev !failures);
    exit 1
  end;
  Printf.printf "controlloss: all scenarios reconverged (p95 %d ns)\n" p95
