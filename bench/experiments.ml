(* One function per table/figure of the paper's evaluation (§2.2.1, §5).
   Each prints the same rows/series the paper reports, at a configurable
   scale. Absolute numbers differ from the paper's testbed; the shapes are
   what is being reproduced (see EXPERIMENTS.md). *)

let pr fmt = Printf.printf fmt

module U = Util.Units

let line () = pr "%s\n" (String.make 72 '-')

let heading title =
  line ();
  pr "%s\n" title;
  line ()

let percentiles = [ 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0 ]

let short_max = 100_000 (* <100 KB = short flows *)
let long_min = 1_000_000 (* >1 MB = long flows *)

(* ---------------------------------------------------------------- fig2 *)

let fig2 ?(tries = 40) ?(seed = 7) () =
  heading
    "Fig 2 (table): saturation throughput (fraction of bisection capacity)\n\
     8-ary 2-cube, six traffic patterns x four routing algorithms";
  let topo = Topology.torus [| 8; 8 |] in
  let ctx = Routing.make topo in
  pr "%-18s %8s %8s %8s %8s\n" "workload" "RPS" "DOR" "VLB" "WLB";
  let row name flows =
    pr "%-18s" name;
    List.iter
      (fun proto ->
        pr " %8.2f" (U.to_float (Congestion.Channel_load.capacity_fraction ctx proto flows)))
      Routing.all_protocols;
    pr "\n"
  in
  List.iter
    (fun p -> row (Workload.Pattern.name p) (Workload.Pattern.flows topo p))
    [
      Workload.Pattern.Nearest_neighbor;
      Workload.Pattern.Uniform;
      Workload.Pattern.Bit_complement;
      Workload.Pattern.Transpose;
      Workload.Pattern.Tornado;
    ];
  pr "%-18s" "worst-case";
  List.iter
    (fun proto ->
      let _, v = Workload.Pattern.adversarial ctx proto ~tries ~seed in
      pr " %8.2f" (U.to_float v))
    Routing.all_protocols;
  pr "\n"

(* ---------------------------------------------------------------- fig7 *)

let pp_cdf_rows name_a xs_a name_b xs_b =
  pr "%-6s %14s %14s\n" "pct" name_a name_b;
  List.iter
    (fun p ->
      pr "p%-5.0f %14.3f %14.3f\n" p
        (Util.Stats.percentile xs_a p)
        (Util.Stats.percentile xs_b p))
    percentiles

let fig7 ?(flows = 300) ?(size = 2_000_000) ?(seed = 11) () =
  heading
    (Printf.sprintf
       "Fig 7: cross-validation, packet simulator vs fluid emulator\n\
        4x4 2D torus, 5 Gbps links, %d flows x %.1f MB, Poisson 1 ms" flows
       (float_of_int size /. 1e6));
  let topo = Topology.torus [| 4; 4 |] in
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.fixed_size topo rng ~flows ~size ~mean_interarrival_ns:1_000_000.0 in
  let sim_cfg = { Sim.R2c2_sim.default_config with link_gbps = U.gbps 5.0; seed } in
  let sim = Sim.R2c2_sim.run sim_cfg topo specs in
  let emu_cfg = { Emu.Fluid.default_config with link_gbps = U.gbps 5.0; seed } in
  let emu = Emu.Fluid.run emu_cfg topo specs in
  let sim_tput = U.floats_of (Sim.Metrics.throughputs_gbps sim.Sim.R2c2_sim.metrics) in
  let emu_tput =
    Array.of_list
      (List.map
         (fun (f : Emu.Fluid.flow_result) -> U.to_float f.avg_rate_gbps)
         emu.Emu.Fluid.flows)
  in
  pr "(a) per-flow average throughput CDF (Gbps)\n";
  pp_cdf_rows "simulator" sim_tput "emulator" emu_tput;
  let sim_q = Array.map (fun b -> float_of_int b /. 1024.0) sim.Sim.R2c2_sim.max_queue in
  let emu_q =
    Array.map (fun b -> (b : U.bytes :> float) /. 1024.0) emu.Emu.Fluid.max_queue_bytes
  in
  pr "(b) per-queue maximum occupancy CDF (KB)\n";
  pp_cdf_rows "simulator" sim_q "emulator" emu_q

(* ---------------------------------------------------------------- fig8 *)

let fig8 ?(flows = 10_000) ?(seed = 5) () =
  heading
    "Fig 8: 99th-pct CPU overhead of rate recomputation vs interval rho\n\
     512-node 3D torus trace, flow inter-arrival 1 us";
  let topo = Topology.torus [| 8; 8; 8 |] in
  let rng = Util.Rng.create seed in
  (* Sizes capped at 2 MB so the trace reaches a steady state within the
     replayed window; the tail beyond the cap only adds long-lived flows
     that every epoch would re-process identically. *)
  let specs =
    Workload.Flowgen.poisson_pareto ~max_size:2_000_000 topo rng ~flows
      ~mean_interarrival_ns:1_000.0
  in
  (* Departure times from a fluid run with the default rho. *)
  let fluid = Emu.Fluid.run { Emu.Fluid.default_config with seed } topo specs in
  let events =
    List.concat
      [
        List.map (fun (s : Workload.Flowgen.spec) -> (s.arrival_ns, `A s)) specs;
        List.map
          (fun (f : Emu.Fluid.flow_result) ->
            (f.spec.Workload.Flowgen.arrival_ns + f.fct_ns, `D f.spec))
          fluid.Emu.Fluid.flows;
      ]
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  in
  let rctx = Routing.make topo in
  let capacities = Array.make (Topology.link_count topo) (U.byte_rate (10.0 /. 8.0)) in
  (* Pre-warm the fraction cache: the paper precomputes link weights per
     {routing protocol, destination} pair (§4.2). *)
  List.iter
    (fun (s : Workload.Flowgen.spec) ->
      ignore (Routing.fractions rctx Routing.Rps ~src:s.src ~dst:s.dst))
    specs;
  let horizon = List.fold_left (fun acc (t, _) -> max acc t) 0 events in
  pr "%-12s %10s %10s %12s %12s %8s\n" "rho" "median-ms" "p99-ms" "Xeon-med%" "Xeon-p99%"
    "epochs";
  List.iter
    (fun rho_ns ->
      (* Replay: at every epoch boundary allocate over the flows active then
         (batching skips flows that come and go within one epoch, §3.3.2). *)
      let times = ref [] in
      let active : (int, Workload.Flowgen.spec) Hashtbl.t = Hashtbl.create 512 in
      let next = ref rho_ns in
      let idgen = ref 0 in
      let ids : (int * int * int, int list ref) Hashtbl.t = Hashtbl.create 512 in
      List.iter
        (fun (t, ev) ->
          while t > !next && !next <= horizon do
            (* Batching only rate-limits flows older than one interval
               (§3.3.2): flows that come and go within an epoch are absorbed
               by the headroom and never considered. *)
            let cutoff = !next - rho_ns in
            let wf =
              Util.Tbl.fold_sorted ~cmp:Int.compare
                (fun id (s : Workload.Flowgen.spec) acc ->
                  if s.Workload.Flowgen.arrival_ns <= cutoff then
                    Congestion.Waterfill.flow ~id
                      (Routing.fractions rctx Routing.Rps ~src:s.src ~dst:s.dst)
                    :: acc
                  else acc)
                active []
            in
            let wf = Array.of_list wf in
            if Array.length wf > 0 then begin
              (* Allocation is pure; best-of-3 after a GC flush removes
                 collector and scheduler noise from the wall-clock
                 measurement (the paper's artifact was C++). *)
              Gc.full_major ();
              let best = ref infinity in
              for _ = 1 to 3 do
                let t0 = Unix.gettimeofday () in
                ignore
                  (Congestion.Waterfill.allocate ~headroom:(U.fraction 0.05) ~capacities wf);
                let dt = Unix.gettimeofday () -. t0 in
                if dt < !best then best := dt
              done;
              times := !best :: !times
            end;
            next := !next + rho_ns
          done;
          match ev with
          | `A s ->
              incr idgen;
              let key = (s.Workload.Flowgen.arrival_ns, s.src, s.dst) in
              let cur = Option.value ~default:(ref []) (Hashtbl.find_opt ids key) in
              cur := !idgen :: !cur;
              Hashtbl.replace ids key cur;
              Hashtbl.replace active !idgen s
          | `D s -> (
              let key = (s.Workload.Flowgen.arrival_ns, s.src, s.dst) in
              match Hashtbl.find_opt ids key with
              | Some ({ contents = id :: rest } as cell) ->
                  cell := rest;
                  Hashtbl.remove active id
              | _ -> ()))
        events;
      let ts = Array.of_list (List.map (fun s -> s *. 1000.0) !times) in
      if Array.length ts = 0 then pr "%-12s (no epochs)\n" (Printf.sprintf "%dus" (rho_ns / 1000))
      else begin
        let med = Util.Stats.percentile ts 50.0 and p99 = Util.Stats.percentile ts 99.0 in
        let rho_ms = float_of_int rho_ns /. 1e6 in
        pr "%-12s %10.3f %10.3f %11.1f%% %11.1f%% %8d\n"
          (Printf.sprintf "%dus" (rho_ns / 1000))
          med p99
          (100.0 *. med /. rho_ms)
          (100.0 *. p99 /. rho_ms)
          (Array.length ts)
      end)
    [ 50_000; 100_000; 250_000; 500_000; 1_000_000 ];
  pr "(Atom-class core: multiply overhead by ~20x; see DESIGN.md substitutions)\n"

(* ---------------------------------------------------------------- fig9 *)

let fig9 () =
  heading
    "Fig 9: % of network capacity used by flow-event broadcasts\n\
     vs fraction of bytes carried by small (10 KB) flows; long flows 35 MB";
  let topos =
    [
      ("3D torus 8x8x8", Topology.torus [| 8; 8; 8 |]);
      ("3D mesh 8x8x8", Topology.mesh [| 8; 8; 8 |]);
      ("2D torus 32x16", Topology.torus [| 32; 16 |]);
    ]
  in
  pr "%-10s" "small-frac";
  List.iter (fun (n, _) -> pr " %16s" n) topos;
  pr "\n";
  List.iter
    (fun frac ->
      pr "%-10.2f" frac;
      List.iter
        (fun (_, topo) ->
          let ov =
            Broadcast.analytic_overhead topo ~frac_small_bytes:frac ~small_size:10_000
              ~large_size:35_000_000
          in
          pr " %15.2f%%" (100.0 *. ov))
        topos;
      pr "\n")
    [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0 ]

(* ------------------------------------------------- fig10/11 shared run *)

type transport_runs = {
  r2c2_m : Sim.Metrics.t;
  r2c2_q : int array;
  tcp_m : Sim.Metrics.t;
  tcp_q : int array;
  pfq : Sim.Pfq_sim.flow_result list;
}

let run_transports ?(dims = [| 6; 6; 6 |]) ?(flows = 600) ?(tau_ns = 1_000.0) ?(seed = 21)
    ?(headroom = U.fraction 0.05) () =
  let topo = Topology.torus dims in
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows ~mean_interarrival_ns:tau_ns in
  let r2c2 = Sim.R2c2_sim.run { Sim.R2c2_sim.default_config with seed; headroom } topo specs in
  let tcp = Sim.Tcp_sim.run { Sim.Tcp_sim.default_config with seed } topo specs in
  let pfq = Sim.Pfq_sim.run { Sim.Pfq_sim.default_config with seed } topo specs in
  ( specs,
    {
      r2c2_m = r2c2.Sim.R2c2_sim.metrics;
      r2c2_q = r2c2.Sim.R2c2_sim.max_queue;
      tcp_m = tcp.Sim.Tcp_sim.metrics;
      tcp_q = tcp.Sim.Tcp_sim.max_queue;
      pfq;
    } )

let pfq_fcts_us ?(min_size = 0) ?(max_size = max_int) pfq =
  Array.of_list
    (List.filter_map
       (fun (r : Sim.Pfq_sim.flow_result) ->
         let sz = r.spec.Workload.Flowgen.size in
         if sz >= min_size && sz < max_size then Some (float_of_int r.fct_ns /. 1000.0) else None)
       pfq)

let pfq_tputs ?(min_size = 0) ?(max_size = max_int) pfq =
  Array.of_list
    (List.filter_map
       (fun (r : Sim.Pfq_sim.flow_result) ->
         let sz = r.spec.Workload.Flowgen.size in
         if sz >= min_size && sz < max_size then Some (U.to_float r.throughput_gbps) else None)
       pfq)

let pp_cdf3 unit a b c =
  pr "%-6s %12s %12s %12s   (%s)\n" "pct" "TCP" "R2C2" "PFQ" unit;
  List.iter
    (fun p ->
      let v xs = if Array.length xs = 0 then nan else Util.Stats.percentile xs p in
      pr "p%-5.0f %12.2f %12.2f %12.2f\n" p (v a) (v b) (v c))
    percentiles

let fig10_11 ?dims ?flows ?tau_ns ?seed () =
  let specs, t = run_transports ?dims ?flows ?tau_ns ?seed () in
  ignore specs;
  heading "Fig 10: FCT CDF, short flows (<100 KB), tau = 1 us";
  pp_cdf3 "us"
    (Sim.Metrics.fcts_us ~max_size:short_max t.tcp_m)
    (Sim.Metrics.fcts_us ~max_size:short_max t.r2c2_m)
    (pfq_fcts_us ~max_size:short_max t.pfq);
  heading "Fig 11: average-throughput CDF, long flows (>1 MB), tau = 1 us";
  pp_cdf3 "Gbps"
    (U.floats_of (Sim.Metrics.throughputs_gbps ~min_size:long_min t.tcp_m))
    (U.floats_of (Sim.Metrics.throughputs_gbps ~min_size:long_min t.r2c2_m))
    (pfq_tputs ~min_size:long_min t.pfq)

(* ------------------------------------------------------- fig12/13/14 *)

let fig12_13_14 ?dims ?flows ?(taus = [ 100.0; 1_000.0; 10_000.0; 100_000.0 ]) ?seed () =
  let rows =
    List.map
      (fun tau ->
        let _, t = run_transports ?dims ?flows ~tau_ns:tau ?seed () in
        (tau, t))
      taus
  in
  let p99 xs = if Array.length xs = 0 then nan else Util.Stats.percentile xs 99.0 in
  let mean xs = Util.Stats.mean xs in
  heading "Fig 12: 99th-pct short-flow FCT, normalized against TCP (higher = better)";
  pr "%-10s %10s %10s\n" "tau" "R2C2" "PFQ";
  List.iter
    (fun (tau, t) ->
      let tcp = p99 (Sim.Metrics.fcts_us ~max_size:short_max t.tcp_m) in
      pr "%-10s %10.2f %10.2f\n"
        (Printf.sprintf "%gus" (tau /. 1000.0))
        (tcp /. p99 (Sim.Metrics.fcts_us ~max_size:short_max t.r2c2_m))
        (tcp /. p99 (pfq_fcts_us ~max_size:short_max t.pfq)))
    rows;
  heading "Fig 13: long-flow average throughput, normalized against TCP";
  pr "%-10s %10s %10s\n" "tau" "R2C2" "PFQ";
  List.iter
    (fun (tau, t) ->
      let tcp = mean (U.floats_of (Sim.Metrics.throughputs_gbps ~min_size:long_min t.tcp_m)) in
      let f x = if tcp > 0.0 then x /. tcp else nan in
      pr "%-10s %10.2f %10.2f\n"
        (Printf.sprintf "%gus" (tau /. 1000.0))
        (f (mean (U.floats_of (Sim.Metrics.throughputs_gbps ~min_size:long_min t.r2c2_m))))
        (f (mean (pfq_tputs ~min_size:long_min t.pfq))))
    rows;
  heading "Fig 14: max queue occupancy across all queues (R2C2), KB";
  pr "%-10s %10s %10s %14s\n" "tau" "median" "p99" "(TCP p99)";
  List.iter
    (fun (tau, t) ->
      let q = Array.map (fun b -> float_of_int b /. 1024.0) t.r2c2_q in
      let qt = Array.map (fun b -> float_of_int b /. 1024.0) t.tcp_q in
      pr "%-10s %10.2f %10.2f %14.2f\n"
        (Printf.sprintf "%gus" (tau /. 1000.0))
        (Util.Stats.percentile q 50.0) (Util.Stats.percentile q 99.0)
        (Util.Stats.percentile qt 99.0))
    rows

(* -------------------------------------------------------- fig15/16 *)

let fig15 ?(dims = [| 4; 4; 4 |]) ?(flows = 400) ?(seed = 31)
    ?(rhos = [ 50_000; 100_000; 250_000; 500_000; 1_000_000 ]) () =
  heading
    "Fig 15: |rate - ideal| / ideal vs recomputation interval rho (tau = 1 us)";
  let topo = Topology.torus dims in
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows ~mean_interarrival_ns:1_000.0 in
  pr "%-10s %10s %10s\n" "rho" "median" "p95";
  List.iter
    (fun rho ->
      (* Fixed 1 ms lifetime floor so every rho compares the same flows. *)
      let errs =
        Emu.Fluid.rate_error ~min_lifetime_ns:1_000_000 Emu.Fluid.default_config topo specs
          ~rho_ns:rho
      in
      pr "%-10s %9.1f%% %9.1f%%\n"
        (Printf.sprintf "%dus" (rho / 1000))
        (100.0 *. Util.Stats.percentile errs 50.0)
        (100.0 *. Util.Stats.percentile errs 95.0))
    rhos

let fig16 ?(dims = [| 4; 4; 4 |]) ?(flows = 400) ?(seed = 33)
    ?(taus = [ 100.0; 1_000.0; 10_000.0; 100_000.0 ]) () =
  heading "Fig 16: |rate - ideal| / ideal vs flow inter-arrival time (rho = 500 us)";
  let topo = Topology.torus dims in
  pr "%-10s %10s %10s\n" "tau" "median" "p95";
  List.iter
    (fun tau ->
      let rng = Util.Rng.create seed in
      let specs = Workload.Flowgen.poisson_pareto topo rng ~flows ~mean_interarrival_ns:tau in
      let errs = Emu.Fluid.rate_error Emu.Fluid.default_config topo specs ~rho_ns:500_000 in
      pr "%-10s %9.1f%% %9.1f%%\n"
        (Printf.sprintf "%gus" (tau /. 1000.0))
        (100.0 *. Util.Stats.percentile errs 50.0)
        (100.0 *. Util.Stats.percentile errs 95.0))
    taus

(* ------------------------------------------------------------ fig17 *)

let fig17 ?(dims = [| 6; 6; 6 |]) ?(flows = 2500) ?(seed = 41)
    ?(headrooms = [ 0.0; 0.025; 0.05; 0.1; 0.2 ]) () =
  heading
    "Fig 17: sensitivity to headroom (tau = 1 us)\n\
     (a) 99th-pct FCT short flows, (b) mean throughput long flows";
  let topo = Topology.torus dims in
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows ~mean_interarrival_ns:1_000.0 in
  pr "%-10s %14s %16s\n" "headroom" "p99 FCT (us)" "long tput (Gbps)";
  List.iter
    (fun h ->
      let res =
        Sim.R2c2_sim.run
          { Sim.R2c2_sim.default_config with seed; headroom = U.fraction h }
          topo specs
      in
      let m = res.Sim.R2c2_sim.metrics in
      let fcts = Sim.Metrics.fcts_us ~max_size:short_max m in
      let tput = U.floats_of (Sim.Metrics.throughputs_gbps ~min_size:long_min m) in
      pr "%-10.3f %14.2f %16.2f\n" h
        (if Array.length fcts = 0 then nan else Util.Stats.percentile fcts 99.0)
        (Util.Stats.mean tput))
    headrooms

(* ------------------------------------------------------------ fig18 *)

let fig18 ?(dims = [| 4; 4; 4 |]) ?(loads = [ 0.125; 0.25; 0.5; 0.75; 1.0 ]) ?(seed = 51)
    ?(pop_size = 60) ?(generations = 15) () =
  heading
    "Fig 18: aggregate throughput of adaptive per-flow routing selection,\n\
     normalized against all-RPS / all-VLB / random (permutation long flows)";
  let topo = Topology.torus dims in
  let ctx = Routing.make topo in
  let selector = Genetic.Selector.make ctx ~link_gbps:(U.gbps 10.0) in
  pr "%-8s %12s %12s %12s %14s\n" "load" "vs RPS" "vs VLB" "vs Random" "adaptive Gbps";
  List.iter
    (fun load ->
      let rng = Util.Rng.create seed in
      let specs = Workload.Flowgen.permutation_long_flows topo rng ~load:(U.fraction load) in
      let flows =
        Array.of_list
          (List.map (fun (s : Workload.Flowgen.spec) -> (s.src, s.dst)) specs)
      in
      if Array.length flows = 0 then pr "%-8.3f (no flows)\n" load
      else begin
        let rps = U.to_float (Genetic.Selector.uniform selector ~flows Routing.Rps) in
        let vlb = U.to_float (Genetic.Selector.uniform selector ~flows Routing.Vlb) in
        let rnd_assignment = Genetic.Selector.random_assignment selector rng ~flows in
        let rnd =
          U.to_float (Genetic.Selector.aggregate_throughput_gbps selector ~flows rnd_assignment)
        in
        let init = Array.make (Array.length flows) Routing.Rps in
        let _, adaptive =
          Genetic.Selector.select ~pop_size ~generations selector rng ~flows ~init
        in
        let adaptive = U.to_float adaptive in
        pr "%-8.3f %12.3f %12.3f %12.3f %14.1f\n" load (adaptive /. rps) (adaptive /. vlb)
          (adaptive /. rnd) adaptive
      end)
    loads

(* ------------------------------------------------------------ fig19 *)

let fig19 ?(dims = [| 8; 8; 8 |]) () =
  heading
    "Fig 19: control traffic per flow event, decentralized vs centralized\n\
     512-node 3D torus";
  let topo = Topology.torus dims in
  let dec = U.to_float (R2c2.Control_traffic.decentralized_event_bytes topo) in
  pr "decentralized: %.0f bytes/event (constant)\n" dec;
  pr "%-18s %14s %10s\n" "flows/server" "centralized B" "ratio";
  List.iter
    (fun n ->
      let c = U.to_float (R2c2.Control_traffic.centralized_event_bytes topo ~flows_per_server:n) in
      pr "%-18d %14.0f %9.1fx\n" n c (c /. dec))
    [ 1; 2; 4; 6; 8; 10 ]

(* ------------------------------------------------------------ ablations *)

(* Design-choice studies beyond the paper's figures; see DESIGN.md §5. *)

let ablation_control_plane ?(dims = [| 6; 6; 6 |]) ?(flows = 600) ?(seed = 61) () =
  heading
    "Ablation A: control plane — global-epoch approximation vs the paper's\n\
     literal per-node computation (each sender water-fills over its own\n\
     broadcast-built view)";
  let topo = Topology.torus dims in
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows ~mean_interarrival_ns:1_000.0 in
  pr "%-14s %12s %12s %12s %12s %10s\n" "control" "p50 FCT us" "p99 FCT us" "q p99 KB"
    "recomputes" "wall s";
  List.iter
    (fun (name, control) ->
      let t0 = Unix.gettimeofday () in
      let res =
        Sim.R2c2_sim.run { Sim.R2c2_sim.default_config with seed; control } topo specs
      in
      let wall = Unix.gettimeofday () -. t0 in
      let fcts = Sim.Metrics.fcts_us res.Sim.R2c2_sim.metrics in
      let q = Array.map (fun b -> float_of_int b /. 1024.0) res.Sim.R2c2_sim.max_queue in
      pr "%-14s %12.2f %12.2f %12.2f %12d %10.2f\n" name
        (Util.Stats.percentile fcts 50.0) (Util.Stats.percentile fcts 99.0)
        (Util.Stats.percentile q 99.0) res.Sim.R2c2_sim.recomputes wall)
    [ ("global-epoch", Sim.R2c2_sim.Global_epoch); ("per-node", Sim.R2c2_sim.Per_node) ]

let ablation_broadcast_trees ?(dims = [| 8; 8; 8 |]) () =
  heading
    "Ablation B: broadcast-tree load balancing — spreading each source's\n\
     broadcasts over k trees flattens the per-link control load";
  let topo = Topology.torus dims in
  pr "%-16s %14s %14s %10s\n" "trees/source" "max link load" "mean load" "max/mean";
  List.iter
    (fun k ->
      let b = Broadcast.make ~trees_per_source:k topo in
      let load = Array.make (Topology.link_count topo) 0.0 in
      for src = 0 to Topology.host_count topo - 1 do
        for tree = 0 to k - 1 do
          List.iter
            (fun (p, c) ->
              match Topology.find_link topo p c with
              | Some l -> load.(l) <- load.(l) +. (1.0 /. float_of_int k)
              | None -> assert false)
            (Broadcast.edges b ~src ~tree)
        done
      done;
      let mx = Array.fold_left max 0.0 load in
      let mean = Util.Stats.mean load in
      pr "%-16d %14.1f %14.1f %10.2f\n" k mx mean (mx /. mean))
    [ 1; 2; 4; 8 ]

let ablation_broadcast_mode ?(dims = [| 6; 6; 6 |]) ?(flows = 600) ?(seed = 67) () =
  heading
    "Ablation C: real 16-byte broadcast packets in the fabric vs the\n\
     latency-only visibility model";
  let topo = Topology.torus dims in
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows ~mean_interarrival_ns:1_000.0 in
  pr "%-16s %12s %12s %16s\n" "broadcast" "p50 FCT us" "p99 FCT us" "ctrl bytes wire";
  List.iter
    (fun (name, real) ->
      let res =
        Sim.R2c2_sim.run { Sim.R2c2_sim.default_config with seed; real_broadcast = real } topo
          specs
      in
      let fcts = Sim.Metrics.fcts_us res.Sim.R2c2_sim.metrics in
      pr "%-16s %12.2f %12.2f %16.0f\n" name (Util.Stats.percentile fcts 50.0)
        (Util.Stats.percentile fcts 99.0)
        (U.to_float res.Sim.R2c2_sim.control_wire_bytes))
    [ ("real packets", true); ("latency model", false) ]

let ablation_search ?(dims = [| 4; 4; 4 |]) ?(load = 0.5) ?(seed = 71) ?(budget = 1200) () =
  heading
    (Printf.sprintf
       "Ablation D: search heuristic for routing selection (SS3.4 considered\n\
        log-linear learning and simulated annealing before settling on a GA)\n\
        permutation flows, load %.2f, equal fitness-evaluation budget (%d)"
       load budget);
  let topo = Topology.torus dims in
  let ctx = Routing.make topo in
  let sel = Genetic.Selector.make ctx ~link_gbps:(U.gbps 10.0) in
  let rng0 = Util.Rng.create seed in
  let specs = Workload.Flowgen.permutation_long_flows topo rng0 ~load:(U.fraction load) in
  let flows =
    Array.of_list (List.map (fun (s : Workload.Flowgen.spec) -> (s.src, s.dst)) specs)
  in
  let n = Array.length flows in
  let decode g = Array.map (fun c -> if c = 0 then Routing.Rps else Routing.Vlb) g in
  let problem =
    {
      Genetic.Ga.genes = n;
      choices = 2;
      fitness =
        (fun g -> U.to_float (Genetic.Selector.aggregate_throughput_gbps sel ~flows (decode g)));
    }
  in
  let init = Array.make n 0 in
  pr "%-22s %16s\n" "heuristic" "aggregate Gbps";
  let show name fit = pr "%-22s %16.1f\n" name fit in
  show "all-RPS baseline" (U.to_float (Genetic.Selector.uniform sel ~flows Routing.Rps));
  show "all-VLB baseline" (U.to_float (Genetic.Selector.uniform sel ~flows Routing.Vlb));
  let pop = 40 in
  let _, ga =
    Genetic.Ga.optimize ~pop_size:pop ~generations:(budget / pop) ~patience:max_int
      (Util.Rng.create (seed + 1)) problem ~init
  in
  show "genetic algorithm" ga;
  let _, hc = Genetic.Ga.hill_climb ~iterations:budget (Util.Rng.create (seed + 2)) problem ~init in
  show "hill climbing" hc;
  let _, sa =
    Genetic.Ga.simulated_annealing ~iterations:budget (Util.Rng.create (seed + 3)) problem ~init
  in
  show "simulated annealing" sa;
  let _, rs = Genetic.Ga.random_search ~iterations:budget (Util.Rng.create (seed + 4)) problem in
  show "random search" rs;
  (* The production selector additionally seeds the uniform assignments, so
     it can never end below either baseline. *)
  let init_p = Array.make n Routing.Rps in
  let _, prod =
    Genetic.Selector.select ~pop_size:40 ~generations:(budget / 40) sel
      (Util.Rng.create (seed + 5)) ~flows ~init:init_p
  in
  show "GA + uniform seeding" (U.to_float prod)

let ablation_waterfill ?(flows = 800) ?(seed = 73) () =
  heading
    "Ablation E: water-filling implementations — the SS4.2 \"efficient\n\
     variant\" vs textbook progressive filling (identical results, see\n\
     property tests)";
  let topo = Topology.torus [| 8; 8; 8 |] in
  let ctx = Routing.make topo in
  let rng = Util.Rng.create seed in
  let h = Topology.host_count topo in
  let wf =
    Array.init flows (fun i ->
        let src = Util.Rng.int rng h in
        let dst = (src + 1 + Util.Rng.int rng (h - 1)) mod h in
        Congestion.Waterfill.flow ~id:i (Routing.fractions ctx Routing.Rps ~src ~dst))
  in
  let capacities = Array.make (Topology.link_count topo) (U.byte_rate 1.25) in
  let time f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1000.0
  in
  let fast =
    time (fun () ->
        Congestion.Waterfill.allocate ~headroom:(U.fraction 0.05) ~capacities wf)
  in
  let slow =
    time (fun () ->
        Congestion.Waterfill.allocate_reference ~headroom:(U.fraction 0.05) ~capacities wf)
  in
  pr "%d flows on the 512-node torus:\n" flows;
  pr "  efficient variant: %8.3f ms\n" fast;
  pr "  reference        : %8.3f ms (%.1fx slower)\n" slow (slow /. fast)

let ablation_clos ?(seed = 79) () =
  heading
    "Ablation F (SS6): R2C2 atop a switched two-level folded Clos — broadcast\n\
     stays cheap at rack scale; congestion control works without multipath";
  (* 512 servers, 32-port switches: 32 leaves x 16 servers, 16 spines. *)
  let clos = Topology.clos ~leaves:32 ~spines:16 ~servers_per_leaf:16 in
  pr "topology: %d servers + %d switches, diameter %d\n" (Topology.host_count clos)
    (Topology.vertex_count clos - Topology.host_count clos)
    (Topology.diameter clos);
  pr "bytes per broadcast: %d (paper SS6: ~8.7 KB)\n" (Broadcast.bytes_per_broadcast clos);
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.poisson_pareto clos rng ~flows:600 ~mean_interarrival_ns:1_000.0 in
  let res = Sim.R2c2_sim.run { Sim.R2c2_sim.default_config with seed } clos specs in
  let fcts = Sim.Metrics.fcts_us res.Sim.R2c2_sim.metrics in
  let q = Array.map (fun b -> float_of_int b /. 1024.0) res.Sim.R2c2_sim.max_queue in
  pr "R2C2 on the Clos: %d/%d flows complete, FCT p50 %.1f us p99 %.1f us, q p99 %.1f KB\n"
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics)
    (List.length specs) (Util.Stats.percentile fcts 50.0) (Util.Stats.percentile fcts 99.0)
    (Util.Stats.percentile q 99.0)

let ablation_live_reselection ?(dims = [| 4; 4; 4 |]) ?(load = 0.5) ?(seed = 83) () =
  heading
    "Ablation G: live SS3.4 routing reselection inside the packet simulator
     (long permutation flows; reselection every 300 us vs static RPS)";
  let topo = Topology.torus dims in
  let rng = Util.Rng.create seed in
  let specs =
    List.map
      (fun (s : Workload.Flowgen.spec) -> { s with Workload.Flowgen.size = 4_000_000 })
      (Workload.Flowgen.permutation_long_flows topo rng ~load:(U.fraction load))
  in
  pr "%-22s %12s %14s %12s
" "mode" "mean FCT us" "mean tput Gbps" "reroutes";
  List.iter
    (fun (name, interval) ->
      let cfg = { Sim.R2c2_sim.default_config with seed; reselect_interval_ns = interval } in
      let res = Sim.R2c2_sim.run cfg topo specs in
      let m = res.Sim.R2c2_sim.metrics in
      pr "%-22s %12.1f %14.2f %12d
" name
        (Util.Stats.mean (Sim.Metrics.fcts_us m))
        (Util.Stats.mean (U.floats_of (Sim.Metrics.throughputs_gbps m)))
        res.Sim.R2c2_sim.flows_rerouted)
    [ ("static all-RPS", None); ("adaptive (GA, 300us)", Some 300_000) ]

let ablation_link_speed ?(dims = [| 6; 6; 6 |]) ?(flows = 600) ?(seed = 89) () =
  heading
    "Ablation H: link speed (SS2.1 projects 10-100 Gbps fabrics) — R2C2's
     probe-free control is rate-agnostic; queues stay in packets, not BDPs";
  let topo = Topology.torus dims in
  let rng = Util.Rng.create seed in
  let specs = Workload.Flowgen.poisson_pareto topo rng ~flows ~mean_interarrival_ns:1_000.0 in
  pr "%-10s %14s %14s %12s
" "link" "p99 FCT us" "long tput Gbps" "q p99 KB";
  List.iter
    (fun gbps ->
      let res =
        Sim.R2c2_sim.run
          { Sim.R2c2_sim.default_config with seed; link_gbps = U.gbps gbps }
          topo specs
      in
      let m = res.Sim.R2c2_sim.metrics in
      let fcts = Sim.Metrics.fcts_us ~max_size:short_max m in
      let q = Array.map (fun b -> float_of_int b /. 1024.0) res.Sim.R2c2_sim.max_queue in
      pr "%-10s %14.2f %14.2f %12.2f
"
        (Printf.sprintf "%.0fG" gbps)
        (Util.Stats.percentile fcts 99.0)
        (Util.Stats.mean (U.floats_of (Sim.Metrics.throughputs_gbps ~min_size:long_min m)))
        (Util.Stats.percentile q 99.0))
    [ 10.0; 40.0; 100.0 ]

let ablations () =
  ablation_control_plane ();
  ablation_broadcast_trees ();
  ablation_broadcast_mode ();
  ablation_search ();
  ablation_waterfill ();
  ablation_clos ();
  ablation_live_reselection ();
  ablation_link_speed ()
