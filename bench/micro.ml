(* Bechamel micro-benchmarks of the stack's core primitives (§4.2):
   rate computation, link-fraction DP, wire encode/decode, broadcast-tree
   construction and one GA generation. One Test.make per experiment
   family. *)

open Bechamel
open Toolkit

let topo = lazy (Topology.torus [| 8; 8; 8 |])

let waterfill_inputs n =
  let topo = Lazy.force topo in
  let ctx = Routing.make topo in
  let rng = Util.Rng.create 3 in
  let h = Topology.host_count topo in
  let flows =
    Array.init n (fun i ->
        let src = Util.Rng.int rng h in
        let dst = (src + 1 + Util.Rng.int rng (h - 1)) mod h in
        Congestion.Waterfill.flow ~id:i (Routing.fractions ctx Routing.Rps ~src ~dst))
  in
  let capacities = Array.make (Topology.link_count topo) (Util.Units.byte_rate 1.25) in
  (capacities, flows)

let test_waterfill n =
  Test.make
    ~name:(Printf.sprintf "waterfill-%d-flows" n)
    (Staged.stage
       (let capacities, flows = waterfill_inputs n in
        fun () ->
          ignore
            (Congestion.Waterfill.allocate ~headroom:(Util.Units.fraction 0.05) ~capacities
               flows)))

let test_fractions proto =
  Test.make
    ~name:(Printf.sprintf "fractions-%s" (Routing.protocol_name proto))
    (Staged.stage
       (let topo = Lazy.force topo in
        let rng = Util.Rng.create 5 in
        let h = Topology.host_count topo in
        fun () ->
          (* A fresh context per call so caching does not hide the cost. *)
          let ctx = Routing.make topo in
          let src = Util.Rng.int rng h in
          let dst = (src + (h / 2)) mod h in
          ignore (Routing.fractions ctx proto ~src ~dst)))

let test_wire_roundtrip =
  Test.make ~name:"wire-data-roundtrip"
    (Staged.stage
       (let header =
          {
            Wire.flow = 42;
            src = 17;
            dst = 391;
            seq = 12345;
            plen = 1465;
            route = Array.init 12 (fun i -> i mod 6);
            ridx = 0;
          }
        in
        fun () ->
          match Wire.decode_data (Wire.encode_data header) with
          | Ok _ -> ()
          | Error e -> failwith e))

let test_broadcast_tree =
  Test.make ~name:"broadcast-tree-build"
    (Staged.stage
       (let topo = Lazy.force topo in
        let i = ref 0 in
        fun () ->
          incr i;
          let b = Broadcast.make ~trees_per_source:1 topo in
          ignore (Broadcast.depth b ~src:(!i mod Topology.host_count topo) ~tree:0)))

let test_ga_generation =
  Test.make ~name:"ga-generation-32-flows"
    (Staged.stage
       (let topo = Topology.torus [| 4; 4; 4 |] in
        let ctx = Routing.make topo in
        let selector = Genetic.Selector.make ctx ~link_gbps:(Util.Units.gbps 10.0) in
        let rng = Util.Rng.create 9 in
        let specs = Workload.Flowgen.permutation_long_flows topo rng ~load:(Util.Units.fraction 0.5) in
        let flows =
          Array.of_list (List.map (fun (s : Workload.Flowgen.spec) -> (s.src, s.dst)) specs)
        in
        let init = Array.make (Array.length flows) Routing.Rps in
        fun () ->
          ignore
            (Genetic.Selector.select ~pop_size:8 ~generations:1 selector rng ~flows ~init)))

let tests () =
  Test.make_grouped ~name:"r2c2"
    [
      test_waterfill 100;
      test_waterfill 500;
      test_fractions Routing.Rps;
      test_fractions Routing.Dor;
      test_wire_roundtrip;
      test_broadcast_tree;
      test_ga_generation;
    ]

(* -- churn micro-benchmark (writes BENCH_waterfill.json) ------------------
   Epoch recomputation under flow churn: N flows on the 8x8x8 torus, k% of
   them replaced per epoch. Compares the seed full-rebuild path (rebuild
   every waterfill input from the flow table, allocate fresh buffers — what
   `Stack.recompute` did before the incremental allocator) against
   `Waterfill.Inc` (patch rows, reuse the arena). Both paths see the same
   pre-generated churn script and a pre-warmed fraction cache, and their
   final rates are cross-checked. *)

type cop = Close of int | Open of int * int * int

let churn ?(flows = 512) ?(churn_pct = 10) ~quick () =
  let n = flows in
  let epochs = if quick then 3 else 40 in
  let clean_iters_seed = if quick then 3 else 40 in
  let clean_iters_inc = if quick then 100 else 20_000 in
  let trials = if quick then 1 else 5 in
  let topo = Lazy.force topo in
  let ctx = Routing.make topo in
  let h = Topology.host_count topo in
  let capacities = Array.make (Topology.link_count topo) (Util.Units.byte_rate 1.25) in
  let headroom = Util.Units.fraction 0.05 in
  let rng = Util.Rng.create 11 in
  let next_id = ref 0 in
  let fresh_flow () =
    let id = !next_id in
    incr next_id;
    let src = Util.Rng.int rng h in
    let dst = (src + 1 + Util.Rng.int rng (h - 1)) mod h in
    (id, src, dst)
  in
  let init = Array.init n (fun _ -> fresh_flow ()) in
  let k = max 1 (n * churn_pct / 100) in
  let live = Array.copy init in
  let script =
    Array.init epochs (fun _ ->
        let ops = ref [] in
        for _ = 1 to k do
          let j = Util.Rng.int rng n in
          let id, _, _ = live.(j) in
          ops := Close id :: !ops;
          let nf = fresh_flow () in
          live.(j) <- nf;
          let id', s, d = nf in
          ops := Open (id', s, d) :: !ops
        done;
        List.rev !ops)
  in
  let warm (_, s, d) = ignore (Routing.fractions ctx Routing.Rps ~src:s ~dst:d) in
  Array.iter warm init;
  Array.iter
    (List.iter (function Open (id, s, d) -> warm (id, s, d) | Close _ -> ()))
    script;
  (* The pre-incremental recompute: flow-table fold, sort, per-flow struct
     rebuild, allocation of every waterfill buffer. *)
  let seed_epoch world =
    (* The raw fold IS the measured legacy path; the sort below fixes the
       order before anything consumes it. *)
    (* lint: allow D3 — legacy recompute path under measurement; sorted below *)
    let fl = Hashtbl.fold (fun id (s, d) acc -> (id, s, d) :: acc) world [] in
    let fl = List.sort (fun (a, _, _) (b, _, _) -> compare a b) fl in
    let wf =
      Array.map
        (fun (id, s, d) ->
          Congestion.Waterfill.flow ~id (Routing.fractions ctx Routing.Rps ~src:s ~dst:d))
        (Array.of_list fl)
    in
    (fl, Congestion.Waterfill.allocate ~headroom ~capacities wf)
  in
  let apply_seed world = function
    | Close id -> Hashtbl.remove world id
    | Open (id, s, d) -> Hashtbl.replace world id (s, d)
  in
  let apply_inc inc = function
    | Close id -> Congestion.Waterfill.Inc.remove_flow inc ~id
    | Open (id, s, d) ->
        Congestion.Waterfill.Inc.add_flow inc ~id (Routing.fractions ctx Routing.Rps ~src:s ~dst:d)
  in
  let seed_clean = ref infinity
  and seed_churn = ref infinity
  and inc_clean = ref infinity
  and inc_churn = ref infinity
  and max_delta = ref 0.0 in
  for _trial = 1 to trials do
    let world = Hashtbl.create (4 * n) in
    Array.iter (fun (id, s, d) -> Hashtbl.replace world id (s, d)) init;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to clean_iters_seed do
      ignore (seed_epoch world)
    done;
    let t1 = Unix.gettimeofday () in
    seed_clean := Float.min !seed_clean ((t1 -. t0) /. float_of_int clean_iters_seed);
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun ops ->
        List.iter (apply_seed world) ops;
        ignore (seed_epoch world))
      script;
    let t1 = Unix.gettimeofday () in
    seed_churn := Float.min !seed_churn ((t1 -. t0) /. float_of_int epochs);
    let inc = Congestion.Waterfill.Inc.create ~headroom ~capacities () in
    Array.iter
      (fun (id, s, d) ->
        Congestion.Waterfill.Inc.add_flow inc ~id (Routing.fractions ctx Routing.Rps ~src:s ~dst:d))
      init;
    Congestion.Waterfill.Inc.allocate inc;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to clean_iters_inc do
      Congestion.Waterfill.Inc.allocate inc
    done;
    let t1 = Unix.gettimeofday () in
    inc_clean := Float.min !inc_clean ((t1 -. t0) /. float_of_int clean_iters_inc);
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun ops ->
        List.iter (apply_inc inc) ops;
        Congestion.Waterfill.Inc.allocate inc)
      script;
    let t1 = Unix.gettimeofday () in
    inc_churn := Float.min !inc_churn ((t1 -. t0) /. float_of_int epochs);
    (* Differential check: both paths must agree on the final rates. *)
    let fl, rates = seed_epoch world in
    List.iteri
      (fun i (id, _, _) ->
        let d =
          abs_float
            ((rates.(i) : Util.Units.byte_rate :> float)
            -. (Congestion.Waterfill.Inc.rate inc ~id : Util.Units.byte_rate :> float))
        in
        if d > !max_delta then max_delta := d)
      fl
  done;
  if !max_delta > 1e-6 then
    failwith (Printf.sprintf "churn bench: rates diverged by %g" !max_delta);
  let ns x = x *. 1e9 in
  (* clean epochs can be below timer resolution; floor at 1 ns to keep the
     JSON finite *)
  inc_clean := Float.max !inc_clean 1e-9;
  let clean_speedup = !seed_clean /. !inc_clean in
  let churn_speedup = !seed_churn /. !inc_churn in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"waterfill-churn\",\n\
      \  \"topology\": \"torus-8x8x8\",\n\
      \  \"flows\": %d,\n\
      \  \"churn_pct\": %d,\n\
      \  \"epochs\": %d,\n\
      \  \"trials\": %d,\n\
      \  \"seed_clean_ns_per_epoch\": %.0f,\n\
      \  \"inc_clean_ns_per_epoch\": %.0f,\n\
      \  \"clean_speedup\": %.1f,\n\
      \  \"seed_churn_ns_per_epoch\": %.0f,\n\
      \  \"inc_churn_ns_per_epoch\": %.0f,\n\
      \  \"churn_speedup\": %.1f,\n\
      \  \"max_rate_delta\": %g\n\
       }\n"
      n churn_pct epochs trials (ns !seed_clean) (ns !inc_clean) clean_speedup
      (ns !seed_churn) (ns !inc_churn) churn_speedup !max_delta
  in
  let oc = open_out "BENCH_waterfill.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  Printf.printf "clean epoch: %.0f ns -> %.0f ns (%.1fx); %d%% churn: %.0f ns -> %.0f ns (%.1fx)\n"
    (ns !seed_clean) (ns !inc_clean) clean_speedup churn_pct (ns !seed_churn) (ns !inc_churn)
    churn_speedup

let run () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Printf.printf "%-40s %16s\n" "benchmark" "ns/run";
  Util.Tbl.iter_sorted ~cmp:String.compare
    (fun _instance tbl ->
      let rows = Util.Tbl.fold_sorted ~cmp:String.compare (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Printf.printf "%-40s %16.0f\n" name est
          | _ -> Printf.printf "%-40s %16s\n" name "n/a")
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    results
