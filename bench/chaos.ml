(* Chaos soak (writes BENCH_failure.json) --------------------------------
   The §3.2 failure story end to end on the paper's 8x8x8 torus: a
   permutation workload runs while cables and a node are killed mid-flight.
   Each scenario reports recovery times (failure -> first reconverged rate
   epoch), loss accounting and goodput retention against the unfailed
   baseline; the run exits non-zero if any event fails to reconverge, a
   flow is lost that should not be, the recovery bound (detection delay +
   one recompute interval) is exceeded, or goodput retention drops below
   90%. *)

let dims = [| 8; 8; 8 |]

type event = Link of int * int * int | Node of int * int | Restore of int * int * int

type outcome = {
  sname : string;
  completed : int;
  aborted : int list;
  drops : int;
  blackholes : int;
  blackholed_bytes : int;
  retransmissions : int;
  tree_repairs : int;
  recoveries : (string * int * int) list;  (** kind, fail_ns, recovery_ns *)
  goodput_gbps : float;
  makespan_ns : int;
  series : (int * int) array;  (** 10 us goodput buckets *)
}

(* Payload bytes the run had delivered by [t_ns]. *)
let delivered_by o t_ns =
  Array.fold_left (fun acc (b, bytes) -> if b < t_ns then acc + bytes else acc) 0 o.series

(* Deterministic cable pick: vertex [v] and its first out-neighbor. *)
let cable topo v = fst (Topology.out_links topo v).(0)

let run_scenario ~size ~interval ~name events =
  let topo = Topology.torus dims in
  let h = Topology.host_count topo in
  let shift = (h / 2) + 3 in
  let cfg =
    {
      Sim.R2c2_sim.default_config with
      recompute_interval_ns = interval;
      (* A rack RTT is a few microseconds; the conservative 50 us default
         timeout would dominate the post-failure tail latency. *)
      rtx_timeout_ns = 10_000;
      seed = 42;
    }
  in
  let t = Sim.R2c2_sim.create cfg topo in
  Sim.Metrics.set_goodput_bucket (Sim.R2c2_sim.metrics t) ~bucket_ns:10_000;
  for i = 0 to h - 1 do
    ignore (Sim.R2c2_sim.start_flow t ~src:i ~dst:((i + shift) mod h) ~size)
  done;
  List.iter
    (function
      | Link (ns, u, v) -> Sim.R2c2_sim.fail_link_at t ~ns u v
      | Node (ns, u) -> Sim.R2c2_sim.fail_node_at t ~ns u
      | Restore (ns, u, v) -> Sim.R2c2_sim.restore_link_at t ~ns u v)
    events;
  let t0 = Unix.gettimeofday () in
  Sim.R2c2_sim.run_engine t;
  let wall = Unix.gettimeofday () -. t0 in
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  (* Goodput over the makespan, counting only bytes that reached their
     destination as part of a completed flow. *)
  let delivered = ref 0 and makespan = ref 1 in
  List.iter
    (fun f ->
      if Sim.Metrics.complete r.metrics f then begin
        delivered := !delivered + f.Sim.Metrics.size;
        makespan := max !makespan f.Sim.Metrics.finish_ns
      end)
    (Sim.Metrics.all r.metrics);
  let goodput = float_of_int (8 * !delivered) /. float_of_int !makespan in
  if r.injected_payload <> r.delivered_payload + r.dropped_payload + r.blackholed_payload then
    failwith (name ^ ": payload bytes not conserved");
  Printf.printf
    "%-10s %3d flows done, %d aborted, %d blackholed pkts, %d rtx, %d repairs (%.1fs)\n%!"
    name
    (Sim.Metrics.completed_count r.metrics)
    (List.length r.aborted_flows) r.blackholes r.retransmissions r.tree_repairs wall;
  {
    sname = name;
    completed = Sim.Metrics.completed_count r.metrics;
    aborted = r.aborted_flows;
    drops = r.drops;
    blackholes = r.blackholes;
    blackholed_bytes = r.blackholed_bytes;
    retransmissions = r.retransmissions;
    tree_repairs = r.tree_repairs;
    recoveries =
      List.map
        (fun fr ->
          (fr.kind, fr.fail_ns, if fr.reconverge_ns < 0 then -1 else fr.reconverge_ns - fr.fail_ns))
        r.failures;
    goodput_gbps = goodput;
    makespan_ns = !makespan;
    series = Sim.Metrics.goodput_series r.metrics;
  }

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n /. 100.0)) - 1))

let run ~quick () =
  let size = if quick then 200_000 else 600_000 in
  let interval = 100_000 in
  let topo = Topology.torus dims in
  let h = Topology.host_count topo in
  let shift = (h / 2) + 3 in
  let detection =
    let tx_16b = 13 (* 16 B at 10 Gbps, rounded up *) in
    2 * Topology.diameter topo * (Sim.R2c2_sim.default_config.hop_latency_ns + tx_16b)
  in
  (* Recovery bound: topology discovery (two broadcast depths) plus one
     rate-recompute interval, with 1 us of event-ordering slack. *)
  let bound = detection + interval + 1_000 in
  let kill_ns = 30_000 in
  let baseline = run_scenario ~size ~interval ~name:"baseline" [] in
  let link =
    run_scenario ~size ~interval ~name:"link-kill" [ Link (kill_ns, 7, cable topo 7) ]
  in
  let dead = 100 in
  let node = run_scenario ~size ~interval ~name:"node-kill" [ Node (kill_ns, dead) ] in
  let soak_kills = if quick then 3 else 5 in
  let soak_events =
    List.init soak_kills (fun i ->
        let v = 17 + (i * 97) in
        Link (kill_ns + (i * 40_000), v, cable topo v))
  in
  let soak =
    let v = 17 in
    run_scenario ~size ~interval ~name:"soak"
      (soak_events @ [ Restore (kill_ns + (soak_kills * 40_000), v, cable topo v) ])
  in
  let scenarios = [ baseline; link; node; soak ] in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* Every failure event must reconverge, within the bound. *)
  let all_recoveries =
    List.concat_map (fun o -> List.map (fun r -> (o.sname, r)) o.recoveries) scenarios
  in
  List.iter
    (fun (sname, (kind, at, rec_ns)) ->
      if rec_ns < 0 then fail "%s: %s@%dns never reconverged" sname kind at
      else if rec_ns > bound then
        fail "%s: %s@%dns recovered in %dns > bound %dns" sname kind at rec_ns bound)
    all_recoveries;
  (* Link failures lose no flow; the node kill loses exactly the two flows
     touching the dead vertex. *)
  if baseline.completed <> h || baseline.aborted <> [] then fail "baseline lost flows";
  if link.completed <> h || link.aborted <> [] then fail "link-kill lost flows";
  if soak.completed <> h || soak.aborted <> [] then fail "soak lost flows";
  let node_expected = List.sort Int.compare [ dead; (dead - shift + h) mod h ] in
  if node.aborted <> node_expected || node.completed <> h - 2 then
    fail "node-kill aborted %s, expected %s"
      (String.concat "," (List.map string_of_int node.aborted))
      (String.concat "," (List.map string_of_int node_expected));
  (* Goodput retention: payload delivered within the baseline's completion
     window, relative to the baseline. Byte-weighted, so it captures the
     dip around the failure without being dominated by a single straggler
     flow's tail. *)
  let base_window = delivered_by baseline baseline.makespan_ns in
  let retention o = float_of_int (delivered_by o baseline.makespan_ns) /. float_of_int base_window in
  let min_retention =
    List.fold_left (fun acc o -> Float.min acc (retention o)) infinity [ link; node; soak ]
  in
  if min_retention < 0.90 then fail "goodput retention %.3f < 0.90" min_retention;
  let recs =
    Array.of_list (List.filter (fun r -> r >= 0) (List.map (fun (_, (_, _, r)) -> r) all_recoveries))
  in
  let recs = if Array.length recs = 0 then [| -1 |] else recs in
  Array.sort Int.compare recs;
  let scenario_json o =
    Printf.sprintf
      "    { \"name\": \"%s\", \"completed\": %d, \"aborted\": [%s], \"drops\": %d,\n\
      \      \"blackholes\": %d, \"blackholed_bytes\": %d, \"retransmissions\": %d,\n\
      \      \"tree_repairs\": %d, \"goodput_gbps\": %.2f, \"retention\": %.4f,\n\
      \      \"recovery_ns\": [%s] }" o.sname o.completed
      (String.concat ", " (List.map string_of_int o.aborted))
      o.drops o.blackholes o.blackholed_bytes o.retransmissions o.tree_repairs o.goodput_gbps
      (if o.sname = "baseline" then 1.0 else retention o)
      (String.concat ", " (List.map (fun (_, _, r) -> string_of_int r) o.recoveries))
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"failure-recovery\",\n\
      \  \"topology\": \"torus-8x8x8\",\n\
      \  \"flows\": %d,\n\
      \  \"flow_bytes\": %d,\n\
      \  \"detection_delay_ns\": %d,\n\
      \  \"recompute_interval_ns\": %d,\n\
      \  \"recovery_bound_ns\": %d,\n\
      \  \"recovery_p50_ns\": %d,\n\
      \  \"recovery_p95_ns\": %d,\n\
      \  \"recovery_max_ns\": %d,\n\
      \  \"min_goodput_retention\": %.4f,\n\
      \  \"all_reconverged\": %b,\n\
      \  \"scenarios\": [\n%s\n  ]\n\
       }\n"
      h size detection interval bound (percentile recs 50.0) (percentile recs 95.0)
      (percentile recs 100.0) min_retention (!failures = [])
      (String.concat ",\n" (List.map scenario_json scenarios))
  in
  let oc = open_out "BENCH_failure.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "chaos: FAILED: %s\n") (List.rev !failures);
    exit 1
  end;
  Printf.printf "chaos: all scenarios recovered (p95 %d ns, retention %.3f)\n"
    (percentile recs 95.0) min_retention
