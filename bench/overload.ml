(* Overload-control bench (writes BENCH_overload.json) --------------------
   The PR 9 robustness story end to end: a 4x4x4 torus carries a
   heavy-tailed background workload (class 3) when repeated 5x-capacity
   partition/aggregate incast volleys (class 0, fanout 30 into a host's 6
   ingress links) slam a fixed set of aggregators. With the overload
   controller armed — queue watermarks, strict-priority admission
   shedding, PAUSE backpressure and a waterfill class reserve — the
   highest class must keep >= 99% SLO attainment with a bounded p99.9
   while the background degrades smoothly (paced and shed, never
   corrupted: every offered byte is either delivered or accounted as
   shed). An unprotected run of the identical workload is reported for
   contrast, and a same-seed replay must be byte-identical. *)

let dims = [| 4; 4; 4 |]
let slo_ns = 1_000_000
let hi_fanout = 30 (* 5x the 6-link torus ingress of one aggregator *)

type outcome = {
  hi_offered : int;
  hi_completed : int;
  hi_attainment : float;
  hi_p99_us : float;
  hi_p999_us : float;
  bg_offered : int;
  bg_completed : int;
  bg_p99_us : float;
  shed_flows : int;
  shed_payload : int;
  pauses_sent : int;
  pauses_received : int;
  overload_epochs : int;
  shed_floor : int;
  violations : string list;
  checks : int;
  makespan_ns : int;
  snapshot : string;  (** byte-exact digest for the determinism check *)
}

let run_case ~quick ~protect ~p999_bound_ns ~name =
  let topo = Topology.torus dims in
  let cfg =
    {
      Sim.R2c2_sim.default_config with
      recompute_interval_ns = 50_000;
      queue_high_watermark = 25_000;
      queue_low_watermark = 6_000;
      overload_control = protect;
      slos = [ (0, slo_ns) ];
      reserve_priority = 1;
      class_reserve = Util.Units.fraction (if protect then 0.2 else 0.0);
      seed = 42;
    }
  in
  let t = Sim.R2c2_sim.create cfg topo in
  Sim.Metrics.set_goodput_bucket (Sim.R2c2_sim.metrics t) ~bucket_ns:50_000;
  (* A fresh same-seed RNG per case: both arms and the replay offer the
     byte-identical workload. *)
  let rng = Util.Rng.create 1234 in
  let bg =
    Workload.Flowgen.poisson_pareto ~priority:3 ~max_size:1_000_000 topo rng
      ~flows:(if quick then 200 else 500)
      ~mean_interarrival_ns:3_000.0
  in
  let incast =
    Workload.Flowgen.partition_aggregate ~priority:0 topo rng
      ~aggregators:(if quick then 2 else 4)
      ~fanout:hi_fanout
      ~rounds:(if quick then 3 else 6)
      ~round_interval_ns:150_000
  in
  let steps =
    [ Sim.Scenario.surge ~at:0 bg; Sim.Scenario.surge ~at:100_000 incast ]
  in
  let invariants =
    Sim.Scenario.Byte_conservation
    ::
    (if protect then
       [
         Sim.Scenario.Slo_attainment { priority = 0; min_attainment = 0.99 };
         Sim.Scenario.Tail_latency
           { priority = 0; percentile = 99.9; max_ns = p999_bound_ns };
       ]
     else [])
  in
  let violations = ref [] in
  let t0 = Unix.gettimeofday () in
  let report =
    Sim.Scenario.run
      ~on_violation:(fun m -> violations := m :: !violations)
      ~invariants t steps
  in
  let wall = Unix.gettimeofday () -. t0 in
  let r = Sim.R2c2_sim.results t in
  let open Sim.R2c2_sim in
  let m = r.metrics in
  let pct ~priority p =
    if Sim.Metrics.class_completed m ~priority = 0 then 0.0
    else Sim.Metrics.class_percentile m ~priority p /. 1_000.0
  in
  let buf = Buffer.create 65536 in
  List.iter
    (fun (f : Sim.Metrics.flow) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %d c%d %d->%d del=%d fin=%d\n" f.id f.priority f.src f.dst
           f.delivered f.finish_ns))
    (Sim.Metrics.all m);
  Buffer.add_string buf
    (Printf.sprintf "shed=%d/%dB pauses=%d/%d epochs=%d floor=%d inj=%d del=%d\n"
       r.shed_flows r.shed_payload r.pauses_sent r.pauses_received r.overload_epochs
       (Sim.R2c2_sim.shed_floor t) r.injected_payload r.delivered_payload);
  let makespan = ref 1 in
  List.iter
    (fun f ->
      if Sim.Metrics.complete m f then makespan := max !makespan f.Sim.Metrics.finish_ns)
    (Sim.Metrics.all m);
  Printf.printf
    "%-12s class0 %d/%d att=%.4f p99.9=%.0fus | shed %d pauses %d epochs %d (%.1fs)\n%!"
    name
    (Sim.Metrics.class_completed m ~priority:0)
    (List.length incast)
    (Sim.Metrics.slo_attainment m ~priority:0)
    (pct ~priority:0 99.9) r.shed_flows r.pauses_sent r.overload_epochs wall;
  {
    hi_offered = List.length incast;
    hi_completed = Sim.Metrics.class_completed m ~priority:0;
    hi_attainment = Sim.Metrics.slo_attainment m ~priority:0;
    hi_p99_us = pct ~priority:0 99.0;
    hi_p999_us = pct ~priority:0 99.9;
    bg_offered = List.length bg;
    bg_completed = Sim.Metrics.class_completed m ~priority:3;
    bg_p99_us = pct ~priority:3 99.0;
    shed_flows = r.shed_flows;
    shed_payload = r.shed_payload;
    pauses_sent = r.pauses_sent;
    pauses_received = r.pauses_received;
    overload_epochs = r.overload_epochs;
    shed_floor = Sim.R2c2_sim.shed_floor t;
    violations = List.rev !violations;
    checks = report.Sim.Scenario.checks;
    makespan_ns = !makespan;
    snapshot = Buffer.contents buf;
  }

let run ~quick () =
  (* p99.9 bound: the SLO plus the worst queueing a protected volley may
     see while the controller converges (measured with margin). *)
  let p999_bound_ns = 4 * slo_ns in
  let unprot = run_case ~quick ~protect:false ~p999_bound_ns ~name:"unprotected" in
  let prot = run_case ~quick ~protect:true ~p999_bound_ns ~name:"protected" in
  let replay = run_case ~quick ~protect:true ~p999_bound_ns ~name:"replay" in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter (fun v -> fail "invariant violated: %s" v) prot.violations;
  if prot.checks = 0 then fail "invariant monitors never evaluated";
  if prot.hi_attainment < 0.99 then
    fail "class-0 SLO attainment %.4f < 0.99" prot.hi_attainment;
  if prot.hi_p999_us > float_of_int p999_bound_ns /. 1_000.0 then
    fail "class-0 p99.9 %.0f us above the %d us bound" prot.hi_p999_us
      (p999_bound_ns / 1_000);
  (* Class 0 is never shed: every offered incast flow must complete. *)
  if prot.hi_completed <> prot.hi_offered then
    fail "class 0 completed %d of %d offered" prot.hi_completed prot.hi_offered;
  (* The machinery must actually engage at 5x load... *)
  if prot.overload_epochs = 0 then fail "no overloaded epochs — detection inert";
  if prot.shed_flows = 0 then fail "no background flows shed — admission inert";
  if prot.pauses_sent = 0 || prot.pauses_received = 0 then
    fail "no PAUSE backpressure (sent %d, received %d)" prot.pauses_sent
      prot.pauses_received;
  (* ...and degrade the background smoothly, not collapse it: every flow
     not shed still finishes, and the shed load is fully accounted. *)
  if prot.bg_completed + prot.shed_flows <> prot.bg_offered then
    fail "background flows unaccounted: %d completed + %d shed <> %d offered"
      prot.bg_completed prot.shed_flows prot.bg_offered;
  if prot.shed_payload = 0 then fail "shed flows carried no payload accounting";
  (* Same seed, same timeline: the replay must be byte-identical. *)
  if prot.snapshot <> replay.snapshot then fail "same-seed replay diverged";
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"overload\",\n\
      \  \"topology\": \"torus-4x4x4\",\n\
      \  \"incast_fanout\": %d,\n\
      \  \"overload_factor\": %.1f,\n\
      \  \"slo_ns\": %d,\n\
      \  \"hi_offered\": %d,\n\
      \  \"hi_completed\": %d,\n\
      \  \"hi_slo_attainment\": %.4f,\n\
      \  \"hi_p99_us\": %.1f,\n\
      \  \"hi_p999_us\": %.1f,\n\
      \  \"hi_attainment_unprotected\": %.4f,\n\
      \  \"hi_p999_us_unprotected\": %.1f,\n\
      \  \"bg_offered\": %d,\n\
      \  \"bg_completed\": %d,\n\
      \  \"bg_p99_us\": %.1f,\n\
      \  \"shed_flows\": %d,\n\
      \  \"shed_payload_bytes\": %d,\n\
      \  \"pauses_sent\": %d,\n\
      \  \"pauses_received\": %d,\n\
      \  \"overload_epochs\": %d,\n\
      \  \"final_shed_floor\": %d,\n\
      \  \"invariant_checks\": %d,\n\
      \  \"makespan_ns\": %d,\n\
      \  \"violations\": [%s],\n\
      \  \"deterministic\": %b,\n\
      \  \"all_passed\": %b\n\
       }\n"
      hi_fanout
      (float_of_int hi_fanout /. 6.0)
      slo_ns prot.hi_offered prot.hi_completed prot.hi_attainment prot.hi_p99_us
      prot.hi_p999_us unprot.hi_attainment unprot.hi_p999_us prot.bg_offered
      prot.bg_completed prot.bg_p99_us prot.shed_flows prot.shed_payload prot.pauses_sent
      prot.pauses_received prot.overload_epochs prot.shed_floor prot.checks
      prot.makespan_ns
      (String.concat ", " (List.map (Printf.sprintf "%S") prot.violations))
      (prot.snapshot = replay.snapshot)
      (!failures = [])
  in
  let oc = open_out "BENCH_overload.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "overload: FAILED: %s\n") (List.rev !failures);
    exit 1
  end;
  Printf.printf
    "overload: class 0 rode out %.0fx incast (attainment %.4f, p99.9 %.0f us)\n"
    (float_of_int hi_fanout /. 6.0)
    prot.hi_attainment prot.hi_p999_us
