(* Benchmark harness regenerating every table and figure of the paper's
   evaluation. `main.exe` runs all experiments at default (scaled-down)
   parameters; `main.exe <exp-id>` runs one; `--paper` uses paper-scale
   parameters where that is tractable. See DESIGN.md §4 for the index. *)

let all_experiments ~paper =
  Experiments.fig2 ();
  if paper then Experiments.fig7 ~flows:1000 ~size:10_000_000 ()
  else Experiments.fig7 ();
  Experiments.fig8 ();
  Experiments.fig9 ();
  let dims = [| 8; 8; 8 |] in
  let flows = 2000 in
  Experiments.fig10_11 ~dims ~flows ();
  Experiments.fig12_13_14 ~dims ~flows ();
  Experiments.fig15 ();
  Experiments.fig16 ();
  Experiments.fig17 ();
  if paper then Experiments.fig18 ~dims:[| 8; 8; 8 |] ~pop_size:100 ~generations:30 ()
  else Experiments.fig18 ();
  Experiments.fig19 ();
  Experiments.ablations ()

let () =
  let usage () =
    print_endline
      "usage: main.exe [exp-id] [--paper] [--quick]\n\
       exp-ids: fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16\n\
      \         fig17 fig18 fig19 ablation micro churn chaos graychaos overload control-loss\n\
      \         hotpath all (default: all)\n\
       churn writes BENCH_waterfill.json; chaos writes BENCH_failure.json;\n\
      \ graychaos writes BENCH_graychaos.json; overload writes BENCH_overload.json;\n\
       control-loss writes BENCH_controlloss.json; --quick runs a smoke-sized\n\
       variant";
    exit 1
  in
  let args = List.tl (Array.to_list Sys.argv) in
  let paper = List.mem "--paper" args in
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--paper" && a <> "--quick") args in
  let dims = [| 8; 8; 8 |] in
  let flows = 2000 in
  match args with
  | [] | [ "all" ] -> all_experiments ~paper
  | [ "fig2" ] -> Experiments.fig2 ()
  | [ "fig7" ] ->
      if paper then Experiments.fig7 ~flows:1000 ~size:10_000_000 () else Experiments.fig7 ()
  | [ "fig8" ] -> Experiments.fig8 ()
  | [ "fig9" ] -> Experiments.fig9 ()
  | [ "fig10" ] | [ "fig11" ] -> Experiments.fig10_11 ~dims ~flows ()
  | [ "fig12" ] | [ "fig13" ] | [ "fig14" ] -> Experiments.fig12_13_14 ~dims ~flows ()
  | [ "fig15" ] -> Experiments.fig15 ()
  | [ "fig16" ] -> Experiments.fig16 ()
  | [ "fig17" ] -> Experiments.fig17 ()
  | [ "fig18" ] ->
      if paper then Experiments.fig18 ~dims:[| 8; 8; 8 |] ~pop_size:100 ~generations:30 ()
      else Experiments.fig18 ()
  | [ "fig19" ] -> Experiments.fig19 ()
  | [ "ablation" ] -> Experiments.ablations ()
  | [ "micro" ] -> Micro.run ()
  | [ "churn" ] -> Micro.churn ~quick ()
  | [ "chaos" ] -> Chaos.run ~quick ()
  | [ "graychaos" ] -> Graychaos.run ~quick ()
  | [ "overload" ] -> Overload.run ~quick ()
  | [ "control-loss" ] -> Controlloss.run ~quick ()
  | [ "hotpath" ] -> Hotpath.run ~quick ()
  | _ -> usage ()
