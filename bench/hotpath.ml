(* Hot-path micro-benchmark: raw packet throughput of the simulator's data
   plane (writes BENCH_hotpath.json).

   512 single-hop streams on the 8x8x8 torus — the 512-node rack the paper
   sizes R2C2 for — each keeping a fixed window of packets in flight; every
   delivery immediately injects the next packet of its stream, so the
   engine spends all its time in the
   enqueue -> serialize -> propagate -> arrive cycle that dominates every
   experiment, with ~1k events pending (the regime where the old binary
   heap paid its O(log n)). Reported: wall-clock packets per second and minor heap words
   allocated per packet in steady state (measured after a warmup tranche so
   one-time setup allocation is excluded).

   [baseline_pps] is the packets/sec of this same driver measured at the
   commit before the zero-allocation data plane landed (record-per-packet
   Net, binary-heap engine); the JSON reports the speedup against it. The
   CI `hotpath-smoke` job fails the run if steady-state allocation exceeds
   [alloc_budget] words per packet. *)

let streams = 512
let window = 32
let pkt_bytes = 1500

(* Pre-PR measurement of this driver (torus 8x8x8, 512 streams, window 32,
   1500 B packets): record-packet Net + binary-heap engine delivered
   ~1.27 M packets/s at ~61 minor words per packet. *)
let baseline_pps = 1_270_000.0
let alloc_budget = 2.0

let run ~quick () =
  let per_stream = if quick then 2_000 else 20_000 in
  let warmup = per_stream / 10 in
  let topo = Topology.torus [| 8; 8; 8 |] in
  let eng = Sim.Engine.create () in
  let net =
    Sim.Net.create eng topo ~link_gbps:(Util.Units.gbps 100.0) ~hop_latency_ns:100 ()
  in
  (* Stream s runs from node s to its +x ring neighbor: always adjacent,
     and every stream owns a distinct link. *)
  let route_of s = [| s; (s - (s mod 8)) + (((s mod 8) + 1) mod 8) |] in
  (* One interned route per stream, shared by all its packets. *)
  let routes = Array.init streams (fun s -> Sim.Net.intern_route net (route_of s)) in
  let sent = Array.make streams 0 in
  let total = streams * per_stream in
  let warm_total = streams * warmup in
  let delivered = ref 0 in
  let t0 = ref 0.0 and w0 = ref 0.0 in
  let t1 = ref 0.0 and w1 = ref 0.0 in
  let send s =
    Sim.Net.send_data net ~flow:s ~seq:sent.(s) ~last:false ~bytes:pkt_bytes
      ~route:routes.(s);
    sent.(s) <- sent.(s) + 1
  in
  Sim.Net.on_deliver net (fun pkt ->
      incr delivered;
      if !delivered = warm_total then begin
        t0 := Unix.gettimeofday ();
        w0 := Gc.minor_words ()
      end
      else if !delivered = warm_total + total then begin
        t1 := Unix.gettimeofday ();
        w1 := Gc.minor_words ()
      end;
      if Sim.Net.kind net pkt = Sim.Net.code_data then begin
        let flow = Sim.Net.data_flow net pkt in
        if sent.(flow) < warmup + per_stream then send flow
      end);
  for s = 0 to streams - 1 do
    for _ = 1 to window do
      send s
    done
  done;
  Sim.Engine.run eng;
  assert (!delivered = warm_total + total);
  let elapsed = !t1 -. !t0 in
  let pps = float_of_int total /. elapsed in
  let words_per_pkt = (!w1 -. !w0) /. float_of_int total in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"hotpath\",\n\
      \  \"topology\": \"torus-8x8x8\",\n\
      \  \"streams\": %d,\n\
      \  \"window\": %d,\n\
      \  \"bytes_per_packet\": %d,\n\
      \  \"packets_measured\": %d,\n\
      \  \"packets_per_sec\": %.0f,\n\
      \  \"minor_words_per_packet\": %.2f,\n\
      \  \"baseline_packets_per_sec\": %.0f,\n\
      \  \"speedup_vs_baseline\": %.1f,\n\
      \  \"alloc_budget_words_per_packet\": %.1f,\n\
      \  \"quick\": %b\n\
       }\n"
      streams window pkt_bytes total pps words_per_pkt baseline_pps
      (pps /. baseline_pps) alloc_budget quick
  in
  let oc = open_out "BENCH_hotpath.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if words_per_pkt > alloc_budget then begin
    Printf.eprintf "hotpath: %.2f minor words/packet exceeds the %.1f budget\n"
      words_per_pkt alloc_budget;
    exit 1
  end
