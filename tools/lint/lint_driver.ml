(* Composes the three lint passes and owns reporting (DESIGN.md §13).

   Pass order matters only in that suppression runs last: the parse
   pass (Lint_core) builds one `scanned` record per file — raw
   violations plus the file's `lint: allow` table — then the lifetime
   pass (Lint_life, files under `lib/sim`) and the typed pass
   (Lint_typed, `.cmt` files against the ownership registry) merge
   their violations into the same records, and `finalize` applies the
   allows once over everything. An L2 or M3 can therefore be
   suppressed exactly like a D3: a justified comment on the offending
   line. Typed-pass violations attributed to files outside the linted
   roots (notably `ownership.sexp` itself) bypass suppression — there
   is no source line to carry an allow comment.

   The driver also emits `LINT_REPORT.json`: per-rule counts plus the
   full mutable-state ownership map. That file is the machine-readable
   shard-readiness artifact the multicore PR consumes (which items are
   `shard_owned`, where they live), checked in at the repo root and
   kept current by the promoting `@lint` rule. *)

type config = {
  roots : string list;  (* directories of .ml files; tier by basename *)
  relaxed : string list;  (* roots forced to the Relaxed tier *)
  registry_file : string option;  (* ownership.sexp; None skips the M pass *)
  cmt_root : string option;  (* where to find .cmt files; None skips the M pass *)
}

type full_report = {
  core : Lint_core.report;
  ownership : (Lint_typed.inv_item * string option) list;
      (* inventory item, registered class (None = unregistered, which M3
         already flagged) *)
  effects : Lint_effects.result option;
      (* the interprocedural effect map; None when the typed pass is off *)
  timings : (string * float) list;  (* pass name, wall-clock ms, run order *)
}

let tier_for config root =
  if List.mem root config.relaxed then Lint_core.Relaxed
  else Lint_core.tier_of_root root

let run config =
  let timings = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    timings := (name, (Unix.gettimeofday () -. t0) *. 1000.) :: !timings;
    r
  in
  (* Parse pass: scan every implementation, keeping the records open;
     interfaces get a comment-only scan so their allows (and stale
     allows) are tracked too. *)
  let scanned =
    timed "parse" (fun () ->
        List.concat_map
          (fun root ->
            let tier = tier_for config root in
            List.map
              (fun file ->
                (tier, Lint_core.scan_source ~file ~tier (Lint_core.read_file file)))
              (Lint_core.ml_files_under root)
            @ List.map
                (fun file -> (tier, Lint_core.scan_allows_only ~file (Lint_core.read_file file)))
                (Lint_core.mli_files_under root))
          config.roots)
  in
  (* Lifetime pass: the arena discipline lives under lib/sim. *)
  timed "lifetime" (fun () ->
      List.iter
        (fun ((tier, sc) : Lint_core.tier * Lint_core.scanned) ->
          match (tier, sc.s_structure) with
          | Lint_core.Lib, Some str when Lint_core.in_sim sc.s_file ->
              Lint_core.add_violations sc (Lint_life.scan_structure ~file:sc.s_file str)
          | _ -> ())
        scanned);
  (* Typed passes share one registry + .cmt load. *)
  let loaded =
    timed "load_cmt" (fun () ->
        match (config.registry_file, config.cmt_root) with
        | Some reg_file, Some cmt_root ->
            Some (Lint_typed.load_registry reg_file, Lint_typed.load_units ~cmt_root)
        | _ -> None)
  in
  (* Typed pass: inventory + registry over the .cmt files. *)
  let ownership, typed_violations =
    timed "typed" (fun () ->
        match loaded with
        | Some (registry, units) ->
            let r = Lint_typed.analyze ~registry units in
            (r.inventory, r.typed_violations)
        | None -> ([], []))
  in
  (* Effect pass: the interprocedural shard-safety proof (E-rules). *)
  let effects =
    timed "effects" (fun () ->
        match loaded with
        | Some (registry, units) -> Some (Lint_effects.analyze ~registry units)
        | None -> None)
  in
  let eff_violations =
    match effects with Some e -> e.Lint_effects.eff_violations | None -> []
  in
  (* Attribute typed violations to their scanned files so allows apply;
     whatever has no scanned record (ownership.sexp) stays as-is. *)
  let orphans =
    List.filter
      (fun (v : Lint_core.violation) ->
        match List.find_opt (fun (_, sc) -> sc.Lint_core.s_file = v.file) scanned with
        | Some (_, sc) ->
            Lint_core.add_violations sc [ v ];
            false
        | None -> true)
      (typed_violations @ eff_violations)
  in
  let core =
    List.fold_left
      (fun acc (_, sc) -> Lint_core.merge acc (Lint_core.finalize sc))
      Lint_core.empty scanned
  in
  let core = { core with Lint_core.violations = core.Lint_core.violations @ orphans } in
  { core; ownership; effects; timings = List.rev !timings }

(* -- JSON ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let per_rule_violations (r : Lint_core.report) =
  List.map
    (fun rule ->
      (rule, List.length (List.filter (fun (v : Lint_core.violation) -> v.rule = rule) r.violations)))
    (Lint_core.rules @ [ "LINT" ])

(* Hand-rolled like the BENCH_*.json writers: key order fixed, output
   byte-stable for a given repo state. *)
let to_json report =
  let buf = Buffer.create 4096 in
  let r = report.core in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"files\": %d,\n" r.files);
  Buffer.add_string buf
    (Printf.sprintf "  \"violation_count\": %d,\n" (List.length r.violations));
  Buffer.add_string buf (Printf.sprintf "  \"suppressed\": %d,\n" r.suppressed);
  Buffer.add_string buf
    (Printf.sprintf "  \"stale_allow_count\": %d,\n" (List.length r.unused_allows));
  let kv_ints name l =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {" name);
    List.iteri
      (fun i (k, n) ->
        Buffer.add_string buf (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ") k n))
      l;
    Buffer.add_string buf "},\n"
  in
  kv_ints "violations_by_rule" (per_rule_violations r);
  kv_ints "suppressions_by_rule" r.suppressed_by_rule;
  Buffer.add_string buf "  \"timings_ms\": {";
  List.iteri
    (fun i (name, ms) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\": %.1f" (if i = 0 then "" else ", ") (json_escape name) ms))
    report.timings;
  Buffer.add_string buf "},\n";
  Buffer.add_string buf "  \"violations\": [";
  List.iteri
    (fun i (v : Lint_core.violation) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\"}"
           (if i = 0 then "" else ",")
           (json_escape v.file) v.line (json_escape v.rule) (json_escape v.message)))
    r.violations;
  Buffer.add_string buf (if r.violations = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"stale_allows\": [";
  List.iteri
    (fun i (sa : Lint_core.stale_allow) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\n    {\"file\": \"%s\", \"line\": %d, \"rules\": [%s]}"
           (if i = 0 then "" else ",")
           (json_escape sa.sa_file) sa.sa_line
           (String.concat ", " (List.map (fun r -> "\"" ^ json_escape r ^ "\"") sa.sa_rules))))
    r.unused_allows;
  Buffer.add_string buf (if r.unused_allows = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"ownership\": [";
  List.iteri
    (fun i ((item : Lint_typed.inv_item), cls) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s\n    {\"item\": \"%s\", \"class\": %s, \"file\": \"%s\", \"line\": %d, \
            \"mutable_via\": \"%s\"}"
           (if i = 0 then "" else ",")
           (json_escape item.i_name)
           (match cls with
           | Some c -> "\"" ^ json_escape c ^ "\""
           | None -> "null")
           (json_escape item.i_file) item.i_line
           (json_escape item.i_why_mutable)))
    report.ownership;
  Buffer.add_string buf (if report.ownership = [] then "]\n" else "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_json path report =
  let oc = open_out path in
  output_string oc (to_json report);
  close_out oc

(* SHARD_REPORT.json: the effect map and cut-set the multicore PR
   consumes. Unlike LINT_REPORT.json this file carries no timings —
   it must be byte-identical for a given repo state, because CI diffs
   the checked-in copy against the freshly built one (the ratchet). *)
let shard_to_json (e : Lint_effects.result) =
  let buf = Buffer.create 4096 in
  let strings l =
    String.concat ", " (List.map (fun s -> "\"" ^ json_escape s ^ "\"") l)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"r2c2-shard-report/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"roots\": [%s],\n" (strings e.eff_roots));
  Buffer.add_string buf (Printf.sprintf "  \"analyzed_fns\": %d,\n" e.analyzed_fns);
  Buffer.add_string buf (Printf.sprintf "  \"reachable_fns\": %d,\n" e.reachable_fns);
  Buffer.add_string buf "  \"cut_set\": [";
  List.iteri
    (fun i (c : Lint_effects.cut_entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s\n    {\"item\": \"%s\", \"class\": \"%s\", \"key\": %s, \"via\": \"%s\", \
            \"writers\": [%s]}"
           (if i = 0 then "" else ",")
           (json_escape c.c_item) (json_escape c.c_class)
           (match c.c_key with Some k -> "\"" ^ json_escape k ^ "\"" | None -> "null")
           (json_escape c.c_via) (strings c.c_writers)))
    e.cut_set;
  Buffer.add_string buf (if e.cut_set = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"effects\": [";
  List.iteri
    (fun i (f : Lint_effects.fn_effect) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s\n    {\"fn\": \"%s\", \"reachable\": %b, \"widened\": %b, \"param_ho\": \
            %b, \"reads\": [%s], \"writes\": [%s]}"
           (if i = 0 then "" else ",")
           (json_escape f.f_name) f.f_reachable f.f_widened f.f_param_ho
           (strings f.f_reads) (strings f.f_writes)))
    e.fn_effects;
  Buffer.add_string buf (if e.fn_effects = [] then "]\n" else "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_shard_json path e =
  let oc = open_out path in
  output_string oc (shard_to_json e);
  close_out oc

(* -- text report ----------------------------------------------------------- *)

let report_and_exit_code oc report =
  let code = Lint_core.report_and_exit_code oc report.core in
  if report.ownership <> [] then begin
    let n_reg =
      List.length (List.filter (fun (_, c) -> c <> None) report.ownership)
    in
    Printf.fprintf oc "  ownership map: %d mutable item(s), %d registered\n"
      (List.length report.ownership) n_reg
  end;
  (match report.effects with
  | Some e ->
      let witnessed =
        List.length
          (List.filter (fun (c : Lint_effects.cut_entry) -> c.c_via = "witnessed") e.cut_set)
      in
      Printf.fprintf oc
        "  effect map: %d function(s), %d reachable from dispatch roots; cut-set %d \
         region(s), %d witnessed\n"
        e.analyzed_fns e.reachable_fns (List.length e.cut_set) witnessed
  | None -> ());
  code
