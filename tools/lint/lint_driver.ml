(* Composes the three lint passes and owns reporting (DESIGN.md §13).

   Pass order matters only in that suppression runs last: the parse
   pass (Lint_core) builds one `scanned` record per file — raw
   violations plus the file's `lint: allow` table — then the lifetime
   pass (Lint_life, files under `lib/sim`) and the typed pass
   (Lint_typed, `.cmt` files against the ownership registry) merge
   their violations into the same records, and `finalize` applies the
   allows once over everything. An L2 or M3 can therefore be
   suppressed exactly like a D3: a justified comment on the offending
   line. Typed-pass violations attributed to files outside the linted
   roots (notably `ownership.sexp` itself) bypass suppression — there
   is no source line to carry an allow comment.

   The driver also emits `LINT_REPORT.json`: per-rule counts plus the
   full mutable-state ownership map. That file is the machine-readable
   shard-readiness artifact the multicore PR consumes (which items are
   `shard_owned`, where they live), checked in at the repo root and
   kept current by the promoting `@lint` rule. *)

type config = {
  roots : string list;  (* directories of .ml files; tier by basename *)
  relaxed : string list;  (* roots forced to the Relaxed tier *)
  registry_file : string option;  (* ownership.sexp; None skips the M pass *)
  cmt_root : string option;  (* where to find .cmt files; None skips the M pass *)
}

type full_report = {
  core : Lint_core.report;
  ownership : (Lint_typed.inv_item * string option) list;
      (* inventory item, registered class (None = unregistered, which M3
         already flagged) *)
}

let tier_for config root =
  if List.mem root config.relaxed then Lint_core.Relaxed
  else Lint_core.tier_of_root root

let run config =
  (* Parse pass: scan every file, keeping the records open. *)
  let scanned =
    List.concat_map
      (fun root ->
        let tier = tier_for config root in
        List.map
          (fun file -> (tier, Lint_core.scan_source ~file ~tier (Lint_core.read_file file)))
          (Lint_core.ml_files_under root))
      config.roots
  in
  (* Lifetime pass: the arena discipline lives under lib/sim. *)
  List.iter
    (fun ((tier, sc) : Lint_core.tier * Lint_core.scanned) ->
      match (tier, sc.s_structure) with
      | Lint_core.Lib, Some str when Lint_core.in_sim sc.s_file ->
          Lint_core.add_violations sc (Lint_life.scan_structure ~file:sc.s_file str)
      | _ -> ())
    scanned;
  (* Typed pass: inventory + registry over the .cmt files. *)
  let ownership, typed_violations =
    match (config.registry_file, config.cmt_root) with
    | Some reg_file, Some cmt_root ->
        let registry = Lint_typed.load_registry reg_file in
        let units = Lint_typed.load_units ~cmt_root in
        let r = Lint_typed.analyze ~registry units in
        (r.inventory, r.typed_violations)
    | _ -> ([], [])
  in
  (* Attribute typed violations to their scanned files so allows apply;
     whatever has no scanned record (ownership.sexp) stays as-is. *)
  let orphans =
    List.filter
      (fun (v : Lint_core.violation) ->
        match List.find_opt (fun (_, sc) -> sc.Lint_core.s_file = v.file) scanned with
        | Some (_, sc) ->
            Lint_core.add_violations sc [ v ];
            false
        | None -> true)
      typed_violations
  in
  let core =
    List.fold_left
      (fun acc (_, sc) -> Lint_core.merge acc (Lint_core.finalize sc))
      Lint_core.empty scanned
  in
  let core = { core with Lint_core.violations = core.Lint_core.violations @ orphans } in
  { core; ownership }

(* -- JSON ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let per_rule_violations (r : Lint_core.report) =
  List.map
    (fun rule ->
      (rule, List.length (List.filter (fun (v : Lint_core.violation) -> v.rule = rule) r.violations)))
    (Lint_core.rules @ [ "LINT" ])

(* Hand-rolled like the BENCH_*.json writers: key order fixed, output
   byte-stable for a given repo state. *)
let to_json report =
  let buf = Buffer.create 4096 in
  let r = report.core in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"files\": %d,\n" r.files);
  Buffer.add_string buf
    (Printf.sprintf "  \"violation_count\": %d,\n" (List.length r.violations));
  Buffer.add_string buf (Printf.sprintf "  \"suppressed\": %d,\n" r.suppressed);
  Buffer.add_string buf
    (Printf.sprintf "  \"stale_allow_count\": %d,\n" (List.length r.unused_allows));
  let kv_ints name l =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {" name);
    List.iteri
      (fun i (k, n) ->
        Buffer.add_string buf (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ") k n))
      l;
    Buffer.add_string buf "},\n"
  in
  kv_ints "violations_by_rule" (per_rule_violations r);
  kv_ints "suppressions_by_rule" r.suppressed_by_rule;
  Buffer.add_string buf "  \"violations\": [";
  List.iteri
    (fun i (v : Lint_core.violation) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\"}"
           (if i = 0 then "" else ",")
           (json_escape v.file) v.line (json_escape v.rule) (json_escape v.message)))
    r.violations;
  Buffer.add_string buf (if r.violations = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"stale_allows\": [";
  List.iteri
    (fun i (sa : Lint_core.stale_allow) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\n    {\"file\": \"%s\", \"line\": %d, \"rules\": [%s]}"
           (if i = 0 then "" else ",")
           (json_escape sa.sa_file) sa.sa_line
           (String.concat ", " (List.map (fun r -> "\"" ^ json_escape r ^ "\"") sa.sa_rules))))
    r.unused_allows;
  Buffer.add_string buf (if r.unused_allows = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"ownership\": [";
  List.iteri
    (fun i ((item : Lint_typed.inv_item), cls) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s\n    {\"item\": \"%s\", \"class\": %s, \"file\": \"%s\", \"line\": %d, \
            \"mutable_via\": \"%s\"}"
           (if i = 0 then "" else ",")
           (json_escape item.i_name)
           (match cls with
           | Some c -> "\"" ^ json_escape c ^ "\""
           | None -> "null")
           (json_escape item.i_file) item.i_line
           (json_escape item.i_why_mutable)))
    report.ownership;
  Buffer.add_string buf (if report.ownership = [] then "]\n" else "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_json path report =
  let oc = open_out path in
  output_string oc (to_json report);
  close_out oc

(* -- text report ----------------------------------------------------------- *)

let report_and_exit_code oc report =
  let code = Lint_core.report_and_exit_code oc report.core in
  if report.ownership <> [] then begin
    let n_reg =
      List.length (List.filter (fun (_, c) -> c <> None) report.ownership)
    in
    Printf.fprintf oc "  ownership map: %d mutable item(s), %d registered\n"
      (List.length report.ownership) n_reg
  end;
  code
