(* L-rules: arena-lifetime discipline on the packet path (DESIGN.md §13).

   PR 6 made packets and routes manual-lifetime objects: a route is a
   refcounted `Arena.Ints` slice minted by `Net.intern_route` and dropped
   by `Net.release_route`; a packet is an `Arena.alloc` handle recycled by
   `Arena.free`. The runtime detects double frees but a leaked or stale
   handle is silent until the pool's drift corrupts a later run. This
   pass proves the discipline statically, intraprocedurally, in the same
   symbolic style as the U3 offset walker (parsetree only, no typing):

   L1  a handle minted by `intern_route`/`intern`/`Arena.Ints.of_array` /
       `Arena.alloc`/`alloc_uninit`/`alloc_pkt` and bound to a variable
       must reach a release on EVERY path through its binding scope —
       "never released" and "released on only some paths" both flag, as
       does minting a handle and discarding the result outright.
   L2  a released handle is dead: using it, releasing it again (on any
       path), letting it escape after release, or handing it to the
       wrong releaser (a route to `Arena.free`, a packet to
       `release_route`) all flag.

   The walk is an exists-path abstract interpretation over a four-point
   lattice per tracked handle:

       Live --release--> Released        (joins: Live ⊔ Released =
       anything --escape--> Escaped       MaybeReleased; Escaped wins)

   Ownership transfer keeps the rules honest on real code: a handle that
   escapes — returned, stored in a record/array/closure, or passed to a
   function that is neither a releaser nor a known borrower — is assumed
   to transfer ownership and stops being tracked (the releasing module
   is then responsible; `tcp_sim` storing interned routes in flow state
   is the canonical example). Known borrowers (`send_*`, arena
   accessors, comparison/arithmetic operators, printers) do NOT transfer
   ownership, which is what lets the walker prove the dominant pattern

       let route = Net.intern_route t.net path in
       Net.send_data t.net … ~route;
       Net.release_route t.net route

   end-to-end. Branches that syntactically diverge (`raise`,
   `invalid_arg`, `failwith`, `assert false`, `exit`) are exempt from
   the release obligation, matching the runtime (the pool dies with the
   process). Lambdas are analyzed as fresh scopes; capturing a tracked
   handle in a lambda is an escape (the closure may outlive the scope).
   The test suite cross-checks the walker against a reference
   interpreter over qcheck-generated alloc/release/use programs. *)

type kind = Route | Pkt

let kind_name = function Route -> "route" | Pkt -> "packet"

let alloc_kind = function
  | "intern_route" | "intern" | "of_array" -> Some Route
  | "alloc" | "alloc_uninit" | "alloc_pkt" -> Some Pkt
  | _ -> None

let release_kind = function
  | "release_route" | "release" -> Some Route
  | "free" | "free_pkt" -> Some Pkt
  | _ -> None

(* Functions that read through a handle without taking ownership. A
   conservative, greppable list: arena/slice accessors, the Net send
   API (callers release after sending — Net retains per packet), and
   pure operators a handle can flow through as a plain int. *)
let borrow_names =
  [
    "retain_route"; "retain"; "get"; "set"; "slen"; "sget"; "fget"; "fset";
    "length"; "is_live"; "base"; "width"; "live"; "capacity"; "high_water";
    "ignore"; "min"; "max"; "succ"; "pred"; "abs"; "not";
    "printf"; "eprintf"; "fprintf"; "sprintf";
    "="; "<>"; "=="; "!="; "<"; ">"; "<="; ">=";
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
  ]

let is_borrow name =
  List.mem name borrow_names
  || String.length name > 5 && String.sub name 0 5 = "send_"

let diverging_names = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

type status = Live | MaybeReleased | Released | Escaped

type entry = { e_kind : kind; e_status : status; e_loc : Location.t }

(* State: tracked handles in scope, innermost first. Purely functional so
   branches fork it freely. *)
type state = (string * entry) list

let join_status a b =
  match (a, b) with
  | Escaped, _ | _, Escaped -> Escaped
  | Released, Released -> Released
  | Live, Live -> Live
  | _ -> MaybeReleased

(* Both branches bind the same scope, so the domains match. *)
let join_state (a : state) (b : state) : state =
  List.map2
    (fun (n, ea) (n', eb) ->
      assert (n = n');
      (n, { ea with e_status = join_status ea.e_status eb.e_status }))
    a b

let set_status st name status =
  List.map (fun (n, e) -> if n = name then (n, { e with e_status = status }) else (n, e)) st

type ctx = { file : string; mutable out : Lint_core.violation list }

let add ctx rule (loc : Location.t) message =
  ctx.out <-
    { Lint_core.file = ctx.file; line = loc.loc_start.pos_lnum; rule; message } :: ctx.out

let last_component lid =
  match (try Longident.flatten lid with Misc.Fatal_error -> []) with
  | [] -> ""
  | l -> List.nth l (List.length l - 1)

let fn_name (e : Parsetree.expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> last_component txt | _ -> ""

(* -- events ---------------------------------------------------------------- *)

let on_use ctx st name loc =
  match List.assoc_opt name st with
  | Some { e_status = Released; e_kind; _ } ->
      add ctx "L2" loc
        (Printf.sprintf "%s handle '%s' used after release" (kind_name e_kind) name);
      st
  | Some { e_status = MaybeReleased; e_kind; _ } ->
      add ctx "L2" loc
        (Printf.sprintf "%s handle '%s' used after release on some path(s)"
           (kind_name e_kind) name);
      st
  | _ -> st

let on_escape ctx st name loc =
  match List.assoc_opt name st with
  | Some { e_status = Released; e_kind; _ } ->
      add ctx "L2" loc
        (Printf.sprintf "%s handle '%s' escapes after release" (kind_name e_kind) name);
      set_status st name Escaped
  | Some { e_status = MaybeReleased; e_kind; _ } ->
      add ctx "L2" loc
        (Printf.sprintf "%s handle '%s' escapes after release on some path(s)"
           (kind_name e_kind) name);
      set_status st name Escaped
  | Some _ -> set_status st name Escaped
  | None -> st

let on_release ctx st name ~releaser loc =
  match List.assoc_opt name st with
  | None -> st
  | Some { e_status; e_kind; _ } -> (
      (match releaser with
      | Some rk when rk <> e_kind ->
          add ctx "L2" loc
            (Printf.sprintf
               "%s handle '%s' passed to a %s releaser — mismatched release recycles the \
                wrong pool"
               (kind_name e_kind) name (kind_name rk))
      | _ -> ());
      match e_status with
      | Escaped -> st
      | Released ->
          add ctx "L2" loc
            (Printf.sprintf "%s handle '%s' released twice" (kind_name e_kind) name);
          st
      | MaybeReleased ->
          add ctx "L2" loc
            (Printf.sprintf "%s handle '%s' released twice on some path(s)"
               (kind_name e_kind) name);
          set_status st name Released
      | Live -> set_status st name Released)

let on_scope_end ctx st name =
  match List.assoc_opt name st with
  | Some { e_status = Live; e_kind; e_loc } ->
      add ctx "L1" e_loc
        (Printf.sprintf
           "%s handle '%s' is never released on any path through its scope; call %s before \
            the binding goes out of scope (or hand ownership off explicitly)"
           (kind_name e_kind) name
           (match e_kind with Route -> "release_route" | Pkt -> "Arena.free"))
  | Some { e_status = MaybeReleased; e_kind; e_loc } ->
      add ctx "L1" e_loc
        (Printf.sprintf
           "%s handle '%s' is released on only some paths through its scope — every branch \
            must release exactly once"
           (kind_name e_kind) name)
  | _ -> ()

(* -- the walk --------------------------------------------------------------- *)

open Parsetree

let alloc_of (e : expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> alloc_kind (fn_name fn)
  | _ -> None

let is_diverging_apply fn = List.mem (fn_name fn) diverging_names

(* walk returns [None] when every path through [e] diverges (raises), so
   enclosing scopes drop the release obligation on that path. *)
let rec walk ctx (st : state) (e : expression) : state option =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident name; loc } ->
      (* A bare tracked ident in value position: returned, stored,
         aliased — ownership leaves this scope. *)
      Some (on_escape ctx st name loc)
  | Pexp_ident _ | Pexp_constant _ | Pexp_construct (_, None) | Pexp_variant (_, None)
  | Pexp_unreachable ->
      Some st
  | Pexp_let (Asttypes.Nonrecursive, [ vb ], body) -> walk_let ctx st vb body
  | Pexp_sequence (a, b) -> (
      (* A minted handle in statement position is dropped on the floor:
         flag it here rather than silently losing it. *)
      (match alloc_of a with
      | Some k ->
          add ctx "L1" a.pexp_loc
            (Printf.sprintf
               "%s handle minted and immediately discarded; bind it and release it (or \
                store it somewhere that owns it)"
               (kind_name k))
      | None -> ());
      match walk ctx st a with None -> None | Some st -> walk ctx st b)
  | Pexp_ifthenelse (c, t, f) -> (
      match walk ctx st c with
      | None -> None
      | Some st0 -> (
          let tb = walk ctx st0 t in
          let fb = match f with None -> Some st0 | Some f -> walk ctx st0 f in
          match (tb, fb) with
          | None, x | x, None -> x
          | Some a, Some b -> Some (join_state a b)))
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) -> (
      match walk ctx st scrut with
      | None when (match e.pexp_desc with Pexp_match _ -> true | _ -> false) -> None
      | None -> Some st (* try: the handler still runs from the pre state *)
      | Some st0 ->
          let results =
            List.filter_map
              (fun c ->
                let st0 = shadow ctx st0 c.pc_lhs in
                let st0 =
                  match c.pc_guard with
                  | None -> Some st0
                  | Some g -> walk ctx st0 g
                in
                match st0 with None -> None | Some st0 -> walk ctx st0 c.pc_rhs)
              cases
          in
          let results =
            (* try: the no-exception path falls through with the body's
               state as-is. *)
            match e.pexp_desc with
            | Pexp_try _ -> st0 :: results
            | _ -> results
          in
          (match results with
          | [] -> None
          | r :: rest -> Some (List.fold_left join_state r rest)))
  | Pexp_apply (fn, args) -> walk_apply ctx st e fn args
  | Pexp_fun (_, default, pat, body) ->
      let st = escape_all ctx st (match default with None -> [] | Some d -> [ d ]) in
      let st = escape_all ctx st [ body ] in
      ignore (shadow ctx st pat);
      scan_scope ctx ~file:ctx.file body;
      Some st
  | Pexp_function cases ->
      let st =
        List.fold_left
          (fun st c ->
            let st = escape_all ctx st (Option.to_list c.pc_guard @ [ c.pc_rhs ]) in
            scan_scope ctx ~file:ctx.file c.pc_rhs;
            st)
          st cases
      in
      Some st
  | Pexp_while (c, body) -> walk_loop ctx st [ c ] body
  | Pexp_for (_, lo, hi, _, body) -> walk_loop ctx st [ lo; hi ] body
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
    ->
      None
  | Pexp_assert inner | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _)
  | Pexp_open (_, inner) | Pexp_newtype (_, inner) | Pexp_lazy inner ->
      walk ctx st inner
  | Pexp_construct ({ txt = Longident.Lident "()"; _ }, Some inner) -> walk ctx st inner
  | _ ->
      (* Everything else (records, tuples, arrays, setfield, letmodule,
         multi-binding lets, …): conservatively escape every tracked
         handle mentioned inside, and still analyze nested lambdas as
         fresh scopes so interior allocations stay checked. *)
      Some (escape_all ctx st (sub_expressions e))

and walk_let ctx st vb body =
  match (vb.pvb_pat.ppat_desc, alloc_of vb.pvb_expr) with
  | Ppat_var { txt = name; _ }, Some kind -> (
      (* Walk the allocator's arguments first (they may touch other
         tracked handles), then track the fresh binding through [body]. *)
      let st0 =
        match vb.pvb_expr.pexp_desc with
        | Pexp_apply (_, args) -> walk_args ctx st args
        | _ -> Some st
      in
      match st0 with
      | None -> None
      | Some st0 -> (
          let tracked =
            (name, { e_kind = kind; e_status = Live; e_loc = vb.pvb_pat.ppat_loc }) :: st0
          in
          match walk ctx tracked body with
          | None -> None (* diverging path: the release obligation is waived *)
          | Some st' ->
              on_scope_end ctx st' name;
              Some (List.remove_assoc name st')))
  | (Ppat_any | Ppat_construct _), Some kind ->
      add ctx "L1" vb.pvb_expr.pexp_loc
        (Printf.sprintf
           "%s handle minted and immediately discarded by the binding pattern; bind it \
            and release it"
           (kind_name kind));
      walk_rest_of_let ctx st vb body
  | _ -> (
      (* Aliasing a tracked handle transfers ownership out of the walk. *)
      match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
      | Ppat_var _, Pexp_ident { txt = Longident.Lident src; loc } when List.mem_assoc src st
        ->
          let st = on_escape ctx st src loc in
          walk ctx st body
      | _ -> walk_rest_of_let ctx st vb body)

and walk_rest_of_let ctx st vb body =
  match walk ctx st vb.pvb_expr with
  | None -> None
  | Some st ->
      let st = shadow ctx st vb.pvb_pat in
      walk ctx st body

(* Pattern variables shadowing a tracked name make the outer handle
   unreachable by that name; give up on it (escape) rather than reason
   about scoping. Rare in practice — the walker never renames. *)
and shadow ctx st (pat : pattern) =
  let names = ref [] in
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
        names := txt :: !names;
        (match p.ppat_desc with Ppat_alias (sub, _) -> go sub | _ -> ())
    | Ppat_tuple l -> List.iter go l
    | Ppat_construct (_, Some (_, sub)) | Ppat_variant (_, Some sub) -> go sub
    | Ppat_record (fields, _) -> List.iter (fun (_, sub) -> go sub) fields
    | Ppat_array l -> List.iter go l
    | Ppat_or (a, b) -> go a; go b
    | Ppat_constraint (sub, _) | Ppat_open (_, sub) | Ppat_lazy sub | Ppat_exception sub ->
        go sub
    | _ -> ()
  in
  go pat;
  List.fold_left
    (fun st n ->
      if List.mem_assoc n st then on_escape ctx st n pat.ppat_loc else st)
    st !names

and walk_apply ctx st e fn args =
  if is_diverging_apply fn then (
    ignore (walk_args ctx st args);
    None)
  else
    let name = fn_name fn in
    match release_kind name with
    | Some rk -> (
        (* putN-style convention: the handle is the last positional
           argument (release_route t r / Arena.free pool h). *)
        let rec split_last acc = function
          | [] -> (List.rev acc, None)
          | [ last ] -> (List.rev acc, Some last)
          | x :: rest -> split_last (x :: acc) rest
        in
        let init, last = split_last [] args in
        match last with
        | Some (_, ({ pexp_desc = Pexp_ident { txt = Longident.Lident h; loc }; _ } : expression))
          when List.mem_assoc h st -> (
            match walk_args ctx st init with
            | None -> None
            | Some st -> Some (on_release ctx st h ~releaser:(Some rk) loc))
        | _ -> walk_args ctx st args)
    | None ->
        if is_borrow name then
          (* Borrowing: tracked idents among the arguments are reads, not
             transfers. Nested sub-expressions walk as usual. *)
          List.fold_left
            (fun st (_, (a : expression)) ->
              match st with
              | None -> None
              | Some st -> (
                  match a.pexp_desc with
                  | Pexp_ident { txt = Longident.Lident h; loc } when List.mem_assoc h st ->
                      Some (on_use ctx st h loc)
                  | _ -> walk ctx st a))
            (Some st) args
        else (
          (* Unknown callee: arguments escape (ownership may transfer),
             including handles captured by lambda arguments. *)
          ignore e;
          match walk ctx st fn with
          | None -> None
          | Some st -> Some (escape_all ctx st (List.map snd args)))

and walk_args ctx st args =
  List.fold_left
    (fun st (_, a) -> match st with None -> None | Some st -> walk ctx st a)
    (Some st) args

and walk_loop ctx st pre body =
  match walk_args ctx st (List.map (fun e -> (Asttypes.Nolabel, e)) pre) with
  | None -> None
  | Some st0 -> (
      match walk ctx st0 body with
      | None -> Some st0 (* body always diverges; loop may still run 0 times *)
      | Some st1 ->
          (* A release of an outer handle inside a loop body runs once per
             iteration: a second iteration is a double release. *)
          List.iter2
            (fun (n, (e0 : entry)) (_, (e1 : entry)) ->
              match (e0.e_status, e1.e_status) with
              | Live, (Released | MaybeReleased) ->
                  add ctx "L2" body.pexp_loc
                    (Printf.sprintf
                       "%s handle '%s' released inside a loop body that may run more than \
                        once"
                       (kind_name e1.e_kind) n)
              | _ -> ())
            st0 st1;
          Some (join_state st0 st1))

(* Escape every tracked ident mentioned in [exprs]; nested lambdas are
   additionally analyzed as fresh scopes so handles allocated inside
   callbacks stay checked. *)
and escape_all ctx st exprs =
  let st = ref st in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; loc } when List.mem_assoc n !st ->
        st := on_escape ctx !st n loc
    | Pexp_fun (_, _, _, body) ->
        scan_scope ctx ~file:ctx.file body
    | Pexp_function cases ->
        List.iter (fun c -> scan_scope ctx ~file:ctx.file c.pc_rhs) cases
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  List.iter (fun e -> it.expr it e) exprs;
  !st

and sub_expressions e =
  let subs = ref [] in
  let expr (_ : Ast_iterator.iterator) (sub : expression) = subs := sub :: !subs in
  let it = { Ast_iterator.default_iterator with expr } in
  (* One level only: collect direct children, escape_all recurses. *)
  Ast_iterator.default_iterator.expr it e;
  List.rev !subs

(* Analyze one function scope: peel parameters, then walk the body with an
   empty tracking state. *)
and scan_scope ctx ~file:_ (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> scan_scope ctx ~file:ctx.file body
  | Pexp_function cases ->
      List.iter (fun c -> scan_scope ctx ~file:ctx.file c.pc_rhs) cases
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) ->
      scan_scope ctx ~file:ctx.file body
  | _ -> ignore (walk ctx [] e)

(* -- entry points ----------------------------------------------------------- *)

let scan_structure ~file structure =
  let ctx = { file; out = [] } in
  List.iter
    (fun (item : structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter (fun vb -> scan_scope ctx ~file vb.pvb_expr) vbs
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
          List.iter
            (fun (si : structure_item) ->
              match si.pstr_desc with
              | Pstr_value (_, vbs) ->
                  List.iter (fun vb -> scan_scope ctx ~file vb.pvb_expr) vbs
              | _ -> ())
            sub
      | _ -> ())
    structure;
  List.rev ctx.out

(* Test / tooling convenience: lint a source string directly. *)
let scan_src ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  scan_structure ~file (Parse.implementation lexbuf)
